// Exact schedule-space backend bench and conformance gate.  Analyses
// minimal start configurations of the Section 7 single-cluster population
// (the fig9 workloads) and of MultiCluster scenarios (2..4 gateway-chained
// clusters) with both the holistic and the exact (DYN schedule-space)
// backend, then replays each winner on the discrete-event network
// simulator, reporting exploration throughput (states/s) and the
// holistic-vs-exact pessimism gap per system (BENCH_exact.json, published
// by the perf-smoke CI job).
//
// The CI-facing --check gate asserts, over every analysed system:
// (1) sandwich soundness — observed <= exact <= holistic for every ET
//     activity of every system where the exploration ran, and
// (2) usefulness — the aggregate mean pessimism gap over the non-fallback
//     systems is strictly positive (the backend refines something), and
// (3) no silent fallback — a budget-exceeded or otherwise skipped cluster
//     is visible in the per-system fallback column and the JSON.

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "flexopt/analysis/exact/exact_analysis.hpp"
#include "flexopt/analysis/multicluster.hpp"
#include "flexopt/core/config_builder.hpp"
#include "flexopt/gen/scenario.hpp"
#include "flexopt/io/json_writer.hpp"
#include "flexopt/model/system_model.hpp"
#include "flexopt/netsim/netsim.hpp"
#include "flexopt/util/table.hpp"

using namespace flexopt;
using namespace flexopt::bench;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct SystemRow {
  std::string workload;
  int index = 0;
  int clusters = 0;
  std::size_t tasks = 0;
  std::size_t messages = 0;
  std::size_t activities = 0;   ///< ET activities in the pessimism report
  std::size_t refined = 0;
  double mean_gap = 0.0;
  double max_gap = 0.0;
  std::uint64_t states = 0;
  std::uint64_t merged = 0;
  double wall_seconds = 0.0;
  double states_per_second = 0.0;
  bool fallback = false;
  std::string fallback_reason = "none";
  bool sandwich_ok = false;  ///< exact <= holistic on every entry
  bool sim_sound = false;    ///< observed <= exact on every simulated entry
};

/// Analyses one system holistically and exactly under its per-cluster
/// minimal start configuration, then simulates against the exact bounds.
/// Returns false when the system is skipped (infeasible minimal bounds);
/// hard failures (generation, projection, analysis, simulation) throw.
bool analyze_exact_system(const Application& app, const BusParams& params,
                          const ExactOptions& exact_options, SystemRow& row) {
  auto model = SystemModel::build(std::make_shared<const Application>(app));
  if (!model.ok()) throw std::runtime_error(model.error().message);
  SystemConfig config;
  for (std::size_t c = 0; c < model.value().cluster_count(); ++c) {
    const StartConfig start = minimal_start_config(*model.value().cluster_app(c), params);
    if (!start.bounds.feasible()) return false;
    config.clusters.push_back(ClusterConfig::flexray_bus(start.config));
  }
  auto layouts = build_system_layouts(model.value(), params, config);
  if (!layouts.ok()) throw std::runtime_error(layouts.error().message);

  AnalysisOptions options;
  options.mode = AnalysisMode::Exact;
  options.exact = exact_options;
  const auto started = std::chrono::steady_clock::now();
  auto exact = analyze_multicluster(model.value(), layouts.value(), options);
  const double elapsed = seconds_since(started);
  if (!exact.ok()) throw std::runtime_error(exact.error().message);

  std::vector<const Application*> apps;
  for (std::size_t c = 0; c < model.value().cluster_count(); ++c) {
    apps.push_back(model.value().cluster_app(c).get());
  }
  const PessimismReport pessimism = make_pessimism_report(apps, exact.value().clusters);

  row.clusters = static_cast<int>(model.value().cluster_count());
  row.tasks = app.task_count();
  row.messages = app.message_count();
  row.activities = pessimism.activities;
  row.refined = pessimism.refined;
  row.mean_gap = pessimism.mean_gap;
  row.max_gap = pessimism.max_gap;
  row.states = pessimism.explored_states;
  row.merged = pessimism.merged_states;
  row.wall_seconds = elapsed;
  row.states_per_second =
      elapsed > 0.0 ? static_cast<double>(pessimism.explored_states) / elapsed : 0.0;
  row.fallback = pessimism.any_fallback;
  for (const ExactFallback fallback : pessimism.cluster_fallbacks) {
    if (fallback != ExactFallback::None) {
      row.fallback_reason = to_string(fallback);
      break;
    }
  }
  row.sandwich_ok = true;
  for (const PessimismActivity& entry : pessimism.entries) {
    row.sandwich_ok = row.sandwich_ok && entry.exact <= entry.holistic;
  }

  // Observed <= exact: the simulator replays real schedules, so its worst
  // observations must stay under the refined bounds too.
  auto sim = simulate_network(model.value(), layouts.value(), exact.value());
  if (!sim.ok()) throw std::runtime_error(sim.error().message);
  const SoundnessReport verdict =
      check_soundness(model.value(), exact.value(), sim.value());
  row.sim_sound = verdict.sound && sim.value().precedence_violations == 0;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  bool check = false;
  ExactOptions exact_options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--max-states" && i + 1 < argc) {
      exact_options.max_states = std::stoull(argv[++i]);
    } else {
      std::cerr << "usage: bench_exact [--out FILE] [--check] [--max-states N]\n";
      return 2;
    }
  }

  std::cout << "== Exact schedule-space backend: throughput and pessimism gate ==\n";
  const Scale scale = Scale::current();
  scale.print(std::cout);
  const BusParams params = section7_params();
  const int systems_per_size = full_scale() ? 6 : 2;

  std::vector<SystemRow> rows;
  std::size_t skipped = 0;
  bool all_ok = true;

  // Fig. 9 population: the Section 7 single-cluster synthetic systems.
  for (int nodes = scale.min_nodes; nodes <= scale.max_nodes; ++nodes) {
    for (int index = 0; index < systems_per_size; ++index) {
      auto app = section7_system(nodes, index);
      if (!app.ok()) {
        ++skipped;
        continue;
      }
      SystemRow row;
      row.workload = "fig9/n" + std::to_string(nodes);
      row.index = index;
      try {
        if (!analyze_exact_system(app.value(), params, exact_options, row)) {
          ++skipped;
          continue;
        }
      } catch (const std::exception& e) {
        std::cerr << row.workload << "#" << index << ": " << e.what() << "\n";
        all_ok = false;
        continue;
      }
      rows.push_back(row);
    }
  }

  // Multi-cluster population: the bench_multicluster workload axis.
  for (int clusters = 2; clusters <= 4; ++clusters) {
    for (int index = 0; index < systems_per_size; ++index) {
      ScenarioSpec spec;
      spec.topology = Topology::MultiCluster;
      spec.traffic = TrafficMix::DynOnly;
      spec.clusters = clusters;
      spec.inter_cluster_share = 0.25;
      spec.base.nodes = clusters * 2;
      spec.base.tasks_per_node = 4;
      spec.base.tasks_per_graph = 4;
      spec.base.deadline_factor = 2.0;
      spec.base.seed = static_cast<std::uint64_t>(1000 * clusters + index);
      auto app = generate_scenario(spec, params);
      if (!app.ok()) {
        ++skipped;
        continue;
      }
      SystemRow row;
      row.workload = "mc/c" + std::to_string(clusters);
      row.index = index;
      try {
        if (!analyze_exact_system(app.value(), params, exact_options, row)) {
          ++skipped;
          continue;
        }
      } catch (const std::exception& e) {
        std::cerr << row.workload << "#" << index << ": " << e.what() << "\n";
        all_ok = false;
        continue;
      }
      rows.push_back(row);
    }
  }

  std::uint64_t total_states = 0;
  double total_seconds = 0.0;
  double gap_sum = 0.0;
  std::size_t gap_systems = 0;
  Table table({"workload", "system", "clusters", "activities", "refined", "gap mean",
               "states", "states/s", "fallback", "sandwich", "sim"});
  for (const SystemRow& r : rows) {
    total_states += r.states;
    total_seconds += r.wall_seconds;
    if (!r.fallback) {
      gap_sum += r.mean_gap;
      ++gap_systems;
    }
    table.add_row({r.workload, std::to_string(r.index), std::to_string(r.clusters),
                   std::to_string(r.activities), std::to_string(r.refined),
                   fmt_percent(r.mean_gap), std::to_string(r.states),
                   fmt_double(r.states_per_second, 0), r.fallback_reason,
                   r.sandwich_ok ? "ok" : "VIOLATION", r.sim_sound ? "ok" : "VIOLATION"});
    if (!r.sandwich_ok || !r.sim_sound) all_ok = false;
  }
  table.print(std::cout);
  const double aggregate_rate =
      total_seconds > 0.0 ? static_cast<double>(total_states) / total_seconds : 0.0;
  const double aggregate_gap =
      gap_systems > 0 ? gap_sum / static_cast<double>(gap_systems) : 0.0;
  std::cout << rows.size() << " systems analysed (" << skipped << " skipped), "
            << total_states << " states, " << fmt_double(aggregate_rate, 0)
            << " states/s aggregate, mean pessimism gap " << fmt_percent(aggregate_gap)
            << " over " << gap_systems << " non-fallback systems\n";

  if (!out_path.empty()) {
    JsonWriter json;
    json.begin_object();
    json.field("bench", "exact");
    json.field("max_states", exact_options.max_states);
    json.field("systems", rows.size());
    json.field("skipped", skipped);
    json.field("total_states", total_states);
    json.field("states_per_second", aggregate_rate);
    json.field("mean_pessimism_gap", aggregate_gap);
    json.key("results").begin_array();
    for (const SystemRow& r : rows) {
      json.begin_object()
          .field("workload", r.workload)
          .field("index", r.index)
          .field("clusters", r.clusters)
          .field("tasks", r.tasks)
          .field("messages", r.messages)
          .field("activities", r.activities)
          .field("refined", r.refined)
          .field("mean_gap", r.mean_gap)
          .field("max_gap", r.max_gap)
          .field("states", r.states)
          .field("merged_states", r.merged)
          .field("wall_seconds", r.wall_seconds)
          .field("states_per_second", r.states_per_second)
          .field("fallback", r.fallback_reason)
          .field("sandwich_ok", r.sandwich_ok)
          .field("sim_sound", r.sim_sound)
          .end_object();
    }
    json.end_array();
    json.end_object();
    std::ofstream out(out_path, std::ios::binary);
    out << json.str() << "\n";
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 2;
    }
    std::cout << "wrote " << out_path << "\n";
  }

  if (check) {
    const bool gap_ok = gap_systems > 0 && aggregate_gap > 0.0;
    if (rows.empty() || !all_ok || !gap_ok) {
      std::cerr << "CHECK FAILED: " << rows.size() << " systems, all_ok=" << all_ok
                << ", non-fallback systems=" << gap_systems
                << ", mean gap=" << aggregate_gap << "\n";
      return 1;
    }
    std::cout << "CHECK OK: observed <= exact <= holistic on " << rows.size()
              << " systems, mean pessimism gap " << fmt_percent(aggregate_gap) << "\n";
  }
  return 0;
}
