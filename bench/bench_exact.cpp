// Exact schedule-space backend bench and conformance gate.  Analyses
// minimal start configurations of the Section 7 single-cluster population
// (the fig9 workloads) and of MultiCluster scenarios (2..4 gateway-chained
// clusters) with both the holistic and the exact (DYN schedule-space)
// backend, then replays each winner on the discrete-event network
// simulator, reporting exploration throughput (states/s) and the
// holistic-vs-exact pessimism gap per system (BENCH_exact.json, published
// by the perf-smoke CI job).
//
// Two perf phases follow the population sweep:
//
// Scaling: re-analyses the whole population at ExactOptions::jobs 1/2/4/8
// and reports the states/sec curve.  Every per-cluster outcome (bounds,
// cost, fallback, engine counters) must be bit-identical to the jobs=1
// reference — the parallel engine trades wall time only, never results.
//
// Exact-delta warm replay (mirroring bench_delta_eval): an SA-style
// neighbour-move trajectory over fig9 systems is recorded once to warm the
// evaluator's exact-space store, then replayed bit-identically on two
// evaluators — cold (reuse_base_frontier off, re-explores every move) and
// warm (reuse on, replays cached frontiers).  Whole-config memoization is
// off on both sides so the reuse measured is exploration reuse, not a hash
// lookup.  The reuse ratio is cold/warm states explored during the replay.
//
// The CI-facing --check gate asserts, over every analysed system:
// (1) sandwich soundness — observed <= exact <= holistic for every ET
//     activity of every system where the exploration ran, and
// (2) usefulness — the aggregate mean pessimism gap over the non-fallback
//     systems is strictly positive (the backend refines something), and
// (3) no silent fallback — a budget-exceeded or otherwise skipped cluster
//     is visible in the per-system fallback column and the JSON, and
// (4) determinism — jobs 1/2/4/8 outcomes bit-identical, and
// (5) reuse — the warm-replay reuse ratio clears --min-reuse-ratio, and
// (6) scaling — jobs=8 states/sec clears --min-speedup x the jobs=1 rate,
//     enforced only on machines with >= 8 hardware threads (elsewhere the
//     curve is still printed/published, the floor is skipped).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "flexopt/analysis/exact/exact_analysis.hpp"
#include "flexopt/analysis/multicluster.hpp"
#include "flexopt/core/config_builder.hpp"
#include "flexopt/core/sa.hpp"
#include "flexopt/gen/scenario.hpp"
#include "flexopt/io/json_writer.hpp"
#include "flexopt/model/system_model.hpp"
#include "flexopt/netsim/netsim.hpp"
#include "flexopt/util/rng.hpp"
#include "flexopt/util/table.hpp"

using namespace flexopt;
using namespace flexopt::bench;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct SystemRow {
  std::string workload;
  int index = 0;
  int clusters = 0;
  std::size_t tasks = 0;
  std::size_t messages = 0;
  std::size_t activities = 0;   ///< ET activities in the pessimism report
  std::size_t refined = 0;
  double mean_gap = 0.0;
  double max_gap = 0.0;
  std::uint64_t states = 0;
  std::uint64_t merged = 0;
  double wall_seconds = 0.0;
  double states_per_second = 0.0;
  bool fallback = false;
  std::string fallback_reason = "none";
  bool sandwich_ok = false;  ///< exact <= holistic on every entry
  bool sim_sound = false;    ///< observed <= exact on every simulated entry
};

/// Analyses one system holistically and exactly under its per-cluster
/// minimal start configuration, then simulates against the exact bounds.
/// Returns false when the system is skipped (infeasible minimal bounds);
/// hard failures (generation, projection, analysis, simulation) throw.
bool analyze_exact_system(const Application& app, const BusParams& params,
                          const ExactOptions& exact_options, SystemRow& row) {
  auto model = SystemModel::build(std::make_shared<const Application>(app));
  if (!model.ok()) throw std::runtime_error(model.error().message);
  SystemConfig config;
  for (std::size_t c = 0; c < model.value().cluster_count(); ++c) {
    const StartConfig start = minimal_start_config(*model.value().cluster_app(c), params);
    if (!start.bounds.feasible()) return false;
    config.clusters.push_back(ClusterConfig::flexray_bus(start.config));
  }
  auto layouts = build_system_layouts(model.value(), params, config);
  if (!layouts.ok()) throw std::runtime_error(layouts.error().message);

  AnalysisOptions options;
  options.mode = AnalysisMode::Exact;
  options.exact = exact_options;
  const auto started = std::chrono::steady_clock::now();
  auto exact = analyze_multicluster(model.value(), layouts.value(), options);
  const double elapsed = seconds_since(started);
  if (!exact.ok()) throw std::runtime_error(exact.error().message);

  std::vector<const Application*> apps;
  for (std::size_t c = 0; c < model.value().cluster_count(); ++c) {
    apps.push_back(model.value().cluster_app(c).get());
  }
  const PessimismReport pessimism = make_pessimism_report(apps, exact.value().clusters);

  row.clusters = static_cast<int>(model.value().cluster_count());
  row.tasks = app.task_count();
  row.messages = app.message_count();
  row.activities = pessimism.activities;
  row.refined = pessimism.refined;
  row.mean_gap = pessimism.mean_gap;
  row.max_gap = pessimism.max_gap;
  row.states = pessimism.explored_states;
  row.merged = pessimism.merged_states;
  row.wall_seconds = elapsed;
  row.states_per_second =
      elapsed > 0.0 ? static_cast<double>(pessimism.explored_states) / elapsed : 0.0;
  row.fallback = pessimism.any_fallback;
  for (const ExactFallback fallback : pessimism.cluster_fallbacks) {
    if (fallback != ExactFallback::None) {
      row.fallback_reason = to_string(fallback);
      break;
    }
  }
  row.sandwich_ok = true;
  for (const PessimismActivity& entry : pessimism.entries) {
    row.sandwich_ok = row.sandwich_ok && entry.exact <= entry.holistic;
  }

  // Observed <= exact: the simulator replays real schedules, so its worst
  // observations must stay under the refined bounds too.
  auto sim = simulate_network(model.value(), layouts.value(), exact.value());
  if (!sim.ok()) throw std::runtime_error(sim.error().message);
  const SoundnessReport verdict =
      check_soundness(model.value(), exact.value(), sim.value());
  row.sim_sound = verdict.sound && sim.value().precedence_violations == 0;
  return true;
}

/// One system of the bench population, retained for the scaling phase.
struct PopEntry {
  std::string workload;
  int index = 0;
  Application app;
};

/// Everything the jobs-identity comparison looks at for one cluster: the
/// refined bounds and cost plus the engine's own counters — a worker-count
/// change must not move any of it by a single bit.
struct ClusterSig {
  ExactFallback fallback = ExactFallback::None;
  std::uint64_t explored = 0;
  std::uint64_t merged = 0;
  std::uint64_t transitions = 0;
  std::uint64_t refined = 0;
  double cost = 0.0;
  std::vector<Time> tasks;
  std::vector<Time> messages;
  friend bool operator==(const ClusterSig&, const ClusterSig&) = default;
};

/// Exact multicluster analysis under the minimal start (no simulation),
/// appending one ClusterSig per cluster and accumulating explored states
/// and wall time.  Returns false when the system is skipped.
bool exact_signatures(const Application& app, const BusParams& params,
                      const ExactOptions& exact_options, std::vector<ClusterSig>& sigs,
                      std::uint64_t& states, double& wall) {
  auto model = SystemModel::build(std::make_shared<const Application>(app));
  if (!model.ok()) throw std::runtime_error(model.error().message);
  SystemConfig config;
  for (std::size_t c = 0; c < model.value().cluster_count(); ++c) {
    const StartConfig start = minimal_start_config(*model.value().cluster_app(c), params);
    if (!start.bounds.feasible()) return false;
    config.clusters.push_back(ClusterConfig::flexray_bus(start.config));
  }
  auto layouts = build_system_layouts(model.value(), params, config);
  if (!layouts.ok()) throw std::runtime_error(layouts.error().message);
  AnalysisOptions options;
  options.mode = AnalysisMode::Exact;
  options.exact = exact_options;
  const auto started = std::chrono::steady_clock::now();
  auto exact = analyze_multicluster(model.value(), layouts.value(), options);
  wall += seconds_since(started);
  if (!exact.ok()) throw std::runtime_error(exact.error().message);
  for (const AnalysisResult& cluster : exact.value().clusters) {
    ClusterSig sig;
    if (cluster.exact != nullptr) {
      sig.fallback = cluster.exact->fallback;
      sig.explored = cluster.exact->explored_states;
      sig.merged = cluster.exact->merged_states;
      sig.transitions = cluster.exact->transitions;
      sig.refined = cluster.exact->refined_messages;
      states += cluster.exact->explored_states;
    }
    sig.cost = cluster.cost.value;
    sig.tasks = cluster.task_completion;
    sig.messages = cluster.message_completion;
    sigs.push_back(std::move(sig));
  }
  return true;
}

/// One point of the jobs scaling curve.
struct ScalingPoint {
  int jobs = 1;
  std::uint64_t states = 0;
  double wall = 0.0;
  double rate = 0.0;
  bool identical = true;  ///< vs the jobs=1 reference signatures
};

/// Warm-replay exact-delta measurement for one fig9 system.
struct DeltaResult {
  int nodes = 0;
  long proposed = 0;
  long accepted = 0;
  std::uint64_t cold_states = 0;  ///< explored during the measured replay, reuse off
  std::uint64_t warm_states = 0;  ///< explored during the measured replay, reuse on
  std::uint64_t warm_reused = 0;  ///< frontier cache hits during the replay
  bool identical = true;          ///< cold and warm costs bit-identical on every move
};

/// Drives the same SA-style move/acceptance stream through a cold evaluator
/// (reuse_base_frontier off) and a warm one (reuse on) twice: a recording
/// pass that fills the warm evaluator's exact-space store, then the
/// measured bit-identical replay.  Memoization is off on both sides, so a
/// replayed move re-runs the analysis — the only thing the warm side skips
/// is the schedule-space exploration itself.
DeltaResult run_exact_delta(const Application& app, const BusParams& params,
                            const ExactOptions& exact_options, int nodes, long moves) {
  DeltaResult r;
  r.nodes = nodes;

  AnalysisOptions cold_opts;
  cold_opts.mode = AnalysisMode::Exact;
  cold_opts.exact = exact_options;
  cold_opts.exact.jobs = 1;
  cold_opts.exact.reuse_base_frontier = false;
  AnalysisOptions warm_opts = cold_opts;
  warm_opts.exact.reuse_base_frontier = true;
  EvaluatorOptions eopts;
  eopts.cache_enabled = false;
  CostEvaluator cold(app, params, cold_opts, eopts);
  CostEvaluator warm(app, params, warm_opts, eopts);

  const StartConfig start = minimal_start_config(app, params);
  if (!start.bounds.feasible()) return r;
  const std::vector<NodeId>& senders = start.st_senders;
  const DynBounds& bounds = start.bounds;

  const auto run_pass = [&](bool measured) {
    BusConfig current = start.config;
    const auto c0 = cold.evaluate(current);
    const auto w0 = warm.evaluate(current);
    if (c0.valid != w0.valid || (c0.valid && c0.cost.value != w0.cost.value)) {
      r.identical = false;
    }
    double current_cost = c0.valid ? c0.cost.value : kInvalidConfigCost;

    // Same seed shape as bench_delta_eval: the streams are bit-identical
    // across passes, so the replay revisits exactly the recorded geometries.
    Rng move_rng(0x5eedu + static_cast<std::uint64_t>(nodes));
    Rng accept_rng(0xaccu + static_cast<std::uint64_t>(nodes));
    const double temperature = std::max(1.0, std::abs(current_cost) * 0.1);

    for (long i = 0; i < moves; ++i) {
      BusConfig neighbour = current;
      bool moved = false;
      for (int attempt = 0; attempt < 8 && !moved; ++attempt) {
        moved = random_neighbour_move(neighbour, app, params, move_rng, senders,
                                      bounds.min_minislots, SpecLimits::kMaxMinislots);
      }
      if (!moved) continue;
      DeltaMove cold_move = DeltaMove::between(current, BusConfig(neighbour));
      DeltaMove warm_move = DeltaMove::between(current, std::move(neighbour));

      const auto ec = cold.evaluate_delta(current, cold_move);
      const auto ew = warm.evaluate_delta(current, warm_move);
      if (measured) ++r.proposed;
      if (ec.valid != ew.valid || (ec.valid && ec.cost.value != ew.cost.value)) {
        r.identical = false;
      }

      const double cost = ec.valid ? ec.cost.value : kInvalidConfigCost;
      const double delta = cost - current_cost;
      if (delta <= 0.0 ||
          accept_rng.uniform_real(0.0, 1.0) < std::exp(-delta / temperature)) {
        current = std::move(cold_move.config);
        current_cost = cost;
        if (measured) ++r.accepted;
      }
    }
  };

  run_pass(/*measured=*/false);  // recording: fills the exact-space store
  const EvaluatorWorkStats cold_before = cold.work_stats();
  const EvaluatorWorkStats warm_before = warm.work_stats();
  run_pass(/*measured=*/true);  // measured warm replay
  const AnalysisWorkCounters cold_work = cold.work_stats().since(cold_before).analysis;
  const AnalysisWorkCounters warm_work = warm.work_stats().since(warm_before).analysis;
  r.cold_states = cold_work.exact_states_explored;
  r.warm_states = warm_work.exact_states_explored;
  r.warm_reused = warm_work.exact_frontier_reused;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  bool check = false;
  ExactOptions exact_options;
  double min_reuse_ratio = 2.0;
  double min_speedup = 3.0;
  long moves = full_scale() ? 400 : 120;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--max-states" && i + 1 < argc) {
      exact_options.max_states = std::stoull(argv[++i]);
    } else if (arg == "--min-reuse-ratio" && i + 1 < argc) {
      min_reuse_ratio = std::stod(argv[++i]);
    } else if (arg == "--min-speedup" && i + 1 < argc) {
      min_speedup = std::stod(argv[++i]);
    } else if (arg == "--moves" && i + 1 < argc) {
      moves = std::stol(argv[++i]);
    } else {
      std::cerr << "usage: bench_exact [--out FILE] [--check] [--max-states N]\n"
                   "                   [--min-reuse-ratio R] [--min-speedup S] [--moves N]\n";
      return 2;
    }
  }

  std::cout << "== Exact schedule-space backend: throughput and pessimism gate ==\n";
  const Scale scale = Scale::current();
  scale.print(std::cout);
  const BusParams params = section7_params();
  const int systems_per_size = full_scale() ? 6 : 2;

  std::vector<SystemRow> rows;
  std::vector<PopEntry> population;
  std::size_t skipped = 0;
  bool all_ok = true;

  // Fig. 9 population: the Section 7 single-cluster synthetic systems.
  for (int nodes = scale.min_nodes; nodes <= scale.max_nodes; ++nodes) {
    for (int index = 0; index < systems_per_size; ++index) {
      auto app = section7_system(nodes, index);
      if (!app.ok()) {
        ++skipped;
        continue;
      }
      SystemRow row;
      row.workload = "fig9/n" + std::to_string(nodes);
      row.index = index;
      try {
        if (!analyze_exact_system(app.value(), params, exact_options, row)) {
          ++skipped;
          continue;
        }
      } catch (const std::exception& e) {
        std::cerr << row.workload << "#" << index << ": " << e.what() << "\n";
        all_ok = false;
        continue;
      }
      rows.push_back(row);
      population.push_back({row.workload, index, app.value()});
    }
  }

  // Multi-cluster population: the bench_multicluster workload axis.
  for (int clusters = 2; clusters <= 4; ++clusters) {
    for (int index = 0; index < systems_per_size; ++index) {
      ScenarioSpec spec;
      spec.topology = Topology::MultiCluster;
      spec.traffic = TrafficMix::DynOnly;
      spec.clusters = clusters;
      spec.inter_cluster_share = 0.25;
      spec.base.nodes = clusters * 2;
      spec.base.tasks_per_node = 4;
      spec.base.tasks_per_graph = 4;
      spec.base.deadline_factor = 2.0;
      spec.base.seed = static_cast<std::uint64_t>(1000 * clusters + index);
      auto app = generate_scenario(spec, params);
      if (!app.ok()) {
        ++skipped;
        continue;
      }
      SystemRow row;
      row.workload = "mc/c" + std::to_string(clusters);
      row.index = index;
      try {
        if (!analyze_exact_system(app.value(), params, exact_options, row)) {
          ++skipped;
          continue;
        }
      } catch (const std::exception& e) {
        std::cerr << row.workload << "#" << index << ": " << e.what() << "\n";
        all_ok = false;
        continue;
      }
      rows.push_back(row);
      population.push_back({row.workload, index, app.value()});
    }
  }

  std::uint64_t total_states = 0;
  double total_seconds = 0.0;
  double gap_sum = 0.0;
  std::size_t gap_systems = 0;
  Table table({"workload", "system", "clusters", "activities", "refined", "gap mean",
               "states", "states/s", "fallback", "sandwich", "sim"});
  for (const SystemRow& r : rows) {
    total_states += r.states;
    total_seconds += r.wall_seconds;
    if (!r.fallback) {
      gap_sum += r.mean_gap;
      ++gap_systems;
    }
    table.add_row({r.workload, std::to_string(r.index), std::to_string(r.clusters),
                   std::to_string(r.activities), std::to_string(r.refined),
                   fmt_percent(r.mean_gap), std::to_string(r.states),
                   fmt_double(r.states_per_second, 0), r.fallback_reason,
                   r.sandwich_ok ? "ok" : "VIOLATION", r.sim_sound ? "ok" : "VIOLATION"});
    if (!r.sandwich_ok || !r.sim_sound) all_ok = false;
  }
  table.print(std::cout);
  const double aggregate_rate =
      total_seconds > 0.0 ? static_cast<double>(total_states) / total_seconds : 0.0;
  const double aggregate_gap =
      gap_systems > 0 ? gap_sum / static_cast<double>(gap_systems) : 0.0;
  std::cout << rows.size() << " systems analysed (" << skipped << " skipped), "
            << total_states << " states, " << fmt_double(aggregate_rate, 0)
            << " states/s aggregate, mean pessimism gap " << fmt_percent(aggregate_gap)
            << " over " << gap_systems << " non-fallback systems\n";

  // ---- scaling phase: states/sec at jobs 1/2/4/8, bit-identity gate -------
  std::cout << "\n== Parallel exploration scaling (ExactOptions::jobs) ==\n";
  const unsigned hardware = std::thread::hardware_concurrency();
  std::cout << "hardware threads: " << hardware << "\n";
  std::vector<ScalingPoint> scaling;
  std::vector<std::vector<ClusterSig>> reference_sigs;  // one entry per system, jobs=1
  bool jobs_identical = true;
  for (const int jobs : {1, 2, 4, 8}) {
    ScalingPoint point;
    point.jobs = jobs;
    ExactOptions scaled = exact_options;
    scaled.jobs = jobs;
    std::size_t system = 0;
    try {
      for (const PopEntry& entry : population) {
        std::vector<ClusterSig> sigs;
        if (!exact_signatures(entry.app, params, scaled, sigs, point.states, point.wall)) {
          continue;
        }
        if (jobs == 1) {
          reference_sigs.push_back(std::move(sigs));
        } else if (system < reference_sigs.size() && !(sigs == reference_sigs[system])) {
          std::cerr << entry.workload << "#" << entry.index << ": jobs=" << jobs
                    << " result differs from jobs=1\n";
          point.identical = false;
        }
        ++system;
      }
    } catch (const std::exception& e) {
      std::cerr << "scaling jobs=" << jobs << ": " << e.what() << "\n";
      all_ok = false;
    }
    point.rate = point.wall > 0.0 ? static_cast<double>(point.states) / point.wall : 0.0;
    jobs_identical = jobs_identical && point.identical;
    scaling.push_back(point);
  }
  Table scaling_table({"jobs", "states", "wall (s)", "states/s", "identical"});
  for (const ScalingPoint& point : scaling) {
    scaling_table.add_row({std::to_string(point.jobs), std::to_string(point.states),
                           fmt_double(point.wall, 3), fmt_double(point.rate, 0),
                           point.identical ? "yes" : "NO"});
  }
  scaling_table.print(std::cout);
  const double rate_1 = scaling.empty() ? 0.0 : scaling.front().rate;
  const double rate_8 = scaling.empty() ? 0.0 : scaling.back().rate;
  const double speedup = rate_1 > 0.0 ? rate_8 / rate_1 : 0.0;
  // The speedup floor needs the parallelism to exist: on narrow machines
  // the curve is informational and the floor is skipped (the determinism
  // comparison above always runs).
  const bool speedup_gate_active = hardware >= 8;
  std::cout << "speedup jobs=8 vs jobs=1: " << fmt_double(speedup, 2) << "x (floor "
            << fmt_double(min_speedup, 1) << "x "
            << (speedup_gate_active ? "active" : "skipped: < 8 hardware threads") << ")\n";

  // ---- exact-delta warm replay: cross-move exploration reuse --------------
  std::cout << "\n== Exact-delta warm replay (reuse_base_frontier, memo cache off) ==\n";
  std::vector<DeltaResult> delta_results;
  bool delta_identical = true;
  for (const int nodes : {4, 5}) {
    const auto app = section7_system(nodes, 0);
    if (!app.ok()) {
      std::cerr << "generator failed: " << app.error().message << "\n";
      all_ok = false;
      continue;
    }
    DeltaResult r = run_exact_delta(app.value(), params, exact_options, nodes, moves);
    if (r.proposed == 0) continue;
    delta_identical = delta_identical && r.identical;
    delta_results.push_back(std::move(r));
  }
  Table delta_table({"nodes", "proposed", "accepted", "cold states", "warm states",
                     "reused", "ratio", "identical"});
  std::uint64_t delta_cold = 0;
  std::uint64_t delta_warm = 0;
  std::uint64_t delta_reused = 0;
  for (const DeltaResult& r : delta_results) {
    const double system_ratio = static_cast<double>(r.cold_states) /
                                static_cast<double>(std::max<std::uint64_t>(1, r.warm_states));
    delta_table.add_row({std::to_string(r.nodes), std::to_string(r.proposed),
                         std::to_string(r.accepted), std::to_string(r.cold_states),
                         std::to_string(r.warm_states), std::to_string(r.warm_reused),
                         fmt_double(system_ratio, 1), r.identical ? "yes" : "NO"});
    delta_cold += r.cold_states;
    delta_warm += r.warm_states;
    delta_reused += r.warm_reused;
  }
  delta_table.print(std::cout);
  const double reuse_ratio = static_cast<double>(delta_cold) /
                             static_cast<double>(std::max<std::uint64_t>(1, delta_warm));
  std::cout << "reuse ratio (cold/warm states during replay): " << fmt_double(reuse_ratio, 1)
            << "x, " << delta_reused << " frontiers reused (floor "
            << fmt_double(min_reuse_ratio, 1) << "x)\n";

  if (!out_path.empty()) {
    JsonWriter json;
    json.begin_object();
    json.field("bench", "exact");
    json.field("max_states", exact_options.max_states);
    json.field("systems", rows.size());
    json.field("skipped", skipped);
    json.field("total_states", total_states);
    json.field("states_per_second", aggregate_rate);
    json.field("mean_pessimism_gap", aggregate_gap);
    json.key("results").begin_array();
    for (const SystemRow& r : rows) {
      json.begin_object()
          .field("workload", r.workload)
          .field("index", r.index)
          .field("clusters", r.clusters)
          .field("tasks", r.tasks)
          .field("messages", r.messages)
          .field("activities", r.activities)
          .field("refined", r.refined)
          .field("mean_gap", r.mean_gap)
          .field("max_gap", r.max_gap)
          .field("states", r.states)
          .field("merged_states", r.merged)
          .field("wall_seconds", r.wall_seconds)
          .field("states_per_second", r.states_per_second)
          .field("fallback", r.fallback_reason)
          .field("sandwich_ok", r.sandwich_ok)
          .field("sim_sound", r.sim_sound)
          .end_object();
    }
    json.end_array();
    // Schema additions (all additive): the jobs scaling curve, the
    // exact-delta warm-replay block, and the gate parameters.
    json.key("scaling").begin_array();
    for (const ScalingPoint& point : scaling) {
      json.begin_object()
          .field("jobs", point.jobs)
          .field("states", point.states)
          .field("wall_seconds", point.wall)
          .field("states_per_second", point.rate)
          .field("identical", point.identical)
          .end_object();
    }
    json.end_array();
    json.field("speedup_jobs8", speedup);
    json.field("speedup_gate_active", speedup_gate_active);
    json.key("delta").begin_object();
    json.field("moves_per_system", moves);
    json.key("systems").begin_array();
    for (const DeltaResult& r : delta_results) {
      json.begin_object()
          .field("nodes", r.nodes)
          .field("proposed_moves", r.proposed)
          .field("accepted_moves", r.accepted)
          .field("cold_states", r.cold_states)
          .field("warm_states", r.warm_states)
          .field("frontier_reused", r.warm_reused)
          .field("identical", r.identical)
          .end_object();
    }
    json.end_array();
    json.field("cold_states", delta_cold)
        .field("warm_states", delta_warm)
        .field("frontier_reused", delta_reused)
        .field("reuse_ratio", reuse_ratio)
        .field("identical", delta_identical);
    json.end_object();  // delta
    json.key("gate")
        .begin_object()
        .field("min_reuse_ratio", min_reuse_ratio)
        .field("min_speedup", min_speedup)
        .field("hardware_threads", static_cast<std::uint64_t>(hardware))
        .end_object();
    json.end_object();
    std::ofstream out(out_path, std::ios::binary);
    out << json.str() << "\n";
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 2;
    }
    std::cout << "wrote " << out_path << "\n";
  }

  if (check) {
    const bool gap_ok = gap_systems > 0 && aggregate_gap > 0.0;
    const bool reuse_ok = !delta_results.empty() && delta_identical &&
                          reuse_ratio >= min_reuse_ratio;
    const bool speedup_ok = !speedup_gate_active || speedup >= min_speedup;
    if (rows.empty() || !all_ok || !gap_ok || !jobs_identical || !reuse_ok || !speedup_ok) {
      std::cerr << "CHECK FAILED: " << rows.size() << " systems, all_ok=" << all_ok
                << ", non-fallback systems=" << gap_systems
                << ", mean gap=" << aggregate_gap << "\n";
      if (!jobs_identical) std::cerr << "  jobs 1/2/4/8 results diverged\n";
      if (!reuse_ok) {
        std::cerr << "  exact-delta reuse ratio " << fmt_double(reuse_ratio, 1)
                  << "x below floor " << fmt_double(min_reuse_ratio, 1)
                  << "x (identical=" << delta_identical << ")\n";
      }
      if (!speedup_ok) {
        std::cerr << "  jobs=8 speedup " << fmt_double(speedup, 2) << "x below floor "
                  << fmt_double(min_speedup, 1) << "x\n";
      }
      return 1;
    }
    std::cout << "CHECK OK: observed <= exact <= holistic on " << rows.size()
              << " systems, mean pessimism gap " << fmt_percent(aggregate_gap)
              << ", jobs 1/2/4/8 bit-identical, reuse ratio " << fmt_double(reuse_ratio, 1)
              << "x"
              << (speedup_gate_active
                      ? ", jobs=8 speedup " + fmt_double(speedup, 2) + "x"
                      : "")
              << "\n";
  }
  return 0;
}
