// Fig. 9 (right) — computation time of the bus optimisation algorithms per
// node count.  Absolute numbers differ from the paper's 2005-era PC; the
// ordering BBC << OBC-CF << OBC-EE << SA and the 1-2 orders of magnitude
// gap between OBC-CF and OBC-EE are the reproduced result.  Also reports
// the number of full scheduling+analysis evaluations, a hardware-
// independent work metric.

#include <iostream>

#include "bench_common.hpp"
#include "flexopt/math/stats.hpp"
#include "flexopt/util/table.hpp"

using namespace flexopt;
using namespace flexopt::bench;

int main() {
  std::cout << "== Fig. 9 (right): optimisation runtime per node count ==\n";
  const Scale scale = Scale::current();
  scale.print(std::cout);
  const BusParams params = section7_params();

  Table table({"nodes", "BBC s", "OBCCF s", "OBCEE s", "SA s", "BBC evals", "OBCCF evals",
               "OBCEE evals", "SA evals"});

  for (int nodes = scale.min_nodes; nodes <= scale.max_nodes; ++nodes) {
    std::vector<double> t_bbc, t_cf, t_ee, t_sa;
    std::vector<double> e_bbc, e_cf, e_ee, e_sa;
    for (int i = 0; i < scale.systems_per_size; ++i) {
      auto app = section7_system(nodes, i);
      if (!app.ok()) continue;
      const auto bbc = run_bbc(app.value(), params);
      const auto cf = run_obc_cf(app.value(), params);
      const auto ee = run_obc_ee(app.value(), params, scale.obcee_sweep_points);
      const auto sa =
          run_sa(app.value(), params, scale.sa_evaluations,
                 static_cast<std::uint64_t>(nodes) * 100 + static_cast<std::uint64_t>(i));
      t_bbc.push_back(bbc.outcome.wall_seconds);
      t_cf.push_back(cf.outcome.wall_seconds);
      t_ee.push_back(ee.outcome.wall_seconds);
      t_sa.push_back(sa.outcome.wall_seconds);
      e_bbc.push_back(static_cast<double>(bbc.outcome.evaluations));
      e_cf.push_back(static_cast<double>(cf.outcome.evaluations));
      e_ee.push_back(static_cast<double>(ee.outcome.evaluations));
      e_sa.push_back(static_cast<double>(sa.outcome.evaluations));
    }
    table.add_row({std::to_string(nodes), fmt_double(summarize(t_bbc).mean, 3),
                   fmt_double(summarize(t_cf).mean, 3), fmt_double(summarize(t_ee).mean, 3),
                   fmt_double(summarize(t_sa).mean, 3), fmt_double(summarize(e_bbc).mean, 0),
                   fmt_double(summarize(e_cf).mean, 0), fmt_double(summarize(e_ee).mean, 0),
                   fmt_double(summarize(e_sa).mean, 0)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (paper): runtimes grow with system size; OBC-CF needs\n"
               "far fewer full analyses than OBC-EE for near-identical quality.\n";
  return 0;
}
