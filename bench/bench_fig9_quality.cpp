// Fig. 9 (left) — "Evaluation of Bus Optimisation Algorithms": average
// percentage deviation of the cost function obtained with BBC / OBC-CF /
// OBC-EE relative to the near-optimal SA baseline, per node count, plus the
// fraction of systems each algorithm makes schedulable.
//
// Paper's findings to reproduce in shape:
//  * BBC finds no schedulable configurations beyond 3 nodes;
//  * OBC-CF and OBC-EE stay within a few percent of SA;
//  * OBC-CF is within a fraction of a percent of OBC-EE.

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "flexopt/math/stats.hpp"
#include "flexopt/util/table.hpp"

using namespace flexopt;
using namespace flexopt::bench;

int main() {
  std::cout << "== Fig. 9 (left): schedulability degree deviation vs SA ==\n";
  const Scale scale = Scale::current();
  scale.print(std::cout);
  const BusParams params = section7_params();

  // The paper measures the deviation of each heuristic's cost vs the SA
  // result after hours of annealing.  At CI budgets SA is not always the
  // best solver, so the reference here is the best cost any of the four
  // algorithms achieved on that system (with FLEXOPT_BENCH_FULL and its
  // long SA runs the reference is almost always SA itself, recovering the
  // paper's metric).
  Table table({"nodes", "BBC dev%", "OBCCF dev%", "OBCEE dev%", "SA dev%", "BBC sched",
               "OBCCF sched", "OBCEE sched", "SA sched"});

  for (int nodes = scale.min_nodes; nodes <= scale.max_nodes; ++nodes) {
    std::vector<double> dev_bbc;
    std::vector<double> dev_cf;
    std::vector<double> dev_ee;
    std::vector<double> dev_sa;
    int sched_bbc = 0;
    int sched_cf = 0;
    int sched_ee = 0;
    int sched_sa = 0;

    for (int i = 0; i < scale.systems_per_size; ++i) {
      auto app = section7_system(nodes, i);
      if (!app.ok()) {
        std::cerr << "generator: " << app.error().message << "\n";
        return 1;
      }
      const auto bbc = run_bbc(app.value(), params);
      const auto cf = run_obc_cf(app.value(), params);
      const auto ee = run_obc_ee(app.value(), params, scale.obcee_sweep_points);
      const auto sa =
          run_sa(app.value(), params, scale.sa_evaluations,
                 static_cast<std::uint64_t>(nodes) * 100 + static_cast<std::uint64_t>(i));

      sched_bbc += bbc.outcome.feasible ? 1 : 0;
      sched_cf += cf.outcome.feasible ? 1 : 0;
      sched_ee += ee.outcome.feasible ? 1 : 0;
      sched_sa += sa.outcome.feasible ? 1 : 0;

      const double reference =
          std::min(std::min(bbc.outcome.cost.value, cf.outcome.cost.value),
                   std::min(ee.outcome.cost.value, sa.outcome.cost.value));
      if (reference >= kInvalidConfigCost) continue;  // nothing analysable
      if (bbc.outcome.cost.value < kInvalidConfigCost) {
        dev_bbc.push_back(deviation_percent(bbc.outcome.cost.value, reference));
      }
      dev_cf.push_back(deviation_percent(cf.outcome.cost.value, reference));
      dev_ee.push_back(deviation_percent(ee.outcome.cost.value, reference));
      dev_sa.push_back(deviation_percent(sa.outcome.cost.value, reference));
    }

    auto frac = [&](int n) {
      return std::to_string(n) + "/" + std::to_string(scale.systems_per_size);
    };
    table.add_row({std::to_string(nodes), fmt_double(summarize(dev_bbc).mean, 2),
                   fmt_double(summarize(dev_cf).mean, 2), fmt_double(summarize(dev_ee).mean, 2),
                   fmt_double(summarize(dev_sa).mean, 2), frac(sched_bbc), frac(sched_cf),
                   frac(sched_ee), frac(sched_sa)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (paper): BBC degrades and stops finding schedulable\n"
               "configurations as systems grow; OBC-CF tracks OBC-EE closely; both\n"
               "stay within a few percent of the near-optimal reference.\n";
  return 0;
}
