// Ablation A3 — FrameID assignment policy (Fig. 5 line 1 and Section 6.1
// guidelines): criticality-ordered unique FrameIDs (Eq. 4) vs declaration-
// order unique FrameIDs vs one shared FrameID per node.  Evaluated at the
// BBC configuration over the Fig. 9 workloads.

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "flexopt/core/config_builder.hpp"
#include "flexopt/math/stats.hpp"
#include "flexopt/util/table.hpp"

using namespace flexopt;
using namespace flexopt::bench;

namespace {

/// Evaluate the BBC-shaped configuration under a given FrameID vector.
Cost evaluate_with_frame_ids(const Application& app, const BusParams& params,
                             std::vector<int> frame_ids) {
  BusConfig config;
  config.frame_id = std::move(frame_ids);
  const auto senders = st_sender_nodes(app);
  config.static_slot_count = static_cast<int>(senders.size());
  config.static_slot_len = min_static_slot_len(app, params);
  config.static_slot_owner = senders;
  const DynBounds bounds = dyn_segment_bounds(
      app, params, static_cast<Time>(config.static_slot_count) * config.static_slot_len);
  if (!bounds.feasible()) return Cost{kInvalidConfigCost, false, 0};
  // A roomy mid-range segment keeps the comparison about FrameIDs only.
  config.minislot_count = std::min(bounds.max_minislots, bounds.min_minislots * 3 + 64);
  CostEvaluator evaluator(app, params, optimizer_analysis_options());
  const auto eval = evaluator.evaluate(config);
  return eval.valid ? eval.cost : Cost{kInvalidConfigCost, false, 0};
}

}  // namespace

int main() {
  std::cout << "== Ablation A3: FrameID assignment policy ==\n";
  const Scale scale = Scale::current();
  scale.print(std::cout);
  const BusParams params = section7_params();

  Table table({"nodes", "criticality cost", "arbitrary cost", "shared/node cost",
               "crit sched", "arb sched", "shared sched"});
  for (int nodes = scale.min_nodes; nodes <= scale.max_nodes; ++nodes) {
    std::vector<double> c_crit, c_arb, c_shared;
    int s_crit = 0, s_arb = 0, s_shared = 0;
    for (int i = 0; i < scale.systems_per_size; ++i) {
      auto app = section7_system(nodes, i);
      if (!app.ok()) continue;
      const Cost crit = evaluate_with_frame_ids(
          app.value(), params, assign_frame_ids_by_criticality(app.value(), params));
      const Cost arb = evaluate_with_frame_ids(app.value(), params,
                                               assign_frame_ids_arbitrary(app.value()));
      const Cost shared = evaluate_with_frame_ids(
          app.value(), params, assign_frame_ids_shared_per_node(app.value()));
      if (crit.value < kInvalidConfigCost) c_crit.push_back(crit.value);
      if (arb.value < kInvalidConfigCost) c_arb.push_back(arb.value);
      if (shared.value < kInvalidConfigCost) c_shared.push_back(shared.value);
      s_crit += crit.schedulable ? 1 : 0;
      s_arb += arb.schedulable ? 1 : 0;
      s_shared += shared.schedulable ? 1 : 0;
    }
    auto frac = [&](int n) {
      return std::to_string(n) + "/" + std::to_string(scale.systems_per_size);
    };
    table.add_row({std::to_string(nodes), fmt_double(summarize(c_crit).mean, 1),
                   fmt_double(summarize(c_arb).mean, 1), fmt_double(summarize(c_shared).mean, 1),
                   frac(s_crit), frac(s_arb), frac(s_shared)});
  }
  table.print(std::cout);
  std::cout << "\nReading: unique criticality-ordered FrameIDs (the paper's guideline)\n"
               "dominate; sharing FrameIDs reintroduces the hp(m) whole-cycle delays\n"
               "of Fig. 4a.\n";
  return 0;
}
