#pragma once

/// Shared infrastructure for the experiment harnesses (bench_fig*):
/// environment-based scaling, algorithm runners, and result aggregation.
///
/// Every bench prints the paper-style rows it regenerates.  By default the
/// workloads are scaled down to finish in CI time; set FLEXOPT_BENCH_FULL=1
/// to run the full Section 7 sweep (25 systems per node count, 2..7 nodes,
/// long SA runs).  Each bench prints the active scale so EXPERIMENTS.md can
/// record it.

#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>

#include "flexopt/core/solver.hpp"
#include "flexopt/gen/synthetic.hpp"

namespace flexopt::bench {

inline bool full_scale() {
  const char* v = std::getenv("FLEXOPT_BENCH_FULL");
  return v != nullptr && v[0] == '1';
}

/// Scale profile for the Fig. 9 style sweeps.
struct Scale {
  int min_nodes = 2;
  int max_nodes = 5;
  int systems_per_size = 5;
  long sa_evaluations = 600;
  int obcee_sweep_points = 48;

  static Scale current() {
    Scale s;
    if (full_scale()) {
      s.max_nodes = 7;
      s.systems_per_size = 25;
      s.sa_evaluations = 4000;
      s.obcee_sweep_points = 256;
    }
    return s;
  }

  void print(std::ostream& os) const {
    os << "# scale: nodes " << min_nodes << ".." << max_nodes << ", "
       << systems_per_size << " systems/size, SA budget " << sa_evaluations
       << " evaluations" << (full_scale() ? " (FULL)" : " (CI; FLEXOPT_BENCH_FULL=1 for full)")
       << "\n";
  }
};

/// Analysis options used inside optimisation loops: the paper's
/// GlobalSchedulingAlgorithm always places SCS tasks to minimise the FPS
/// impact (Fig. 2 line 11), so the harnesses do too.
inline AnalysisOptions optimizer_analysis_options() { return AnalysisOptions{}; }

/// Bus parameters of the Section 7 experiments: 10 Mbit/s, 5 us minislots.
inline BusParams section7_params() {
  BusParams params;
  params.gd_bit = 100;
  params.gd_macrotick = timeunits::us(1);
  params.gd_minislot = timeunits::us(5);
  return params;
}

/// Generates the i-th system of a node-count bucket per the Section 7
/// recipe (seeded deterministically).  End-to-end deadlines are 70% of the
/// periods — calibrated (like the cruise-controller case study) so the
/// suite spans the paper's regime: small systems mostly schedulable, BBC
/// increasingly failing as systems grow while OBC keeps finding solutions.
inline Expected<Application> section7_system(int nodes, int index) {
  SyntheticSpec spec;
  spec.nodes = nodes;
  spec.deadline_factor = 0.7;
  spec.seed = 1000u * static_cast<std::uint64_t>(nodes) + static_cast<std::uint64_t>(index);
  return generate_synthetic(spec, section7_params());
}

struct AlgorithmResult {
  OptimizationOutcome outcome;
  bool ran = false;
  SolveStatus status = SolveStatus::Complete;
  std::uint64_t cache_hits = 0;
  /// Winning member id of a "portfolio" run; empty otherwise.
  std::string winner;
};

/// Creates the named optimizer with `params` and solves on a fresh
/// evaluator — the shared harness path every bench drives algorithms
/// through.  Throws on registry errors (bench bugs should be loud).
inline AlgorithmResult run_algorithm(const std::string& name, const Application& app,
                                     const BusParams& params,
                                     const OptimizerParams& optimizer_params = {},
                                     const SolveRequest& request = {}) {
  auto optimizer = OptimizerRegistry::create(name, optimizer_params);
  if (!optimizer.ok()) throw std::runtime_error(optimizer.error().message);
  CostEvaluator evaluator(app, params, optimizer_analysis_options());
  const SolveReport report = optimizer.value()->solve(evaluator, request);
  return {report.outcome, true, report.status, report.cache_hits, report.winner};
}

inline AlgorithmResult run_bbc(const Application& app, const BusParams& params) {
  return run_algorithm("bbc", app, params);
}

inline AlgorithmResult run_obc_cf(const Application& app, const BusParams& params) {
  return run_algorithm("obc-cf", app, params);
}

inline AlgorithmResult run_obc_ee(const Application& app, const BusParams& params,
                                  int sweep_points) {
  ObcEeParams optimizer_params;
  optimizer_params.dyn.max_sweep_points = sweep_points;
  return run_algorithm("obc-ee", app, params, optimizer_params);
}

inline AlgorithmResult run_sa(const Application& app, const BusParams& params,
                              long evaluations, std::uint64_t seed) {
  SolveRequest request;
  request.max_evaluations = evaluations;
  request.seed = seed;
  return run_algorithm("sa", app, params, {}, request);
}

/// Percentage deviation of a cost value vs the SA reference, following the
/// Fig. 9 metric ("average percentage deviation ... relative to the cost
/// function obtained with SA").  Guarded against a zero reference.
inline double deviation_percent(double cost, double sa_cost) {
  const double denom = std::abs(sa_cost) > 1e-9 ? std::abs(sa_cost) : 1.0;
  return (cost - sa_cost) / denom * 100.0;
}

}  // namespace flexopt::bench
