// Fig. 9 at campaign scale — the quality-vs-runtime study over a diverse
// scenario population instead of the three fixture systems: 100+ scenarios
// spanning all four topology families, every scenario solved by BBC,
// OBC-CF, OBC-EE and (budgeted) SA through the campaign runner.
//
// Per node count and algorithm the harness reports the schedulable
// fraction, the average percentage deviation from the best cost any
// algorithm achieved on that scenario (the Fig. 9 quality metric), and the
// work spent (analyses, wall-clock) — quality and runtime side by side.
//
// Paper's findings to reproduce in shape:
//  * BBC stops finding schedulable configurations as systems grow;
//  * OBC-CF tracks OBC-EE within a fraction of a percent at a fraction of
//    the analyses;
//  * the heuristics stay within a few percent of the budgeted-SA reference.

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "flexopt/campaign/report.hpp"
#include "flexopt/math/stats.hpp"
#include "flexopt/util/table.hpp"

using namespace flexopt;
using namespace flexopt::bench;

int main() {
  std::cout << "== Fig. 9 (campaign): quality vs runtime over the generator family ==\n";
  const bool full = full_scale();

  CampaignSpec spec;
  spec.name = "fig9-campaign";
  spec.node_counts = full ? std::vector<int>{2, 3, 4, 5, 6, 7}
                          : std::vector<int>{2, 3, 4, 5};
  spec.topologies = {Topology::RandomDag, Topology::Pipeline, Topology::FanInFanOut,
                     Topology::GatewayHeavy};
  spec.traffic_mixes = {TrafficMix::Mixed};
  spec.replicates = full ? 10 : 7;
  spec.deadline_factor = 0.7;
  spec.base_seed = 1;
  spec.algorithms = {"bbc", "obc-cf", "obc-ee", "sa"};
  spec.max_evaluations = full ? 4000 : 600;

  const std::size_t scenario_count = spec.node_counts.size() * spec.topologies.size() *
                                     static_cast<std::size_t>(spec.replicates);
  std::cout << "# scale: " << scenario_count << " scenarios ("
            << spec.node_counts.size() << " node counts x " << spec.topologies.size()
            << " topologies x " << spec.replicates << " replicates), budget "
            << spec.max_evaluations << " analyses/solve"
            << (full ? " (FULL)" : " (CI; FLEXOPT_BENCH_FULL=1 for full)") << "\n";

  CampaignRunner runner(spec, section7_params());
  CampaignOptions options;
  options.progress = [](std::size_t done, std::size_t total) {
    std::cerr << "\rscenario " << done << "/" << total;
    if (done == total) std::cerr << "\n";
  };
  auto result = runner.run(options);
  if (!result.ok()) {
    std::cerr << "campaign: " << result.error().message << "\n";
    return 1;
  }

  // Quality: deviation of each algorithm's cost from the best cost any
  // algorithm achieved on the same scenario (with long SA runs the best is
  // almost always SA itself, recovering the paper's metric).
  std::cout << "\nquality (mean % deviation from best) and schedulable fraction:\n";
  Table quality({"nodes", "BBC dev%", "OBCCF dev%", "OBCEE dev%", "SA dev%", "BBC sched",
                 "OBCCF sched", "OBCEE sched", "SA sched"});
  for (const int nodes : spec.node_counts) {
    std::vector<std::vector<double>> dev(spec.algorithms.size());
    std::vector<int> sched(spec.algorithms.size(), 0);
    int population = 0;
    for (const ScenarioRecord& record : result.value().scenarios) {
      if (!record.generated || record.plan.scenario.base.nodes != nodes) continue;
      if (record.runs.size() != spec.algorithms.size()) continue;
      ++population;
      double reference = kInvalidConfigCost;
      for (const AlgorithmRun& run : record.runs) reference = std::min(reference, run.cost);
      for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
        const AlgorithmRun& run = record.runs[a];
        if (run.feasible) ++sched[a];
        if (reference < kInvalidConfigCost && run.cost < kInvalidConfigCost) {
          dev[a].push_back(deviation_percent(run.cost, reference));
        }
      }
    }
    auto frac = [&](int n) { return std::to_string(n) + "/" + std::to_string(population); };
    quality.add_row({std::to_string(nodes), fmt_double(summarize(dev[0]).mean, 2),
                     fmt_double(summarize(dev[1]).mean, 2),
                     fmt_double(summarize(dev[2]).mean, 2),
                     fmt_double(summarize(dev[3]).mean, 2), frac(sched[0]), frac(sched[1]),
                     frac(sched[2]), frac(sched[3])});
  }
  quality.print(std::cout);

  std::cout << "\nruntime (analyses and wall-clock per scenario):\n";
  Table runtime({"algorithm", "scenarios", "schedulable", "analyses/scenario",
                 "wall s/scenario", "cache hits"});
  for (const std::string& name : spec.algorithms) {
    const AlgorithmAggregate agg = aggregate_runs(result.value(), name);
    runtime.add_row({name, std::to_string(agg.scenarios),
                     fmt_percent(agg.schedulable_fraction),
                     fmt_double(agg.evaluations_mean, 1),
                     fmt_double(agg.scenarios > 0
                                    ? agg.wall_seconds_total /
                                          static_cast<double>(agg.scenarios)
                                    : 0.0,
                                3),
                     std::to_string(agg.cache_hits_total)});
  }
  runtime.print(std::cout);

  std::cout << "\ncampaign wall-clock: " << fmt_double(result.value().wall_seconds, 1)
            << " s\nExpected shape (paper): BBC degrades with size; OBC-CF tracks OBC-EE\n"
               "closely at far fewer analyses; both stay within a few percent of the\n"
               "reference.\n";
  return 0;
}
