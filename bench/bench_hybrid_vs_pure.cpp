// Extension experiment — the paper's opening claim: FlexRay's value is the
// *combination* of static and dynamic transmission ("offering the
// advantages of both worlds").  We take mixed workloads (time-triggered
// control loops + event-triggered service chains) and materialise each
// three ways: as designed (hybrid ST+DYN), forced all-TT (TTP-style pure
// static cycle) and forced all-ET (Byteflight-style pure dynamic cycle),
// then let OBC-CF configure the bus for each and compare.

#include <iostream>

#include "bench_common.hpp"
#include "flexopt/core/mapping.hpp"
#include "flexopt/flexray/bus_layout.hpp"
#include "flexopt/math/stats.hpp"
#include "flexopt/util/rng.hpp"
#include "flexopt/util/table.hpp"

using namespace flexopt;
using namespace flexopt::bench;

namespace {

/// Mixed workload: tight TT control loops and slower ET service chains.
LogicalApplication make_workload(std::uint64_t seed) {
  Rng rng(seed);
  LogicalApplication l;
  l.node_count = 3;
  l.graphs.push_back({"ctrl0", timeunits::ms(10), timeunits::ms(8), true});
  l.graphs.push_back({"ctrl1", timeunits::ms(20), timeunits::ms(16), true});
  l.graphs.push_back({"svc0", timeunits::ms(40), timeunits::ms(32), false});
  l.graphs.push_back({"svc1", timeunits::ms(80), timeunits::ms(64), false});
  for (std::uint32_t g = 0; g < l.graphs.size(); ++g) {
    const int len = 5;
    for (int i = 0; i < len; ++i) {
      l.tasks.push_back({l.graphs[g].name + "_t" + std::to_string(i), g,
                         timeunits::us(rng.uniform_int(250, 900)), i});
      if (i > 0) {
        const auto idx = static_cast<std::uint32_t>(l.tasks.size());
        l.flows.push_back(
            {idx - 2, idx - 1, static_cast<int>(rng.uniform_int(2, 12)), i});
      }
    }
  }
  return l;
}

/// Force every graph to one trigger class.
LogicalApplication with_trigger(LogicalApplication l, bool time_triggered) {
  for (LogicalGraph& g : l.graphs) g.time_triggered = time_triggered;
  return l;
}

struct VariantStats {
  int schedulable = 0;
  std::vector<double> costs;
  std::vector<double> cycle_us;
  std::vector<double> st_share;
};

}  // namespace

int main() {
  std::cout << "== Extension: hybrid ST+DYN cycle vs pure-TT and pure-ET ==\n";
  const BusParams params = section7_params();
  const int systems = full_scale() ? 12 : 5;
  std::cout << "# " << systems << " mixed workloads, 3 nodes, 20 tasks each;\n"
               "# bus configured per variant by OBC-CF over a round-robin mapping\n";

  VariantStats hybrid;
  VariantStats pure_tt;
  VariantStats pure_et;

  for (int i = 0; i < systems; ++i) {
    const LogicalApplication base = make_workload(77 + static_cast<std::uint64_t>(i));
    // Fixed round-robin mapping so the comparison isolates the bus protocol
    // configuration (the flows crossing nodes are identical per variant).
    std::vector<int> mapping(base.tasks.size());
    for (std::size_t t = 0; t < mapping.size(); ++t) {
      mapping[t] = static_cast<int>(t % static_cast<std::size_t>(base.node_count));
    }

    auto evaluate = [&](const LogicalApplication& logical, VariantStats* stats) {
      auto app = logical.materialize(mapping);
      if (!app.ok()) return;
      const OptimizationOutcome outcome =
          run_algorithm("obc-cf", app.value(), params).outcome;
      stats->schedulable += outcome.feasible ? 1 : 0;
      if (outcome.cost.value < kInvalidConfigCost) {
        stats->costs.push_back(outcome.cost.value);
        auto layout = BusLayout::build(app.value(), params, outcome.config);
        if (layout.ok()) {
          stats->cycle_us.push_back(to_us(layout.value().cycle_len()));
          stats->st_share.push_back(
              static_cast<double>(layout.value().st_segment_len()) /
              static_cast<double>(layout.value().cycle_len()));
        }
      }
    };
    evaluate(base, &hybrid);
    evaluate(with_trigger(base, true), &pure_tt);
    evaluate(with_trigger(base, false), &pure_et);
  }

  Table table({"cycle style", "schedulable", "avg cost (us)", "avg gdCycle (us)",
               "ST share"});
  auto row = [&](const char* name, const VariantStats& s) {
    table.add_row({name, std::to_string(s.schedulable) + "/" + std::to_string(systems),
                   fmt_double(summarize(s.costs).mean, 1),
                   fmt_double(summarize(s.cycle_us).mean, 1),
                   fmt_percent(summarize(s.st_share).mean, 0)});
  };
  row("hybrid ST+DYN (FlexRay)", hybrid);
  row("pure TT (TTP-style)", pure_tt);
  row("pure ET (Byteflight-style)", pure_et);
  table.print(std::cout);
  std::cout << "\nReading: a pure dynamic cycle (Byteflight-style) loses the tight\n"
               "control deadlines outright — determinism needs the ST segment.  A pure\n"
               "static cycle squeezes out slightly more laxity on this *strictly\n"
               "periodic* worst-case workload, but it reserves table slots for every\n"
               "service message on every occurrence; the hybrid cycle stays within a\n"
               "few percent of it while serving the event chains from the DYN segment\n"
               "without reservations — the flexibility argument the paper opens with\n"
               "(sporadic event traffic costs a pure-TT design bandwidth even when\n"
               "nothing happens).\n";
  return 0;
}
