// Fig. 4 — "Optimisation of the DYN segment".
//
// Regenerates the three-scenario comparison of FrameID assignment and DYN
// segment length: (a) m1/m3 share FrameID 1 (Table A), (b) unique FrameIDs
// (Table B), (c) unique FrameIDs + enlarged DYN segment.  The paper reports
// R2 = 37 / 35 / 21; our frame constants give 30 / 29 / 16 — the identical
// strict ordering with the same qualitative causes.

#include <iostream>

#include "flexopt/analysis/system_analysis.hpp"
#include "flexopt/gen/figures.hpp"
#include "flexopt/sim/simulator.hpp"
#include "flexopt/util/table.hpp"

using namespace flexopt;

int main() {
  std::cout << "== Fig. 4: DYN FrameID assignment / segment length vs R(m2) ==\n";
  const FigureBundle bundle = build_fig4();
  const MessageId m2 = bundle.focus[0];

  Table table({"scenario", "gdCycle", "R(m2) sim", "R(m2) wcrt", "R2 paper", "R(m3) sim"});
  const char* paper_r2[3] = {"37", "35", "21"};

  for (std::size_t i = 0; i < bundle.configs.size(); ++i) {
    auto layout = BusLayout::build(bundle.app, bundle.params, bundle.configs[i]);
    if (!layout.ok()) {
      std::cerr << "layout error: " << layout.error().message << "\n";
      return 1;
    }
    auto analysis = analyze_system(layout.value());
    if (!analysis.ok()) {
      std::cerr << "analysis error: " << analysis.error().message << "\n";
      return 1;
    }
    auto sim = simulate(layout.value(), analysis.value().schedule());
    if (!sim.ok()) {
      std::cerr << "sim error: " << sim.error().message << "\n";
      return 1;
    }
    table.add_row({bundle.labels[i], format_time(layout.value().cycle_len()),
                   format_time(sim.value().message_worst_completion[index_of(m2)]),
                   format_time(analysis.value().message_completion[index_of(m2)]),
                   paper_r2[i],
                   format_time(sim.value().message_worst_completion[index_of(bundle.focus[2])])});
  }
  table.print(std::cout);
  std::cout << "\nShape check: R2(a) > R2(b) > R2(c), matching the paper's 37 > 35 > 21.\n"
            << "The analysis column upper-bounds the simulated value (worst-case phasing).\n";
  return 0;
}
