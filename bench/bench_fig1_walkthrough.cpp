// Fig. 1 — protocol walkthrough: prints the bus timeline of the paper's
// introductory example (messages ma..mh over two communication cycles),
// showing static slots, FTDMA arbitration, the mf/mg shared-FrameID
// priority decision and the pLatestTx deferral of mh.

#include <algorithm>
#include <iostream>

#include "flexopt/analysis/system_analysis.hpp"
#include "flexopt/gen/figures.hpp"
#include "flexopt/sim/simulator.hpp"
#include "flexopt/util/table.hpp"

using namespace flexopt;

int main() {
  std::cout << "== Fig. 1: FlexRay communication cycle walkthrough ==\n";
  const FigureBundle bundle = build_fig1();
  auto layout = BusLayout::build(bundle.app, bundle.params, bundle.configs[0]);
  if (!layout.ok()) {
    std::cerr << "layout: " << layout.error().message << "\n";
    return 1;
  }
  AnalysisOptions analysis_options;
  analysis_options.scheduler.placement = Placement::Asap;  // replay the figure's ASAP table
  auto analysis = analyze_system(layout.value(), analysis_options);
  if (!analysis.ok()) {
    std::cerr << "analysis: " << analysis.error().message << "\n";
    return 1;
  }
  SimOptions options;
  options.record_trace = true;
  auto sim = simulate(layout.value(), analysis.value().schedule(), options);
  if (!sim.ok()) {
    std::cerr << "sim: " << sim.error().message << "\n";
    return 1;
  }

  std::cout << "cycle: " << format_time(layout.value().cycle_len()) << " (ST "
            << format_time(layout.value().st_segment_len()) << " + DYN "
            << format_time(layout.value().dyn_segment_len()) << ")\n\n";

  auto trace = sim.value().trace;
  std::sort(trace.begin(), trace.end(),
            [](const TransmissionRecord& a, const TransmissionRecord& b) {
              return a.start < b.start;
            });
  Table table({"t (us)", "message", "segment", "slot/FrameID", "cycle", "cl:hop",
               "finish (us)"});
  for (const TransmissionRecord& r : trace) {
    if (r.instance != 0) continue;  // first period only, like the figure
    table.add_row({fmt_double(to_us(r.start), 0),
                   bundle.app.messages()[index_of(r.message)].name,
                   r.dynamic ? "DYN" : "ST",
                   std::to_string(r.dynamic ? r.slot : r.slot + 1),
                   std::to_string(r.cycle),
                   std::to_string(r.cluster) + ":" + std::to_string(r.hop_index),
                   fmt_double(to_us(r.finish), 0)});
  }
  table.print(std::cout);
  std::cout << "\nNote mh (FrameID 5): ready before cycle 1 but deferred to cycle 2 by the\n"
               "pLatestTx gate, and mg deferred behind the higher-priority mf on FrameID 4 —\n"
               "exactly the behaviour Fig. 1 illustrates.\n";
  return 0;
}
