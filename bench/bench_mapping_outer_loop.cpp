// Extension experiment — the outer loop the paper motivates OBC-CF with
// (Section 6.2: the bus access heuristic "can be placed inside other
// optimisation loops, e.g. for task mapping", so per-candidate cost must
// stay low).  A hill-climbing task-mapping exploration scores every
// candidate mapping with a full bus access optimisation; we compare the
// same search with OBC-CF vs OBC-EE as the inner optimiser.

#include <iostream>

#include "bench_common.hpp"
#include "flexopt/util/rng.hpp"
#include "flexopt/core/mapping.hpp"
#include "flexopt/util/table.hpp"

using namespace flexopt;
using namespace flexopt::bench;

namespace {

/// A 4-node logical system: two TT control pipelines and two ET event
/// chains whose placement decides how many bus messages exist at all.
LogicalApplication make_logical(std::uint64_t seed) {
  Rng rng(seed);
  LogicalApplication l;
  l.node_count = 4;
  l.graphs.push_back({"ctrl_a", timeunits::ms(20), timeunits::ms(14), true});
  l.graphs.push_back({"ctrl_b", timeunits::ms(40), timeunits::ms(28), true});
  l.graphs.push_back({"evt_a", timeunits::ms(40), timeunits::ms(28), false});
  l.graphs.push_back({"evt_b", timeunits::ms(80), timeunits::ms(56), false});
  for (std::uint32_t g = 0; g < l.graphs.size(); ++g) {
    const int len = 6;
    for (int i = 0; i < len; ++i) {
      l.tasks.push_back({l.graphs[g].name + "_t" + std::to_string(i), g,
                         timeunits::us(rng.uniform_int(400, 1600)), i});
      if (i > 0) {
        const auto idx = static_cast<std::uint32_t>(l.tasks.size());
        l.flows.push_back({idx - 2, idx - 1, static_cast<int>(rng.uniform_int(4, 24)),
                           i});
      }
    }
  }
  return l;
}

}  // namespace

int main() {
  std::cout << "== Extension: task mapping around the bus access optimiser ==\n";
  const Scale scale = Scale::current();
  const BusParams params = section7_params();
  const int systems = full_scale() ? 10 : 4;
  std::cout << "# " << systems << " logical systems, 4 nodes, 24 tasks each\n";

  Table table({"inner", "feasible", "avg cost (us)", "avg mappings", "avg analyses",
               "avg time (s)"});

  for (const bool use_curve_fit : {true, false}) {
    double cost_sum = 0.0;
    long evals = 0;
    int mappings = 0;
    int feasible = 0;
    double seconds = 0.0;
    for (int i = 0; i < systems; ++i) {
      const LogicalApplication logical = make_logical(42 + static_cast<std::uint64_t>(i));
      CurveFitDynSearch cf;
      ExhaustiveDynOptions eopt;
      eopt.max_sweep_points = scale.obcee_sweep_points;
      ExhaustiveDynSearch ee(eopt);
      DynSegmentStrategy& strategy =
          use_curve_fit ? static_cast<DynSegmentStrategy&>(cf)
                        : static_cast<DynSegmentStrategy&>(ee);
      MappingOptions options;
      options.moves_per_restart = 20;
      options.stop_at_first_feasible = false;
      auto outcome = optimize_mapping(logical, params, optimizer_analysis_options(),
                                      strategy, options);
      if (!outcome.ok()) {
        std::cerr << outcome.error().message << "\n";
        return 1;
      }
      cost_sum += outcome.value().bus.cost.value;
      evals += outcome.value().evaluations;
      mappings += outcome.value().mappings_tried;
      feasible += outcome.value().bus.feasible ? 1 : 0;
      seconds += outcome.value().wall_seconds;
    }
    table.add_row({use_curve_fit ? "OBC-CF" : "OBC-EE",
                   std::to_string(feasible) + "/" + std::to_string(systems),
                   fmt_double(cost_sum / systems, 1),
                   fmt_double(static_cast<double>(mappings) / systems, 1),
                   fmt_double(static_cast<double>(evals) / systems, 0),
                   fmt_double(seconds / systems, 3)});
  }
  table.print(std::cout);
  std::cout << "\nReading: both inner optimisers reach comparable mapping quality, but\n"
               "the curve-fitting heuristic spends far fewer full analyses per mapping\n"
               "candidate — the property that makes nesting it in outer design loops\n"
               "practical, exactly as the paper argues.\n";
  return 0;
}
