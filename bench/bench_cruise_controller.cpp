// Section 7 case study — the vehicle cruise controller (54 tasks, 26
// messages, 4 task graphs over 5 nodes).  The paper reports:
//  * BBC: < 5 s but unschedulable;
//  * OBC-CF: 137 s, schedulable;
//  * OBC-EE: 29 min, schedulable, cost ~1.2% better than OBC-CF.
// Absolute runtimes reflect our host and scaled exploration caps; the
// reproduced shape is the feasibility split and the OBC-CF / OBC-EE
// quality-vs-effort trade.

#include <iostream>

#include "bench_common.hpp"
#include "flexopt/gen/cruise_control.hpp"
#include "flexopt/util/table.hpp"

using namespace flexopt;
using namespace flexopt::bench;

int main() {
  std::cout << "== Section 7 case study: vehicle cruise controller ==\n";
  const Application app = build_cruise_controller();
  const BusParams params = cruise_controller_params();
  std::cout << "system: " << app.task_count() << " tasks, " << app.message_count()
            << " messages, " << app.graph_count() << " graphs, " << app.node_count()
            << " nodes\n\n";

  // The paper's BBC is unschedulable on the CC; reproduce that regime by
  // restricting BBC to its minimal static segment and a coarse sweep.
  const auto bbc = run_bbc(app, params);
  const auto cf = run_obc_cf(app, params);
  const auto ee = run_obc_ee(app, params, full_scale() ? 512 : 96);
  const auto sa = run_sa(app, params, full_scale() ? 6000 : 1500, 7);

  Table table({"algorithm", "schedulable", "cost (us)", "evals", "time (s)", "paper"});
  auto row = [&](const char* name, const OptimizationOutcome& o, const char* paper) {
    table.add_row({name, o.feasible ? "yes" : "NO", fmt_double(o.cost.value, 1),
                   std::to_string(o.evaluations), fmt_double(o.wall_seconds, 3), paper});
  };
  row("BBC", bbc.outcome, "<5s, unschedulable");
  row("OBC-CF", cf.outcome, "137s, schedulable");
  row("OBC-EE", ee.outcome, "29min, schedulable");
  row("SA", sa.outcome, "(reference)");
  table.print(std::cout);

  if (cf.outcome.feasible && ee.outcome.feasible) {
    const double rel = (cf.outcome.cost.value - ee.outcome.cost.value) /
                       std::abs(ee.outcome.cost.value) * 100.0;
    std::cout << "\nOBC-CF cost is " << fmt_double(rel, 2)
              << "% away from OBC-EE (paper: 1.2%), using "
              << cf.outcome.evaluations << " vs " << ee.outcome.evaluations
              << " full analyses.\n";
  }
  return 0;
}
