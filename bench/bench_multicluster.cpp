// Multi-cluster solving bench and conformance gate.  Over a small
// population of MultiCluster scenarios (2..4 gateway-chained clusters,
// 25% inter-cluster traffic), solves each system with bbc and with the
// racing portfolio through the cluster coordinate descent and records
// cost/feasibility/work per system — the first bench trajectory for the
// multi-cluster workload axis (BENCH_multicluster.json, published by the
// perf-smoke CI job).
//
// The CI-facing --check gate asserts:
// (1) every scenario of the population generates, projects and solves to a
//     feasible product (the workload axis must not silently regress), and
// (2) the portfolio descent report is byte-identical between --jobs 1 and
//     a parallel run (the determinism contract across the descent).

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "flexopt/core/portfolio.hpp"
#include "flexopt/gen/scenario.hpp"
#include "flexopt/io/json_writer.hpp"
#include "flexopt/io/solve_report_json.hpp"
#include "flexopt/model/cluster_backend.hpp"
#include "flexopt/model/system_model.hpp"
#include "flexopt/util/table.hpp"

using namespace flexopt;
using namespace flexopt::bench;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct SystemResult {
  int clusters = 0;
  int index = 0;
  std::size_t tasks = 0;
  std::size_t relay_links = 0;
  double bbc_cost = kInvalidConfigCost;
  double portfolio_cost = kInvalidConfigCost;
  bool feasible = false;
  long evaluations = 0;
  std::string winner;
  bool deterministic = false;
  double wall_seconds = 0.0;
};

SolveReport solve_with(const SystemModel& model, const BusParams& params,
                       const std::string& algorithm, const OptimizerParams& payload,
                       std::uint64_t seed, long budget) {
  auto optimizer = OptimizerRegistry::create(algorithm, payload);
  if (!optimizer.ok()) throw std::runtime_error(optimizer.error().message);
  EvaluatorOptions options;
  options.threads = 1;
  CostEvaluator evaluator(model, params, AnalysisOptions{}, options);
  SolveRequest request;
  request.seed = seed;
  request.max_evaluations = budget;
  return optimizer.value()->solve(evaluator, request);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  bool check = false;
  long budget = full_scale() ? 600 : 160;
  int systems_per_size = full_scale() ? 6 : 2;
  BackendMix backend = BackendMix::Flexray;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--budget" && i + 1 < argc) {
      budget = std::stol(argv[++i]);
    } else if (arg == "--backend" && i + 1 < argc) {
      auto parsed = parse_backend_mix(argv[++i]);
      if (!parsed.ok()) {
        std::cerr << "bench_multicluster: " << parsed.error().message << "\n";
        return 2;
      }
      backend = parsed.value();
    } else {
      std::cerr << "usage: bench_multicluster [--out FILE] [--check] [--budget N]"
                   " [--backend flexray|tsn|mixed]\n";
      return 2;
    }
  }

  const BusParams params;
  std::vector<SystemResult> results;
  bool all_ok = true;

  for (int clusters = 2; clusters <= 4; ++clusters) {
    for (int index = 0; index < systems_per_size; ++index) {
      ScenarioSpec spec;
      spec.topology = Topology::MultiCluster;
      spec.traffic = TrafficMix::DynOnly;
      spec.clusters = clusters;
      spec.backend = backend;
      spec.inter_cluster_share = 0.25;
      spec.base.nodes = clusters * 2;
      spec.base.tasks_per_node = 4;
      spec.base.tasks_per_graph = 4;
      spec.base.deadline_factor = 2.0;
      spec.base.seed = static_cast<std::uint64_t>(1000 * clusters + index);

      SystemResult row;
      row.clusters = clusters;
      row.index = index;
      auto app = generate_scenario(spec, params);
      if (!app.ok()) {
        std::cerr << "generation failed (" << clusters << "/" << index
                  << "): " << app.error().message << "\n";
        all_ok = false;
        continue;
      }
      auto model =
          SystemModel::build(std::make_shared<const Application>(std::move(app).value()));
      if (!model.ok()) {
        std::cerr << "projection failed (" << clusters << "/" << index
                  << "): " << model.error().message << "\n";
        all_ok = false;
        continue;
      }
      row.tasks = model.value().global()->task_count();
      row.relay_links = model.value().relay_links().size();

      const auto started = std::chrono::steady_clock::now();
      const SolveReport bbc =
          solve_with(model.value(), params, "bbc", {}, spec.base.seed, budget);
      row.bbc_cost = bbc.outcome.cost.value;

      PortfolioSpec portfolio;
      portfolio.members = {"sa", "obc-cf", "bbc"};
      portfolio.jobs = 1;
      const SolveReport serial =
          solve_with(model.value(), params, "portfolio", portfolio, spec.base.seed, budget);
      portfolio.jobs = 0;  // hardware concurrency
      const SolveReport parallel =
          solve_with(model.value(), params, "portfolio", portfolio, spec.base.seed, budget);
      row.wall_seconds = seconds_since(started);

      row.portfolio_cost = serial.outcome.cost.value;
      row.feasible = serial.outcome.feasible;
      row.evaluations = serial.outcome.evaluations;
      row.winner = serial.winner;
      row.deterministic =
          write_solve_json(*model.value().global(), "portfolio", serial) ==
          write_solve_json(*model.value().global(), "portfolio", parallel);
      if (!row.feasible || !row.deterministic) all_ok = false;
      results.push_back(row);
    }
  }

  Table table({"clusters", "system", "tasks", "relays", "bbc cost", "portfolio cost",
               "feasible", "deterministic"});
  for (const SystemResult& r : results) {
    table.add_row({std::to_string(r.clusters), std::to_string(r.index),
                   std::to_string(r.tasks), std::to_string(r.relay_links),
                   fmt_double(r.bbc_cost, 1), fmt_double(r.portfolio_cost, 1),
                   r.feasible ? "yes" : "NO", r.deterministic ? "yes" : "NO"});
  }
  table.print(std::cout);

  if (!out_path.empty()) {
    JsonWriter json;
    json.begin_object();
    json.field("bench", "multicluster");
    json.field("backend", to_string(backend));
    json.field("budget", budget);
    json.field("systems", results.size());
    json.key("results").begin_array();
    for (const SystemResult& r : results) {
      json.begin_object()
          .field("clusters", r.clusters)
          .field("index", r.index)
          .field("tasks", r.tasks)
          .field("relay_links", r.relay_links)
          .field("bbc_cost", r.bbc_cost)
          .field("portfolio_cost", r.portfolio_cost)
          .field("feasible", r.feasible)
          .field("evaluations", r.evaluations)
          .field("winner", r.winner)
          .field("deterministic", r.deterministic)
          .field("wall_seconds", r.wall_seconds)
          .end_object();
    }
    json.end_array();
    json.end_object();
    std::ofstream out(out_path, std::ios::binary);
    out << json.str() << "\n";
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 2;
    }
    std::cout << "wrote " << out_path << "\n";
  }

  if (check) {
    const std::size_t expected =
        static_cast<std::size_t>(3) * static_cast<std::size_t>(systems_per_size);
    if (results.size() != expected || !all_ok) {
      std::cerr << "CHECK FAILED: " << results.size() << "/" << expected
                << " systems solved, all_ok=" << all_ok << "\n";
      return 1;
    }
    std::cout << "CHECK OK: " << results.size()
              << " multicluster systems solved feasibly, jobs-invariant\n";
  }
  return 0;
}
