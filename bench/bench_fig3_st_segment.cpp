// Fig. 3 — "Optimisation of the ST segment".
//
// Regenerates the three-scenario comparison: the same two-node system under
// (a) two minimal ST slots, (b) three slots, (c) two longer slots with
// frame packing.  The paper reports R3 = 16 / 12 / 10; our frame timing
// reproduces those numbers exactly (see EXPERIMENTS.md).

#include <iostream>

#include "flexopt/analysis/system_analysis.hpp"
#include "flexopt/gen/figures.hpp"
#include "flexopt/sim/simulator.hpp"
#include "flexopt/util/table.hpp"

using namespace flexopt;

int main() {
  std::cout << "== Fig. 3: ST segment structure vs response time of m3 ==\n";
  const FigureBundle bundle = build_fig3();

  Table table({"scenario", "gdCycle", "R(m1)", "R(m2)", "R(m3)", "R3 paper", "sim==analysis"});
  const char* paper_r3[3] = {"16", "12", "10"};

  for (std::size_t i = 0; i < bundle.configs.size(); ++i) {
    auto layout = BusLayout::build(bundle.app, bundle.params, bundle.configs[i]);
    if (!layout.ok()) {
      std::cerr << "layout error: " << layout.error().message << "\n";
      return 1;
    }
    auto analysis = analyze_system(layout.value());
    if (!analysis.ok()) {
      std::cerr << "analysis error: " << analysis.error().message << "\n";
      return 1;
    }
    auto sim = simulate(layout.value(), analysis.value().schedule());
    if (!sim.ok()) {
      std::cerr << "sim error: " << sim.error().message << "\n";
      return 1;
    }
    bool match = true;
    for (std::uint32_t m = 0; m < bundle.app.message_count(); ++m) {
      if (sim.value().message_worst_completion[m] != analysis.value().message_completion[m]) {
        match = false;
      }
    }
    table.add_row({bundle.labels[i], format_time(layout.value().cycle_len()),
                   format_time(analysis.value().message_completion[0]),
                   format_time(analysis.value().message_completion[1]),
                   format_time(analysis.value().message_completion[2]), paper_r3[i],
                   match ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nShape check: R3(a) > R3(b) > R3(c), matching the paper's 16 > 12 > 10.\n";
  return 0;
}
