// Fig. 7 — "Influence of DYN Segment Length on Message Response Times".
//
// Regenerates the U-shaped curves: worst-case response times of DYN
// messages in a 45-task system (10 ST + 20 DYN messages) as the DYN segment
// length sweeps its admissible range with the ST segment pinned.  Short
// segments inflate BusCycles_m (many filled cycles); long segments inflate
// gdCycle itself (Eq. 3) — response times are minimal in between.

#include <algorithm>
#include <iostream>
#include <vector>

#include "flexopt/analysis/system_analysis.hpp"
#include "flexopt/core/config_builder.hpp"
#include "flexopt/flexray/bus_layout.hpp"
#include "flexopt/gen/figures.hpp"
#include "flexopt/util/table.hpp"

using namespace flexopt;

int main() {
  std::cout << "== Fig. 7: DYN message WCRT vs DYN segment length ==\n";
  const FigureBundle bundle = build_fig7();
  BusConfig config = bundle.configs[0];

  const Time st_len =
      static_cast<Time>(config.static_slot_count) * config.static_slot_len;
  const DynBounds bounds = dyn_segment_bounds(bundle.app, bundle.params, st_len);
  if (!bounds.feasible()) {
    std::cerr << "infeasible DYN bounds\n";
    return 1;
  }

  // Sample ~24 lengths across the admissible range (the paper plots ~20).
  const int samples = 24;
  const int stride =
      std::max(1, (bounds.max_minislots - bounds.min_minislots) / (samples - 1));

  // Report the five most-loaded DYN messages (stable picks: spread over the
  // focus list) the way the figure plots a handful of curves.
  std::vector<MessageId> curves;
  for (std::size_t i = 0; i < bundle.focus.size(); i += bundle.focus.size() / 5) {
    curves.push_back(bundle.focus[i]);
    if (curves.size() == 5) break;
  }

  std::vector<std::string> header{"DYNbus (us)", "gdCycle (us)", "cost (us)"};
  for (const MessageId m : curves) {
    header.push_back("R(" + bundle.app.messages()[index_of(m)].name + ") us");
  }
  Table table(std::move(header));

  struct Sample {
    int minislots;
    double max_r;
  };
  std::vector<Sample> profile;

  AnalysisOptions options;
  options.scheduler.placement = Placement::Asap;

  for (int minislots = bounds.min_minislots; minislots <= bounds.max_minislots;
       minislots += stride) {
    config.minislot_count = minislots;
    auto layout = BusLayout::build(bundle.app, bundle.params, config);
    if (!layout.ok()) continue;
    auto analysis = analyze_system(layout.value(), options);
    if (!analysis.ok()) continue;

    std::vector<std::string> row{
        fmt_double(to_us(layout.value().dyn_segment_len()), 1),
        fmt_double(to_us(layout.value().cycle_len()), 1),
        fmt_double(analysis.value().cost.value, 0),
    };
    double max_r = 0.0;
    for (const MessageId m : bundle.focus) {
      const Time r = analysis.value().message_completion[index_of(m)];
      max_r = std::max(max_r, r == kTimeInfinity ? 1e12 : to_us(r));
    }
    for (const MessageId m : curves) {
      const Time r = analysis.value().message_completion[index_of(m)];
      row.push_back(r == kTimeInfinity ? "inf" : fmt_double(to_us(r), 0));
    }
    table.add_row(std::move(row));
    profile.push_back({minislots, max_r});
  }
  table.print(std::cout);

  // Locate the empirical minimum of the max-response curve and verify the
  // U shape: both endpoints are worse than the interior minimum.
  const auto best = std::min_element(profile.begin(), profile.end(),
                                     [](const Sample& a, const Sample& b) {
                                       return a.max_r < b.max_r;
                                     });
  std::cout << "\nU-shape: max DYN WCRT minimised at DYNbus = "
            << best->minislots << " minislots ("
            << fmt_double(to_us(static_cast<Time>(best->minislots) *
                                bundle.params.gd_minislot), 1)
            << " us); left endpoint " << fmt_double(profile.front().max_r, 0)
            << " us, minimum " << fmt_double(best->max_r, 0) << " us, right endpoint "
            << fmt_double(profile.back().max_r, 0) << " us.\n";
  const bool u_shape = profile.front().max_r > best->max_r && profile.back().max_r > best->max_r;
  std::cout << (u_shape ? "U-shape confirmed (as in Fig. 7).\n"
                        : "WARNING: no interior minimum found.\n");
  return u_shape ? 0 : 1;
}
