// Evaluator service bench — the seam the unified Solver API load-bears on:
// the thread-safe CostEvaluator with its memoization cache and
// evaluate_many() worker pool.  Sweeps the same candidate set (with the
// revisits a nested OBC/SA exploration produces) three ways and checks the
// costs are bit-identical:
//
//   serial/uncached   — the pre-registry behaviour: one full analysis per
//                       visit, one thread
//   serial/cached     — same thread count, revisits served from the cache
//   parallel/cached   — evaluate_many() on the worker pool
//
// "analyses" counts full holistic analyses (the Fig. 9 work metric); the
// cached runs must produce identical costs with strictly fewer analyses.

#include <chrono>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "flexopt/core/config_builder.hpp"
#include "flexopt/gen/cruise_control.hpp"
#include "flexopt/util/table.hpp"

using namespace flexopt;
using namespace flexopt::bench;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main() {
  std::cout << "== Evaluator throughput: cache + evaluate_many vs serial ==\n";
  const Application app = build_cruise_controller();
  const BusParams params = cruise_controller_params();

  // BBC-shaped base configuration; candidates sweep the DYN length twice
  // (the second pass models the revisits of a nested exploration).
  BusConfig base;
  base.frame_id = assign_frame_ids_by_criticality(app, params);
  const auto senders = st_sender_nodes(app);
  base.static_slot_count = static_cast<int>(senders.size());
  base.static_slot_len = min_static_slot_len(app, params);
  base.static_slot_owner = senders;
  const DynBounds bounds = dyn_segment_bounds(
      app, params, static_cast<Time>(base.static_slot_count) * base.static_slot_len);
  if (!bounds.feasible()) {
    std::cerr << "no feasible DYN bounds\n";
    return 1;
  }
  const int sweep = full_scale() ? 192 : 64;
  const int stride =
      std::max(1, (bounds.max_minislots - bounds.min_minislots) / std::max(1, sweep - 1));
  std::vector<BusConfig> candidates;
  for (int pass = 0; pass < 2; ++pass) {
    for (int ms = bounds.min_minislots; ms <= bounds.max_minislots; ms += stride) {
      candidates.push_back(base);
      candidates.back().minislot_count = ms;
    }
  }

  struct Run {
    const char* label;
    EvaluatorOptions options;
    bool parallel;
  };
  EvaluatorOptions serial_uncached{/*cache_enabled=*/false, /*max_cache_entries=*/0,
                                   /*threads=*/1};
  EvaluatorOptions serial_cached;
  serial_cached.threads = 1;
  EvaluatorOptions parallel_cached;  // defaults: cache on, hardware threads
  const std::vector<Run> runs{{"serial/uncached", serial_uncached, false},
                              {"serial/cached", serial_cached, false},
                              {"parallel/cached", parallel_cached, true}};

  Table table({"mode", "candidates", "analyses", "cache hits", "time (s)", "identical"});
  std::vector<double> reference;
  for (const Run& run : runs) {
    CostEvaluator evaluator(app, params, optimizer_analysis_options(), run.options);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<CostEvaluator::Evaluation> evals;
    if (run.parallel) {
      evals = evaluator.evaluate_many(candidates);
    } else {
      evals.reserve(candidates.size());
      for (const BusConfig& c : candidates) evals.push_back(evaluator.evaluate(c));
    }
    const double elapsed = seconds_since(t0);

    std::vector<double> costs;
    costs.reserve(evals.size());
    for (const auto& e : evals) costs.push_back(e.valid ? e.cost.value : kInvalidConfigCost);
    bool identical = true;
    if (reference.empty()) {
      reference = costs;
    } else {
      identical = costs == reference;  // exact: the analysis is deterministic
    }
    const EvaluatorCacheStats stats = evaluator.cache_stats();
    table.add_row({run.label, std::to_string(candidates.size()),
                   std::to_string(evaluator.evaluations()), std::to_string(stats.hits),
                   fmt_double(elapsed, 3), identical ? "yes" : "NO"});
    if (!identical) {
      std::cerr << "cost mismatch vs serial/uncached reference\n";
      return 1;
    }
  }
  table.print(std::cout);
  std::cout << "\nReading: the cached runs serve every revisit from the config->evaluation\n"
               "cache (half the candidates here), and evaluate_many spreads the remaining\n"
               "full analyses across the worker pool — identical costs, fewer analyses,\n"
               "lower wall time.  This is the hot path of every optimiser behind the\n"
               "unified Solver API.\n";
  return 0;
}
