// Delta-evaluation bench and perf-regression gate.  Replays an SA-style
// neighbour-move workload over the Fig. 9 smoke population twice in
// lockstep — every proposal evaluated by the full path
// (CostEvaluator::evaluate) and by the incremental path
// (CostEvaluator::evaluate_delta) — checks the costs are bit-identical,
// and counts recomputed analysis components (schedule builds + FPS/DYN
// response-time recurrences) on each side.
//
// The CI perf-smoke job runs this with --check: the run fails unless the
// delta path recomputes at least --min-ratio (default 3) times fewer
// components than the full path, which is the Fig. 9 runtime argument in
// machine-checkable form.  --out writes the machine-readable
// BENCH_delta.json (schema documented in README.md).

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "flexopt/core/config_builder.hpp"
#include "flexopt/core/sa.hpp"
#include "flexopt/io/json_writer.hpp"
#include "flexopt/util/rng.hpp"
#include "flexopt/util/table.hpp"

using namespace flexopt;
using namespace flexopt::bench;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct SystemResult {
  int nodes = 0;
  long proposed = 0;
  long accepted = 0;
  bool identical = true;
  EvaluatorWorkStats full;
  EvaluatorWorkStats delta;
  double full_wall = 0.0;
  double delta_wall = 0.0;
};

void write_work(JsonWriter& json, const EvaluatorWorkStats& work, double wall) {
  json.begin_object()
      .field("components", work.analysis.components())
      .field("schedule_builds", work.analysis.schedule_builds)
      .field("schedule_reuses", work.analysis.schedule_reuses)
      .field("fps_analyses", work.analysis.fps_analyses)
      .field("fps_skipped", work.analysis.fps_skipped)
      .field("dyn_analyses", work.analysis.dyn_analyses)
      .field("dyn_skipped", work.analysis.dyn_skipped)
      .field("holistic_iterations", work.analysis.holistic_iterations)
      .field("delta_evaluations", work.delta_evaluations)
      .field("delta_seeded", work.delta_seeded)
      .field("wall_seconds", wall)
      .end_object();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  bool check = false;
  double min_ratio = 3.0;
  long moves = full_scale() ? 1200 : 300;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--min-ratio") {
      min_ratio = std::stod(next());
    } else if (arg == "--moves") {
      moves = std::stol(next());
    } else {
      std::cerr << "usage: bench_delta_eval [--out FILE] [--check] [--min-ratio R] "
                   "[--moves N]\n";
      return 2;
    }
  }

  std::cout << "== Incremental (delta) evaluation vs full evaluation ==\n";
  const BusParams params = section7_params();
  const std::vector<int> node_counts{4, 5, 6};

  Table table({"nodes", "proposed", "accepted", "full comps", "delta comps", "ratio",
               "full (s)", "delta (s)", "identical"});
  std::vector<SystemResult> results;

  for (const int nodes : node_counts) {
    const auto app_result = section7_system(nodes, 0);
    if (!app_result.ok()) {
      std::cerr << "generator failed: " << app_result.error().message << "\n";
      return 1;
    }
    const Application& app = app_result.value();

    // The SA seed shape: per-sender minimal ST segment, criticality
    // FrameIDs, shortest feasible DYN segment.
    const StartConfig start = minimal_start_config(app, params);
    if (!start.bounds.feasible()) {
      std::cerr << "no feasible DYN bounds for " << nodes << "-node system\n";
      return 1;
    }
    const std::vector<NodeId>& senders = start.st_senders;
    const DynBounds& bounds = start.bounds;
    BusConfig current = start.config;

    CostEvaluator full_eval(app, params, optimizer_analysis_options());
    CostEvaluator delta_eval(app, params, optimizer_analysis_options());

    SystemResult r;
    r.nodes = nodes;
    const auto f0 = full_eval.evaluate(current);
    const auto d0 = delta_eval.evaluate(current);
    double current_cost = f0.valid ? f0.cost.value : kInvalidConfigCost;
    r.identical = f0.valid == d0.valid && f0.cost.value == d0.cost.value;

    // One move/acceptance stream drives both evaluators in lockstep; the
    // paths return bit-identical costs, so the trajectories coincide.
    Rng move_rng(0x5eedu + static_cast<std::uint64_t>(nodes));
    Rng accept_rng(0xaccu + static_cast<std::uint64_t>(nodes));
    const double temperature =
        std::max(1.0, std::abs(current_cost) * 0.1);  // SA's mid-run regime

    double full_wall = 0.0;
    double delta_wall = 0.0;
    for (long i = 0; i < moves; ++i) {
      BusConfig neighbour = current;
      bool moved = false;
      for (int attempt = 0; attempt < 8 && !moved; ++attempt) {
        moved = random_neighbour_move(neighbour, app, params, move_rng, senders,
                                      bounds.min_minislots, SpecLimits::kMaxMinislots);
      }
      if (!moved) continue;
      ++r.proposed;

      DeltaMove move = DeltaMove::between(current, std::move(neighbour));
      auto t0 = std::chrono::steady_clock::now();
      const auto ef = full_eval.evaluate(move.config);
      full_wall += seconds_since(t0);
      t0 = std::chrono::steady_clock::now();
      const auto ed = delta_eval.evaluate_delta(current, move);
      delta_wall += seconds_since(t0);

      if (ef.valid != ed.valid || (ef.valid && ef.cost.value != ed.cost.value)) {
        r.identical = false;
      }
      const double cost = ef.valid ? ef.cost.value : kInvalidConfigCost;
      const double delta = cost - current_cost;
      if (delta <= 0.0 ||
          accept_rng.uniform_real(0.0, 1.0) < std::exp(-delta / temperature)) {
        current = std::move(move.config);
        current_cost = cost;
        ++r.accepted;
      }
    }

    r.full = full_eval.work_stats();
    r.delta = delta_eval.work_stats();
    r.full_wall = full_wall;
    r.delta_wall = delta_wall;
    const double ratio =
        r.delta.analysis.components() > 0
            ? static_cast<double>(r.full.analysis.components()) /
                  static_cast<double>(r.delta.analysis.components())
            : 0.0;
    table.add_row({std::to_string(nodes), std::to_string(r.proposed),
                   std::to_string(r.accepted), std::to_string(r.full.analysis.components()),
                   std::to_string(r.delta.analysis.components()), fmt_double(ratio, 2),
                   fmt_double(r.full_wall, 3), fmt_double(r.delta_wall, 3),
                   r.identical ? "yes" : "NO"});
    results.push_back(std::move(r));
  }
  table.print(std::cout);

  std::uint64_t full_components = 0;
  std::uint64_t delta_components = 0;
  long accepted = 0;
  long proposed = 0;
  bool identical = true;
  for (const SystemResult& r : results) {
    full_components += r.full.analysis.components();
    delta_components += r.delta.analysis.components();
    accepted += r.accepted;
    proposed += r.proposed;
    identical = identical && r.identical;
  }
  const double ratio = delta_components > 0
                           ? static_cast<double>(full_components) /
                                 static_cast<double>(delta_components)
                           : 0.0;
  const bool pass = identical && ratio >= min_ratio;
  std::cout << "\ntotals: " << proposed << " proposed / " << accepted << " accepted moves, "
            << full_components << " full vs " << delta_components
            << " delta components (ratio " << fmt_double(ratio, 2) << "x, gate "
            << fmt_double(min_ratio, 1) << "x, costs "
            << (identical ? "identical" : "MISMATCH") << ")\n";

  if (!out_path.empty()) {
    JsonWriter json;
    json.begin_object()
        .field("bench", "delta_eval")
        .field("workload", "fig9-smoke")
        .field("moves_per_system", moves);
    json.key("systems").begin_array();
    for (const SystemResult& r : results) {
      json.begin_object()
          .field("nodes", r.nodes)
          .field("proposed_moves", r.proposed)
          .field("accepted_moves", r.accepted)
          .field("identical", r.identical);
      json.key("full");
      write_work(json, r.full, r.full_wall);
      json.key("delta");
      write_work(json, r.delta, r.delta_wall);
      const double system_ratio =
          r.delta.analysis.components() > 0
              ? static_cast<double>(r.full.analysis.components()) /
                    static_cast<double>(r.delta.analysis.components())
              : 0.0;
      json.field("component_ratio", system_ratio).end_object();
    }
    json.end_array();
    json.key("totals")
        .begin_object()
        .field("proposed_moves", proposed)
        .field("accepted_moves", accepted)
        .field("full_components", full_components)
        .field("delta_components", delta_components)
        .field("full_components_per_accepted_move",
               accepted > 0 ? static_cast<double>(full_components) / accepted : 0.0)
        .field("delta_components_per_accepted_move",
               accepted > 0 ? static_cast<double>(delta_components) / accepted : 0.0)
        .field("component_ratio", ratio)
        .field("identical", identical)
        .end_object();
    json.key("gate")
        .begin_object()
        .field("min_ratio", min_ratio)
        .field("pass", pass)
        .end_object();
    json.end_object();
    std::ofstream out(out_path);
    out << json.str() << "\n";
    if (!out) {
      std::cerr << "failed to write " << out_path << "\n";
      return 1;
    }
    std::cout << "wrote " << out_path << "\n";
  }

  if (check && !pass) {
    std::cerr << "perf gate FAILED: delta/full component ratio " << fmt_double(ratio, 2)
              << "x below " << fmt_double(min_ratio, 1) << "x"
              << (identical ? "" : " (and costs diverged)") << "\n";
    return 1;
  }
  return 0;
}
