// Delta-evaluation bench and perf-regression gate, in two phases.
//
// Phase 1 (conformance + component ratio): replays an SA-style
// neighbour-move workload over the Fig. 9 smoke population twice in
// lockstep — every proposal evaluated by the full path
// (CostEvaluator::evaluate) and by the incremental path
// (CostEvaluator::evaluate_delta) — checks the costs are bit-identical,
// and counts recomputed analysis components (schedule builds + FPS/DYN
// response-time recurrences) on each side.
//
// Phase 2 (steady-state throughput + allocation contract): replays the
// same move distribution through the arena-backed hot path
// (evaluate_delta_fast with an explicit base Evaluation) twice on one
// evaluator — a recording pass that warms the component cache, binds the
// arena and grows scratch to capacity, then a measured warm-replay pass
// over the bit-identical RNG stream.  The replay is the steady state: it
// reports moves/sec and — when the operator new interposer of
// src/util/alloc_probe.cpp is linked and active — asserts that
// steady-state delta evaluations perform ZERO heap allocations per move.
//
// The CI perf-smoke job runs this with --check: the run fails unless the
// delta path recomputes at least --min-ratio (default 3) times fewer
// components than the full path, steady-state allocations per move are
// exactly zero (Release builds with the probe installed), and — when
// --min-moves-per-sec is given — aggregate steady-state throughput
// clears the floor.  --out writes the machine-readable BENCH_delta.json
// (schema documented in README.md).

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "flexopt/core/config_builder.hpp"
#include "flexopt/core/sa.hpp"
#include "flexopt/io/json_writer.hpp"
#include "flexopt/util/alloc_probe.hpp"
#include "flexopt/util/rng.hpp"
#include "flexopt/util/table.hpp"

using namespace flexopt;
using namespace flexopt::bench;

namespace {

#ifdef NDEBUG
constexpr bool kReleaseBuild = true;
#else
// Debug builds cross-check every delta against a full analysis (which
// allocates); the zero-allocation contract only holds — and is only
// gated — in Release.
constexpr bool kReleaseBuild = false;
#endif

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct SystemResult {
  int nodes = 0;
  long proposed = 0;
  long accepted = 0;
  bool identical = true;
  EvaluatorWorkStats full;
  EvaluatorWorkStats delta;
  double full_wall = 0.0;
  double delta_wall = 0.0;
};

struct SteadyResult {
  int nodes = 0;
  long measured = 0;   ///< valid delta evaluations inside the counted window
  long invalid = 0;    ///< error-path evaluations (excluded from the alloc gate)
  long accepted = 0;
  double eval_wall = 0.0;        ///< wall time inside evaluate_delta_fast only
  std::uint64_t allocations = 0; ///< heap allocations inside measured evaluations
  EvaluatorWorkStats work;
};

void write_work(JsonWriter& json, const EvaluatorWorkStats& work, double wall) {
  json.begin_object()
      .field("components", work.analysis.components())
      .field("schedule_builds", work.analysis.schedule_builds)
      .field("schedule_reuses", work.analysis.schedule_reuses)
      .field("fps_analyses", work.analysis.fps_analyses)
      .field("fps_skipped", work.analysis.fps_skipped)
      .field("dyn_analyses", work.analysis.dyn_analyses)
      .field("dyn_skipped", work.analysis.dyn_skipped)
      .field("holistic_iterations", work.analysis.holistic_iterations)
      .field("delta_evaluations", work.delta_evaluations)
      .field("delta_seeded", work.delta_seeded)
      .field("wall_seconds", wall)
      .end_object();
}

/// Phase 2 driver: the arena hot path under the SA move distribution, with
/// the base threaded explicitly as the last accepted Evaluation — the shape
/// SA itself uses.
///
/// The trajectory is replayed twice through the SAME evaluator.  The first
/// (recording) pass is pure warm-up: every move geometry lands in the
/// component cache, the thread slot's arena binds, and scratch containers
/// grow to their high-water capacity.  The second pass re-seeds the RNGs
/// and replays the bit-identical move/acceptance stream — by then every
/// schedule lookup is a cache hit and every fixed point runs inside the
/// arena, which is the steady state the zero-allocation contract covers
/// (a long SA run revisits move geometries the same way).  Only the second
/// pass is measured.
SteadyResult run_steady_state(const Application& app, const BusParams& params, int nodes,
                              long moves) {
  SteadyResult r;
  r.nodes = nodes;

  // Whole-config memoization off: a memo hit would skip the analysis
  // entirely and measure a hash lookup instead of the hot path.  The
  // per-cluster COMPONENT caches (schedule geometries) are evaluator
  // members and stay on — they are what the recording pass warms.
  EvaluatorOptions eopts;
  eopts.cache_enabled = false;
  CostEvaluator evaluator(app, params, optimizer_analysis_options(), eopts);

  const StartConfig start = minimal_start_config(app, params);
  const std::vector<NodeId>& senders = start.st_senders;
  const DynBounds& bounds = start.bounds;

  const auto run_pass = [&](bool measured) {
    BusConfig current = start.config;
    CostEvaluator::Evaluation accepted_eval = evaluator.evaluate(current);
    double current_cost = accepted_eval.valid ? accepted_eval.cost.value : kInvalidConfigCost;

    // Same seeds as phase 1 (and as the recording pass) => bit-identical
    // move distribution and acceptance decisions on every pass.
    Rng move_rng(0x5eedu + static_cast<std::uint64_t>(nodes));
    Rng accept_rng(0xaccu + static_cast<std::uint64_t>(nodes));
    const double temperature = std::max(1.0, std::abs(current_cost) * 0.1);

    for (long i = 0; i < moves; ++i) {
      BusConfig neighbour = current;
      bool moved = false;
      for (int attempt = 0; attempt < 8 && !moved; ++attempt) {
        moved = random_neighbour_move(neighbour, app, params, move_rng, senders,
                                      bounds.min_minislots, SpecLimits::kMaxMinislots);
      }
      if (!moved) continue;
      DeltaMove move = DeltaMove::between(current, std::move(neighbour));

      const std::uint64_t a0 = alloc_probe::thread_allocations();
      const auto t0 = std::chrono::steady_clock::now();
      const CostEvaluator::Evaluation& eval =
          evaluator.evaluate_delta_fast(accepted_eval, move);
      const double elapsed = seconds_since(t0);
      const std::uint64_t evaluation_allocs = alloc_probe::thread_allocations() - a0;

      if (measured) {
        r.eval_wall += elapsed;
        if (eval.valid) {
          ++r.measured;
          r.allocations += evaluation_allocs;
        } else {
          ++r.invalid;  // error strings allocate; outside the contract
        }
      }

      const double cost = eval.valid ? eval.cost.value : kInvalidConfigCost;
      const double delta = cost - current_cost;
      if (delta <= 0.0 ||
          accept_rng.uniform_real(0.0, 1.0) < std::exp(-delta / temperature)) {
        // Copies out of the thread slot (outside the measured region, and
        // capacity-reusing after the first few accepts).
        accepted_eval = eval;
        current = std::move(move.config);
        current_cost = cost;
        if (measured) ++r.accepted;
      }
    }
  };

  run_pass(/*measured=*/false);  // recording pass: warm caches, arena, scratch
  const EvaluatorWorkStats before_replay = evaluator.work_stats();
  run_pass(/*measured=*/true);  // warm replay: the measured steady state
  r.work = evaluator.work_stats().since(before_replay);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  bool check = false;
  double min_ratio = 3.0;
  double min_moves_per_sec = 0.0;  // 0 = throughput floor disabled
  long moves = full_scale() ? 1200 : 300;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--min-ratio") {
      min_ratio = std::stod(next());
    } else if (arg == "--min-moves-per-sec") {
      min_moves_per_sec = std::stod(next());
    } else if (arg == "--moves") {
      moves = std::stol(next());
    } else {
      std::cerr << "usage: bench_delta_eval [--out FILE] [--check] [--min-ratio R] "
                   "[--min-moves-per-sec M] [--moves N]\n";
      return 2;
    }
  }

  std::cout << "== Incremental (delta) evaluation vs full evaluation ==\n";
  const BusParams params = section7_params();
  const std::vector<int> node_counts{4, 5, 6};

  Table table({"nodes", "proposed", "accepted", "full comps", "delta comps", "ratio",
               "full (s)", "delta (s)", "identical"});
  std::vector<SystemResult> results;
  std::vector<SteadyResult> steady_results;

  for (const int nodes : node_counts) {
    const auto app_result = section7_system(nodes, 0);
    if (!app_result.ok()) {
      std::cerr << "generator failed: " << app_result.error().message << "\n";
      return 1;
    }
    const Application& app = app_result.value();

    // The SA seed shape: per-sender minimal ST segment, criticality
    // FrameIDs, shortest feasible DYN segment.
    const StartConfig start = minimal_start_config(app, params);
    if (!start.bounds.feasible()) {
      std::cerr << "no feasible DYN bounds for " << nodes << "-node system\n";
      return 1;
    }
    const std::vector<NodeId>& senders = start.st_senders;
    const DynBounds& bounds = start.bounds;
    BusConfig current = start.config;

    CostEvaluator full_eval(app, params, optimizer_analysis_options());
    CostEvaluator delta_eval(app, params, optimizer_analysis_options());

    SystemResult r;
    r.nodes = nodes;
    const auto f0 = full_eval.evaluate(current);
    const auto d0 = delta_eval.evaluate(current);
    double current_cost = f0.valid ? f0.cost.value : kInvalidConfigCost;
    r.identical = f0.valid == d0.valid && f0.cost.value == d0.cost.value;

    // One move/acceptance stream drives both evaluators in lockstep; the
    // paths return bit-identical costs, so the trajectories coincide.
    Rng move_rng(0x5eedu + static_cast<std::uint64_t>(nodes));
    Rng accept_rng(0xaccu + static_cast<std::uint64_t>(nodes));
    const double temperature =
        std::max(1.0, std::abs(current_cost) * 0.1);  // SA's mid-run regime

    double full_wall = 0.0;
    double delta_wall = 0.0;
    for (long i = 0; i < moves; ++i) {
      BusConfig neighbour = current;
      bool moved = false;
      for (int attempt = 0; attempt < 8 && !moved; ++attempt) {
        moved = random_neighbour_move(neighbour, app, params, move_rng, senders,
                                      bounds.min_minislots, SpecLimits::kMaxMinislots);
      }
      if (!moved) continue;
      ++r.proposed;

      DeltaMove move = DeltaMove::between(current, std::move(neighbour));
      auto t0 = std::chrono::steady_clock::now();
      const auto ef = full_eval.evaluate(move.config);
      full_wall += seconds_since(t0);
      t0 = std::chrono::steady_clock::now();
      const auto ed = delta_eval.evaluate_delta(current, move);
      delta_wall += seconds_since(t0);

      if (ef.valid != ed.valid || (ef.valid && ef.cost.value != ed.cost.value)) {
        r.identical = false;
      }
      const double cost = ef.valid ? ef.cost.value : kInvalidConfigCost;
      const double delta = cost - current_cost;
      if (delta <= 0.0 ||
          accept_rng.uniform_real(0.0, 1.0) < std::exp(-delta / temperature)) {
        current = std::move(move.config);
        current_cost = cost;
        ++r.accepted;
      }
    }

    r.full = full_eval.work_stats();
    r.delta = delta_eval.work_stats();
    r.full_wall = full_wall;
    r.delta_wall = delta_wall;
    const double ratio =
        r.delta.analysis.components() > 0
            ? static_cast<double>(r.full.analysis.components()) /
                  static_cast<double>(r.delta.analysis.components())
            : 0.0;
    table.add_row({std::to_string(nodes), std::to_string(r.proposed),
                   std::to_string(r.accepted), std::to_string(r.full.analysis.components()),
                   std::to_string(r.delta.analysis.components()), fmt_double(ratio, 2),
                   fmt_double(r.full_wall, 3), fmt_double(r.delta_wall, 3),
                   r.identical ? "yes" : "NO"});
    results.push_back(std::move(r));

    steady_results.push_back(run_steady_state(app, params, nodes, moves));
  }
  table.print(std::cout);

  const bool probe = alloc_probe::installed();
  std::cout << "\n== Steady-state arena hot path (evaluate_delta_fast, cache off) ==\n";
  std::cout << "alloc probe: " << (probe ? "installed" : "absent (sanitizer build)")
            << ", build: " << (kReleaseBuild ? "Release" : "Debug") << "\n";
  Table steady_table(
      {"nodes", "measured", "accepted", "eval (s)", "moves/s", "allocs", "allocs/move"});
  long steady_moves = 0;
  double steady_wall = 0.0;
  std::uint64_t steady_allocs = 0;
  for (const SteadyResult& r : steady_results) {
    const double mps = r.eval_wall > 0.0 ? static_cast<double>(r.measured) / r.eval_wall : 0.0;
    const double apm =
        r.measured > 0 ? static_cast<double>(r.allocations) / static_cast<double>(r.measured)
                       : 0.0;
    steady_table.add_row({std::to_string(r.nodes), std::to_string(r.measured),
                          std::to_string(r.accepted), fmt_double(r.eval_wall, 3),
                          fmt_double(mps, 0), std::to_string(r.allocations),
                          fmt_double(apm, 3)});
    steady_moves += r.measured;
    steady_wall += r.eval_wall;
    steady_allocs += r.allocations;
  }
  steady_table.print(std::cout);
  const double steady_mps =
      steady_wall > 0.0 ? static_cast<double>(steady_moves) / steady_wall : 0.0;

  std::uint64_t full_components = 0;
  std::uint64_t delta_components = 0;
  long accepted = 0;
  long proposed = 0;
  bool identical = true;
  for (const SystemResult& r : results) {
    full_components += r.full.analysis.components();
    delta_components += r.delta.analysis.components();
    accepted += r.accepted;
    proposed += r.proposed;
    identical = identical && r.identical;
  }
  const double ratio = delta_components > 0
                           ? static_cast<double>(full_components) /
                                 static_cast<double>(delta_components)
                           : 0.0;
  // The allocation gate is exact — zero per steady-state move — but only
  // binds when the interposer is linked and active and the hot path is not
  // carrying the Debug cross-check.
  const bool alloc_gate_active = probe && kReleaseBuild;
  const bool alloc_pass = !alloc_gate_active || steady_allocs == 0;
  const bool throughput_pass = min_moves_per_sec <= 0.0 || steady_mps >= min_moves_per_sec;
  const bool pass = identical && ratio >= min_ratio && alloc_pass && throughput_pass;

  std::cout << "\ntotals: " << proposed << " proposed / " << accepted << " accepted moves, "
            << full_components << " full vs " << delta_components
            << " delta components (ratio " << fmt_double(ratio, 2) << "x, gate "
            << fmt_double(min_ratio, 1) << "x, costs "
            << (identical ? "identical" : "MISMATCH") << ")\n";
  std::cout << "steady state: " << steady_moves << " measured moves in "
            << fmt_double(steady_wall, 3) << " s (" << fmt_double(steady_mps, 0)
            << " moves/s), " << steady_allocs << " allocations"
            << (alloc_gate_active ? "" : " [gate inactive]") << "\n";

  if (!out_path.empty()) {
    JsonWriter json;
    json.begin_object()
        .field("bench", "delta_eval")
        .field("workload", "fig9-smoke")
        .field("moves_per_system", moves);
    json.key("systems").begin_array();
    for (std::size_t s = 0; s < results.size(); ++s) {
      const SystemResult& r = results[s];
      json.begin_object()
          .field("nodes", r.nodes)
          .field("proposed_moves", r.proposed)
          .field("accepted_moves", r.accepted)
          .field("identical", r.identical);
      json.key("full");
      write_work(json, r.full, r.full_wall);
      json.key("delta");
      write_work(json, r.delta, r.delta_wall);
      const double system_ratio =
          r.delta.analysis.components() > 0
              ? static_cast<double>(r.full.analysis.components()) /
                    static_cast<double>(r.delta.analysis.components())
              : 0.0;
      json.field("component_ratio", system_ratio);
      const SteadyResult& st = steady_results[s];
      const double mps =
          st.eval_wall > 0.0 ? static_cast<double>(st.measured) / st.eval_wall : 0.0;
      json.key("steady")
          .begin_object()
          .field("measured_moves", st.measured)
          .field("invalid_moves", st.invalid)
          .field("accepted_moves", st.accepted)
          .field("eval_wall_seconds", st.eval_wall)
          .field("moves_per_sec", mps)
          .field("allocations", st.allocations)
          .field("allocations_per_move",
                 st.measured > 0 ? static_cast<double>(st.allocations) /
                                       static_cast<double>(st.measured)
                                 : 0.0)
          .field("arena_binds", st.work.arena_binds)
          .field("arena_reuses", st.work.arena_reuses)
          .end_object();
      json.end_object();
    }
    json.end_array();
    json.key("totals")
        .begin_object()
        .field("proposed_moves", proposed)
        .field("accepted_moves", accepted)
        .field("full_components", full_components)
        .field("delta_components", delta_components)
        .field("full_components_per_accepted_move",
               accepted > 0 ? static_cast<double>(full_components) / accepted : 0.0)
        .field("delta_components_per_accepted_move",
               accepted > 0 ? static_cast<double>(delta_components) / accepted : 0.0)
        .field("component_ratio", ratio)
        .field("identical", identical)
        .field("steady_measured_moves", steady_moves)
        .field("steady_eval_wall_seconds", steady_wall)
        .field("steady_moves_per_sec", steady_mps)
        .field("steady_allocations", steady_allocs)
        .field("steady_allocations_per_move",
               steady_moves > 0 ? static_cast<double>(steady_allocs) /
                                      static_cast<double>(steady_moves)
                                : 0.0)
        .end_object();
    json.key("gate")
        .begin_object()
        .field("min_ratio", min_ratio)
        .field("min_moves_per_sec", min_moves_per_sec)
        .field("alloc_probe_installed", probe)
        .field("alloc_gate_active", alloc_gate_active)
        .field("pass", pass)
        .end_object();
    json.end_object();
    std::ofstream out(out_path);
    out << json.str() << "\n";
    if (!out) {
      std::cerr << "failed to write " << out_path << "\n";
      return 1;
    }
    std::cout << "wrote " << out_path << "\n";
  }

  if (check && !pass) {
    std::cerr << "perf gate FAILED:";
    if (!identical) std::cerr << " costs diverged between full and delta paths;";
    if (ratio < min_ratio) {
      std::cerr << " delta/full component ratio " << fmt_double(ratio, 2) << "x below "
                << fmt_double(min_ratio, 1) << "x;";
    }
    if (!alloc_pass) {
      std::cerr << " steady-state hot path allocated " << steady_allocs
                << " times (contract: 0);";
    }
    if (!throughput_pass) {
      std::cerr << " steady-state throughput " << fmt_double(steady_mps, 0)
                << " moves/s below floor " << fmt_double(min_moves_per_sec, 0) << ";";
    }
    std::cerr << "\n";
    return 1;
  }
  return 0;
}
