// Google-benchmark micro-benchmarks of the analysis kernels that dominate
// optimisation runtime: BusLayout construction, static schedule building,
// full holistic analysis, single DYN response-time recurrences and busy-
// profile queries.  These calibrate the cost model behind the Fig. 9
// runtime comparison (one "evaluation" = one analyze_system call).

#include <benchmark/benchmark.h>

#include "flexopt/analysis/dyn_analysis.hpp"
#include "flexopt/analysis/system_analysis.hpp"
#include "flexopt/core/config_builder.hpp"
#include "flexopt/flexray/bus_layout.hpp"
#include "flexopt/gen/cruise_control.hpp"
#include "flexopt/gen/synthetic.hpp"

namespace flexopt {
namespace {

struct CcFixture {
  Application app = build_cruise_controller();
  BusParams params = cruise_controller_params();
  BusConfig config;

  CcFixture() {
    config.frame_id = assign_frame_ids_by_criticality(app, params);
    const auto senders = st_sender_nodes(app);
    config.static_slot_count = static_cast<int>(senders.size());
    config.static_slot_len = min_static_slot_len(app, params);
    config.static_slot_owner = senders;
    const DynBounds bounds = dyn_segment_bounds(
        app, params, static_cast<Time>(config.static_slot_count) * config.static_slot_len);
    config.minislot_count = bounds.min_minislots + 64;
  }
};

const CcFixture& cc() {
  static const CcFixture fixture;
  return fixture;
}

void BM_BusLayoutBuild(benchmark::State& state) {
  for (auto _ : state) {
    auto layout = BusLayout::build(cc().app, cc().params, cc().config);
    benchmark::DoNotOptimize(layout);
  }
}
BENCHMARK(BM_BusLayoutBuild);

void BM_StaticScheduleAsap(benchmark::State& state) {
  const auto layout = BusLayout::build(cc().app, cc().params, cc().config);
  SchedulerOptions options;
  options.placement = Placement::Asap;
  for (auto _ : state) {
    auto schedule = build_static_schedule(layout.value(), options);
    benchmark::DoNotOptimize(schedule);
  }
}
BENCHMARK(BM_StaticScheduleAsap);

void BM_StaticScheduleMinFpsImpact(benchmark::State& state) {
  const auto layout = BusLayout::build(cc().app, cc().params, cc().config);
  SchedulerOptions options;
  options.placement = Placement::MinimizeFpsImpact;
  for (auto _ : state) {
    auto schedule = build_static_schedule(layout.value(), options);
    benchmark::DoNotOptimize(schedule);
  }
}
BENCHMARK(BM_StaticScheduleMinFpsImpact);

void BM_AnalyzeSystemCruiseController(benchmark::State& state) {
  const auto layout = BusLayout::build(cc().app, cc().params, cc().config);
  AnalysisOptions options;
  options.scheduler.placement = Placement::Asap;
  for (auto _ : state) {
    auto result = analyze_system(layout.value(), options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AnalyzeSystemCruiseController);

void BM_AnalyzeSystemSynthetic(benchmark::State& state) {
  SyntheticSpec spec;
  spec.nodes = static_cast<int>(state.range(0));
  spec.seed = 11;
  BusParams params;
  params.gd_minislot = timeunits::us(5);
  auto app = generate_synthetic(spec, params);
  if (!app.ok()) {
    state.SkipWithError("generation failed");
    return;
  }
  BusConfig config;
  config.frame_id = assign_frame_ids_by_criticality(app.value(), params);
  const auto senders = st_sender_nodes(app.value());
  config.static_slot_count = static_cast<int>(senders.size());
  config.static_slot_len = min_static_slot_len(app.value(), params);
  config.static_slot_owner = senders;
  const DynBounds bounds = dyn_segment_bounds(
      app.value(), params,
      static_cast<Time>(config.static_slot_count) * config.static_slot_len);
  config.minislot_count = bounds.min_minislots + 64;
  const auto layout = BusLayout::build(app.value(), params, config);
  AnalysisOptions options;
  options.scheduler.placement = Placement::Asap;
  for (auto _ : state) {
    auto result = analyze_system(layout.value(), options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AnalyzeSystemSynthetic)->Arg(2)->Arg(4)->Arg(7);

void BM_DynResponseTime(benchmark::State& state) {
  const auto layout = BusLayout::build(cc().app, cc().params, cc().config);
  std::vector<Time> jitters(cc().app.message_count(), timeunits::us(500));
  // Highest FrameID message = most interference work.
  MessageId target{0};
  int best = 0;
  for (std::uint32_t m = 0; m < cc().app.message_count(); ++m) {
    if (cc().config.frame_id[m] > best) {
      best = cc().config.frame_id[m];
      target = static_cast<MessageId>(m);
    }
  }
  for (auto _ : state) {
    auto r = dyn_response_time(layout.value(), target, jitters, timeunits::ms(160));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DynResponseTime);

void BM_BusyProfileMaxWindow(benchmark::State& state) {
  std::vector<Interval> intervals;
  for (int i = 0; i < 64; ++i) {
    intervals.push_back({timeunits::us(100 * i), timeunits::us(100 * i + 40)});
  }
  const BusyProfile profile(std::move(intervals), timeunits::ms(10));
  Time w = timeunits::us(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile.max_busy_in_window(w));
    w = (w % timeunits::ms(5)) + timeunits::us(97);
  }
}
BENCHMARK(BM_BusyProfileMaxWindow);

}  // namespace
}  // namespace flexopt

BENCHMARK_MAIN();
