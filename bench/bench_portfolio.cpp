// Portfolio racing bench and conformance gate.  Over the Fig. 9 smoke
// population, races the portfolio (4x multi-start SA + OBC-EE + OBC-CF,
// per-member budget B) against each of its members run standalone with the
// identical derived seed and budget — so "equal wall-clock" holds by
// construction once the members run in parallel: the portfolio's critical
// path is its slowest member, which is what a single-algorithm user would
// have waited for anyway.
//
// The CI-facing --check gate asserts the conformance half of the story:
// (1) the portfolio's cost is <= the best single member on every system
// (it must select the argmin; anything else is a winner-selection bug),
// and (2) the winning configuration and cost are bit-identical between
// --jobs 1 and a parallel run (the determinism contract).  --out writes
// BENCH_portfolio.json (schema documented in README.md).

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "flexopt/core/portfolio.hpp"
#include "flexopt/io/json_writer.hpp"
#include "flexopt/util/seed_mix.hpp"
#include "flexopt/util/table.hpp"

using namespace flexopt;
using namespace flexopt::bench;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct SystemResult {
  int nodes = 0;
  int index = 0;
  double portfolio_cost = kInvalidConfigCost;
  bool portfolio_feasible = false;
  std::string winner;
  long portfolio_evaluations = 0;
  double best_single_cost = kInvalidConfigCost;
  std::string best_single;
  bool quality_ok = false;    ///< portfolio cost <= best single member
  bool deterministic = false; ///< jobs 1 vs parallel: identical config + cost
  double portfolio_wall = 0.0;
  double serial_wall = 0.0;  ///< sum of standalone member walls
  double max_member_wall = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  bool check = false;
  long per_member_budget = full_scale() ? 600 : 250;
  int systems_per_size = 2;
  // The real default composition — the gate must track PortfolioSpec, not
  // a copy of it.
  std::vector<std::string> members = PortfolioSpec{}.members;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--budget") {
      per_member_budget = std::stol(next());
    } else if (arg == "--systems") {
      systems_per_size = std::stoi(next());
    } else if (arg == "--members") {
      auto parsed = parse_portfolio_members(next());
      if (!parsed.ok()) {
        std::cerr << parsed.error().message << "\n";
        return 2;
      }
      members = std::move(parsed).value();
    } else {
      std::cerr << "usage: bench_portfolio [--out FILE] [--check] [--budget PER_MEMBER]\n"
                   "                       [--systems PER_SIZE] [--members LIST]\n";
      return 2;
    }
  }

  std::cout << "== Portfolio racing vs best single member ==\n";
  std::cout << "# members " << format_portfolio_members(members) << ", per-member budget "
            << per_member_budget << " evaluations\n";
  const BusParams params = section7_params();
  const Scale scale = Scale::current();
  const std::uint64_t base_seed = 1;
  const long total_budget = per_member_budget * static_cast<long>(members.size());

  Table table({"system", "best single", "single cost", "portfolio cost", "winner", "<=",
               "serial (s)", "portfolio (s)", "det"});
  std::vector<SystemResult> results;

  for (int nodes = scale.min_nodes; nodes <= scale.max_nodes; ++nodes) {
    for (int index = 0; index < systems_per_size; ++index) {
      const auto app_result = section7_system(nodes, index);
      if (!app_result.ok()) {
        std::cerr << "generator failed: " << app_result.error().message << "\n";
        return 1;
      }
      const Application& app = app_result.value();

      SystemResult r;
      r.nodes = nodes;
      r.index = index;

      // Standalone members: the exact (key, derived seed, budget) triples
      // the portfolio will race, run serially on fresh evaluators.
      for (std::size_t m = 0; m < members.size(); ++m) {
        SolveRequest request;
        request.seed = derive_seed(base_seed, static_cast<std::uint64_t>(m));
        request.max_evaluations = per_member_budget;
        const auto t0 = std::chrono::steady_clock::now();
        const AlgorithmResult single = run_algorithm(members[m], app, params, {}, request);
        const double wall = seconds_since(t0);
        r.serial_wall += wall;
        r.max_member_wall = std::max(r.max_member_wall, wall);
        if (single.outcome.cost.value < r.best_single_cost) {
          r.best_single_cost = single.outcome.cost.value;
          r.best_single = members[m] + "#" + std::to_string(m);
        }
      }

      // The racing portfolio over the same members.
      PortfolioSpec spec;
      spec.members = members;
      spec.seed = base_seed;
      SolveRequest request;
      request.max_evaluations = total_budget;
      const auto t0 = std::chrono::steady_clock::now();
      const AlgorithmResult parallel = run_algorithm("portfolio", app, params, spec, request);
      r.portfolio_wall = seconds_since(t0);
      r.portfolio_cost = parallel.outcome.cost.value;
      r.portfolio_feasible = parallel.outcome.feasible;
      r.portfolio_evaluations = parallel.outcome.evaluations;

      // Determinism half of the gate: a serial re-run must reproduce the
      // winning configuration bit-for-bit.
      PortfolioSpec serial_spec = spec;
      serial_spec.jobs = 1;
      const AlgorithmResult serial = run_algorithm("portfolio", app, params, serial_spec, request);
      r.deterministic = serial.outcome.config == parallel.outcome.config &&
                        serial.outcome.cost.value == parallel.outcome.cost.value;
      r.quality_ok = r.portfolio_cost <= r.best_single_cost;

      r.winner = parallel.winner;

      table.add_row({std::to_string(nodes) + "/" + std::to_string(index), r.best_single,
                     r.best_single_cost >= kInvalidConfigCost ? "-"
                                                              : fmt_double(r.best_single_cost, 1),
                     r.portfolio_cost >= kInvalidConfigCost ? "-"
                                                            : fmt_double(r.portfolio_cost, 1),
                     r.winner, r.quality_ok ? "yes" : "NO", fmt_double(r.serial_wall, 3),
                     fmt_double(r.portfolio_wall, 3), r.deterministic ? "yes" : "NO"});
      results.push_back(std::move(r));
    }
  }
  table.print(std::cout);

  bool all_quality = true;
  bool all_deterministic = true;
  double serial_total = 0.0;
  double portfolio_total = 0.0;
  double critical_path_total = 0.0;
  for (const SystemResult& r : results) {
    all_quality = all_quality && r.quality_ok;
    all_deterministic = all_deterministic && r.deterministic;
    serial_total += r.serial_wall;
    portfolio_total += r.portfolio_wall;
    critical_path_total += r.max_member_wall;
  }
  const bool pass = all_quality && all_deterministic;
  std::cout << "\ntotals: " << results.size() << " systems, serial members "
            << fmt_double(serial_total, 2) << " s vs portfolio " << fmt_double(portfolio_total, 2)
            << " s (member critical path " << fmt_double(critical_path_total, 2)
            << " s), quality " << (all_quality ? "<= best single everywhere" : "REGRESSED")
            << ", determinism " << (all_deterministic ? "ok" : "BROKEN") << "\n";

  if (!out_path.empty()) {
    JsonWriter json;
    json.begin_object()
        .field("bench", "portfolio")
        .field("workload", "fig9-smoke")
        .field("members", format_portfolio_members(members))
        .field("per_member_budget", per_member_budget)
        .field("base_seed", base_seed);
    json.key("systems").begin_array();
    for (const SystemResult& r : results) {
      json.begin_object()
          .field("nodes", r.nodes)
          .field("index", r.index)
          .field("best_single", r.best_single)
          .field("best_single_cost", r.best_single_cost)
          .field("portfolio_cost", r.portfolio_cost)
          .field("portfolio_feasible", r.portfolio_feasible)
          .field("portfolio_evaluations", r.portfolio_evaluations)
          .field("quality_ok", r.quality_ok)
          .field("deterministic", r.deterministic)
          .field("serial_wall_seconds", r.serial_wall)
          .field("member_critical_path_seconds", r.max_member_wall)
          .field("portfolio_wall_seconds", r.portfolio_wall)
          .end_object();
    }
    json.end_array();
    json.key("totals")
        .begin_object()
        .field("systems", results.size())
        .field("serial_wall_seconds", serial_total)
        .field("member_critical_path_seconds", critical_path_total)
        .field("portfolio_wall_seconds", portfolio_total)
        .field("quality_ok", all_quality)
        .field("deterministic", all_deterministic)
        .end_object();
    json.key("gate").begin_object().field("pass", pass).end_object();
    json.end_object();
    std::ofstream out(out_path);
    out << json.str() << "\n";
    if (!out) {
      std::cerr << "failed to write " << out_path << "\n";
      return 1;
    }
    std::cout << "wrote " << out_path << "\n";
  }

  if (check && !pass) {
    std::cerr << "portfolio gate FAILED: "
              << (all_quality ? "" : "portfolio cost above the best single member; ")
              << (all_deterministic ? "" : "winner not bit-identical across jobs") << "\n";
    return 1;
  }
  return 0;
}
