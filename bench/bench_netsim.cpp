// Network-simulator bench and conformance gate.  Replays minimal start
// configurations of the Section 7 single-cluster population (the fig9
// workloads) and of MultiCluster scenarios (2..4 gateway-chained clusters)
// on the discrete-event network simulator, reporting event throughput,
// the observed-vs-bound soundness verdict and the pessimism gap per system
// (BENCH_netsim.json, published by the perf-smoke CI job).
//
// The CI-facing --check gate asserts, over every simulated system:
// (1) soundness — no observed completion exceeds its analyze_multicluster
//     bound and no precedence violation occurs, and
// (2) determinism — the flexopt-netsim-trace/1 document is byte-identical
//     between two independent simulation runs.

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "flexopt/analysis/multicluster.hpp"
#include "flexopt/core/config_builder.hpp"
#include "flexopt/gen/scenario.hpp"
#include "flexopt/io/json_writer.hpp"
#include "flexopt/model/system_model.hpp"
#include "flexopt/netsim/netsim.hpp"
#include "flexopt/netsim/trace_json.hpp"
#include "flexopt/util/table.hpp"

using namespace flexopt;
using namespace flexopt::bench;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct SystemRow {
  std::string workload;
  int clusters = 0;
  int index = 0;
  std::size_t tasks = 0;
  std::size_t messages = 0;
  Time horizon = 0;
  std::uint64_t events = 0;
  double wall_seconds = 0.0;
  double events_per_second = 0.0;
  bool sound = false;
  std::size_t checked = 0;
  double mean_gap = 0.0;
  int precedence_violations = 0;
  bool deterministic = false;
};

/// Simulates one system under its per-cluster minimal start configuration.
/// Returns false when the system is skipped (infeasible minimal bounds);
/// hard failures (generation, projection, analysis, simulation) throw.
bool simulate_system(const Application& app, const BusParams& params, int hyperperiods,
                     SystemRow& row) {
  auto model = SystemModel::build(std::make_shared<const Application>(app));
  if (!model.ok()) throw std::runtime_error(model.error().message);
  SystemConfig config;
  for (std::size_t c = 0; c < model.value().cluster_count(); ++c) {
    const StartConfig start = minimal_start_config(*model.value().cluster_app(c), params);
    if (!start.bounds.feasible()) return false;
    config.clusters.push_back(ClusterConfig::flexray_bus(start.config));
  }
  auto layouts = build_system_layouts(model.value(), params, config);
  if (!layouts.ok()) throw std::runtime_error(layouts.error().message);
  auto analysis = analyze_multicluster(model.value(), layouts.value(), AnalysisOptions{});
  if (!analysis.ok()) throw std::runtime_error(analysis.error().message);

  NetSimOptions options;
  options.hyperperiods = hyperperiods;
  options.record_trace = true;
  const auto started = std::chrono::steady_clock::now();
  auto result = simulate_network(model.value(), layouts.value(), analysis.value(), options);
  const double elapsed = seconds_since(started);
  if (!result.ok()) throw std::runtime_error(result.error().message);
  const SoundnessReport verdict =
      check_soundness(model.value(), analysis.value(), result.value());

  // Determinism: a second, independent run must serialize identically.
  auto rerun = simulate_network(model.value(), layouts.value(), analysis.value(), options);
  if (!rerun.ok()) throw std::runtime_error(rerun.error().message);
  const SoundnessReport rerun_verdict =
      check_soundness(model.value(), analysis.value(), rerun.value());
  const std::string first = write_netsim_trace_json(model.value(), analysis.value(),
                                                    result.value(), verdict, hyperperiods);
  const std::string second = write_netsim_trace_json(
      model.value(), analysis.value(), rerun.value(), rerun_verdict, hyperperiods);

  row.clusters = static_cast<int>(model.value().cluster_count());
  row.tasks = app.task_count();
  row.messages = app.message_count();
  row.horizon = result.value().horizon;
  row.events = result.value().events;
  row.wall_seconds = elapsed;
  row.events_per_second =
      elapsed > 0.0 ? static_cast<double>(result.value().events) / elapsed : 0.0;
  row.sound = verdict.sound && result.value().unfinished_jobs == 0;
  row.checked = verdict.checked;
  row.mean_gap = verdict.mean_gap;
  row.precedence_violations = result.value().precedence_violations;
  row.deterministic = first == second;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  bool check = false;
  int hyperperiods = full_scale() ? 4 : 2;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--hyperperiods" && i + 1 < argc) {
      hyperperiods = std::stoi(argv[++i]);
    } else {
      std::cerr << "usage: bench_netsim [--out FILE] [--check] [--hyperperiods N]\n";
      return 2;
    }
  }

  std::cout << "== Network simulator: throughput and observed-vs-bound gate ==\n";
  const Scale scale = Scale::current();
  scale.print(std::cout);
  const BusParams params = section7_params();
  const int systems_per_size = full_scale() ? 6 : 2;

  std::vector<SystemRow> rows;
  std::size_t skipped = 0;
  bool all_ok = true;

  // Fig. 9 population: the Section 7 single-cluster synthetic systems,
  // replayed under their minimal start configurations.
  for (int nodes = scale.min_nodes; nodes <= scale.max_nodes; ++nodes) {
    for (int index = 0; index < systems_per_size; ++index) {
      auto app = section7_system(nodes, index);
      if (!app.ok()) {
        ++skipped;
        continue;
      }
      SystemRow row;
      row.workload = "fig9/n" + std::to_string(nodes);
      row.index = index;
      try {
        if (!simulate_system(app.value(), params, hyperperiods, row)) {
          ++skipped;
          continue;
        }
      } catch (const std::exception& e) {
        std::cerr << row.workload << "#" << index << ": " << e.what() << "\n";
        all_ok = false;
        continue;
      }
      rows.push_back(row);
    }
  }

  // Multi-cluster population: the bench_multicluster workload axis.
  for (int clusters = 2; clusters <= 4; ++clusters) {
    for (int index = 0; index < systems_per_size; ++index) {
      ScenarioSpec spec;
      spec.topology = Topology::MultiCluster;
      spec.traffic = TrafficMix::DynOnly;
      spec.clusters = clusters;
      spec.inter_cluster_share = 0.25;
      spec.base.nodes = clusters * 2;
      spec.base.tasks_per_node = 4;
      spec.base.tasks_per_graph = 4;
      spec.base.deadline_factor = 2.0;
      spec.base.seed = static_cast<std::uint64_t>(1000 * clusters + index);
      auto app = generate_scenario(spec, params);
      if (!app.ok()) {
        ++skipped;
        continue;
      }
      SystemRow row;
      row.workload = "mc/c" + std::to_string(clusters);
      row.index = index;
      try {
        if (!simulate_system(app.value(), params, hyperperiods, row)) {
          ++skipped;
          continue;
        }
      } catch (const std::exception& e) {
        std::cerr << row.workload << "#" << index << ": " << e.what() << "\n";
        all_ok = false;
        continue;
      }
      rows.push_back(row);
    }
  }

  std::uint64_t total_events = 0;
  double total_seconds = 0.0;
  Table table({"workload", "system", "clusters", "tasks", "events", "events/s", "sound",
               "gap", "deterministic"});
  for (const SystemRow& r : rows) {
    total_events += r.events;
    total_seconds += r.wall_seconds;
    table.add_row({r.workload, std::to_string(r.index), std::to_string(r.clusters),
                   std::to_string(r.tasks), std::to_string(r.events),
                   fmt_double(r.events_per_second, 0), r.sound ? "yes" : "NO",
                   fmt_percent(r.mean_gap), r.deterministic ? "yes" : "NO"});
    if (!r.sound || !r.deterministic || r.precedence_violations != 0) all_ok = false;
  }
  table.print(std::cout);
  const double aggregate_rate =
      total_seconds > 0.0 ? static_cast<double>(total_events) / total_seconds : 0.0;
  std::cout << rows.size() << " systems simulated (" << skipped << " skipped), "
            << total_events << " events, " << fmt_double(aggregate_rate, 0)
            << " events/s aggregate\n";

  if (!out_path.empty()) {
    JsonWriter json;
    json.begin_object();
    json.field("bench", "netsim");
    json.field("hyperperiods", hyperperiods);
    json.field("systems", rows.size());
    json.field("skipped", skipped);
    json.field("total_events", total_events);
    json.field("events_per_second", aggregate_rate);
    json.key("results").begin_array();
    for (const SystemRow& r : rows) {
      json.begin_object()
          .field("workload", r.workload)
          .field("index", r.index)
          .field("clusters", r.clusters)
          .field("tasks", r.tasks)
          .field("messages", r.messages)
          .field("horizon", r.horizon)
          .field("events", r.events)
          .field("wall_seconds", r.wall_seconds)
          .field("events_per_second", r.events_per_second)
          .field("sound", r.sound)
          .field("checked", r.checked)
          .field("mean_gap", r.mean_gap)
          .field("precedence_violations", r.precedence_violations)
          .field("deterministic", r.deterministic)
          .end_object();
    }
    json.end_array();
    json.end_object();
    std::ofstream out(out_path, std::ios::binary);
    out << json.str() << "\n";
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 2;
    }
    std::cout << "wrote " << out_path << "\n";
  }

  if (check) {
    if (rows.empty() || !all_ok) {
      std::cerr << "CHECK FAILED: " << rows.size() << " systems simulated, all_ok=" << all_ok
                << "\n";
      return 1;
    }
    std::cout << "CHECK OK: " << rows.size()
              << " systems simulated sound and byte-deterministic\n";
  }
  return 0;
}
