// Ablations A1/A2 — curve-fit hyper-parameters (Fig. 8): the number of
// initially analysed points (the paper uses 5) and the Nmax stale-iteration
// termination bound (the paper uses 10).  Reports solution quality and the
// number of full analyses for each setting on the Fig. 9 workloads.

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "flexopt/math/stats.hpp"
#include "flexopt/util/table.hpp"

using namespace flexopt;
using namespace flexopt::bench;

namespace {

struct Setting {
  int initial_points;
  int n_max;
};

}  // namespace

int main() {
  std::cout << "== Ablation A1/A2: OBC-CF initial points and Nmax ==\n";
  const Scale scale = Scale::current();
  scale.print(std::cout);
  const BusParams params = section7_params();

  const std::vector<Setting> settings{
      {2, 10}, {3, 10}, {5, 10}, {9, 10},  // A1: initial points (paper: 5)
      {5, 2},  {5, 5},  {5, 20},           // A2: Nmax (paper: 10)
  };

  Table table({"init pts", "Nmax", "avg cost (us)", "avg evals", "schedulable"});
  const int nodes = 4;
  for (const Setting& s : settings) {
    std::vector<double> costs;
    std::vector<double> evals;
    int sched = 0;
    for (int i = 0; i < scale.systems_per_size; ++i) {
      auto app = section7_system(nodes, i);
      if (!app.ok()) continue;
      ObcCfParams optimizer_params;
      optimizer_params.dyn.initial_points = s.initial_points;
      optimizer_params.dyn.n_max = s.n_max;
      const OptimizationOutcome outcome =
          run_algorithm("obc-cf", app.value(), params, optimizer_params).outcome;
      if (outcome.cost.value < kInvalidConfigCost) costs.push_back(outcome.cost.value);
      evals.push_back(static_cast<double>(outcome.evaluations));
      sched += outcome.feasible ? 1 : 0;
    }
    table.add_row({std::to_string(s.initial_points), std::to_string(s.n_max),
                   fmt_double(summarize(costs).mean, 1), fmt_double(summarize(evals).mean, 1),
                   std::to_string(sched) + "/" + std::to_string(scale.systems_per_size)});
  }
  table.print(std::cout);
  std::cout << "\nReading: too few initial points degrade the interpolation (more\n"
               "verification rounds); larger Nmax only matters for infeasible systems.\n";
  return 0;
}
