// BBC (Fig. 5): minimal ST segment, criticality FrameIDs, DYN sweep.

#include <gtest/gtest.h>

#include "flexopt/core/bbc.hpp"
#include "flexopt/core/config_builder.hpp"
#include "flexopt/gen/cruise_control.hpp"
#include "flexopt/gen/synthetic.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

AnalysisOptions fast_analysis() {
  AnalysisOptions o;
  o.scheduler.placement = Placement::Asap;
  return o;
}

TEST(Bbc, FindsScheduleableConfigOnSmallSystem) {
  SyntheticSpec spec;
  spec.nodes = 2;
  spec.seed = 42;
  BusParams params;
  params.gd_minislot = timeunits::us(5);
  auto app = generate_synthetic(spec, params);
  ASSERT_TRUE(app.ok());
  CostEvaluator evaluator(app.value(), params, fast_analysis());
  BbcOptions options;
  options.max_sweep_points = 24;
  const OptimizationOutcome outcome = optimize_bbc(evaluator, options);
  EXPECT_GT(outcome.evaluations, 0);
  EXPECT_LT(outcome.cost.value, kInvalidConfigCost);
  // The produced config uses the minimal static structure of Fig. 5.
  const auto senders = st_sender_nodes(app.value());
  EXPECT_EQ(outcome.config.static_slot_count, static_cast<int>(senders.size()));
  EXPECT_EQ(outcome.config.static_slot_len, min_static_slot_len(app.value(), params));
}

TEST(Bbc, ProducedConfigIsValidAndReproducible) {
  SyntheticSpec spec;
  spec.nodes = 3;
  spec.seed = 7;
  BusParams params;
  params.gd_minislot = timeunits::us(5);
  auto app = generate_synthetic(spec, params);
  ASSERT_TRUE(app.ok());
  CostEvaluator evaluator(app.value(), params, fast_analysis());
  BbcOptions options;
  options.max_sweep_points = 16;
  const OptimizationOutcome outcome = optimize_bbc(evaluator, options);
  ASSERT_LT(outcome.cost.value, kInvalidConfigCost);
  // Re-evaluating the chosen config reproduces the reported cost.
  CostEvaluator fresh(app.value(), params, fast_analysis());
  const auto eval = fresh.evaluate(outcome.config);
  ASSERT_TRUE(eval.valid);
  EXPECT_DOUBLE_EQ(eval.cost.value, outcome.cost.value);
}

TEST(Bbc, EvaluationCountMatchesSweepResolution) {
  const Application app = build_cruise_controller();
  const BusParams params = cruise_controller_params();
  CostEvaluator evaluator(app, params, fast_analysis());
  BbcOptions coarse;
  coarse.max_sweep_points = 8;
  const auto few = optimize_bbc(evaluator, coarse);
  CostEvaluator evaluator2(app, params, fast_analysis());
  BbcOptions fine;
  fine.max_sweep_points = 32;
  const auto many = optimize_bbc(evaluator2, fine);
  EXPECT_GT(many.evaluations, few.evaluations);
  // A finer sweep can only improve (or match) the best cost found.
  EXPECT_LE(many.cost.value, few.cost.value + 1e-9);
}

TEST(Bbc, ExplicitStrideIsHonoured) {
  const Application app = build_cruise_controller();
  const BusParams params = cruise_controller_params();
  CostEvaluator evaluator(app, params, fast_analysis());
  BbcOptions options;
  options.dyn_stride_minislots = 500;
  const auto outcome = optimize_bbc(evaluator, options);
  const DynBounds bounds =
      dyn_segment_bounds(app, params,
                         static_cast<Time>(outcome.config.static_slot_count) *
                             outcome.config.static_slot_len);
  const long expected = (bounds.max_minislots - bounds.min_minislots) / 500 + 1;
  EXPECT_EQ(outcome.evaluations, expected);
}

}  // namespace
}  // namespace flexopt
