// The unified Solver API: OptimizerRegistry round-trips, SolveRequest
// budgets, progress reporting, and cooperative cancellation.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "flexopt/core/solver.hpp"
#include "flexopt/gen/cruise_control.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

using testing::TinySystem;

TEST(OptimizerRegistry, RoundTripsAllFourAlgorithms) {
  const std::vector<std::pair<std::string, std::string>> expectations{
      {"bbc", "BBC"}, {"obc-ee", "OBC-exhaustive"}, {"obc-cf", "OBC-curve-fit"}, {"sa", "SA"}};
  for (const auto& [key, algorithm_label] : expectations) {
    auto optimizer = OptimizerRegistry::create(key);
    ASSERT_TRUE(optimizer.ok()) << key;
    EXPECT_EQ(optimizer.value()->name(), key);

    TinySystem sys;
    CostEvaluator evaluator(sys.app, sys.params, AnalysisOptions{});
    SolveRequest request;
    if (key == "sa") request.max_evaluations = 60;
    const SolveReport report = optimizer.value()->solve(evaluator, request);
    EXPECT_EQ(report.outcome.algorithm, algorithm_label) << key;
    EXPECT_LT(report.outcome.cost.value, kInvalidConfigCost) << key;
    EXPECT_GT(report.outcome.evaluations, 0) << key;
  }
}

TEST(OptimizerRegistry, ListContainsTheBuiltins) {
  const std::vector<OptimizerInfo> algorithms = OptimizerRegistry::list();
  ASSERT_GE(algorithms.size(), 4u);
  auto has = [&](const std::string& name) {
    for (const OptimizerInfo& info : algorithms) {
      if (info.name == name) return !info.description.empty();
    }
    return false;
  };
  EXPECT_TRUE(has("bbc"));
  EXPECT_TRUE(has("obc-ee"));
  EXPECT_TRUE(has("obc-cf"));
  EXPECT_TRUE(has("sa"));
  // list() is sorted by name.
  for (std::size_t i = 1; i < algorithms.size(); ++i) {
    EXPECT_LT(algorithms[i - 1].name, algorithms[i].name);
  }
}

TEST(OptimizerRegistry, AcceptsAliasesAndAnyCase) {
  for (const char* name : {"OBCCF", "obccf", "Obc-Cf", "OBC_CF"}) {
    auto optimizer = OptimizerRegistry::create(name);
    ASSERT_TRUE(optimizer.ok()) << name;
    EXPECT_EQ(optimizer.value()->name(), "obc-cf") << name;
  }
  EXPECT_TRUE(OptimizerRegistry::contains("ObCeE"));
}

TEST(OptimizerRegistry, UnknownNameErrorListsTheValidSet) {
  auto optimizer = OptimizerRegistry::create("does-not-exist");
  ASSERT_FALSE(optimizer.ok());
  const std::string& message = optimizer.error().message;
  EXPECT_NE(message.find("does-not-exist"), std::string::npos);
  for (const char* name : {"bbc", "obc-ee", "obc-cf", "sa"}) {
    EXPECT_NE(message.find(name), std::string::npos) << message;
  }
}

TEST(OptimizerRegistry, RejectsWrongPayloadType) {
  auto optimizer = OptimizerRegistry::create("bbc", SaOptions{});
  ASSERT_FALSE(optimizer.ok());
  EXPECT_NE(optimizer.error().message.find("bbc"), std::string::npos);
}

TEST(OptimizerRegistry, ForwardsPerAlgorithmPayloads) {
  ObcEeParams params;
  params.dyn.max_sweep_points = 4;
  auto coarse = OptimizerRegistry::create("obc-ee", params);
  ASSERT_TRUE(coarse.ok());
  params.dyn.max_sweep_points = 64;
  auto fine = OptimizerRegistry::create("obc-ee", params);
  ASSERT_TRUE(fine.ok());

  TinySystem sys;
  CostEvaluator e1(sys.app, sys.params, AnalysisOptions{});
  CostEvaluator e2(sys.app, sys.params, AnalysisOptions{});
  const long coarse_evals = coarse.value()->solve(e1).outcome.evaluations;
  const long fine_evals = fine.value()->solve(e2).outcome.evaluations;
  EXPECT_LE(coarse_evals, fine_evals);
}

TEST(Solver, EvaluationBudgetIsEnforced) {
  const Application app = build_cruise_controller();
  const BusParams params = cruise_controller_params();
  auto optimizer = OptimizerRegistry::create("obc-ee");
  ASSERT_TRUE(optimizer.ok());

  CostEvaluator evaluator(app, params, AnalysisOptions{});
  SolveRequest request;
  request.max_evaluations = 5;
  const SolveReport report = optimizer.value()->solve(evaluator, request);
  EXPECT_EQ(report.status, SolveStatus::BudgetExhausted);
  EXPECT_LE(report.outcome.evaluations, 5);
}

TEST(Solver, PreCancelledRequestStopsBeforeAnyAnalysis) {
  const Application app = build_cruise_controller();
  const BusParams params = cruise_controller_params();
  auto optimizer = OptimizerRegistry::create("obc-ee");
  ASSERT_TRUE(optimizer.ok());

  CostEvaluator evaluator(app, params, AnalysisOptions{});
  SolveRequest request;
  request.cancel = std::make_shared<std::atomic<bool>>(true);
  const SolveReport report = optimizer.value()->solve(evaluator, request);
  EXPECT_EQ(report.status, SolveStatus::Cancelled);
  EXPECT_EQ(report.outcome.evaluations, 0);
}

TEST(Solver, ProgressCallbackObservesTheRun) {
  TinySystem sys;
  auto optimizer = OptimizerRegistry::create("obc-cf");
  ASSERT_TRUE(optimizer.ok());

  CostEvaluator evaluator(sys.app, sys.params, AnalysisOptions{});
  int calls = 0;
  long last_evaluations = -1;
  SolveRequest request;
  request.progress = [&](const SolveProgress& progress) {
    ++calls;
    EXPECT_GE(progress.evaluations, last_evaluations);
    last_evaluations = progress.evaluations;
    EXPECT_EQ(progress.algorithm, "OBC-CF");
    return true;
  };
  const SolveReport report = optimizer.value()->solve(evaluator, request);
  EXPECT_EQ(report.status, SolveStatus::Complete);
  EXPECT_GT(calls, 0);
}

TEST(Solver, ProgressCallbackCanCancel) {
  const Application app = build_cruise_controller();
  const BusParams params = cruise_controller_params();
  auto optimizer = OptimizerRegistry::create("obc-ee");
  ASSERT_TRUE(optimizer.ok());

  CostEvaluator evaluator(app, params, AnalysisOptions{});
  SolveRequest request;
  request.progress = [](const SolveProgress&) { return false; };
  const SolveReport report = optimizer.value()->solve(evaluator, request);
  EXPECT_EQ(report.status, SolveStatus::Cancelled);
  // Cancelled on the first poll: at most one batch of work happened.
  EXPECT_LT(report.outcome.evaluations, 64);
}

TEST(Solver, SaBudgetFromRequestReportsBudgetExhausted) {
  const Application app = build_cruise_controller();
  const BusParams params = cruise_controller_params();
  auto optimizer = OptimizerRegistry::create("sa");
  ASSERT_TRUE(optimizer.ok());

  CostEvaluator evaluator(app, params, AnalysisOptions{});
  SolveRequest request;
  request.max_evaluations = 50;
  const SolveReport report = optimizer.value()->solve(evaluator, request);
  EXPECT_EQ(report.status, SolveStatus::BudgetExhausted);
  EXPECT_LE(report.outcome.evaluations, 50 + 1);
}

TEST(Solver, SaPayloadSeedRespectedWhenRequestLeavesItUnset) {
  const Application app = build_cruise_controller();
  const BusParams params = cruise_controller_params();
  SaOptions payload;
  payload.seed = 5;
  payload.max_evaluations = 80;

  auto solve_with = [&](const OptimizerParams& params_payload, const SolveRequest& request) {
    auto optimizer = OptimizerRegistry::create("sa", params_payload);
    EXPECT_TRUE(optimizer.ok());
    CostEvaluator evaluator(app, params, AnalysisOptions{});
    return optimizer.value()->solve(evaluator, request);
  };
  // Payload seed with an unset request seed == same payload with the seed
  // set through the request instead: identical trajectories.  (The budget
  // stays in the payload for both — request budgets add cooperative stops
  // inside the seeding passes, which payload budgets don't.)
  SaOptions payload_default_seed;
  payload_default_seed.max_evaluations = 80;
  SolveRequest via_request;
  via_request.seed = 5;
  const SolveReport a = solve_with(payload, SolveRequest{});
  const SolveReport b = solve_with(payload_default_seed, via_request);
  EXPECT_DOUBLE_EQ(a.outcome.cost.value, b.outcome.cost.value);
  EXPECT_EQ(a.outcome.config, b.outcome.config);
}

TEST(Solver, SaSeedComesFromTheRequest) {
  const Application app = build_cruise_controller();
  const BusParams params = cruise_controller_params();
  SolveRequest request;
  request.seed = 99;
  request.max_evaluations = 80;

  auto run = [&]() {
    auto optimizer = OptimizerRegistry::create("sa");
    EXPECT_TRUE(optimizer.ok());
    CostEvaluator evaluator(app, params, AnalysisOptions{});
    return optimizer.value()->solve(evaluator, request);
  };
  const SolveReport a = run();
  const SolveReport b = run();
  EXPECT_DOUBLE_EQ(a.outcome.cost.value, b.outcome.cost.value);
  EXPECT_EQ(a.outcome.config, b.outcome.config);
}

TEST(Solver, ReportCarriesCacheCounters) {
  const Application app = build_cruise_controller();
  const BusParams params = cruise_controller_params();
  auto optimizer = OptimizerRegistry::create("sa");
  ASSERT_TRUE(optimizer.ok());

  CostEvaluator evaluator(app, params, AnalysisOptions{});
  SolveRequest request;
  request.max_evaluations = 120;
  const SolveReport report = optimizer.value()->solve(evaluator, request);
  // SA revisits configurations; the cache must have absorbed some of them.
  EXPECT_GT(report.cache_misses, 0u);
  EXPECT_EQ(report.cache_misses, evaluator.cache_stats().misses);
}

/// A front-end-defined optimizer: registration is open, not builtin-only.
TEST(OptimizerRegistry, SupportsExternalRegistration) {
  class FixedConfigOptimizer final : public Optimizer {
   public:
    [[nodiscard]] std::string_view name() const override { return "fixed"; }
    SolveReport solve_cluster(CostEvaluator& evaluator, const SolveRequest&) override {
      SolveReport report;
      TinySystem sys;
      const auto eval = evaluator.evaluate(sys.config);
      report.outcome.algorithm = "FIXED";
      report.outcome.config = sys.config;
      report.outcome.cost = eval.cost;
      report.outcome.feasible = eval.cost.schedulable;
      report.outcome.evaluations = 1;
      return report;
    }
  };
  OptimizerRegistry::register_optimizer(
      "test-fixed", "unit-test optimizer",
      [](const OptimizerParams&) -> Expected<std::unique_ptr<Optimizer>> {
        return std::unique_ptr<Optimizer>(std::make_unique<FixedConfigOptimizer>());
      });
  ASSERT_TRUE(OptimizerRegistry::contains("test-fixed"));
  auto optimizer = OptimizerRegistry::create("test-fixed");
  ASSERT_TRUE(optimizer.ok());
  TinySystem sys;
  CostEvaluator evaluator(sys.app, sys.params, AnalysisOptions{});
  EXPECT_EQ(optimizer.value()->solve(evaluator).outcome.algorithm, "FIXED");
}

}  // namespace
}  // namespace flexopt
