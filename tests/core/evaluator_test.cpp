// CostEvaluator: the shared, thread-safe analysis service all optimisers
// consume — memoization cache, atomic work counter, shared Application
// ownership, and the evaluate_many worker pool.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "flexopt/core/evaluator.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

using testing::TinySystem;

EvaluatorOptions uncached_serial() {
  EvaluatorOptions o;
  o.cache_enabled = false;
  o.threads = 1;
  return o;
}

TEST(CostEvaluator, ValidConfigYieldsCostAndCountsEvaluation) {
  TinySystem sys;
  CostEvaluator evaluator(sys.app, sys.params, AnalysisOptions{});
  EXPECT_EQ(evaluator.evaluations(), 0);
  const auto eval = evaluator.evaluate(sys.config);
  ASSERT_TRUE(eval.valid);
  EXPECT_LT(eval.cost.value, kInvalidConfigCost);
  EXPECT_EQ(evaluator.evaluations(), 1);
}

TEST(CostEvaluator, InvalidConfigDoesNotCountAsAnalysis) {
  TinySystem sys;
  CostEvaluator evaluator(sys.app, sys.params, AnalysisOptions{});
  BusConfig broken = sys.config;
  broken.minislot_count = -1;
  const auto eval = evaluator.evaluate(broken);
  EXPECT_FALSE(eval.valid);
  EXPECT_FALSE(eval.error.empty());
  EXPECT_DOUBLE_EQ(eval.cost.value, kInvalidConfigCost);
  EXPECT_EQ(evaluator.evaluations(), 0);
}

TEST(CostEvaluator, RevisitIsServedFromCache) {
  TinySystem sys;
  CostEvaluator evaluator(sys.app, sys.params, AnalysisOptions{});
  const auto a = evaluator.evaluate(sys.config);
  const auto b = evaluator.evaluate(sys.config);
  ASSERT_TRUE(a.valid);
  ASSERT_TRUE(b.valid);
  EXPECT_DOUBLE_EQ(a.cost.value, b.cost.value);
  // The second visit is a cache hit: no new full analysis.
  EXPECT_EQ(evaluator.evaluations(), 1);
  const EvaluatorCacheStats stats = evaluator.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(CostEvaluator, CacheDisabledAnalysesEveryVisit) {
  TinySystem sys;
  CostEvaluator evaluator(sys.app, sys.params, AnalysisOptions{}, uncached_serial());
  const auto a = evaluator.evaluate(sys.config);
  const auto b = evaluator.evaluate(sys.config);
  ASSERT_TRUE(a.valid);
  ASSERT_TRUE(b.valid);
  EXPECT_DOUBLE_EQ(a.cost.value, b.cost.value);
  EXPECT_EQ(evaluator.evaluations(), 2);
}

TEST(CostEvaluator, CachedEvaluationIdenticalToFreshAnalysis) {
  TinySystem sys;
  CostEvaluator cached(sys.app, sys.params, AnalysisOptions{});
  (void)cached.evaluate(sys.config);           // populate
  const auto hit = cached.evaluate(sys.config);  // served from cache

  CostEvaluator fresh(sys.app, sys.params, AnalysisOptions{}, uncached_serial());
  const auto reference = fresh.evaluate(sys.config);

  ASSERT_TRUE(hit.valid);
  ASSERT_TRUE(reference.valid);
  EXPECT_DOUBLE_EQ(hit.cost.value, reference.cost.value);
  EXPECT_EQ(hit.cost.schedulable, reference.cost.schedulable);
  EXPECT_EQ(hit.analysis.task_completion, reference.analysis.task_completion);
  EXPECT_EQ(hit.analysis.message_completion, reference.analysis.message_completion);
}

TEST(CostEvaluator, AnalysisResultExposed) {
  TinySystem sys;
  CostEvaluator evaluator(sys.app, sys.params, AnalysisOptions{});
  const auto eval = evaluator.evaluate(sys.config);
  ASSERT_TRUE(eval.valid);
  EXPECT_EQ(eval.analysis.task_completion.size(), sys.app.task_count());
  EXPECT_EQ(eval.analysis.message_completion.size(), sys.app.message_count());
  EXPECT_EQ(eval.analysis.cost.value, eval.cost.value);
}

// Regression for the dangling-pointer hazard of the raw `const Application*`
// evaluator: evaluations must stay valid after the caller's Application (and
// the caller's shared_ptr) go out of scope.
TEST(CostEvaluator, OutlivesSourceApplication) {
  std::unique_ptr<CostEvaluator> evaluator;
  BusConfig config;
  {
    TinySystem sys;
    config = sys.config;
    evaluator = std::make_unique<CostEvaluator>(sys.app, sys.params, AnalysisOptions{});
  }  // sys.app destroyed here
  const auto eval = evaluator->evaluate(config);
  ASSERT_TRUE(eval.valid);
  EXPECT_LT(eval.cost.value, kInvalidConfigCost);
}

TEST(CostEvaluator, SharedOwnershipConstructorSharesTheApplication) {
  TinySystem sys;
  auto shared = std::make_shared<const Application>(sys.app);
  CostEvaluator evaluator(shared, sys.params, AnalysisOptions{});
  EXPECT_EQ(evaluator.application_ptr().get(), shared.get());
  EXPECT_EQ(&evaluator.application(), shared.get());
  const auto eval = evaluator.evaluate(sys.config);
  EXPECT_TRUE(eval.valid);
}

TEST(CostEvaluator, EvaluateManyMatchesSerialUncachedWithFewerAnalyses) {
  TinySystem sys;

  // A candidate sweep with revisits, as a nested exploration produces.
  std::vector<BusConfig> candidates;
  for (int pass = 0; pass < 2; ++pass) {
    for (int minislots = 4; minislots <= 16; ++minislots) {
      candidates.push_back(sys.config);
      candidates.back().minislot_count = minislots;
    }
  }

  CostEvaluator serial(sys.app, sys.params, AnalysisOptions{}, uncached_serial());
  std::vector<CostEvaluator::Evaluation> reference;
  reference.reserve(candidates.size());
  for (const BusConfig& c : candidates) reference.push_back(serial.evaluate(c));

  EvaluatorOptions pool;
  pool.threads = 4;
  CostEvaluator parallel(sys.app, sys.params, AnalysisOptions{}, pool);
  const auto results = parallel.evaluate_many(candidates);

  ASSERT_EQ(results.size(), reference.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].valid, reference[i].valid) << "candidate " << i;
    EXPECT_DOUBLE_EQ(results[i].cost.value, reference[i].cost.value) << "candidate " << i;
  }
  // The duplicated pass is deduplicated by the cache: strictly fewer full
  // analyses than the uncached serial sweep.
  EXPECT_LT(parallel.evaluations(), serial.evaluations());
}

TEST(CostEvaluator, ConcurrentEvaluateIsConsistent) {
  TinySystem sys;
  CostEvaluator evaluator(sys.app, sys.params, AnalysisOptions{});
  const auto reference = evaluator.evaluate(sys.config);
  ASSERT_TRUE(reference.valid);

  constexpr int kThreads = 4;
  constexpr int kRounds = 16;
  std::vector<std::thread> threads;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        BusConfig config = sys.config;
        config.minislot_count = 4 + (r % 8);
        const auto eval = evaluator.evaluate(config);
        const auto again = evaluator.evaluate(config);
        if (!eval.valid || !again.valid || eval.cost.value != again.cost.value) {
          ++mismatches[t];
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0) << "thread " << t;
}

TEST(CostEvaluator, CacheCapacityBoundsInsertions) {
  TinySystem sys;
  EvaluatorOptions options;
  options.max_cache_entries = 1;
  CostEvaluator evaluator(sys.app, sys.params, AnalysisOptions{}, options);
  BusConfig other = sys.config;
  other.minislot_count = sys.config.minislot_count + 1;
  (void)evaluator.evaluate(sys.config);
  (void)evaluator.evaluate(other);  // not inserted: cache is full
  EXPECT_EQ(evaluator.cache_stats().entries, 1u);
  // Still correct, just uncached.
  const auto eval = evaluator.evaluate(other);
  EXPECT_TRUE(eval.valid);
  EXPECT_EQ(evaluator.evaluations(), 3);
}

TEST(CostEvaluator, ClearCacheForcesReanalysis) {
  TinySystem sys;
  CostEvaluator evaluator(sys.app, sys.params, AnalysisOptions{});
  (void)evaluator.evaluate(sys.config);
  evaluator.clear_cache();
  EXPECT_EQ(evaluator.cache_stats().entries, 0u);
  (void)evaluator.evaluate(sys.config);
  EXPECT_EQ(evaluator.evaluations(), 2);
}

TEST(CostEvaluator, HashDistinguishesDecisionVariables) {
  TinySystem sys;
  BusConfig a = sys.config;
  BusConfig b = a;
  EXPECT_EQ(hash_config(a), hash_config(b));
  b.minislot_count += 1;
  EXPECT_NE(hash_config(a), hash_config(b));
  b = a;
  b.frame_id.back() += 1;
  EXPECT_NE(hash_config(a), hash_config(b));
  b = a;
  b.static_slot_len += 1;
  EXPECT_NE(hash_config(a), hash_config(b));
}

}  // namespace
}  // namespace flexopt
