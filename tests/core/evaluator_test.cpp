// CostEvaluator: the shared analysis service all optimisers consume.

#include <gtest/gtest.h>

#include "flexopt/core/evaluator.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

using testing::TinySystem;

TEST(CostEvaluator, ValidConfigYieldsCostAndCountsEvaluation) {
  TinySystem sys;
  CostEvaluator evaluator(sys.app, sys.params, AnalysisOptions{});
  EXPECT_EQ(evaluator.evaluations(), 0);
  const auto eval = evaluator.evaluate(sys.config);
  ASSERT_TRUE(eval.valid);
  EXPECT_LT(eval.cost.value, kInvalidConfigCost);
  EXPECT_EQ(evaluator.evaluations(), 1);
}

TEST(CostEvaluator, InvalidConfigDoesNotCountAsAnalysis) {
  TinySystem sys;
  CostEvaluator evaluator(sys.app, sys.params, AnalysisOptions{});
  BusConfig broken = sys.config;
  broken.minislot_count = -1;
  const auto eval = evaluator.evaluate(broken);
  EXPECT_FALSE(eval.valid);
  EXPECT_FALSE(eval.error.empty());
  EXPECT_DOUBLE_EQ(eval.cost.value, kInvalidConfigCost);
  EXPECT_EQ(evaluator.evaluations(), 0);
}

TEST(CostEvaluator, DeterministicAcrossCalls) {
  TinySystem sys;
  CostEvaluator evaluator(sys.app, sys.params, AnalysisOptions{});
  const auto a = evaluator.evaluate(sys.config);
  const auto b = evaluator.evaluate(sys.config);
  ASSERT_TRUE(a.valid);
  ASSERT_TRUE(b.valid);
  EXPECT_DOUBLE_EQ(a.cost.value, b.cost.value);
  EXPECT_EQ(evaluator.evaluations(), 2);
}

TEST(CostEvaluator, AnalysisResultExposed) {
  TinySystem sys;
  CostEvaluator evaluator(sys.app, sys.params, AnalysisOptions{});
  const auto eval = evaluator.evaluate(sys.config);
  ASSERT_TRUE(eval.valid);
  EXPECT_EQ(eval.analysis.task_completion.size(), sys.app.task_count());
  EXPECT_EQ(eval.analysis.message_completion.size(), sys.app.message_count());
  EXPECT_EQ(eval.analysis.cost.value, eval.cost.value);
}

}  // namespace
}  // namespace flexopt
