// Backend-dispatch conformance: the ClusterBackend interface must be
// invisible for single-cluster FlexRay systems (bit-identical costs and
// completions through the old and new evaluator surfaces), TSN clusters
// must price through the same SystemConfig delta path as full evaluation,
// and a mixed FlexRay+TSN system must solve end-to-end through the
// registry optimizers with the backend tags surviving into the report.

#include <gtest/gtest.h>

#include <memory>

#include "flexopt/core/config_builder.hpp"
#include "flexopt/core/solver.hpp"
#include "flexopt/core/tsn_search.hpp"
#include "flexopt/gen/scenario.hpp"
#include "flexopt/io/solve_report_json.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

using testing::TinySystem;
using testing::TwoClusterSystem;

TEST(BackendDispatch, SingleClusterFlexrayIsBitIdenticalThroughSystemConfig) {
  TinySystem tiny;
  CostEvaluator direct(tiny.app, tiny.params, AnalysisOptions{});
  const auto old_path = direct.evaluate(tiny.config);
  ASSERT_TRUE(old_path.valid);

  CostEvaluator system_path(tiny.app, tiny.params, AnalysisOptions{});
  const auto new_path = system_path.evaluate_system(SystemConfig::single(tiny.config));
  ASSERT_TRUE(new_path.valid);

  EXPECT_EQ(old_path.cost.value, new_path.cost.value);
  EXPECT_EQ(old_path.cost.schedulable, new_path.cost.schedulable);
  // The degenerate case routes through the pre-cluster pipeline: the result
  // is the single-bus Evaluation itself (analysis filled, no per-cluster
  // vector), byte for byte.
  EXPECT_TRUE(new_path.cluster_analysis.empty());
  EXPECT_EQ(old_path.analysis.task_completion, new_path.analysis.task_completion);
  EXPECT_EQ(old_path.analysis.message_completion, new_path.analysis.message_completion);
}

struct MixedFixture {
  TwoClusterSystem sys;
  SystemModel model;
  SystemConfig config;

  MixedFixture() {
    // Cluster 1 speaks TSN; re-finalize after the declaration.
    sys.app.set_cluster_backend(static_cast<ClusterId>(1), ClusterBackendKind::Tsn);
    auto fin = sys.app.finalize();
    if (!fin.ok()) throw std::runtime_error(fin.error().message);
    auto built = SystemModel::build(std::make_shared<const Application>(sys.app));
    if (!built.ok()) throw std::runtime_error(built.error().message);
    model = std::move(built).value();
    for (std::size_t c = 0; c < model.cluster_count(); ++c) {
      config.clusters.push_back(minimal_start_cluster_config(
          *model.cluster_app(c), sys.params,
          model.cluster_app(c)->cluster_backend(ClusterId{0})));
    }
  }
};

TEST(BackendDispatch, ProjectionCarriesTheBackendDeclaration) {
  MixedFixture f;
  EXPECT_EQ(f.model.cluster_app(0)->cluster_backend(ClusterId{0}),
            ClusterBackendKind::FlexRay);
  EXPECT_EQ(f.model.cluster_app(1)->cluster_backend(ClusterId{0}), ClusterBackendKind::Tsn);
  EXPECT_EQ(f.config.clusters[0].kind, ClusterBackendKind::FlexRay);
  EXPECT_EQ(f.config.clusters[1].kind, ClusterBackendKind::Tsn);
}

TEST(BackendDispatch, MixedSystemEvaluatesAndDeltaMatchesFull) {
  MixedFixture f;
  CostEvaluator evaluator(f.model, f.sys.params, AnalysisOptions{});
  const auto base = evaluator.evaluate_system(f.config);
  ASSERT_TRUE(base.valid) << base.error;
  ASSERT_EQ(base.cluster_analysis.size(), 2u);

  // A TSN move on cluster 1: demote the first message's ET priority.
  TsnConfig next = f.config.clusters[1].tsn;
  ASSERT_FALSE(next.et_priority.empty());
  next.et_priority[0] += 1;
  const DeltaMove move = DeltaMove::tsn_between(f.config.clusters[1].tsn, next, 1);
  const auto delta = evaluator.evaluate_delta(f.config, move);
  ASSERT_TRUE(delta.valid) << delta.error;

  SystemConfig substituted = f.config;
  substituted.clusters[1] = ClusterConfig::tsn_switch(next);
  CostEvaluator reference(f.model, f.sys.params, AnalysisOptions{});
  const auto full = reference.evaluate_system(substituted);
  ASSERT_TRUE(full.valid);
  EXPECT_EQ(delta.cost.value, full.cost.value);
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(delta.cluster_analysis[c].task_completion,
              full.cluster_analysis[c].task_completion);
    EXPECT_EQ(delta.cluster_analysis[c].message_completion,
              full.cluster_analysis[c].message_completion);
  }
}

TEST(BackendDispatch, TsnCoordinateDescentNeverWorsensTheSystem) {
  MixedFixture f;
  CostEvaluator evaluator(f.model, f.sys.params, AnalysisOptions{});
  const auto base = evaluator.evaluate_system(f.config);
  ASSERT_TRUE(base.valid);
  SolveRequest request;
  request.max_evaluations = 80;
  const TsnSearchResult tsn = tsn_coordinate_descent(evaluator, f.config, 1, request);
  EXPECT_LE(tsn.cost.value, base.cost.value);
  if (tsn.improved) {
    SystemConfig best = f.config;
    best.clusters[1] = ClusterConfig::tsn_switch(tsn.config);
    CostEvaluator check(f.model, f.sys.params, AnalysisOptions{});
    const auto re = check.evaluate_system(best);
    ASSERT_TRUE(re.valid);
    EXPECT_EQ(re.cost.value, tsn.cost.value);
  }
}

TEST(BackendDispatch, MixedThreeClusterSolvesEndToEnd) {
  ScenarioSpec scenario;
  scenario.topology = Topology::MultiCluster;
  scenario.traffic = TrafficMix::DynOnly;
  scenario.clusters = 3;
  scenario.backend = BackendMix::Mixed;
  scenario.inter_cluster_share = 0.25;
  scenario.base.nodes = 6;
  scenario.base.tasks_per_node = 4;
  scenario.base.tasks_per_graph = 4;
  scenario.base.deadline_factor = 2.0;
  scenario.base.seed = 21;
  BusParams params;
  auto app = generate_scenario(scenario, params);
  ASSERT_TRUE(app.ok()) << app.error().message;
  auto model = SystemModel::build(std::make_shared<const Application>(std::move(app).value()));
  ASSERT_TRUE(model.ok()) << model.error().message;

  auto optimizer = OptimizerRegistry::create("bbc");
  ASSERT_TRUE(optimizer.ok());
  CostEvaluator evaluator(model.value(), params, AnalysisOptions{});
  SolveRequest request;
  request.seed = 5;
  request.max_evaluations = 200;
  const SolveReport report = optimizer.value()->solve(evaluator, request);
  ASSERT_EQ(report.outcome.system.cluster_count(), 3u);
  EXPECT_EQ(report.outcome.system.clusters[0].kind, ClusterBackendKind::FlexRay);
  EXPECT_EQ(report.outcome.system.clusters[1].kind, ClusterBackendKind::Tsn);
  EXPECT_EQ(report.outcome.system.clusters[2].kind, ClusterBackendKind::FlexRay);
  EXPECT_TRUE(report.outcome.feasible);

  // The chosen product re-evaluates to the reported cost, and the schema v4
  // report carries the per-cluster backend tags.
  CostEvaluator check(model.value(), params, AnalysisOptions{});
  const auto eval = check.evaluate_system(report.outcome.system);
  ASSERT_TRUE(eval.valid);
  EXPECT_EQ(eval.cost.value, report.outcome.cost.value);
  const std::string json = write_solve_json(*model.value().global(), "bbc", report);
  EXPECT_NE(json.find("flexopt-solve-report/5"), std::string::npos);
  EXPECT_NE(json.find("\"backend\": \"tsn\""), std::string::npos);
  EXPECT_NE(json.find("\"backend\": \"flexray\""), std::string::npos);
}

}  // namespace
}  // namespace flexopt
