// DeltaMove diffing, BusConfig sub-hash invalidation edges, and
// CostEvaluator::evaluate_delta: bit-equality with evaluate() for every
// neighbourhood move shape, config-cache integration of the delta path,
// and schedule-component reuse accounting.

#include <gtest/gtest.h>

#include <vector>

#include "flexopt/core/config_builder.hpp"
#include "flexopt/core/evaluator.hpp"
#include "flexopt/gen/cruise_control.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

/// BBC-shaped base configuration for the cruise controller.
struct Fixture {
  Application app = build_cruise_controller();
  BusParams params = cruise_controller_params();
  BusConfig base;
  DynBounds bounds;

  Fixture() {
    const StartConfig start = minimal_start_config(app, params);
    EXPECT_TRUE(start.bounds.feasible());
    base = start.config;
    bounds = start.bounds;
    base.minislot_count = (bounds.min_minislots + bounds.max_minislots) / 2;
  }

  /// Indices of DYN messages (frame_id != 0), ascending.
  [[nodiscard]] std::vector<std::size_t> dyn_messages() const {
    std::vector<std::size_t> out;
    for (std::size_t m = 0; m < base.frame_id.size(); ++m) {
      if (base.frame_id[m] != 0) out.push_back(m);
    }
    return out;
  }
};

void expect_identical(const CostEvaluator::Evaluation& delta,
                      const CostEvaluator::Evaluation& full, const char* label) {
  ASSERT_EQ(delta.valid, full.valid) << label;
  if (!full.valid) {
    EXPECT_EQ(delta.error, full.error) << label;
    return;
  }
  if (delta.analysis.converged && !full.analysis.converged) return;  // documented carve-out
  EXPECT_EQ(delta.cost.value, full.cost.value) << label;
  EXPECT_EQ(delta.cost.schedulable, full.cost.schedulable) << label;
  EXPECT_EQ(delta.cost.unbounded_activities, full.cost.unbounded_activities) << label;
  EXPECT_EQ(delta.analysis.task_completion, full.analysis.task_completion) << label;
  EXPECT_EQ(delta.analysis.message_completion, full.analysis.message_completion) << label;
  EXPECT_EQ(delta.analysis.task_jitter, full.analysis.task_jitter) << label;
  EXPECT_EQ(delta.analysis.message_jitter, full.analysis.message_jitter) << label;
  EXPECT_EQ(delta.analysis.converged, full.analysis.converged) << label;
}

TEST(DeltaMove, NoChangeMoveIsEmpty) {
  const Fixture f;
  const DeltaMove move = DeltaMove::between(f.base, f.base);
  EXPECT_FALSE(move.any_change());
  EXPECT_FALSE(move.st_slot_count_changed);
  EXPECT_FALSE(move.st_slot_len_changed);
  EXPECT_FALSE(move.st_owner_changed);
  EXPECT_FALSE(move.minislot_count_changed);
  EXPECT_TRUE(move.frame_id_changed.empty());
  EXPECT_GT(move.frame_id_window_min, move.frame_id_window_max);  // empty window
}

TEST(DeltaMove, FrameIdSwapYieldsWindow) {
  const Fixture f;
  const auto dyn = f.dyn_messages();
  ASSERT_GE(dyn.size(), 2u);
  BusConfig next = f.base;
  std::swap(next.frame_id[dyn.front()], next.frame_id[dyn.back()]);
  ASSERT_NE(f.base.frame_id[dyn.front()], f.base.frame_id[dyn.back()]);
  const DeltaMove move = DeltaMove::between(f.base, next);
  EXPECT_TRUE(move.any_change());
  EXPECT_FALSE(move.st_slot_len_changed);
  EXPECT_EQ(move.frame_id_changed.size(), 2u);
  const int f1 = f.base.frame_id[dyn.front()];
  const int f2 = f.base.frame_id[dyn.back()];
  EXPECT_EQ(move.frame_id_window_min, std::min(f1, f2));
  EXPECT_EQ(move.frame_id_window_max, std::max(f1, f2));
}

TEST(DeltaMove, BothSegmentsMoveSetsAllFlags) {
  const Fixture f;
  const auto dyn = f.dyn_messages();
  ASSERT_FALSE(dyn.empty());
  BusConfig next = f.base;
  next.static_slot_len += SpecLimits::kPayloadStepBits * f.params.gd_bit;
  next.minislot_count += 1;
  next.frame_id[dyn.front()] += 1;
  const DeltaMove move = DeltaMove::between(f.base, next);
  EXPECT_TRUE(move.st_slot_len_changed);
  EXPECT_TRUE(move.minislot_count_changed);
  EXPECT_EQ(move.frame_id_changed.size(), 1u);
  EXPECT_TRUE(move.invalidation().schedule_invalidated());
  EXPECT_TRUE(move.invalidation().dyn_geometry_invalidated());
}

TEST(ConfigSubHashes, FrameIdChangeKeepsGeometryKey) {
  const Fixture f;
  const auto dyn = f.dyn_messages();
  ASSERT_FALSE(dyn.empty());
  BusConfig next = f.base;
  next.frame_id[dyn.front()] += 1;
  const ConfigSubHashes a = config_subhashes(f.base);
  const ConfigSubHashes b = config_subhashes(next);
  EXPECT_EQ(a.geometry_key, b.geometry_key);
  EXPECT_NE(a.dyn_key, b.dyn_key);
}

TEST(ConfigSubHashes, OwnerChangeKeepsDynKey) {
  const Fixture f;
  ASSERT_GE(f.base.static_slot_owner.size(), 2u);
  BusConfig next = f.base;
  std::swap(next.static_slot_owner.front(), next.static_slot_owner.back());
  ASSERT_NE(next.static_slot_owner, f.base.static_slot_owner);
  const ConfigSubHashes a = config_subhashes(f.base);
  const ConfigSubHashes b = config_subhashes(next);
  EXPECT_NE(a.geometry_key, b.geometry_key);
  EXPECT_EQ(a.dyn_key, b.dyn_key);
}

TEST(ConfigSubHashes, MinislotChangeInvalidatesBothKeys) {
  const Fixture f;
  BusConfig next = f.base;
  next.minislot_count += 1;
  const ConfigSubHashes a = config_subhashes(f.base);
  const ConfigSubHashes b = config_subhashes(next);
  EXPECT_NE(a.geometry_key, b.geometry_key);
  EXPECT_NE(a.dyn_key, b.dyn_key);
}

TEST(EvaluateDelta, MatchesFullForEveryMoveShape) {
  const Fixture f;
  const auto dyn = f.dyn_messages();
  ASSERT_GE(dyn.size(), 2u);
  const Time payload_step = SpecLimits::kPayloadStepBits * f.params.gd_bit;

  std::vector<std::pair<const char*, BusConfig>> neighbours;
  {
    BusConfig c = f.base;  // ST slot length move
    c.static_slot_len += payload_step;
    neighbours.emplace_back("slot-len", c);
  }
  {
    BusConfig c = f.base;  // DYN segment length move
    c.minislot_count = std::min(f.bounds.max_minislots, c.minislot_count + 16);
    neighbours.emplace_back("minislot", c);
  }
  {
    BusConfig c = f.base;  // slot ownership move
    std::swap(c.static_slot_owner.front(), c.static_slot_owner.back());
    neighbours.emplace_back("owner", c);
  }
  {
    BusConfig c = f.base;  // FrameID swap
    std::swap(c.frame_id[dyn.front()], c.frame_id[dyn.back()]);
    neighbours.emplace_back("fid-swap", c);
  }
  {
    BusConfig c = f.base;  // FrameID reassignment to a fresh slot
    int unused_fid = 0;
    for (const std::size_t m : dyn) unused_fid = std::max(unused_fid, f.base.frame_id[m]);
    ++unused_fid;
    ASSERT_LE(unused_fid, c.minislot_count);
    c.frame_id[dyn.front()] = unused_fid;
    neighbours.emplace_back("fid-move", c);
  }
  {
    BusConfig c = f.base;  // move touching both segments at once
    c.static_slot_len += payload_step;
    std::swap(c.frame_id[dyn.front()], c.frame_id[dyn.back()]);
    neighbours.emplace_back("both-segments", c);
  }

  CostEvaluator full(f.app, f.params, AnalysisOptions{});
  CostEvaluator delta(f.app, f.params, AnalysisOptions{});
  ASSERT_TRUE(full.evaluate(f.base).valid);
  ASSERT_TRUE(delta.evaluate(f.base).valid);
  for (const auto& [label, neighbour] : neighbours) {
    const DeltaMove move = DeltaMove::between(f.base, neighbour);
    expect_identical(delta.evaluate_delta(f.base, move), full.evaluate(neighbour), label);
  }
  EXPECT_EQ(delta.work_stats().delta_evaluations, neighbours.size());
}

TEST(EvaluateDelta, NoChangeMoveIsServedFromTheCache) {
  const Fixture f;
  CostEvaluator evaluator(f.app, f.params, AnalysisOptions{});
  const auto base_eval = evaluator.evaluate(f.base);
  ASSERT_TRUE(base_eval.valid);
  const auto hits_before = evaluator.cache_stats().hits;
  const auto again = evaluator.evaluate_delta(f.base, DeltaMove::between(f.base, f.base));
  EXPECT_EQ(again.cost.value, base_eval.cost.value);
  EXPECT_EQ(evaluator.cache_stats().hits, hits_before + 1);
  EXPECT_EQ(evaluator.work_stats().delta_evaluations, 0u);  // no analysis ran
}

TEST(EvaluateDelta, FrameIdMoveReusesTheScheduleComponent) {
  const Fixture f;
  const auto dyn = f.dyn_messages();
  ASSERT_GE(dyn.size(), 2u);
  CostEvaluator evaluator(f.app, f.params, AnalysisOptions{});
  ASSERT_TRUE(evaluator.evaluate(f.base).valid);
  const EvaluatorWorkStats before = evaluator.work_stats();

  BusConfig first = f.base;
  std::swap(first.frame_id[dyn.front()], first.frame_id[dyn.back()]);
  ASSERT_TRUE(evaluator.evaluate_delta(f.base, DeltaMove::between(f.base, first)).valid);
  const EvaluatorWorkStats after_first = evaluator.work_stats();
  // The delta path had to build its schedule component once (the full-path
  // evaluation above does not populate the component cache).
  EXPECT_EQ(after_first.analysis.schedule_builds, before.analysis.schedule_builds + 1);

  BusConfig second = first;
  int unused_fid = 0;
  for (const std::size_t m : dyn) unused_fid = std::max(unused_fid, first.frame_id[m]);
  ++unused_fid;
  ASSERT_LE(unused_fid, second.minislot_count);
  second.frame_id[dyn.front()] = unused_fid;
  ASSERT_TRUE(evaluator.evaluate_delta(first, DeltaMove::between(first, second)).valid);
  const EvaluatorWorkStats after_second = evaluator.work_stats();
  // Same ST/DYN geometry: the table is reused, never rebuilt.
  EXPECT_EQ(after_second.analysis.schedule_builds, after_first.analysis.schedule_builds);
  EXPECT_EQ(after_second.analysis.schedule_reuses, after_first.analysis.schedule_reuses + 1);
  EXPECT_EQ(after_second.delta_seeded, 2u);
}

TEST(EvaluateDelta, WorksWithTheCacheDisabled) {
  const Fixture f;
  EvaluatorOptions options;
  options.cache_enabled = false;
  CostEvaluator delta(f.app, f.params, AnalysisOptions{}, options);
  CostEvaluator full(f.app, f.params, AnalysisOptions{});
  BusConfig neighbour = f.base;
  neighbour.minislot_count += 8;
  const DeltaMove move = DeltaMove::between(f.base, neighbour);
  // No cached base to seed from: the delta path still answers, unseeded.
  expect_identical(delta.evaluate_delta(f.base, move), full.evaluate(neighbour),
                   "cache-disabled");
  EXPECT_EQ(delta.work_stats().delta_seeded, 0u);
}

TEST(EvaluateDelta, InvalidNeighbourReportsTheLayoutError) {
  const Fixture f;
  CostEvaluator evaluator(f.app, f.params, AnalysisOptions{});
  ASSERT_TRUE(evaluator.evaluate(f.base).valid);
  BusConfig neighbour = f.base;
  neighbour.minislot_count = 0;  // DYN messages exist: layout must reject this
  const auto eval = evaluator.evaluate_delta(f.base, DeltaMove::between(f.base, neighbour));
  EXPECT_FALSE(eval.valid);
  EXPECT_FALSE(eval.error.empty());
}

}  // namespace
}  // namespace flexopt
