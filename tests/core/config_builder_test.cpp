// Configuration building blocks: criticality FrameID order (Eq. 4), quota
// round-robin slot assignment, DYN bounds.

#include <gtest/gtest.h>

#include <algorithm>

#include "flexopt/core/config_builder.hpp"
#include "flexopt/gen/cruise_control.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

TEST(FrameIdAssignment, UniqueAndCriticalityOrdered) {
  const Application app = build_cruise_controller();
  const BusParams params = cruise_controller_params();
  const auto fids = assign_frame_ids_by_criticality(app, params);

  std::vector<Time> costs(app.message_count());
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    costs[m] = params.frame_duration(app.messages()[m].size_bytes);
  }
  std::vector<int> seen;
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    if (app.messages()[m].cls == MessageClass::Static) {
      EXPECT_EQ(fids[m], 0);
      continue;
    }
    EXPECT_GE(fids[m], 1);
    seen.push_back(fids[m]);
    // Criticality order: any message with a smaller FrameID is at least as
    // critical (smaller CP).
    for (std::uint32_t o = 0; o < app.message_count(); ++o) {
      if (app.messages()[o].cls != MessageClass::Dynamic || o == m) continue;
      if (fids[o] < fids[m]) {
        EXPECT_LE(app.criticality(static_cast<MessageId>(o), costs),
                  app.criticality(static_cast<MessageId>(m), costs));
      }
    }
  }
  std::sort(seen.begin(), seen.end());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], static_cast<int>(i) + 1);  // dense unique 1..N
  }
}

TEST(FrameIdAssignment, SharedPerNodeGroupsBySender) {
  const Application app = build_cruise_controller();
  const auto fids = assign_frame_ids_shared_per_node(app);
  for (std::uint32_t a = 0; a < app.message_count(); ++a) {
    for (std::uint32_t b = 0; b < app.message_count(); ++b) {
      if (app.messages()[a].cls != MessageClass::Dynamic ||
          app.messages()[b].cls != MessageClass::Dynamic) {
        continue;
      }
      const NodeId na = app.task(app.messages()[a].sender).node;
      const NodeId nb = app.task(app.messages()[b].sender).node;
      if (na == nb) {
        EXPECT_EQ(fids[a], fids[b]);
      } else {
        EXPECT_NE(fids[a], fids[b]);
      }
    }
  }
}

TEST(SlotAssignment, EverySenderGetsASlot) {
  const Application app = build_cruise_controller();
  const auto senders = st_sender_nodes(app);
  const auto owners = assign_static_slots(app, static_cast<int>(senders.size()) + 3);
  ASSERT_EQ(owners.size(), senders.size() + 3);
  for (const NodeId s : senders) {
    EXPECT_NE(std::find(owners.begin(), owners.end(), s), owners.end());
  }
}

TEST(SlotAssignment, QuotaFollowsMessageCounts) {
  const Application app = build_cruise_controller();
  const auto counts = st_message_count_per_node(app);
  const auto senders = st_sender_nodes(app);
  const int total = static_cast<int>(senders.size()) * 3;
  const auto owners = assign_static_slots(app, total);
  // The node with the most ST messages must own at least as many slots as
  // the node with the fewest.
  auto slots_of = [&](NodeId n) {
    return std::count(owners.begin(), owners.end(), n);
  };
  const auto busiest = *std::max_element(senders.begin(), senders.end(), [&](NodeId a, NodeId b) {
    return counts[index_of(a)] < counts[index_of(b)];
  });
  const auto quietest = *std::min_element(senders.begin(), senders.end(), [&](NodeId a, NodeId b) {
    return counts[index_of(a)] < counts[index_of(b)];
  });
  EXPECT_GE(slots_of(busiest), slots_of(quietest));
}

TEST(SlotAssignment, TooFewSlotsYieldsEmpty) {
  const Application app = build_cruise_controller();
  const auto senders = st_sender_nodes(app);
  EXPECT_TRUE(assign_static_slots(app, static_cast<int>(senders.size()) - 1).empty());
}

TEST(DynBounds, CoversLargestFrameAndUniqueIds) {
  const Application app = build_cruise_controller();
  const BusParams params = cruise_controller_params();
  const DynBounds bounds = dyn_segment_bounds(app, params, timeunits::us(500));
  ASSERT_TRUE(bounds.feasible());
  int dyn_msgs = 0;
  int largest = 0;
  for (const auto& m : app.messages()) {
    if (m.cls != MessageClass::Dynamic) continue;
    ++dyn_msgs;
    largest = std::max(largest, params.frame_minislots(m.size_bytes));
  }
  // The highest unique FrameID (== dyn_msgs) must still pass the pLatestTx
  // gate: count >= dyn_msgs + largest - 1.
  EXPECT_EQ(bounds.min_minislots, dyn_msgs + largest - 1);
  EXPECT_GE(bounds.min_minislots, largest);
  EXPECT_LE(bounds.max_minislots, SpecLimits::kMaxMinislots);
  // 16 ms cycle limit respected.
  EXPECT_LE(timeunits::us(500) +
                static_cast<Time>(bounds.max_minislots) * params.gd_minislot,
            SpecLimits::kMaxCycle);
}

TEST(DynBounds, NoDynMessagesMeansEmptySegment) {
  const FigureBundle bundle = build_fig3();
  const DynBounds bounds = dyn_segment_bounds(bundle.app, bundle.params, timeunits::us(100));
  EXPECT_TRUE(bounds.feasible());
  EXPECT_EQ(bounds.min_minislots, 0);
  EXPECT_EQ(bounds.max_minislots, 0);
}

TEST(MinStaticSlotLen, CoversLargestStFrame) {
  const Application app = build_cruise_controller();
  const BusParams params = cruise_controller_params();
  const Time len = min_static_slot_len(app, params);
  for (const auto& m : app.messages()) {
    if (m.cls == MessageClass::Static) {
      EXPECT_GE(len, params.frame_duration(m.size_bytes));
    }
  }
  EXPECT_EQ(len % params.gd_macrotick, 0);
}

}  // namespace
}  // namespace flexopt
