// DYN segment length search: exhaustive vs curve fitting (Fig. 8).  The
// curve-fit strategy must find configurations close to the exhaustive
// optimum with far fewer full analyses.

#include <gtest/gtest.h>

#include "flexopt/core/config_builder.hpp"
#include "flexopt/core/dyn_search.hpp"
#include "flexopt/gen/cruise_control.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

struct SearchFixture {
  Application app = build_cruise_controller();
  BusParams params = cruise_controller_params();
  AnalysisOptions analysis;
  BusConfig base;
  DynBounds bounds;

  SearchFixture() {
    analysis.scheduler.placement = Placement::Asap;
    base.frame_id = assign_frame_ids_by_criticality(app, params);
    const auto senders = st_sender_nodes(app);
    base.static_slot_count = static_cast<int>(senders.size());
    base.static_slot_len = min_static_slot_len(app, params);
    base.static_slot_owner = senders;
    bounds = dyn_segment_bounds(
        app, params, static_cast<Time>(base.static_slot_count) * base.static_slot_len);
    if (!bounds.feasible()) throw std::runtime_error("fixture bounds");
  }
};

TEST(DynSearch, ExhaustiveFindsAValidLength) {
  SearchFixture f;
  CostEvaluator evaluator(f.app, f.params, f.analysis);
  ExhaustiveDynOptions options;
  options.max_sweep_points = 48;
  ExhaustiveDynSearch search(options);
  const DynSearchResult r =
      search.search(evaluator, f.base, f.bounds.min_minislots, f.bounds.max_minislots);
  EXPECT_TRUE(r.exact);
  EXPECT_GE(r.minislots, f.bounds.min_minislots);
  EXPECT_LE(r.minislots, f.bounds.max_minislots);
  EXPECT_LT(r.cost.value, kInvalidConfigCost);
}

TEST(DynSearch, CurveFitUsesFarFewerEvaluations) {
  SearchFixture f;

  CostEvaluator exhaustive_eval(f.app, f.params, f.analysis);
  ExhaustiveDynOptions eopt;
  eopt.max_sweep_points = 64;
  ExhaustiveDynSearch exhaustive(eopt);
  const DynSearchResult ee =
      exhaustive.search(exhaustive_eval, f.base, f.bounds.min_minislots, f.bounds.max_minislots);
  const long ee_evals = exhaustive_eval.evaluations();

  CostEvaluator cf_eval(f.app, f.params, f.analysis);
  CurveFitDynSearch curve_fit;
  const DynSearchResult cf =
      curve_fit.search(cf_eval, f.base, f.bounds.min_minislots, f.bounds.max_minislots);
  const long cf_evals = cf_eval.evaluations();

  ASSERT_TRUE(ee.exact);
  ASSERT_TRUE(cf.exact);
  EXPECT_LT(cf_evals, ee_evals);
  // Both find schedulable lengths here; costs must be reasonably close
  // (the paper reports < 0.5% deviation; allow slack for the scaled-down
  // sweep resolution).
  if (ee.cost.schedulable) {
    EXPECT_TRUE(cf.cost.schedulable);
  }
}

TEST(DynSearch, CurveFitReturnsExactCostForChosenPoint) {
  SearchFixture f;
  CostEvaluator evaluator(f.app, f.params, f.analysis);
  CurveFitDynSearch search;
  const DynSearchResult r =
      search.search(evaluator, f.base, f.bounds.min_minislots, f.bounds.max_minislots);
  ASSERT_TRUE(r.exact);
  // Re-analysing the chosen point reproduces the reported cost exactly —
  // i.e. the result never reports an interpolated value.
  BusConfig probe = f.base;
  probe.minislot_count = r.minislots;
  CostEvaluator fresh(f.app, f.params, f.analysis);
  const auto eval = fresh.evaluate(probe);
  ASSERT_TRUE(eval.valid);
  EXPECT_DOUBLE_EQ(eval.cost.value, r.cost.value);
}

TEST(DynSearch, DegenerateRangeSinglePoint) {
  SearchFixture f;
  CostEvaluator evaluator(f.app, f.params, f.analysis);
  CurveFitDynSearch search;
  const int x = f.bounds.min_minislots;
  const DynSearchResult r = search.search(evaluator, f.base, x, x);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.minislots, x);
}

TEST(DynSearch, NmaxBoundsIterationsOnHopelessSystems) {
  // Overload the bus: shrink the period so no DYN length is schedulable.
  SearchFixture f;
  Application tight = build_cruise_controller();
  for (std::uint32_t t = 0; t < tight.task_count(); ++t) {
    tight.set_task_wcet(static_cast<TaskId>(t), timeunits::ms(6));
  }
  ASSERT_TRUE(tight.finalize().ok());
  CostEvaluator evaluator(tight, f.params, f.analysis);
  CurveFitDynOptions options;
  options.n_max = 3;
  CurveFitDynSearch search(options);
  const DynSearchResult r =
      search.search(evaluator, f.base, f.bounds.min_minislots, f.bounds.max_minislots);
  EXPECT_FALSE(r.cost.schedulable);
  // Initial points + at most n_max refinements (each refinement may verify
  // one interpolated candidate and add one point).
  EXPECT_LE(evaluator.evaluations(), 5 + 2 * 3 + 1);
}

}  // namespace
}  // namespace flexopt
