// Simulated annealing baseline: determinism, budget accounting, and the
// "never worse than its own starting point" sanity property.

#include <gtest/gtest.h>

#include "flexopt/core/bbc.hpp"
#include "flexopt/core/sa.hpp"
#include "flexopt/gen/cruise_control.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

AnalysisOptions fast_analysis() {
  AnalysisOptions o;
  o.scheduler.placement = Placement::Asap;
  return o;
}

TEST(Sa, RespectsEvaluationBudget) {
  const Application app = build_cruise_controller();
  const BusParams params = cruise_controller_params();
  CostEvaluator evaluator(app, params, fast_analysis());
  SaOptions options;
  options.max_evaluations = 60;
  const OptimizationOutcome outcome = optimize_sa(evaluator, options);
  EXPECT_LE(outcome.evaluations, 60 + 1);
  EXPECT_EQ(outcome.algorithm, "SA");
}

TEST(Sa, DeterministicForSameSeed) {
  const Application app = build_cruise_controller();
  const BusParams params = cruise_controller_params();
  SaOptions options;
  options.max_evaluations = 80;
  options.seed = 99;
  CostEvaluator e1(app, params, fast_analysis());
  CostEvaluator e2(app, params, fast_analysis());
  const OptimizationOutcome a = optimize_sa(e1, options);
  const OptimizationOutcome b = optimize_sa(e2, options);
  EXPECT_DOUBLE_EQ(a.cost.value, b.cost.value);
  EXPECT_EQ(a.config, b.config);
}

TEST(Sa, LargerBudgetNeverHurts) {
  const Application app = build_cruise_controller();
  const BusParams params = cruise_controller_params();
  SaOptions small;
  small.max_evaluations = 40;
  small.seed = 3;
  SaOptions large = small;
  large.max_evaluations = 240;
  CostEvaluator e1(app, params, fast_analysis());
  CostEvaluator e2(app, params, fast_analysis());
  const OptimizationOutcome a = optimize_sa(e1, small);
  const OptimizationOutcome b = optimize_sa(e2, large);
  EXPECT_LE(b.cost.value, a.cost.value + 1e-9);
}

TEST(Sa, BeatsOrMatchesBbcGivenBudget) {
  const Application app = build_cruise_controller();
  const BusParams params = cruise_controller_params();
  CostEvaluator bbc_eval(app, params, fast_analysis());
  BbcOptions bbc_options;
  bbc_options.max_sweep_points = 24;
  const OptimizationOutcome bbc = optimize_bbc(bbc_eval, bbc_options);

  CostEvaluator sa_eval(app, params, fast_analysis());
  SaOptions options;
  options.max_evaluations = 400;
  options.seed = 11;
  const OptimizationOutcome sa = optimize_sa(sa_eval, options);
  // SA explores a superset of BBC's space (slot counts, lengths, FrameIDs);
  // with a reasonable budget it should not lose to the basic config.
  EXPECT_LE(sa.cost.value, bbc.cost.value + 1e-9);
}

TEST(Sa, ReproducedConfigMatchesReportedCost) {
  const Application app = build_cruise_controller();
  const BusParams params = cruise_controller_params();
  CostEvaluator evaluator(app, params, fast_analysis());
  SaOptions options;
  options.max_evaluations = 120;
  const OptimizationOutcome outcome = optimize_sa(evaluator, options);
  ASSERT_LT(outcome.cost.value, kInvalidConfigCost);
  CostEvaluator fresh(app, params, fast_analysis());
  const auto eval = fresh.evaluate(outcome.config);
  ASSERT_TRUE(eval.valid);
  EXPECT_DOUBLE_EQ(eval.cost.value, outcome.cost.value);
}

}  // namespace
}  // namespace flexopt
