// The "portfolio" meta-optimizer: member-list parsing, spec validation,
// deterministic seed/budget fan-out, winner selection (cost argmin, index
// tie-break), aggregation, cancellation plumbing, and the campaign
// integration (nested thread budget, spec keyword, byte-identical
// summaries with portfolio runs).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "flexopt/campaign/report.hpp"
#include "flexopt/campaign/spec_format.hpp"
#include "flexopt/core/portfolio.hpp"
#include "flexopt/gen/synthetic.hpp"
#include "flexopt/util/seed_mix.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

using testing::TinySystem;

// ---- member-list parsing ---------------------------------------------------

TEST(PortfolioMembers, ParsesSeparatorsAndRepetition) {
  auto members = parse_portfolio_members("4xsa,obc-ee bbc+obc-cf");
  ASSERT_TRUE(members.ok()) << members.error().message;
  EXPECT_EQ(members.value(),
            (std::vector<std::string>{"sa", "sa", "sa", "sa", "obc-ee", "bbc", "obc-cf"}));
  EXPECT_EQ(format_portfolio_members(members.value()), "4xsa+obc-ee+bbc+obc-cf");
}

TEST(PortfolioMembers, RejectsBadLists) {
  EXPECT_FALSE(parse_portfolio_members("").ok());
  EXPECT_FALSE(parse_portfolio_members(" , ").ok());
  EXPECT_FALSE(parse_portfolio_members("sa,warp-drive").ok());
  EXPECT_FALSE(parse_portfolio_members("0xsa").ok());
  EXPECT_FALSE(parse_portfolio_members("3x").ok());
  // No nesting, in any registry spelling.
  EXPECT_FALSE(parse_portfolio_members("sa,portfolio").ok());
  EXPECT_FALSE(parse_portfolio_members("PORTFOLIO").ok());
}

// ---- registry + spec validation --------------------------------------------

TEST(PortfolioRegistry, CreatesWithDefaultsAndValidatesSpecs) {
  EXPECT_TRUE(OptimizerRegistry::contains("portfolio"));
  auto with_defaults = OptimizerRegistry::create("portfolio");
  ASSERT_TRUE(with_defaults.ok()) << with_defaults.error().message;
  EXPECT_EQ(with_defaults.value()->name(), "portfolio");

  PortfolioSpec empty;
  empty.members.clear();
  EXPECT_FALSE(OptimizerRegistry::create("portfolio", empty).ok());

  PortfolioSpec negative_jobs;
  negative_jobs.jobs = -1;
  EXPECT_FALSE(OptimizerRegistry::create("portfolio", negative_jobs).ok());

  PortfolioSpec nested;
  nested.members = {"sa", "portfolio"};
  EXPECT_FALSE(OptimizerRegistry::create("portfolio", nested).ok());

  PortfolioSpec bad_claim;
  bad_claim.members = {"sa", "bbc"};
  bad_claim.claim_order = {0, 0};
  EXPECT_FALSE(OptimizerRegistry::create("portfolio", bad_claim).ok());
  bad_claim.claim_order = {1};
  EXPECT_FALSE(OptimizerRegistry::create("portfolio", bad_claim).ok());
  bad_claim.claim_order = {1, 0};
  EXPECT_TRUE(OptimizerRegistry::create("portfolio", bad_claim).ok());

  // The payload type must match, like for every other registry key.
  EXPECT_FALSE(OptimizerRegistry::create("portfolio", SaOptions{}).ok());
}

// ---- winner selection with scripted members --------------------------------

/// Test-only member with a scripted outcome; registered under a unique key
/// so the portfolio races deterministic stand-ins instead of real solvers.
class ScriptedOptimizer final : public Optimizer {
 public:
  ScriptedOptimizer(std::string name, double cost, long evaluations)
      : name_(std::move(name)), cost_(cost), evaluations_(evaluations) {}
  [[nodiscard]] std::string_view name() const override { return name_; }
  SolveReport solve_cluster(CostEvaluator&, const SolveRequest&) override {
    SolveReport report;
    report.outcome.cost = Cost{cost_, cost_ <= 0.0, 0};
    report.outcome.feasible = cost_ <= 0.0;
    report.outcome.evaluations = evaluations_;
    report.outcome.algorithm = name_;
    report.cache_hits = 1;
    report.delta_evaluations = 2;
    return report;
  }

 private:
  std::string name_;
  double cost_;
  long evaluations_;
};

void register_scripted(const std::string& key, double cost, long evaluations) {
  OptimizerRegistry::register_optimizer(
      key, "scripted test member", [key, cost, evaluations](const OptimizerParams&) {
        return Expected<std::unique_ptr<Optimizer>>(
            std::make_unique<ScriptedOptimizer>(key, cost, evaluations));
      });
}

TEST(PortfolioSolve, PicksCostArgminAndBreaksTiesByMemberIndex) {
  register_scripted("scripted-worse", 40.0, 3);
  register_scripted("scripted-tie-a", -5.0, 4);
  register_scripted("scripted-tie-b", -5.0, 5);

  TinySystem tiny;
  CostEvaluator evaluator(tiny.app, tiny.params, AnalysisOptions{});
  PortfolioSpec spec;
  spec.members = {"scripted-worse", "scripted-tie-b", "scripted-tie-a"};
  auto optimizer = OptimizerRegistry::create("portfolio", spec);
  ASSERT_TRUE(optimizer.ok()) << optimizer.error().message;
  const SolveReport report = optimizer.value()->solve(evaluator, SolveRequest{});

  // -5 twice: the tie goes to the lower member index regardless of claim
  // or completion order.
  EXPECT_EQ(report.winner, "scripted-tie-b#1");
  ASSERT_EQ(report.members.size(), 3u);
  EXPECT_FALSE(report.members[0].winner);
  EXPECT_TRUE(report.members[1].winner);
  EXPECT_FALSE(report.members[2].winner);
  EXPECT_EQ(report.outcome.cost.value, -5.0);
  EXPECT_EQ(report.outcome.algorithm, "PORTFOLIO");
  // Aggregates are sums over the members.
  EXPECT_EQ(report.outcome.evaluations, 3 + 5 + 4);
  EXPECT_EQ(report.cache_hits, 3u);
  EXPECT_EQ(report.delta_evaluations, 6u);
  EXPECT_EQ(report.status, SolveStatus::Complete);
}

// ---- seed + budget fan-out -------------------------------------------------

TEST(PortfolioSolve, DerivesSeedsAndSplitsBudgetDeterministically) {
  TinySystem tiny;
  CostEvaluator evaluator(tiny.app, tiny.params, AnalysisOptions{});
  PortfolioSpec spec;
  spec.members = {"sa", "sa", "bbc"};
  spec.seed = 99;
  auto optimizer = OptimizerRegistry::create("portfolio", spec);
  ASSERT_TRUE(optimizer.ok());
  SolveRequest request;
  request.max_evaluations = 10;
  const SolveReport report = optimizer.value()->solve(evaluator, request);

  ASSERT_EQ(report.members.size(), 3u);
  EXPECT_EQ(report.members[0].member, "sa#0");
  EXPECT_EQ(report.members[1].member, "sa#1");
  EXPECT_EQ(report.members[2].member, "bbc#2");
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(report.members[i].seed, derive_seed(99, i)) << i;
  }
  // 10 over 3 members: 4, 3, 3 — front-loaded remainder.
  EXPECT_EQ(report.members[0].budget, 4);
  EXPECT_EQ(report.members[1].budget, 3);
  EXPECT_EQ(report.members[2].budget, 3);
  // Distinct seeds: the two SA multi-starts walk different trajectories.
  EXPECT_NE(report.members[0].seed, report.members[1].seed);
  EXPECT_EQ(report.status, SolveStatus::BudgetExhausted);

  // SolveRequest::seed overrides the spec's base seed, like for "sa".
  SolveRequest reseeded = request;
  reseeded.seed = 1234;
  const SolveReport report2 = optimizer.value()->solve(evaluator, reseeded);
  EXPECT_EQ(report2.members[0].seed, derive_seed(1234, 0));
}

// ---- cancellation + progress ----------------------------------------------

TEST(PortfolioSolve, ParentCancelFlagStopsEveryMember) {
  TinySystem tiny;
  CostEvaluator evaluator(tiny.app, tiny.params, AnalysisOptions{});
  PortfolioSpec spec;
  spec.members = {"sa", "sa"};
  auto optimizer = OptimizerRegistry::create("portfolio", spec);
  ASSERT_TRUE(optimizer.ok());
  SolveRequest request;
  request.max_evaluations = 10000;
  request.cancel = std::make_shared<std::atomic<bool>>(true);  // pre-cancelled
  const SolveReport report = optimizer.value()->solve(evaluator, request);
  EXPECT_EQ(report.status, SolveStatus::Cancelled);
  for (const MemberSolveReport& member : report.members) {
    EXPECT_EQ(member.status, SolveStatus::Cancelled) << member.member;
  }
}

TEST(PortfolioSolve, AggregatedProgressReportsPortfolioAndCanCancel) {
  TinySystem tiny;
  CostEvaluator evaluator(tiny.app, tiny.params, AnalysisOptions{});
  PortfolioSpec spec;
  spec.members = {"sa", "sa"};
  auto optimizer = OptimizerRegistry::create("portfolio", spec);
  ASSERT_TRUE(optimizer.ok());

  int calls = 0;
  SolveRequest request;
  request.max_evaluations = 60;
  request.progress = [&](const SolveProgress& p) {
    ++calls;
    EXPECT_EQ(p.algorithm, "PORTFOLIO");
    EXPECT_EQ(p.max_evaluations, 60);
    return true;
  };
  const SolveReport report = optimizer.value()->solve(evaluator, request);
  EXPECT_GT(calls, 0);
  EXPECT_EQ(report.status, SolveStatus::BudgetExhausted);

  // Returning false from the aggregated callback cancels the whole race.
  SolveRequest cancelling;
  cancelling.max_evaluations = 100000;
  cancelling.progress = [](const SolveProgress&) { return false; };
  const SolveReport cancelled = optimizer.value()->solve(evaluator, cancelling);
  EXPECT_EQ(cancelled.status, SolveStatus::Cancelled);
}

// ---- real members: incumbent timeline + racing cut -------------------------

Expected<Application> small_system() {
  SyntheticSpec spec;
  spec.nodes = 3;
  spec.tasks_per_node = 6;
  spec.tasks_per_graph = 3;
  spec.deadline_factor = 0.7;
  spec.seed = 7;
  BusParams params;
  params.gd_minislot = timeunits::us(5);
  return generate_synthetic(spec, params);
}

TEST(PortfolioSolve, RecordsMemberImprovementTimelines) {
  auto app = small_system();
  ASSERT_TRUE(app.ok()) << app.error().message;
  BusParams params;
  params.gd_minislot = timeunits::us(5);
  CostEvaluator evaluator(app.value(), params, AnalysisOptions{});
  PortfolioSpec spec;
  spec.members = {"sa", "obc-cf"};
  auto optimizer = OptimizerRegistry::create("portfolio", spec);
  ASSERT_TRUE(optimizer.ok());
  SolveRequest request;
  request.max_evaluations = 120;
  const SolveReport report = optimizer.value()->solve(evaluator, request);

  ASSERT_EQ(report.members.size(), 2u);
  for (const MemberSolveReport& member : report.members) {
    if (member.cost >= kInvalidConfigCost) continue;
    ASSERT_FALSE(member.improvements.empty()) << member.member;
    // Timelines are monotone: evaluation stamps non-decreasing, costs
    // strictly improving, and the last entry is the member's final best.
    for (std::size_t i = 1; i < member.improvements.size(); ++i) {
      EXPECT_GE(member.improvements[i].evaluations, member.improvements[i - 1].evaluations);
      EXPECT_LT(member.improvements[i].cost, member.improvements[i - 1].cost);
    }
    EXPECT_EQ(member.improvements.back().cost, member.cost) << member.member;
  }
  // The winner's final improvement is the portfolio's reported cost.
  EXPECT_EQ(report.outcome.cost.value,
            report.members[report.members[0].winner ? 0 : 1].cost);
}

TEST(PortfolioSolve, RacingCutKeepsAValidWinner) {
  auto app = small_system();
  ASSERT_TRUE(app.ok()) << app.error().message;
  BusParams params;
  params.gd_minislot = timeunits::us(5);
  CostEvaluator evaluator(app.value(), params, AnalysisOptions{});
  PortfolioSpec spec;
  spec.members = {"sa", "sa", "obc-cf"};
  spec.racing_cut = true;
  auto optimizer = OptimizerRegistry::create("portfolio", spec);
  ASSERT_TRUE(optimizer.ok());
  SolveRequest request;
  request.max_evaluations = 150;
  const SolveReport report = optimizer.value()->solve(evaluator, request);

  // Cut members report Cancelled, but a member-local cut never bubbles up
  // to the portfolio status, and the winner is still the member argmin.
  EXPECT_NE(report.status, SolveStatus::Cancelled);
  double best = kInvalidConfigCost;
  for (const MemberSolveReport& member : report.members) best = std::min(best, member.cost);
  EXPECT_EQ(report.outcome.cost.value, best);
  EXPECT_FALSE(report.winner.empty());
}

// ---- campaign integration --------------------------------------------------

TEST(PortfolioCampaign, SpecKeywordAndByteIdenticalSummariesAcrossThreads) {
  auto spec = parse_campaign_text(
      "name pf\n"
      "nodes 2\n"
      "replicates 2\n"
      "tasks_per_node 6\n"
      "tasks_per_graph 3\n"
      "deadline_factor 0.7\n"
      "seed 42\n"
      "algorithms bbc portfolio\n"
      "portfolio_members 2xsa obc-cf\n"
      "budget 90\n");
  ASSERT_TRUE(spec.ok()) << spec.error().message;
  EXPECT_EQ(spec.value().portfolio_members,
            (std::vector<std::string>{"sa", "sa", "obc-cf"}));

  BusParams params;
  CampaignRunner runner(spec.value(), params);
  CampaignOptions serial;
  serial.threads = 1;
  auto a = runner.run(serial);
  ASSERT_TRUE(a.ok()) << a.error().message;
  CampaignOptions wide;
  wide.threads = 4;  // scenario workers + member-level jobs share this budget
  auto b = runner.run(wide);
  ASSERT_TRUE(b.ok()) << b.error().message;

  EXPECT_EQ(write_campaign_json(a.value()), write_campaign_json(b.value()));
  EXPECT_EQ(write_campaign_csv(a.value()), write_campaign_csv(b.value()));

  // Portfolio rows carry the winning member id; singles stay blank.
  for (const ScenarioRecord& record : a.value().scenarios) {
    ASSERT_TRUE(record.generated) << record.error;
    for (const AlgorithmRun& run : record.runs) {
      if (run.algorithm == "portfolio") {
        EXPECT_FALSE(run.portfolio_winner.empty());
      } else {
        EXPECT_TRUE(run.portfolio_winner.empty());
      }
    }
  }
}

TEST(PortfolioCampaign, BadMemberListIsASpecLevelError) {
  auto spec = parse_campaign_text("algorithms portfolio\nportfolio_members sa,nope\n");
  EXPECT_FALSE(spec.ok());  // rejected at parse time already

  CampaignSpec direct;
  direct.algorithms = {"portfolio"};
  direct.portfolio_members = {"sa", "nope"};
  direct.node_counts = {2};
  BusParams params;
  CampaignRunner runner(direct, params);
  auto result = runner.run(CampaignOptions{});
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace flexopt
