// OBC heuristic (Fig. 6) with both DYN strategies.

#include <gtest/gtest.h>

#include "flexopt/core/config_builder.hpp"
#include "flexopt/core/obc.hpp"
#include "flexopt/gen/cruise_control.hpp"
#include "flexopt/gen/synthetic.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

// The CC feasibility split requires the paper's FPS-aware SCS placement
// (Fig. 2 line 11) — the library default.
AnalysisOptions fast_analysis() { return AnalysisOptions{}; }

TEST(Obc, CruiseControllerBecomesSchedulable) {
  const Application app = build_cruise_controller();
  const BusParams params = cruise_controller_params();
  CostEvaluator evaluator(app, params, fast_analysis());
  CurveFitDynSearch strategy;
  const OptimizationOutcome outcome = optimize_obc(evaluator, strategy);
  EXPECT_TRUE(outcome.feasible) << "cost=" << outcome.cost.value;
  EXPECT_LE(outcome.cost.value, 0.0);
  EXPECT_EQ(outcome.algorithm, "OBC-curve-fit");
}

TEST(Obc, ExhaustiveStrategyAlsoSchedulable) {
  const Application app = build_cruise_controller();
  const BusParams params = cruise_controller_params();
  CostEvaluator evaluator(app, params, fast_analysis());
  ExhaustiveDynOptions eopt;
  eopt.max_sweep_points = 32;
  ExhaustiveDynSearch strategy(eopt);
  const OptimizationOutcome outcome = optimize_obc(evaluator, strategy);
  EXPECT_TRUE(outcome.feasible);
  EXPECT_EQ(outcome.algorithm, "OBC-exhaustive");
}

TEST(Obc, ProducedConfigReproducesReportedCost) {
  const Application app = build_cruise_controller();
  const BusParams params = cruise_controller_params();
  CostEvaluator evaluator(app, params, fast_analysis());
  CurveFitDynSearch strategy;
  const OptimizationOutcome outcome = optimize_obc(evaluator, strategy);
  ASSERT_TRUE(outcome.feasible);
  CostEvaluator fresh(app, params, fast_analysis());
  const auto eval = fresh.evaluate(outcome.config);
  ASSERT_TRUE(eval.valid);
  EXPECT_DOUBLE_EQ(eval.cost.value, outcome.cost.value);
}

TEST(Obc, ExploresMoreSlotsThanBbcWhenNeeded) {
  // OBC may enlarge the static segment beyond the per-sender minimum; at
  // minimum it never returns fewer slots than senders.
  const Application app = build_cruise_controller();
  const BusParams params = cruise_controller_params();
  CostEvaluator evaluator(app, params, fast_analysis());
  CurveFitDynSearch strategy;
  const OptimizationOutcome outcome = optimize_obc(evaluator, strategy);
  const auto senders = st_sender_nodes(app);
  EXPECT_GE(outcome.config.static_slot_count, static_cast<int>(senders.size()));
  EXPECT_EQ(outcome.config.static_slot_owner.size(),
            static_cast<std::size_t>(outcome.config.static_slot_count));
}

TEST(Obc, StopsAtFirstFeasibleConfiguration) {
  SyntheticSpec spec;
  spec.nodes = 2;
  spec.seed = 5;
  BusParams params;
  params.gd_minislot = timeunits::us(5);
  auto app = generate_synthetic(spec, params);
  ASSERT_TRUE(app.ok());
  CostEvaluator evaluator(app.value(), params, fast_analysis());
  CurveFitDynSearch strategy;
  ObcOptions options;
  options.max_extra_slots = 6;
  const OptimizationOutcome outcome = optimize_obc(evaluator, strategy, options);
  if (outcome.feasible) {
    // Termination on feasibility keeps evaluations modest: no more than a
    // couple of DYN searches' worth.
    EXPECT_LT(outcome.evaluations, 200);
  }
}

TEST(Obc, ArbitraryFrameIdsSupportedForAblation) {
  const Application app = build_cruise_controller();
  const BusParams params = cruise_controller_params();
  CostEvaluator evaluator(app, params, fast_analysis());
  CurveFitDynSearch strategy;
  ObcOptions options;
  options.criticality_frame_ids = false;
  const OptimizationOutcome outcome = optimize_obc(evaluator, strategy, options);
  EXPECT_LT(outcome.cost.value, kInvalidConfigCost);  // still analysable
}

}  // namespace
}  // namespace flexopt
