// Task-mapping outer loop: logical-application materialisation and the
// hill-climbing exploration around the bus access optimiser.

#include <gtest/gtest.h>

#include <numeric>

#include "flexopt/core/mapping.hpp"
#include "flexopt/core/solver.hpp"
#include "flexopt/gen/figures.hpp"

namespace flexopt {
namespace {

/// Two graphs (one TT, one ET), six tasks, a flow chain in each.
LogicalApplication small_logical() {
  LogicalApplication l;
  l.node_count = 3;
  l.graphs.push_back({"tt", timeunits::ms(10), timeunits::ms(10), true});
  l.graphs.push_back({"et", timeunits::ms(20), timeunits::ms(20), false});
  for (int i = 0; i < 3; ++i) {
    l.tasks.push_back({"t" + std::to_string(i), 0, timeunits::us(300 + 100 * i), i});
  }
  for (int i = 0; i < 3; ++i) {
    l.tasks.push_back({"e" + std::to_string(i), 1, timeunits::us(200 + 100 * i), i});
  }
  l.flows.push_back({0, 1, 8, 0});
  l.flows.push_back({1, 2, 8, 1});
  l.flows.push_back({3, 4, 6, 0});
  l.flows.push_back({4, 5, 6, 1});
  return l;
}

TEST(LogicalApplication, ValidatesStructure) {
  EXPECT_TRUE(small_logical().validate().ok());

  LogicalApplication no_nodes = small_logical();
  no_nodes.node_count = 1;
  EXPECT_FALSE(no_nodes.validate().ok());

  LogicalApplication cross_graph = small_logical();
  cross_graph.flows.push_back({0, 3, 4, 0});  // tt -> et
  EXPECT_FALSE(cross_graph.validate().ok());

  LogicalApplication bad_flow = small_logical();
  bad_flow.flows.push_back({0, 99, 4, 0});
  EXPECT_FALSE(bad_flow.validate().ok());
}

TEST(LogicalApplication, MaterializeTurnsCrossingsIntoMessages) {
  const LogicalApplication l = small_logical();
  // Mapping: t0,t1 on node0 (local flow), t2 on node1 (crossing);
  // e0,e1,e2 on nodes 0,1,2 (two crossings).
  const std::vector<int> mapping{0, 0, 1, 0, 1, 2};
  auto app = l.materialize(mapping);
  ASSERT_TRUE(app.ok()) << app.error().message;
  EXPECT_EQ(app.value().message_count(), 3u);
  EXPECT_EQ(app.value().task_count(), 6u);
  // Message classes follow the graph trigger.
  for (const auto& m : app.value().messages()) {
    const bool tt = app.value().task(m.sender).policy == TaskPolicy::Scs;
    EXPECT_EQ(m.cls == MessageClass::Static, tt);
  }
}

TEST(LogicalApplication, MaterializeAllOnOneNodePlusPeerHasNoMessages) {
  const LogicalApplication l = small_logical();
  const std::vector<int> mapping{0, 0, 0, 0, 0, 0};
  auto app = l.materialize(mapping);
  ASSERT_TRUE(app.ok());
  EXPECT_EQ(app.value().message_count(), 0u);
}

TEST(LogicalApplication, MaterializeRejectsBadMapping) {
  const LogicalApplication l = small_logical();
  EXPECT_FALSE(l.materialize(std::vector<int>{0, 0}).ok());           // size
  EXPECT_FALSE(l.materialize(std::vector<int>{0, 0, 0, 0, 0, 9}).ok());  // range
}

TEST(LogicalApplication, BalancedMappingUsesAllNodesAndBalancesLoad) {
  LogicalApplication l = small_logical();
  const std::vector<int> mapping = l.balanced_mapping();
  ASSERT_EQ(mapping.size(), l.tasks.size());
  std::vector<double> load(static_cast<std::size_t>(l.node_count), 0.0);
  for (std::size_t i = 0; i < mapping.size(); ++i) {
    load[static_cast<std::size_t>(mapping[i])] +=
        static_cast<double>(l.tasks[i].wcet) /
        static_cast<double>(l.graphs[l.tasks[i].graph].period);
  }
  const double max_load = *std::max_element(load.begin(), load.end());
  const double min_load = *std::min_element(load.begin(), load.end());
  EXPECT_GT(min_load, 0.0);  // every node used
  EXPECT_LT(max_load - min_load, 0.1);
}

TEST(MappingOptimizer, FindsFeasibleMappingForSmallSystem) {
  const LogicalApplication l = small_logical();
  CurveFitDynSearch strategy;
  MappingOptions options;
  options.moves_per_restart = 10;
  auto outcome = optimize_mapping(l, didactic_params(), AnalysisOptions{}, strategy, options);
  ASSERT_TRUE(outcome.ok()) << outcome.error().message;
  EXPECT_TRUE(outcome.value().bus.feasible);
  EXPECT_GE(outcome.value().mappings_tried, 1);
  EXPECT_GT(outcome.value().evaluations, 0);
}

TEST(MappingOptimizer, DeterministicPerSeed) {
  const LogicalApplication l = small_logical();
  CurveFitDynSearch s1;
  CurveFitDynSearch s2;
  MappingOptions options;
  options.moves_per_restart = 6;
  options.stop_at_first_feasible = false;
  auto a = optimize_mapping(l, didactic_params(), AnalysisOptions{}, s1, options);
  auto b = optimize_mapping(l, didactic_params(), AnalysisOptions{}, s2, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().mapping, b.value().mapping);
  EXPECT_DOUBLE_EQ(a.value().bus.cost.value, b.value().bus.cost.value);
}

TEST(MappingOptimizer, NeverWorseThanBalancedStart) {
  const LogicalApplication l = small_logical();
  CurveFitDynSearch strategy;
  // Score the balanced mapping directly.
  auto app = l.materialize(l.balanced_mapping());
  ASSERT_TRUE(app.ok());
  auto baseline_optimizer = OptimizerRegistry::create("obc-cf");
  ASSERT_TRUE(baseline_optimizer.ok());
  CostEvaluator evaluator(app.value(), didactic_params(), AnalysisOptions{});
  const OptimizationOutcome baseline = baseline_optimizer.value()->solve(evaluator).outcome;

  MappingOptions options;
  options.moves_per_restart = 8;
  options.stop_at_first_feasible = false;
  auto outcome = optimize_mapping(l, didactic_params(), AnalysisOptions{}, strategy, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_LE(outcome.value().bus.cost.value, baseline.cost.value + 1e-9);
}

TEST(MappingOptimizer, RejectsInvalidLogicalApplication) {
  LogicalApplication bad = small_logical();
  bad.node_count = 0;
  CurveFitDynSearch strategy;
  EXPECT_FALSE(
      optimize_mapping(bad, didactic_params(), AnalysisOptions{}, strategy).ok());
}

}  // namespace
}  // namespace flexopt
