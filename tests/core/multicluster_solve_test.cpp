// Multi-cluster evaluation and solving: the SystemConfig evaluator surface
// (caching, focus substitution, cluster delta moves) and the coordinate-
// descent driver behind Optimizer::solve, for every registry optimizer.

#include <gtest/gtest.h>

#include <memory>

#include "flexopt/core/config_builder.hpp"
#include "flexopt/core/solver.hpp"
#include "flexopt/gen/scenario.hpp"
#include "flexopt/io/solve_report_json.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

SystemConfig start_configs(const SystemModel& model, const BusParams& params) {
  SystemConfig config;
  for (std::size_t c = 0; c < model.cluster_count(); ++c) {
    config.clusters.push_back(
        ClusterConfig::flexray_bus(minimal_start_config(*model.cluster_app(c), params).config));
  }
  return config;
}

struct Fixture {
  testing::TwoClusterSystem sys;
  SystemModel model;
  SystemConfig config;

  Fixture() {
    auto built = SystemModel::build(std::make_shared<const Application>(sys.app));
    if (!built.ok()) throw std::runtime_error(built.error().message);
    model = std::move(built).value();
    config = start_configs(model, sys.params);
  }
};

TEST(MulticlusterEvaluator, EvaluateSystemCachesOnSystemConfig) {
  Fixture f;
  CostEvaluator evaluator(f.model, f.sys.params, AnalysisOptions{});
  EXPECT_EQ(evaluator.cluster_count(), 2u);

  const auto first = evaluator.evaluate_system(f.config);
  ASSERT_TRUE(first.valid);
  EXPECT_EQ(first.cluster_analysis.size(), 2u);
  EXPECT_EQ(evaluator.evaluations(), 1);

  const auto again = evaluator.evaluate_system(f.config);
  EXPECT_EQ(again.cost.value, first.cost.value);
  EXPECT_EQ(evaluator.evaluations(), 1);  // served from the cache
  EXPECT_EQ(evaluator.cache_stats().hits, 1u);

  // A raw BusConfig is ambiguous on a multi-cluster evaluator.
  const auto ambiguous = evaluator.evaluate(f.config.clusters[0].flexray);
  EXPECT_FALSE(ambiguous.valid);
  EXPECT_NE(ambiguous.error.find("set_focus"), std::string::npos);
}

TEST(MulticlusterEvaluator, FocusSubstitutesIntoContext) {
  Fixture f;
  CostEvaluator evaluator(f.model, f.sys.params, AnalysisOptions{});
  evaluator.set_focus(f.config, 1);
  EXPECT_TRUE(evaluator.focused());
  // application() is the focused cluster's projection (relay task included).
  EXPECT_EQ(evaluator.application().task_count(), f.model.cluster_app(1)->task_count());

  const auto focused = evaluator.evaluate(f.config.clusters[1].flexray);
  ASSERT_TRUE(focused.valid);
  // The focused evaluation scored the full substituted system: identical to
  // evaluating the SystemConfig directly.
  evaluator.clear_focus();
  const auto direct = evaluator.evaluate_system(f.config);
  EXPECT_EQ(focused.cost.value, direct.cost.value);
  // And the focused view surfaced cluster 1's per-activity completions.
  EXPECT_EQ(focused.analysis.task_completion,
            direct.cluster_analysis[1].task_completion);
}

TEST(MulticlusterEvaluator, ClusterDeltaMatchesFullEvaluation) {
  Fixture f;
  CostEvaluator evaluator(f.model, f.sys.params, AnalysisOptions{});

  // Mutate cluster 1's DYN segment length through a cluster-stamped move.
  BusConfig next = f.config.clusters[1].flexray;
  next.minislot_count += 5;
  DeltaMove move = DeltaMove::between(f.config.clusters[1].flexray, next);
  move.cluster = 1;
  const auto delta = evaluator.evaluate_delta(f.config, move);
  ASSERT_TRUE(delta.valid);

  SystemConfig substituted = f.config;
  substituted.clusters[1] = ClusterConfig::flexray_bus(next);
  CostEvaluator reference(f.model, f.sys.params, AnalysisOptions{});
  const auto full = reference.evaluate_system(substituted);
  ASSERT_TRUE(full.valid);
  EXPECT_EQ(delta.cost.value, full.cost.value);
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(delta.cluster_analysis[c].task_completion,
              full.cluster_analysis[c].task_completion);
    EXPECT_EQ(delta.cluster_analysis[c].message_completion,
              full.cluster_analysis[c].message_completion);
  }
  EXPECT_EQ(evaluator.work_stats().delta_evaluations, 1u);

  // Out-of-range cluster indices are rejected, not UB.
  DeltaMove bad = move;
  bad.cluster = 7;
  EXPECT_FALSE(evaluator.evaluate_delta(f.config, bad).valid);
}

TEST(MulticlusterSolve, EveryRegistryOptimizerSolvesATwoClusterSystem) {
  Fixture f;
  for (const OptimizerInfo& info : OptimizerRegistry::list()) {
    auto optimizer = OptimizerRegistry::create(info.name);
    ASSERT_TRUE(optimizer.ok()) << info.name;
    CostEvaluator evaluator(f.model, f.sys.params, AnalysisOptions{});
    SolveRequest request;
    request.seed = 7;
    request.max_evaluations = 120;
    const SolveReport report = optimizer.value()->solve(evaluator, request);
    EXPECT_EQ(report.outcome.system.cluster_count(), 2u) << info.name;
    EXPECT_TRUE(report.outcome.feasible) << info.name;
    EXPECT_LT(report.outcome.cost.value, 0.0) << info.name;  // schedulable slack
    EXPECT_EQ(report.outcome.config, report.outcome.system.clusters[0].flexray) << info.name;
    // The chosen product must re-evaluate to the reported cost.
    CostEvaluator check(f.model, f.sys.params, AnalysisOptions{});
    const auto eval = check.evaluate_system(report.outcome.system);
    ASSERT_TRUE(eval.valid) << info.name;
    EXPECT_EQ(eval.cost.value, report.outcome.cost.value) << info.name;
  }
}

TEST(MulticlusterSolve, SingleClusterSolveFillsDegenerateSystemConfig) {
  testing::TinySystem tiny;
  auto optimizer = OptimizerRegistry::create("bbc");
  ASSERT_TRUE(optimizer.ok());
  CostEvaluator evaluator(tiny.app, tiny.params, AnalysisOptions{});
  const SolveReport report = optimizer.value()->solve(evaluator);
  ASSERT_EQ(report.outcome.system.cluster_count(), 1u);
  EXPECT_EQ(report.outcome.system.clusters[0].flexray, report.outcome.config);
}

TEST(MulticlusterSolve, PortfolioJobsDoNotChangeTheReport) {
  // The acceptance determinism check at solve level: a racing portfolio on
  // a generated multicluster scenario is byte-identical between jobs=1 and
  // a parallel run (the campaign test covers the campaign level).
  ScenarioSpec scenario;
  scenario.topology = Topology::MultiCluster;
  scenario.traffic = TrafficMix::DynOnly;
  scenario.clusters = 2;
  scenario.inter_cluster_share = 0.3;
  scenario.base.nodes = 4;
  scenario.base.tasks_per_node = 4;
  scenario.base.tasks_per_graph = 4;
  scenario.base.deadline_factor = 2.0;
  scenario.base.seed = 11;
  BusParams params;
  auto app = generate_scenario(scenario, params);
  ASSERT_TRUE(app.ok());
  auto model = SystemModel::build(std::make_shared<const Application>(std::move(app).value()));
  ASSERT_TRUE(model.ok());

  auto solve_with_jobs = [&](int jobs) {
    PortfolioSpec spec;
    spec.members = {"sa", "sa", "obc-cf", "bbc"};
    spec.jobs = jobs;
    auto optimizer = OptimizerRegistry::create("portfolio", spec);
    if (!optimizer.ok()) throw std::runtime_error(optimizer.error().message);
    EvaluatorOptions options;
    options.threads = 1;
    CostEvaluator evaluator(model.value(), params, AnalysisOptions{}, options);
    SolveRequest request;
    request.seed = 3;
    request.max_evaluations = 160;
    const SolveReport report = optimizer.value()->solve(evaluator, request);
    return write_solve_json(*model.value().global(), "portfolio", report);
  };

  const std::string serial = solve_with_jobs(1);
  const std::string parallel = solve_with_jobs(4);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("cluster_configs"), std::string::npos);
  EXPECT_NE(serial.find("flexopt-solve-report/5"), std::string::npos);
}

}  // namespace
}  // namespace flexopt
