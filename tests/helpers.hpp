#pragma once

/// Shared test helpers: tiny system builders and layout/analysis shortcuts.

#include <stdexcept>

#include "flexopt/analysis/system_analysis.hpp"
#include "flexopt/flexray/bus_layout.hpp"
#include "flexopt/gen/figures.hpp"

namespace flexopt::testing {

/// Builds a layout or throws (tests want loud failures with the reason).
inline BusLayout make_layout(const Application& app, const BusParams& params,
                             const BusConfig& config) {
  auto layout = BusLayout::build(app, params, config);
  if (!layout.ok()) throw std::runtime_error("layout: " + layout.error().message);
  return std::move(layout).value();
}

/// Runs the full analysis or throws.
inline AnalysisResult analyze(const BusLayout& layout, AnalysisOptions options = {}) {
  auto result = analyze_system(layout, options);
  if (!result.ok()) throw std::runtime_error("analysis: " + result.error().message);
  return std::move(result).value();
}

/// A minimal two-node application: one SCS producer on N0 sending one ST
/// message to an SCS consumer on N1, plus one FPS task with a DYN message
/// back.  Exercises every activity kind.
struct TinySystem {
  Application app;
  BusParams params;
  BusConfig config;
  TaskId producer{};
  TaskId consumer{};
  TaskId fps_task{};
  TaskId fps_sink{};
  MessageId st_msg{};
  MessageId dyn_msg{};

  TinySystem() {
    params = didactic_params();
    const NodeId n0 = app.add_node("N0");
    const NodeId n1 = app.add_node("N1");
    const GraphId tt = app.add_graph("tt", timeunits::us(100), timeunits::us(100));
    const GraphId et = app.add_graph("et", timeunits::us(100), timeunits::us(100));
    producer = app.add_task(tt, "producer", n0, timeunits::us(2), TaskPolicy::Scs);
    consumer = app.add_task(tt, "consumer", n1, timeunits::us(2), TaskPolicy::Scs);
    st_msg = app.add_message(tt, "st", producer, consumer, 4, MessageClass::Static);
    fps_task = app.add_task(et, "fps", n1, timeunits::us(3), TaskPolicy::Fps, 1);
    fps_sink = app.add_task(et, "fps_sink", n0, timeunits::us(1), TaskPolicy::Fps, 2);
    dyn_msg = app.add_message(et, "dyn", fps_task, fps_sink, 2, MessageClass::Dynamic, 0);
    auto fin = app.finalize();
    if (!fin.ok()) throw std::runtime_error(fin.error().message);

    config.static_slot_count = 2;
    config.static_slot_len = timeunits::us(5);
    config.static_slot_owner = {n0, n1};
    config.minislot_count = 8;
    config.frame_id.assign(app.message_count(), 0);
    config.frame_id[index_of(dyn_msg)] = 1;
  }
};

/// A minimal two-cluster system: cluster 0 hosts N0/N1, cluster 1 hosts N2,
/// gateway GW bridges them.  One event-triggered chain src@N0 -> m_local ->
/// mid@N1 -> m_cross -> sink@N2, so m_cross routes through GW; plus one
/// local FPS task on N2 so cluster 1 has CPU interference.
struct TwoClusterSystem {
  Application app;
  BusParams params;
  NodeId n0{}, n1{}, n2{}, gw{};
  TaskId src{}, mid{}, sink{}, local1{};
  MessageId local_msg{}, cross_msg{};

  TwoClusterSystem() {
    params = didactic_params();
    n0 = app.add_node("N0");
    n1 = app.add_node("N1");
    n2 = app.add_node("N2");
    gw = app.add_node("GW");
    app.set_node_cluster(n2, static_cast<ClusterId>(1));
    app.add_gateway(gw, {static_cast<ClusterId>(1)});  // home 0, bridges 1
    const GraphId g = app.add_graph("G", timeunits::ms(20), timeunits::ms(20));
    src = app.add_task(g, "src", n0, timeunits::us(500), TaskPolicy::Fps, 1);
    mid = app.add_task(g, "mid", n1, timeunits::us(400), TaskPolicy::Fps, 2);
    sink = app.add_task(g, "sink", n2, timeunits::us(300), TaskPolicy::Fps, 3);
    local_msg = app.add_message(g, "m_local", src, mid, 8, MessageClass::Dynamic, 1);
    cross_msg = app.add_message(g, "m_cross", mid, sink, 8, MessageClass::Dynamic, 2);
    const GraphId h = app.add_graph("H", timeunits::ms(40), timeunits::ms(40));
    local1 = app.add_task(h, "local1", n2, timeunits::us(200), TaskPolicy::Fps, 5);
    auto fin = app.finalize();
    if (!fin.ok()) throw std::runtime_error(fin.error().message);
  }
};

}  // namespace flexopt::testing
