// Eq. 4: CP_m = D_m - LP_m.  Messages deeper in a chain (larger LP) and
// messages with tighter deadlines must come out as more critical.

#include <gtest/gtest.h>

#include "flexopt/model/application.hpp"

namespace flexopt {
namespace {

struct ChainFixture {
  Application app;
  MessageId early{};
  MessageId late{};

  ChainFixture() {
    const NodeId n0 = app.add_node("N0");
    const NodeId n1 = app.add_node("N1");
    const GraphId g = app.add_graph("g", timeunits::ms(10), timeunits::ms(10));
    const TaskId a = app.add_task(g, "a", n0, timeunits::us(100), TaskPolicy::Fps);
    const TaskId b = app.add_task(g, "b", n1, timeunits::us(100), TaskPolicy::Fps);
    const TaskId c = app.add_task(g, "c", n0, timeunits::us(100), TaskPolicy::Fps);
    early = app.add_message(g, "early", a, b, 4, MessageClass::Dynamic);
    late = app.add_message(g, "late", b, c, 4, MessageClass::Dynamic);
    if (!app.finalize().ok()) throw std::runtime_error("fixture finalize failed");
  }
};

TEST(Criticality, DeeperMessageIsMoreCritical) {
  ChainFixture f;
  const std::vector<Time> costs(f.app.message_count(), timeunits::us(20));
  // Same deadline, longer path => smaller CP => more critical.
  EXPECT_LT(f.app.criticality(f.late, costs), f.app.criticality(f.early, costs));
}

TEST(Criticality, TighterDeadlineIsMoreCritical) {
  ChainFixture f;
  f.app.set_message_deadline(f.early, timeunits::ms(1));
  const std::vector<Time> costs(f.app.message_count(), timeunits::us(20));
  EXPECT_LT(f.app.criticality(f.early, costs), f.app.criticality(f.late, costs));
}

TEST(Criticality, ExactValue) {
  ChainFixture f;
  const std::vector<Time> costs(f.app.message_count(), timeunits::us(20));
  // LP(early) = wcet(a) + cost(early) = 120us; CP = 10ms - 120us.
  EXPECT_EQ(f.app.criticality(f.early, costs), timeunits::ms(10) - timeunits::us(120));
  // LP(late) = a + early + b + late = 100+20+100+20 = 240us.
  EXPECT_EQ(f.app.criticality(f.late, costs), timeunits::ms(10) - timeunits::us(240));
}

}  // namespace
}  // namespace flexopt
