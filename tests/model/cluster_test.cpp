// Cluster membership, gateway declarations, route derivation, and the
// SystemModel projection of a clustered Application.

#include <gtest/gtest.h>

#include <memory>

#include "flexopt/model/system_model.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

using testing::TwoClusterSystem;

TEST(Cluster, SingleBusApplicationsStayInClusterZero) {
  testing::TinySystem tiny;
  EXPECT_EQ(tiny.app.cluster_count(), 1u);
  EXPECT_FALSE(tiny.app.has_cross_cluster_messages());
  for (std::uint32_t m = 0; m < tiny.app.message_count(); ++m) {
    const MessageRoute& route = tiny.app.route_of(static_cast<MessageId>(m));
    EXPECT_FALSE(route.cross_cluster());
    EXPECT_EQ(route.hop_count(), 1u);
  }
}

TEST(Cluster, DerivesDirectGatewayRoute) {
  TwoClusterSystem sys;
  EXPECT_EQ(sys.app.cluster_count(), 2u);
  EXPECT_TRUE(sys.app.has_cross_cluster_messages());

  const MessageRoute& local = sys.app.route_of(sys.local_msg);
  EXPECT_FALSE(local.cross_cluster());

  const MessageRoute& cross = sys.app.route_of(sys.cross_msg);
  ASSERT_TRUE(cross.cross_cluster());
  ASSERT_EQ(cross.clusters.size(), 2u);
  EXPECT_EQ(index_of(cross.clusters[0]), 0u);
  EXPECT_EQ(index_of(cross.clusters[1]), 1u);
  ASSERT_EQ(cross.gateways.size(), 1u);
  EXPECT_EQ(cross.gateways[0], sys.gw);
}

TEST(Cluster, DerivesMultiHopRouteThroughChain) {
  // Three clusters in a chain; a message from cluster 0 to cluster 2 must
  // route through both gateways.
  Application app;
  const NodeId a = app.add_node("A");
  const NodeId b = app.add_node("B");
  const NodeId c = app.add_node("C");
  const NodeId gw0 = app.add_node("GW0");
  const NodeId gw1 = app.add_node("GW1");
  app.set_node_cluster(b, static_cast<ClusterId>(1));
  app.set_node_cluster(c, static_cast<ClusterId>(2));
  app.set_node_cluster(gw1, static_cast<ClusterId>(1));
  app.add_gateway(gw0, {static_cast<ClusterId>(1)});
  app.add_gateway(gw1, {static_cast<ClusterId>(2)});
  const GraphId g = app.add_graph("G", timeunits::ms(10), timeunits::ms(10));
  const TaskId t0 = app.add_task(g, "t0", a, timeunits::us(100), TaskPolicy::Fps, 1);
  const TaskId t1 = app.add_task(g, "t1", b, timeunits::us(100), TaskPolicy::Fps, 2);
  const TaskId t2 = app.add_task(g, "t2", c, timeunits::us(100), TaskPolicy::Fps, 3);
  app.add_message(g, "m01", t0, t1, 4, MessageClass::Dynamic, 1);
  const MessageId far = app.add_message(g, "m02", t1, t2, 4, MessageClass::Dynamic, 2);
  ASSERT_TRUE(app.finalize().ok());

  const MessageRoute& route = app.route_of(far);
  ASSERT_EQ(route.clusters.size(), 2u);  // 1 -> 2 is one gateway transition
  EXPECT_EQ(index_of(route.clusters[0]), 1u);
  EXPECT_EQ(index_of(route.clusters[1]), 2u);
  ASSERT_EQ(route.gateways.size(), 1u);
  EXPECT_EQ(route.gateways[0], gw1);
}

TEST(Cluster, RejectsUnroutableCrossClusterMessage) {
  TwoClusterSystem sys;  // valid; now build a variant without the gateway
  Application app;
  const NodeId a = app.add_node("A");
  const NodeId b = app.add_node("B");
  app.set_node_cluster(b, static_cast<ClusterId>(1));
  const GraphId g = app.add_graph("G", timeunits::ms(10), timeunits::ms(10));
  const TaskId t0 = app.add_task(g, "t0", a, timeunits::us(100), TaskPolicy::Fps, 1);
  const TaskId t1 = app.add_task(g, "t1", b, timeunits::us(100), TaskPolicy::Fps, 2);
  app.add_message(g, "m", t0, t1, 4, MessageClass::Dynamic, 1);
  const auto fin = app.finalize();
  ASSERT_FALSE(fin.ok());
  EXPECT_NE(fin.error().message.find("no gateway route"), std::string::npos);
}

TEST(Cluster, RejectsTimeTriggeredCrossClusterTraffic) {
  // A Static cross-cluster message is rejected (TT gateway forwarding is
  // not modelled) ...
  {
    Application app;
    const NodeId a = app.add_node("A");
    const NodeId b = app.add_node("B");
    const NodeId gw = app.add_node("GW");
    app.set_node_cluster(b, static_cast<ClusterId>(1));
    app.add_gateway(gw, {static_cast<ClusterId>(1)});
    const GraphId g = app.add_graph("G", timeunits::ms(10), timeunits::ms(10));
    const TaskId t0 = app.add_task(g, "t0", a, timeunits::us(100), TaskPolicy::Scs);
    const TaskId t1 = app.add_task(g, "t1", b, timeunits::us(100), TaskPolicy::Scs);
    app.add_message(g, "m", t0, t1, 4, MessageClass::Static);
    const auto fin = app.finalize();
    ASSERT_FALSE(fin.ok());
    EXPECT_NE(fin.error().message.find("dynamic segment"), std::string::npos);
  }
  // ... and so is a DYN cross-cluster message delivered to an SCS receiver.
  {
    Application app;
    const NodeId a = app.add_node("A");
    const NodeId b = app.add_node("B");
    const NodeId gw = app.add_node("GW");
    app.set_node_cluster(b, static_cast<ClusterId>(1));
    app.add_gateway(gw, {static_cast<ClusterId>(1)});
    const GraphId g = app.add_graph("G", timeunits::ms(10), timeunits::ms(10));
    const TaskId t0 = app.add_task(g, "t0", a, timeunits::us(100), TaskPolicy::Fps, 1);
    const TaskId t1 = app.add_task(g, "t1", b, timeunits::us(100), TaskPolicy::Scs);
    app.add_message(g, "m", t0, t1, 4, MessageClass::Dynamic, 1);
    const auto fin = app.finalize();
    ASSERT_FALSE(fin.ok());
    EXPECT_NE(fin.error().message.find("SCS task"), std::string::npos);
  }
}

TEST(Cluster, RejectsTasksOnGatewaysAndBadDeclarations) {
  {
    Application app;
    const NodeId a = app.add_node("A");
    const NodeId gw = app.add_node("GW");
    app.add_node("B");  // unused regular node keeps cluster 1 populated
    app.set_node_cluster(static_cast<NodeId>(2), static_cast<ClusterId>(1));
    app.add_gateway(gw, {static_cast<ClusterId>(1)});
    const GraphId g = app.add_graph("G", timeunits::ms(10), timeunits::ms(10));
    app.add_task(g, "t0", a, timeunits::us(100), TaskPolicy::Fps, 1);
    app.add_task(g, "t1", gw, timeunits::us(100), TaskPolicy::Fps, 2);
    const auto fin = app.finalize();
    ASSERT_FALSE(fin.ok());
    EXPECT_NE(fin.error().message.find("gateway node"), std::string::npos);
  }
  {
    Application app;
    const NodeId a = app.add_node("A");
    const GraphId g = app.add_graph("G", timeunits::ms(10), timeunits::ms(10));
    app.add_task(g, "t0", a, timeunits::us(100), TaskPolicy::Fps, 1);
    app.set_node_cluster(a, static_cast<ClusterId>(2));  // cluster 1 unused
    const auto fin = app.finalize();
    ASSERT_FALSE(fin.ok());
    EXPECT_NE(fin.error().message.find("contiguous"), std::string::npos);
  }
}

TEST(SystemModel, SingleClusterProjectsToItself) {
  testing::TinySystem tiny;
  auto app = std::make_shared<const Application>(tiny.app);
  auto model = SystemModel::build(app);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model.value().single_cluster());
  // The projection IS the global application — the bit-identity guarantee.
  EXPECT_EQ(model.value().cluster_app(0).get(), app.get());
  EXPECT_TRUE(model.value().relay_links().empty());
  const LocalActivity& hop = model.value().message_hops(tiny.dyn_msg)[0];
  EXPECT_EQ(hop.cluster, 0u);
  EXPECT_EQ(hop.index, index_of(tiny.dyn_msg));
}

TEST(SystemModel, ProjectsTwoClustersWithRelayChain) {
  TwoClusterSystem sys;
  auto model = SystemModel::build(std::make_shared<const Application>(sys.app));
  ASSERT_TRUE(model.ok());
  const SystemModel& m = model.value();
  ASSERT_EQ(m.cluster_count(), 2u);

  const Application& c0 = *m.cluster_app(0);
  const Application& c1 = *m.cluster_app(1);
  // Cluster 0: N0, N1, GW; tasks src, mid + the cross message's receive
  // relay; messages m_local and the first hop of m_cross.
  EXPECT_EQ(c0.node_count(), 3u);
  EXPECT_EQ(c0.task_count(), 3u);
  EXPECT_EQ(c0.message_count(), 2u);
  // Cluster 1: N2, GW; tasks sink, local1 + the forwarding relay; one hop.
  EXPECT_EQ(c1.node_count(), 2u);
  EXPECT_EQ(c1.task_count(), 3u);
  EXPECT_EQ(c1.message_count(), 1u);
  // Both carry every graph so horizons agree.
  EXPECT_EQ(c0.graph_count(), sys.app.graph_count());
  EXPECT_EQ(c1.graph_count(), sys.app.graph_count());

  ASSERT_EQ(m.relay_links().size(), 1u);
  const RelayLink& link = m.relay_links()[0];
  EXPECT_EQ(link.global_message, sys.cross_msg);
  EXPECT_EQ(link.upstream_cluster, 0u);
  EXPECT_EQ(link.downstream_cluster, 1u);
  EXPECT_EQ(link.gateway, sys.gw);
  EXPECT_EQ(c0.tasks()[index_of(link.upstream_recv)].policy, TaskPolicy::Fps);
  EXPECT_EQ(c1.tasks()[index_of(link.downstream_send)].policy, TaskPolicy::Fps);

  // The cross message became two hops: one local DYN message per cluster.
  const auto& hops = m.message_hops(sys.cross_msg);
  ASSERT_EQ(hops.size(), 2u);
  EXPECT_EQ(hops[0].cluster, 0u);
  EXPECT_EQ(hops[1].cluster, 1u);
  EXPECT_EQ(c0.messages()[hops[0].index].cls, MessageClass::Dynamic);
  EXPECT_EQ(c1.messages()[hops[1].index].cls, MessageClass::Dynamic);
  // Hop 0 goes sender -> receive relay, hop 1 forwarding relay -> sink.
  EXPECT_EQ(c0.messages()[hops[0].index].receiver, link.upstream_recv);
  EXPECT_EQ(c1.messages()[hops[1].index].sender, link.downstream_send);
  EXPECT_EQ(m.local_task(sys.sink).cluster, 1u);
  EXPECT_EQ(c1.messages()[hops[1].index].receiver,
            static_cast<TaskId>(m.local_task(sys.sink).index));
}

}  // namespace
}  // namespace flexopt
