// The per-cluster backend vocabulary: kind/mix parsing and naming, the
// mixed-assignment policy, Ethernet frame timing, the per-backend move-kind
// tables, and the Application-level backend declarations (storage, default,
// finalize validation).

#include <gtest/gtest.h>

#include "flexopt/model/application.hpp"
#include "flexopt/model/cluster_backend.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

TEST(ClusterBackend, KindParsingRoundTrips) {
  for (const ClusterBackendKind kind :
       {ClusterBackendKind::FlexRay, ClusterBackendKind::Tsn}) {
    auto parsed = parse_backend_kind(to_string(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  auto bad = parse_backend_kind("ethernet");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message.find("expected flexray or tsn"), std::string::npos);
}

TEST(ClusterBackend, MixParsingRoundTrips) {
  for (const BackendMix mix : {BackendMix::Flexray, BackendMix::Tsn, BackendMix::Mixed}) {
    auto parsed = parse_backend_mix(to_string(mix));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), mix);
  }
  auto bad = parse_backend_mix("hybrid");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message.find("expected flexray, tsn or mixed"), std::string::npos);
}

TEST(ClusterBackend, MixedAlternatesStartingWithFlexray) {
  EXPECT_EQ(backend_for_cluster(BackendMix::Mixed, 0), ClusterBackendKind::FlexRay);
  EXPECT_EQ(backend_for_cluster(BackendMix::Mixed, 1), ClusterBackendKind::Tsn);
  EXPECT_EQ(backend_for_cluster(BackendMix::Mixed, 2), ClusterBackendKind::FlexRay);
  EXPECT_EQ(backend_for_cluster(BackendMix::Mixed, 3), ClusterBackendKind::Tsn);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(backend_for_cluster(BackendMix::Flexray, c), ClusterBackendKind::FlexRay);
    EXPECT_EQ(backend_for_cluster(BackendMix::Tsn, c), ClusterBackendKind::Tsn);
  }
}

TEST(ClusterBackend, FrameDurationChargesOverheadAndRoundsUp) {
  // 8 payload bytes + 42 overhead bytes = 400 bits; at 100 Mbit/s that is
  // 4000 ns exactly.
  EXPECT_EQ(tsn_frame_duration(8, 100), 4000);
  // 1 byte + overhead = 344 bits at 1000 Mbit/s = 344 ns exactly; at
  // 3 Mbit/s = 114666.67 ns, rounded *up*.
  EXPECT_EQ(tsn_frame_duration(1, 1000), 344);
  EXPECT_EQ(tsn_frame_duration(1, 3), (344 * 1000 + 2) / 3);
}

TEST(ClusterBackend, MoveKindTablesAreDisjointAndComplete) {
  const auto flexray = backend_move_kinds(ClusterBackendKind::FlexRay);
  const auto tsn = backend_move_kinds(ClusterBackendKind::Tsn);
  EXPECT_EQ(flexray.size(), 5u);
  EXPECT_EQ(tsn.size(), 3u);
  for (const BackendMoveKind f : flexray) {
    for (const BackendMoveKind t : tsn) EXPECT_NE(f, t);
  }
  EXPECT_STREQ(to_string(BackendMoveKind::TsnGateOffset), "tsn_gate_offset");
  EXPECT_STREQ(to_string(BackendMoveKind::MinislotCount), "minislot_count");
}

TEST(ClusterBackend, ApplicationDefaultsToFlexray) {
  testing::TwoClusterSystem sys;
  EXPECT_EQ(sys.app.cluster_backend(static_cast<ClusterId>(0)), ClusterBackendKind::FlexRay);
  EXPECT_EQ(sys.app.cluster_backend(static_cast<ClusterId>(1)), ClusterBackendKind::FlexRay);
}

TEST(ClusterBackend, ApplicationStoresPerClusterDeclarations) {
  testing::TwoClusterSystem sys;
  // Helpers finalize the app; backend declarations are part of construction,
  // so rebuild the same shape with a TSN cluster 1.
  Application app;
  const NodeId n0 = app.add_node("N0");
  const NodeId n1 = app.add_node("N1");
  app.set_node_cluster(n1, static_cast<ClusterId>(1));
  app.add_gateway(app.add_node("GW"), {static_cast<ClusterId>(1)});
  const GraphId g = app.add_graph("G", timeunits::ms(10), timeunits::ms(10));
  const TaskId a = app.add_task(g, "a", n0, timeunits::us(100), TaskPolicy::Fps, 1);
  const TaskId b = app.add_task(g, "b", n1, timeunits::us(100), TaskPolicy::Fps, 2);
  app.add_message(g, "m", a, b, 8, MessageClass::Dynamic, 1);
  app.set_cluster_backend(static_cast<ClusterId>(1), ClusterBackendKind::Tsn);
  ASSERT_TRUE(app.finalize().ok());
  EXPECT_EQ(app.cluster_backend(static_cast<ClusterId>(0)), ClusterBackendKind::FlexRay);
  EXPECT_EQ(app.cluster_backend(static_cast<ClusterId>(1)), ClusterBackendKind::Tsn);
}

TEST(ClusterBackend, FinalizeRejectsOutOfRangeDeclaration) {
  Application app;
  const NodeId n0 = app.add_node("N0");
  const GraphId g = app.add_graph("G", timeunits::ms(10), timeunits::ms(10));
  app.add_task(g, "a", n0, timeunits::us(100), TaskPolicy::Fps, 1);
  app.set_cluster_backend(static_cast<ClusterId>(3), ClusterBackendKind::Tsn);
  EXPECT_FALSE(app.finalize().ok());
}

}  // namespace
}  // namespace flexopt
