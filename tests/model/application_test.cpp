#include "flexopt/model/application.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace flexopt {
namespace {

Application two_node_chain() {
  Application app;
  const NodeId n0 = app.add_node("N0");
  const NodeId n1 = app.add_node("N1");
  const GraphId g = app.add_graph("g", timeunits::ms(10), timeunits::ms(10));
  const TaskId a = app.add_task(g, "a", n0, timeunits::us(100), TaskPolicy::Scs);
  const TaskId b = app.add_task(g, "b", n1, timeunits::us(200), TaskPolicy::Scs);
  app.add_message(g, "m", a, b, 8, MessageClass::Static);
  return app;
}

TEST(Application, FinalizeBuildsAdjacency) {
  Application app = two_node_chain();
  ASSERT_TRUE(app.finalize().ok());
  const auto a = ActivityRef::task(TaskId{0});
  const auto m = ActivityRef::message(MessageId{0});
  const auto b = ActivityRef::task(TaskId{1});
  ASSERT_EQ(app.successors(a).size(), 1u);
  EXPECT_EQ(app.successors(a)[0], m);
  ASSERT_EQ(app.predecessors(b).size(), 1u);
  EXPECT_EQ(app.predecessors(b)[0], m);
}

TEST(Application, TopologicalOrderRespectsEdges) {
  Application app = two_node_chain();
  ASSERT_TRUE(app.finalize().ok());
  const auto& topo = app.topological_order();
  ASSERT_EQ(topo.size(), 3u);
  auto pos = [&](ActivityRef r) {
    return std::find(topo.begin(), topo.end(), r) - topo.begin();
  };
  EXPECT_LT(pos(ActivityRef::task(TaskId{0})), pos(ActivityRef::message(MessageId{0})));
  EXPECT_LT(pos(ActivityRef::message(MessageId{0})), pos(ActivityRef::task(TaskId{1})));
}

TEST(Application, EffectiveDeadlineFallsBackToGraph) {
  Application app = two_node_chain();
  app.set_task_deadline(TaskId{0}, timeunits::ms(5));
  ASSERT_TRUE(app.finalize().ok());
  EXPECT_EQ(app.effective_deadline(ActivityRef::task(TaskId{0})), timeunits::ms(5));
  EXPECT_EQ(app.effective_deadline(ActivityRef::task(TaskId{1})), timeunits::ms(10));
  EXPECT_EQ(app.effective_deadline(ActivityRef::message(MessageId{0})), timeunits::ms(10));
}

TEST(Application, HyperperiodOfMixedGraphs) {
  Application app = two_node_chain();
  const GraphId g2 = app.add_graph("g2", timeunits::ms(4), timeunits::ms(4));
  app.add_task(g2, "c", NodeId{0}, timeunits::us(10), TaskPolicy::Fps);
  ASSERT_TRUE(app.finalize().ok());
  auto h = app.hyperperiod();
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h.value(), timeunits::ms(20));
}

TEST(Application, NodeUtilization) {
  Application app = two_node_chain();
  ASSERT_TRUE(app.finalize().ok());
  EXPECT_NEAR(app.node_utilization(NodeId{0}), 0.01, 1e-9);   // 100us / 10ms
  EXPECT_NEAR(app.node_utilization(NodeId{1}), 0.02, 1e-9);
}

TEST(Application, LongestPathUsesMessageCosts) {
  Application app = two_node_chain();
  ASSERT_TRUE(app.finalize().ok());
  const std::vector<Time> msg_costs{timeunits::us(50)};
  // a (100) -> m (50) -> b (200): LP to b = 350us.
  EXPECT_EQ(app.longest_path_to(ActivityRef::task(TaskId{1}), msg_costs), timeunits::us(350));
  EXPECT_EQ(app.longest_path_to(ActivityRef::message(MessageId{0}), msg_costs),
            timeunits::us(150));
}

TEST(Application, QueriesBeforeFinalizeThrow) {
  Application app = two_node_chain();
  EXPECT_THROW((void)app.topological_order(), std::logic_error);
  EXPECT_THROW((void)app.predecessors(ActivityRef::task(TaskId{0})), std::logic_error);
}

TEST(Application, ActivityRefHelpers) {
  const auto t = ActivityRef::task(TaskId{3});
  const auto m = ActivityRef::message(MessageId{3});
  EXPECT_TRUE(t.is_task());
  EXPECT_TRUE(m.is_message());
  EXPECT_FALSE(t == m);
  EXPECT_EQ(index_of(t.as_task()), 3u);
  EXPECT_EQ(index_of(m.as_message()), 3u);
}

}  // namespace
}  // namespace flexopt
