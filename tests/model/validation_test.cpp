// Negative tests: Application::finalize must reject every malformed model
// with a descriptive error instead of letting analysis run on garbage.

#include <gtest/gtest.h>

#include "flexopt/model/application.hpp"

namespace flexopt {
namespace {

TEST(Validation, RejectsEmptyApplication) {
  Application app;
  EXPECT_FALSE(app.finalize().ok());
}

TEST(Validation, RejectsNodelessTasks) {
  Application app;
  app.add_node("N0");
  EXPECT_FALSE(app.finalize().ok());  // no tasks
}

TEST(Validation, RejectsNonPositivePeriod) {
  Application app;
  const NodeId n = app.add_node("N0");
  const GraphId g = app.add_graph("g", 0, timeunits::ms(1));
  app.add_task(g, "t", n, 1, TaskPolicy::Scs);
  EXPECT_FALSE(app.finalize().ok());
}

TEST(Validation, RejectsNonPositiveWcet) {
  Application app;
  const NodeId n = app.add_node("N0");
  const GraphId g = app.add_graph("g", timeunits::ms(1), timeunits::ms(1));
  app.add_task(g, "t", n, 0, TaskPolicy::Scs);
  EXPECT_FALSE(app.finalize().ok());
}

TEST(Validation, RejectsIntraNodeMessage) {
  Application app;
  const NodeId n = app.add_node("N0");
  app.add_node("N1");
  const GraphId g = app.add_graph("g", timeunits::ms(1), timeunits::ms(1));
  const TaskId a = app.add_task(g, "a", n, 1, TaskPolicy::Scs);
  const TaskId b = app.add_task(g, "b", n, 1, TaskPolicy::Scs);
  app.add_message(g, "m", a, b, 4, MessageClass::Static);
  EXPECT_FALSE(app.finalize().ok());
}

TEST(Validation, RejectsStMessageFromFpsTask) {
  Application app;
  const NodeId n0 = app.add_node("N0");
  const NodeId n1 = app.add_node("N1");
  const GraphId g = app.add_graph("g", timeunits::ms(1), timeunits::ms(1));
  const TaskId a = app.add_task(g, "a", n0, 1, TaskPolicy::Fps);
  const TaskId b = app.add_task(g, "b", n1, 1, TaskPolicy::Fps);
  app.add_message(g, "m", a, b, 4, MessageClass::Static);
  EXPECT_FALSE(app.finalize().ok());
}

TEST(Validation, RejectsScsTaskWithEtPredecessor) {
  Application app;
  const NodeId n0 = app.add_node("N0");
  const GraphId g = app.add_graph("g", timeunits::ms(1), timeunits::ms(1));
  const TaskId a = app.add_task(g, "a", n0, 1, TaskPolicy::Fps);
  const TaskId b = app.add_task(g, "b", n0, 1, TaskPolicy::Scs);
  app.add_dependency(a, b);
  EXPECT_FALSE(app.finalize().ok());
}

TEST(Validation, RejectsCrossGraphMessage) {
  Application app;
  const NodeId n0 = app.add_node("N0");
  const NodeId n1 = app.add_node("N1");
  const GraphId g1 = app.add_graph("g1", timeunits::ms(1), timeunits::ms(1));
  const GraphId g2 = app.add_graph("g2", timeunits::ms(2), timeunits::ms(2));
  const TaskId a = app.add_task(g1, "a", n0, 1, TaskPolicy::Scs);
  const TaskId b = app.add_task(g2, "b", n1, 1, TaskPolicy::Scs);
  app.add_message(g1, "m", a, b, 4, MessageClass::Static);
  EXPECT_FALSE(app.finalize().ok());
}

TEST(Validation, RejectsDependencyCycle) {
  Application app;
  const NodeId n0 = app.add_node("N0");
  const GraphId g = app.add_graph("g", timeunits::ms(1), timeunits::ms(1));
  const TaskId a = app.add_task(g, "a", n0, 1, TaskPolicy::Scs);
  const TaskId b = app.add_task(g, "b", n0, 1, TaskPolicy::Scs);
  app.add_dependency(a, b);
  app.add_dependency(b, a);
  EXPECT_FALSE(app.finalize().ok());
}

TEST(Validation, RejectsNegativeReleaseOffset) {
  Application app;
  const NodeId n0 = app.add_node("N0");
  const GraphId g = app.add_graph("g", timeunits::ms(1), timeunits::ms(1));
  const TaskId a = app.add_task(g, "a", n0, 1, TaskPolicy::Scs);
  app.set_task_release_offset(a, -1);
  EXPECT_FALSE(app.finalize().ok());
}

TEST(Validation, RejectsNonPositiveMessageSize) {
  Application app;
  const NodeId n0 = app.add_node("N0");
  const NodeId n1 = app.add_node("N1");
  const GraphId g = app.add_graph("g", timeunits::ms(1), timeunits::ms(1));
  const TaskId a = app.add_task(g, "a", n0, 1, TaskPolicy::Scs);
  const TaskId b = app.add_task(g, "b", n1, 1, TaskPolicy::Scs);
  app.add_message(g, "m", a, b, 0, MessageClass::Static);
  EXPECT_FALSE(app.finalize().ok());
}

TEST(Validation, AcceptsWellFormedMixedSystem) {
  Application app;
  const NodeId n0 = app.add_node("N0");
  const NodeId n1 = app.add_node("N1");
  const GraphId tt = app.add_graph("tt", timeunits::ms(2), timeunits::ms(2));
  const GraphId et = app.add_graph("et", timeunits::ms(4), timeunits::ms(4));
  const TaskId a = app.add_task(tt, "a", n0, 1, TaskPolicy::Scs);
  const TaskId b = app.add_task(tt, "b", n1, 1, TaskPolicy::Scs);
  app.add_message(tt, "st", a, b, 4, MessageClass::Static);
  const TaskId c = app.add_task(et, "c", n0, 1, TaskPolicy::Fps);
  const TaskId d = app.add_task(et, "d", n1, 1, TaskPolicy::Fps);
  app.add_message(et, "dyn", c, d, 4, MessageClass::Dynamic);
  EXPECT_TRUE(app.finalize().ok());
}

}  // namespace
}  // namespace flexopt
