// Property test over the generator family: 50 random ScenarioSpecs (all
// topologies and traffic mixes, varied sizes, bands and period sets) must
// each produce a finalized application whose realised per-node and bus
// utilisations land within tolerance of their targets.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "flexopt/gen/scenario.hpp"
#include "flexopt/util/rng.hpp"

namespace flexopt {
namespace {

ScenarioSpec random_spec(Rng& rng) {
  ScenarioSpec spec;
  spec.topology = static_cast<Topology>(rng.index(4));
  spec.traffic = static_cast<TrafficMix>(rng.index(3));
  SyntheticSpec& base = spec.base;
  base.nodes = static_cast<int>(rng.uniform_int(2, 6));
  base.tasks_per_graph = static_cast<int>(rng.uniform_int(2, 5));
  // Keep total task count divisible by tasks_per_graph by construction.
  base.tasks_per_node = base.tasks_per_graph * static_cast<int>(rng.uniform_int(1, 3));
  base.tt_share = rng.uniform_real(0.0, 1.0);
  base.node_util_min = rng.uniform_real(0.1, 0.4);
  base.node_util_max = base.node_util_min + rng.uniform_real(0.05, 0.3);
  base.bus_util_min = rng.uniform_real(0.05, 0.3);
  base.bus_util_max = base.bus_util_min + rng.uniform_real(0.05, 0.3);
  base.deadline_factor = rng.uniform_real(0.6, 1.4);
  base.max_message_bytes = static_cast<int>(rng.uniform_int(16, 64));
  base.period_choices.clear();
  const int period_count = static_cast<int>(rng.uniform_int(1, 4));
  for (int i = 0; i < period_count; ++i) {
    base.period_choices.push_back(timeunits::ms(rng.uniform_int(10, 100)));
  }
  base.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30));
  return spec;
}

TEST(GeneratorProperty, FiftyRandomSpecsFinalizeWithinUtilisationTolerance) {
  BusParams params;
  Rng rng(20260730);
  for (int trial = 0; trial < 50; ++trial) {
    const ScenarioSpec spec = random_spec(rng);
    auto app = generate_scenario(spec, params);
    ASSERT_TRUE(app.ok()) << "trial " << trial << " (" << to_string(spec.topology) << "/"
                          << to_string(spec.traffic) << ", seed " << spec.base.seed
                          << "): " << app.error().message;
    EXPECT_TRUE(app.value().finalized());

    // Per-node utilisation: WCET quantisation (10 us floor) perturbs the
    // drawn target slightly, never wildly.
    for (int n = 0; n < spec.base.nodes; ++n) {
      const double u = app.value().node_utilization(static_cast<NodeId>(n));
      EXPECT_GE(u, spec.base.node_util_min * 0.85) << "trial " << trial << " node " << n;
      EXPECT_LE(u, spec.base.node_util_max * 1.15) << "trial " << trial << " node " << n;
    }

    // Bus utilisation: byte quantisation plus the payload cap bound what is
    // achievable, so the lower check is against the achievable ceiling.
    if (app.value().message_count() > 0) {
      const double u = bus_utilization(app.value(), params);
      double achievable = 0.0;
      for (const auto& m : app.value().messages()) {
        achievable += static_cast<double>(params.frame_duration(spec.base.max_message_bytes)) /
                      static_cast<double>(app.value().graph(m.graph).period);
      }
      EXPECT_GE(u, std::min(spec.base.bus_util_min * 0.5, achievable * 0.9))
          << "trial " << trial;
      EXPECT_LE(u, spec.base.bus_util_max * 1.5) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace flexopt
