// Exact-backend property lane (`ctest -R exact -L property`): across >= 25
// scenarios spanning single-cluster FlexRay, multi-cluster FlexRay and
// mixed FlexRay/TSN systems, the three-level sandwich holds for every
// analysable activity under the minimal start configuration:
//
//   netsim observed  <=  exact WCRT  <=  holistic WCRT
//
// (left: the simulator replays real schedules inside the explored
// behaviour space; right: the exact backend clamps to holistic by
// construction — both inequalities checked empirically here).  Plus:
// exact evaluation is bit-deterministic across evaluator worker counts
// (jobs 1 vs 8), so campaign results never depend on the thread schedule;
// and the parallel exploration engine itself (ExactOptions::jobs 1 vs 8)
// returns bit-identical ExactClusterInfo records — states, merges,
// transitions, refined bounds — across the same scenario breadth.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "flexopt/analysis/exact/exact_analysis.hpp"
#include "flexopt/analysis/multicluster.hpp"
#include "flexopt/core/config_builder.hpp"
#include "flexopt/core/evaluator.hpp"
#include "flexopt/gen/scenario.hpp"
#include "flexopt/netsim/netsim.hpp"
#include "flexopt/util/rng.hpp"

namespace flexopt {
namespace {

constexpr int kScenarios = 25;
constexpr int kMaxAttempts = 100;

BusParams lane_params() {
  BusParams params;
  params.gd_bit = 100;
  params.gd_macrotick = timeunits::us(1);
  params.gd_minislot = timeunits::us(5);
  return params;
}

/// Scenario `attempt` of the lane, cycling through the three families.
ScenarioSpec lane_spec(int attempt, Rng& rng) {
  ScenarioSpec spec;
  const int family = attempt % 3;
  if (family == 0) {
    // Single-cluster FlexRay, Section-7-style.
    spec.base.nodes = 2 + static_cast<int>(rng.uniform_int(0, 2));
    spec.base.deadline_factor = 0.7;
  } else {
    spec.topology = Topology::MultiCluster;
    spec.traffic = TrafficMix::DynOnly;
    spec.clusters = 2 + static_cast<int>(rng.uniform_int(0, 2));
    spec.inter_cluster_share = 0.25;
    spec.base.nodes = spec.clusters * 2;
    spec.base.tasks_per_node = 4;
    spec.base.tasks_per_graph = 4;
    spec.base.deadline_factor = 2.0;
    // Family 2 alternates FlexRay and TSN clusters (the mixed systems).
    if (family == 2) spec.backend = BackendMix::Mixed;
  }
  spec.base.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30));
  return spec;
}

/// Entry-wise `lhs <= rhs`; `rhs` may be infinite anywhere.
void expect_bounded_by(const std::vector<Time>& lhs, const std::vector<Time>& rhs,
                       int attempt, const char* what) {
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_LE(lhs[i], rhs[i]) << "scenario " << attempt << " " << what << "[" << i << "]";
  }
}

TEST(ExactProperty, ObservedLeExactLeHolisticAcrossScenarios) {
  Rng rng(20260808);
  const BusParams params = lane_params();
  int analysed = 0;
  int mixed_analysed = 0;
  for (int attempt = 0; attempt < kMaxAttempts && analysed < kScenarios; ++attempt) {
    const ScenarioSpec spec = lane_spec(attempt, rng);
    auto app = generate_scenario(spec, params);
    if (!app.ok()) continue;
    auto built = SystemModel::build(std::make_shared<const Application>(std::move(app).value()));
    ASSERT_TRUE(built.ok()) << built.error().message;
    const SystemModel& model = built.value();

    SystemConfig config;
    bool feasible = true;
    for (std::size_t c = 0; c < model.cluster_count(); ++c) {
      const ClusterBackendKind backend =
          model.cluster_app(c)->cluster_backend(ClusterId{0});
      ClusterConfig cluster =
          minimal_start_cluster_config(*model.cluster_app(c), params, backend);
      if (cluster.kind == ClusterBackendKind::FlexRay) {
        const StartConfig start = minimal_start_config(*model.cluster_app(c), params);
        feasible = feasible && start.bounds.feasible();
      }
      config.clusters.push_back(std::move(cluster));
    }
    if (!feasible) continue;
    auto layouts = build_system_layouts(model, params, config);
    if (!layouts.ok()) continue;

    auto holistic = analyze_multicluster(model, layouts.value(), AnalysisOptions{});
    ASSERT_TRUE(holistic.ok()) << holistic.error().message;
    AnalysisOptions exact_options;
    exact_options.mode = AnalysisMode::Exact;
    auto exact = analyze_multicluster(model, layouts.value(), exact_options);
    ASSERT_TRUE(exact.ok()) << exact.error().message;
    ASSERT_EQ(exact.value().clusters.size(), holistic.value().clusters.size());

    // Right inequality: exact <= holistic per cluster, per activity; and
    // every cluster carries its ExactClusterInfo (fallbacks recorded).
    for (std::size_t c = 0; c < exact.value().clusters.size(); ++c) {
      const AnalysisResult& e = exact.value().clusters[c];
      ASSERT_NE(e.exact, nullptr) << "scenario " << attempt << " cluster " << c;
      expect_bounded_by(e.task_completion, holistic.value().clusters[c].task_completion,
                        attempt, "task");
      expect_bounded_by(e.message_completion,
                        holistic.value().clusters[c].message_completion, attempt, "message");
    }

    // Left inequality: replay on the simulator and check every observed
    // completion against the *exact* bounds (the tighter side).
    auto sim = simulate_network(model, layouts.value(), exact.value());
    ASSERT_TRUE(sim.ok()) << sim.error().message;
    const SoundnessReport verdict = check_soundness(model, exact.value(), sim.value());
    EXPECT_TRUE(verdict.sound) << "scenario " << attempt << ": "
                               << verdict.violations.size() << " observed > exact";
    EXPECT_EQ(sim.value().precedence_violations, 0u) << "scenario " << attempt;

    ++analysed;
    if (spec.backend == BackendMix::Mixed) ++mixed_analysed;
  }
  // The lane must actually exercise its advertised breadth.
  ASSERT_GE(analysed, kScenarios);
  EXPECT_GT(mixed_analysed, 0);
}

/// The parallel frontier engine must be a pure wall-time optimisation: for
/// every scenario the full ExactClusterInfo — engine counters AND refined
/// bounds — is bit-identical between sequential (jobs=1) and maximally
/// sharded (jobs=8) exploration, fallbacks included.
TEST(ExactProperty, ExplorationBitIdenticalAcrossJobCounts) {
  Rng rng(20260809);
  const BusParams params = lane_params();
  int analysed = 0;
  int multicluster_analysed = 0;
  for (int attempt = 0; attempt < kMaxAttempts && analysed < kScenarios; ++attempt) {
    const ScenarioSpec spec = lane_spec(attempt, rng);
    auto app = generate_scenario(spec, params);
    if (!app.ok()) continue;
    auto built = SystemModel::build(std::make_shared<const Application>(std::move(app).value()));
    ASSERT_TRUE(built.ok()) << built.error().message;
    const SystemModel& model = built.value();

    SystemConfig config;
    bool feasible = true;
    for (std::size_t c = 0; c < model.cluster_count(); ++c) {
      const ClusterBackendKind backend =
          model.cluster_app(c)->cluster_backend(ClusterId{0});
      ClusterConfig cluster =
          minimal_start_cluster_config(*model.cluster_app(c), params, backend);
      if (cluster.kind == ClusterBackendKind::FlexRay) {
        const StartConfig start = minimal_start_config(*model.cluster_app(c), params);
        feasible = feasible && start.bounds.feasible();
      }
      config.clusters.push_back(std::move(cluster));
    }
    if (!feasible) continue;
    auto layouts = build_system_layouts(model, params, config);
    if (!layouts.ok()) continue;

    AnalysisOptions sequential_options;
    sequential_options.mode = AnalysisMode::Exact;
    sequential_options.exact.jobs = 1;
    AnalysisOptions parallel_options = sequential_options;
    parallel_options.exact.jobs = 8;
    auto sequential = analyze_multicluster(model, layouts.value(), sequential_options);
    auto parallel = analyze_multicluster(model, layouts.value(), parallel_options);
    ASSERT_TRUE(sequential.ok()) << sequential.error().message;
    ASSERT_TRUE(parallel.ok()) << parallel.error().message;
    ASSERT_EQ(sequential.value().clusters.size(), parallel.value().clusters.size());

    EXPECT_EQ(sequential.value().converged, parallel.value().converged)
        << "scenario " << attempt;
    EXPECT_EQ(sequential.value().cost.value, parallel.value().cost.value)
        << "scenario " << attempt;
    for (std::size_t c = 0; c < sequential.value().clusters.size(); ++c) {
      const AnalysisResult& s = sequential.value().clusters[c];
      const AnalysisResult& p = parallel.value().clusters[c];
      ASSERT_NE(s.exact, nullptr) << "scenario " << attempt << " cluster " << c;
      ASSERT_NE(p.exact, nullptr) << "scenario " << attempt << " cluster " << c;
      EXPECT_EQ(s.exact->fallback, p.exact->fallback)
          << "scenario " << attempt << " cluster " << c;
      EXPECT_EQ(s.exact->explored_states, p.exact->explored_states)
          << "scenario " << attempt << " cluster " << c;
      EXPECT_EQ(s.exact->merged_states, p.exact->merged_states)
          << "scenario " << attempt << " cluster " << c;
      EXPECT_EQ(s.exact->transitions, p.exact->transitions)
          << "scenario " << attempt << " cluster " << c;
      EXPECT_EQ(s.exact->refined_messages, p.exact->refined_messages)
          << "scenario " << attempt << " cluster " << c;
      EXPECT_EQ(s.task_completion, p.task_completion)
          << "scenario " << attempt << " cluster " << c;
      EXPECT_EQ(s.message_completion, p.message_completion)
          << "scenario " << attempt << " cluster " << c;
      EXPECT_EQ(s.cost.value, p.cost.value) << "scenario " << attempt << " cluster " << c;
    }

    ++analysed;
    if (model.cluster_count() > 1) ++multicluster_analysed;
  }
  ASSERT_GE(analysed, kScenarios);
  // The lane must cover both single- and multi-cluster explorations.
  EXPECT_GT(multicluster_analysed, 0);
  EXPECT_GT(analysed - multicluster_analysed, 0);
}

TEST(ExactProperty, ExactEvaluationBitDeterministicAcrossWorkerCounts) {
  Rng rng(7);
  const BusParams params = lane_params();
  SyntheticSpec spec;
  spec.nodes = 3;
  spec.deadline_factor = 0.7;
  spec.seed = 3000;
  auto app = generate_synthetic(spec, params);
  ASSERT_TRUE(app.ok()) << app.error().message;
  const StartConfig start = minimal_start_config(app.value(), params);
  ASSERT_TRUE(start.bounds.feasible());

  // A batch of minislot perturbations evaluated under 1 and 8 workers.
  std::vector<BusConfig> batch;
  for (int k = 0; k < 12; ++k) {
    BusConfig config = start.config;
    config.minislot_count += static_cast<int>(rng.uniform_int(0, 16));
    batch.push_back(std::move(config));
  }

  AnalysisOptions exact_options;
  exact_options.mode = AnalysisMode::Exact;
  EvaluatorOptions one_options;
  one_options.threads = 1;
  one_options.cache_enabled = false;
  EvaluatorOptions eight_options;
  eight_options.threads = 8;
  eight_options.cache_enabled = false;
  CostEvaluator one(app.value(), params, exact_options, one_options);
  CostEvaluator eight(app.value(), params, exact_options, eight_options);
  const auto serial = one.evaluate_many(batch);
  const auto parallel = eight.evaluate_many(batch);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].valid, parallel[i].valid) << i;
    EXPECT_EQ(serial[i].cost.value, parallel[i].cost.value) << i;
    EXPECT_EQ(serial[i].analysis.task_completion, parallel[i].analysis.task_completion) << i;
    EXPECT_EQ(serial[i].analysis.message_completion, parallel[i].analysis.message_completion)
        << i;
    if (serial[i].analysis.exact != nullptr) {
      ASSERT_NE(parallel[i].analysis.exact, nullptr) << i;
      EXPECT_EQ(serial[i].analysis.exact->explored_states,
                parallel[i].analysis.exact->explored_states)
          << i;
      EXPECT_EQ(serial[i].analysis.exact->fallback, parallel[i].analysis.exact->fallback) << i;
    }
  }
}

}  // namespace
}  // namespace flexopt
