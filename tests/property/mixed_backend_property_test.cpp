// Mixed-backend property lane (`ctest -R mixed_backend -L property`):
// across >= 25 random MultiCluster scenarios with alternating FlexRay/TSN
// clusters, (a) SystemConfig delta evaluation matches full evaluation bit
// for bit on random moves of either backend, and (b) every completion the
// network simulator observes stays within its analyze_multicluster bound on
// the mixed systems (the TSN guard-banding soundness check).

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "flexopt/analysis/multicluster.hpp"
#include "flexopt/core/config_builder.hpp"
#include "flexopt/core/solver.hpp"
#include "flexopt/gen/scenario.hpp"
#include "flexopt/netsim/netsim.hpp"
#include "flexopt/util/rng.hpp"

namespace flexopt {
namespace {

constexpr int kScenarios = 25;

ScenarioSpec random_mixed_spec(Rng& rng) {
  ScenarioSpec spec;
  spec.topology = Topology::MultiCluster;
  spec.traffic = TrafficMix::DynOnly;
  spec.clusters = static_cast<int>(rng.uniform_int(2, 4));
  spec.backend = BackendMix::Mixed;
  spec.inter_cluster_share = rng.uniform_real(0.1, 0.5);
  SyntheticSpec& base = spec.base;
  base.nodes = spec.clusters * static_cast<int>(rng.uniform_int(1, 2));
  base.tasks_per_graph = 4;
  base.tasks_per_node = 4 * static_cast<int>(rng.uniform_int(1, 2));
  base.deadline_factor = rng.uniform_real(1.5, 2.5);
  base.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30));
  return spec;
}

SystemModel make_model(const ScenarioSpec& spec, const BusParams& params) {
  auto app = generate_scenario(spec, params);
  if (!app.ok()) throw std::runtime_error(app.error().message);
  auto model = SystemModel::build(std::make_shared<const Application>(std::move(app).value()));
  if (!model.ok()) throw std::runtime_error(model.error().message);
  return std::move(model).value();
}

SystemConfig start_configs(const SystemModel& model, const BusParams& params) {
  SystemConfig config;
  for (std::size_t c = 0; c < model.cluster_count(); ++c) {
    config.clusters.push_back(minimal_start_cluster_config(
        *model.cluster_app(c), params, model.cluster_app(c)->cluster_backend(ClusterId{0})));
  }
  return config;
}

/// One random admissible mutation of cluster `c`, dispatched on its backend.
DeltaMove random_move(Rng& rng, const SystemConfig& base, int cluster) {
  const ClusterConfig& cfg = base.clusters[static_cast<std::size_t>(cluster)];
  if (cfg.kind == ClusterBackendKind::Tsn) {
    TsnConfig next = cfg.tsn;
    if (next.et_priority.empty() || rng.chance(0.3)) {
      // Degenerate/empty cluster: nothing to permute — nudge nothing and
      // fall through to a priority bump on the first entry if any.
      if (!next.et_priority.empty()) next.et_priority[0] += 1;
    } else if (rng.chance(0.5)) {
      const std::size_t m = rng.index(next.et_priority.size());
      next.et_priority[m] += static_cast<int>(rng.uniform_int(1, 3));
    } else {
      const std::size_t a = rng.index(next.et_priority.size());
      const std::size_t b = rng.index(next.et_priority.size());
      std::swap(next.et_priority[a], next.et_priority[b]);
      if (a == b) next.et_priority[a] += 1;
    }
    return DeltaMove::tsn_between(cfg.tsn, std::move(next), cluster);
  }
  BusConfig next = cfg.flexray;
  next.minislot_count += static_cast<int>(rng.uniform_int(1, 8));
  DeltaMove move = DeltaMove::between(cfg.flexray, std::move(next));
  move.cluster = cluster;
  return move;
}

TEST(MixedBackendProperty, DeltaMatchesFullEvaluationAcrossBackends) {
  Rng rng(20260808);
  const BusParams params;
  int tsn_moves = 0;
  for (int i = 0; i < kScenarios; ++i) {
    const ScenarioSpec spec = random_mixed_spec(rng);
    const SystemModel model = make_model(spec, params);
    CostEvaluator evaluator(model, params, AnalysisOptions{});
    SystemConfig base = start_configs(model, params);

    for (int step = 0; step < 3; ++step) {
      const int cluster = static_cast<int>(rng.index(model.cluster_count()));
      const DeltaMove move = random_move(rng, base, cluster);
      if (base.clusters[static_cast<std::size_t>(cluster)].kind == ClusterBackendKind::Tsn) {
        ++tsn_moves;
      }

      const auto delta = evaluator.evaluate_delta(base, move);
      CostEvaluator fresh(model, params, AnalysisOptions{});
      SystemConfig substituted = base;
      auto& slot = substituted.clusters[static_cast<std::size_t>(cluster)];
      if (slot.kind == ClusterBackendKind::Tsn) {
        slot = ClusterConfig::tsn_switch(move.tsn);
      } else {
        slot = ClusterConfig::flexray_bus(move.config);
      }
      const auto full = fresh.evaluate_system(substituted);
      ASSERT_EQ(delta.valid, full.valid) << "scenario " << i << " step " << step;
      if (!delta.valid) continue;
      EXPECT_EQ(delta.cost.value, full.cost.value) << "scenario " << i << " step " << step;
      EXPECT_EQ(delta.cost.schedulable, full.cost.schedulable);
      for (std::size_t c = 0; c < model.cluster_count(); ++c) {
        EXPECT_EQ(delta.cluster_analysis[c].task_completion,
                  full.cluster_analysis[c].task_completion);
        EXPECT_EQ(delta.cluster_analysis[c].message_completion,
                  full.cluster_analysis[c].message_completion);
      }
      base = std::move(substituted);
    }
  }
  // Mixed assignment guarantees every 2+ cluster system has a TSN cluster;
  // the random walk must actually have exercised the TSN delta path.
  EXPECT_GT(tsn_moves, 0);
}

TEST(MixedBackendProperty, NetsimObservationsStayWithinBoundsOnMixedSystems) {
  Rng rng(883311);
  const BusParams params;
  int simulated = 0;
  int tsn_clusters = 0;
  for (int i = 0; i < 40 && simulated < kScenarios; ++i) {
    const ScenarioSpec spec = random_mixed_spec(rng);
    auto app = generate_scenario(spec, params);
    if (!app.ok()) continue;
    auto model =
        SystemModel::build(std::make_shared<const Application>(std::move(app).value()));
    ASSERT_TRUE(model.ok()) << model.error().message;

    const SystemConfig config = start_configs(model.value(), params);
    auto layouts = build_system_layouts(model.value(), params, config);
    if (!layouts.ok()) continue;  // infeasible start config: nothing to simulate
    auto analysis = analyze_multicluster(model.value(), layouts.value(), AnalysisOptions{});
    ASSERT_TRUE(analysis.ok()) << analysis.error().message;

    auto net = simulate_network(model.value(), layouts.value(), analysis.value());
    ASSERT_TRUE(net.ok()) << net.error().message;
    const SoundnessReport report =
        check_soundness(model.value(), analysis.value(), net.value());
    EXPECT_TRUE(report.sound) << "scenario " << i << " seed " << spec.base.seed;
    for (const SoundnessViolation& v : report.violations) {
      ADD_FAILURE() << "observed " << v.observed << " > bound " << v.bound;
    }
    ++simulated;
    for (const ClusterLayout& layout : layouts.value()) {
      if (layout.kind() == ClusterBackendKind::Tsn) ++tsn_clusters;
    }
  }
  ASSERT_GE(simulated, kScenarios);
  // The sweep must actually have covered TSN clusters, not just FlexRay.
  EXPECT_GT(tsn_clusters, 0);
}

}  // namespace
}  // namespace flexopt
