// Property test of the incremental evaluation engine: across random
// (spec, move-sequence) pairs drawn from every topology family, a chain of
// SA neighbourhood moves evaluated through CostEvaluator::evaluate_delta
// must agree bit-for-bit with independent full evaluations — costs,
// completion bounds, jitters and convergence alike.  25 pairs per family
// x 4 families = 100 pairs, each with an 8-move chain.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "flexopt/core/config_builder.hpp"
#include "flexopt/core/evaluator.hpp"
#include "flexopt/core/sa.hpp"
#include "flexopt/gen/scenario.hpp"
#include "flexopt/util/rng.hpp"

namespace flexopt {
namespace {

constexpr int kPairsPerFamily = 25;
constexpr int kMovesPerPair = 8;

ScenarioSpec random_spec(Topology topology, Rng& rng) {
  ScenarioSpec spec;
  spec.topology = topology;
  spec.traffic = TrafficMix::Mixed;  // both segments populated: every move shape applies
  SyntheticSpec& base = spec.base;
  base.nodes = static_cast<int>(rng.uniform_int(2, 5));
  base.tasks_per_graph = static_cast<int>(rng.uniform_int(2, 4));
  base.tasks_per_node = base.tasks_per_graph * static_cast<int>(rng.uniform_int(1, 2));
  base.tt_share = rng.uniform_real(0.2, 0.8);
  base.deadline_factor = rng.uniform_real(0.6, 1.2);
  base.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30));
  return spec;
}

void expect_identical(const CostEvaluator::Evaluation& delta,
                      const CostEvaluator::Evaluation& full, const std::string& label) {
  ASSERT_EQ(delta.valid, full.valid) << label;
  if (!full.valid) return;
  if (delta.analysis.converged && !full.analysis.converged) return;  // documented carve-out
  EXPECT_EQ(delta.cost.value, full.cost.value) << label;
  EXPECT_EQ(delta.cost.schedulable, full.cost.schedulable) << label;
  EXPECT_EQ(delta.analysis.task_completion, full.analysis.task_completion) << label;
  EXPECT_EQ(delta.analysis.message_completion, full.analysis.message_completion) << label;
  EXPECT_EQ(delta.analysis.task_jitter, full.analysis.task_jitter) << label;
  EXPECT_EQ(delta.analysis.message_jitter, full.analysis.message_jitter) << label;
  EXPECT_EQ(delta.analysis.converged, full.analysis.converged) << label;
}

void run_family(Topology topology) {
  BusParams params;
  Rng rng(0xde17a0000u + static_cast<std::uint64_t>(topology));
  int chains_run = 0;
  for (int pair = 0; pair < kPairsPerFamily; ++pair) {
    const ScenarioSpec spec = random_spec(topology, rng);
    const std::string where = std::string(to_string(topology)) + " pair " +
                              std::to_string(pair) + " seed " +
                              std::to_string(spec.base.seed);
    auto app_result = generate_scenario(spec, params);
    ASSERT_TRUE(app_result.ok()) << where << ": " << app_result.error().message;
    const Application& app = app_result.value();

    const StartConfig start = minimal_start_config(app, params);
    if (!start.bounds.feasible()) continue;  // degenerate cell: nothing to walk
    const std::vector<NodeId>& senders = start.st_senders;
    const DynBounds& bounds = start.bounds;
    BusConfig current = start.config;

    CostEvaluator full(app, params, AnalysisOptions{});
    CostEvaluator delta(app, params, AnalysisOptions{});
    expect_identical(delta.evaluate(current), full.evaluate(current), where + " start");

    Rng move_rng(spec.base.seed ^ 0x9e3779b97f4a7c15ull);
    for (int step = 0; step < kMovesPerPair; ++step) {
      BusConfig neighbour = current;
      bool moved = false;
      for (int attempt = 0; attempt < 8 && !moved; ++attempt) {
        moved = random_neighbour_move(neighbour, app, params, move_rng, senders,
                                      bounds.min_minislots, SpecLimits::kMaxMinislots);
      }
      if (!moved) continue;
      const DeltaMove move = DeltaMove::between(current, std::move(neighbour));
      const auto ef = full.evaluate(move.config);
      const auto ed = delta.evaluate_delta(current, move);
      expect_identical(ed, ef, where + " step " + std::to_string(step));
      // Walk on through every analysable neighbour so the delta chain keeps
      // seeding from fresh bases (invalid ones keep the previous base).
      if (ef.valid) current = move.config;
    }
    ++chains_run;
  }
  // The generator must give us real work for most draws.
  EXPECT_GE(chains_run, kPairsPerFamily / 2) << to_string(topology);
}

TEST(DeltaEvalProperty, RandomDagChainsMatchFullEvaluation) {
  run_family(Topology::RandomDag);
}

TEST(DeltaEvalProperty, PipelineChainsMatchFullEvaluation) {
  run_family(Topology::Pipeline);
}

TEST(DeltaEvalProperty, FanInFanOutChainsMatchFullEvaluation) {
  run_family(Topology::FanInFanOut);
}

TEST(DeltaEvalProperty, GatewayHeavyChainsMatchFullEvaluation) {
  run_family(Topology::GatewayHeavy);
}

}  // namespace
}  // namespace flexopt
