// Property suite for the portfolio determinism contract: across ~50 random
// ScenarioSpecs spanning every topology family, the winning BusConfig, its
// cost, the winner id, and every member sub-report must be bit-identical
// for jobs in {1, 2, 8} and for shuffled worker claim orders (the proxy
// for member completion order: claims decide which members race first, so
// permuting them reorders every completion).

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "flexopt/core/portfolio.hpp"
#include "flexopt/gen/scenario.hpp"
#include "flexopt/util/rng.hpp"

namespace flexopt {
namespace {

constexpr int kScenarios = 50;
constexpr long kBudget = 72;  // split over the members below

ScenarioSpec random_spec(Rng& rng) {
  ScenarioSpec spec;
  spec.topology = static_cast<Topology>(rng.index(4));
  spec.traffic = TrafficMix::Mixed;
  SyntheticSpec& base = spec.base;
  base.nodes = static_cast<int>(rng.uniform_int(2, 4));
  base.tasks_per_graph = static_cast<int>(rng.uniform_int(2, 4));
  base.tasks_per_node = base.tasks_per_graph * static_cast<int>(rng.uniform_int(1, 2));
  base.tt_share = rng.uniform_real(0.2, 0.8);
  base.deadline_factor = rng.uniform_real(0.6, 1.2);
  base.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30));
  return spec;
}

SolveReport solve_portfolio(const Application& app, const BusParams& params, int jobs,
                            std::vector<int> claim_order, std::uint64_t seed) {
  PortfolioSpec spec;
  spec.members = {"sa", "sa", "obc-cf", "bbc"};
  spec.jobs = jobs;
  spec.seed = seed;
  spec.claim_order = std::move(claim_order);
  auto optimizer = OptimizerRegistry::create("portfolio", spec);
  if (!optimizer.ok()) throw std::runtime_error(optimizer.error().message);
  CostEvaluator evaluator(app, params, AnalysisOptions{});
  SolveRequest request;
  request.max_evaluations = kBudget;
  return optimizer.value()->solve(evaluator, request);
}

/// Everything except wall_seconds (the one documented observational field)
/// must match bit-for-bit.
void expect_identical(const SolveReport& a, const SolveReport& b, const std::string& label) {
  EXPECT_EQ(a.outcome.config, b.outcome.config) << label;
  EXPECT_EQ(a.outcome.cost.value, b.outcome.cost.value) << label;
  EXPECT_EQ(a.outcome.feasible, b.outcome.feasible) << label;
  EXPECT_EQ(a.outcome.evaluations, b.outcome.evaluations) << label;
  EXPECT_EQ(a.winner, b.winner) << label;
  EXPECT_EQ(a.status, b.status) << label;
  EXPECT_EQ(a.cache_hits, b.cache_hits) << label;
  EXPECT_EQ(a.cache_misses, b.cache_misses) << label;
  EXPECT_EQ(a.delta_evaluations, b.delta_evaluations) << label;
  ASSERT_EQ(a.members.size(), b.members.size()) << label;
  for (std::size_t i = 0; i < a.members.size(); ++i) {
    const MemberSolveReport& ma = a.members[i];
    const MemberSolveReport& mb = b.members[i];
    const std::string member_label = label + " member " + ma.member;
    EXPECT_EQ(ma.member, mb.member) << member_label;
    EXPECT_EQ(ma.seed, mb.seed) << member_label;
    EXPECT_EQ(ma.budget, mb.budget) << member_label;
    EXPECT_EQ(ma.winner, mb.winner) << member_label;
    EXPECT_EQ(ma.cost, mb.cost) << member_label;
    EXPECT_EQ(ma.feasible, mb.feasible) << member_label;
    EXPECT_EQ(ma.evaluations, mb.evaluations) << member_label;
    EXPECT_EQ(ma.status, mb.status) << member_label;
    ASSERT_EQ(ma.improvements.size(), mb.improvements.size()) << member_label;
    for (std::size_t e = 0; e < ma.improvements.size(); ++e) {
      EXPECT_EQ(ma.improvements[e].evaluations, mb.improvements[e].evaluations) << member_label;
      EXPECT_EQ(ma.improvements[e].cost, mb.improvements[e].cost) << member_label;
    }
  }
}

TEST(PortfolioProperty, WinnerIsBitIdenticalAcrossJobsAndClaimOrders) {
  BusParams params;
  Rng rng(0x90f7f0110u);
  int raced = 0;
  for (int trial = 0; trial < kScenarios; ++trial) {
    const ScenarioSpec spec = random_spec(rng);
    const std::string where = "trial " + std::to_string(trial) + " (" +
                              to_string(spec.topology) + ", seed " +
                              std::to_string(spec.base.seed) + ")";
    auto app = generate_scenario(spec, params);
    ASSERT_TRUE(app.ok()) << where << ": " << app.error().message;
    const std::uint64_t base_seed = spec.base.seed;

    const SolveReport reference =
        solve_portfolio(app.value(), params, /*jobs=*/1, /*claim_order=*/{}, base_seed);

    // Thread-count sweep: oversubscribed (8 on small machines) included.
    for (const int jobs : {2, 8}) {
      const SolveReport parallel =
          solve_portfolio(app.value(), params, jobs, {}, base_seed);
      expect_identical(reference, parallel, where + " jobs=" + std::to_string(jobs));
    }
    // Claim-order shuffles: reversed, and one derived permutation.
    const SolveReport reversed =
        solve_portfolio(app.value(), params, 2, {3, 2, 1, 0}, base_seed);
    expect_identical(reference, reversed, where + " reversed claims");
    const SolveReport shuffled =
        solve_portfolio(app.value(), params, 8, {2, 0, 3, 1}, base_seed);
    expect_identical(reference, shuffled, where + " shuffled claims");
    ++raced;
  }
  // The generator must not silently degenerate the suite.
  EXPECT_EQ(raced, kScenarios);
}

}  // namespace
}  // namespace flexopt
