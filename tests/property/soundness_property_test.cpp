// Property suite: on randomly generated systems and bus configurations,
// the holistic analysis must upper-bound every completion the simulator
// observes (analysis soundness), and the cost function must classify
// consistently.  Parameterized over seeds.

#include <gtest/gtest.h>

#include "flexopt/core/config_builder.hpp"
#include "flexopt/core/portfolio.hpp"
#include "flexopt/gen/synthetic.hpp"
#include "flexopt/sim/simulator.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

using testing::analyze;
using testing::make_layout;

struct Scenario {
  std::uint64_t seed;
  int nodes;
};

class SoundnessProperty : public ::testing::TestWithParam<Scenario> {};

/// Basic (BBC-style) configuration for a generated application.
BusConfig basic_config(const Application& app, const BusParams& params, int extra_minislots) {
  BusConfig config;
  config.frame_id = assign_frame_ids_by_criticality(app, params);
  const auto senders = st_sender_nodes(app);
  config.static_slot_count = static_cast<int>(senders.size());
  config.static_slot_len = min_static_slot_len(app, params);
  config.static_slot_owner = senders;
  const Time st_len = static_cast<Time>(config.static_slot_count) * config.static_slot_len;
  const DynBounds bounds = dyn_segment_bounds(app, params, st_len);
  config.minislot_count =
      std::min(bounds.max_minislots, bounds.min_minislots + extra_minislots);
  return config;
}

TEST_P(SoundnessProperty, AnalysisDominatesSimulation) {
  const Scenario scenario = GetParam();
  SyntheticSpec spec;
  spec.nodes = scenario.nodes;
  spec.seed = scenario.seed;
  BusParams params;
  params.gd_minislot = timeunits::us(5);

  auto generated = generate_synthetic(spec, params);
  ASSERT_TRUE(generated.ok()) << generated.error().message;
  const Application& app = generated.value();

  const BusConfig config = basic_config(app, params, /*extra_minislots=*/64);
  auto layout_or = BusLayout::build(app, params, config);
  ASSERT_TRUE(layout_or.ok()) << layout_or.error().message;
  const BusLayout& layout = layout_or.value();

  const AnalysisResult analysis = analyze(layout);
  auto sim = simulate(layout, analysis.schedule());
  ASSERT_TRUE(sim.ok()) << sim.error().message;
  const SimResult& observed = sim.value();

  EXPECT_EQ(observed.precedence_violations, 0);
  for (std::uint32_t t = 0; t < app.task_count(); ++t) {
    const Time o = observed.task_worst_completion[t];
    if (o == kTimeNone) continue;
    EXPECT_LE(o, analysis.task_completion[t])
        << "task " << app.tasks()[t].name << " (seed " << scenario.seed << ")";
  }
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    const Time o = observed.message_worst_completion[m];
    if (o == kTimeNone) continue;
    EXPECT_LE(o, analysis.message_completion[m])
        << "message " << app.messages()[m].name << " (seed " << scenario.seed << ")";
  }
}

TEST_P(SoundnessProperty, CostClassificationIsConsistent) {
  const Scenario scenario = GetParam();
  SyntheticSpec spec;
  spec.nodes = scenario.nodes;
  spec.seed = scenario.seed ^ 0xabcdef;
  BusParams params;
  params.gd_minislot = timeunits::us(5);

  auto generated = generate_synthetic(spec, params);
  ASSERT_TRUE(generated.ok());
  const Application& app = generated.value();

  const BusConfig config = basic_config(app, params, 64);
  auto layout_or = BusLayout::build(app, params, config);
  ASSERT_TRUE(layout_or.ok()) << layout_or.error().message;
  const AnalysisResult analysis = analyze(layout_or.value());

  // Schedulable <=> non-positive cost and no unbounded activities; the two
  // reporting paths must agree.
  if (analysis.cost.schedulable) {
    EXPECT_LE(analysis.cost.value, 0.0);
    EXPECT_EQ(analysis.cost.unbounded_activities, 0);
    for (const Time c : analysis.task_completion) EXPECT_NE(c, kTimeInfinity);
  } else {
    EXPECT_GT(analysis.cost.value, 0.0);
  }
}

TEST_P(SoundnessProperty, PortfolioWinnerIsAnalyzedAndSound) {
  // The incumbent path must never return an unanalyzed configuration: the
  // winner the portfolio reports has to re-analyze to the exact reported
  // cost, and its holistic bounds must dominate everything the simulator
  // observes — same contract as the hand-built configs above, but via the
  // racing path (member evaluators, shared incumbent, winner selection).
  const Scenario scenario = GetParam();
  SyntheticSpec spec;
  spec.nodes = scenario.nodes;
  spec.seed = scenario.seed ^ 0x90f7f0110;
  BusParams params;
  params.gd_minislot = timeunits::us(5);

  auto generated = generate_synthetic(spec, params);
  ASSERT_TRUE(generated.ok()) << generated.error().message;
  const Application& app = generated.value();

  PortfolioSpec portfolio;
  portfolio.members = {"bbc", "obc-cf", "sa"};
  auto optimizer = OptimizerRegistry::create("portfolio", portfolio);
  ASSERT_TRUE(optimizer.ok()) << optimizer.error().message;
  CostEvaluator evaluator(app, params, AnalysisOptions{});
  SolveRequest request;
  request.seed = scenario.seed;
  request.max_evaluations = 90;
  const SolveReport report = optimizer.value()->solve(evaluator, request);

  if (report.outcome.cost.value >= kInvalidConfigCost) {
    GTEST_SKIP() << "no analysable configuration under this budget";
  }
  auto layout_or = BusLayout::build(app, params, report.outcome.config);
  ASSERT_TRUE(layout_or.ok()) << "winner config does not build: "
                              << layout_or.error().message;
  const AnalysisResult analysis = analyze(layout_or.value());
  EXPECT_EQ(analysis.cost.value, report.outcome.cost.value)
      << "reported cost diverges from re-analysis (seed " << scenario.seed << ")";
  EXPECT_EQ(analysis.cost.schedulable, report.outcome.feasible);

  auto sim = simulate(layout_or.value(), analysis.schedule());
  ASSERT_TRUE(sim.ok()) << sim.error().message;
  const SimResult& observed = sim.value();
  EXPECT_EQ(observed.precedence_violations, 0);
  for (std::uint32_t t = 0; t < app.task_count(); ++t) {
    const Time o = observed.task_worst_completion[t];
    if (o == kTimeNone) continue;
    EXPECT_LE(o, analysis.task_completion[t])
        << "task " << app.tasks()[t].name << " (seed " << scenario.seed << ")";
  }
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    const Time o = observed.message_worst_completion[m];
    if (o == kTimeNone) continue;
    EXPECT_LE(o, analysis.message_completion[m])
        << "message " << app.messages()[m].name << " (seed " << scenario.seed << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SoundnessProperty,
    ::testing::Values(Scenario{1, 2}, Scenario{2, 2}, Scenario{3, 3}, Scenario{4, 3},
                      Scenario{5, 4}, Scenario{6, 4}, Scenario{7, 5}, Scenario{8, 5},
                      Scenario{9, 6}, Scenario{10, 7}),
    [](const ::testing::TestParamInfo<Scenario>& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_nodes" +
             std::to_string(param_info.param.nodes);
    });

}  // namespace
}  // namespace flexopt
