// Property suite for the multi-cluster pipeline: across random
// MultiCluster ScenarioSpecs (2-4 clusters, varying inter-cluster share),
// (a) the coordinate-descent solve with a racing portfolio is
// byte-identical between jobs=1 and a parallel run — the acceptance
// determinism contract — and (b) cluster delta evaluation matches full
// evaluation bit for bit on random cluster moves.  The population size is
// sized for the sanitize CI lane (Debug + ASan re-runs every evaluation
// cache-free through the in-tree bit-identity assertions, a ~100x
// multiplier over Release).

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "flexopt/core/portfolio.hpp"
#include "flexopt/core/solver.hpp"
#include "flexopt/gen/scenario.hpp"
#include "flexopt/io/solve_report_json.hpp"
#include "flexopt/util/rng.hpp"

namespace flexopt {
namespace {

constexpr int kScenarios = 12;
constexpr long kBudget = 72;

ScenarioSpec random_spec(Rng& rng) {
  ScenarioSpec spec;
  spec.topology = Topology::MultiCluster;
  spec.traffic = TrafficMix::DynOnly;
  spec.clusters = static_cast<int>(rng.uniform_int(2, 4));
  spec.inter_cluster_share = rng.uniform_real(0.1, 0.5);
  SyntheticSpec& base = spec.base;
  base.nodes = spec.clusters * static_cast<int>(rng.uniform_int(1, 2));
  base.tasks_per_graph = 4;
  base.tasks_per_node = 4 * static_cast<int>(rng.uniform_int(1, 2));
  base.deadline_factor = rng.uniform_real(1.5, 2.5);
  base.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30));
  return spec;
}

SystemModel make_model(const ScenarioSpec& spec, const BusParams& params) {
  auto app = generate_scenario(spec, params);
  if (!app.ok()) throw std::runtime_error(app.error().message);
  auto model = SystemModel::build(std::make_shared<const Application>(std::move(app).value()));
  if (!model.ok()) throw std::runtime_error(model.error().message);
  return std::move(model).value();
}

TEST(MulticlusterProperty, PortfolioDescentIsJobCountInvariant) {
  Rng rng(20260730);
  const BusParams params;
  for (int i = 0; i < kScenarios; ++i) {
    const ScenarioSpec spec = random_spec(rng);
    const SystemModel model = make_model(spec, params);
    auto solve = [&](int jobs) {
      PortfolioSpec portfolio;
      portfolio.members = {"sa", "obc-cf", "bbc"};
      portfolio.jobs = jobs;
      auto optimizer = OptimizerRegistry::create("portfolio", portfolio);
      if (!optimizer.ok()) throw std::runtime_error(optimizer.error().message);
      EvaluatorOptions options;
      options.threads = 1;
      CostEvaluator evaluator(model, params, AnalysisOptions{}, options);
      SolveRequest request;
      request.seed = spec.base.seed;
      request.max_evaluations = kBudget;
      const SolveReport report = optimizer.value()->solve(evaluator, request);
      return write_solve_json(*model.global(), "portfolio", report);
    };
    const std::string serial = solve(1);
    EXPECT_EQ(serial, solve(8)) << "scenario " << i << " seed " << spec.base.seed;
  }
}

TEST(MulticlusterProperty, ClusterDeltaMatchesFullEvaluation) {
  Rng rng(424242);
  const BusParams params;
  for (int i = 0; i < kScenarios; ++i) {
    const ScenarioSpec spec = random_spec(rng);
    const SystemModel model = make_model(spec, params);
    CostEvaluator evaluator(model, params, AnalysisOptions{});

    // Start from a solved-ish product (one cheap bbc descent), then walk a
    // short random chain of cluster moves comparing delta vs full.
    auto bbc = OptimizerRegistry::create("bbc");
    ASSERT_TRUE(bbc.ok());
    SolveRequest request;
    request.max_evaluations = 32;
    SystemConfig base = bbc.value()->solve(evaluator, request).outcome.system;
    ASSERT_EQ(base.cluster_count(), model.cluster_count());

    for (int step = 0; step < 4; ++step) {
      const int cluster = static_cast<int>(rng.index(model.cluster_count()));
      BusConfig next = base.clusters[static_cast<std::size_t>(cluster)].flexray;
      // Random admissible mutation: DYN length nudge or a FrameID swap
      // between two DYN messages (exercises the frame-id invalidation
      // path; an inadmissible swap makes delta and full both invalid,
      // which the equality assertions below still cover).
      std::vector<std::size_t> dyn_slots;
      for (std::size_t m = 0; m < next.frame_id.size(); ++m) {
        if (next.frame_id[m] > 0) dyn_slots.push_back(m);
      }
      if (rng.chance(0.5) || dyn_slots.size() < 2) {
        next.minislot_count += static_cast<int>(rng.uniform_int(1, 8));
      } else {
        const std::size_t a = dyn_slots[rng.index(dyn_slots.size())];
        const std::size_t b = dyn_slots[rng.index(dyn_slots.size())];
        std::swap(next.frame_id[a], next.frame_id[b]);
        if (a == b) next.minislot_count += 1;  // degenerate swap: still move
      }
      DeltaMove move = DeltaMove::between(
          base.clusters[static_cast<std::size_t>(cluster)].flexray, std::move(next));
      move.cluster = cluster;

      const auto delta = evaluator.evaluate_delta(base, move);
      CostEvaluator fresh(model, params, AnalysisOptions{});
      SystemConfig substituted = base;
      substituted.clusters[static_cast<std::size_t>(cluster)] =
          ClusterConfig::flexray_bus(move.config);
      const auto full = fresh.evaluate_system(substituted);
      ASSERT_EQ(delta.valid, full.valid) << "scenario " << i << " step " << step;
      if (!delta.valid) continue;
      EXPECT_EQ(delta.cost.value, full.cost.value) << "scenario " << i << " step " << step;
      EXPECT_EQ(delta.cost.schedulable, full.cost.schedulable);
      for (std::size_t c = 0; c < model.cluster_count(); ++c) {
        EXPECT_EQ(delta.cluster_analysis[c].task_completion,
                  full.cluster_analysis[c].task_completion);
        EXPECT_EQ(delta.cluster_analysis[c].message_completion,
                  full.cluster_analysis[c].message_completion);
      }
      base = std::move(substituted);
    }
  }
}

}  // namespace
}  // namespace flexopt
