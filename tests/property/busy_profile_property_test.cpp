// Property tests: BusyProfile's analytic queries must agree with a
// brute-force reference over randomly generated periodic profiles.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "flexopt/analysis/busy_profile.hpp"
#include "flexopt/util/rng.hpp"

namespace flexopt {
namespace {

struct RandomProfile {
  std::vector<Interval> intervals;
  Time period;
};

RandomProfile make_profile(std::uint64_t seed) {
  Rng rng(seed);
  RandomProfile p;
  p.period = 50 + rng.uniform_int(0, 150);  // small period => cheap brute force
  const int n = static_cast<int>(rng.uniform_int(0, 6));
  for (int i = 0; i < n; ++i) {
    const Time start = rng.uniform_int(0, p.period - 2);
    const Time end = start + rng.uniform_int(1, std::max<Time>(1, (p.period - start) / 2));
    p.intervals.push_back({start, std::min(end, p.period)});
  }
  return p;
}

/// Reference: busy time of [from, to) by per-tick scan.
Time brute_busy(const RandomProfile& p, Time from, Time to) {
  const auto merged = normalize_intervals(p.intervals);
  Time busy = 0;
  for (Time t = from; t < to; ++t) {
    const Time local = t % p.period;
    for (const Interval& iv : merged) {
      if (local >= iv.start && local < iv.end) {
        ++busy;
        break;
      }
    }
  }
  return busy;
}

class BusyProfileProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BusyProfileProperty, BusyBetweenMatchesBruteForce) {
  const RandomProfile p = make_profile(GetParam());
  const BusyProfile profile(p.intervals, p.period);
  Rng rng(GetParam() ^ 0x1234);
  for (int trial = 0; trial < 20; ++trial) {
    const Time from = rng.uniform_int(0, 3 * p.period);
    const Time to = from + rng.uniform_int(0, 2 * p.period);
    EXPECT_EQ(profile.busy_between(from, to), brute_busy(p, from, to))
        << "window [" << from << ", " << to << ") period " << p.period;
  }
}

TEST_P(BusyProfileProperty, MaxBusyWindowDominatesAllPlacements) {
  const RandomProfile p = make_profile(GetParam());
  const BusyProfile profile(p.intervals, p.period);
  Rng rng(GetParam() ^ 0x5678);
  for (int trial = 0; trial < 8; ++trial) {
    const Time w = rng.uniform_int(1, 2 * p.period);
    const Time claimed = profile.max_busy_in_window(w);
    // No window placement may beat the claimed maximum...
    Time best = 0;
    for (Time x = 0; x < p.period; ++x) {
      best = std::max(best, brute_busy(p, x, x + w));
    }
    EXPECT_EQ(claimed, best) << "w=" << w;
  }
}

TEST_P(BusyProfileProperty, EarliestGapIsIdleAndEarliest) {
  const RandomProfile p = make_profile(GetParam());
  const BusyProfile profile(p.intervals, p.period);
  Rng rng(GetParam() ^ 0x9abc);
  for (int trial = 0; trial < 10; ++trial) {
    const Time from = rng.uniform_int(0, 2 * p.period);
    const Time len = rng.uniform_int(1, p.period);
    const Time found = profile.earliest_gap(from, len);
    if (found == kTimeInfinity) {
      // Then no window of this length may exist anywhere in two periods.
      for (Time x = from; x < from + 2 * p.period; ++x) {
        EXPECT_NE(brute_busy(p, x, x + len), 0)
            << "claimed impossible but [" << x << ", " << x + len << ") is idle";
      }
      continue;
    }
    EXPECT_GE(found, from);
    EXPECT_EQ(brute_busy(p, found, found + len), 0) << "found window not idle";
    // No earlier idle window of the same length.
    for (Time x = from; x < found; ++x) {
      EXPECT_NE(brute_busy(p, x, x + len), 0)
          << "earlier idle window at " << x << " missed (found " << found << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BusyProfileProperty, ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace flexopt
