// Property suite for the network simulator: across random MultiCluster
// scenarios (2-4 clusters, every traffic mix) the observed completions of
// simulate_network never exceed the analyze_multicluster bounds — the
// executable soundness check behind the paper's holistic-analysis claims —
// and the serialized flexopt-netsim-trace/1 document is invariant under the
// portfolio's member-parallelism (jobs=1 vs jobs=8), mirroring the solver
// determinism suites.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "flexopt/analysis/multicluster.hpp"
#include "flexopt/core/config_builder.hpp"
#include "flexopt/core/portfolio.hpp"
#include "flexopt/gen/scenario.hpp"
#include "flexopt/netsim/netsim.hpp"
#include "flexopt/netsim/trace_json.hpp"
#include "flexopt/util/rng.hpp"

namespace flexopt {
namespace {

ScenarioSpec random_spec(Rng& rng, TrafficMix traffic) {
  ScenarioSpec spec;
  spec.topology = Topology::MultiCluster;
  spec.traffic = traffic;
  spec.clusters = static_cast<int>(rng.uniform_int(2, 4));
  spec.inter_cluster_share = rng.uniform_real(0.1, 0.5);
  SyntheticSpec& base = spec.base;
  base.nodes = spec.clusters * static_cast<int>(rng.uniform_int(1, 2));
  base.tasks_per_graph = 4;
  base.tasks_per_node = 4 * static_cast<int>(rng.uniform_int(1, 2));
  base.deadline_factor = rng.uniform_real(1.5, 2.5);
  base.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30));
  return spec;
}

/// Per-cluster minimal start configurations; nullopt-style empty config
/// when any cluster is infeasible under the minimal bounds.
bool start_configs(const SystemModel& model, const BusParams& params, SystemConfig* out) {
  for (std::size_t c = 0; c < model.cluster_count(); ++c) {
    const StartConfig start = minimal_start_config(*model.cluster_app(c), params);
    if (!start.bounds.feasible()) return false;
    out->clusters.push_back(ClusterConfig::flexray_bus(start.config));
  }
  return true;
}

TEST(NetsimProperty, ObservedCompletionsNeverExceedMulticlusterBounds) {
  Rng rng(57213);
  const BusParams params;
  int simulated = 0;
  for (int i = 0; i < 40 && simulated < 30; ++i) {
    // Cycle through every traffic mix so ST-, DYN- and mixed-segment
    // traffic all hit the cross-check.
    const ScenarioSpec spec = random_spec(rng, static_cast<TrafficMix>(i % 3));
    auto app = generate_scenario(spec, params);
    if (!app.ok()) continue;
    auto model =
        SystemModel::build(std::make_shared<const Application>(std::move(app).value()));
    ASSERT_TRUE(model.ok()) << model.error().message;
    SystemConfig config;
    if (!start_configs(model.value(), params, &config)) continue;
    auto layouts = build_system_layouts(model.value(), params, config);
    if (!layouts.ok()) continue;
    auto analysis = analyze_multicluster(model.value(), layouts.value(), AnalysisOptions{});
    ASSERT_TRUE(analysis.ok()) << analysis.error().message;

    auto result = simulate_network(model.value(), layouts.value(), analysis.value());
    ASSERT_TRUE(result.ok()) << result.error().message;
    ++simulated;
    EXPECT_EQ(result.value().precedence_violations, 0) << "seed " << spec.base.seed;

    const SoundnessReport report =
        check_soundness(model.value(), analysis.value(), result.value());
    EXPECT_GT(report.checked, 0u);
    EXPECT_TRUE(report.sound) << "seed " << spec.base.seed;
    for (const SoundnessViolation& v : report.violations) {
      ADD_FAILURE() << "cluster " << v.cluster << (v.task ? " task " : " message ") << v.name
                    << " observed " << v.observed << " > bound " << v.bound << " (seed "
                    << spec.base.seed << ")";
    }
  }
  // The population must actually exercise the cross-check (>= 25 scenarios
  // per the netsim acceptance bar).
  EXPECT_GE(simulated, 25);
}

TEST(NetsimProperty, TraceJsonIsPortfolioJobCountInvariant) {
  // The winner a racing portfolio reports is jobs-invariant; re-simulating
  // that winner must therefore produce byte-identical netsim trace JSON
  // whatever the member parallelism was.
  Rng rng(99173);
  const BusParams params;
  int compared = 0;
  for (int i = 0; i < 8 && compared < 3; ++i) {
    const ScenarioSpec spec = random_spec(rng, TrafficMix::Mixed);
    auto app = generate_scenario(spec, params);
    if (!app.ok()) continue;
    auto model =
        SystemModel::build(std::make_shared<const Application>(std::move(app).value()));
    ASSERT_TRUE(model.ok());
    const SystemModel& m = model.value();

    auto trace_json = [&](int jobs) -> std::string {
      PortfolioSpec portfolio;
      portfolio.members = {"sa", "obc-cf", "bbc"};
      portfolio.jobs = jobs;
      auto optimizer = OptimizerRegistry::create("portfolio", portfolio);
      if (!optimizer.ok()) throw std::runtime_error(optimizer.error().message);
      EvaluatorOptions evaluator_options;
      evaluator_options.threads = 1;
      CostEvaluator evaluator(m, params, AnalysisOptions{}, evaluator_options);
      SolveRequest request;
      request.seed = spec.base.seed;
      request.max_evaluations = 60;
      const SolveReport report = optimizer.value()->solve(evaluator, request);
      if (report.outcome.cost.value >= kInvalidConfigCost) return std::string();
      auto layouts = build_system_layouts(m, params, report.outcome.system);
      if (!layouts.ok()) return std::string();
      auto analysis = analyze_multicluster(m, layouts.value(), AnalysisOptions{});
      if (!analysis.ok()) return std::string();
      NetSimOptions options;
      options.record_trace = true;
      auto result = simulate_network(m, layouts.value(), analysis.value(), options);
      if (!result.ok()) throw std::runtime_error(result.error().message);
      const SoundnessReport soundness = check_soundness(m, analysis.value(), result.value());
      EXPECT_TRUE(soundness.sound) << "seed " << spec.base.seed << " jobs " << jobs;
      return write_netsim_trace_json(m, analysis.value(), result.value(), soundness,
                                     options.hyperperiods);
    };

    const std::string serial = trace_json(1);
    if (serial.empty()) continue;
    EXPECT_EQ(serial, trace_json(8)) << "scenario " << i << " seed " << spec.base.seed;
    ++compared;
  }
  EXPECT_GE(compared, 1);
}

}  // namespace
}  // namespace flexopt
