// Protocol invariants on randomly generated configurations: every layout
// that BusLayout::build accepts must satisfy the FlexRay limits, and every
// simulator trace must respect slot ownership, minislot bounds and the
// pLatestTx gate.

#include <gtest/gtest.h>

#include "flexopt/core/config_builder.hpp"
#include "flexopt/gen/synthetic.hpp"
#include "flexopt/sim/simulator.hpp"
#include "flexopt/util/rng.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

using testing::analyze;

class ProtocolProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolProperty, AcceptedLayoutsSatisfySpecLimits) {
  Rng rng(GetParam());
  SyntheticSpec spec;
  spec.nodes = 2 + static_cast<int>(rng.index(4));
  spec.seed = GetParam() * 7919;
  BusParams params;
  params.gd_minislot = timeunits::us(5);
  auto generated = generate_synthetic(spec, params);
  ASSERT_TRUE(generated.ok());
  const Application& app = generated.value();

  int accepted = 0;
  for (int trial = 0; trial < 40; ++trial) {
    BusConfig config;
    config.frame_id = rng.chance(0.5) ? assign_frame_ids_by_criticality(app, params)
                                      : assign_frame_ids_arbitrary(app);
    const auto senders = st_sender_nodes(app);
    const int extra = static_cast<int>(rng.uniform_int(0, 3));
    config.static_slot_count = static_cast<int>(senders.size()) + extra;
    config.static_slot_owner = assign_static_slots(app, config.static_slot_count);
    config.static_slot_len =
        min_static_slot_len(app, params) + params.gd_macrotick * rng.uniform_int(0, 50);
    config.minislot_count = static_cast<int>(rng.uniform_int(0, 2000));

    auto layout = BusLayout::build(app, params, config);
    if (!layout.ok()) continue;
    ++accepted;
    const BusLayout& l = layout.value();
    EXPECT_LE(l.cycle_len(), SpecLimits::kMaxCycle);
    EXPECT_LE(l.config().static_slot_count, SpecLimits::kMaxStaticSlots);
    EXPECT_LE(l.config().minislot_count, SpecLimits::kMaxMinislots);
    for (std::size_t n = 0; n < app.node_count(); ++n) {
      EXPECT_GE(l.p_latest_tx(static_cast<NodeId>(n)), 1);
      EXPECT_LE(l.p_latest_tx(static_cast<NodeId>(n)), l.config().minislot_count);
    }
    // Every DYN slot has exactly one owner and FrameIDs stay in range.
    for (std::uint32_t m = 0; m < app.message_count(); ++m) {
      if (app.messages()[m].cls != MessageClass::Dynamic) continue;
      const int fid = l.frame_id(static_cast<MessageId>(m));
      EXPECT_GE(fid, 1);
      EXPECT_LE(fid, l.config().minislot_count);
      NodeId owner{};
      ASSERT_TRUE(l.frame_id_owner(fid, &owner));
      EXPECT_EQ(owner, app.task(app.messages()[m].sender).node);
    }
  }
  EXPECT_GT(accepted, 0) << "random search never produced a valid layout";
}

TEST_P(ProtocolProperty, TraceRespectsSlotOwnershipAndSegmentBounds) {
  SyntheticSpec spec;
  spec.nodes = 3;
  spec.seed = GetParam();
  BusParams params;
  params.gd_minislot = timeunits::us(5);
  auto generated = generate_synthetic(spec, params);
  ASSERT_TRUE(generated.ok());
  const Application& app = generated.value();

  BusConfig config;
  config.frame_id = assign_frame_ids_by_criticality(app, params);
  const auto senders = st_sender_nodes(app);
  config.static_slot_count = static_cast<int>(senders.size());
  config.static_slot_len = min_static_slot_len(app, params);
  config.static_slot_owner = senders;
  const DynBounds bounds = dyn_segment_bounds(
      app, params, static_cast<Time>(config.static_slot_count) * config.static_slot_len);
  ASSERT_TRUE(bounds.feasible());
  config.minislot_count = std::min(bounds.max_minislots, bounds.min_minislots + 100);

  auto layout_or = BusLayout::build(app, params, config);
  ASSERT_TRUE(layout_or.ok()) << layout_or.error().message;
  const BusLayout& layout = layout_or.value();
  const AnalysisResult analysis = analyze(layout);

  SimOptions options;
  options.record_trace = true;
  auto sim = simulate(layout, analysis.schedule(), options);
  ASSERT_TRUE(sim.ok()) << sim.error().message;

  const Time cycle = layout.cycle_len();
  for (const TransmissionRecord& r : sim.value().trace) {
    const Time cycle_start = r.cycle * cycle;
    if (r.dynamic) {
      // DYN frames lie inside the DYN segment of their cycle and obey the
      // sender's pLatestTx gate.
      const Time seg_start = cycle_start + layout.st_segment_len();
      EXPECT_GE(r.start, seg_start);
      EXPECT_LE(r.finish, cycle_start + cycle);
      const NodeId sender = layout.application().task(
          layout.application().messages()[index_of(r.message)].sender).node;
      const auto counter = (r.start - seg_start) / layout.params().gd_minislot + 1;
      EXPECT_LE(counter, layout.p_latest_tx(sender));
    } else {
      // ST frames lie inside a slot owned by the sender's node.
      const Time slot_start = cycle_start + layout.static_slot_start(r.slot);
      EXPECT_GE(r.start, slot_start);
      EXPECT_LE(r.finish, slot_start + layout.config().static_slot_len);
      const NodeId owner = layout.config().static_slot_owner[static_cast<std::size_t>(r.slot)];
      const NodeId sender = layout.application().task(
          layout.application().messages()[index_of(r.message)].sender).node;
      EXPECT_EQ(owner, sender);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolProperty, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace flexopt
