#include "flexopt/util/time.hpp"

#include <gtest/gtest.h>

namespace flexopt {
namespace {

TEST(Time, UnitConversions) {
  EXPECT_EQ(timeunits::ns(7), 7);
  EXPECT_EQ(timeunits::us(3), 3'000);
  EXPECT_EQ(timeunits::ms(2), 2'000'000);
  EXPECT_EQ(timeunits::sec(1), 1'000'000'000);
}

TEST(Time, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(1, 5), 1);
  EXPECT_EQ(ceil_div(5, 5), 1);
  EXPECT_EQ(ceil_div(6, 5), 2);
  EXPECT_EQ(ceil_div(10, 3), 4);
}

TEST(Time, FormatScalesUnits) {
  EXPECT_EQ(format_time(timeunits::us(250)), "250 us");
  EXPECT_EQ(format_time(timeunits::ms(16)), "16 ms");
  EXPECT_EQ(format_time(500), "500 ns");
  EXPECT_EQ(format_time(timeunits::us(1) + 286), "1.286 us");
}

TEST(Time, FormatSentinels) {
  EXPECT_EQ(format_time(kTimeNone), "unset");
  EXPECT_EQ(format_time(kTimeInfinity), "inf");
}

TEST(Time, ToMicroseconds) {
  EXPECT_DOUBLE_EQ(to_us(timeunits::us(10)), 10.0);
  EXPECT_DOUBLE_EQ(to_us(1500), 1.5);
}

}  // namespace
}  // namespace flexopt
