#include "flexopt/util/stat.hpp"

#include <gtest/gtest.h>

#include "flexopt/util/bitset.hpp"

namespace flexopt {
namespace {

TEST(Histogram, StartsEmpty) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.max_bucket(), -1);
  for (const auto b : h.buckets()) EXPECT_EQ(b, 0u);
}

TEST(Histogram, BucketOfFollowsBitWidth) {
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(7), 3);
  EXPECT_EQ(Histogram::bucket_of(8), 4);
  EXPECT_EQ(Histogram::bucket_of(1024), 11);
  // Values past the last bucket boundary all land in the final bucket.
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_of(std::uint64_t{1} << 40), Histogram::kBuckets - 1);
}

TEST(Histogram, BucketBoundsAreInclusiveUppers) {
  EXPECT_EQ(Histogram::bucket_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_bound(2), 3u);
  EXPECT_EQ(Histogram::bucket_bound(3), 7u);
  EXPECT_EQ(Histogram::bucket_bound(Histogram::kBuckets - 1), ~std::uint64_t{0});
  // Every representable value falls inside its own bucket's bound.
  for (const std::uint64_t v : {0ull, 1ull, 2ull, 5ull, 63ull, 64ull, 1000ull}) {
    EXPECT_LE(v, Histogram::bucket_bound(Histogram::bucket_of(v))) << v;
  }
}

TEST(Histogram, RecordAccumulatesCountSumAndBuckets) {
  Histogram h;
  h.record(0);
  h.record(1);
  h.record(1);
  h.record(6);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 8u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_EQ(h.max_bucket(), 3);
}

TEST(Histogram, MergeAddsElementwise) {
  Histogram a;
  a.record(1);
  a.record(4);
  Histogram b;
  b.record(4);
  b.record(100);
  a += b;
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 109u);
  EXPECT_EQ(a.buckets()[1], 1u);
  EXPECT_EQ(a.buckets()[3], 2u);
  EXPECT_EQ(a.buckets()[7], 1u);
}

TEST(Histogram, SinceDiffsSnapshots) {
  Histogram h;
  h.record(2);
  h.record(9);
  const Histogram before = h;
  h.record(9);
  h.record(3);
  const Histogram delta = h.since(before);
  EXPECT_EQ(delta.count(), 2u);
  EXPECT_EQ(delta.sum(), 12u);
  EXPECT_EQ(delta.buckets()[2], 1u);
  EXPECT_EQ(delta.buckets()[4], 1u);
  EXPECT_EQ(delta.buckets()[1], 0u);
}

TEST(IndexBitset, ResetClearsAndSizes) {
  IndexBitset s;
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.any());
  s.reset(130);
  EXPECT_EQ(s.size(), 130u);
  EXPECT_FALSE(s.any());
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(s.test(i));
}

TEST(IndexBitset, SetTestAndResetBit) {
  IndexBitset s;
  s.reset(100);
  s.set(0);
  s.set(63);
  s.set(64);
  s.set(99);
  EXPECT_TRUE(s.test(0));
  EXPECT_TRUE(s.test(63));
  EXPECT_TRUE(s.test(64));
  EXPECT_TRUE(s.test(99));
  EXPECT_FALSE(s.test(1));
  EXPECT_FALSE(s.test(65));
  EXPECT_TRUE(s.any());
  s.reset_bit(63);
  EXPECT_FALSE(s.test(63));
  EXPECT_TRUE(s.test(64));
}

TEST(IndexBitset, TestSetReturnsPreviousValue) {
  IndexBitset s;
  s.reset(10);
  EXPECT_FALSE(s.test_set(3));
  EXPECT_TRUE(s.test_set(3));
  EXPECT_TRUE(s.test(3));
}

TEST(IndexBitset, ClearKeepsSize) {
  IndexBitset s;
  s.reset(70);
  s.set(5);
  s.set(69);
  s.clear();
  EXPECT_EQ(s.size(), 70u);
  EXPECT_FALSE(s.any());
}

TEST(IndexBitset, FillMasksTailBits) {
  IndexBitset s;
  s.reset(70);
  s.fill();
  for (std::size_t i = 0; i < 70; ++i) EXPECT_TRUE(s.test(i)) << i;
  EXPECT_TRUE(s.any());
  // A universe that is an exact multiple of the word size has no tail.
  IndexBitset whole;
  whole.reset(128);
  whole.fill();
  for (std::size_t i = 0; i < 128; ++i) EXPECT_TRUE(whole.test(i)) << i;
}

TEST(IndexBitset, ResetShrinksAndRegrows) {
  IndexBitset s;
  s.reset(200);
  s.fill();
  s.reset(40);
  EXPECT_EQ(s.size(), 40u);
  EXPECT_FALSE(s.any());
  s.reset(200);
  EXPECT_FALSE(s.any());
}

}  // namespace
}  // namespace flexopt
