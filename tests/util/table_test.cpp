#include "flexopt/util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace flexopt {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Header underline present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.rows(), 1u);
  std::ostringstream os;
  t.print(os);  // must not crash on missing cells
}

TEST(Table, WritesCsv) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
  EXPECT_EQ(fmt_percent(0.1234, 1), "12.3%");
}

}  // namespace
}  // namespace flexopt
