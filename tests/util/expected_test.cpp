#include "flexopt/util/expected.hpp"

#include <gtest/gtest.h>

namespace flexopt {
namespace {

TEST(Expected, HoldsValue) {
  Expected<int> e(42);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value(), 42);
}

TEST(Expected, HoldsError) {
  Expected<int> e(make_error("boom"));
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.error().message, "boom");
}

TEST(Expected, ValueOnErrorThrows) {
  Expected<int> e(make_error("nope"));
  EXPECT_THROW((void)e.value(), std::logic_error);
}

TEST(Expected, ErrorOnValueThrows) {
  Expected<int> e(7);
  EXPECT_THROW((void)e.error(), std::logic_error);
}

TEST(Expected, MoveOutValue) {
  Expected<std::string> e(std::string("payload"));
  const std::string s = std::move(e).value();
  EXPECT_EQ(s, "payload");
}

TEST(Expected, BoolConversion) {
  EXPECT_TRUE(static_cast<bool>(Expected<int>(1)));
  EXPECT_FALSE(static_cast<bool>(Expected<int>(make_error("x"))));
}

}  // namespace
}  // namespace flexopt
