#include "flexopt/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace flexopt {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
  }
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformRealRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(0.25, 0.75);
    EXPECT_GE(v, 0.25);
    EXPECT_LT(v, 0.75);
  }
}

TEST(Rng, IndexCoversRange) {
  Rng rng(11);
  std::vector<int> hits(5, 0);
  for (int i = 0; i < 2000; ++i) ++hits[rng.index(5)];
  for (const int h : hits) EXPECT_GT(h, 0);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(17);
  Rng child = parent.fork();
  // The child stream must differ from the parent's continued stream.
  bool differs = false;
  for (int i = 0; i < 10 && !differs; ++i) {
    differs = parent.uniform_int(0, 1 << 30) != child.uniform_int(0, 1 << 30);
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace flexopt
