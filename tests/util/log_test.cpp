#include "flexopt/util/log.hpp"

#include <gtest/gtest.h>

namespace flexopt {
namespace {

TEST(Log, LevelRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Off);
  EXPECT_EQ(log_level(), LogLevel::Off);
  set_log_level(before);
}

TEST(Log, EmitBelowLevelIsSilentAndSafe) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Off);
  // Nothing to assert on stderr without capturing; this exercises the
  // formatting path and the early-out.
  log_debug("value=", 42, " name=", "x");
  log_info("info line");
  log_warn("warn line");
  set_log_level(before);
}

}  // namespace
}  // namespace flexopt
