#include "flexopt/util/suggest.hpp"

#include <gtest/gtest.h>

#include <array>
#include <string_view>

namespace flexopt {
namespace {

TEST(Suggest, EditDistanceBasics) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", "abc"), 0u);
  EXPECT_EQ(edit_distance("", "abc"), 3u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
  EXPECT_EQ(edit_distance("exat", "exact"), 1u);    // insertion
  EXPECT_EQ(edit_distance("exacts", "exact"), 1u);  // deletion
  EXPECT_EQ(edit_distance("ezact", "exact"), 1u);   // substitution
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
}

TEST(Suggest, HintsOnlyOnNearMisses) {
  constexpr std::array<std::string_view, 3> candidates{"holistic", "exact", "simulate"};
  EXPECT_EQ(suggest_hint("exat", candidates), " (did you mean 'exact'?)");
  EXPECT_EQ(suggest_hint("holstic", candidates), " (did you mean 'holistic'?)");
  // Too far from everything: no hint rather than a misleading one.
  EXPECT_EQ(suggest_hint("oracle", candidates), "");
  // Short garbage must not match a long candidate just because the distance
  // happens to be small relative to nothing — the distance must be below
  // the given word's own length.
  EXPECT_EQ(suggest_hint("x", candidates), "");
  EXPECT_EQ(suggest_hint("", candidates), "");
}

}  // namespace
}  // namespace flexopt
