// Cross-cluster fixed-point analysis: degenerate bit-identity with
// analyze_system, gateway jitter coupling, end-to-end bounds, and the
// global Eq. 5 switch.

#include <gtest/gtest.h>

#include <memory>

#include "flexopt/analysis/multicluster.hpp"
#include "flexopt/analysis/sat_time.hpp"
#include "flexopt/core/config_builder.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

SystemConfig start_configs(const SystemModel& model, const BusParams& params) {
  SystemConfig config;
  for (std::size_t c = 0; c < model.cluster_count(); ++c) {
    config.clusters.push_back(
        ClusterConfig::flexray_bus(minimal_start_config(*model.cluster_app(c), params).config));
  }
  return config;
}

TEST(Multicluster, SingleClusterIsBitIdenticalToAnalyzeSystem) {
  testing::TinySystem tiny;
  auto model = SystemModel::build(std::make_shared<const Application>(tiny.app));
  ASSERT_TRUE(model.ok());
  auto layouts = build_system_layouts(model.value(), tiny.params,
                                      SystemConfig::single(tiny.config));
  ASSERT_TRUE(layouts.ok());

  auto combined = analyze_multicluster(model.value(), layouts.value(), AnalysisOptions{});
  ASSERT_TRUE(combined.ok());
  const AnalysisResult reference =
      testing::analyze(testing::make_layout(tiny.app, tiny.params, tiny.config));

  const AnalysisResult& cluster = combined.value().clusters[0];
  EXPECT_EQ(cluster.task_completion, reference.task_completion);
  EXPECT_EQ(cluster.message_completion, reference.message_completion);
  EXPECT_EQ(cluster.task_jitter, reference.task_jitter);
  EXPECT_EQ(cluster.message_jitter, reference.message_jitter);
  EXPECT_EQ(combined.value().cost.value, reference.cost.value);
  EXPECT_EQ(combined.value().cost.schedulable, reference.cost.schedulable);
  EXPECT_EQ(combined.value().converged, reference.converged);
}

TEST(Multicluster, GatewayJitterGatesDownstreamDelivery) {
  testing::TwoClusterSystem sys;
  auto model = SystemModel::build(std::make_shared<const Application>(sys.app));
  ASSERT_TRUE(model.ok());
  const SystemModel& m = model.value();
  const SystemConfig config = start_configs(m, sys.params);
  auto layouts = build_system_layouts(m, sys.params, config);
  ASSERT_TRUE(layouts.ok());

  auto result = analyze_multicluster(m, layouts.value(), AnalysisOptions{});
  ASSERT_TRUE(result.ok());
  const MulticlusterResult& r = result.value();
  ASSERT_TRUE(r.converged);
  // The coupling needs at least one extra sweep to propagate upstream
  // completions into cluster 1.
  EXPECT_GE(r.cross_iterations, 2);

  const RelayLink& link = m.relay_links()[0];
  const Time recv_done = r.clusters[0].task_completion[index_of(link.upstream_recv)];
  const Time send_jitter = r.clusters[1].task_jitter[index_of(link.downstream_send)];
  const Time send_done = r.clusters[1].task_completion[index_of(link.downstream_send)];
  ASSERT_FALSE(is_infinite(recv_done));
  // The forwarding relay's release jitter is floored at the upstream
  // receive relay's completion bound, and its own completion includes the
  // forwarding WCET on top.
  EXPECT_GE(send_jitter, recv_done);
  EXPECT_GE(send_done, send_jitter + m.options().relay_forward_wcet);

  // End-to-end: the final delivery hop completes after the upstream chain.
  const auto& hops = m.message_hops(sys.cross_msg);
  const Time hop0_done = r.clusters[0].message_completion[hops[0].index];
  const Time hop1_done = r.clusters[1].message_completion[hops[1].index];
  EXPECT_GT(hop1_done, hop0_done);
  EXPECT_GE(hop1_done, send_done);
}

TEST(Multicluster, CostAppliesGlobalSwitch) {
  // Make cluster 1's delivery miss its deadline by shrinking the graph
  // deadline; the *system* cost must flip to the overshoot sum even though
  // cluster 0 alone stays schedulable.
  testing::TwoClusterSystem sys;
  auto model0 = SystemModel::build(std::make_shared<const Application>(sys.app));
  ASSERT_TRUE(model0.ok());
  const SystemConfig config = start_configs(model0.value(), sys.params);
  auto layouts0 = build_system_layouts(model0.value(), sys.params, config);
  ASSERT_TRUE(layouts0.ok());
  auto healthy = analyze_multicluster(model0.value(), layouts0.value(), AnalysisOptions{});
  ASSERT_TRUE(healthy.ok());
  ASSERT_TRUE(healthy.value().cost.schedulable);

  // Tighten the deadline below the healthy end-to-end bound of the chain.
  const auto& hops = model0.value().message_hops(sys.cross_msg);
  const Time e2e = healthy.value().clusters[1].message_completion[hops[1].index];
  Application tightened = sys.app;
  tightened.set_graph_deadline(static_cast<GraphId>(0), e2e - timeunits::us(1));
  ASSERT_TRUE(tightened.finalize().ok());
  auto model1 = SystemModel::build(std::make_shared<const Application>(tightened));
  ASSERT_TRUE(model1.ok());
  auto layouts1 = build_system_layouts(model1.value(), sys.params, config);
  ASSERT_TRUE(layouts1.ok());
  auto missed = analyze_multicluster(model1.value(), layouts1.value(), AnalysisOptions{});
  ASSERT_TRUE(missed.ok());
  EXPECT_FALSE(missed.value().cost.schedulable);
  EXPECT_GT(missed.value().cost.value, 0.0);
}

TEST(Multicluster, ComponentCachesDoNotChangeResults) {
  testing::TwoClusterSystem sys;
  auto model = SystemModel::build(std::make_shared<const Application>(sys.app));
  ASSERT_TRUE(model.ok());
  const SystemConfig config = start_configs(model.value(), sys.params);
  auto layouts = build_system_layouts(model.value(), sys.params, config);
  ASSERT_TRUE(layouts.ok());

  AnalysisComponentCache cache0;
  AnalysisComponentCache cache1;
  AnalysisComponentCache* caches[] = {&cache0, &cache1};
  AnalysisWorkCounters counters;
  auto cached = analyze_multicluster(model.value(), layouts.value(), AnalysisOptions{},
                                     MulticlusterOptions{}, caches, &counters);
  auto fresh = analyze_multicluster(model.value(), layouts.value(), AnalysisOptions{});
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(fresh.ok());
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(cached.value().clusters[c].task_completion,
              fresh.value().clusters[c].task_completion);
    EXPECT_EQ(cached.value().clusters[c].message_completion,
              fresh.value().clusters[c].message_completion);
  }
  EXPECT_EQ(cached.value().cost.value, fresh.value().cost.value);
  // Schedule tables are jitter-independent: every cross sweep after the
  // first reuses them from the per-cluster caches.
  EXPECT_GT(counters.schedule_reuses, 0u);
}

}  // namespace
}  // namespace flexopt
