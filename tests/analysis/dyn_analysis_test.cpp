// DYN message WCRT analysis (Eqs. 2-3): sigma, BusCycles filling by hp/lf
// interference, the pLatestTx infeasibility case, and monotonicity
// properties the curve-fit heuristic relies on.

#include <gtest/gtest.h>

#include <vector>

#include "flexopt/analysis/dyn_analysis.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

using testing::make_layout;

constexpr Time kHorizon = timeunits::ms(100);

/// Two-node system with three DYN messages and a configurable DYN segment.
struct DynFixture {
  Application app;
  BusParams params = didactic_params();
  MessageId m1{};  // N0, FrameID 1, 3 minislots
  MessageId m2{};  // N1, FrameID 2, 2 minislots
  MessageId m3{};  // N0, FrameID 1 (shares with m1), lower priority, 2 slots

  DynFixture() {
    const NodeId n0 = app.add_node("N0");
    const NodeId n1 = app.add_node("N1");
    const GraphId g = app.add_graph("g", timeunits::us(200), timeunits::us(200));
    const TaskId s0 = app.add_task(g, "s0", n0, 1, TaskPolicy::Fps, 0);
    const TaskId s1 = app.add_task(g, "s1", n1, 1, TaskPolicy::Fps, 0);
    const TaskId r0 = app.add_task(g, "r0", n1, 1, TaskPolicy::Fps, 3);
    const TaskId r1 = app.add_task(g, "r1", n0, 1, TaskPolicy::Fps, 3);
    m1 = app.add_message(g, "m1", s0, r0, 3, MessageClass::Dynamic, 0);
    m2 = app.add_message(g, "m2", s1, r1, 2, MessageClass::Dynamic, 0);
    m3 = app.add_message(g, "m3", s0, r0, 2, MessageClass::Dynamic, 1);
    if (!app.finalize().ok()) throw std::runtime_error("fixture");
  }

  BusConfig config(int minislots, int f1 = 1, int f2 = 2, int f3 = 1) const {
    BusConfig c;
    c.static_slot_count = 0;
    c.minislot_count = minislots;
    c.frame_id.assign(app.message_count(), 0);
    c.frame_id[index_of(m1)] = f1;
    c.frame_id[index_of(m2)] = f2;
    c.frame_id[index_of(m3)] = f3;
    return c;
  }
};

TEST(DynAnalysis, SigmaDecreasesWithFrameId) {
  DynFixture f;
  const BusLayout layout = make_layout(f.app, f.params, f.config(10));
  // sigma = cycle - (ST + (fid-1)*ms); cycle = 10us, ST = 0.
  EXPECT_EQ(dyn_sigma(layout, f.m1), timeunits::us(10));
  EXPECT_EQ(dyn_sigma(layout, f.m2), timeunits::us(9));
}

TEST(DynAnalysis, UncontendedMessageBoundedByOneCyclePlusFrame) {
  DynFixture f;
  const BusLayout layout = make_layout(f.app, f.params, f.config(10));
  const std::vector<Time> jitters(f.app.message_count(), 0);
  const DynResponse r = dyn_response_time(layout, f.m1, jitters, kHorizon);
  ASSERT_TRUE(r.converged);
  // Worst case: ready just after the slot passed -> one full cycle (sigma +
  // w') + own frame: 10 + 3 = 13us.
  EXPECT_EQ(r.response, timeunits::us(13));
  EXPECT_TRUE(r.transmittable);
}

TEST(DynAnalysis, HigherPrioritySameFrameIdAddsWholeCycles) {
  DynFixture f;
  const BusLayout layout = make_layout(f.app, f.params, f.config(10));
  const std::vector<Time> jitters(f.app.message_count(), 0);
  const DynResponse r1 = dyn_response_time(layout, f.m1, jitters, kHorizon);
  const DynResponse r3 = dyn_response_time(layout, f.m3, jitters, kHorizon);
  ASSERT_TRUE(r3.converged);
  // m3 shares FrameID 1 with higher-priority m1: at least one extra cycle.
  EXPECT_GE(r3.response, r1.response + layout.cycle_len() - timeunits::us(1));
  EXPECT_GE(r3.bus_cycles, 1);
}

TEST(DynAnalysis, LowerFrameIdTrafficDelaysHigherFrameIds) {
  DynFixture f;
  // Unique FrameIDs; m2 behind m1.  Give m1 a release jitter above its
  // period so two instances land in m2's window: excess = 2 * 2 minislots.
  const BusLayout small = make_layout(f.app, f.params, f.config(6, 1, 2, 3));
  const BusLayout large = make_layout(f.app, f.params, f.config(30, 1, 2, 3));
  std::vector<Time> jitters(f.app.message_count(), 0);
  jitters[index_of(f.m1)] = timeunits::us(300);
  const DynResponse r_small = dyn_response_time(small, f.m2, jitters, kHorizon);
  const DynResponse r_large = dyn_response_time(large, f.m2, jitters, kHorizon);
  ASSERT_TRUE(r_small.converged);
  ASSERT_TRUE(r_large.converged);
  // Small segment: pLTx(N1) = 5, need = 4 <= excess -> one filled cycle.
  // Large segment: need = 28 > excess -> none.
  EXPECT_EQ(r_small.bus_cycles, 1);
  EXPECT_EQ(r_large.bus_cycles, 0);
  EXPECT_GT(r_small.bus_cycles, r_large.bus_cycles);
}

TEST(DynAnalysis, FrameIdBeyondPLatestTxIsUntransmittable) {
  DynFixture f;
  // 5 minislots, m2 (2 slots) on FrameID 5: pLTx(N1) = 5-2+1 = 4 < 5.
  const BusLayout layout = make_layout(f.app, f.params, f.config(5, 1, 5, 1));
  const std::vector<Time> jitters(f.app.message_count(), 0);
  const DynResponse r = dyn_response_time(layout, f.m2, jitters, kHorizon);
  EXPECT_FALSE(r.transmittable);
  EXPECT_EQ(r.response, kTimeInfinity);
}

TEST(DynAnalysis, InfiniteJitterYieldsInfiniteResponse) {
  DynFixture f;
  const BusLayout layout = make_layout(f.app, f.params, f.config(10));
  std::vector<Time> jitters(f.app.message_count(), 0);
  jitters[index_of(f.m1)] = kTimeInfinity;
  // m1 itself unbounded.
  EXPECT_EQ(dyn_response_time(layout, f.m1, jitters, kHorizon).response, kTimeInfinity);
  // And so is anything it interferes with (m3 shares its FrameID).
  EXPECT_EQ(dyn_response_time(layout, f.m3, jitters, kHorizon).response, kTimeInfinity);
}

TEST(DynAnalysis, ResponseIncludesOwnJitter) {
  DynFixture f;
  const BusLayout layout = make_layout(f.app, f.params, f.config(10));
  std::vector<Time> jitters(f.app.message_count(), 0);
  const Time base = dyn_response_time(layout, f.m1, jitters, kHorizon).response;
  jitters[index_of(f.m1)] = timeunits::us(5);
  const Time with_jitter = dyn_response_time(layout, f.m1, jitters, kHorizon).response;
  EXPECT_EQ(with_jitter, base + timeunits::us(5));
}

TEST(DynAnalysis, MonotoneInInterfererJitter) {
  DynFixture f;
  const BusLayout layout = make_layout(f.app, f.params, f.config(7, 1, 2, 3));
  std::vector<Time> jitters(f.app.message_count(), 0);
  const Time base = dyn_response_time(layout, f.m2, jitters, kHorizon).response;
  jitters[index_of(f.m1)] = timeunits::us(50);
  const Time bumped = dyn_response_time(layout, f.m2, jitters, kHorizon).response;
  EXPECT_GE(bumped, base);
}

}  // namespace
}  // namespace flexopt
