// Exact schedule-space backend conformance: the refined bounds must stay
// under the holistic reference everywhere (the clamp makes exact <=
// holistic structural, these tests pin it empirically too), dominance
// pruning must not change published bounds, and every path that cannot
// refine must record its ExactFallback on the result — never silently
// return holistic numbers as "exact".

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "flexopt/analysis/exact/exact_analysis.hpp"
#include "flexopt/analysis/incremental.hpp"
#include "flexopt/analysis/multicluster.hpp"
#include "flexopt/core/config_builder.hpp"
#include "flexopt/gen/synthetic.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

using testing::TinySystem;
using testing::TwoClusterSystem;
using testing::analyze;
using testing::make_layout;

AnalysisOptions exact_options() {
  AnalysisOptions options;
  options.mode = AnalysisMode::Exact;
  return options;
}

/// Entry-wise `lhs <= rhs` (infinite rhs covers everything).
void expect_bounded_by(const std::vector<Time>& lhs, const std::vector<Time>& rhs,
                       const char* what) {
  ASSERT_EQ(lhs.size(), rhs.size()) << what;
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_LE(lhs[i], rhs[i]) << what << "[" << i << "]";
  }
}

TEST(ExactAnalysis, TinySystemSandwichAndInfoAttached) {
  TinySystem tiny;
  const BusLayout layout = make_layout(tiny.app, tiny.params, tiny.config);
  const AnalysisResult holistic = analyze(layout);
  const AnalysisResult exact = analyze(layout, exact_options());

  ASSERT_TRUE(exact.converged);
  ASSERT_NE(exact.exact, nullptr);
  EXPECT_EQ(exact.exact->fallback, ExactFallback::None);
  EXPECT_GT(exact.exact->explored_states, 0u);
  expect_bounded_by(exact.task_completion, holistic.task_completion, "task");
  expect_bounded_by(exact.message_completion, holistic.message_completion, "message");
  // The DYN message is analysable on this system; its exact bound is finite.
  EXPECT_LT(exact.message_completion[index_of(tiny.dyn_msg)], kTimeInfinity);
  // The info carries the holistic reference so reports need no re-analysis.
  EXPECT_EQ(exact.exact->holistic_task_completion, holistic.task_completion);
  EXPECT_EQ(exact.exact->holistic_message_completion, holistic.message_completion);
}

TEST(ExactAnalysis, HolisticModeAttachesNoInfo) {
  TinySystem tiny;
  const BusLayout layout = make_layout(tiny.app, tiny.params, tiny.config);
  EXPECT_EQ(analyze(layout).exact, nullptr);
}

/// Section-7-style synthetic systems under their minimal start
/// configuration: exploration must refine some DYN bound strictly below
/// the holistic one (the nonzero-pessimism-gap acceptance criterion).
TEST(ExactAnalysis, SyntheticSystemsRefineUnderMinimalStart) {
  BusParams params;
  params.gd_bit = 100;
  params.gd_macrotick = timeunits::us(1);
  params.gd_minislot = timeunits::us(5);
  std::size_t refined_total = 0;
  std::size_t analysed = 0;
  for (int index = 0; index < 2; ++index) {
    SyntheticSpec spec;
    spec.nodes = 3;
    spec.deadline_factor = 0.7;
    spec.seed = 3000u + static_cast<std::uint64_t>(index);
    auto app = generate_synthetic(spec, params);
    ASSERT_TRUE(app.ok()) << app.error().message;
    const StartConfig start = minimal_start_config(app.value(), params);
    if (!start.bounds.feasible()) continue;
    const BusLayout layout = make_layout(app.value(), params, start.config);
    const AnalysisResult holistic = analyze(layout);
    const AnalysisResult exact = analyze(layout, exact_options());
    ASSERT_NE(exact.exact, nullptr);
    ASSERT_EQ(exact.exact->fallback, ExactFallback::None);
    expect_bounded_by(exact.task_completion, holistic.task_completion, "task");
    expect_bounded_by(exact.message_completion, holistic.message_completion, "message");
    refined_total += exact.exact->refined_messages;
    ++analysed;
  }
  ASSERT_GT(analysed, 0u);
  EXPECT_GT(refined_total, 0u);
}

TEST(ExactAnalysis, DominancePruningPreservesBounds) {
  BusParams params;
  params.gd_bit = 100;
  params.gd_macrotick = timeunits::us(1);
  params.gd_minislot = timeunits::us(5);
  SyntheticSpec spec;
  spec.nodes = 3;
  spec.deadline_factor = 0.7;
  spec.seed = 3000;
  auto app = generate_synthetic(spec, params);
  ASSERT_TRUE(app.ok()) << app.error().message;
  const StartConfig start = minimal_start_config(app.value(), params);
  ASSERT_TRUE(start.bounds.feasible());
  const BusLayout layout = make_layout(app.value(), params, start.config);

  AnalysisOptions pruned = exact_options();
  pruned.exact.prune_dominated = true;
  AnalysisOptions unpruned = exact_options();
  unpruned.exact.prune_dominated = false;
  const AnalysisResult a = analyze(layout, pruned);
  const AnalysisResult b = analyze(layout, unpruned);
  ASSERT_NE(a.exact, nullptr);
  ASSERT_NE(b.exact, nullptr);
  EXPECT_EQ(a.exact->fallback, ExactFallback::None);
  EXPECT_EQ(b.exact->fallback, ExactFallback::None);
  // Pruning only drops states whose reachable finishes are covered by a
  // surviving state, so the published bounds are identical.
  EXPECT_EQ(a.task_completion, b.task_completion);
  EXPECT_EQ(a.message_completion, b.message_completion);
  EXPECT_EQ(a.cost.value, b.cost.value);
  // The knob is alive: pruning merges states and shrinks the exploration.
  EXPECT_GT(a.exact->merged_states, 0u);
  EXPECT_LE(a.exact->explored_states, b.exact->explored_states);
}

TEST(ExactAnalysis, BudgetExceededFallsBackToHolisticAndRecords) {
  BusParams params;
  params.gd_bit = 100;
  params.gd_macrotick = timeunits::us(1);
  params.gd_minislot = timeunits::us(5);
  SyntheticSpec spec;
  spec.nodes = 3;
  spec.deadline_factor = 0.7;
  spec.seed = 3000;
  auto app = generate_synthetic(spec, params);
  ASSERT_TRUE(app.ok()) << app.error().message;
  const StartConfig start = minimal_start_config(app.value(), params);
  ASSERT_TRUE(start.bounds.feasible());
  const BusLayout layout = make_layout(app.value(), params, start.config);
  const AnalysisResult holistic = analyze(layout);
  AnalysisOptions options = exact_options();
  options.exact.max_states = 1;  // second frontier already over budget
  const AnalysisResult exact = analyze(layout, options);
  ASSERT_NE(exact.exact, nullptr);
  EXPECT_EQ(exact.exact->fallback, ExactFallback::BudgetExceeded);
  EXPECT_EQ(exact.exact->refined_messages, 0u);
  // Fallback keeps the holistic bounds exactly — no partial refinement.
  EXPECT_EQ(exact.task_completion, holistic.task_completion);
  EXPECT_EQ(exact.message_completion, holistic.message_completion);
}

/// A zero exploration budget is a configuration error, not an exploration
/// outcome: it must surface as the InvalidOptions diagnostic (before any
/// other fallback classification), never as a silently "converged" empty
/// exploration or a budget-exceeded run that did no work.
TEST(ExactAnalysis, ZeroBudgetsRecordInvalidOptions) {
  TinySystem tiny;
  const BusLayout layout = make_layout(tiny.app, tiny.params, tiny.config);
  const AnalysisResult holistic = analyze(layout);
  for (const bool zero_states : {true, false}) {
    AnalysisOptions options = exact_options();
    if (zero_states) {
      options.exact.max_states = 0;
    } else {
      options.exact.max_branch_messages = 0;
    }
    const AnalysisResult exact = analyze(layout, options);
    ASSERT_NE(exact.exact, nullptr);
    EXPECT_EQ(exact.exact->fallback, ExactFallback::InvalidOptions);
    EXPECT_EQ(exact.exact->explored_states, 0u);
    EXPECT_EQ(exact.exact->refined_messages, 0u);
    EXPECT_EQ(exact.task_completion, holistic.task_completion);
    EXPECT_EQ(exact.message_completion, holistic.message_completion);
  }
  EXPECT_STREQ(to_string(ExactFallback::InvalidOptions), "invalid-options");
}

/// The validation outranks every other fallback reason: even a system the
/// exploration would skip anyway (no DYN messages) reports the bad options
/// first — the diagnostic points at the caller's mistake, not the workload.
TEST(ExactAnalysis, InvalidOptionsOutranksNoDynMessages) {
  TinySystem tiny;
  const BusLayout layout = make_layout(tiny.app, tiny.params, tiny.config);
  AnalysisOptions options = exact_options();
  options.exact.max_states = 0;
  options.exact.max_branch_messages = 0;
  const AnalysisResult exact = analyze(layout, options);
  ASSERT_NE(exact.exact, nullptr);
  EXPECT_EQ(exact.exact->fallback, ExactFallback::InvalidOptions);
}

/// Worker count must never leak into results: the full ExactClusterInfo —
/// bounds, counters, transitions — is bit-identical for any jobs value
/// (0 = hardware included).
TEST(ExactAnalysis, WorkerCountPreservesResultsBitIdentically) {
  BusParams params;
  params.gd_bit = 100;
  params.gd_macrotick = timeunits::us(1);
  params.gd_minislot = timeunits::us(5);
  SyntheticSpec spec;
  spec.nodes = 3;
  spec.deadline_factor = 0.7;
  spec.seed = 3000;
  auto app = generate_synthetic(spec, params);
  ASSERT_TRUE(app.ok()) << app.error().message;
  const StartConfig start = minimal_start_config(app.value(), params);
  ASSERT_TRUE(start.bounds.feasible());
  const BusLayout layout = make_layout(app.value(), params, start.config);

  AnalysisOptions reference_options = exact_options();
  reference_options.exact.jobs = 1;
  const AnalysisResult reference = analyze(layout, reference_options);
  ASSERT_NE(reference.exact, nullptr);
  ASSERT_EQ(reference.exact->fallback, ExactFallback::None);
  for (const int jobs : {0, 2, 8}) {
    AnalysisOptions options = exact_options();
    options.exact.jobs = jobs;
    const AnalysisResult parallel = analyze(layout, options);
    ASSERT_NE(parallel.exact, nullptr) << "jobs=" << jobs;
    EXPECT_EQ(parallel.exact->fallback, reference.exact->fallback) << "jobs=" << jobs;
    EXPECT_EQ(parallel.exact->explored_states, reference.exact->explored_states)
        << "jobs=" << jobs;
    EXPECT_EQ(parallel.exact->merged_states, reference.exact->merged_states)
        << "jobs=" << jobs;
    EXPECT_EQ(parallel.exact->transitions, reference.exact->transitions) << "jobs=" << jobs;
    EXPECT_EQ(parallel.exact->refined_messages, reference.exact->refined_messages)
        << "jobs=" << jobs;
    EXPECT_EQ(parallel.task_completion, reference.task_completion) << "jobs=" << jobs;
    EXPECT_EQ(parallel.message_completion, reference.message_completion) << "jobs=" << jobs;
    EXPECT_EQ(parallel.cost.value, reference.cost.value) << "jobs=" << jobs;
  }
}

/// The exact-space store makes repeat analyses of unchanged DYN inputs
/// incremental: the second analysis through the same cache replays the
/// stored frontier (counted as a reuse, zero new states) and returns a
/// bit-identical result.
TEST(ExactAnalysis, ComponentCacheReusesExploration) {
  BusParams params;
  params.gd_bit = 100;
  params.gd_macrotick = timeunits::us(1);
  params.gd_minislot = timeunits::us(5);
  SyntheticSpec spec;
  spec.nodes = 3;
  spec.deadline_factor = 0.7;
  spec.seed = 3000;
  auto app = generate_synthetic(spec, params);
  ASSERT_TRUE(app.ok()) << app.error().message;
  const StartConfig start = minimal_start_config(app.value(), params);
  ASSERT_TRUE(start.bounds.feasible());
  const BusLayout layout = make_layout(app.value(), params, start.config);

  AnalysisComponentCache cache;
  AnalysisWorkCounters counters;
  auto first = analyze_system_exact(layout, exact_options(), &counters, {}, &cache);
  ASSERT_TRUE(first.ok()) << first.error().message;
  ASSERT_NE(first.value().exact, nullptr);
  ASSERT_EQ(first.value().exact->fallback, ExactFallback::None);
  EXPECT_EQ(counters.exact_frontier_reused, 0u);
  EXPECT_EQ(counters.exact_states_explored, first.value().exact->explored_states);

  const AnalysisWorkCounters cold = counters;
  auto second = analyze_system_exact(layout, exact_options(), &counters, {}, &cache);
  ASSERT_TRUE(second.ok()) << second.error().message;
  const AnalysisWorkCounters warm = counters.since(cold);
  EXPECT_EQ(warm.exact_frontier_reused, 1u);
  EXPECT_EQ(warm.exact_states_explored, 0u);
  ASSERT_NE(second.value().exact, nullptr);
  EXPECT_EQ(second.value().exact->explored_states, first.value().exact->explored_states);
  EXPECT_EQ(second.value().exact->merged_states, first.value().exact->merged_states);
  EXPECT_EQ(second.value().exact->transitions, first.value().exact->transitions);
  EXPECT_EQ(second.value().task_completion, first.value().task_completion);
  EXPECT_EQ(second.value().message_completion, first.value().message_completion);

  // Opting out of reuse bypasses the store even when a cache is supplied.
  AnalysisOptions no_reuse = exact_options();
  no_reuse.exact.reuse_base_frontier = false;
  const AnalysisWorkCounters before_optout = counters;
  auto third = analyze_system_exact(layout, no_reuse, &counters, {}, &cache);
  ASSERT_TRUE(third.ok()) << third.error().message;
  const AnalysisWorkCounters optout = counters.since(before_optout);
  EXPECT_EQ(optout.exact_frontier_reused, 0u);
  EXPECT_EQ(optout.exact_states_explored, first.value().exact->explored_states);
}

TEST(ExactAnalysis, TtOnlySystemRecordsNoDynMessages) {
  // TT-only half of TinySystem: SCS producer/consumer plus one ST message.
  Application app;
  const BusParams params = didactic_params();
  const NodeId n0 = app.add_node("N0");
  const NodeId n1 = app.add_node("N1");
  const GraphId tt = app.add_graph("tt", timeunits::us(100), timeunits::us(100));
  const TaskId producer = app.add_task(tt, "producer", n0, timeunits::us(2), TaskPolicy::Scs);
  const TaskId consumer = app.add_task(tt, "consumer", n1, timeunits::us(2), TaskPolicy::Scs);
  app.add_message(tt, "st", producer, consumer, 4, MessageClass::Static);
  ASSERT_TRUE(app.finalize().ok());
  BusConfig config;
  config.static_slot_count = 2;
  config.static_slot_len = timeunits::us(5);
  config.static_slot_owner = {n0, n1};
  config.minislot_count = 8;
  config.frame_id.assign(app.message_count(), 0);

  const BusLayout layout = make_layout(app, params, config);
  const AnalysisResult holistic = analyze(layout);
  const AnalysisResult exact = analyze(layout, exact_options());
  ASSERT_NE(exact.exact, nullptr);
  EXPECT_EQ(exact.exact->fallback, ExactFallback::NoDynMessages);
  EXPECT_EQ(exact.exact->explored_states, 0u);
  EXPECT_EQ(exact.task_completion, holistic.task_completion);
  EXPECT_EQ(exact.message_completion, holistic.message_completion);
}

/// Mixed FlexRay+TSN system through the multicluster entry point: the TSN
/// cluster has no exact backend and must say so per cluster, while the
/// FlexRay cluster still carries an info record.
TEST(ExactAnalysis, TsnClusterRecordsUnsupportedBackend) {
  TwoClusterSystem sys;
  sys.app.set_cluster_backend(static_cast<ClusterId>(1), ClusterBackendKind::Tsn);
  ASSERT_TRUE(sys.app.finalize().ok());
  auto built = SystemModel::build(std::make_shared<const Application>(sys.app));
  ASSERT_TRUE(built.ok()) << built.error().message;
  const SystemModel& model = built.value();
  SystemConfig config;
  for (std::size_t c = 0; c < model.cluster_count(); ++c) {
    config.clusters.push_back(minimal_start_cluster_config(
        *model.cluster_app(c), sys.params,
        model.cluster_app(c)->cluster_backend(ClusterId{0})));
  }
  auto layouts = build_system_layouts(model, sys.params, config);
  ASSERT_TRUE(layouts.ok()) << layouts.error().message;

  auto holistic = analyze_multicluster(model, layouts.value(), AnalysisOptions{});
  ASSERT_TRUE(holistic.ok()) << holistic.error().message;
  auto exact = analyze_multicluster(model, layouts.value(), exact_options());
  ASSERT_TRUE(exact.ok()) << exact.error().message;
  ASSERT_EQ(exact.value().clusters.size(), 2u);

  const AnalysisResult& flexray = exact.value().clusters[0];
  const AnalysisResult& tsn = exact.value().clusters[1];
  ASSERT_NE(flexray.exact, nullptr);
  ASSERT_NE(tsn.exact, nullptr);
  EXPECT_EQ(tsn.exact->fallback, ExactFallback::UnsupportedBackend);
  EXPECT_EQ(tsn.exact->explored_states, 0u);
  // The TSN cluster has no exploration of its own, but the FlexRay
  // refinement propagates tighter jitter across the gateway, so its bounds
  // may still tighten in the capped cross-cluster re-run — the sandwich
  // below is the invariant, not equality.
  for (std::size_t c = 0; c < 2; ++c) {
    expect_bounded_by(exact.value().clusters[c].task_completion,
                      holistic.value().clusters[c].task_completion, "task");
    expect_bounded_by(exact.value().clusters[c].message_completion,
                      holistic.value().clusters[c].message_completion, "message");
  }

  // The pessimism report surfaces the per-cluster fallback and flags it.
  std::vector<const Application*> apps;
  for (std::size_t c = 0; c < model.cluster_count(); ++c) {
    apps.push_back(model.cluster_app(c).get());
  }
  const PessimismReport report = make_pessimism_report(apps, exact.value().clusters);
  ASSERT_EQ(report.cluster_fallbacks.size(), 2u);
  EXPECT_EQ(report.cluster_fallbacks[1], ExactFallback::UnsupportedBackend);
  EXPECT_TRUE(report.any_fallback);
}

TEST(ExactAnalysis, ModeStringsRoundTrip) {
  for (const AnalysisMode mode :
       {AnalysisMode::Holistic, AnalysisMode::Exact, AnalysisMode::Simulate}) {
    const auto parsed = parse_analysis_mode(to_string(mode));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), mode);
  }
  EXPECT_FALSE(parse_analysis_mode("magic").ok());
}

TEST(ExactAnalysis, ModeParseErrorSuggestsNearMiss) {
  const auto near = parse_analysis_mode("exat");
  ASSERT_FALSE(near.ok());
  EXPECT_NE(near.error().message.find("did you mean 'exact'?"), std::string::npos)
      << near.error().message;
  // A distant typo gets the plain error — no misleading suggestion.
  const auto far = parse_analysis_mode("magic");
  ASSERT_FALSE(far.ok());
  EXPECT_EQ(far.error().message.find("did you mean"), std::string::npos)
      << far.error().message;
}

}  // namespace
}  // namespace flexopt
