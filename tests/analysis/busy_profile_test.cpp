#include "flexopt/analysis/busy_profile.hpp"

#include <gtest/gtest.h>

namespace flexopt {
namespace {

TEST(NormalizeIntervals, MergesAndSorts) {
  auto merged = normalize_intervals({{5, 8}, {1, 3}, {2, 4}, {8, 9}});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0], (Interval{1, 4}));
  EXPECT_EQ(merged[1], (Interval{5, 9}));
}

TEST(NormalizeIntervals, DropsEmpty) {
  auto merged = normalize_intervals({{3, 3}, {5, 4}});
  EXPECT_TRUE(merged.empty());
}

TEST(BusyProfile, BusyBetweenWithinPeriod) {
  const BusyProfile p({{2, 4}, {6, 9}}, 10);
  EXPECT_EQ(p.busy_per_period(), 5);
  EXPECT_EQ(p.busy_between(0, 10), 5);
  EXPECT_EQ(p.busy_between(0, 3), 1);
  EXPECT_EQ(p.busy_between(3, 7), 2);
  EXPECT_EQ(p.busy_between(4, 6), 0);
}

TEST(BusyProfile, BusyBetweenAcrossPeriods) {
  const BusyProfile p({{2, 4}}, 10);
  EXPECT_EQ(p.busy_between(0, 20), 4);
  EXPECT_EQ(p.busy_between(3, 13), 1 + 1);   // tail of first + head of second
  EXPECT_EQ(p.busy_between(5, 35), 6);
}

TEST(BusyProfile, MaxBusyInWindow) {
  const BusyProfile p({{0, 3}, {5, 6}}, 10);
  EXPECT_EQ(p.max_busy_in_window(3), 3);
  EXPECT_EQ(p.max_busy_in_window(6), 4);   // [0,6): 3 + 1
  EXPECT_EQ(p.max_busy_in_window(10), 4);
  EXPECT_EQ(p.max_busy_in_window(20), 8);
  EXPECT_EQ(p.max_busy_in_window(0), 0);
}

TEST(BusyProfile, MaxBusyWindowStraddlesPeriodBoundary) {
  // Busy at the end and the start of the period: a straddling window sees
  // both.
  const BusyProfile p({{8, 10}, {0, 2}}, 10);
  EXPECT_EQ(p.max_busy_in_window(4), 4);
}

TEST(BusyProfile, EmptyProfile) {
  const BusyProfile p({}, 10);
  EXPECT_EQ(p.max_busy_in_window(100), 0);
  EXPECT_EQ(p.busy_between(3, 33), 0);
  EXPECT_EQ(p.earliest_gap(7, 10), 7);
}

TEST(BusyProfile, EarliestGapBasics) {
  const BusyProfile p({{2, 4}, {6, 9}}, 10);
  EXPECT_EQ(p.earliest_gap(0, 2), 0);   // [0,2) free
  EXPECT_EQ(p.earliest_gap(1, 2), 4);   // [1,3) blocked; [4,6) free
  EXPECT_EQ(p.earliest_gap(3, 1), 4);
  EXPECT_EQ(p.earliest_gap(7, 2), 9);   // wraps into [9,10)+[10,11)
}

TEST(BusyProfile, EarliestGapTooLong) {
  const BusyProfile p({{0, 9}}, 10);
  EXPECT_EQ(p.earliest_gap(0, 2), kTimeInfinity);  // largest gap is 1
  EXPECT_EQ(p.earliest_gap(0, 1), 9);
}

TEST(BusyProfile, EarliestGapSpansPeriods) {
  // Free [5,10) then [10,13): a 8-long window at 5 fits ([5,13)).
  const BusyProfile p({{0, 5}}, 10);
  EXPECT_EQ(p.earliest_gap(4, 8), kTimeInfinity);  // gap is only 5 per period
  EXPECT_EQ(p.earliest_gap(4, 5), 5);
}

TEST(BusyProfile, ClampsOutOfRangeIntervals) {
  const BusyProfile p({{-5, 3}, {8, 15}}, 10);
  EXPECT_EQ(p.busy_per_period(), 3 + 2);
}

}  // namespace
}  // namespace flexopt
