// The TSN cluster backend: TsnLayout validation and derived geometry,
// gate-occurrence placement in build_tsn_schedule, and the holistic
// analysis contract of analyze_tsn_cluster (convergence, jitter
// monotonicity, guard-band starvation pinning).

#include <gtest/gtest.h>

#include "flexopt/analysis/sat_time.hpp"
#include "flexopt/analysis/tsn_analysis.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

using testing::TinySystem;

/// A valid TSN config for TinySystem: 50us gating cycle (divides the 100us
/// hyper-period), an exact-fit window for the one ST message at offset
/// 4000ns, criticality-free ET priorities.
TsnConfig tiny_tsn_config(const TinySystem& tiny) {
  TsnConfig config;
  config.cycle = timeunits::us(50);
  config.link_rate_mbps = 100;
  config.gates.assign(tiny.app.message_count(), TsnGateWindow{});
  config.et_priority.assign(tiny.app.message_count(), 0);
  const Time st_wire = tsn_frame_duration(4, config.link_rate_mbps);
  config.gates[index_of(tiny.st_msg)] = TsnGateWindow{4000, st_wire};
  return config;
}

TEST(TsnLayout, BuildDerivesGeometry) {
  TinySystem tiny;
  auto layout = TsnLayout::build(tiny.app, tiny_tsn_config(tiny));
  ASSERT_TRUE(layout.ok()) << layout.error().message;
  const TsnLayout& l = layout.value();

  EXPECT_EQ(l.cycle_len(), timeunits::us(50));
  // (4 + 42) * 8 = 368 bits at 100 Mbit/s -> 3680 ns.
  EXPECT_EQ(l.duration(tiny.st_msg), 3680);
  // (2 + 42) * 8 = 352 bits -> 3520 ns.
  EXPECT_EQ(l.duration(tiny.dyn_msg), 3520);

  // Egress port = receiver node: st producer->consumer@N1, dyn fps->sink@N0.
  EXPECT_EQ(l.egress_port(tiny.st_msg), 1u);
  EXPECT_EQ(l.egress_port(tiny.dyn_msg), 0u);

  ASSERT_EQ(l.port_windows(1).size(), 1u);
  EXPECT_EQ(l.port_windows(1)[0].start, 4000);
  EXPECT_EQ(l.port_windows(1)[0].end, 4000 + 3680);
  EXPECT_TRUE(l.port_windows(0).empty());
  EXPECT_EQ(l.port_closed_per_cycle(1), 3680);
  EXPECT_EQ(l.port_closed_per_cycle(0), 0);
  EXPECT_EQ(l.port_max_et_frame(0), 3520);
  EXPECT_EQ(l.port_max_et_frame(1), 0);

  EXPECT_EQ(l.st_ordinal(tiny.st_msg), 0);
  EXPECT_EQ(l.st_ordinal(tiny.dyn_msg), -1);
}

TEST(TsnLayout, BuildRejectsMalformedConfigs) {
  TinySystem tiny;
  {
    TsnConfig bad = tiny_tsn_config(tiny);
    bad.cycle = timeunits::us(30);  // does not divide the 100us hyper-period
    auto r = TsnLayout::build(tiny.app, bad);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("divide the hyper-period"), std::string::npos);
  }
  {
    TsnConfig bad = tiny_tsn_config(tiny);
    bad.gates[index_of(tiny.st_msg)].length = 100;  // shorter than the frame
    EXPECT_FALSE(TsnLayout::build(tiny.app, bad).ok());
  }
  {
    TsnConfig bad = tiny_tsn_config(tiny);
    bad.gates[index_of(tiny.dyn_msg)] = TsnGateWindow{0, 1000};  // ET window
    EXPECT_FALSE(TsnLayout::build(tiny.app, bad).ok());
  }
  {
    TsnConfig bad = tiny_tsn_config(tiny);
    bad.gates.pop_back();  // table size mismatch
    EXPECT_FALSE(TsnLayout::build(tiny.app, bad).ok());
  }
  {
    TsnConfig bad = tiny_tsn_config(tiny);
    bad.gates[index_of(tiny.st_msg)].offset = timeunits::us(49);  // past cycle end
    EXPECT_FALSE(TsnLayout::build(tiny.app, bad).ok());
  }
}

TEST(TsnSchedule, StInstancesTakeGateOccurrences) {
  TinySystem tiny;
  auto layout = TsnLayout::build(tiny.app, tiny_tsn_config(tiny));
  ASSERT_TRUE(layout.ok());
  auto schedule = build_tsn_schedule(layout.value());
  ASSERT_TRUE(schedule.ok()) << schedule.error().message;

  // One instance per 100us hyper-period.  The producer finishes at 2us, the
  // first gate occurrence at or after that is offset 4000 of cycle 0.
  const auto& entries = schedule.value().message_entries(tiny.st_msg);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].start, 4000);
  EXPECT_EQ(entries[0].finish, 4000 + 3680);
  EXPECT_EQ(entries[0].slot, 0);  // st_ordinal
}

TEST(TsnAnalysis, ConvergesAndBoundsEveryActivity) {
  TinySystem tiny;
  auto layout = TsnLayout::build(tiny.app, tiny_tsn_config(tiny));
  ASSERT_TRUE(layout.ok());
  auto result = analyze_tsn_cluster(layout.value());
  ASSERT_TRUE(result.ok()) << result.error().message;
  const AnalysisResult& r = result.value();

  EXPECT_TRUE(r.converged);
  // The ST chain completes exactly as scheduled.
  EXPECT_EQ(r.message_completion[index_of(tiny.st_msg)], 4000 + 3680);
  // The lone ET message on its port still pays its own wire time and any
  // jitter, and the bound must stay within the 100us period (schedulable).
  const Time dyn = r.message_completion[index_of(tiny.dyn_msg)];
  EXPECT_GE(dyn, 3520);
  EXPECT_LE(dyn, timeunits::us(100));
  EXPECT_TRUE(r.cost.schedulable);
}

TEST(TsnAnalysis, MonotoneInExternalJitter) {
  TinySystem tiny;
  auto layout = TsnLayout::build(tiny.app, tiny_tsn_config(tiny));
  ASSERT_TRUE(layout.ok());
  auto base = analyze_tsn_cluster(layout.value());
  ASSERT_TRUE(base.ok());

  std::vector<Time> jitter(tiny.app.task_count(), 0);
  jitter[index_of(tiny.fps_task)] = timeunits::us(10);
  auto shifted = analyze_tsn_cluster(layout.value(), AnalysisOptions{}, nullptr, jitter);
  ASSERT_TRUE(shifted.ok());
  for (std::size_t m = 0; m < tiny.app.message_count(); ++m) {
    EXPECT_GE(shifted.value().message_completion[m], base.value().message_completion[m]);
  }
  for (std::size_t t = 0; t < tiny.app.task_count(); ++t) {
    EXPECT_GE(shifted.value().task_completion[t], base.value().task_completion[t]);
  }
}

TEST(TsnAnalysis, GateStarvedPortPinsEtUnbounded) {
  // ST and ET share one egress port; the gate window leaves a gap shorter
  // than the ET frame, so guard banding blocks the ET message forever and
  // the bound must pin it to infinity (unschedulable, positive cost).
  Application app;
  const NodeId a = app.add_node("A");
  const NodeId b = app.add_node("B");
  const GraphId tt = app.add_graph("tt", timeunits::us(100), timeunits::us(100));
  const GraphId et = app.add_graph("et", timeunits::us(100), timeunits::us(100));
  const TaskId p = app.add_task(tt, "p", a, timeunits::us(1), TaskPolicy::Scs);
  const TaskId c = app.add_task(tt, "c", b, timeunits::us(1), TaskPolicy::Scs);
  const MessageId st = app.add_message(tt, "st", p, c, 4, MessageClass::Static);
  const TaskId e = app.add_task(et, "e", a, timeunits::us(1), TaskPolicy::Fps, 1);
  const TaskId s = app.add_task(et, "s", b, timeunits::us(1), TaskPolicy::Fps, 2);
  const MessageId dyn = app.add_message(et, "dyn", e, s, 2, MessageClass::Dynamic, 0);
  ASSERT_TRUE(app.finalize().ok());

  TsnConfig config;
  config.cycle = timeunits::us(5);
  config.link_rate_mbps = 100;
  config.gates.assign(app.message_count(), TsnGateWindow{});
  config.et_priority.assign(app.message_count(), 0);
  // Window covers all but 500ns of the cycle; the 3520ns ET frame never fits.
  config.gates[index_of(st)] = TsnGateWindow{0, timeunits::us(5) - 500};

  auto layout = TsnLayout::build(app, config);
  ASSERT_TRUE(layout.ok()) << layout.error().message;
  auto result = analyze_tsn_cluster(layout.value());
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_TRUE(is_infinite(result.value().message_completion[index_of(dyn)]));
  EXPECT_FALSE(result.value().cost.schedulable);
  (void)e;
}

}  // namespace
}  // namespace flexopt
