#include "flexopt/analysis/sat_time.hpp"

#include <gtest/gtest.h>

namespace flexopt {
namespace {

TEST(SatTime, InfinityDetection) {
  EXPECT_TRUE(is_infinite(kTimeInfinity));
  EXPECT_FALSE(is_infinite(0));
  EXPECT_FALSE(is_infinite(kTimeInfinity - 1));
}

TEST(SatTime, AddSaturates) {
  EXPECT_EQ(sat_add(2, 3), 5);
  EXPECT_EQ(sat_add(kTimeInfinity, 1), kTimeInfinity);
  EXPECT_EQ(sat_add(1, kTimeInfinity), kTimeInfinity);
  EXPECT_EQ(sat_add(kTimeInfinity - 2, 5), kTimeInfinity);  // overflow -> saturate
  EXPECT_EQ(sat_add(kTimeInfinity - 5, 2), kTimeInfinity - 3);
}

TEST(SatTime, MulSaturates) {
  EXPECT_EQ(sat_mul(7, 6), 42);
  EXPECT_EQ(sat_mul(kTimeInfinity, 2), kTimeInfinity);
  EXPECT_EQ(sat_mul(kTimeInfinity / 2 + 1, 2), kTimeInfinity);
  EXPECT_EQ(sat_mul(123, 0), 0);
}

TEST(SatTime, ChainsAbsorb) {
  // Once a term is infinite, any downstream arithmetic stays infinite.
  Time acc = timeunits::us(5);
  acc = sat_add(acc, kTimeInfinity);
  acc = sat_mul(acc, 3);
  acc = sat_add(acc, timeunits::ms(1));
  EXPECT_EQ(acc, kTimeInfinity);
}

}  // namespace
}  // namespace flexopt
