// FPS-aware SCS placement (Fig. 2 line 11): the MinimizeFpsImpact policy
// must actually reduce FPS interference versus ASAP packing, while its
// ALAP delay bound keeps every TT chain within reach of its deadline.

#include <gtest/gtest.h>

#include "flexopt/analysis/fps_analysis.hpp"
#include "flexopt/analysis/system_analysis.hpp"
#include "flexopt/sim/simulator.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

using testing::make_layout;

/// One node with several SCS jobs per period plus one FPS task; a second
/// node hosts the ST receivers.
struct PlacementFixture {
  Application app;
  BusParams params = didactic_params();
  TaskId fps{};
  BusConfig config;

  PlacementFixture() {
    const NodeId n0 = app.add_node("N0");
    const NodeId n1 = app.add_node("N1");
    const GraphId tt = app.add_graph("tt", timeunits::us(200), timeunits::us(200));
    // Four independent SCS tasks: ASAP placement clumps them into one
    // 80 us block at the period start.
    for (int i = 0; i < 4; ++i) {
      app.add_task(tt, "scs" + std::to_string(i), n0, timeunits::us(20), TaskPolicy::Scs);
    }
    app.add_task(tt, "peer", n1, timeunits::us(1), TaskPolicy::Scs);
    const GraphId et = app.add_graph("et", timeunits::us(200), timeunits::us(200));
    fps = app.add_task(et, "fps", n0, timeunits::us(30), TaskPolicy::Fps, 0);

    config.static_slot_count = 0;
    config.minislot_count = 10;
    config.frame_id.assign(app.message_count(), 0);
    if (!app.finalize().ok()) throw std::runtime_error("fixture");
  }
};

TEST(Placement, MinimizeFpsImpactBeatsAsapForFpsTasks) {
  PlacementFixture f;
  const BusLayout layout = make_layout(f.app, f.params, f.config);

  AnalysisOptions asap;
  asap.scheduler.placement = Placement::Asap;
  AnalysisOptions spread;  // default MinimizeFpsImpact
  const auto r_asap = analyze_system(layout, asap);
  const auto r_spread = analyze_system(layout, spread);
  ASSERT_TRUE(r_asap.ok());
  ASSERT_TRUE(r_spread.ok());
  // ASAP clumps 80 us of SCS -> FPS response >= 110 us; spreading must
  // strictly improve it.
  EXPECT_GE(r_asap.value().task_completion[index_of(f.fps)], timeunits::us(110));
  EXPECT_LT(r_spread.value().task_completion[index_of(f.fps)],
            r_asap.value().task_completion[index_of(f.fps)]);
}

TEST(Placement, AlapBoundKeepsDelayedTasksWithinDeadline) {
  // A chain head with plenty of laxity may be delayed — but never so far
  // that the chain (reserving one cycle per message hop) cannot finish by
  // its deadline.  Regression guard for the ALAP bound, which once let TT
  // chains slip by whole cycles under FPS pressure.
  Application app;
  const NodeId n0 = app.add_node("N0");
  const NodeId n1 = app.add_node("N1");
  const GraphId tt = app.add_graph("tt", timeunits::us(400), timeunits::us(200));
  const TaskId head = app.add_task(tt, "head", n0, timeunits::us(10), TaskPolicy::Scs);
  const TaskId tail = app.add_task(tt, "tail", n1, timeunits::us(10), TaskPolicy::Scs);
  app.add_message(tt, "hop", head, tail, 4, MessageClass::Static);
  const GraphId et = app.add_graph("et", timeunits::us(400), timeunits::us(400));
  app.add_task(et, "fps", n0, timeunits::us(30), TaskPolicy::Fps, 0);
  ASSERT_TRUE(app.finalize().ok());

  BusConfig config;
  config.static_slot_count = 2;
  config.static_slot_len = timeunits::us(5);
  config.static_slot_owner = {n0, n1};
  config.minislot_count = 10;
  config.frame_id.assign(app.message_count(), 0);
  const BusLayout layout = make_layout(app, didactic_params(), config);

  const auto result = analyze_system(layout);  // MinimizeFpsImpact default
  ASSERT_TRUE(result.ok());
  // The whole TT chain must still meet its 200 us deadline even though the
  // head may have been delayed to spare the FPS task.
  EXPECT_LE(result.value().task_completion[index_of(tail)], timeunits::us(200));
  EXPECT_LE(result.value().message_completion[0], timeunits::us(200));
  EXPECT_TRUE(result.value().schedulable());
}

TEST(Placement, AlignedMultiHyperperiodSimulationStaysSound) {
  // Soundness must hold beyond the first hyper-period: simulate 4 aligned
  // hyper-periods and compare every observed completion against the bound.
  PlacementFixture f;  // H = 200 us, cycle = 10 us -> aligned
  const BusLayout layout = make_layout(f.app, f.params, f.config);
  const auto analysis = analyze_system(layout);
  ASSERT_TRUE(analysis.ok());
  SimOptions options;
  options.hyperperiods = 4;
  auto sim = simulate(layout, analysis.value().schedule(), options);
  ASSERT_TRUE(sim.ok()) << sim.error().message;
  EXPECT_EQ(sim.value().precedence_violations, 0);
  for (std::uint32_t t = 0; t < f.app.task_count(); ++t) {
    const Time o = sim.value().task_worst_completion[t];
    if (o == kTimeNone) continue;
    EXPECT_LE(o, analysis.value().task_completion[t]) << f.app.tasks()[t].name;
  }
}

}  // namespace
}  // namespace flexopt
