// Arena hot-path contracts, enforced with real counters rather than code
// review:
//
//  1. Closure equivalence: across 50 random (spec, move-chain) pairs, the
//     arena engine behind CostEvaluator::evaluate_delta_fast — which seeds
//     the holistic fixed point from the base evaluation and re-iterates
//     only the bitset invalidation closure — must agree bit-for-bit with
//     an independent full evaluation on every completion, jitter and cost.
//     An under-marked closure cannot hide: a stale component would leak a
//     stale bound into the comparison.
//
//  2. Zero allocations: replaying a warmed move chain through
//     evaluate_delta_fast performs no heap allocation at all, measured by
//     the operator new interposer (src/util/alloc_probe.cpp, linked into
//     this binary only).  The contract holds in Release; Debug builds
//     carry the full-analysis cross-check (which allocates by design), so
//     there the test still runs the replay but skips the allocation
//     assertion.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "flexopt/core/config_builder.hpp"
#include "flexopt/core/evaluator.hpp"
#include "flexopt/core/sa.hpp"
#include "flexopt/gen/synthetic.hpp"
#include "flexopt/util/alloc_probe.hpp"
#include "flexopt/util/rng.hpp"

namespace flexopt {
namespace {

constexpr int kPairs = 50;
constexpr int kMovesPerPair = 8;

SyntheticSpec random_spec(Rng& rng) {
  SyntheticSpec spec;
  spec.nodes = static_cast<int>(rng.uniform_int(2, 5));
  spec.tasks_per_graph = static_cast<int>(rng.uniform_int(2, 4));
  spec.tasks_per_node = spec.tasks_per_graph * static_cast<int>(rng.uniform_int(1, 2));
  spec.tt_share = rng.uniform_real(0.2, 0.8);
  spec.deadline_factor = rng.uniform_real(0.6, 1.2);
  spec.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30));
  return spec;
}

void expect_identical(const CostEvaluator::Evaluation& fast,
                      const CostEvaluator::Evaluation& full, const std::string& label) {
  ASSERT_EQ(fast.valid, full.valid) << label;
  if (!full.valid) return;
  if (fast.analysis.converged && !full.analysis.converged) return;  // documented carve-out
  EXPECT_EQ(fast.cost.value, full.cost.value) << label;
  EXPECT_EQ(fast.cost.schedulable, full.cost.schedulable) << label;
  EXPECT_EQ(fast.analysis.task_completion, full.analysis.task_completion) << label;
  EXPECT_EQ(fast.analysis.message_completion, full.analysis.message_completion) << label;
  EXPECT_EQ(fast.analysis.task_jitter, full.analysis.task_jitter) << label;
  EXPECT_EQ(fast.analysis.message_jitter, full.analysis.message_jitter) << label;
  EXPECT_EQ(fast.analysis.converged, full.analysis.converged) << label;
}

TEST(ArenaClosure, MatchesFullEvaluationOnRandomMoveChains) {
  const BusParams params;
  Rng rng(0xa11e9a7e5u);
  int chains_run = 0;
  for (int pair = 0; pair < kPairs; ++pair) {
    const SyntheticSpec spec = random_spec(rng);
    const std::string where =
        "pair " + std::to_string(pair) + " seed " + std::to_string(spec.seed);
    auto app_result = generate_synthetic(spec, params);
    ASSERT_TRUE(app_result.ok()) << where << ": " << app_result.error().message;
    const Application& app = app_result.value();

    const StartConfig start = minimal_start_config(app, params);
    if (!start.bounds.feasible()) continue;  // degenerate cell: nothing to walk
    BusConfig current = start.config;

    CostEvaluator full(app, params, AnalysisOptions{});
    CostEvaluator fast(app, params, AnalysisOptions{});
    CostEvaluator::Evaluation accepted = fast.evaluate(current);
    expect_identical(accepted, full.evaluate(current), where + " start");

    Rng move_rng(spec.seed ^ 0x9e3779b97f4a7c15ull);
    for (int step = 0; step < kMovesPerPair; ++step) {
      BusConfig neighbour = current;
      bool moved = false;
      for (int attempt = 0; attempt < 8 && !moved; ++attempt) {
        moved = random_neighbour_move(neighbour, app, params, move_rng, start.st_senders,
                                      start.bounds.min_minislots, SpecLimits::kMaxMinislots);
      }
      if (!moved) break;
      DeltaMove move = DeltaMove::between(current, std::move(neighbour));
      const CostEvaluator::Evaluation& eval = fast.evaluate_delta_fast(accepted, move);
      expect_identical(eval, full.evaluate(move.config),
                       where + " step " + std::to_string(step));
      // Walk every move (accepted unconditionally): deep chains stress the
      // closure under accumulating geometry changes.
      accepted = eval;
      current = std::move(move.config);
    }
    ++chains_run;
  }
  // The spec band is calibrated to be mostly feasible; if this trips, the
  // suite silently stopped testing anything.
  EXPECT_GE(chains_run, kPairs / 2);
}

TEST(ArenaAlloc, WarmReplayPerformsZeroHeapAllocations) {
  const BusParams params;
  SyntheticSpec spec;  // defaults: 5 nodes, the fig9-like regime
  spec.deadline_factor = 0.7;
  spec.seed = 4242;
  auto app_result = generate_synthetic(spec, params);
  ASSERT_TRUE(app_result.ok()) << app_result.error().message;
  const Application& app = app_result.value();

  const StartConfig start = minimal_start_config(app, params);
  ASSERT_TRUE(start.bounds.feasible());

  // Whole-config memoization off so every call exercises the analysis
  // path; the component caches (schedule geometries) stay on and are what
  // the recording pass warms.
  EvaluatorOptions eopts;
  eopts.cache_enabled = false;
  CostEvaluator evaluator(app, params, AnalysisOptions{}, eopts);

  long measured = 0;
  std::uint64_t allocations = 0;
  const auto run_chain = [&](bool count) {
    BusConfig current = start.config;
    CostEvaluator::Evaluation accepted = evaluator.evaluate(current);
    Rng move_rng(0x5eedu);
    for (int step = 0; step < 64; ++step) {
      BusConfig neighbour = current;
      bool moved = false;
      for (int attempt = 0; attempt < 8 && !moved; ++attempt) {
        moved = random_neighbour_move(neighbour, app, params, move_rng, start.st_senders,
                                      start.bounds.min_minislots, SpecLimits::kMaxMinislots);
      }
      if (!moved) continue;
      DeltaMove move = DeltaMove::between(current, std::move(neighbour));

      const std::uint64_t a0 = alloc_probe::thread_allocations();
      const CostEvaluator::Evaluation& eval = evaluator.evaluate_delta_fast(accepted, move);
      const std::uint64_t evaluation_allocs = alloc_probe::thread_allocations() - a0;
      if (count && eval.valid) {
        ++measured;
        allocations += evaluation_allocs;  // error paths allocate strings
      }
      accepted = eval;
      current = std::move(move.config);
    }
  };

  run_chain(/*count=*/false);  // recording pass: warm caches, arena, scratch
  run_chain(/*count=*/true);   // replay of the identical RNG stream
  ASSERT_GT(measured, 0);

  if (!alloc_probe::installed()) {
    GTEST_SKIP() << "alloc probe displaced (sanitizer build)";
  }
#ifdef NDEBUG
  EXPECT_EQ(allocations, 0u) << "steady-state hot path allocated on " << measured
                             << " measured moves";
#else
  // Debug carries the full-analysis bit-identity cross-check, which
  // allocates by design; the replay above still verified it runs clean.
  SUCCEED() << "allocation contract gated to Release";
#endif
}

}  // namespace
}  // namespace flexopt
