#include "flexopt/analysis/static_schedule.hpp"

#include <gtest/gtest.h>

namespace flexopt {
namespace {

TEST(StaticSchedule, TaskWcrtIsMaxOverInstances) {
  StaticSchedule s(timeunits::us(100), 1, 1, 0);
  s.add_task_entry({TaskId{0}, 0, 0, timeunits::us(10), timeunits::us(15)}, 0);
  s.add_task_entry({TaskId{0}, 1, timeunits::us(50), timeunits::us(80), timeunits::us(90)}, 0);
  s.finalize();
  // Instance 0: 15 - 0 = 15us; instance 1: 90 - 50 = 40us.
  EXPECT_EQ(s.task_wcrt(TaskId{0}), timeunits::us(40));
}

TEST(StaticSchedule, MessageWcrt) {
  StaticSchedule s(timeunits::us(100), 1, 0, 1);
  s.add_message_entry({MessageId{0}, 0, 0, 0, 0, timeunits::us(4), timeunits::us(8)});
  s.finalize();
  EXPECT_EQ(s.message_wcrt(MessageId{0}), timeunits::us(8));
}

TEST(StaticSchedule, MissingEntriesAreInfinite) {
  StaticSchedule s(timeunits::us(100), 1, 1, 1);
  s.finalize();
  EXPECT_EQ(s.task_wcrt(TaskId{0}), kTimeInfinity);
  EXPECT_EQ(s.message_wcrt(MessageId{0}), kTimeInfinity);
}

TEST(StaticSchedule, NodeProfileMergesEntries) {
  StaticSchedule s(timeunits::us(100), 1, 2, 0);
  s.add_task_entry({TaskId{0}, 0, 0, timeunits::us(10), timeunits::us(20)}, 0);
  s.add_task_entry({TaskId{1}, 0, 0, timeunits::us(20), timeunits::us(35)}, 0);
  s.finalize();
  const BusyProfile& p = s.node_profile(0);
  EXPECT_EQ(p.busy_per_period(), timeunits::us(25));
  // Adjacent entries merged into one interval [10, 35).
  ASSERT_EQ(p.intervals().size(), 1u);
  EXPECT_EQ(p.intervals()[0], (Interval{timeunits::us(10), timeunits::us(35)}));
}

TEST(StaticSchedule, ProfileWrapsEntriesPastHyperperiod) {
  StaticSchedule s(timeunits::us(100), 1, 1, 0);
  // Entry [90, 110) spilling past H=100us wraps into [90,100) + [0,10).
  s.add_task_entry({TaskId{0}, 0, timeunits::us(80), timeunits::us(90), timeunits::us(110)},
                   0);
  s.finalize();
  const BusyProfile& p = s.node_profile(0);
  EXPECT_EQ(p.busy_per_period(), timeunits::us(20));
  EXPECT_EQ(p.busy_between(0, timeunits::us(10)), timeunits::us(10));
  EXPECT_EQ(p.busy_between(timeunits::us(90), timeunits::us(100)), timeunits::us(10));
}

TEST(StaticSchedule, EntriesSortedByStartAfterFinalize) {
  StaticSchedule s(timeunits::us(100), 1, 2, 0);
  s.add_task_entry({TaskId{1}, 0, 0, timeunits::us(50), timeunits::us(60)}, 0);
  s.add_task_entry({TaskId{0}, 0, 0, timeunits::us(5), timeunits::us(15)}, 0);
  s.finalize();
  const auto& entries = s.node_entries(0);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_LT(entries[0].start, entries[1].start);
}

}  // namespace
}  // namespace flexopt
