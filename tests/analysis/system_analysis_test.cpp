// Holistic system analysis: TT completions from the table, ET completions
// via jitter propagation, cost integration, and divergence handling.

#include <gtest/gtest.h>

#include "flexopt/analysis/system_analysis.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

using testing::make_layout;
using testing::TinySystem;

TEST(SystemAnalysis, TinySystemIsSchedulable) {
  TinySystem sys;
  const BusLayout layout = make_layout(sys.app, sys.params, sys.config);
  const auto result = analyze_system(layout);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_TRUE(result.value().schedulable());
  EXPECT_LE(result.value().cost.value, 0.0);
}

TEST(SystemAnalysis, TtCompletionsComeFromTable) {
  TinySystem sys;
  const BusLayout layout = make_layout(sys.app, sys.params, sys.config);
  const auto result = analyze_system(layout);
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  EXPECT_EQ(r.task_completion[index_of(sys.producer)],
            r.schedule().task_wcrt(sys.producer));
  EXPECT_EQ(r.message_completion[index_of(sys.st_msg)],
            r.schedule().message_wcrt(sys.st_msg));
}

TEST(SystemAnalysis, EtCompletionsChainThroughJitter) {
  TinySystem sys;
  const BusLayout layout = make_layout(sys.app, sys.params, sys.config);
  const auto result = analyze_system(layout);
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  // fps -> dyn -> fps_sink: completions strictly increase along the chain.
  EXPECT_LT(r.task_completion[index_of(sys.fps_task)],
            r.message_completion[index_of(sys.dyn_msg)]);
  EXPECT_LT(r.message_completion[index_of(sys.dyn_msg)],
            r.task_completion[index_of(sys.fps_sink)]);
  // The message inherits the sender's completion as jitter.
  EXPECT_EQ(r.message_jitter[index_of(sys.dyn_msg)],
            r.task_completion[index_of(sys.fps_task)]);
}

TEST(SystemAnalysis, OverloadedNodeReportsUnschedulable) {
  Application app;
  const NodeId n0 = app.add_node("N0");
  const NodeId n1 = app.add_node("N1");
  const GraphId et = app.add_graph("et", timeunits::us(100), timeunits::us(100));
  // Two FPS tasks with 120% combined utilisation on one node.
  app.add_task(et, "f1", n0, timeunits::us(70), TaskPolicy::Fps, 0);
  app.add_task(et, "f2", n0, timeunits::us(50), TaskPolicy::Fps, 1);
  app.add_task(et, "peer", n1, timeunits::us(1), TaskPolicy::Fps, 0);
  ASSERT_TRUE(app.finalize().ok());
  BusConfig config;
  config.minislot_count = 10;
  config.frame_id.assign(app.message_count(), 0);
  const BusLayout layout = make_layout(app, didactic_params(), config);
  const auto result = analyze_system(layout);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().schedulable());
  EXPECT_GT(result.value().cost.value, 0.0);
  EXPECT_EQ(result.value().task_completion[1], kTimeInfinity);
}

TEST(SystemAnalysis, UntransmittableDynMessagePoisonsItsChain) {
  // DYN message with FrameID beyond pLatestTx: its receiver must also be
  // reported unbounded.
  Application app;
  const NodeId n0 = app.add_node("N0");
  const NodeId n1 = app.add_node("N1");
  const GraphId et = app.add_graph("et", timeunits::us(100), timeunits::us(100));
  const TaskId s = app.add_task(et, "s", n0, 1, TaskPolicy::Fps, 0);
  const TaskId r = app.add_task(et, "r", n1, 1, TaskPolicy::Fps, 1);
  const MessageId m = app.add_message(et, "m", s, r, 4, MessageClass::Dynamic, 0);
  ASSERT_TRUE(app.finalize().ok());
  BusConfig config;
  config.minislot_count = 4;       // frame needs 4 minislots -> pLTx = 1
  config.frame_id.assign(app.message_count(), 0);
  config.frame_id[index_of(m)] = 3;  // 3 > pLTx: never transmittable
  const BusLayout layout = make_layout(app, didactic_params(), config);
  const auto result = analyze_system(layout);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().message_completion[index_of(m)], kTimeInfinity);
  EXPECT_EQ(result.value().task_completion[index_of(r)], kTimeInfinity);
  EXPECT_FALSE(result.value().schedulable());
}

TEST(SystemAnalysis, ReleaseOffsetShiftsEtCompletion) {
  TinySystem plain;
  const BusLayout layout0 = make_layout(plain.app, plain.params, plain.config);
  const auto base = analyze_system(layout0);
  ASSERT_TRUE(base.ok());

  TinySystem offset;
  offset.app.set_task_release_offset(offset.fps_task, timeunits::us(20));
  const BusLayout layout1 = make_layout(offset.app, offset.params, offset.config);
  const auto shifted = analyze_system(layout1);
  ASSERT_TRUE(shifted.ok());
  EXPECT_GE(shifted.value().task_completion[index_of(offset.fps_task)],
            base.value().task_completion[index_of(plain.fps_task)] + timeunits::us(20));
}

TEST(SystemAnalysis, CostMatchesCompletions) {
  TinySystem sys;
  const BusLayout layout = make_layout(sys.app, sys.params, sys.config);
  const auto result = analyze_system(layout);
  ASSERT_TRUE(result.ok());
  const Cost recomputed = evaluate_cost(sys.app, result.value().task_completion,
                                        result.value().message_completion);
  EXPECT_DOUBLE_EQ(recomputed.value, result.value().cost.value);
  EXPECT_EQ(recomputed.schedulable, result.value().cost.schedulable);
}

}  // namespace
}  // namespace flexopt
