// Regression tests for holistic-analysis pitfalls found during bring-up.

#include <gtest/gtest.h>

#include "flexopt/analysis/system_analysis.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

using testing::make_layout;

// A message interfered (via a lower FrameID) by its own downstream
// successor: seeding the fixed point from infinity would lock the pair in a
// mutually-unbounded state even though the true least fixed point is small.
// This is the exact shape that criticality-ordered FrameIDs produce (deep
// messages get low FrameIDs).
TEST(HolisticRegression, DownstreamInterfererDoesNotDeadlockToInfinity) {
  Application app;
  const NodeId n0 = app.add_node("N0");
  const NodeId n1 = app.add_node("N1");
  const GraphId g = app.add_graph("g", timeunits::ms(1), timeunits::ms(1));
  const TaskId a = app.add_task(g, "a", n0, timeunits::us(5), TaskPolicy::Fps, 0);
  const TaskId b = app.add_task(g, "b", n1, timeunits::us(5), TaskPolicy::Fps, 0);
  const TaskId c = app.add_task(g, "c", n0, timeunits::us(5), TaskPolicy::Fps, 1);
  // upstream: a -> m_up -> b (FrameID 2); downstream: b -> m_down -> c
  // (FrameID 1, i.e. in lf(m_up)).
  const MessageId m_up = app.add_message(g, "m_up", a, b, 10, MessageClass::Dynamic, 0);
  const MessageId m_down = app.add_message(g, "m_down", b, c, 10, MessageClass::Dynamic, 0);
  ASSERT_TRUE(app.finalize().ok());

  BusConfig config;
  config.minislot_count = 40;
  config.frame_id.assign(app.message_count(), 0);
  config.frame_id[index_of(m_up)] = 2;
  config.frame_id[index_of(m_down)] = 1;
  const BusLayout layout = make_layout(app, didactic_params(), config);
  const auto result = analyze_system(layout);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result.value().message_completion[index_of(m_up)], kTimeInfinity);
  EXPECT_NE(result.value().message_completion[index_of(m_down)], kTimeInfinity);
  EXPECT_TRUE(result.value().schedulable());
}

// The cruise-controller shape: two ET trees whose messages interleave
// FrameIDs across graphs.  Must converge to finite bounds (was the OBC
// bring-up failure).
TEST(HolisticRegression, InterleavedFrameIdsAcrossGraphsConverge) {
  Application app;
  const NodeId n0 = app.add_node("N0");
  const NodeId n1 = app.add_node("N1");
  const GraphId g1 = app.add_graph("g1", timeunits::ms(2), timeunits::ms(2));
  const GraphId g2 = app.add_graph("g2", timeunits::ms(4), timeunits::ms(4));

  auto chain = [&](GraphId g, const char* prefix, NodeId first, NodeId second,
                   int prio_base) {
    const TaskId t0 = app.add_task(g, std::string(prefix) + "0", first, timeunits::us(10),
                                   TaskPolicy::Fps, prio_base);
    const TaskId t1 = app.add_task(g, std::string(prefix) + "1", second, timeunits::us(10),
                                   TaskPolicy::Fps, prio_base + 1);
    const TaskId t2 = app.add_task(g, std::string(prefix) + "2", first, timeunits::us(10),
                                   TaskPolicy::Fps, prio_base + 2);
    const MessageId ma = app.add_message(g, std::string(prefix) + "ma", t0, t1, 8,
                                         MessageClass::Dynamic, prio_base);
    const MessageId mb = app.add_message(g, std::string(prefix) + "mb", t1, t2, 8,
                                         MessageClass::Dynamic, prio_base);
    return std::pair{ma, mb};
  };
  const auto [a1, b1] = chain(g1, "x", n0, n1, 0);
  const auto [a2, b2] = chain(g2, "y", n1, n0, 3);
  ASSERT_TRUE(app.finalize().ok());

  BusConfig config;
  config.minislot_count = 60;
  config.frame_id.assign(app.message_count(), 0);
  // Interleave: deep messages of both graphs get the low FrameIDs.
  config.frame_id[index_of(b1)] = 1;
  config.frame_id[index_of(b2)] = 2;
  config.frame_id[index_of(a1)] = 3;
  config.frame_id[index_of(a2)] = 4;
  const BusLayout layout = make_layout(app, didactic_params(), config);
  const auto result = analyze_system(layout);
  ASSERT_TRUE(result.ok());
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    EXPECT_NE(result.value().message_completion[m], kTimeInfinity)
        << app.messages()[m].name;
  }
}

// Genuine divergence must still be reported: a DYN message whose FrameID
// lies beyond pLatestTx poisons only its own chain, not unrelated ones.
TEST(HolisticRegression, GenuineUnboundednessStaysUnbounded) {
  Application app;
  const NodeId n0 = app.add_node("N0");
  const NodeId n1 = app.add_node("N1");
  const GraphId g = app.add_graph("g", timeunits::ms(1), timeunits::ms(1));
  // The poisoned chain runs at LOW priority (5) so it cannot drag the
  // healthy high-priority chain into unboundedness via CPU interference.
  const TaskId a = app.add_task(g, "a", n0, timeunits::us(5), TaskPolicy::Fps, 5);
  const TaskId b = app.add_task(g, "b", n1, timeunits::us(5), TaskPolicy::Fps, 5);
  const MessageId dead = app.add_message(g, "dead", a, b, 10, MessageClass::Dynamic, 0);
  const GraphId g2 = app.add_graph("g2", timeunits::ms(1), timeunits::ms(1));
  const TaskId c = app.add_task(g2, "c", n1, timeunits::us(5), TaskPolicy::Fps, 0);
  const TaskId d = app.add_task(g2, "d", n0, timeunits::us(5), TaskPolicy::Fps, 1);
  const MessageId alive = app.add_message(g2, "alive", c, d, 10, MessageClass::Dynamic, 0);
  ASSERT_TRUE(app.finalize().ok());

  BusConfig config;
  config.minislot_count = 12;  // 10-minislot frames -> pLatestTx = 3
  config.frame_id.assign(app.message_count(), 0);
  config.frame_id[index_of(dead)] = 5;   // 5 > 3: never transmittable
  config.frame_id[index_of(alive)] = 1;  // fine
  const BusLayout layout = make_layout(app, didactic_params(), config);
  const auto result = analyze_system(layout);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().message_completion[index_of(dead)], kTimeInfinity);
  EXPECT_EQ(result.value().task_completion[index_of(b)], kTimeInfinity);
  EXPECT_NE(result.value().message_completion[index_of(alive)], kTimeInfinity);
  EXPECT_NE(result.value().task_completion[index_of(d)], kTimeInfinity);
  EXPECT_FALSE(result.value().schedulable());
}

}  // namespace
}  // namespace flexopt
