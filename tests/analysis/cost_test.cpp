// Eq. 5 cost function: f1 (overshoot sum) when any deadline is missed,
// f2 (laxity sum, negative) when schedulable, finite penalties for
// unbounded responses.

#include <gtest/gtest.h>

#include <vector>

#include "flexopt/analysis/cost.hpp"

namespace flexopt {
namespace {

struct CostFixture {
  Application app;
  CostFixture() {
    const NodeId n0 = app.add_node("N0");
    const NodeId n1 = app.add_node("N1");
    const GraphId g = app.add_graph("g", timeunits::us(100), timeunits::us(100));
    const TaskId a = app.add_task(g, "a", n0, 1, TaskPolicy::Scs);
    const TaskId b = app.add_task(g, "b", n1, 1, TaskPolicy::Scs);
    app.add_message(g, "m", a, b, 2, MessageClass::Static);
    if (!app.finalize().ok()) throw std::runtime_error("fixture");
  }
};

TEST(Cost, SchedulableIsNegativeLaxitySum) {
  CostFixture f;
  const std::vector<Time> tasks{timeunits::us(10), timeunits::us(20)};
  const std::vector<Time> msgs{timeunits::us(30)};
  const Cost c = evaluate_cost(f.app, tasks, msgs);
  EXPECT_TRUE(c.schedulable);
  // f2 = (10-100)+(20-100)+(30-100) = -240us.
  EXPECT_DOUBLE_EQ(c.value, -240.0);
  EXPECT_EQ(c.unbounded_activities, 0);
}

TEST(Cost, SingleMissSwitchesToOvershoot) {
  CostFixture f;
  const std::vector<Time> tasks{timeunits::us(10), timeunits::us(150)};
  const std::vector<Time> msgs{timeunits::us(30)};
  const Cost c = evaluate_cost(f.app, tasks, msgs);
  EXPECT_FALSE(c.schedulable);
  EXPECT_DOUBLE_EQ(c.value, 50.0);  // only the overshoot counts
}

TEST(Cost, MultipleMissesAccumulate) {
  CostFixture f;
  const std::vector<Time> tasks{timeunits::us(120), timeunits::us(150)};
  const std::vector<Time> msgs{timeunits::us(130)};
  const Cost c = evaluate_cost(f.app, tasks, msgs);
  EXPECT_FALSE(c.schedulable);
  EXPECT_DOUBLE_EQ(c.value, 20.0 + 50.0 + 30.0);
}

TEST(Cost, UnboundedActivityGetsPenalty) {
  CostFixture f;
  const std::vector<Time> tasks{timeunits::us(10), kTimeInfinity};
  const std::vector<Time> msgs{timeunits::us(30)};
  const Cost c = evaluate_cost(f.app, tasks, msgs);
  EXPECT_FALSE(c.schedulable);
  EXPECT_EQ(c.unbounded_activities, 1);
  EXPECT_DOUBLE_EQ(c.value, 100.0 * kUnboundedPenaltyFactor);
}

TEST(Cost, ExactDeadlineIsSchedulable) {
  CostFixture f;
  const std::vector<Time> tasks{timeunits::us(100), timeunits::us(100)};
  const std::vector<Time> msgs{timeunits::us(100)};
  const Cost c = evaluate_cost(f.app, tasks, msgs);
  EXPECT_TRUE(c.schedulable);
  EXPECT_DOUBLE_EQ(c.value, 0.0);
}

TEST(Cost, IndividualDeadlinesOverrideGraph) {
  CostFixture f;
  f.app.set_task_deadline(TaskId{0}, timeunits::us(5));
  const std::vector<Time> tasks{timeunits::us(10), timeunits::us(20)};
  const std::vector<Time> msgs{timeunits::us(30)};
  const Cost c = evaluate_cost(f.app, tasks, msgs);
  EXPECT_FALSE(c.schedulable);
  EXPECT_DOUBLE_EQ(c.value, 5.0);
}

TEST(Cost, OrderingMatchesIntuition) {
  CostFixture f;
  const std::vector<Time> good{timeunits::us(10), timeunits::us(10)};
  const std::vector<Time> worse{timeunits::us(90), timeunits::us(90)};
  const std::vector<Time> msgs{timeunits::us(10)};
  const Cost g = evaluate_cost(f.app, good, msgs);
  const Cost w = evaluate_cost(f.app, worse, msgs);
  EXPECT_LT(g, w);
}

}  // namespace
}  // namespace flexopt
