// List scheduler (Fig. 2): precedence, slot placement, packing, critical
// path ordering, and multi-instance behaviour over the hyper-period.

#include <gtest/gtest.h>

#include "flexopt/analysis/list_scheduler.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

using testing::make_layout;
using testing::TinySystem;

TEST(ListScheduler, SchedulesAllInstancesOverHyperperiod) {
  TinySystem sys;
  const BusLayout layout = make_layout(sys.app, sys.params, sys.config);
  auto schedule = build_static_schedule(layout);
  ASSERT_TRUE(schedule.ok()) << schedule.error().message;
  // Hyper-period 100us, period 100us: one instance each.
  EXPECT_EQ(schedule.value().task_entries(sys.producer).size(), 1u);
  EXPECT_EQ(schedule.value().message_entries(sys.st_msg).size(), 1u);
}

TEST(ListScheduler, RespectsPrecedence) {
  TinySystem sys;
  const BusLayout layout = make_layout(sys.app, sys.params, sys.config);
  auto schedule = build_static_schedule(layout);
  ASSERT_TRUE(schedule.ok());
  const auto& producer = schedule.value().task_entries(sys.producer)[0];
  const auto& message = schedule.value().message_entries(sys.st_msg)[0];
  const auto& consumer = schedule.value().task_entries(sys.consumer)[0];
  EXPECT_LE(producer.finish, message.start);
  EXPECT_LE(message.finish, consumer.start);
}

TEST(ListScheduler, MessageUsesOwnedSlot) {
  TinySystem sys;
  const BusLayout layout = make_layout(sys.app, sys.params, sys.config);
  auto schedule = build_static_schedule(layout);
  ASSERT_TRUE(schedule.ok());
  const auto& entry = schedule.value().message_entries(sys.st_msg)[0];
  EXPECT_EQ(entry.slot, 0);  // N0's slot
  // Delivery at the slot end.
  const Time slot_start = entry.cycle * layout.cycle_len() + layout.static_slot_start(entry.slot);
  EXPECT_EQ(entry.finish, slot_start + layout.config().static_slot_len);
}

TEST(ListScheduler, PacksMessagesIntoOneSlotWhenTheyFit) {
  const FigureBundle bundle = build_fig3();
  const BusLayout layout = make_layout(bundle.app, bundle.params, bundle.configs[2]);
  auto schedule = build_static_schedule(layout);
  ASSERT_TRUE(schedule.ok());
  // Scenario (c): m2 (3us) and m3 (2us) share N2's 5us slot in cycle 0.
  const auto& m2 = schedule.value().message_entries(MessageId{1})[0];
  const auto& m3 = schedule.value().message_entries(MessageId{2})[0];
  EXPECT_EQ(m2.cycle, m3.cycle);
  EXPECT_EQ(m2.slot, m3.slot);
  EXPECT_LT(m2.start, m3.start);
}

TEST(ListScheduler, OverflowsToNextCycleWhenSlotFull) {
  const FigureBundle bundle = build_fig3();
  const BusLayout layout = make_layout(bundle.app, bundle.params, bundle.configs[0]);
  auto schedule = build_static_schedule(layout);
  ASSERT_TRUE(schedule.ok());
  const auto& m2 = schedule.value().message_entries(MessageId{1})[0];
  const auto& m3 = schedule.value().message_entries(MessageId{2})[0];
  EXPECT_EQ(m3.cycle, m2.cycle + 1);
}

TEST(ListScheduler, MultipleInstancesForShorterPeriods) {
  Application app;
  const NodeId n0 = app.add_node("N0");
  const NodeId n1 = app.add_node("N1");
  const GraphId fast = app.add_graph("fast", timeunits::us(50), timeunits::us(50));
  const GraphId slow = app.add_graph("slow", timeunits::us(100), timeunits::us(100));
  const TaskId f = app.add_task(fast, "f", n0, timeunits::us(2), TaskPolicy::Scs);
  const TaskId fr = app.add_task(fast, "fr", n1, timeunits::us(2), TaskPolicy::Scs);
  app.add_message(fast, "fm", f, fr, 2, MessageClass::Static);
  app.add_task(slow, "s", n0, timeunits::us(2), TaskPolicy::Scs);
  ASSERT_TRUE(app.finalize().ok());

  BusConfig config;
  config.static_slot_count = 1;
  config.static_slot_len = timeunits::us(4);
  config.static_slot_owner = {n0};
  config.minislot_count = 6;
  config.frame_id.assign(app.message_count(), 0);
  const BusLayout layout = make_layout(app, didactic_params(), config);
  auto schedule = build_static_schedule(layout);
  ASSERT_TRUE(schedule.ok()) << schedule.error().message;
  EXPECT_EQ(schedule.value().hyperperiod(), timeunits::us(100));
  EXPECT_EQ(schedule.value().task_entries(f).size(), 2u);
  EXPECT_EQ(schedule.value().message_entries(MessageId{0}).size(), 2u);
  // Second instance must be released and scheduled in the second half.
  const auto& second = schedule.value().task_entries(f)[1];
  EXPECT_EQ(second.release, timeunits::us(50));
  EXPECT_GE(second.start, timeunits::us(50));
}

TEST(ListScheduler, HonoursReleaseOffsets) {
  TinySystem sys;
  sys.app = {};
  // Rebuild tiny system with an offset on the producer.
  TinySystem fresh;
  fresh.app.set_task_release_offset(fresh.producer, timeunits::us(30));
  const BusLayout layout = make_layout(fresh.app, fresh.params, fresh.config);
  auto schedule = build_static_schedule(layout);
  ASSERT_TRUE(schedule.ok());
  EXPECT_GE(schedule.value().task_entries(fresh.producer)[0].start, timeunits::us(30));
}

TEST(ListScheduler, AsapAndMinimizeFpsImpactBothProduceValidTables) {
  TinySystem sys;
  const BusLayout layout = make_layout(sys.app, sys.params, sys.config);
  for (const Placement placement : {Placement::Asap, Placement::MinimizeFpsImpact}) {
    SchedulerOptions options;
    options.placement = placement;
    auto schedule = build_static_schedule(layout, options);
    ASSERT_TRUE(schedule.ok());
    const auto& producer = schedule.value().task_entries(sys.producer)[0];
    const auto& message = schedule.value().message_entries(sys.st_msg)[0];
    EXPECT_LE(producer.finish, message.start);
  }
}

TEST(ListScheduler, FailsWhenSlotsHopelesslyOversubscribed) {
  // 20 ST messages of 4us per 100us period through a single 4us slot per
  // 100us cycle: cannot fit; the bounded search must fail loudly.
  Application app;
  const NodeId n0 = app.add_node("N0");
  const NodeId n1 = app.add_node("N1");
  const GraphId g = app.add_graph("g", timeunits::us(100), timeunits::us(100));
  for (int i = 0; i < 20; ++i) {
    const TaskId s = app.add_task(g, "s" + std::to_string(i), n0, 1, TaskPolicy::Scs);
    const TaskId r = app.add_task(g, "r" + std::to_string(i), n1, 1, TaskPolicy::Scs);
    app.add_message(g, "m" + std::to_string(i), s, r, 4, MessageClass::Static);
  }
  ASSERT_TRUE(app.finalize().ok());
  BusConfig config;
  config.static_slot_count = 1;
  config.static_slot_len = timeunits::us(4);
  config.static_slot_owner = {n0};
  config.minislot_count = 90;
  config.frame_id.assign(app.message_count(), 0);
  const BusLayout layout = make_layout(app, didactic_params(), config);
  SchedulerOptions options;
  options.max_slot_search_cycles = 16;
  EXPECT_FALSE(build_static_schedule(layout, options).ok());
}

}  // namespace
}  // namespace flexopt
