// FPS response-time analysis under SCS interference: classic RTA cases
// plus the availability-window extension.

#include <gtest/gtest.h>

#include <array>

#include "flexopt/analysis/fps_analysis.hpp"

namespace flexopt {
namespace {

constexpr Time kHorizon = timeunits::ms(10);

TEST(FpsAnalysis, SingleTaskNoInterference) {
  const BusyProfile idle({}, timeunits::us(100));
  const FpsTaskParams t{TaskId{0}, timeunits::us(10), timeunits::us(100), 0, 1};
  EXPECT_EQ(fps_response_time(t, {}, idle, kHorizon), timeunits::us(10));
}

TEST(FpsAnalysis, ClassicTwoTaskPreemption) {
  // hp task: C=2, T=10; own: C=5 -> w = 5 + 2*ceil(w/10): w=7 -> check 5+2=7.
  const BusyProfile idle({}, timeunits::us(100));
  const std::array<FpsTaskParams, 2> tasks{
      FpsTaskParams{TaskId{0}, timeunits::us(2), timeunits::us(10), 0, 0},
      FpsTaskParams{TaskId{1}, timeunits::us(5), timeunits::us(100), 0, 1},
  };
  EXPECT_EQ(fps_response_time(tasks[1], tasks, idle, kHorizon), timeunits::us(7));
  // The high-priority task is unaffected by the lower one.
  EXPECT_EQ(fps_response_time(tasks[0], tasks, idle, kHorizon), timeunits::us(2));
}

TEST(FpsAnalysis, JitterIncreasesInterferenceAndResponse) {
  const BusyProfile idle({}, timeunits::us(100));
  const std::array<FpsTaskParams, 2> tasks{
      FpsTaskParams{TaskId{0}, timeunits::us(2), timeunits::us(10), timeunits::us(9), 0},
      FpsTaskParams{TaskId{1}, timeunits::us(5), timeunits::us(100), 0, 1},
  };
  // w = 5 + 2*ceil((w+9)/10): w=0->5? iterate: 5->2*ceil(14/10)=4 ->9; 9->2*ceil(18/10)=4 ->9.
  EXPECT_EQ(fps_response_time(tasks[1], tasks, idle, kHorizon), timeunits::us(9));
  // Own jitter shifts the response additively.
  const FpsTaskParams jittered{TaskId{1}, timeunits::us(5), timeunits::us(100),
                               timeunits::us(3), 1};
  EXPECT_EQ(fps_response_time(jittered, tasks, idle, kHorizon), timeunits::us(12));
}

TEST(FpsAnalysis, ScsBusyWindowsDelayFpsTasks) {
  // SCS busy [0, 40) per 100us period; FPS task C=30 can only run in the
  // 60us of slack: w = 30 + S(w); S(70) = 40 -> w = 70.
  const BusyProfile scs({{0, timeunits::us(40)}}, timeunits::us(100));
  const FpsTaskParams t{TaskId{0}, timeunits::us(30), timeunits::us(100), 0, 1};
  EXPECT_EQ(fps_response_time(t, {}, scs, kHorizon), timeunits::us(70));
}

TEST(FpsAnalysis, UnschedulableDivergesToInfinity) {
  const BusyProfile idle({}, timeunits::us(100));
  // 100% utilisation by the hp task leaves nothing: diverges.
  const std::array<FpsTaskParams, 2> tasks{
      FpsTaskParams{TaskId{0}, timeunits::us(10), timeunits::us(10), 0, 0},
      FpsTaskParams{TaskId{1}, timeunits::us(5), timeunits::us(100), 0, 1},
  };
  EXPECT_EQ(fps_response_time(tasks[1], tasks, idle, kHorizon), kTimeInfinity);
}

TEST(FpsAnalysis, InfiniteJitterPropagates) {
  const BusyProfile idle({}, timeunits::us(100));
  const std::array<FpsTaskParams, 2> tasks{
      FpsTaskParams{TaskId{0}, timeunits::us(2), timeunits::us(10), kTimeInfinity, 0},
      FpsTaskParams{TaskId{1}, timeunits::us(5), timeunits::us(100), 0, 1},
  };
  EXPECT_EQ(fps_response_time(tasks[1], tasks, idle, kHorizon), kTimeInfinity);
  const FpsTaskParams own_inf{TaskId{2}, timeunits::us(5), timeunits::us(100),
                              kTimeInfinity, 2};
  EXPECT_EQ(fps_response_time(own_inf, {}, idle, kHorizon), kTimeInfinity);
}

TEST(FpsAnalysis, EqualPrioritiesMutuallyInterfere) {
  const BusyProfile idle({}, timeunits::us(100));
  const std::array<FpsTaskParams, 2> tasks{
      FpsTaskParams{TaskId{0}, timeunits::us(3), timeunits::us(50), 0, 1},
      FpsTaskParams{TaskId{1}, timeunits::us(4), timeunits::us(50), 0, 1},
  };
  EXPECT_EQ(fps_response_time(tasks[0], tasks, idle, kHorizon), timeunits::us(7));
  EXPECT_EQ(fps_response_time(tasks[1], tasks, idle, kHorizon), timeunits::us(7));
}

TEST(FpsAnalysis, SumTreatsInfiniteAsHorizon) {
  const BusyProfile idle({}, timeunits::us(100));
  const std::array<FpsTaskParams, 2> tasks{
      FpsTaskParams{TaskId{0}, timeunits::us(10), timeunits::us(10), 0, 0},
      FpsTaskParams{TaskId{1}, timeunits::us(5), timeunits::us(100), 0, 1},
  };
  const Time sum = fps_response_time_sum(tasks, idle, kHorizon);
  EXPECT_EQ(sum, timeunits::us(10) + kHorizon);
}

}  // namespace
}  // namespace flexopt
