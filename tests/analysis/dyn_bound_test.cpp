// The two BusCycles_m bounds of [14]: the greedy heuristic and the
// multiplicity-capped refinement.  The refinement must never exceed the
// heuristic, both must dominate the simulator, and the refinement must be
// strictly tighter exactly when one message's burst would otherwise be
// packed into a single cycle.

#include <gtest/gtest.h>

#include <vector>

#include "flexopt/analysis/dyn_analysis.hpp"
#include "flexopt/gen/synthetic.hpp"
#include "flexopt/sim/simulator.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

using testing::analyze;
using testing::make_layout;

constexpr Time kHorizon = timeunits::ms(400);

/// One big lf message with huge jitter (many instances per window) behind
/// the message under analysis.
struct BurstFixture {
  Application app;
  BusParams params = didactic_params();
  MessageId burst{};   // FrameID 1, 5 minislots, jittery
  MessageId victim{};  // FrameID 2

  BurstFixture() {
    const NodeId n0 = app.add_node("N0");
    const NodeId n1 = app.add_node("N1");
    const GraphId g = app.add_graph("g", timeunits::us(100), timeunits::ms(4));
    const TaskId s0 = app.add_task(g, "s0", n0, 1, TaskPolicy::Fps, 0);
    const TaskId s1 = app.add_task(g, "s1", n1, 1, TaskPolicy::Fps, 0);
    const TaskId r0 = app.add_task(g, "r0", n1, 1, TaskPolicy::Fps, 3);
    const TaskId r1 = app.add_task(g, "r1", n0, 1, TaskPolicy::Fps, 3);
    burst = app.add_message(g, "burst", s0, r0, 5, MessageClass::Dynamic, 0);
    victim = app.add_message(g, "victim", s1, r1, 2, MessageClass::Dynamic, 0);
    if (!app.finalize().ok()) throw std::runtime_error("fixture");
  }

  BusConfig config() const {
    BusConfig c;
    c.minislot_count = 8;  // pLTx(victim sender) = 7; need = 7 - 2 + 1 = 6
    c.frame_id.assign(app.message_count(), 0);
    c.frame_id[index_of(burst)] = 1;
    c.frame_id[index_of(victim)] = 2;
    return c;
  }
};

TEST(DynBound, RefinementNeverExceedsGreedy) {
  BurstFixture f;
  const BusLayout layout = make_layout(f.app, f.params, f.config());
  for (const Time jitter : {Time{0}, timeunits::us(150), timeunits::us(350),
                            timeunits::us(900)}) {
    std::vector<Time> jitters(f.app.message_count(), 0);
    jitters[index_of(f.burst)] = jitter;
    const DynResponse greedy =
        dyn_response_time(layout, f.victim, jitters, kHorizon, DynCyclesBound::Greedy);
    const DynResponse refined = dyn_response_time(layout, f.victim, jitters, kHorizon,
                                                  DynCyclesBound::MultiplicityCapped);
    ASSERT_TRUE(greedy.converged);
    ASSERT_TRUE(refined.converged);
    EXPECT_LE(refined.bus_cycles, greedy.bus_cycles) << "jitter " << jitter;
    EXPECT_LE(refined.response, greedy.response) << "jitter " << jitter;
  }
}

TEST(DynBound, RefinementIsStrictlyTighterOnBursts) {
  // With jitter > 2 periods the greedy bound sees 4+ instances of `burst`
  // (excess 4 each, need 6) and fills cycles from the pooled excess; the
  // multiplicity cap knows one cycle can absorb at most ONE burst instance
  // (excess 4 < need 6), so lf traffic alone can never fill a cycle here.
  BurstFixture f;
  const BusLayout layout = make_layout(f.app, f.params, f.config());
  std::vector<Time> jitters(f.app.message_count(), 0);
  jitters[index_of(f.burst)] = timeunits::us(900);
  const DynResponse greedy =
      dyn_response_time(layout, f.victim, jitters, kHorizon, DynCyclesBound::Greedy);
  const DynResponse refined = dyn_response_time(layout, f.victim, jitters, kHorizon,
                                                DynCyclesBound::MultiplicityCapped);
  EXPECT_GT(greedy.bus_cycles, 0);
  EXPECT_EQ(refined.bus_cycles, 0);
  EXPECT_LT(refined.response, greedy.response);
}

TEST(DynBound, BothBoundsDominateSimulation) {
  // Soundness of the refined bound on a realistic random system.
  SyntheticSpec spec;
  spec.nodes = 3;
  spec.seed = 91;
  BusParams params;
  params.gd_minislot = timeunits::us(5);
  auto generated = generate_synthetic(spec, params);
  ASSERT_TRUE(generated.ok());
  const Application& app = generated.value();

  // Basic configuration.
  BusConfig config;
  config.frame_id.assign(app.message_count(), 0);
  int fid = 1;
  int largest = 0;
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    if (app.messages()[m].cls == MessageClass::Dynamic) {
      config.frame_id[m] = fid++;
      largest = std::max(largest, params.frame_minislots(app.messages()[m].size_bytes));
    }
  }
  config.minislot_count = fid + largest + 40;
  // Minimal ST side.
  std::vector<bool> sends(app.node_count(), false);
  Time max_frame = 0;
  for (const auto& msg : app.messages()) {
    if (msg.cls == MessageClass::Static) {
      sends[index_of(app.task(msg.sender).node)] = true;
      max_frame = std::max(max_frame, params.frame_duration(msg.size_bytes));
    }
  }
  for (std::uint32_t n = 0; n < app.node_count(); ++n) {
    if (sends[n]) config.static_slot_owner.push_back(static_cast<NodeId>(n));
  }
  config.static_slot_count = static_cast<int>(config.static_slot_owner.size());
  config.static_slot_len = ceil_div(max_frame, params.gd_macrotick) * params.gd_macrotick;

  const BusLayout layout = make_layout(app, params, config);
  AnalysisOptions options;
  options.dyn_bound = DynCyclesBound::MultiplicityCapped;
  const AnalysisResult analysis = analyze(layout, options);
  auto sim = simulate(layout, analysis.schedule());
  ASSERT_TRUE(sim.ok()) << sim.error().message;
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    const Time observed = sim.value().message_worst_completion[m];
    if (observed == kTimeNone) continue;
    EXPECT_LE(observed, analysis.message_completion[m]) << app.messages()[m].name;
  }
}

TEST(DynBound, RefinedCostNeverWorseThanGreedy) {
  BurstFixture f;
  const BusLayout layout = make_layout(f.app, f.params, f.config());
  AnalysisOptions greedy;
  greedy.dyn_bound = DynCyclesBound::Greedy;
  AnalysisOptions refined;
  refined.dyn_bound = DynCyclesBound::MultiplicityCapped;
  const AnalysisResult rg = analyze(layout, greedy);
  const AnalysisResult rr = analyze(layout, refined);
  EXPECT_LE(rr.cost.value, rg.cost.value);
}

}  // namespace
}  // namespace flexopt
