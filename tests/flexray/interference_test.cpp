// The interference sets of Section 5.1 — hp(m), lf(m), ms(m) — checked on
// the Fig. 1 system where the paper spells them out:
// hp(mg) = {mf}, lf(mg) = {md, me}, ms(mg) = {1, 2, 3}, ms(mf) = {3}.

#include <gtest/gtest.h>

#include <algorithm>

#include "flexopt/flexray/bus_layout.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

class Fig1Interference : public ::testing::Test {
 protected:
  void SetUp() override {
    bundle_ = build_fig1();
    layout_.emplace(testing::make_layout(bundle_.app, bundle_.params, bundle_.configs[0]));
  }

  MessageId by_name(const std::string& name) const {
    for (std::uint32_t m = 0; m < bundle_.app.message_count(); ++m) {
      if (bundle_.app.messages()[m].name == name) return static_cast<MessageId>(m);
    }
    throw std::runtime_error("no message " + name);
  }

  FigureBundle bundle_;
  std::optional<BusLayout> layout_;
};

TEST_F(Fig1Interference, HpOfMgIsMf) {
  const auto hp = layout_->hp(by_name("mg"));
  ASSERT_EQ(hp.size(), 1u);
  EXPECT_EQ(hp[0], by_name("mf"));
}

TEST_F(Fig1Interference, HpOfMfIsEmpty) {
  EXPECT_TRUE(layout_->hp(by_name("mf")).empty());
}

TEST_F(Fig1Interference, LfOfMgIsMdAndMe) {
  auto lf = layout_->lf(by_name("mg"));
  std::sort(lf.begin(), lf.end(),
            [](MessageId a, MessageId b) { return index_of(a) < index_of(b); });
  ASSERT_EQ(lf.size(), 2u);
  EXPECT_EQ(lf[0], by_name("md"));
  EXPECT_EQ(lf[1], by_name("me"));
}

TEST_F(Fig1Interference, MsCountsLowerSlots) {
  // ms(mg) = slots {1, 2, 3} -> 3; ms(mf) likewise 3 in our numbering
  // (FrameID 4), ms(md) = 0 (FrameID 1).
  EXPECT_EQ(layout_->ms_count(by_name("mg")), 3);
  EXPECT_EQ(layout_->ms_count(by_name("mf")), 3);
  EXPECT_EQ(layout_->ms_count(by_name("md")), 0);
  EXPECT_EQ(layout_->ms_count(by_name("mh")), 4);
}

TEST_F(Fig1Interference, LfOfLowestSlotIsEmpty) {
  EXPECT_TRUE(layout_->lf(by_name("md")).empty());
}

TEST_F(Fig1Interference, FrameIdOwnership) {
  NodeId owner{};
  ASSERT_TRUE(layout_->frame_id_owner(1, &owner));
  EXPECT_EQ(bundle_.app.node(owner).name, "N3");
  ASSERT_TRUE(layout_->frame_id_owner(4, &owner));
  EXPECT_EQ(bundle_.app.node(owner).name, "N2");
  EXPECT_FALSE(layout_->frame_id_owner(3, &owner));  // unowned slot
  EXPECT_FALSE(layout_->frame_id_owner(0, &owner));
  EXPECT_FALSE(layout_->frame_id_owner(99, &owner));
}

}  // namespace
}  // namespace flexopt
