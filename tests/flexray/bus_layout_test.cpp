#include "flexopt/flexray/bus_layout.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace flexopt {
namespace {

using testing::TinySystem;

TEST(BusLayout, DerivesCycleGeometry) {
  TinySystem sys;
  auto layout = BusLayout::build(sys.app, sys.params, sys.config);
  ASSERT_TRUE(layout.ok()) << layout.error().message;
  EXPECT_EQ(layout.value().st_segment_len(), timeunits::us(10));
  EXPECT_EQ(layout.value().dyn_segment_len(), timeunits::us(8));
  EXPECT_EQ(layout.value().cycle_len(), timeunits::us(18));
  EXPECT_EQ(layout.value().static_slot_start(1), timeunits::us(5));
}

TEST(BusLayout, ComputesMessageDurations) {
  TinySystem sys;
  auto layout = BusLayout::build(sys.app, sys.params, sys.config);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout.value().message_duration(sys.st_msg), timeunits::us(4));
  EXPECT_EQ(layout.value().message_duration(sys.dyn_msg), timeunits::us(2));
  EXPECT_EQ(layout.value().message_minislots(sys.dyn_msg), 2);
  EXPECT_EQ(layout.value().message_occupancy(sys.dyn_msg), timeunits::us(2));
}

TEST(BusLayout, ComputesPLatestTx) {
  TinySystem sys;
  auto layout = BusLayout::build(sys.app, sys.params, sys.config);
  ASSERT_TRUE(layout.ok());
  // N1 sends the 2-minislot DYN message: pLatestTx = 8 - 2 + 1 = 7.
  EXPECT_EQ(layout.value().p_latest_tx(NodeId{1}), 7);
  // N0 sends no DYN messages: gate is the segment end.
  EXPECT_EQ(layout.value().p_latest_tx(NodeId{0}), 8);
}

TEST(BusLayout, RejectsMissingStSlot) {
  TinySystem sys;
  sys.config.static_slot_count = 1;
  sys.config.static_slot_owner = {NodeId{1}};  // N0 sends ST but owns nothing
  EXPECT_FALSE(BusLayout::build(sys.app, sys.params, sys.config).ok());
}

TEST(BusLayout, RejectsShortStaticSlot) {
  TinySystem sys;
  sys.config.static_slot_len = timeunits::us(3);  // ST frame needs 4 us
  EXPECT_FALSE(BusLayout::build(sys.app, sys.params, sys.config).ok());
}

TEST(BusLayout, RejectsFrameIdOutOfRange) {
  TinySystem sys;
  sys.config.frame_id[index_of(sys.dyn_msg)] = 9;  // only 8 minislots
  EXPECT_FALSE(BusLayout::build(sys.app, sys.params, sys.config).ok());
}

TEST(BusLayout, RejectsSharedFrameIdAcrossNodes) {
  TinySystem sys;
  // Add a second DYN message from N0 sharing FrameID 1 with N1's message.
  Application app;
  const NodeId n0 = app.add_node("N0");
  const NodeId n1 = app.add_node("N1");
  const GraphId et = app.add_graph("et", timeunits::us(100), timeunits::us(100));
  const TaskId a = app.add_task(et, "a", n0, 1, TaskPolicy::Fps);
  const TaskId b = app.add_task(et, "b", n1, 1, TaskPolicy::Fps);
  const TaskId ra = app.add_task(et, "ra", n1, 1, TaskPolicy::Fps);
  const TaskId rb = app.add_task(et, "rb", n0, 1, TaskPolicy::Fps);
  app.add_message(et, "m0", a, ra, 2, MessageClass::Dynamic);
  app.add_message(et, "m1", b, rb, 2, MessageClass::Dynamic);
  ASSERT_TRUE(app.finalize().ok());
  BusConfig config;
  config.minislot_count = 8;
  config.frame_id = {1, 1};  // different sender nodes, same slot
  EXPECT_FALSE(BusLayout::build(app, sys.params, config).ok());
}

TEST(BusLayout, RejectsCycleOver16ms) {
  TinySystem sys;
  sys.config.static_slot_len = timeunits::us(600);
  sys.config.static_slot_count = 2;
  sys.config.minislot_count = 7994;  // 1.2ms ST + 7.994ms DYN OK; raise minislot
  BusParams params = sys.params;
  params.gd_minislot = timeunits::us(5);  // DYN = 39.97 ms
  EXPECT_FALSE(BusLayout::build(sys.app, params, sys.config).ok());
}

TEST(BusLayout, RejectsDynSegmentTooSmallForFrame) {
  TinySystem sys;
  sys.config.minislot_count = 1;  // DYN frame needs 2 minislots
  EXPECT_FALSE(BusLayout::build(sys.app, sys.params, sys.config).ok());
}

TEST(BusLayout, RejectsEmptyCycle) {
  TinySystem sys;
  // Strip all messages: build a task-only app, zero slots and minislots.
  Application app;
  const NodeId n0 = app.add_node("N0");
  const GraphId g = app.add_graph("g", timeunits::ms(1), timeunits::ms(1));
  app.add_task(g, "t", n0, 1, TaskPolicy::Scs);
  ASSERT_TRUE(app.finalize().ok());
  BusConfig config;  // all zero
  EXPECT_FALSE(BusLayout::build(app, sys.params, config).ok());
}

TEST(BusLayout, StaticSlotsOfNode) {
  TinySystem sys;
  auto layout = BusLayout::build(sys.app, sys.params, sys.config);
  ASSERT_TRUE(layout.ok());
  ASSERT_EQ(layout.value().static_slots_of(NodeId{0}).size(), 1u);
  EXPECT_EQ(layout.value().static_slots_of(NodeId{0})[0], 0);
  ASSERT_EQ(layout.value().static_slots_of(NodeId{1}).size(), 1u);
  EXPECT_EQ(layout.value().static_slots_of(NodeId{1})[0], 1);
}

}  // namespace
}  // namespace flexopt
