// Exhaustive boundary tests of the FlexRay spec limits in BusLayout:
// each limit accepted exactly at the boundary and rejected one step past.

#include <gtest/gtest.h>

#include "flexopt/flexray/bus_layout.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

using testing::TinySystem;

TEST(SpecLimitBoundaries, StaticSlotCount) {
  TinySystem sys;
  // 1023 slots of 1 us + tiny DYN: cycle 1.031 ms < 16 ms.
  sys.config.static_slot_count = SpecLimits::kMaxStaticSlots;
  sys.config.static_slot_len = timeunits::us(5);
  sys.config.static_slot_owner.assign(static_cast<std::size_t>(SpecLimits::kMaxStaticSlots),
                                      NodeId{0});
  sys.config.static_slot_owner[1] = NodeId{1};
  sys.config.minislot_count = 8;
  BusParams params = sys.params;
  params.gd_minislot = timeunits::us(1);
  EXPECT_TRUE(BusLayout::build(sys.app, params, sys.config).ok());

  sys.config.static_slot_count = SpecLimits::kMaxStaticSlots + 1;
  sys.config.static_slot_owner.push_back(NodeId{0});
  EXPECT_FALSE(BusLayout::build(sys.app, params, sys.config).ok());
}

TEST(SpecLimitBoundaries, MinislotCount) {
  TinySystem sys;
  BusParams params = sys.params;
  params.gd_minislot = timeunits::us(1);  // 7994 minislots = 7.994 ms
  sys.config.minislot_count = SpecLimits::kMaxMinislots;
  EXPECT_TRUE(BusLayout::build(sys.app, params, sys.config).ok());
  sys.config.minislot_count = SpecLimits::kMaxMinislots + 1;
  EXPECT_FALSE(BusLayout::build(sys.app, params, sys.config).ok());
}

TEST(SpecLimitBoundaries, StaticSlotLength) {
  TinySystem sys;
  sys.config.static_slot_len =
      SpecLimits::kMaxStaticSlotMacroticks * sys.params.gd_macrotick;
  EXPECT_TRUE(BusLayout::build(sys.app, sys.params, sys.config).ok());
  sys.config.static_slot_len += sys.params.gd_macrotick;
  EXPECT_FALSE(BusLayout::build(sys.app, sys.params, sys.config).ok());
}

TEST(SpecLimitBoundaries, CycleLength) {
  TinySystem sys;
  BusParams params = sys.params;
  params.gd_minislot = timeunits::us(2);
  // ST = 2 x 500 us = 1 ms; DYN = 7500 x 2 us = 15 ms -> cycle exactly 16 ms.
  sys.config.static_slot_len = timeunits::us(500);
  sys.config.minislot_count = 7500;
  EXPECT_TRUE(BusLayout::build(sys.app, params, sys.config).ok());
  sys.config.minislot_count = 7501;  // 16.002 ms
  EXPECT_FALSE(BusLayout::build(sys.app, params, sys.config).ok());
}

TEST(SpecLimitBoundaries, NegativeValuesRejected) {
  TinySystem sys;
  BusConfig negative = sys.config;
  negative.static_slot_count = -1;
  EXPECT_FALSE(BusLayout::build(sys.app, sys.params, negative).ok());
  negative = sys.config;
  negative.minislot_count = -5;
  EXPECT_FALSE(BusLayout::build(sys.app, sys.params, negative).ok());
}

}  // namespace
}  // namespace flexopt
