#include "flexopt/flexray/params.hpp"

#include <gtest/gtest.h>

namespace flexopt {
namespace {

TEST(BusParams, FrameDurationEquation1) {
  BusParams p;  // defaults: 100 ns/bit, 110 overhead bits, 10 bits/byte
  // 8-byte payload: 110 + 80 = 190 bits = 19 us at 10 Mbit/s.
  EXPECT_EQ(p.frame_duration(8), timeunits::us(19));
}

TEST(BusParams, FrameDurationAbstractUnits) {
  BusParams p;
  p.frame.overhead_bits = 0;
  p.frame.bits_per_payload_byte = 10;
  p.gd_bit = 100;
  EXPECT_EQ(p.frame_duration(4), timeunits::us(4));  // 1 byte == 1 us
}

TEST(BusParams, FrameMinislotsRoundsUp) {
  BusParams p;
  p.gd_minislot = timeunits::us(5);
  // 19 us frame -> 4 minislots of 5 us.
  EXPECT_EQ(p.frame_minislots(8), 4);
  // Exactly one minislot.
  p.frame.overhead_bits = 0;
  p.frame.bits_per_payload_byte = 10;
  EXPECT_EQ(p.frame_minislots(5), 1);
  EXPECT_EQ(p.frame_minislots(6), 2);
}

TEST(SpecLimits, PaperCitedValues) {
  EXPECT_EQ(SpecLimits::kMaxStaticSlots, 1023);
  EXPECT_EQ(SpecLimits::kMaxMinislots, 7994);
  EXPECT_EQ(SpecLimits::kMaxCycle, timeunits::ms(16));
  EXPECT_EQ(SpecLimits::kMaxStaticSlotMacroticks, 661);
  EXPECT_EQ(SpecLimits::kPayloadStepBits, 20);
}

}  // namespace
}  // namespace flexopt
