// Unit tests of the multi-cluster network simulator: single-cluster
// degeneration to simulate(), end-to-end relay chains over the gateway,
// router queue accounting, observed-vs-bound soundness and the
// deterministic flexopt-netsim-trace/1 serialization.

#include <gtest/gtest.h>

#include <memory>

#include "flexopt/analysis/multicluster.hpp"
#include "flexopt/core/config_builder.hpp"
#include "flexopt/netsim/netsim.hpp"
#include "flexopt/netsim/trace_json.hpp"
#include "flexopt/sim/simulator.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

using testing::TinySystem;
using testing::TwoClusterSystem;

SystemConfig start_configs(const SystemModel& model, const BusParams& params) {
  SystemConfig config;
  for (std::size_t c = 0; c < model.cluster_count(); ++c) {
    config.clusters.push_back(
        ClusterConfig::flexray_bus(minimal_start_config(*model.cluster_app(c), params).config));
  }
  return config;
}

struct Network {
  SystemModel model;
  std::vector<ClusterLayout> layouts;
  MulticlusterResult analysis;
};

Network prepare(const Application& app, const BusParams& params) {
  auto model = SystemModel::build(std::make_shared<const Application>(app));
  if (!model.ok()) throw std::runtime_error(model.error().message);
  const SystemConfig config = start_configs(model.value(), params);
  auto layouts = build_system_layouts(model.value(), params, config);
  if (!layouts.ok()) throw std::runtime_error(layouts.error().message);
  auto analysis = analyze_multicluster(model.value(), layouts.value(), AnalysisOptions{});
  if (!analysis.ok()) throw std::runtime_error(analysis.error().message);
  return Network{std::move(model).value(), std::move(layouts).value(),
                 std::move(analysis).value()};
}

TEST(NetSim, SingleClusterDegeneratesToSimulate) {
  TinySystem tiny;
  auto model = SystemModel::build(std::make_shared<const Application>(tiny.app));
  ASSERT_TRUE(model.ok());
  auto layouts =
      build_system_layouts(model.value(), tiny.params, SystemConfig::single(tiny.config));
  ASSERT_TRUE(layouts.ok());
  auto analysis = analyze_multicluster(model.value(), layouts.value(), AnalysisOptions{});
  ASSERT_TRUE(analysis.ok());

  NetSimOptions options;
  options.record_trace = true;
  auto net = simulate_network(model.value(), layouts.value(), analysis.value(), options);
  ASSERT_TRUE(net.ok()) << net.error().message;

  SimOptions sim_options;
  sim_options.record_trace = true;
  auto sim = simulate(layouts.value()[0].flexray(), analysis.value().clusters[0].schedule(),
                      sim_options);
  ASSERT_TRUE(sim.ok());

  EXPECT_EQ(net.value().task_worst_completion, sim.value().task_worst_completion);
  EXPECT_EQ(net.value().message_worst_completion, sim.value().message_worst_completion);
  EXPECT_EQ(net.value().unfinished_jobs, sim.value().unfinished_jobs);
  EXPECT_EQ(net.value().clusters[0].trace.size(), sim.value().trace.size());
  EXPECT_TRUE(net.value().gateways.empty());
  EXPECT_GT(net.value().events, 0u);
}

TEST(NetSim, TwoClusterChainDeliversEndToEnd) {
  TwoClusterSystem sys;
  const Network net = prepare(sys.app, sys.params);
  auto result = simulate_network(net.model, net.layouts, net.analysis);
  ASSERT_TRUE(result.ok()) << result.error().message;
  const NetSimResult& r = result.value();

  EXPECT_EQ(r.unfinished_jobs, 0);
  EXPECT_EQ(r.precedence_violations, 0);
  // src -> m_local -> mid -> m_cross -> sink, strictly ordered.
  const Time src_done = r.task_worst_completion[index_of(sys.src)];
  const Time local_done = r.message_worst_completion[index_of(sys.local_msg)];
  const Time mid_done = r.task_worst_completion[index_of(sys.mid)];
  const Time cross_done = r.message_worst_completion[index_of(sys.cross_msg)];
  const Time sink_done = r.task_worst_completion[index_of(sys.sink)];
  ASSERT_NE(sink_done, kTimeNone);
  EXPECT_LT(src_done, local_done);
  EXPECT_LT(local_done, mid_done);
  EXPECT_LT(mid_done, cross_done);
  EXPECT_LT(cross_done, sink_done);

  // One gateway transition; every instance crossed it without overflow.
  ASSERT_EQ(r.gateways.size(), 1u);
  EXPECT_EQ(r.gateways[0].from_cluster, 0u);
  EXPECT_EQ(r.gateways[0].to_cluster, 1u);
  const Time period = sys.app.period_of(ActivityRef::message(sys.cross_msg));
  EXPECT_EQ(r.gateways[0].forwarded, r.horizon / period);
  EXPECT_GE(r.gateways[0].max_queue_depth, 1);
  EXPECT_EQ(r.gateways[0].overflows, 0);

  // Latency distributions carry one sample per delivered instance.
  const LatencyStat& cross = r.message_latency[index_of(sys.cross_msg)];
  EXPECT_EQ(cross.count, static_cast<std::size_t>(r.horizon / period));
  EXPECT_LE(cross.min, cross.p50);
  EXPECT_LE(cross.p50, cross.p99);
  EXPECT_LE(cross.p99, cross.max);
  EXPECT_EQ(static_cast<Time>(cross.max), cross_done);
}

TEST(NetSim, LatencyStatsDegenerateDistributions) {
  // TinySystem's graphs all share the 100us hyperperiod, so every task has
  // one instance per hyperperiod and the deterministic table repeats
  // exactly: the observed latency distribution is fully degenerate.  The
  // percentile edges this pins down: a single sample (hyperperiods = 1)
  // and an all-equal sample (hyperperiods = 4) must both collapse every
  // statistic to that one latency, with no interpolation noise.
  TinySystem tiny;
  auto model = SystemModel::build(std::make_shared<const Application>(tiny.app));
  ASSERT_TRUE(model.ok());
  auto layouts =
      build_system_layouts(model.value(), tiny.params, SystemConfig::single(tiny.config));
  ASSERT_TRUE(layouts.ok());
  auto analysis = analyze_multicluster(model.value(), layouts.value(), AnalysisOptions{});
  ASSERT_TRUE(analysis.ok());

  for (const int hyperperiods : {1, 4}) {
    NetSimOptions options;
    options.hyperperiods = hyperperiods;
    auto net = simulate_network(model.value(), layouts.value(), analysis.value(), options);
    ASSERT_TRUE(net.ok()) << net.error().message;
    const LatencyStat& stat = net.value().task_latency[index_of(tiny.producer)];
    // The horizon is aligned to the bus cycle as well as the graph
    // hyperperiod, so the instance count only scales with (not equals)
    // `hyperperiods` — what matters here is single vs many samples.
    ASSERT_GE(stat.count, static_cast<std::size_t>(hyperperiods));
    EXPECT_DOUBLE_EQ(stat.min, stat.max);
    EXPECT_DOUBLE_EQ(stat.p50, stat.min);
    EXPECT_DOUBLE_EQ(stat.p99, stat.min);
    EXPECT_DOUBLE_EQ(stat.mean, stat.min);
  }
}

TEST(NetSim, ObservationsStayWithinAnalysedBounds) {
  TwoClusterSystem sys;
  const Network net = prepare(sys.app, sys.params);
  auto result = simulate_network(net.model, net.layouts, net.analysis);
  ASSERT_TRUE(result.ok());
  const SoundnessReport report = check_soundness(net.model, net.analysis, result.value());
  EXPECT_TRUE(report.sound);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_GT(report.checked, 0u);
  EXPECT_GT(report.gap_samples, 0u);
  EXPECT_GE(report.mean_gap, 0.0);
  EXPECT_GE(report.mean_gap, report.min_gap);
}

TEST(NetSim, CrossClusterTraceRecordsBothHops) {
  TwoClusterSystem sys;
  const Network net = prepare(sys.app, sys.params);
  NetSimOptions options;
  options.record_trace = true;
  auto result = simulate_network(net.model, net.layouts, net.analysis, options);
  ASSERT_TRUE(result.ok());

  bool saw_cross = false;
  for (const MessageTrace& trace : result.value().traces) {
    if (index_of(trace.message) != index_of(sys.cross_msg)) continue;
    saw_cross = true;
    ASSERT_EQ(trace.hops.size(), 2u);
    EXPECT_EQ(trace.hops[0].cluster, 0u);
    EXPECT_EQ(trace.hops[0].hop_index, 0);
    EXPECT_EQ(trace.hops[0].gateway_wait, 0);
    EXPECT_EQ(trace.hops[1].cluster, 1u);
    EXPECT_EQ(trace.hops[1].hop_index, 1);
    // The frame entered cluster 1 when hop 0 finished on bus 0, waited in
    // the gateway for the forwarding relay, then hit bus 1.
    EXPECT_EQ(trace.hops[1].enter, trace.hops[0].bus_finish);
    EXPECT_GT(trace.hops[1].gateway_wait, 0);
    EXPECT_GE(trace.hops[1].bus_start, trace.hops[1].enter + trace.hops[1].gateway_wait);
    EXPECT_LT(trace.hops[1].bus_start, trace.hops[1].bus_finish);
  }
  EXPECT_TRUE(saw_cross);

  // Per-cluster transmission records carry the cluster / hop stamps.
  bool saw_hop1_record = false;
  for (const TransmissionRecord& rec : result.value().clusters[1].trace) {
    if (rec.hop_index == 1) {
      saw_hop1_record = true;
      EXPECT_EQ(rec.cluster, 1u);
    }
  }
  EXPECT_TRUE(saw_hop1_record);
}

TEST(NetSim, MultiHyperperiodHorizonIsSharedAndAligned) {
  TwoClusterSystem sys;
  const Network net = prepare(sys.app, sys.params);
  NetSimOptions options;
  options.hyperperiods = 2;
  auto result = simulate_network(net.model, net.layouts, net.analysis, options);
  ASSERT_TRUE(result.ok()) << result.error().message;
  const Time H = net.analysis.clusters[0].schedule().hyperperiod();
  EXPECT_GE(result.value().horizon, 2 * H);
  EXPECT_EQ(result.value().horizon % H, 0);
  for (const ClusterLayout& layout : net.layouts) {
    EXPECT_EQ(result.value().horizon % layout.cycle_len(), 0);
  }
  EXPECT_EQ(result.value().unfinished_jobs, 0);
  const SoundnessReport report = check_soundness(net.model, net.analysis, result.value());
  EXPECT_TRUE(report.sound);
}

TEST(NetSim, TraceJsonIsByteIdenticalAcrossRuns) {
  TwoClusterSystem sys;
  const Network net = prepare(sys.app, sys.params);
  NetSimOptions options;
  options.record_trace = true;
  auto json = [&] {
    auto result = simulate_network(net.model, net.layouts, net.analysis, options);
    if (!result.ok()) throw std::runtime_error(result.error().message);
    const SoundnessReport report = check_soundness(net.model, net.analysis, result.value());
    return write_netsim_trace_json(net.model, net.analysis, result.value(), report,
                                   options.hyperperiods);
  };
  const std::string first = json();
  const std::string second = json();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"schema\": \"flexopt-netsim-trace/1\""), std::string::npos);
  EXPECT_NE(first.find("\"sound\": true"), std::string::npos);
}

}  // namespace
}  // namespace flexopt
