// Golden-file conformance of the flexopt-netsim-trace/1 schema: simulates
// the two-cluster fixture and byte-compares write_netsim_trace_json against
// the checked-in expectation.  Because the sanitize CI job runs the golden
// label on a Debug+ASan build while the release jobs run it at -O2, this is
// also the build-config-independence check for the simulator: any
// optimisation- or libc-dependent drift in event ordering or number
// formatting fails the byte compare.  Intentional schema changes regenerate
// with FLEXOPT_UPDATE_GOLDEN=1 (the test then fails once, asking for a
// re-run, so a stale environment variable cannot silently pass CI).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "flexopt/analysis/multicluster.hpp"
#include "flexopt/core/config_builder.hpp"
#include "flexopt/netsim/netsim.hpp"
#include "flexopt/netsim/trace_json.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

std::string source_path(const std::string& relative) {
  return std::string(FLEXOPT_SOURCE_DIR) + "/" + relative;
}

bool update_goldens() {
  const char* v = std::getenv("FLEXOPT_UPDATE_GOLDEN");
  return v != nullptr && v[0] == '1';
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return in ? out.str() : std::string();
}

void expect_golden(const std::string& name, const std::string& actual) {
  const std::string path = source_path("tests/golden/" + name);
  if (update_goldens()) {
    std::ofstream out(path, std::ios::binary);
    out << actual;
    ASSERT_TRUE(out) << "cannot write " << path;
    FAIL() << "regenerated " << name << "; unset FLEXOPT_UPDATE_GOLDEN and re-run";
  }
  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty()) << "missing golden file " << path
                                 << " (regenerate with FLEXOPT_UPDATE_GOLDEN=1)";
  EXPECT_EQ(expected, actual) << "netsim trace schema drifted from " << name
                              << "; if intentional, regenerate with "
                                 "FLEXOPT_UPDATE_GOLDEN=1";
}

TEST(NetsimTraceGolden, TwoClusterTraceMatchesGolden) {
  testing::TwoClusterSystem sys;
  auto model = SystemModel::build(std::make_shared<const Application>(sys.app));
  ASSERT_TRUE(model.ok());
  SystemConfig config;
  for (std::size_t c = 0; c < model.value().cluster_count(); ++c) {
    config.clusters.push_back(ClusterConfig::flexray_bus(
        minimal_start_config(*model.value().cluster_app(c), sys.params).config));
  }
  auto layouts = build_system_layouts(model.value(), sys.params, config);
  ASSERT_TRUE(layouts.ok());
  auto analysis = analyze_multicluster(model.value(), layouts.value(), AnalysisOptions{});
  ASSERT_TRUE(analysis.ok());

  NetSimOptions options;
  options.hyperperiods = 2;
  options.record_trace = true;
  auto result = simulate_network(model.value(), layouts.value(), analysis.value(), options);
  ASSERT_TRUE(result.ok()) << result.error().message;
  const SoundnessReport soundness =
      check_soundness(model.value(), analysis.value(), result.value());
  EXPECT_TRUE(soundness.sound);
  expect_golden("netsim_trace_twocluster.json",
                write_netsim_trace_json(model.value(), analysis.value(), result.value(),
                                        soundness, options.hyperperiods));
}

}  // namespace
}  // namespace flexopt
