// Campaign spec-file parser tests: keyword coverage, axis replacement and
// extension semantics, and line-numbered errors.

#include <gtest/gtest.h>

#include "flexopt/campaign/spec_format.hpp"

namespace flexopt {
namespace {

TEST(CampaignSpecFormat, ParsesEveryKeyword) {
  auto spec = parse_campaign_text(
      "# full-keyword example\n"
      "name demo\n"
      "nodes 2 3 4\n"
      "topology random-dag gateway\n"
      "traffic mixed st-only\n"
      "node_util 0.25:0.45 0.5:0.7\n"
      "bus_util 0.1:0.4\n"
      "periods 20ms 40ms\n"
      "periods 10ms 30ms 50ms\n"
      "message_bytes 16 32\n"
      "replicates 4\n"
      "tasks_per_node 8\n"
      "tasks_per_graph 4\n"
      "tt_share 0.6\n"
      "deadline_factor 0.8\n"
      "seed 99\n"
      "algorithms bbc obc-cf\n"
      "budget 500\n"
      "time_limit 1.5\n"
      "sim_check on\n");
  ASSERT_TRUE(spec.ok()) << spec.error().message;
  const CampaignSpec& s = spec.value();
  EXPECT_EQ(s.name, "demo");
  EXPECT_EQ(s.node_counts, (std::vector<int>{2, 3, 4}));
  ASSERT_EQ(s.topologies.size(), 2u);
  EXPECT_EQ(s.topologies[1], Topology::GatewayHeavy);
  ASSERT_EQ(s.traffic_mixes.size(), 2u);
  EXPECT_EQ(s.traffic_mixes[1], TrafficMix::StOnly);
  ASSERT_EQ(s.node_util_bands.size(), 2u);
  EXPECT_DOUBLE_EQ(s.node_util_bands[1].lo, 0.5);
  ASSERT_EQ(s.period_sets.size(), 2u);  // repeated `periods` adds an axis value
  EXPECT_EQ(s.period_sets[0], (std::vector<Time>{timeunits::ms(20), timeunits::ms(40)}));
  EXPECT_EQ(s.period_sets[1].size(), 3u);
  EXPECT_EQ(s.message_size_caps, (std::vector<int>{16, 32}));
  EXPECT_EQ(s.replicates, 4);
  EXPECT_EQ(s.tasks_per_node, 8);
  EXPECT_EQ(s.tasks_per_graph, 4);
  EXPECT_DOUBLE_EQ(s.tt_share, 0.6);
  EXPECT_DOUBLE_EQ(s.deadline_factor, 0.8);
  EXPECT_EQ(s.base_seed, 99u);
  EXPECT_EQ(s.algorithms, (std::vector<std::string>{"bbc", "obc-cf"}));
  EXPECT_EQ(s.max_evaluations, 500);
  EXPECT_DOUBLE_EQ(s.max_wall_seconds, 1.5);
  EXPECT_TRUE(s.sim_check);
}

TEST(CampaignSpecFormat, SimCheckIsAStrictBoolean) {
  EXPECT_FALSE(parse_campaign_text("sim_check maybe\n").ok());
  EXPECT_FALSE(parse_campaign_text("sim_check on off\n").ok());  // scalar keyword
  auto off = parse_campaign_text("sim_check off\n");
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(off.value().sim_check);
  auto numeric = parse_campaign_text("sim_check 1\n");
  ASSERT_TRUE(numeric.ok());
  EXPECT_TRUE(numeric.value().sim_check);
}

TEST(CampaignSpecFormat, FirstAxisUseReplacesTheDefault) {
  auto spec = parse_campaign_text("nodes 5\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().node_counts, (std::vector<int>{5}));
  // Untouched axes keep their defaults.
  EXPECT_EQ(spec.value().topologies, (std::vector<Topology>{Topology::RandomDag}));
}

TEST(CampaignSpecFormat, ErrorsCarryTheLineNumber) {
  auto bad_keyword = parse_campaign_text("name ok\nfrobnicate 3\n");
  ASSERT_FALSE(bad_keyword.ok());
  EXPECT_NE(bad_keyword.error().message.find("line 2"), std::string::npos);

  auto bad_band = parse_campaign_text("node_util 0.25-0.45\n");
  ASSERT_FALSE(bad_band.ok());
  EXPECT_NE(bad_band.error().message.find("line 1"), std::string::npos);

  auto bad_duration = parse_campaign_text("name ok\n\nperiods 20parsecs\n");
  ASSERT_FALSE(bad_duration.ok());
  EXPECT_NE(bad_duration.error().message.find("line 3"), std::string::npos);

  auto missing_value = parse_campaign_text("replicates\n");
  EXPECT_FALSE(missing_value.ok());

  auto bad_topology = parse_campaign_text("topology moebius\n");
  ASSERT_FALSE(bad_topology.ok());
  EXPECT_NE(bad_topology.error().message.find("moebius"), std::string::npos);

  // Scalar keywords must reject surplus values instead of silently running
  // a different experiment.
  auto surplus_scalar = parse_campaign_text("replicates 7 10\n");
  ASSERT_FALSE(surplus_scalar.ok());
  EXPECT_NE(surplus_scalar.error().message.find("single value"), std::string::npos);
  EXPECT_FALSE(parse_campaign_text("budget 600 800\n").ok());
}

TEST(CampaignSpecFormat, ParsesClusterKeywords) {
  auto spec = parse_campaign_text(
      "topology multicluster\n"
      "clusters 2 3\n"
      "inter_share 0.4\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().topologies, std::vector<Topology>{Topology::MultiCluster});
  EXPECT_EQ(spec.value().cluster_counts, (std::vector<int>{2, 3}));
  EXPECT_DOUBLE_EQ(spec.value().inter_cluster_share, 0.4);
  // inter_share is a scalar: surplus values must error.
  EXPECT_FALSE(parse_campaign_text("inter_share 0.2 0.3\n").ok());
}

TEST(CampaignSpecFormat, ParsesBackendAxis) {
  auto spec = parse_campaign_text(
      "topology multicluster\n"
      "clusters 2\n"
      "backend flexray tsn mixed\n");
  ASSERT_TRUE(spec.ok()) << spec.error().message;
  EXPECT_EQ(spec.value().backends,
            (std::vector<BackendMix>{BackendMix::Flexray, BackendMix::Tsn, BackendMix::Mixed}));
  // Untouched: the axis defaults to pure FlexRay (pre-backend behaviour).
  auto plain = parse_campaign_text("nodes 4\n");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.value().backends, std::vector<BackendMix>{BackendMix::Flexray});

  // Unknown backend values fail with the line and the valid set.
  auto bad = parse_campaign_text("name ok\nbackend ethernet\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message.find("line 2"), std::string::npos);
  EXPECT_NE(bad.error().message.find("expected flexray, tsn or mixed"), std::string::npos);

  // A typo on the keyword itself gets the did-you-mean hint.
  auto typo = parse_campaign_text("backned tsn\n");
  ASSERT_FALSE(typo.ok());
  EXPECT_NE(typo.error().message.find("did you mean 'backend'"), std::string::npos);
}

TEST(CampaignSpecFormat, ParsesAnalysisModeAxis) {
  auto spec = parse_campaign_text("analysis_mode holistic exact simulate\n");
  ASSERT_TRUE(spec.ok()) << spec.error().message;
  EXPECT_EQ(spec.value().analysis_modes,
            (std::vector<AnalysisMode>{AnalysisMode::Holistic, AnalysisMode::Exact,
                                       AnalysisMode::Simulate}));
  // Untouched: the axis defaults to the holistic backend only.
  auto plain = parse_campaign_text("nodes 4\n");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.value().analysis_modes, std::vector<AnalysisMode>{AnalysisMode::Holistic});

  // Unknown mode values fail with the line and the valid set.
  auto bad = parse_campaign_text("name ok\nanalysis_mode oracle\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message.find("line 2"), std::string::npos);
  EXPECT_NE(bad.error().message.find("holistic"), std::string::npos);
}

TEST(CampaignSpecFormat, ParsesExactJobsScalar) {
  auto spec = parse_campaign_text("analysis_mode exact\nexact_jobs 4\n");
  ASSERT_TRUE(spec.ok()) << spec.error().message;
  EXPECT_EQ(spec.value().exact_jobs, 4);

  // 0 = auto (hardware concurrency); results stay jobs-independent either way.
  auto automatic = parse_campaign_text("exact_jobs 0\n");
  ASSERT_TRUE(automatic.ok());
  EXPECT_EQ(automatic.value().exact_jobs, 0);

  // Untouched: sequential exploration.
  auto plain = parse_campaign_text("nodes 4\n");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.value().exact_jobs, 1);

  // Scalar keyword (not an axis), and negatives are rejected with the line.
  EXPECT_FALSE(parse_campaign_text("exact_jobs 2 4\n").ok());
  auto negative = parse_campaign_text("name ok\nexact_jobs -1\n");
  ASSERT_FALSE(negative.ok());
  EXPECT_NE(negative.error().message.find("line 2"), std::string::npos);
  EXPECT_NE(negative.error().message.find(">= 0"), std::string::npos);

  // The did-you-mean hint covers the new keyword too.
  auto typo = parse_campaign_text("exact_job 2\n");
  ASSERT_FALSE(typo.ok());
  EXPECT_NE(typo.error().message.find("did you mean 'exact_jobs'"), std::string::npos);
}

TEST(CampaignSpecFormat, BackendAxisRejectsSingleBusFamilies) {
  // tsn/mixed require every swept topology to be multicluster: the grid is
  // rejected at expansion (spec-level, not N per-cell skips).
  auto spec = parse_campaign_text(
      "topology pipeline multicluster\n"
      "clusters 2\n"
      "backend tsn\n"
      "tasks_per_node 6\n"
      "tasks_per_graph 3\n");
  ASSERT_TRUE(spec.ok()) << spec.error().message;
  auto plans = expand_grid(spec.value());
  ASSERT_FALSE(plans.ok());
  EXPECT_NE(plans.error().message.find("requires every topology to be multicluster"),
            std::string::npos);

  // Pure-FlexRay backends stay valid with any family (the default path).
  auto flexray = parse_campaign_text(
      "topology pipeline\n"
      "backend flexray\n"
      "tasks_per_node 6\n"
      "tasks_per_graph 3\n");
  ASSERT_TRUE(flexray.ok());
  EXPECT_TRUE(expand_grid(flexray.value()).ok());
}

TEST(CampaignSpecFormat, BackendAxisMultipliesTheGrid) {
  auto spec = parse_campaign_text(
      "nodes 4\n"
      "topology multicluster\n"
      "clusters 2\n"
      "backend flexray tsn\n"
      "tasks_per_node 6\n"
      "tasks_per_graph 3\n"
      "algorithms bbc\n");
  ASSERT_TRUE(spec.ok());
  auto plans = expand_grid(spec.value());
  ASSERT_TRUE(plans.ok()) << plans.error().message;
  ASSERT_EQ(plans.value().size(), 2u);
  EXPECT_EQ(plans.value()[0].scenario.backend, BackendMix::Flexray);
  EXPECT_EQ(plans.value()[1].scenario.backend, BackendMix::Tsn);
}

TEST(CampaignSpecFormat, UnknownKeywordsSuggestTheNearestSpelling) {
  // Typos fail loudly with the line number AND a "did you mean" hint.
  auto typo = parse_campaign_text("name ok\nclustres 2\n");
  ASSERT_FALSE(typo.ok());
  EXPECT_NE(typo.error().message.find("line 2"), std::string::npos);
  EXPECT_NE(typo.error().message.find("did you mean 'clusters'"), std::string::npos);

  auto near_scalar = parse_campaign_text("tt_shore 0.5\n");
  ASSERT_FALSE(near_scalar.ok());
  EXPECT_NE(near_scalar.error().message.find("did you mean 'tt_share'"), std::string::npos);

  // Nothing close: no misleading suggestion.
  auto far = parse_campaign_text("zzzzzzzzzz 1\n");
  ASSERT_FALSE(far.ok());
  EXPECT_EQ(far.error().message.find("did you mean"), std::string::npos);
}

TEST(CampaignSpecFormat, RejectsOutOfRangeIntegers) {
  // Values past int range must error, not wrap to a different experiment.
  EXPECT_FALSE(parse_campaign_text("replicates 4294967297\n").ok());
  EXPECT_FALSE(parse_campaign_text("nodes 2 4294967298\n").ok());
}

TEST(CampaignSpecFormat, SeedCoversTheFullUnsignedRange) {
  // 2^63 is a valid uint64 seed; negatives must be rejected, not wrapped.
  auto big = parse_campaign_text("seed 9223372036854775808\n");
  ASSERT_TRUE(big.ok()) << big.error().message;
  EXPECT_EQ(big.value().base_seed, 9223372036854775808ull);
  EXPECT_FALSE(parse_campaign_text("seed -5\n").ok());
}

TEST(CampaignSpecFormat, ParsedSpecExpandsToARunnableGrid) {
  auto spec = parse_campaign_text(
      "nodes 2\n"
      "topology pipeline\n"
      "replicates 2\n"
      "tasks_per_node 6\n"
      "tasks_per_graph 3\n"
      "algorithms bbc\n");
  ASSERT_TRUE(spec.ok());
  auto plans = expand_grid(spec.value());
  ASSERT_TRUE(plans.ok()) << plans.error().message;
  EXPECT_EQ(plans.value().size(), 2u);
}

}  // namespace
}  // namespace flexopt
