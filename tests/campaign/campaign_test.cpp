// Campaign subsystem tests: grid expansion, seed derivation, the
// thread-count determinism contract of the runner, and skip-and-record on
// degenerate grid cells.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "flexopt/campaign/report.hpp"

namespace flexopt {
namespace {

CampaignSpec tiny_campaign() {
  CampaignSpec spec;
  spec.name = "tiny";
  spec.node_counts = {2};
  spec.topologies = {Topology::RandomDag, Topology::Pipeline};
  spec.traffic_mixes = {TrafficMix::Mixed};
  spec.replicates = 3;
  spec.tasks_per_node = 6;
  spec.tasks_per_graph = 3;
  spec.deadline_factor = 0.7;
  spec.base_seed = 7;
  spec.algorithms = {"bbc"};
  spec.max_evaluations = 200;
  return spec;
}

TEST(CampaignGrid, ExpandsCartesianProductWithReplicatesInnermost) {
  CampaignSpec spec = tiny_campaign();
  spec.node_counts = {2, 3};
  auto plans = expand_grid(spec);
  ASSERT_TRUE(plans.ok()) << plans.error().message;
  ASSERT_EQ(plans.value().size(), 2u * 2u * 3u);
  // Fixed axis nesting: replicates vary fastest, node counts slowest.
  EXPECT_EQ(plans.value()[0].scenario.base.nodes, 2);
  EXPECT_EQ(plans.value()[0].scenario.topology, Topology::RandomDag);
  EXPECT_EQ(plans.value()[2].scenario.topology, Topology::RandomDag);
  EXPECT_EQ(plans.value()[3].scenario.topology, Topology::Pipeline);
  EXPECT_EQ(plans.value()[6].scenario.base.nodes, 3);
  for (std::size_t i = 0; i < plans.value().size(); ++i) {
    EXPECT_EQ(plans.value()[i].index, i);
  }
}

TEST(CampaignGrid, DerivedSeedsAreDistinctAndStable) {
  auto plans = expand_grid(tiny_campaign());
  ASSERT_TRUE(plans.ok());
  std::set<std::uint64_t> seeds;
  for (const ScenarioPlan& plan : plans.value()) {
    seeds.insert(plan.scenario.base.seed);
    EXPECT_EQ(plan.scenario.base.seed, scenario_seed(7, plan.index));
  }
  EXPECT_EQ(seeds.size(), plans.value().size());
  // Replicates of the same cell differ only by seed.
  EXPECT_NE(plans.value()[0].scenario.base.seed, plans.value()[1].scenario.base.seed);
}

TEST(CampaignGrid, RejectsEmptyAxesAndBadBands) {
  CampaignSpec no_algorithms = tiny_campaign();
  no_algorithms.algorithms.clear();
  EXPECT_FALSE(expand_grid(no_algorithms).ok());

  CampaignSpec no_periods = tiny_campaign();
  no_periods.period_sets.clear();
  EXPECT_FALSE(expand_grid(no_periods).ok());

  CampaignSpec zero_replicates = tiny_campaign();
  zero_replicates.replicates = 0;
  EXPECT_FALSE(expand_grid(zero_replicates).ok());

  CampaignSpec inverted_band = tiny_campaign();
  inverted_band.node_util_bands = {{0.5, 0.2}};
  EXPECT_FALSE(expand_grid(inverted_band).ok());

  // Grid-uniform scalar knobs degenerate every cell, so they are rejected
  // at spec level instead of skip-and-recording the whole campaign.
  CampaignSpec bad_tt_share = tiny_campaign();
  bad_tt_share.tt_share = 1.5;
  EXPECT_FALSE(expand_grid(bad_tt_share).ok());

  CampaignSpec bad_deadline = tiny_campaign();
  bad_deadline.deadline_factor = 0.0;
  EXPECT_FALSE(expand_grid(bad_deadline).ok());

  CampaignSpec bad_tasks = tiny_campaign();
  bad_tasks.tasks_per_graph = 1;
  EXPECT_FALSE(expand_grid(bad_tasks).ok());

  CampaignSpec duplicate_algorithm = tiny_campaign();
  duplicate_algorithm.algorithms = {"bbc", "obc-cf", "bbc"};
  EXPECT_FALSE(expand_grid(duplicate_algorithm).ok());
}

TEST(CampaignRunner, UnknownAlgorithmIsASpecLevelError) {
  CampaignSpec spec = tiny_campaign();
  spec.algorithms = {"does-not-exist"};
  CampaignRunner runner(spec, BusParams{});
  EXPECT_FALSE(runner.run().ok());
}

// The acceptance-criterion contract: identical summaries for any thread
// count, byte for byte.
TEST(CampaignRunner, SummariesAreByteIdenticalAcrossThreadCounts) {
  CampaignRunner runner(tiny_campaign(), BusParams{});
  CampaignOptions serial;
  serial.threads = 1;
  CampaignOptions parallel;
  parallel.threads = 4;
  auto a = runner.run(serial);
  auto b = runner.run(parallel);
  ASSERT_TRUE(a.ok()) << a.error().message;
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(write_campaign_json(a.value()), write_campaign_json(b.value()));
  EXPECT_EQ(write_campaign_csv(a.value()), write_campaign_csv(b.value()));
  // Progress reached every scenario exactly once.
  EXPECT_EQ(a.value().scenarios.size(), 6u);
  for (const ScenarioRecord& record : a.value().scenarios) {
    EXPECT_TRUE(record.generated) << record.error;
    ASSERT_EQ(record.runs.size(), 1u);
    EXPECT_EQ(record.runs[0].algorithm, "bbc");
  }
}

// The acceptance determinism check at campaign level: a multicluster grid
// (2 and 3 clusters, portfolio included) is byte-identical between one
// worker and a parallel run — campaign-, descent- and portfolio-level
// parallelism all compose without leaking into the records.
TEST(CampaignRunner, MulticlusterSweepIsByteIdenticalAcrossThreadCounts) {
  CampaignSpec spec;
  spec.name = "mc";
  spec.node_counts = {4};
  spec.topologies = {Topology::MultiCluster};
  spec.cluster_counts = {2, 3};
  spec.traffic_mixes = {TrafficMix::DynOnly};
  spec.inter_cluster_share = 0.25;
  spec.replicates = 2;
  spec.tasks_per_node = 4;
  spec.tasks_per_graph = 4;
  spec.deadline_factor = 2.0;
  spec.base_seed = 3;
  spec.algorithms = {"bbc", "portfolio"};
  spec.portfolio_members = {"sa", "obc-cf"};
  spec.max_evaluations = 120;
  CampaignRunner runner(spec, BusParams{});
  CampaignOptions serial;
  serial.threads = 1;
  CampaignOptions parallel;
  parallel.threads = 4;
  auto a = runner.run(serial);
  auto b = runner.run(parallel);
  ASSERT_TRUE(a.ok()) << a.error().message;
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(write_campaign_json(a.value()), write_campaign_json(b.value()));
  EXPECT_EQ(write_campaign_csv(a.value()), write_campaign_csv(b.value()));
  ASSERT_EQ(a.value().scenarios.size(), 4u);
  for (const ScenarioRecord& record : a.value().scenarios) {
    EXPECT_TRUE(record.generated) << record.error;
    EXPECT_GE(record.cluster_count, 2u);
    ASSERT_EQ(record.runs.size(), 2u);
  }
}

// The backend axis runs through the whole campaign pipeline: per-backend
// scenarios solve, the CSV carries the backend column, the JSON gains a
// by_backend breakdown (absent for the pure-default axis), and the
// byte-identical thread-count contract holds across the mix.
TEST(CampaignRunner, BackendAxisSweepsAndReports) {
  CampaignSpec spec;
  spec.name = "backends";
  spec.node_counts = {6};
  spec.topologies = {Topology::MultiCluster};
  spec.cluster_counts = {3};
  spec.traffic_mixes = {TrafficMix::DynOnly};
  spec.backends = {BackendMix::Flexray, BackendMix::Mixed, BackendMix::Tsn};
  spec.inter_cluster_share = 0.3;
  spec.replicates = 1;
  spec.tasks_per_node = 4;
  spec.tasks_per_graph = 4;
  spec.deadline_factor = 2.0;
  spec.base_seed = 11;
  spec.algorithms = {"bbc"};
  spec.max_evaluations = 120;
  CampaignRunner runner(spec, BusParams{});
  CampaignOptions serial;
  serial.threads = 1;
  CampaignOptions parallel;
  parallel.threads = 3;
  auto a = runner.run(serial);
  auto b = runner.run(parallel);
  ASSERT_TRUE(a.ok()) << a.error().message;
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(write_campaign_json(a.value()), write_campaign_json(b.value()));
  EXPECT_EQ(write_campaign_csv(a.value()), write_campaign_csv(b.value()));

  ASSERT_EQ(a.value().scenarios.size(), 3u);
  for (const ScenarioRecord& record : a.value().scenarios) {
    EXPECT_TRUE(record.generated) << record.error;
  }
  const std::string csv = write_campaign_csv(a.value());
  EXPECT_NE(csv.find(",backend,"), std::string::npos);
  EXPECT_NE(csv.find(",mixed,"), std::string::npos);
  const std::string json = write_campaign_json(a.value());
  EXPECT_NE(json.find("\"by_backend\""), std::string::npos);
  for (const char* tag : {"\"flexray\"", "\"mixed\"", "\"tsn\""}) {
    EXPECT_NE(json.find(tag), std::string::npos) << tag;
  }
  const AlgorithmAggregate tsn_only =
      aggregate_runs_backend(a.value(), "bbc", BackendMix::Tsn);
  EXPECT_EQ(tsn_only.scenarios, 1u);

  // Default axis: no by_backend block, pre-backend output bytes preserved.
  CampaignSpec plain = tiny_campaign();
  auto p = CampaignRunner(plain, BusParams{}).run();
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(write_campaign_json(p.value()).find("by_backend"), std::string::npos);
}

// A degenerate grid cell (divisibility violation for nodes=3) is recorded
// as skipped; the campaign neither crashes nor aborts.
TEST(CampaignRunner, SkipsAndRecordsDegenerateScenarios) {
  CampaignSpec spec = tiny_campaign();
  spec.node_counts = {2, 3};
  spec.tasks_per_node = 5;
  spec.tasks_per_graph = 2;  // 10 % 2 == 0 but 15 % 2 != 0
  CampaignRunner runner(spec, BusParams{});
  auto result = runner.run();
  ASSERT_TRUE(result.ok()) << result.error().message;
  std::size_t generated = 0;
  std::size_t skipped = 0;
  for (const ScenarioRecord& record : result.value().scenarios) {
    if (record.generated) {
      EXPECT_EQ(record.plan.scenario.base.nodes, 2);
      ++generated;
    } else {
      EXPECT_EQ(record.plan.scenario.base.nodes, 3);
      EXPECT_FALSE(record.error.empty());
      EXPECT_TRUE(record.runs.empty());
      ++skipped;
    }
  }
  EXPECT_EQ(generated, 6u);
  EXPECT_EQ(skipped, 6u);
  // Skipped scenarios surface in the JSON summary.
  const std::string json = write_campaign_json(result.value());
  EXPECT_NE(json.find("\"skipped\": 6"), std::string::npos);
  EXPECT_NE(json.find("skipped_scenarios"), std::string::npos);
}

// sim_check replays every analysable winner on the network simulator and
// records the observed-vs-bound verdict and pessimism gap per run — and the
// extra lane keeps the byte-identical thread-count contract.
TEST(CampaignRunner, SimCheckRecordsSoundnessAndGap) {
  CampaignSpec spec;
  spec.name = "simcheck";
  spec.node_counts = {4};
  spec.topologies = {Topology::MultiCluster};
  spec.cluster_counts = {2};
  spec.traffic_mixes = {TrafficMix::DynOnly};
  spec.replicates = 2;
  spec.tasks_per_node = 4;
  spec.tasks_per_graph = 4;
  spec.deadline_factor = 2.0;
  spec.base_seed = 3;
  spec.algorithms = {"bbc"};
  spec.max_evaluations = 120;
  spec.sim_check = true;
  CampaignRunner runner(spec, BusParams{});
  CampaignOptions serial;
  serial.threads = 1;
  CampaignOptions parallel;
  parallel.threads = 4;
  auto a = runner.run(serial);
  auto b = runner.run(parallel);
  ASSERT_TRUE(a.ok()) << a.error().message;
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(write_campaign_json(a.value()), write_campaign_json(b.value()));
  EXPECT_EQ(write_campaign_csv(a.value()), write_campaign_csv(b.value()));

  std::size_t simulated = 0;
  for (const ScenarioRecord& record : a.value().scenarios) {
    if (!record.generated) continue;
    for (const AlgorithmRun& run : record.runs) {
      if (run.cost < kInvalidConfigCost) {
        EXPECT_TRUE(run.simulated);
        EXPECT_TRUE(run.sim_sound);
        EXPECT_GE(run.sim_gap, 0.0);
        ++simulated;
      } else {
        EXPECT_FALSE(run.simulated);
      }
    }
  }
  EXPECT_GT(simulated, 0u);

  const AlgorithmAggregate agg = aggregate_runs(a.value(), "bbc");
  EXPECT_EQ(agg.simulated, simulated);
  EXPECT_EQ(agg.sim_unsound, 0u);
  EXPECT_GE(agg.sim_gap_mean, 0.0);
  const std::string csv = write_campaign_csv(a.value());
  EXPECT_NE(csv.find(",simulated,sim_sound,sim_gap"), std::string::npos);
  const std::string json = write_campaign_json(a.value());
  EXPECT_NE(json.find("\"sim_unsound\": 0"), std::string::npos);
}

/// Splits one CSV line into fields (empty fields preserved).
std::vector<std::string> csv_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  for (const char c : line) {
    if (c == ',') {
      fields.push_back(field);
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  fields.push_back(field);
  return fields;
}

std::vector<std::string> csv_lines(const std::string& csv) {
  std::vector<std::string> lines;
  std::string line;
  for (const char c : csv) {
    if (c == '\n') {
      if (!line.empty()) lines.push_back(line);
      line.clear();
    } else {
      line.push_back(c);
    }
  }
  if (!line.empty()) lines.push_back(line);
  return lines;
}

// The generation-error fallback row regression: every CSV row — including
// the fallback rows of degenerate grid cells — must have exactly as many
// columns as the header (the old hard-coded fallback literal drifted when
// columns were added), and a never-simulated row leaves sim_sound *empty*
// instead of claiming soundness it never checked.
TEST(CampaignReport, CsvRowsMatchHeaderShapeIncludingFallbackRows) {
  CampaignSpec spec = tiny_campaign();
  spec.node_counts = {2, 3};
  spec.tasks_per_node = 5;
  spec.tasks_per_graph = 2;  // 15 % 2 != 0: nodes=3 cells fail generation
  auto result = CampaignRunner(spec, BusParams{}).run();
  ASSERT_TRUE(result.ok()) << result.error().message;

  for (const bool include_timing : {false, true}) {
    const std::string csv = write_campaign_csv(result.value(), include_timing);
    const std::vector<std::string> lines = csv_lines(csv);
    ASSERT_GT(lines.size(), 1u);
    const std::vector<std::string> header = csv_fields(lines[0]);
    std::size_t fallback_rows = 0;
    for (std::size_t i = 1; i < lines.size(); ++i) {
      const std::vector<std::string> row = csv_fields(lines[i]);
      ASSERT_EQ(row.size(), header.size()) << "row " << i << ": " << lines[i];
      std::size_t column = 0;
      for (const std::string& name : header) {
        const std::string& value = row[column++];
        if (name == "status" && value == "generation-error") ++fallback_rows;
        if (name == "sim_sound") {
          // sim_sound is only ever 0/1 on simulated rows; otherwise empty.
          const bool simulated = row[column - 2] == "1";
          if (simulated) {
            EXPECT_TRUE(value == "0" || value == "1") << lines[i];
          } else {
            EXPECT_TRUE(value.empty()) << lines[i];
          }
        }
      }
    }
    EXPECT_GT(fallback_rows, 0u);
  }

  // Fallback-row shape, field by field.
  const std::string csv = write_campaign_csv(result.value());
  const std::vector<std::string> lines = csv_lines(csv);
  const std::vector<std::string> header = csv_fields(lines[0]);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::vector<std::string> row = csv_fields(lines[i]);
    bool is_fallback = false;
    for (std::size_t c = 0; c < header.size(); ++c) {
      is_fallback = is_fallback || (header[c] == "status" && row[c] == "generation-error");
    }
    if (!is_fallback) continue;
    for (std::size_t c = 0; c < header.size(); ++c) {
      if (header[c] == "algorithm") {
        EXPECT_EQ(row[c], "-");
      } else if (header[c] == "cost" || header[c] == "sim_sound") {
        EXPECT_TRUE(row[c].empty()) << lines[i];
      } else if (header[c] == "feasible" || header[c] == "simulated" ||
                 header[c] == "evaluations" || header[c] == "exact_ran") {
        EXPECT_EQ(row[c], "0") << header[c];
      }
    }
  }
}

// The analysis_mode axis: holistic and exact lanes of the same grid cell,
// exact runs record refinement stats, the by_mode aggregate appears, and
// the thread-count determinism contract extends to the new axis.
TEST(CampaignRunner, AnalysisModeAxisRecordsPessimism) {
  CampaignSpec spec;
  spec.name = "modes";
  spec.node_counts = {3};
  spec.traffic_mixes = {TrafficMix::DynOnly};
  spec.replicates = 2;
  spec.tasks_per_node = 4;
  spec.tasks_per_graph = 4;
  spec.deadline_factor = 2.0;
  spec.base_seed = 5;
  spec.algorithms = {"bbc"};
  spec.max_evaluations = 120;
  spec.analysis_modes = {AnalysisMode::Holistic, AnalysisMode::Exact};
  CampaignRunner runner(spec, BusParams{});
  CampaignOptions serial;
  serial.threads = 1;
  CampaignOptions parallel;
  parallel.threads = 4;
  auto a = runner.run(serial);
  auto b = runner.run(parallel);
  ASSERT_TRUE(a.ok()) << a.error().message;
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(write_campaign_json(a.value()), write_campaign_json(b.value()));
  EXPECT_EQ(write_campaign_csv(a.value()), write_campaign_csv(b.value()));

  std::size_t exact_ran = 0;
  for (const ScenarioRecord& record : a.value().scenarios) {
    if (!record.generated) continue;
    for (const AlgorithmRun& run : record.runs) {
      EXPECT_EQ(run.analysis_mode, record.plan.analysis_mode);
      if (record.plan.analysis_mode == AnalysisMode::Exact &&
          run.cost < kInvalidConfigCost) {
        EXPECT_TRUE(run.exact_ran);
        EXPECT_GE(run.exact_gap_mean, 0.0);
        ++exact_ran;
      }
      if (record.plan.analysis_mode == AnalysisMode::Holistic) {
        EXPECT_FALSE(run.exact_ran);
      }
    }
  }
  EXPECT_GT(exact_ran, 0u);

  const AlgorithmAggregate exact_agg =
      aggregate_runs_mode(a.value(), "bbc", AnalysisMode::Exact);
  EXPECT_EQ(exact_agg.exact_ran, exact_ran);
  const AlgorithmAggregate holistic_agg =
      aggregate_runs_mode(a.value(), "bbc", AnalysisMode::Holistic);
  EXPECT_EQ(holistic_agg.exact_ran, 0u);

  const std::string csv = write_campaign_csv(a.value());
  EXPECT_NE(csv.find(",analysis_mode,exact_ran,"), std::string::npos);
  EXPECT_NE(csv.find(",exact,"), std::string::npos);
  EXPECT_NE(csv.find(",holistic,"), std::string::npos);
  const std::string json = write_campaign_json(a.value());
  EXPECT_NE(json.find("\"by_mode\""), std::string::npos);
  EXPECT_NE(json.find("\"exact_gap_mean\""), std::string::npos);

  // Default axis: no by_mode block, pre-axis JSON bytes preserved.
  auto plain = CampaignRunner(tiny_campaign(), BusParams{}).run();
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(write_campaign_json(plain.value()).find("by_mode"), std::string::npos);
  EXPECT_EQ(write_campaign_json(plain.value()).find("exact_gap_mean"), std::string::npos);
}

TEST(CampaignReport, AggregatesPerAlgorithmAndNodeCount) {
  CampaignRunner runner(tiny_campaign(), BusParams{});
  auto result = runner.run();
  ASSERT_TRUE(result.ok());
  const AlgorithmAggregate overall = aggregate_runs(result.value(), "bbc");
  EXPECT_EQ(overall.scenarios, 6u);
  EXPECT_GE(overall.schedulable_fraction, 0.0);
  EXPECT_LE(overall.schedulable_fraction, 1.0);
  EXPECT_GT(overall.evaluations_total, 0);
  const AlgorithmAggregate by_nodes = aggregate_runs(result.value(), "bbc", 2);
  EXPECT_EQ(by_nodes.scenarios, overall.scenarios);
  EXPECT_EQ(aggregate_runs(result.value(), "bbc", 4).scenarios, 0u);
}

}  // namespace
}  // namespace flexopt
