// JsonWriter determinism and structure tests: the campaign summaries rely
// on identical values producing identical bytes.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "flexopt/io/json_writer.hpp"

namespace flexopt {
namespace {

TEST(JsonWriter, NestedObjectsAndArrays) {
  JsonWriter json;
  json.begin_object();
  json.field("name", "demo");
  json.field("count", 3);
  json.key("items").begin_array();
  json.value(1).value(2);
  json.begin_object();
  json.field("ok", true);
  json.end_object();
  json.end_array();
  json.end_object();
  EXPECT_EQ(json.str(),
            "{\n"
            "  \"name\": \"demo\",\n"
            "  \"count\": 3,\n"
            "  \"items\": [\n"
            "    1,\n"
            "    2,\n"
            "    {\n"
            "      \"ok\": true\n"
            "    }\n"
            "  ]\n"
            "}\n");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter json;
  json.begin_object();
  json.field("text", "quote \" backslash \\ newline \n tab \t");
  json.end_object();
  EXPECT_NE(json.str().find("quote \\\" backslash \\\\ newline \\n tab \\t"),
            std::string::npos);
  EXPECT_EQ(json_escape("\x01"), "\\u0001");
}

TEST(JsonWriter, DoubleFormattingIsStable) {
  EXPECT_EQ(json_double(0.5), "0.5");
  EXPECT_EQ(json_double(-3.0), "-3");
  EXPECT_EQ(json_double(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "null");
  // Same value twice => same bytes (the whole point of the writer).
  EXPECT_EQ(json_double(1.0 / 3.0), json_double(1.0 / 3.0));
}

TEST(JsonWriter, ExplicitNullValue) {
  JsonWriter writer;
  writer.begin_object()
      .field("present", 1)
      .key("absent")
      .null_value()
      .end_object();
  EXPECT_NE(writer.str().find("\"absent\": null"), std::string::npos);

  JsonWriter in_array;
  in_array.begin_array().null_value().value(2).end_array();
  EXPECT_EQ(in_array.str(), "[\n  null,\n  2\n]\n");
}

TEST(JsonWriter, MisuseThrows) {
  JsonWriter value_without_key;
  value_without_key.begin_object();
  EXPECT_THROW(value_without_key.value(1), std::logic_error);

  JsonWriter unbalanced;
  unbalanced.begin_object();
  EXPECT_THROW(unbalanced.end_array(), std::logic_error);

  JsonWriter key_in_array;
  key_in_array.begin_array();
  EXPECT_THROW(key_in_array.key("nope"), std::logic_error);
}

}  // namespace
}  // namespace flexopt
