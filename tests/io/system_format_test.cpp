// Text system-description format: parsing, validation errors with line
// numbers, duration literals, and write/parse round trips.

#include <gtest/gtest.h>

#include "flexopt/gen/cruise_control.hpp"
#include "flexopt/io/system_format.hpp"

namespace flexopt {
namespace {

constexpr const char* kMinimal = R"(
# two nodes, one TT loop, one ET path
param gd_minislot=2us
node a
node b
graph loop tt period=10ms deadline=8ms
task t0 graph=loop node=a wcet=300us prio=0
task t1 graph=loop node=b wcet=500us prio=1
message m0 from=t0 to=t1 bytes=8 prio=0
graph evt et period=20ms
task e0 graph=evt node=b wcet=200us prio=2 offset=1ms
task e1 graph=evt node=a wcet=100us prio=3
message m1 from=e0 to=e1 bytes=4 prio=1
)";

TEST(SystemFormat, ParsesMinimalSystem) {
  auto parsed = parse_system_text(kMinimal);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const Application& app = parsed.value().app;
  EXPECT_EQ(app.node_count(), 2u);
  EXPECT_EQ(app.graph_count(), 2u);
  EXPECT_EQ(app.task_count(), 4u);
  EXPECT_EQ(app.message_count(), 2u);
  EXPECT_EQ(parsed.value().params.gd_minislot, timeunits::us(2));
  // Policy / class follow the graph trigger.
  EXPECT_EQ(app.tasks()[0].policy, TaskPolicy::Scs);
  EXPECT_EQ(app.tasks()[2].policy, TaskPolicy::Fps);
  EXPECT_EQ(app.messages()[0].cls, MessageClass::Static);
  EXPECT_EQ(app.messages()[1].cls, MessageClass::Dynamic);
  // Attributes round through.
  EXPECT_EQ(app.tasks()[2].release_offset, timeunits::ms(1));
  EXPECT_EQ(app.graphs()[0].deadline, timeunits::ms(8));
  EXPECT_EQ(app.graphs()[1].deadline, timeunits::ms(20));  // default = period
}

TEST(SystemFormat, DurationLiterals) {
  EXPECT_EQ(parse_duration("250").value(), 250);
  EXPECT_EQ(parse_duration("250ns").value(), 250);
  EXPECT_EQ(parse_duration("3us").value(), timeunits::us(3));
  EXPECT_EQ(parse_duration("10ms").value(), timeunits::ms(10));
  EXPECT_EQ(parse_duration("2s").value(), timeunits::sec(2));
  EXPECT_FALSE(parse_duration("").ok());
  EXPECT_FALSE(parse_duration("ms").ok());
  EXPECT_FALSE(parse_duration("10parsec").ok());
}

TEST(SystemFormat, ErrorsCarryLineNumbers) {
  auto bad = parse_system_text("node a\nbogus keyword here\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message.find("line 2"), std::string::npos);
}

TEST(SystemFormat, RejectsUnknownReferences) {
  EXPECT_FALSE(parse_system_text("node a\ngraph g tt period=1ms\n"
                                 "task t graph=nope node=a wcet=1us\n")
                   .ok());
  EXPECT_FALSE(parse_system_text("node a\ngraph g tt period=1ms\n"
                                 "task t graph=g node=nope wcet=1us\n")
                   .ok());
  EXPECT_FALSE(parse_system_text("node a\nnode b\ngraph g tt period=1ms\n"
                                 "task t graph=g node=a wcet=1us\n"
                                 "message m from=t to=ghost bytes=2\n")
                   .ok());
}

TEST(SystemFormat, RejectsDuplicates) {
  EXPECT_FALSE(parse_system_text("node a\nnode a\n").ok());
  EXPECT_FALSE(parse_system_text("node a\ngraph g tt period=1ms\ngraph g et period=2ms\n").ok());
}

TEST(SystemFormat, ModelRulesStillApply) {
  // Intra-node message -> model validation error surfaces through finalize.
  auto bad = parse_system_text(
      "node a\nnode b\ngraph g tt period=1ms\n"
      "task t0 graph=g node=a wcet=1us\ntask t1 graph=g node=a wcet=1us\n"
      "message m from=t0 to=t1 bytes=2\n");
  EXPECT_FALSE(bad.ok());
}

TEST(SystemFormat, WriteParseRoundTrip) {
  auto parsed = parse_system_text(kMinimal);
  ASSERT_TRUE(parsed.ok());
  const std::string dumped = write_system(parsed.value().app, parsed.value().params);
  auto reparsed = parse_system_text(dumped);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().message << "\n" << dumped;
  const Application& a = parsed.value().app;
  const Application& b = reparsed.value().app;
  ASSERT_EQ(a.task_count(), b.task_count());
  ASSERT_EQ(a.message_count(), b.message_count());
  for (std::uint32_t t = 0; t < a.task_count(); ++t) {
    EXPECT_EQ(a.tasks()[t].wcet, b.tasks()[t].wcet);
    EXPECT_EQ(a.tasks()[t].policy, b.tasks()[t].policy);
    EXPECT_EQ(a.tasks()[t].release_offset, b.tasks()[t].release_offset);
  }
  for (std::uint32_t m = 0; m < a.message_count(); ++m) {
    EXPECT_EQ(a.messages()[m].size_bytes, b.messages()[m].size_bytes);
    EXPECT_EQ(a.messages()[m].cls, b.messages()[m].cls);
  }
  EXPECT_EQ(parsed.value().params.gd_minislot, reparsed.value().params.gd_minislot);
}

TEST(SystemFormat, ClusteredSystemRoundTrip) {
  const char* text =
      "node A\n"
      "node B cluster=1\n"
      "gateway GW cluster=0 bridges=1\n"
      "graph G et period=20ms deadline=20ms\n"
      "task t0 graph=G node=A wcet=500us prio=1\n"
      "task t1 graph=G node=B wcet=400us prio=2\n"
      "message m from=t0 to=t1 bytes=8 prio=1\n";
  auto parsed = parse_system_text(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const Application& a = parsed.value().app;
  EXPECT_EQ(a.cluster_count(), 2u);
  EXPECT_TRUE(a.has_cross_cluster_messages());
  ASSERT_EQ(a.route_of(static_cast<MessageId>(0)).gateways.size(), 1u);

  const std::string dumped = write_system(a, parsed.value().params);
  EXPECT_NE(dumped.find("node B cluster=1"), std::string::npos);
  EXPECT_NE(dumped.find("gateway GW cluster=0 bridges=1"), std::string::npos);
  auto reparsed = parse_system_text(dumped);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().message << "\n" << dumped;
  EXPECT_EQ(reparsed.value().app.cluster_count(), 2u);

  // Cluster-aware parse errors, including trailing garbage: a mistyped
  // separator must fail loudly, not silently drop bridged clusters.
  EXPECT_FALSE(parse_system_text("node A cluster=-1\n").ok());
  EXPECT_FALSE(parse_system_text("node A cluster=1x\n").ok());
  EXPECT_FALSE(parse_system_text("gateway GW cluster=0\n").ok());
  EXPECT_FALSE(parse_system_text("gateway GW bridges=1\n").ok());
  EXPECT_FALSE(parse_system_text("gateway GW cluster=0 bridges=1;2\n").ok());
}

TEST(SystemFormat, BackendKeywordRoundTrips) {
  const char* text =
      "node A\n"
      "node B cluster=1\n"
      "gateway GW cluster=0 bridges=1\n"
      "backend 1 tsn\n"
      "graph G et period=20ms deadline=20ms\n"
      "task t0 graph=G node=A wcet=500us prio=1\n"
      "task t1 graph=G node=B wcet=400us prio=2\n"
      "message m from=t0 to=t1 bytes=8 prio=1\n";
  auto parsed = parse_system_text(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const Application& a = parsed.value().app;
  EXPECT_EQ(a.cluster_backend(static_cast<ClusterId>(0)), ClusterBackendKind::FlexRay);
  EXPECT_EQ(a.cluster_backend(static_cast<ClusterId>(1)), ClusterBackendKind::Tsn);

  // The writer emits backend lines only for non-FlexRay clusters, and the
  // declaration survives a round trip.
  const std::string dumped = write_system(a, parsed.value().params);
  EXPECT_NE(dumped.find("backend 1 tsn"), std::string::npos);
  EXPECT_EQ(dumped.find("backend 0"), std::string::npos);
  auto reparsed = parse_system_text(dumped);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().message << "\n" << dumped;
  EXPECT_EQ(reparsed.value().app.cluster_backend(static_cast<ClusterId>(1)),
            ClusterBackendKind::Tsn);

  // Pure-FlexRay systems keep emitting pre-backend text (byte compatibility).
  auto plain = parse_system_text(kMinimal);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(write_system(plain.value().app, plain.value().params).find("backend"),
            std::string::npos);

  // Malformed backend lines fail with the line number and the valid set.
  auto bad_kind = parse_system_text("node A\nbackend 0 ethernet\n");
  ASSERT_FALSE(bad_kind.ok());
  EXPECT_NE(bad_kind.error().message.find("line 2"), std::string::npos);
  EXPECT_NE(bad_kind.error().message.find("expected flexray or tsn"), std::string::npos);
  EXPECT_FALSE(parse_system_text("node A\nbackend tsn\n").ok());
  EXPECT_FALSE(parse_system_text("node A\nbackend -1 tsn\n").ok());
  // Declaring a backend for a cluster that never materializes must be
  // rejected by finalize, not silently dropped.
  EXPECT_FALSE(parse_system_text("node A\nbackend 3 tsn\n"
                                 "graph G et period=20ms\n"
                                 "task t graph=G node=A wcet=10us prio=1\n")
                   .ok());
}

TEST(SystemFormat, CruiseControllerRoundTrip) {
  const Application cc = build_cruise_controller();
  const std::string dumped = write_system(cc, cruise_controller_params());
  auto reparsed = parse_system_text(dumped);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().message;
  EXPECT_EQ(reparsed.value().app.task_count(), cc.task_count());
  EXPECT_EQ(reparsed.value().app.message_count(), cc.message_count());
  EXPECT_EQ(reparsed.value().app.graph_count(), cc.graph_count());
  // Topology preserved: same adjacency sizes per activity.
  for (std::uint32_t t = 0; t < cc.task_count(); ++t) {
    EXPECT_EQ(
        reparsed.value().app.successors(ActivityRef::task(static_cast<TaskId>(t))).size(),
        cc.successors(ActivityRef::task(static_cast<TaskId>(t))).size());
  }
}

}  // namespace
}  // namespace flexopt
