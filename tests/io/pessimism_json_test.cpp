// Solve-report v5 pessimism block serialization, end to end from a real
// analysis: a gate-starved TSN egress port pins an ET bound to infinity,
// and that infinity must reach the JSON as `null` — never as the
// kTimeInfinity sentinel integer, which downstream tooling would read as a
// (very large) finite bound.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "flexopt/analysis/exact/exact_analysis.hpp"
#include "flexopt/analysis/sat_time.hpp"
#include "flexopt/analysis/multicluster.hpp"
#include "flexopt/io/solve_report_json.hpp"
#include "flexopt/model/system_model.hpp"

namespace flexopt {
namespace {

/// A single-cluster TSN system whose only ET message is starved: the ST
/// gate window leaves a gap shorter than the ET frame, so guard banding
/// blocks it forever (mirrors the tsn_analysis starvation fixture).
struct StarvedTsnSystem {
  Application app;
  SystemConfig config;
  MessageId dyn{};

  StarvedTsnSystem() {
    const NodeId a = app.add_node("A");
    const NodeId b = app.add_node("B");
    const GraphId tt = app.add_graph("tt", timeunits::us(100), timeunits::us(100));
    const GraphId et = app.add_graph("et", timeunits::us(100), timeunits::us(100));
    const TaskId p = app.add_task(tt, "p", a, timeunits::us(1), TaskPolicy::Scs);
    const TaskId c = app.add_task(tt, "c", b, timeunits::us(1), TaskPolicy::Scs);
    const MessageId st = app.add_message(tt, "st", p, c, 4, MessageClass::Static);
    const TaskId e = app.add_task(et, "e", a, timeunits::us(1), TaskPolicy::Fps, 1);
    const TaskId s = app.add_task(et, "s", b, timeunits::us(1), TaskPolicy::Fps, 2);
    dyn = app.add_message(et, "dyn", e, s, 2, MessageClass::Dynamic, 0);
    app.set_cluster_backend(ClusterId{0}, ClusterBackendKind::Tsn);
    auto fin = app.finalize();
    if (!fin.ok()) throw std::runtime_error(fin.error().message);

    TsnConfig tsn;
    tsn.cycle = timeunits::us(5);
    tsn.link_rate_mbps = 100;
    tsn.gates.assign(app.message_count(), TsnGateWindow{});
    tsn.et_priority.assign(app.message_count(), 0);
    // Window covers all but 500ns of the cycle; the ET frame never fits.
    tsn.gates[index_of(st)] = TsnGateWindow{0, timeunits::us(5) - 500};
    config.clusters.push_back(ClusterConfig::tsn_switch(std::move(tsn)));
  }
};

TEST(PessimismJson, StarvedPortSerializesInfiniteBoundAsNull) {
  StarvedTsnSystem sys;
  auto built = SystemModel::build(std::make_shared<const Application>(sys.app));
  ASSERT_TRUE(built.ok()) << built.error().message;
  const SystemModel& model = built.value();
  auto layouts = build_system_layouts(model, BusParams{}, sys.config);
  ASSERT_TRUE(layouts.ok()) << layouts.error().message;

  AnalysisOptions options;
  options.mode = AnalysisMode::Exact;
  auto analysis = analyze_multicluster(model, layouts.value(), options);
  ASSERT_TRUE(analysis.ok()) << analysis.error().message;
  ASSERT_EQ(analysis.value().clusters.size(), 1u);
  ASSERT_TRUE(
      is_infinite(analysis.value().clusters[0].message_completion[index_of(sys.dyn)]));

  std::vector<const Application*> apps{model.cluster_app(0).get()};
  const PessimismReport pessimism = make_pessimism_report(apps, analysis.value().clusters);
  ASSERT_GT(pessimism.unbounded, 0u);

  SolveReport report;
  report.outcome.system = sys.config;
  report.outcome.cost = analysis.value().cost;
  report.outcome.feasible = false;
  report.outcome.evaluations = 1;
  const std::string json = write_solve_json(sys.app, "exact", report, false, &pessimism);

  EXPECT_NE(json.find("\"schema\": \"flexopt-solve-report/5\""), std::string::npos);
  EXPECT_NE(json.find("\"pessimism\""), std::string::npos);
  EXPECT_NE(json.find("\"unbounded\": " + std::to_string(pessimism.unbounded)),
            std::string::npos);
  // The starved bound reaches the JSON as null, not as the sentinel.
  EXPECT_NE(json.find("\"holistic\": null"), std::string::npos);
  EXPECT_EQ(json.find(std::to_string(kTimeInfinity)), std::string::npos);

  // Without a report the block is absent and the schema stays v5.
  const std::string plain = write_solve_json(sys.app, "exact", report);
  EXPECT_EQ(plain.find("\"pessimism\""), std::string::npos);
  EXPECT_NE(plain.find("\"flexopt-solve-report/5\""), std::string::npos);
}

}  // namespace
}  // namespace flexopt
