// Golden-file conformance of the solve-report JSON schema: solves fixtures
// drawn from specs/smoke.campaign and byte-compares write_solve_json —
// exactly what `flexopt_cli solve --json` emits — against the checked-in
// expectations in tests/golden/.  An intentional schema change regenerates
// them with FLEXOPT_UPDATE_GOLDEN=1 (the test then fails once, asking for
// a re-run, so a stale environment variable cannot silently pass CI).
//
// This is the guard PRs 1-3 lacked: report fields silently renamed,
// reordered, or dropped now fail here instead of surfacing downstream in
// whoever parses the JSON artifacts.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "flexopt/campaign/spec_format.hpp"
#include "flexopt/core/portfolio.hpp"
#include "flexopt/io/solve_report_json.hpp"

namespace flexopt {
namespace {

std::string source_path(const std::string& relative) {
  return std::string(FLEXOPT_SOURCE_DIR) + "/" + relative;
}

bool update_goldens() {
  const char* v = std::getenv("FLEXOPT_UPDATE_GOLDEN");
  return v != nullptr && v[0] == '1';
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return in ? out.str() : std::string();
}

/// Byte-compares `actual` against the golden file, or rewrites it in
/// update mode.
void expect_golden(const std::string& name, const std::string& actual) {
  const std::string path = source_path("tests/golden/" + name);
  if (update_goldens()) {
    std::ofstream out(path, std::ios::binary);
    out << actual;
    ASSERT_TRUE(out) << "cannot write " << path;
    FAIL() << "regenerated " << name << "; unset FLEXOPT_UPDATE_GOLDEN and re-run";
  }
  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty()) << "missing golden file " << path
                                 << " (regenerate with FLEXOPT_UPDATE_GOLDEN=1)";
  EXPECT_EQ(expected, actual) << "solve-report schema drifted from " << name
                              << "; if intentional, regenerate with "
                                 "FLEXOPT_UPDATE_GOLDEN=1";
}

/// The smoke-campaign fixture scenarios, generated exactly like
/// `flexopt_cli campaign specs/smoke.campaign` would.
struct Fixture {
  Application app;
  BusParams params;
  std::uint64_t seed = 0;
  long budget = 0;
};

Fixture smoke_fixture(std::size_t index) {
  std::ifstream in(source_path("specs/smoke.campaign"));
  auto spec = parse_campaign(in);
  if (!spec.ok()) throw std::runtime_error(spec.error().message);
  auto plans = expand_grid(spec.value());
  if (!plans.ok()) throw std::runtime_error(plans.error().message);
  if (index >= plans.value().size()) throw std::runtime_error("fixture index out of range");
  Fixture fixture;
  fixture.params = BusParams{};
  fixture.seed = plans.value()[index].scenario.base.seed;
  fixture.budget = spec.value().max_evaluations;
  auto app = generate_scenario(plans.value()[index].scenario, fixture.params);
  if (!app.ok()) throw std::runtime_error(app.error().message);
  fixture.app = std::move(app).value();
  return fixture;
}

std::string solve_to_json(const Fixture& fixture, const std::string& algorithm,
                          const OptimizerParams& params, long budget) {
  auto optimizer = OptimizerRegistry::create(algorithm, params);
  if (!optimizer.ok()) throw std::runtime_error(optimizer.error().message);
  CostEvaluator evaluator(fixture.app, fixture.params, AnalysisOptions{});
  SolveRequest request;
  request.seed = fixture.seed;
  request.max_evaluations = budget;
  const SolveReport report = optimizer.value()->solve(evaluator, request);
  return write_solve_json(fixture.app, algorithm, report) + "\n";
}

TEST(SolveGolden, BbcReportMatchesGolden) {
  const Fixture fixture = smoke_fixture(0);
  expect_golden("solve_smoke0_bbc.json",
                solve_to_json(fixture, "bbc", {}, fixture.budget));
}

TEST(SolveGolden, ObcCfReportMatchesGolden) {
  const Fixture fixture = smoke_fixture(5);  // the pipeline half of the grid
  expect_golden("solve_smoke5_obccf.json",
                solve_to_json(fixture, "obc-cf", {}, fixture.budget));
}

TEST(SolveGolden, PortfolioReportMatchesGolden) {
  const Fixture fixture = smoke_fixture(0);
  PortfolioSpec spec;
  spec.members = {"sa", "sa", "obc-cf", "bbc"};
  expect_golden("solve_smoke0_portfolio.json",
                solve_to_json(fixture, "portfolio", spec, 160));
}

}  // namespace
}  // namespace flexopt
