// Unit tests of the discrete-event simulator on the tiny two-node system:
// delivery, completion accounting, FPS preemption in SCS slack, trace
// recording, and multi-hyperperiod alignment rules.

#include <gtest/gtest.h>

#include "flexopt/sim/simulator.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

using testing::analyze;
using testing::make_layout;
using testing::TinySystem;

TEST(Simulator, DeliversEverythingOnTinySystem) {
  TinySystem sys;
  const BusLayout layout = make_layout(sys.app, sys.params, sys.config);
  const AnalysisResult analysis = analyze(layout);
  auto sim = simulate(layout, analysis.schedule);
  ASSERT_TRUE(sim.ok()) << sim.error().message;
  EXPECT_EQ(sim.value().unfinished_jobs, 0);
  EXPECT_EQ(sim.value().precedence_violations, 0);
  for (std::uint32_t t = 0; t < sys.app.task_count(); ++t) {
    EXPECT_NE(sim.value().task_worst_completion[t], kTimeNone) << sys.app.tasks()[t].name;
  }
}

TEST(Simulator, CompletionsRespectPrecedence) {
  TinySystem sys;
  const BusLayout layout = make_layout(sys.app, sys.params, sys.config);
  const AnalysisResult analysis = analyze(layout);
  auto sim = simulate(layout, analysis.schedule);
  ASSERT_TRUE(sim.ok());
  const auto& r = sim.value();
  // producer -> st -> consumer -> (nothing); fps -> dyn -> fps_sink.
  EXPECT_LT(r.task_worst_completion[index_of(sys.producer)],
            r.message_worst_completion[index_of(sys.st_msg)]);
  EXPECT_LT(r.message_worst_completion[index_of(sys.st_msg)],
            r.task_worst_completion[index_of(sys.consumer)]);
  EXPECT_LT(r.task_worst_completion[index_of(sys.fps_task)],
            r.message_worst_completion[index_of(sys.dyn_msg)]);
  EXPECT_LT(r.message_worst_completion[index_of(sys.dyn_msg)],
            r.task_worst_completion[index_of(sys.fps_sink)]);
}

TEST(Simulator, TraceRecordsBothSegments) {
  TinySystem sys;
  const BusLayout layout = make_layout(sys.app, sys.params, sys.config);
  const AnalysisResult analysis = analyze(layout);
  SimOptions options;
  options.record_trace = true;
  auto sim = simulate(layout, analysis.schedule, options);
  ASSERT_TRUE(sim.ok());
  bool saw_st = false;
  bool saw_dyn = false;
  for (const TransmissionRecord& r : sim.value().trace) {
    (r.dynamic ? saw_dyn : saw_st) = true;
    EXPECT_LT(r.start, r.finish);
  }
  EXPECT_TRUE(saw_st);
  EXPECT_TRUE(saw_dyn);
}

TEST(Simulator, RejectsMisalignedMultiHyperperiodRuns) {
  TinySystem sys;
  // Cycle = 2*5 + 8*1 = 18 us; hyper-period = 100 us; 100 % 18 != 0.
  const BusLayout layout = make_layout(sys.app, sys.params, sys.config);
  const AnalysisResult analysis = analyze(layout);
  SimOptions options;
  options.hyperperiods = 2;
  auto sim = simulate(layout, analysis.schedule, options);
  EXPECT_FALSE(sim.ok());
}

TEST(Simulator, AcceptsAlignedMultiHyperperiodRuns) {
  TinySystem sys;
  sys.config.minislot_count = 10;  // cycle = 10 + 10 = 20 us; 100 % 20 == 0
  const BusLayout layout = make_layout(sys.app, sys.params, sys.config);
  const AnalysisResult analysis = analyze(layout);
  SimOptions options;
  options.hyperperiods = 3;
  auto sim = simulate(layout, analysis.schedule, options);
  ASSERT_TRUE(sim.ok()) << sim.error().message;
  EXPECT_EQ(sim.value().unfinished_jobs, 0);
  EXPECT_EQ(sim.value().precedence_violations, 0);
}

TEST(Simulator, RejectsNonPositiveHyperperiods) {
  TinySystem sys;
  const BusLayout layout = make_layout(sys.app, sys.params, sys.config);
  const AnalysisResult analysis = analyze(layout);
  SimOptions options;
  options.hyperperiods = 0;
  EXPECT_FALSE(simulate(layout, analysis.schedule, options).ok());
}

TEST(Simulator, FpsTaskPreemptedByScsTableEntries) {
  // One node; an SCS task occupying [0, 40) of every 100 us period via the
  // table, plus an FPS task of 30 us: the FPS task must finish after the
  // SCS block (it only runs in the slack), i.e. completion >= 70.
  Application app;
  const NodeId n0 = app.add_node("N0");
  const NodeId n1 = app.add_node("N1");
  const GraphId tt = app.add_graph("tt", timeunits::us(100), timeunits::us(100));
  const GraphId et = app.add_graph("et", timeunits::us(100), timeunits::us(100));
  app.add_task(tt, "scs", n0, timeunits::us(40), TaskPolicy::Scs);
  const TaskId fps = app.add_task(et, "fps", n0, timeunits::us(30), TaskPolicy::Fps, 1);
  // A dummy ST message so the bus has something to carry (and N1 a task).
  const TaskId other = app.add_task(tt, "other", n1, timeunits::us(1), TaskPolicy::Scs);
  (void)other;
  ASSERT_TRUE(app.finalize().ok());

  BusConfig config;
  config.static_slot_count = 0;
  config.minislot_count = 10;
  config.frame_id.assign(app.message_count(), 0);
  const BusLayout layout = make_layout(app, didactic_params(), config);
  const AnalysisResult analysis = analyze(layout);
  auto sim = simulate(layout, analysis.schedule);
  ASSERT_TRUE(sim.ok()) << sim.error().message;
  EXPECT_GE(sim.value().task_worst_completion[index_of(fps)], timeunits::us(70));
}

}  // namespace
}  // namespace flexopt
