// Unit tests of the discrete-event simulator on the tiny two-node system:
// delivery, completion accounting, FPS preemption in SCS slack, trace
// recording, multi-hyperperiod alignment rules, and a 25-scenario
// soundness cross-check (simulated latencies never exceed analysed bounds).

#include <gtest/gtest.h>

#include "flexopt/core/config_builder.hpp"
#include "flexopt/gen/scenario.hpp"
#include "flexopt/sim/simulator.hpp"
#include "flexopt/util/rng.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

using testing::analyze;
using testing::make_layout;
using testing::TinySystem;

TEST(Simulator, DeliversEverythingOnTinySystem) {
  TinySystem sys;
  const BusLayout layout = make_layout(sys.app, sys.params, sys.config);
  const AnalysisResult analysis = analyze(layout);
  auto sim = simulate(layout, analysis.schedule());
  ASSERT_TRUE(sim.ok()) << sim.error().message;
  EXPECT_EQ(sim.value().unfinished_jobs, 0);
  EXPECT_EQ(sim.value().precedence_violations, 0);
  for (std::uint32_t t = 0; t < sys.app.task_count(); ++t) {
    EXPECT_NE(sim.value().task_worst_completion[t], kTimeNone) << sys.app.tasks()[t].name;
  }
}

TEST(Simulator, CompletionsRespectPrecedence) {
  TinySystem sys;
  const BusLayout layout = make_layout(sys.app, sys.params, sys.config);
  const AnalysisResult analysis = analyze(layout);
  auto sim = simulate(layout, analysis.schedule());
  ASSERT_TRUE(sim.ok());
  const auto& r = sim.value();
  // producer -> st -> consumer -> (nothing); fps -> dyn -> fps_sink.
  EXPECT_LT(r.task_worst_completion[index_of(sys.producer)],
            r.message_worst_completion[index_of(sys.st_msg)]);
  EXPECT_LT(r.message_worst_completion[index_of(sys.st_msg)],
            r.task_worst_completion[index_of(sys.consumer)]);
  EXPECT_LT(r.task_worst_completion[index_of(sys.fps_task)],
            r.message_worst_completion[index_of(sys.dyn_msg)]);
  EXPECT_LT(r.message_worst_completion[index_of(sys.dyn_msg)],
            r.task_worst_completion[index_of(sys.fps_sink)]);
}

TEST(Simulator, TraceRecordsBothSegments) {
  TinySystem sys;
  const BusLayout layout = make_layout(sys.app, sys.params, sys.config);
  const AnalysisResult analysis = analyze(layout);
  SimOptions options;
  options.record_trace = true;
  auto sim = simulate(layout, analysis.schedule(), options);
  ASSERT_TRUE(sim.ok());
  bool saw_st = false;
  bool saw_dyn = false;
  for (const TransmissionRecord& r : sim.value().trace) {
    (r.dynamic ? saw_dyn : saw_st) = true;
    EXPECT_LT(r.start, r.finish);
  }
  EXPECT_TRUE(saw_st);
  EXPECT_TRUE(saw_dyn);
}

TEST(Simulator, AlignsMisalignedMultiHyperperiodRuns) {
  // Regression: hyperperiods > 1 with a bus cycle that does not divide the
  // hyper-period used to be refused; the horizon is now aligned up to a
  // multiple of lcm(cycle, hyper-period).
  TinySystem sys;
  // Cycle = 2*5 + 8*1 = 18 us; hyper-period = 100 us; 100 % 18 != 0.
  const BusLayout layout = make_layout(sys.app, sys.params, sys.config);
  const AnalysisResult analysis = analyze(layout);
  SimOptions options;
  options.hyperperiods = 2;
  auto sim = simulate(layout, analysis.schedule(), options);
  ASSERT_TRUE(sim.ok()) << sim.error().message;
  // lcm(100 us, 18 us) = 900 us already covers the requested 200 us.
  EXPECT_EQ(sim.value().horizon, timeunits::us(900));
  EXPECT_EQ(sim.value().horizon % layout.cycle_len(), 0);
  EXPECT_EQ(sim.value().horizon % analysis.schedule().hyperperiod(), 0);
  EXPECT_EQ(sim.value().unfinished_jobs, 0);
  EXPECT_EQ(sim.value().precedence_violations, 0);
  // The longer horizon still validates the analysis bounds.
  for (std::uint32_t t = 0; t < sys.app.task_count(); ++t) {
    const Time o = sim.value().task_worst_completion[t];
    if (o == kTimeNone) continue;
    EXPECT_LE(o, analysis.task_completion[t]) << sys.app.tasks()[t].name;
  }
  for (std::uint32_t m = 0; m < sys.app.message_count(); ++m) {
    const Time o = sim.value().message_worst_completion[m];
    if (o == kTimeNone) continue;
    EXPECT_LE(o, analysis.message_completion[m]) << sys.app.messages()[m].name;
  }
}

TEST(Simulator, AlignedRunsKeepTheExactRequestedHorizon) {
  TinySystem sys;
  sys.config.minislot_count = 10;  // cycle = 10 + 10 = 20 us; 100 % 20 == 0
  const BusLayout layout = make_layout(sys.app, sys.params, sys.config);
  const AnalysisResult analysis = analyze(layout);
  SimOptions options;
  options.hyperperiods = 3;
  auto sim = simulate(layout, analysis.schedule(), options);
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ(sim.value().horizon, 3 * analysis.schedule().hyperperiod());
}

TEST(Simulator, TraceIsByteIdenticalAcrossRepeatedRuns) {
  // Same layout + schedule + options must reproduce the exact trace —
  // the engine has no hidden state across invocations.  (Cross-build
  // determinism of the serialized form is covered by the netsim golden
  // trace under tests/golden/.)
  TinySystem sys;
  const BusLayout layout = make_layout(sys.app, sys.params, sys.config);
  const AnalysisResult analysis = analyze(layout);
  SimOptions options;
  options.record_trace = true;
  options.hyperperiods = 2;  // exercises the lcm-aligned path too
  auto first = simulate(layout, analysis.schedule(), options);
  auto second = simulate(layout, analysis.schedule(), options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  const auto& a = first.value().trace;
  const auto& b = second.value().trace;
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(index_of(a[i].message), index_of(b[i].message));
    EXPECT_EQ(a[i].instance, b[i].instance);
    EXPECT_EQ(a[i].dynamic, b[i].dynamic);
    EXPECT_EQ(a[i].slot, b[i].slot);
    EXPECT_EQ(a[i].cycle, b[i].cycle);
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].finish, b[i].finish);
    EXPECT_EQ(a[i].cluster, 0u);
    EXPECT_EQ(a[i].hop_index, 0);
  }
}

TEST(Simulator, AcceptsAlignedMultiHyperperiodRuns) {
  TinySystem sys;
  sys.config.minislot_count = 10;  // cycle = 10 + 10 = 20 us; 100 % 20 == 0
  const BusLayout layout = make_layout(sys.app, sys.params, sys.config);
  const AnalysisResult analysis = analyze(layout);
  SimOptions options;
  options.hyperperiods = 3;
  auto sim = simulate(layout, analysis.schedule(), options);
  ASSERT_TRUE(sim.ok()) << sim.error().message;
  EXPECT_EQ(sim.value().unfinished_jobs, 0);
  EXPECT_EQ(sim.value().precedence_violations, 0);
}

TEST(Simulator, RejectsNonPositiveHyperperiods) {
  TinySystem sys;
  const BusLayout layout = make_layout(sys.app, sys.params, sys.config);
  const AnalysisResult analysis = analyze(layout);
  SimOptions options;
  options.hyperperiods = 0;
  EXPECT_FALSE(simulate(layout, analysis.schedule(), options).ok());
}

TEST(Simulator, FpsTaskPreemptedByScsTableEntries) {
  // One node; an SCS task occupying [0, 40) of every 100 us period via the
  // table, plus an FPS task of 30 us: the FPS task must finish after the
  // SCS block (it only runs in the slack), i.e. completion >= 70.
  Application app;
  const NodeId n0 = app.add_node("N0");
  const NodeId n1 = app.add_node("N1");
  const GraphId tt = app.add_graph("tt", timeunits::us(100), timeunits::us(100));
  const GraphId et = app.add_graph("et", timeunits::us(100), timeunits::us(100));
  app.add_task(tt, "scs", n0, timeunits::us(40), TaskPolicy::Scs);
  const TaskId fps = app.add_task(et, "fps", n0, timeunits::us(30), TaskPolicy::Fps, 1);
  // A dummy ST message so the bus has something to carry (and N1 a task).
  const TaskId other = app.add_task(tt, "other", n1, timeunits::us(1), TaskPolicy::Scs);
  (void)other;
  ASSERT_TRUE(app.finalize().ok());

  BusConfig config;
  config.static_slot_count = 0;
  config.minislot_count = 10;
  config.frame_id.assign(app.message_count(), 0);
  const BusLayout layout = make_layout(app, didactic_params(), config);
  const AnalysisResult analysis = analyze(layout);
  auto sim = simulate(layout, analysis.schedule());
  ASSERT_TRUE(sim.ok()) << sim.error().message;
  EXPECT_GE(sim.value().task_worst_completion[index_of(fps)], timeunits::us(70));
}

TEST(Simulator, MultiHyperperiodWorstCasesAreMonotone) {
  // Simulating a longer horizon can only observe worse (or equal) worst
  // cases, and both horizons stay within the analysed bounds.
  TinySystem sys;
  sys.config.minislot_count = 10;  // cycle 20 us divides the 100 us hyper-period
  const BusLayout layout = make_layout(sys.app, sys.params, sys.config);
  const AnalysisResult analysis = analyze(layout);
  SimOptions one;
  one.hyperperiods = 1;
  SimOptions four;
  four.hyperperiods = 4;
  auto short_run = simulate(layout, analysis.schedule(), one);
  auto long_run = simulate(layout, analysis.schedule(), four);
  ASSERT_TRUE(short_run.ok());
  ASSERT_TRUE(long_run.ok());
  EXPECT_EQ(long_run.value().unfinished_jobs, 0);
  for (std::uint32_t t = 0; t < sys.app.task_count(); ++t) {
    const Time s = short_run.value().task_worst_completion[t];
    const Time l = long_run.value().task_worst_completion[t];
    ASSERT_NE(l, kTimeNone);
    if (s != kTimeNone) {
      EXPECT_GE(l, s) << sys.app.tasks()[t].name;
    }
    EXPECT_LE(l, analysis.task_completion[t]) << sys.app.tasks()[t].name;
  }
  for (std::uint32_t m = 0; m < sys.app.message_count(); ++m) {
    const Time s = short_run.value().message_worst_completion[m];
    const Time l = long_run.value().message_worst_completion[m];
    if (s != kTimeNone && l != kTimeNone) {
      EXPECT_GE(l, s);
    }
    if (l != kTimeNone) {
      EXPECT_LE(l, analysis.message_completion[m]);
    }
  }
}

TEST(Simulator, SimulatedLatenciesNeverExceedAnalysedBoundsOn25Scenarios) {
  // Soundness cross-check over 25 random scenarios spanning every
  // single-bus topology family: for every activity the observed worst
  // graph-relative completion is dominated by the analysed bound.
  Rng rng(87251);
  const BusParams params;
  int simulated = 0;
  for (int i = 0; i < 25; ++i) {
    ScenarioSpec spec;
    spec.topology = static_cast<Topology>(rng.index(4));
    spec.traffic = static_cast<TrafficMix>(rng.index(3));
    spec.base.nodes = static_cast<int>(rng.uniform_int(2, 4));
    spec.base.tasks_per_graph = 3;
    spec.base.tasks_per_node = 3 * static_cast<int>(rng.uniform_int(1, 2));
    spec.base.tt_share = rng.uniform_real(0.2, 0.8);
    spec.base.deadline_factor = rng.uniform_real(1.0, 2.0);
    spec.base.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30));
    auto app = generate_scenario(spec, params);
    ASSERT_TRUE(app.ok()) << app.error().message;

    const StartConfig start = minimal_start_config(app.value(), params);
    if (!start.bounds.feasible()) continue;
    auto layout_or = BusLayout::build(app.value(), params, start.config);
    if (!layout_or.ok()) continue;
    const AnalysisResult analysis = analyze(layout_or.value());
    auto sim = simulate(layout_or.value(), analysis.schedule());
    ASSERT_TRUE(sim.ok()) << sim.error().message;
    ++simulated;
    const SimResult& observed = sim.value();
    EXPECT_EQ(observed.precedence_violations, 0) << "seed " << spec.base.seed;
    for (std::uint32_t t = 0; t < app.value().task_count(); ++t) {
      const Time o = observed.task_worst_completion[t];
      if (o == kTimeNone) continue;
      EXPECT_LE(o, analysis.task_completion[t])
          << app.value().tasks()[t].name << " seed " << spec.base.seed;
    }
    for (std::uint32_t m = 0; m < app.value().message_count(); ++m) {
      const Time o = observed.message_worst_completion[m];
      if (o == kTimeNone) continue;
      EXPECT_LE(o, analysis.message_completion[m])
          << app.value().messages()[m].name << " seed " << spec.base.seed;
    }
  }
  // The population must actually exercise the cross-check.
  EXPECT_GE(simulated, 15);
}

TEST(Simulator, HorizonOverflowFailsWithADiagnostic) {
  // A 2^61-1 ns graph period (prime, so near-coprime with any bus cycle):
  // multi-hyper-period horizons must fail with a diagnostic naming the
  // hyper-period and the cycle instead of wrapping the 64-bit time range.
  constexpr Time kHuge = (Time{1} << 61) - 1;
  Application app;
  const NodeId n0 = app.add_node("N0");
  const NodeId n1 = app.add_node("N1");
  const GraphId et = app.add_graph("et", kHuge, kHuge);
  const TaskId fps = app.add_task(et, "fps", n1, timeunits::us(3), TaskPolicy::Fps, 1);
  const TaskId sink = app.add_task(et, "sink", n0, timeunits::us(1), TaskPolicy::Fps, 2);
  const MessageId dyn = app.add_message(et, "dyn", fps, sink, 2, MessageClass::Dynamic, 0);
  ASSERT_TRUE(app.finalize().ok());

  BusConfig config;
  config.static_slot_count = 2;
  config.static_slot_len = timeunits::us(5);
  config.static_slot_owner = {n0, n1};
  config.minislot_count = 8;
  config.frame_id.assign(app.message_count(), 0);
  config.frame_id[index_of(dyn)] = 1;
  const BusLayout layout = make_layout(app, didactic_params(), config);
  const AnalysisResult analysis = analyze(layout);
  ASSERT_EQ(analysis.schedule().hyperperiod(), kHuge);

  // hyperperiods = 2: 2 * (2^61 - 1) fits, but aligning it up to
  // lcm(2^61 - 1, cycle) does not — the lcm itself overflows.
  SimOptions two;
  two.hyperperiods = 2;
  auto aligned = simulate(layout, analysis.schedule(), two);
  ASSERT_FALSE(aligned.ok());
  EXPECT_NE(aligned.error().message.find("near-coprime"), std::string::npos);
  EXPECT_NE(aligned.error().message.find(std::to_string(kHuge)), std::string::npos);

  // hyperperiods = 8: the H x N product itself leaves the 64-bit range.
  SimOptions eight;
  eight.hyperperiods = 8;
  auto scaled = simulate(layout, analysis.schedule(), eight);
  ASSERT_FALSE(scaled.ok());
  EXPECT_NE(scaled.error().message.find("overflows the 64-bit time range"), std::string::npos);
}

}  // namespace
}  // namespace flexopt
