// Focused FTDMA arbitration tests: multiple instances per hyper-period,
// CHI queue ordering, and readiness-at-slot-boundary semantics.

#include <gtest/gtest.h>

#include <algorithm>

#include "flexopt/sim/simulator.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

using testing::analyze;
using testing::make_layout;

/// One DYN sender with a fast period, sharing the bus with a slow one.
struct ArbFixture {
  Application app;
  BusParams params = didactic_params();
  MessageId fast_msg{};
  MessageId slow_msg{};
  NodeId n0{};
  NodeId n1{};

  ArbFixture() {
    n0 = app.add_node("N0");
    n1 = app.add_node("N1");
    const GraphId fast = app.add_graph("fast", timeunits::us(40), timeunits::us(40));
    const GraphId slow = app.add_graph("slow", timeunits::us(120), timeunits::us(120));
    const TaskId fs = app.add_task(fast, "fs", n0, timeunits::us(1), TaskPolicy::Fps, 0);
    const TaskId fr = app.add_task(fast, "fr", n1, timeunits::us(1), TaskPolicy::Fps, 5);
    fast_msg = app.add_message(fast, "fm", fs, fr, 2, MessageClass::Dynamic, 0);
    const TaskId ss = app.add_task(slow, "ss", n1, timeunits::us(1), TaskPolicy::Fps, 1);
    const TaskId sr = app.add_task(slow, "sr", n0, timeunits::us(1), TaskPolicy::Fps, 5);
    slow_msg = app.add_message(slow, "sm", ss, sr, 3, MessageClass::Dynamic, 0);
    if (!app.finalize().ok()) throw std::runtime_error("fixture");
  }

  BusConfig config() const {
    BusConfig c;
    c.static_slot_count = 0;
    c.minislot_count = 10;  // cycle = 10us; hyper-period 120us = 12 cycles
    c.frame_id.assign(app.message_count(), 0);
    c.frame_id[index_of(fast_msg)] = 1;
    c.frame_id[index_of(slow_msg)] = 2;
    return c;
  }
};

TEST(DynArbitration, EveryInstanceDelivered) {
  ArbFixture f;
  const BusLayout layout = make_layout(f.app, f.params, f.config());
  const AnalysisResult analysis = analyze(layout);
  SimOptions options;
  options.record_trace = true;
  auto sim = simulate(layout, analysis.schedule(), options);
  ASSERT_TRUE(sim.ok()) << sim.error().message;
  EXPECT_EQ(sim.value().unfinished_jobs, 0);
  // 3 instances of the fast message, 1 of the slow one.
  int fast_count = 0;
  int slow_count = 0;
  for (const TransmissionRecord& r : sim.value().trace) {
    if (r.message == f.fast_msg) ++fast_count;
    if (r.message == f.slow_msg) ++slow_count;
  }
  EXPECT_EQ(fast_count, 3);
  EXPECT_EQ(slow_count, 1);
}

TEST(DynArbitration, InstancesTransmitInOrder) {
  ArbFixture f;
  const BusLayout layout = make_layout(f.app, f.params, f.config());
  const AnalysisResult analysis = analyze(layout);
  SimOptions options;
  options.record_trace = true;
  auto sim = simulate(layout, analysis.schedule(), options);
  ASSERT_TRUE(sim.ok());
  std::vector<TransmissionRecord> fast;
  for (const TransmissionRecord& r : sim.value().trace) {
    if (r.message == f.fast_msg) fast.push_back(r);
  }
  std::sort(fast.begin(), fast.end(),
            [](const TransmissionRecord& a, const TransmissionRecord& b) {
              return a.start < b.start;
            });
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].instance, static_cast<int>(i));
    // Each instance transmits no earlier than its release.
    EXPECT_GE(fast[i].start, timeunits::us(40) * static_cast<Time>(i));
  }
}

TEST(DynArbitration, MessageNotReadyBeforeSlotWaitsForNextCycle) {
  // Sender with a release offset that lands just after its DYN slot has
  // passed in cycle 0: the frame must go out in cycle 1.
  Application app;
  const NodeId n0 = app.add_node("N0");
  const NodeId n1 = app.add_node("N1");
  const GraphId g = app.add_graph("g", timeunits::us(60), timeunits::us(60));
  const TaskId s = app.add_task(g, "s", n0, timeunits::us(1), TaskPolicy::Fps, 0);
  const TaskId r = app.add_task(g, "r", n1, timeunits::us(1), TaskPolicy::Fps, 1);
  const MessageId m = app.add_message(g, "m", s, r, 2, MessageClass::Dynamic, 0);
  // DYN segment = cycle [0, 10); slot 1 at t=0.  Offset 2 -> ready at 3.
  app.set_task_release_offset(s, timeunits::us(2));
  ASSERT_TRUE(app.finalize().ok());

  BusConfig config;
  config.static_slot_count = 0;
  config.minislot_count = 10;
  config.frame_id.assign(app.message_count(), 0);
  config.frame_id[index_of(m)] = 1;
  const BusLayout layout = make_layout(app, didactic_params(), config);
  const AnalysisResult analysis = analyze(layout);
  SimOptions options;
  options.record_trace = true;
  auto sim = simulate(layout, analysis.schedule(), options);
  ASSERT_TRUE(sim.ok());
  ASSERT_FALSE(sim.value().trace.empty());
  const TransmissionRecord& first = sim.value().trace.front();
  EXPECT_EQ(first.cycle, 1);  // missed cycle 0's slot
  EXPECT_GE(first.start, timeunits::us(10));
}

TEST(DynArbitration, SamePriorityFifoWithinFrameId) {
  // Two same-priority messages of one node on one FrameID: the one queued
  // first transmits first.
  Application app;
  const NodeId n0 = app.add_node("N0");
  const NodeId n1 = app.add_node("N1");
  const GraphId g = app.add_graph("g", timeunits::us(100), timeunits::us(100));
  const TaskId s1 = app.add_task(g, "s1", n0, timeunits::us(1), TaskPolicy::Fps, 0);
  const TaskId s2 = app.add_task(g, "s2", n0, timeunits::us(2), TaskPolicy::Fps, 1);
  const TaskId r1 = app.add_task(g, "r1", n1, timeunits::us(1), TaskPolicy::Fps, 5);
  const TaskId r2 = app.add_task(g, "r2", n1, timeunits::us(1), TaskPolicy::Fps, 6);
  const MessageId early = app.add_message(g, "early", s1, r1, 2, MessageClass::Dynamic, 3);
  const MessageId late = app.add_message(g, "late", s2, r2, 2, MessageClass::Dynamic, 3);
  ASSERT_TRUE(app.finalize().ok());

  BusConfig config;
  config.static_slot_count = 0;
  config.minislot_count = 10;
  config.frame_id.assign(app.message_count(), 0);
  config.frame_id[index_of(early)] = 1;
  config.frame_id[index_of(late)] = 1;
  const BusLayout layout = make_layout(app, didactic_params(), config);
  const AnalysisResult analysis = analyze(layout);
  SimOptions options;
  options.record_trace = true;
  auto sim = simulate(layout, analysis.schedule(), options);
  ASSERT_TRUE(sim.ok());
  Time t_early = kTimeNone;
  Time t_late = kTimeNone;
  for (const TransmissionRecord& r : sim.value().trace) {
    if (r.message == early) t_early = r.start;
    if (r.message == late) t_late = r.start;
  }
  ASSERT_NE(t_early, kTimeNone);
  ASSERT_NE(t_late, kTimeNone);
  EXPECT_LT(t_early, t_late);
}

}  // namespace
}  // namespace flexopt
