// Reproduction of the scenario comparisons of Fig. 3 (ST segment
// structure) and Fig. 4 (DYN FrameID assignment / segment length): the
// response-time orderings — and for Fig. 3, the paper's exact values —
// must come out of both the simulator and the analysis.

#include <gtest/gtest.h>

#include "flexopt/sim/simulator.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

using testing::analyze;
using testing::make_layout;

/// Simulated worst graph-relative completion of `m` under scenario `i`.
Time simulated_completion(const FigureBundle& bundle, std::size_t i, MessageId m) {
  const BusLayout layout = make_layout(bundle.app, bundle.params, bundle.configs[i]);
  const AnalysisResult analysis = analyze(layout);
  auto sim = simulate(layout, analysis.schedule());
  EXPECT_TRUE(sim.ok()) << sim.error().message;
  EXPECT_EQ(sim.value().precedence_violations, 0);
  const Time c = sim.value().message_worst_completion[index_of(m)];
  EXPECT_NE(c, kTimeNone) << "message never delivered in scenario " << bundle.labels[i];
  return c;
}

TEST(Fig3Scenarios, ReproducesPaperResponseTimesForM3) {
  const FigureBundle bundle = build_fig3();
  const MessageId m3 = bundle.focus[0];
  // The paper's Fig. 3 values: R3 = 16 (a), 12 (b), 10 (c).
  EXPECT_EQ(simulated_completion(bundle, 0, m3), timeunits::us(16));
  EXPECT_EQ(simulated_completion(bundle, 1, m3), timeunits::us(12));
  EXPECT_EQ(simulated_completion(bundle, 2, m3), timeunits::us(10));
}

TEST(Fig3Scenarios, AnalysisMatchesTableDrivenResponseTimes) {
  // ST messages are table-driven, so the analysis bound equals the
  // simulated completion exactly.
  const FigureBundle bundle = build_fig3();
  const MessageId m3 = bundle.focus[0];
  const Time expected[3] = {timeunits::us(16), timeunits::us(12), timeunits::us(10)};
  for (std::size_t i = 0; i < 3; ++i) {
    const BusLayout layout = make_layout(bundle.app, bundle.params, bundle.configs[i]);
    const AnalysisResult analysis = analyze(layout);
    EXPECT_EQ(analysis.message_completion[index_of(m3)], expected[i]) << bundle.labels[i];
  }
}

TEST(Fig3Scenarios, LongerSlotsDelayOtherMessages) {
  // The paper notes the trade-off: packing in (c) delays m1/m2 reception
  // relative to their own slot in (b).  m2 is delivered at its slot end, so
  // (c)'s longer slot pushes its delivery later than (b)'s.
  const FigureBundle bundle = build_fig3();
  const MessageId m2{1};
  const Time r2_b = simulated_completion(bundle, 1, m2);
  const Time r2_c = simulated_completion(bundle, 2, m2);
  EXPECT_GT(r2_c, r2_b);
}

TEST(Fig4Scenarios, StrictImprovementAcrossConfigurations) {
  const FigureBundle bundle = build_fig4();
  const MessageId m2 = bundle.focus[0];
  const Time r2_a = simulated_completion(bundle, 0, m2);
  const Time r2_b = simulated_completion(bundle, 1, m2);
  const Time r2_c = simulated_completion(bundle, 2, m2);
  // Paper: R2 = 37 > 35 > 21.  Our frame timing gives 30 > 29 > 16 — the
  // same strict ordering with a large win for the enlarged DYN segment.
  EXPECT_GT(r2_a, r2_b);
  EXPECT_GT(r2_b, r2_c);
  EXPECT_EQ(r2_a, timeunits::us(30));
  EXPECT_EQ(r2_b, timeunits::us(29));
  EXPECT_EQ(r2_c, timeunits::us(16));
}

TEST(Fig4Scenarios, SharedFrameIdDelaysLowerPriorityMessage) {
  // In (a) m3 shares FrameID 1 with the higher-priority m1 and must wait a
  // full cycle; in (b) it has its own FrameID and goes out in cycle 1.
  const FigureBundle bundle = build_fig4();
  const MessageId m3 = bundle.focus[2];
  const Time r3_a = simulated_completion(bundle, 0, m3);
  const Time r3_b = simulated_completion(bundle, 1, m3);
  EXPECT_GT(r3_a, r3_b);
}

TEST(Fig4Scenarios, AnalysisBoundsMatchPaperScale) {
  // Regression pin: the worst-case analysis bounds for m2 under our frame
  // constants are 37 / 36 / 26 us — the paper's own (worst-case) numbers
  // are 37 / 35 / 21.  Scenario (a) agrees exactly.
  const FigureBundle bundle = build_fig4();
  const MessageId m2 = bundle.focus[0];
  const Time expected[3] = {timeunits::us(37), timeunits::us(36), timeunits::us(26)};
  for (std::size_t i = 0; i < 3; ++i) {
    const BusLayout layout = make_layout(bundle.app, bundle.params, bundle.configs[i]);
    const AnalysisResult analysis = analyze(layout);
    EXPECT_EQ(analysis.message_completion[index_of(m2)], expected[i]) << bundle.labels[i];
  }
}

TEST(Fig4Scenarios, AnalysisBoundsDominateSimulation) {
  const FigureBundle bundle = build_fig4();
  for (std::size_t i = 0; i < bundle.configs.size(); ++i) {
    const BusLayout layout = make_layout(bundle.app, bundle.params, bundle.configs[i]);
    const AnalysisResult analysis = analyze(layout);
    auto sim = simulate(layout, analysis.schedule());
    ASSERT_TRUE(sim.ok());
    for (std::uint32_t m = 0; m < bundle.app.message_count(); ++m) {
      const Time observed = sim.value().message_worst_completion[m];
      if (observed == kTimeNone) continue;
      EXPECT_LE(observed, analysis.message_completion[m])
          << bundle.labels[i] << " message " << bundle.app.messages()[m].name;
    }
  }
}

}  // namespace
}  // namespace flexopt
