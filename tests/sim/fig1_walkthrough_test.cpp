// Fig. 1 protocol walkthrough: three nodes send ma..mh over two bus
// cycles; the simulator must reproduce the figure's transmission order,
// including mh being pushed to the second cycle by the pLatestTx gate and
// mg losing the shared FrameID 4 arbitration to mf.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "flexopt/sim/simulator.hpp"
#include "helpers.hpp"

namespace flexopt {
namespace {

using testing::analyze;
using testing::make_layout;

class Fig1Walkthrough : public ::testing::Test {
 protected:
  void SetUp() override {
    bundle_ = build_fig1();
    layout_.emplace(make_layout(bundle_.app, bundle_.params, bundle_.configs[0]));
    // The figure shows the plain ASAP table; FPS-aware placement would
    // deliberately delay the SCS senders and shift the ST timeline.
    AnalysisOptions analysis_options;
    analysis_options.scheduler.placement = Placement::Asap;
    analysis_ = analyze(*layout_, analysis_options);
    SimOptions options;
    options.record_trace = true;
    auto sim = simulate(*layout_, analysis_.schedule(), options);
    ASSERT_TRUE(sim.ok()) << sim.error().message;
    result_ = std::move(sim).value();
    for (const TransmissionRecord& r : result_.trace) {
      if (r.instance == 0) {
        first_tx_[bundle_.app.messages()[index_of(r.message)].name] = r;
      }
    }
  }

  [[nodiscard]] const TransmissionRecord& tx(const std::string& name) const {
    const auto it = first_tx_.find(name);
    if (it == first_tx_.end()) throw std::runtime_error("no transmission for " + name);
    return it->second;
  }

  FigureBundle bundle_;
  std::optional<BusLayout> layout_;
  AnalysisResult analysis_;
  SimResult result_;
  std::map<std::string, TransmissionRecord> first_tx_;
};

TEST_F(Fig1Walkthrough, AllMessagesDelivered) {
  EXPECT_EQ(result_.precedence_violations, 0);
  for (const MessageId m : bundle_.focus) {
    EXPECT_NE(result_.message_worst_completion[index_of(m)], kTimeNone)
        << bundle_.app.messages()[index_of(m)].name;
  }
}

TEST_F(Fig1Walkthrough, StMessagesUseTheirSlots) {
  // ma and mc transmit in N2-owned slots (indices 0 or 2) of the first
  // cycle — the list scheduler packs both into slot 3 (index 2), the first
  // N2 slot starting after their senders finish, where the figure's
  // hand-written table spreads them over slots 1 and 3.  mb lands in N1's
  // slot 2 (index 1) of the second cycle, exactly the "2/2" table entry.
  EXPECT_TRUE(tx("ma").slot == 0 || tx("ma").slot == 2);
  EXPECT_TRUE(tx("mc").slot == 0 || tx("mc").slot == 2);
  EXPECT_EQ(tx("ma").cycle, 0);
  EXPECT_EQ(tx("mc").cycle, 0);
  EXPECT_EQ(tx("mb").slot, 1);
  EXPECT_EQ(tx("mb").cycle, 1);
}

TEST_F(Fig1Walkthrough, DynSegmentFollowsFrameIdOrder) {
  // Within the first DYN segment: md (FrameID 1) before me (2) before mf (4).
  EXPECT_LT(tx("md").start, tx("me").start);
  EXPECT_LT(tx("me").start, tx("mf").start);
  EXPECT_EQ(tx("md").cycle, tx("mf").cycle);
}

TEST_F(Fig1Walkthrough, SharedFrameIdResolvedByPriority) {
  // mf and mg share FrameID 4; mf has the higher priority and goes first,
  // mg is deferred one full cycle.
  EXPECT_EQ(tx("mf").slot, 4);
  EXPECT_EQ(tx("mg").slot, 4);
  EXPECT_EQ(tx("mg").cycle, tx("mf").cycle + 1);
}

TEST_F(Fig1Walkthrough, PLatestTxDefersMhToSecondCycle) {
  // When slot 5 arrives in the first cycle the minislot counter is already
  // past pLatestTx(N3), so mh transmits in the next cycle even though it
  // was ready before the first one started.
  EXPECT_EQ(tx("mh").slot, 5);
  EXPECT_EQ(tx("mh").cycle, tx("mf").cycle + 1);
  EXPECT_GT(tx("mh").start, tx("mg").start);
}

TEST_F(Fig1Walkthrough, AnalysisBoundsDominateObservedCompletions) {
  for (std::uint32_t m = 0; m < bundle_.app.message_count(); ++m) {
    const Time observed = result_.message_worst_completion[m];
    if (observed == kTimeNone) continue;
    EXPECT_LE(observed, analysis_.message_completion[m])
        << bundle_.app.messages()[m].name;
  }
}

}  // namespace
}  // namespace flexopt
