// Generator contract tests against the Section 7 recipe.

#include <gtest/gtest.h>

#include "flexopt/gen/synthetic.hpp"

namespace flexopt {
namespace {

class SyntheticRecipe : public ::testing::TestWithParam<int> {};

TEST_P(SyntheticRecipe, HonoursTaskAndGraphCounts) {
  SyntheticSpec spec;
  spec.nodes = GetParam();
  spec.seed = 1234 + static_cast<std::uint64_t>(GetParam());
  BusParams params;
  auto app = generate_synthetic(spec, params);
  ASSERT_TRUE(app.ok()) << app.error().message;
  EXPECT_EQ(app.value().task_count(),
            static_cast<std::size_t>(spec.nodes) * 10u);
  EXPECT_EQ(app.value().graph_count(), static_cast<std::size_t>(spec.nodes) * 2u);
  // Exactly 10 tasks per node.
  for (int n = 0; n < spec.nodes; ++n) {
    int count = 0;
    for (const auto& t : app.value().tasks()) {
      if (index_of(t.node) == static_cast<std::uint32_t>(n)) ++count;
    }
    EXPECT_EQ(count, 10);
  }
}

TEST_P(SyntheticRecipe, HalfTimeTriggeredHalfEventTriggered) {
  SyntheticSpec spec;
  spec.nodes = GetParam();
  spec.seed = 77;
  BusParams params;
  auto app = generate_synthetic(spec, params);
  ASSERT_TRUE(app.ok());
  std::size_t scs = 0;
  std::size_t fps = 0;
  for (const auto& t : app.value().tasks()) {
    (t.policy == TaskPolicy::Scs ? scs : fps)++;
  }
  EXPECT_EQ(scs, fps);
}

TEST_P(SyntheticRecipe, NodeUtilisationInTargetBand) {
  SyntheticSpec spec;
  spec.nodes = GetParam();
  spec.seed = 4242;
  BusParams params;
  auto app = generate_synthetic(spec, params);
  ASSERT_TRUE(app.ok());
  for (int n = 0; n < spec.nodes; ++n) {
    const double u = app.value().node_utilization(static_cast<NodeId>(n));
    // WCET quantisation perturbs the target slightly.
    EXPECT_GE(u, spec.node_util_min * 0.9) << "node " << n;
    EXPECT_LE(u, spec.node_util_max * 1.1) << "node " << n;
  }
}

TEST_P(SyntheticRecipe, BusUtilisationInTargetBand) {
  SyntheticSpec spec;
  spec.nodes = GetParam();
  spec.seed = 31337;
  BusParams params;
  auto app = generate_synthetic(spec, params);
  ASSERT_TRUE(app.ok());
  const double u = bus_utilization(app.value(), params);
  // Byte quantisation + frame overhead make the scaling approximate, and
  // the payload clamp caps what is achievable for sparse message sets.
  double achievable = 0.0;
  for (const auto& m : app.value().messages()) {
    achievable += static_cast<double>(params.frame_duration(spec.max_message_bytes)) /
                  static_cast<double>(app.value().graph(m.graph).period);
  }
  EXPECT_GE(u, std::min(spec.bus_util_min * 0.5, achievable * 0.9));
  EXPECT_LE(u, spec.bus_util_max * 1.5);
}

TEST_P(SyntheticRecipe, MessageClassesFollowGraphTrigger) {
  SyntheticSpec spec;
  spec.nodes = GetParam();
  spec.seed = 5;
  BusParams params;
  auto app = generate_synthetic(spec, params);
  ASSERT_TRUE(app.ok());
  for (const auto& m : app.value().messages()) {
    const TaskPolicy sender = app.value().task(m.sender).policy;
    if (m.cls == MessageClass::Static) {
      EXPECT_EQ(sender, TaskPolicy::Scs);
    } else {
      EXPECT_EQ(sender, TaskPolicy::Fps);
    }
  }
}

TEST_P(SyntheticRecipe, DeterministicPerSeed) {
  SyntheticSpec spec;
  spec.nodes = GetParam();
  spec.seed = 999;
  BusParams params;
  auto a = generate_synthetic(spec, params);
  auto b = generate_synthetic(spec, params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().task_count(), b.value().task_count());
  for (std::uint32_t t = 0; t < a.value().task_count(); ++t) {
    EXPECT_EQ(a.value().tasks()[t].wcet, b.value().tasks()[t].wcet);
    EXPECT_EQ(a.value().tasks()[t].node, b.value().tasks()[t].node);
  }
  ASSERT_EQ(a.value().message_count(), b.value().message_count());
  for (std::uint32_t m = 0; m < a.value().message_count(); ++m) {
    EXPECT_EQ(a.value().messages()[m].size_bytes, b.value().messages()[m].size_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, SyntheticRecipe, ::testing::Range(2, 8));

TEST(Synthetic, RejectsBadSpecs) {
  BusParams params;
  SyntheticSpec one_node;
  one_node.nodes = 1;
  EXPECT_FALSE(generate_synthetic(one_node, params).ok());

  SyntheticSpec indivisible;
  indivisible.nodes = 3;
  indivisible.tasks_per_node = 10;
  indivisible.tasks_per_graph = 7;  // 30 % 7 != 0
  EXPECT_FALSE(generate_synthetic(indivisible, params).ok());
}

}  // namespace
}  // namespace flexopt
