// Generator-family contract tests: topology wiring, traffic-mix overrides,
// spec validation (the UB fixes of the campaign PR) and bit-exact seed
// determinism across every family member.

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "flexopt/gen/scenario.hpp"

namespace flexopt {
namespace {

ScenarioSpec small_spec(Topology topology, TrafficMix traffic = TrafficMix::Mixed) {
  ScenarioSpec spec;
  spec.topology = topology;
  spec.traffic = traffic;
  spec.base.nodes = 3;
  spec.base.tasks_per_node = 5;
  spec.base.tasks_per_graph = 5;
  spec.base.seed = 404;
  return spec;
}

/// Edges of one graph = explicit dependencies + messages (every message is
/// an implicit sender -> receiver precedence).
std::size_t graph_edge_count(const Application& app, GraphId graph) {
  std::size_t edges = 0;
  for (const auto& dep : app.dependencies()) {
    if (app.task(dep.first).graph == graph) ++edges;
  }
  for (const auto& m : app.messages()) {
    if (m.graph == graph) ++edges;
  }
  return edges;
}

TEST(Scenario, PipelineIsASingleChain) {
  BusParams params;
  auto app = generate_scenario(small_spec(Topology::Pipeline), params);
  ASSERT_TRUE(app.ok()) << app.error().message;
  // A chain over k tasks has exactly k-1 edges, in every graph.
  for (std::size_t g = 0; g < app.value().graph_count(); ++g) {
    EXPECT_EQ(graph_edge_count(app.value(), static_cast<GraphId>(g)), 4u);
  }
}

TEST(Scenario, FanInFanOutHasSourceAndSinkShape) {
  BusParams params;
  auto app = generate_scenario(small_spec(Topology::FanInFanOut), params);
  ASSERT_TRUE(app.ok()) << app.error().message;
  // k tasks: source feeds k-2 middles, each middle feeds the sink =
  // 2*(k-2) edges per graph.
  for (std::size_t g = 0; g < app.value().graph_count(); ++g) {
    EXPECT_EQ(graph_edge_count(app.value(), static_cast<GraphId>(g)), 6u);
  }
}

TEST(Scenario, GatewayHeavyMaximisesBusMessages) {
  BusParams params;
  auto gateway = generate_scenario(small_spec(Topology::GatewayHeavy), params);
  auto pipeline = generate_scenario(small_spec(Topology::Pipeline), params);
  ASSERT_TRUE(gateway.ok()) << gateway.error().message;
  ASSERT_TRUE(pipeline.ok());
  // Deterministic gateway placement turns nearly every chain hop into a
  // cross-node message; the shuffled pipeline keeps some hops node-local.
  EXPECT_GE(gateway.value().message_count(), pipeline.value().message_count());
  // At least half of all edges cross nodes.
  const std::size_t edges =
      gateway.value().message_count() + gateway.value().dependencies().size();
  EXPECT_GE(gateway.value().message_count() * 2, edges);
}

TEST(Scenario, TrafficMixOverridesTtShare) {
  BusParams params;
  auto st = generate_scenario(small_spec(Topology::RandomDag, TrafficMix::StOnly), params);
  ASSERT_TRUE(st.ok());
  for (const auto& t : st.value().tasks()) EXPECT_EQ(t.policy, TaskPolicy::Scs);
  for (const auto& m : st.value().messages()) EXPECT_EQ(m.cls, MessageClass::Static);

  auto dyn = generate_scenario(small_spec(Topology::RandomDag, TrafficMix::DynOnly), params);
  ASSERT_TRUE(dyn.ok());
  for (const auto& t : dyn.value().tasks()) EXPECT_EQ(t.policy, TaskPolicy::Fps);
  for (const auto& m : dyn.value().messages()) EXPECT_EQ(m.cls, MessageClass::Dynamic);
}

TEST(Scenario, NameRoundTrips) {
  for (const Topology t : {Topology::RandomDag, Topology::Pipeline, Topology::FanInFanOut,
                           Topology::GatewayHeavy}) {
    auto parsed = parse_topology(to_string(t));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), t);
  }
  for (const TrafficMix m : {TrafficMix::Mixed, TrafficMix::StOnly, TrafficMix::DynOnly}) {
    auto parsed = parse_traffic_mix(to_string(m));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), m);
  }
  EXPECT_FALSE(parse_topology("ring").ok());
  EXPECT_FALSE(parse_traffic_mix("bursty").ok());
}

// The satellite bugfixes: malformed specs must come back as errors, never
// UB (empty period_choices indexing) or nonsense counts (unclamped
// tt_share).
TEST(Scenario, RejectsMalformedSpecs) {
  BusParams params;
  const ScenarioSpec good = small_spec(Topology::RandomDag);
  ASSERT_TRUE(generate_scenario(good, params).ok());

  ScenarioSpec empty_periods = good;
  empty_periods.base.period_choices.clear();
  EXPECT_FALSE(generate_scenario(empty_periods, params).ok());

  ScenarioSpec zero_period = good;
  zero_period.base.period_choices = {timeunits::ms(20), 0};
  EXPECT_FALSE(generate_scenario(zero_period, params).ok());

  ScenarioSpec negative_share = good;
  negative_share.base.tt_share = -0.25;
  EXPECT_FALSE(generate_scenario(negative_share, params).ok());

  ScenarioSpec huge_share = good;
  huge_share.base.tt_share = 1.5;
  EXPECT_FALSE(generate_scenario(huge_share, params).ok());

  ScenarioSpec nan_share = good;
  nan_share.base.tt_share = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(generate_scenario(nan_share, params).ok());

  ScenarioSpec inverted_node_util = good;
  inverted_node_util.base.node_util_min = 0.6;
  inverted_node_util.base.node_util_max = 0.3;
  EXPECT_FALSE(generate_scenario(inverted_node_util, params).ok());

  ScenarioSpec inverted_bus_util = good;
  inverted_bus_util.base.bus_util_min = 0.5;
  inverted_bus_util.base.bus_util_max = 0.1;
  EXPECT_FALSE(generate_scenario(inverted_bus_util, params).ok());

  ScenarioSpec bad_deadline = good;
  bad_deadline.base.deadline_factor = 0.0;
  EXPECT_FALSE(generate_scenario(bad_deadline, params).ok());

  ScenarioSpec bad_bytes = good;
  bad_bytes.base.max_message_bytes = 0;
  EXPECT_FALSE(generate_scenario(bad_bytes, params).ok());

  // Large-but-positive counts must validate, not overflow int.
  ScenarioSpec huge = good;
  huge.base.nodes = 70000;
  huge.base.tasks_per_node = 70000;
  EXPECT_FALSE(generate_scenario(huge, params).ok());
}

// `generate_synthetic` with an empty period set was the original UB; it now
// routes through the same validation.
TEST(Scenario, SyntheticEntryPointValidatesToo) {
  BusParams params;
  SyntheticSpec spec;
  spec.period_choices.clear();
  EXPECT_FALSE(generate_synthetic(spec, params).ok());
}

TEST(Scenario, ZeroPeriodGraphDoesNotCrashBusUtilization) {
  Application app;
  const NodeId n0 = app.add_node("N0");
  const NodeId n1 = app.add_node("N1");
  // An un-finalized application may hold a degenerate zero-period graph;
  // bus_utilization must skip it, not divide by zero.
  const GraphId g = app.add_graph("g", /*period=*/0, /*deadline=*/0);
  const TaskId a = app.add_task(g, "a", n0, timeunits::us(5), TaskPolicy::Scs);
  const TaskId b = app.add_task(g, "b", n1, timeunits::us(5), TaskPolicy::Scs);
  app.add_message(g, "m", a, b, 8, MessageClass::Static);
  BusParams params;
  EXPECT_EQ(bus_utilization(app, params), 0.0);
}

class ScenarioFamily : public ::testing::TestWithParam<Topology> {};

// The regression the campaign determinism contract rests on: same spec +
// seed => bit-identical Application, for every family member.
TEST_P(ScenarioFamily, BitIdenticalPerSeed) {
  BusParams params;
  ScenarioSpec spec = small_spec(GetParam());
  spec.base.nodes = 4;
  spec.base.tasks_per_node = 10;
  spec.base.tasks_per_graph = 5;
  auto a = generate_scenario(spec, params);
  auto b = generate_scenario(spec, params);
  ASSERT_TRUE(a.ok()) << a.error().message;
  ASSERT_TRUE(b.ok());

  ASSERT_EQ(a.value().graph_count(), b.value().graph_count());
  for (std::size_t g = 0; g < a.value().graph_count(); ++g) {
    const TaskGraph& ga = a.value().graphs()[g];
    const TaskGraph& gb = b.value().graphs()[g];
    EXPECT_EQ(ga.name, gb.name);
    EXPECT_EQ(ga.period, gb.period);
    EXPECT_EQ(ga.deadline, gb.deadline);
  }
  ASSERT_EQ(a.value().task_count(), b.value().task_count());
  for (std::size_t t = 0; t < a.value().task_count(); ++t) {
    const Task& ta = a.value().tasks()[t];
    const Task& tb = b.value().tasks()[t];
    EXPECT_EQ(ta.name, tb.name);
    EXPECT_EQ(ta.node, tb.node);
    EXPECT_EQ(ta.wcet, tb.wcet);
    EXPECT_EQ(ta.policy, tb.policy);
    EXPECT_EQ(ta.priority, tb.priority);
  }
  ASSERT_EQ(a.value().message_count(), b.value().message_count());
  for (std::size_t m = 0; m < a.value().message_count(); ++m) {
    const Message& ma = a.value().messages()[m];
    const Message& mb = b.value().messages()[m];
    EXPECT_EQ(ma.name, mb.name);
    EXPECT_EQ(ma.sender, mb.sender);
    EXPECT_EQ(ma.receiver, mb.receiver);
    EXPECT_EQ(ma.size_bytes, mb.size_bytes);
    EXPECT_EQ(ma.cls, mb.cls);
    EXPECT_EQ(ma.priority, mb.priority);
  }
  EXPECT_EQ(a.value().dependencies(), b.value().dependencies());
}

TEST_P(ScenarioFamily, DifferentSeedsDiffer) {
  BusParams params;
  ScenarioSpec spec = small_spec(GetParam());
  ScenarioSpec other = spec;
  other.base.seed = spec.base.seed + 1;
  auto a = generate_scenario(spec, params);
  auto b = generate_scenario(other, params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool any_difference = a.value().task_count() != b.value().task_count() ||
                        a.value().message_count() != b.value().message_count();
  for (std::size_t t = 0; !any_difference && t < a.value().task_count(); ++t) {
    any_difference = a.value().tasks()[t].wcet != b.value().tasks()[t].wcet;
  }
  EXPECT_TRUE(any_difference);
}

INSTANTIATE_TEST_SUITE_P(Topologies, ScenarioFamily,
                         ::testing::Values(Topology::RandomDag, Topology::Pipeline,
                                           Topology::FanInFanOut, Topology::GatewayHeavy));

}  // namespace
}  // namespace flexopt
