// The cruise-controller case study must match the published topology:
// 54 tasks, 26 messages, 4 graphs (2 TT + 2 ET), 5 nodes.

#include <gtest/gtest.h>

#include "flexopt/gen/cruise_control.hpp"
#include "flexopt/gen/figures.hpp"

namespace flexopt {
namespace {

TEST(CruiseController, PublishedTopology) {
  const Application app = build_cruise_controller();
  EXPECT_EQ(app.task_count(), 54u);
  EXPECT_EQ(app.message_count(), 26u);
  EXPECT_EQ(app.graph_count(), 4u);
  EXPECT_EQ(app.node_count(), 5u);
}

TEST(CruiseController, TwoTtTwoEtGraphs) {
  const Application app = build_cruise_controller();
  int tt = 0;
  int et = 0;
  for (std::uint32_t g = 0; g < app.graph_count(); ++g) {
    bool any_scs = false;
    for (const auto& t : app.tasks()) {
      if (index_of(t.graph) == g && t.policy == TaskPolicy::Scs) any_scs = true;
    }
    (any_scs ? tt : et)++;
  }
  EXPECT_EQ(tt, 2);
  EXPECT_EQ(et, 2);
}

TEST(CruiseController, MessageSplitMatchesGraphTriggering) {
  const Application app = build_cruise_controller();
  int st = 0;
  int dyn = 0;
  for (const auto& m : app.messages()) {
    (m.cls == MessageClass::Static ? st : dyn)++;
  }
  EXPECT_EQ(st, 13);
  EXPECT_EQ(dyn, 13);
}

TEST(CruiseController, ModerateNodeUtilisation) {
  const Application app = build_cruise_controller();
  for (std::uint32_t n = 0; n < app.node_count(); ++n) {
    const double u = app.node_utilization(static_cast<NodeId>(n));
    EXPECT_GT(u, 0.0) << app.node(static_cast<NodeId>(n)).name;
    EXPECT_LT(u, 0.9) << app.node(static_cast<NodeId>(n)).name;
  }
}

TEST(CruiseController, HyperperiodIs40ms) {
  const Application app = build_cruise_controller();
  auto h = app.hyperperiod();
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h.value(), timeunits::ms(40));
}

TEST(Fig7System, PublishedShape) {
  const FigureBundle bundle = build_fig7();
  EXPECT_EQ(bundle.app.task_count(), 45u);
  int st = 0;
  int dyn = 0;
  for (const auto& m : bundle.app.messages()) {
    (m.cls == MessageClass::Static ? st : dyn)++;
  }
  EXPECT_EQ(st, 10);
  EXPECT_EQ(dyn, 20);
  EXPECT_EQ(bundle.focus.size(), 20u);
}

}  // namespace
}  // namespace flexopt
