// Placement regression tests: the GatewayPlacer capacity cap (satellite
// fix — overflow used to dump every surplus task on node 0) and the
// MultiCluster scenario family contract.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "flexopt/gen/placement.hpp"
#include "flexopt/gen/scenario.hpp"
#include "flexopt/io/system_format.hpp"
#include "flexopt/model/system_model.hpp"

namespace flexopt {
namespace {

TEST(GatewayPlacer, KeepsEveryNodeWithinCapacityAtExactLoad) {
  // Exactly nodes * tasks_per_node placements: the family invariant.
  constexpr int kNodes = 4;
  constexpr int kPerNode = 5;
  GatewayPlacer placer(kNodes, kPerNode);
  for (int graph = 0; graph < kNodes; ++graph) {
    for (int i = 0; i < kPerNode; ++i) placer.place(i);
  }
  for (int n = 0; n < kNodes; ++n) {
    EXPECT_EQ(placer.placed(static_cast<NodeId>(n)), kPerNode) << "node " << n;
  }
}

TEST(GatewayPlacer, OverSubscriptionSpillsRoundRobinInsteadOfNodeZero) {
  // Regression: drive the placer past total capacity.  The old code pushed
  // every surplus task onto node 0 (remaining_[0] went negative); the fix
  // spreads the overflow round-robin so no node degenerates alone.
  constexpr int kNodes = 3;
  constexpr int kPerNode = 2;
  GatewayPlacer placer(kNodes, kPerNode);
  const int capacity = kNodes * kPerNode;
  const int surplus = 6;
  for (int i = 0; i < capacity + surplus; ++i) placer.place(i % 4);
  // The surplus lands evenly: capacity/kNodes + surplus/kNodes each.
  for (int n = 0; n < kNodes; ++n) {
    EXPECT_EQ(placer.placed(static_cast<NodeId>(n)), kPerNode + surplus / kNodes)
        << "node " << n;
    EXPECT_GE(placer.capacity_left(static_cast<NodeId>(n)), 0) << "node " << n;
  }
}

TEST(GatewayPlacer, OddPositionsPreferTheGatewayWhileItHasCapacity) {
  GatewayPlacer placer(3, 2);
  EXPECT_NE(index_of(placer.place(0)), 0u);  // even: fullest non-gateway
  EXPECT_EQ(index_of(placer.place(1)), 0u);  // odd: gateway
  EXPECT_EQ(index_of(placer.place(3)), 0u);  // odd: gateway (last slot)
  EXPECT_NE(index_of(placer.place(5)), 0u);  // odd, but the gateway is full
}

ScenarioSpec multicluster_spec(int clusters, double share, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.topology = Topology::MultiCluster;
  spec.traffic = TrafficMix::DynOnly;
  spec.clusters = clusters;
  spec.inter_cluster_share = share;
  spec.base.nodes = 6;
  spec.base.tasks_per_node = 4;
  spec.base.tasks_per_graph = 4;
  spec.base.deadline_factor = 2.0;
  spec.base.seed = seed;
  return spec;
}

TEST(MultiClusterFamily, GeneratesAChainOfGatewayBridgedClusters) {
  const BusParams params;
  auto app = generate_scenario(multicluster_spec(3, 0.3, 21), params);
  ASSERT_TRUE(app.ok());
  const Application& a = app.value();
  EXPECT_EQ(a.cluster_count(), 3u);
  EXPECT_TRUE(a.has_cross_cluster_messages());
  // 6 compute nodes + 2 chain gateways.
  EXPECT_EQ(a.node_count(), 8u);
  int gateways = 0;
  for (const auto& node : a.nodes()) gateways += node.is_gateway() ? 1 : 0;
  EXPECT_EQ(gateways, 2);
  // Every cluster hosts compute nodes and tasks (round-robin placement).
  std::set<std::uint32_t> clusters_with_tasks;
  for (const auto& task : a.tasks()) {
    clusters_with_tasks.insert(index_of(a.cluster_of(task.node)));
  }
  EXPECT_EQ(clusters_with_tasks.size(), 3u);
  // Cross-cluster messages are DYN with FPS receivers (validated by
  // finalize, asserted here for the family contract).
  int cross = 0;
  for (std::uint32_t m = 0; m < a.message_count(); ++m) {
    if (a.route_of(static_cast<MessageId>(m)).cross_cluster()) {
      ++cross;
      EXPECT_EQ(a.messages()[m].cls, MessageClass::Dynamic);
    }
  }
  EXPECT_GT(cross, 0);
  // And the projection is buildable — the campaign relies on that.
  EXPECT_TRUE(SystemModel::build(std::make_shared<const Application>(a)).ok());
}

TEST(MultiClusterFamily, InterClusterShareZeroStaysClusterLocal) {
  const BusParams params;
  auto app = generate_scenario(multicluster_spec(2, 0.0, 5), params);
  ASSERT_TRUE(app.ok());
  EXPECT_FALSE(app.value().has_cross_cluster_messages());
}

TEST(MultiClusterFamily, IdenticalSpecsAreBitIdentical) {
  const BusParams params;
  auto a = generate_scenario(multicluster_spec(2, 0.4, 77), params);
  auto b = generate_scenario(multicluster_spec(2, 0.4, 77), params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(write_system(a.value(), params), write_system(b.value(), params));
}

TEST(MultiClusterFamily, RejectsDegenerateSpecs) {
  const BusParams params;
  auto spec = multicluster_spec(5, 0.3, 1);
  EXPECT_FALSE(generate_scenario(spec, params).ok());  // clusters > 4
  spec = multicluster_spec(2, 1.5, 1);
  EXPECT_FALSE(generate_scenario(spec, params).ok());  // share > 1
  spec = multicluster_spec(3, 0.3, 1);
  spec.base.nodes = 2;  // fewer compute nodes than clusters
  EXPECT_FALSE(generate_scenario(spec, params).ok());
}

}  // namespace
}  // namespace flexopt
