#include "flexopt/math/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>

namespace flexopt {
namespace {

TEST(Stats, Summary) {
  const std::array<double, 4> v{1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);
}

TEST(Stats, EmptySummary) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, SingleValueSummary) {
  const std::array<double, 1> v{7.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
}

TEST(Stats, Percentiles) {
  const std::array<double, 5> v{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 20.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::array<double, 2> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
}

TEST(Stats, PercentileOfEmptyThrows) {
  EXPECT_THROW((void)percentile({}, 50), std::invalid_argument);
}

TEST(Stats, PercentileSingleSample) {
  // Every percentile of a one-element sample is that element (netsim sinks
  // often complete exactly once within a short horizon).
  const std::array<double, 1> v{42.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 99), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 42.0);
}

TEST(Stats, PercentileAllEqual) {
  // A fully degenerate distribution (jitter-free periodic sink) must not
  // produce interpolation noise.
  const std::array<double, 6> v{5.0, 5.0, 5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 1), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 99), 5.0);
}

TEST(Stats, PercentileClampsOutOfRangeP) {
  const std::array<double, 3> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, -10), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 250), 3.0);
}

TEST(Stats, PercentileTwoSamplesP99) {
  // p99 of two samples interpolates 98% of the way to the larger one.
  const std::array<double, 2> v{0.0, 100.0};
  EXPECT_DOUBLE_EQ(percentile(v, 99), 99.0);
}

TEST(Stats, MedianOddCount) {
  const std::array<double, 5> v{50.0, 10.0, 30.0, 20.0, 40.0};
  EXPECT_DOUBLE_EQ(median(v), 30.0);
}

TEST(Stats, MedianEvenCount) {
  // Mean of the two middle order statistics, regardless of input order.
  const std::array<double, 4> v{40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(median(v), 25.0);
}

TEST(Stats, MedianOfEmptyThrows) {
  EXPECT_THROW((void)median({}), std::invalid_argument);
}

TEST(Stats, P50EqualsMedianEvenOddAndDuplicateHeavy) {
  // The pinned interpolation rule (rank = p/100 * (n-1)) makes p50 the true
  // median for every sample size; a reported p50 column and a median column
  // must never disagree.  Regression over even, odd and duplicate-heavy
  // shapes, including netsim-style latency vectors.
  const std::array<double, 4> even{4.0, 1.0, 3.0, 2.0};
  const std::array<double, 7> odd{7.0, 3.0, 5.0, 1.0, 6.0, 2.0, 4.0};
  const std::array<double, 8> duplicate_heavy{5.0, 5.0, 5.0, 5.0, 9.0, 5.0, 5.0, 1.0};
  const std::array<double, 6> latency{120.0, 80.0, 80.0, 95.0, 120.0, 80.0};
  EXPECT_DOUBLE_EQ(percentile(even, 50.0), median(even));
  EXPECT_DOUBLE_EQ(percentile(even, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(odd, 50.0), median(odd));
  EXPECT_DOUBLE_EQ(percentile(odd, 50.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(duplicate_heavy, 50.0), median(duplicate_heavy));
  EXPECT_DOUBLE_EQ(percentile(duplicate_heavy, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(latency, 50.0), median(latency));
  EXPECT_DOUBLE_EQ(percentile(latency, 50.0), 87.5);
}

TEST(Stats, PercentileSortedMatchesPercentile) {
  // The sorted-input fast path (one sort, many quantiles — the netsim
  // latency-stat hot path) must agree with the copying variant everywhere.
  const std::array<double, 6> unsorted{3.0, 1.0, 4.0, 1.0, 5.0, 9.0};
  std::array<double, 6> sorted = unsorted;
  std::sort(sorted.begin(), sorted.end());
  for (const double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile_sorted(sorted, p), percentile(unsorted, p)) << "p=" << p;
  }
}

}  // namespace
}  // namespace flexopt
