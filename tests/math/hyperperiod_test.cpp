#include "flexopt/math/hyperperiod.hpp"

#include <gtest/gtest.h>

#include <array>
#include <limits>

namespace flexopt {
namespace {

TEST(Gcd, Basics) {
  EXPECT_EQ(gcd(12, 18), 6);
  EXPECT_EQ(gcd(0, 5), 5);
  EXPECT_EQ(gcd(5, 0), 5);
  EXPECT_EQ(gcd(7, 13), 1);
  EXPECT_EQ(gcd(-12, 18), 6);
}

TEST(Lcm, Basics) {
  auto r = checked_lcm(4, 6);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 12);
}

TEST(Lcm, RejectsNonPositive) {
  EXPECT_FALSE(checked_lcm(0, 5).ok());
  EXPECT_FALSE(checked_lcm(5, -1).ok());
}

TEST(Lcm, DetectsOverflow) {
  const std::int64_t big = std::numeric_limits<std::int64_t>::max() / 2;
  EXPECT_FALSE(checked_lcm(big, big - 1).ok());
}

TEST(CheckedMul, MultipliesAndRejectsOverflow) {
  auto r = checked_mul(1'000'000'007, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 3'000'000'021);
  const std::int64_t big = std::numeric_limits<std::int64_t>::max() / 2 + 1;
  EXPECT_FALSE(checked_mul(big, 2).ok());
  EXPECT_FALSE(checked_mul(0, 5).ok());
  EXPECT_FALSE(checked_mul(5, -1).ok());
}

TEST(CheckedAlignUp, AlignsAndRejectsOverflow) {
  auto exact = checked_align_up(40, 8);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact.value(), 40);
  auto up = checked_align_up(41, 8);
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(up.value(), 48);
  auto zero = checked_align_up(0, 8);
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero.value(), 0);
  // The padding step itself must not wrap: max-1 is odd, aligning it to an
  // even block would land past the 64-bit range.
  const std::int64_t near_max = std::numeric_limits<std::int64_t>::max() - 1;
  EXPECT_FALSE(checked_align_up(near_max, 4).ok());
  EXPECT_FALSE(checked_align_up(-1, 8).ok());
  EXPECT_FALSE(checked_align_up(8, 0).ok());
}

TEST(Hyperperiod, HarmonicPeriods) {
  const std::array<std::int64_t, 3> periods{10, 20, 40};
  auto r = hyperperiod(periods);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 40);
}

TEST(Hyperperiod, CoprimePeriods) {
  const std::array<std::int64_t, 2> periods{3, 7};
  auto r = hyperperiod(periods);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 21);
}

TEST(Hyperperiod, EmptyIsError) {
  EXPECT_FALSE(hyperperiod({}).ok());
}

TEST(Hyperperiod, SingleElement) {
  const std::array<std::int64_t, 1> periods{17};
  auto r = hyperperiod(periods);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 17);
}

}  // namespace
}  // namespace flexopt
