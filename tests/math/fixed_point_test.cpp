#include "flexopt/math/fixed_point.hpp"

#include <gtest/gtest.h>

namespace flexopt {
namespace {

TEST(FixedPoint, ConvergesOnClassicRecurrence) {
  // w = 3 + 2 * ceil(w / 10): converges at w = 5... check: f(5)=3+2=5.
  const auto f = [](Time t) { return 3 + 2 * ceil_div(t, 10); };
  const auto r = iterate_to_fixed_point(f, 1000);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.value, 5);
}

TEST(FixedPoint, StartsFromZero) {
  const auto f = [](Time) { return Time{42}; };
  const auto r = iterate_to_fixed_point(f, 1000);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.value, 42);
}

TEST(FixedPoint, DetectsDivergencePastHorizon) {
  const auto f = [](Time t) { return t + 10; };
  const auto r = iterate_to_fixed_point(f, 100);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.value, kTimeInfinity);
}

TEST(FixedPoint, ZeroFixedPoint) {
  const auto f = [](Time t) { return t; };  // f(0) == 0
  const auto r = iterate_to_fixed_point(f, 100);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.value, 0);
}

TEST(FixedPoint, IterationCapGuards) {
  // Slowly growing function that would converge only after the cap.
  const auto f = [](Time t) { return t + 1; };
  const auto r = iterate_to_fixed_point(f, kTimeInfinity - 10, /*max_iterations=*/50);
  EXPECT_FALSE(r.converged);
}

}  // namespace
}  // namespace flexopt
