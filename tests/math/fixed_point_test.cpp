#include "flexopt/math/fixed_point.hpp"

#include <gtest/gtest.h>

namespace flexopt {
namespace {

TEST(FixedPoint, ConvergesOnClassicRecurrence) {
  // w = 3 + 2 * ceil(w / 10): converges at w = 5... check: f(5)=3+2=5.
  const auto f = [](Time t) { return 3 + 2 * ceil_div(t, 10); };
  const auto r = iterate_to_fixed_point(f, 1000);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.value, 5);
}

TEST(FixedPoint, StartsFromZero) {
  const auto f = [](Time) { return Time{42}; };
  const auto r = iterate_to_fixed_point(f, 1000);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.value, 42);
}

TEST(FixedPoint, DetectsDivergencePastHorizon) {
  const auto f = [](Time t) { return t + 10; };
  const auto r = iterate_to_fixed_point(f, 100);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.value, kTimeInfinity);
}

TEST(FixedPoint, ZeroFixedPoint) {
  const auto f = [](Time t) { return t; };  // f(0) == 0
  const auto r = iterate_to_fixed_point(f, 100);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.value, 0);
}

TEST(FixedPoint, IterationCapGuards) {
  // Slowly growing function that would converge only after the cap.
  const auto f = [](Time t) { return t + 1; };
  const auto r = iterate_to_fixed_point(f, kTimeInfinity - 10, /*max_iterations=*/50);
  EXPECT_FALSE(r.converged);
}

// `iterations` counts evaluations of f on every exit path — the profiling
// counters depend on it never reporting 0 for work that did happen.

TEST(FixedPoint, IterationsCountedOnConvergence) {
  const auto f = [](Time t) { return 3 + 2 * ceil_div(t, 10); };
  const auto r = iterate_to_fixed_point(f, 1000);
  ASSERT_TRUE(r.converged);
  // 0 -> 3 -> 5 -> 5: three evaluations (the last confirms the fixed point).
  EXPECT_EQ(r.iterations, 3);
}

TEST(FixedPoint, IterationsCountedOnImmediateWrapDivergence) {
  // Saturating f that wraps below its argument on the very first call
  // (next < t path).  This used to report iterations == 0.
  const auto f = [](Time) { return Time{-1}; };
  const auto r = iterate_to_fixed_point(f, 1000);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.value, kTimeInfinity);
  EXPECT_EQ(r.iterations, 1);
}

TEST(FixedPoint, IterationsCountedOnImmediateHorizonOverrun) {
  const auto f = [](Time) { return Time{5000}; };
  const auto r = iterate_to_fixed_point(f, 1000);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 1);
}

TEST(FixedPoint, IterationsCountedOnLaterWrapDivergence) {
  // Grows for a few steps, then saturation makes it fall back.
  const auto f = [](Time t) { return t < 30 ? t + 10 : Time{0}; };
  const auto r = iterate_to_fixed_point(f, 1000);
  EXPECT_FALSE(r.converged);
  // 0 -> 10 -> 20 -> 30 -> wrap: four evaluations.
  EXPECT_EQ(r.iterations, 4);
}

TEST(FixedPoint, IterationsEqualCapWhenCapped) {
  const auto f = [](Time t) { return t + 1; };
  const auto r = iterate_to_fixed_point(f, kTimeInfinity - 10, /*max_iterations=*/50);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 50);
}

}  // namespace
}  // namespace flexopt
