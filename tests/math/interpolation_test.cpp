#include "flexopt/math/interpolation.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace flexopt {
namespace {

TEST(NewtonPolynomial, InterpolatesThroughSamples) {
  NewtonPolynomial p;
  ASSERT_TRUE(p.add_point(0.0, 1.0).ok());
  ASSERT_TRUE(p.add_point(1.0, 3.0).ok());
  ASSERT_TRUE(p.add_point(2.0, 9.0).ok());
  EXPECT_NEAR(p.evaluate(0.0), 1.0, 1e-12);
  EXPECT_NEAR(p.evaluate(1.0), 3.0, 1e-12);
  EXPECT_NEAR(p.evaluate(2.0), 9.0, 1e-12);
}

TEST(NewtonPolynomial, ExactOnPolynomialData) {
  // f(x) = 2x^2 - 3x + 5 must be recovered exactly from 3 samples.
  auto f = [](double x) { return 2 * x * x - 3 * x + 5; };
  NewtonPolynomial p;
  for (const double x : {-1.0, 0.5, 4.0}) ASSERT_TRUE(p.add_point(x, f(x)).ok());
  for (const double x : {-3.0, 0.0, 1.7, 10.0}) EXPECT_NEAR(p.evaluate(x), f(x), 1e-9);
}

TEST(NewtonPolynomial, IncrementalExtension) {
  // Adding a fourth point refines the fit to a cubic without refitting.
  auto f = [](double x) { return x * x * x - x; };
  NewtonPolynomial p;
  for (const double x : {0.0, 1.0, 2.0}) ASSERT_TRUE(p.add_point(x, f(x)).ok());
  ASSERT_TRUE(p.add_point(3.0, f(3.0)).ok());
  EXPECT_NEAR(p.evaluate(1.5), f(1.5), 1e-9);
  EXPECT_NEAR(p.evaluate(-1.0), f(-1.0), 1e-9);
}

TEST(NewtonPolynomial, RejectsDuplicateAbscissa) {
  NewtonPolynomial p;
  ASSERT_TRUE(p.add_point(1.0, 2.0).ok());
  EXPECT_FALSE(p.add_point(1.0, 5.0).ok());
}

TEST(PiecewiseLinear, InterpolatesAndClamps) {
  auto pl = PiecewiseLinear::fit({0.0, 10.0, 20.0}, {0.0, 100.0, 0.0});
  ASSERT_TRUE(pl.ok());
  EXPECT_DOUBLE_EQ(pl.value().evaluate(5.0), 50.0);
  EXPECT_DOUBLE_EQ(pl.value().evaluate(15.0), 50.0);
  EXPECT_DOUBLE_EQ(pl.value().evaluate(-5.0), 0.0);   // constant extrapolation
  EXPECT_DOUBLE_EQ(pl.value().evaluate(30.0), 0.0);
}

TEST(PiecewiseLinear, SortsUnorderedInput) {
  auto pl = PiecewiseLinear::fit({20.0, 0.0, 10.0}, {0.0, 0.0, 100.0});
  ASSERT_TRUE(pl.ok());
  EXPECT_DOUBLE_EQ(pl.value().evaluate(10.0), 100.0);
}

TEST(PiecewiseLinear, RejectsDuplicatesAndMismatch) {
  EXPECT_FALSE(PiecewiseLinear::fit({1.0, 1.0}, {2.0, 3.0}).ok());
  EXPECT_FALSE(PiecewiseLinear::fit({1.0}, {2.0, 3.0}).ok());
  EXPECT_FALSE(PiecewiseLinear::fit({}, {}).ok());
}

TEST(ResponseTimeCurve, ClampsToRange) {
  ResponseTimeCurve::Options opt;
  opt.clamp_lo = 0.0;
  opt.clamp_hi = 100.0;
  ResponseTimeCurve curve(opt);
  // Steep quadratic through these points overshoots 100 beyond x=2.
  ASSERT_TRUE(curve.add_point(0.0, 0.0).ok());
  ASSERT_TRUE(curve.add_point(1.0, 50.0).ok());
  ASSERT_TRUE(curve.add_point(2.0, 99.0).ok());
  EXPECT_LE(curve.evaluate(10.0), 100.0);
  EXPECT_GE(curve.evaluate(-10.0), 0.0);
}

TEST(ResponseTimeCurve, FallsBackToPiecewiseLinearAtHighDegree) {
  ResponseTimeCurve::Options opt;
  opt.max_newton_points = 3;
  ResponseTimeCurve curve(opt);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(curve.add_point(i, i * 10.0).ok());
  }
  // Piecewise-linear on y = 10x is exact.
  EXPECT_NEAR(curve.evaluate(4.5), 45.0, 1e-9);
}

TEST(ResponseTimeCurve, UShapeMinimumLocatedApproximately) {
  // The Fig. 7 usage pattern: locate the minimum of a U-shaped response.
  auto f = [](double x) { return (x - 40.0) * (x - 40.0) + 7.0; };
  ResponseTimeCurve curve;
  for (const double x : {10.0, 25.0, 50.0, 70.0, 90.0}) {
    ASSERT_TRUE(curve.add_point(x, f(x)).ok());
  }
  double best_x = 0.0;
  double best = 1e300;
  for (int x = 10; x <= 90; ++x) {
    const double v = curve.evaluate(x);
    if (v < best) {
      best = v;
      best_x = x;
    }
  }
  EXPECT_NEAR(best_x, 40.0, 2.0);
}

}  // namespace
}  // namespace flexopt
