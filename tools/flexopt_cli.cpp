// flexopt_cli — optimise the FlexRay bus configuration for a system
// described in the plain-text format of flexopt/io/system_format.hpp.
//
//   flexopt_cli <system-file> [--algorithm NAME] [--seed N] [--budget N]
//               [--time-limit S] [--threads N] [--progress] [--no-cache]
//               [--simulate] [--dump]
//
// Algorithms come from the OptimizerRegistry; `--algorithm list` prints
// them.  Prints the chosen configuration and the per-activity worst-case
// response times; exit code 0 iff the system is schedulable.

#include <fstream>
#include <iostream>
#include <string>

#include "flexopt/core/solver.hpp"
#include "flexopt/io/system_format.hpp"
#include "flexopt/sim/simulator.hpp"
#include "flexopt/util/table.hpp"

using namespace flexopt;

namespace {

int usage() {
  std::cerr << "usage: flexopt_cli <system-file> [--algorithm NAME|list] [--seed N]\n"
               "                   [--budget MAX_EVALUATIONS] [--time-limit SECONDS]\n"
               "                   [--threads N] [--progress] [--no-cache]\n"
               "                   [--simulate] [--dump]\n";
  return 2;
}

int list_algorithms() {
  Table table({"algorithm", "description"});
  for (const OptimizerInfo& info : OptimizerRegistry::list()) {
    table.add_row({info.name, info.description});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string algorithm = "obc-cf";
  SolveRequest request;
  EvaluatorOptions evaluator_options;
  bool show_progress = false;
  bool run_sim = false;
  bool dump = false;
  try {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--algorithm" && i + 1 < argc) {
      algorithm = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      request.seed = std::stoull(argv[++i]);
    } else if (arg == "--budget" && i + 1 < argc) {
      request.max_evaluations = std::stol(argv[++i]);
    } else if (arg == "--time-limit" && i + 1 < argc) {
      request.max_wall_seconds = std::stod(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      evaluator_options.threads = std::stoi(argv[++i]);
    } else if (arg == "--progress") {
      show_progress = true;
    } else if (arg == "--no-cache") {
      evaluator_options.cache_enabled = false;
    } else if (arg == "--simulate") {
      run_sim = true;
    } else if (arg == "--dump") {
      dump = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      path = arg;
    }
  }
  } catch (const std::exception&) {
    std::cerr << "invalid numeric argument\n";
    return usage();
  }
  if (request.max_evaluations < 0 || request.max_wall_seconds < 0.0 ||
      evaluator_options.threads < 0) {
    std::cerr << "--budget, --time-limit and --threads must be positive\n";
    return usage();
  }
  if (algorithm == "list") return list_algorithms();
  if (path.empty()) return usage();

  auto optimizer = OptimizerRegistry::create(algorithm);
  if (!optimizer.ok()) {
    std::cerr << optimizer.error().message << "\n";
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open '" << path << "'\n";
    return 2;
  }
  auto parsed = parse_system(in);
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed.error().message << "\n";
    return 2;
  }
  const Application& app = parsed.value().app;
  const BusParams& params = parsed.value().params;
  std::cout << "system: " << app.task_count() << " tasks, " << app.message_count()
            << " messages, " << app.graph_count() << " graphs, " << app.node_count()
            << " nodes\n";
  if (dump) {
    std::cout << write_system(app, params);
    return 0;
  }

  if (show_progress) {
    request.progress = [](const SolveProgress& p) {
      std::cerr << "[" << p.algorithm << "] " << p.evaluations;
      if (p.max_evaluations > 0) std::cerr << "/" << p.max_evaluations;
      std::cerr << " analyses, best cost ";
      if (p.best_cost >= kInvalidConfigCost) {
        std::cerr << "-";
      } else {
        std::cerr << fmt_double(p.best_cost, 1) << " us";
      }
      std::cerr << ", " << fmt_double(p.elapsed_seconds, 1) << " s\r";
      return true;  // never cancels; Ctrl-C remains the way out
    };
  }

  CostEvaluator evaluator(app, params, AnalysisOptions{}, evaluator_options);
  const SolveReport report = optimizer.value()->solve(evaluator, request);
  const OptimizationOutcome& outcome = report.outcome;
  if (show_progress) std::cerr << "\n";

  std::cout << "\n" << outcome.algorithm << ": "
            << (outcome.feasible ? "SCHEDULABLE" : "not schedulable") << ", cost "
            << fmt_double(outcome.cost.value, 1) << " us, " << outcome.evaluations
            << " analyses in " << fmt_double(outcome.wall_seconds, 3) << " s ("
            << to_string(report.status) << ", " << report.cache_hits << " cache hits)\n";
  if (outcome.cost.value >= kInvalidConfigCost) {
    std::cerr << "no analysable configuration found\n";
    return 1;
  }
  std::cout << "configuration: " << outcome.config.static_slot_count << " ST slots x "
            << format_time(outcome.config.static_slot_len) << ", DYN "
            << outcome.config.minislot_count << " minislots\n";
  Table fids({"message", "FrameID"});
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    if (outcome.config.frame_id[m] > 0) {
      fids.add_row({app.messages()[m].name, std::to_string(outcome.config.frame_id[m])});
    }
  }
  if (fids.rows() > 0) fids.print(std::cout);

  auto layout = BusLayout::build(app, params, outcome.config);
  auto analysis = analyze_system(layout.value());
  std::cout << "\nworst-case response times:\n";
  Table wcrt({"activity", "kind", "WCRT", "deadline", "status"});
  auto add = [&](const std::string& name, const char* kind, Time r, Time d) {
    wcrt.add_row({name, kind, format_time(r), format_time(d), r <= d ? "ok" : "MISS"});
  };
  for (std::uint32_t t = 0; t < app.task_count(); ++t) {
    add(app.tasks()[t].name, app.tasks()[t].policy == TaskPolicy::Scs ? "SCS" : "FPS",
        analysis.value().task_completion[t],
        app.effective_deadline(ActivityRef::task(static_cast<TaskId>(t))));
  }
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    add(app.messages()[m].name,
        app.messages()[m].cls == MessageClass::Static ? "ST" : "DYN",
        analysis.value().message_completion[m],
        app.effective_deadline(ActivityRef::message(static_cast<MessageId>(m))));
  }
  wcrt.print(std::cout);

  if (run_sim) {
    auto sim = simulate(layout.value(), analysis.value().schedule);
    if (!sim.ok()) {
      std::cerr << "simulation: " << sim.error().message << "\n";
    } else {
      std::cout << "\nsimulated one hyper-period: " << sim.value().unfinished_jobs
                << " unfinished jobs, " << sim.value().precedence_violations
                << " precedence violations\n";
    }
  }
  return outcome.feasible ? 0 : 1;
}
