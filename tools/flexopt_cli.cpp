// flexopt_cli — FlexRay bus optimisation front-end.
//
// Subcommands:
//
//   flexopt_cli solve <system-file> [--algorithm NAME] [--seed N] [--budget N]
//               [--time-limit S] [--threads N] [--members LIST] [--jobs N]
//               [--analysis-mode MODE] [--exact-jobs N] [--no-exact-reuse]
//               [--json FILE] [--progress] [--no-cache] [--simulate] [--dump]
//       Optimise one system described in the flexopt/io/system_format.hpp
//       plain-text format; prints the chosen configuration and per-activity
//       worst-case response times; exit code 0 iff schedulable.  With
//       --algorithm portfolio, --members ("4xsa,obc-ee") composes the
//       racing pool and --jobs caps its worker threads (results are
//       independent of --jobs).  --analysis-mode holistic|exact|simulate
//       selects the analysis backend: `exact` refines every evaluator bound
//       with the schedule-space backend and reports the winner's pessimism,
//       `simulate` implies --simulate.  --exact-jobs sets the exploration
//       worker count (0 = hardware; bounds are bit-identical for any value)
//       and --no-exact-reuse disables the cross-move exact-space cache —
//       both exact-mode only.  --json writes the deterministic
//       machine-readable report of flexopt/io/solve_report_json.hpp.
//
//   flexopt_cli simulate <system-file> [--algorithm NAME] [--seed N] [--budget N]
//               [--time-limit S] [--threads N] [--hyperperiods N] [--trace FILE]
//               [--no-cache]
//       Optimise the system, then replay the winning configuration on the
//       discrete-event network simulator (flexopt/netsim/netsim.hpp):
//       per-cluster observed-vs-bound tables, gateway queue statistics and
//       the soundness verdict (every observed completion dominated by the
//       analyze_multicluster bound).  --trace writes the deterministic
//       flexopt-netsim-trace/1 JSON document with per-hop latency traces.
//       Exit code 0 iff the verdict is sound.
//
//   flexopt_cli campaign <spec-file> [--threads N] [--json FILE] [--csv FILE]
//               [--budget N] [--time-limit S] [--timing] [--quiet]
//       Expand the sweep grid of a campaign spec file
//       (flexopt/campaign/spec_format.hpp), solve every scenario with every
//       requested algorithm, print an aggregate table and optionally write
//       the JSON/CSV summaries.  With no wall-clock limit the summaries are
//       byte-identical for any --threads value.
//
// Invoking without a subcommand keeps the legacy behaviour (solve).
// `--algorithm list` prints the optimizer registry.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "flexopt/analysis/multicluster.hpp"
#include "flexopt/campaign/report.hpp"
#include "flexopt/campaign/spec_format.hpp"
#include "flexopt/core/portfolio.hpp"
#include "flexopt/core/solver.hpp"
#include "flexopt/io/solve_report_json.hpp"
#include "flexopt/io/system_format.hpp"
#include "flexopt/netsim/netsim.hpp"
#include "flexopt/netsim/trace_json.hpp"
#include "flexopt/sim/simulator.hpp"
#include "flexopt/util/table.hpp"

using namespace flexopt;

namespace {

int usage() {
  std::cerr
      << "usage: flexopt_cli [solve] <system-file> [--algorithm NAME|list] [--seed N]\n"
         "                   [--budget MAX_EVALUATIONS] [--time-limit SECONDS]\n"
         "                   [--threads N] [--members LIST] [--jobs N]\n"
         "                   [--analysis-mode holistic|exact|simulate]\n"
         "                   [--exact-jobs N] [--no-exact-reuse] [--json FILE]\n"
         "                   [--progress] [--no-cache] [--simulate] [--dump]\n"
         "       flexopt_cli simulate <system-file> [--algorithm NAME] [--seed N]\n"
         "                   [--budget N] [--time-limit S] [--threads N]\n"
         "                   [--hyperperiods N] [--trace FILE] [--no-cache]\n"
         "       flexopt_cli campaign <spec-file> [--threads N] [--json FILE]\n"
         "                   [--csv FILE] [--budget N] [--time-limit S]\n"
         "                   [--timing] [--quiet]\n";
  return 2;
}

/// Strict numeric argument parsing: trailing garbage ("--budget 1e6",
/// "--threads 2x") must error, not silently run a different experiment.
template <typename T, typename Convert>
bool parse_arg(const char* text, Convert convert, T& out) {
  try {
    std::size_t pos = 0;
    out = convert(text, &pos);
    return text[0] != '\0' && text[pos] == '\0';
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_long_arg(const char* text, long& out) {
  return parse_arg(text, [](const std::string& s, std::size_t* p) { return std::stol(s, p); },
                   out);
}

bool parse_int_arg(const char* text, int& out) {
  return parse_arg(text, [](const std::string& s, std::size_t* p) { return std::stoi(s, p); },
                   out);
}

bool parse_u64_arg(const char* text, std::uint64_t& out) {
  if (text[0] == '-') return false;
  return parse_arg(text,
                   [](const std::string& s, std::size_t* p) { return std::stoull(s, p); }, out);
}

bool parse_double_arg(const char* text, double& out) {
  return parse_arg(text, [](const std::string& s, std::size_t* p) { return std::stod(s, p); },
                   out);
}

int numeric_arg_error(const std::string& flag) {
  std::cerr << "invalid numeric value for " << flag << "\n";
  return usage();
}

int list_algorithms() {
  Table table({"algorithm", "description"});
  for (const OptimizerInfo& info : OptimizerRegistry::list()) {
    table.add_row({info.name, info.description});
  }
  table.print(std::cout);
  return 0;
}

/// A result file staged through a sibling temp file: opening probes
/// writability before the solve/campaign runs, commit() renames over the
/// target only on success, and the destructor cleans up the temp file
/// otherwise — a failed run never clobbers previous results.
class PendingOutput {
 public:
  bool open_for(const std::string& target) {
    path_ = target;
    tmp_ = target + ".tmp";
    out_.open(tmp_, std::ios::binary);
    return static_cast<bool>(out_);
  }

  [[nodiscard]] bool pending() const { return out_.is_open(); }

  bool commit(const std::string& content) {
    out_ << content;
    out_.flush();
    if (!out_) return false;
    out_.close();
    if (std::rename(tmp_.c_str(), path_.c_str()) != 0) return false;
    committed_ = true;
    return true;
  }

  ~PendingOutput() {
    if (!tmp_.empty() && !committed_) std::remove(tmp_.c_str());
  }

 private:
  std::string path_;
  std::string tmp_;
  std::ofstream out_;
  bool committed_ = false;
};

// ---- solve ----------------------------------------------------------------

int solve_main(int argc, char** argv) {
  std::string path;
  std::string algorithm = "obc-cf";
  std::string members_arg;
  bool members_set = false;
  bool jobs_set = false;
  std::string json_path;
  int jobs = 0;
  SolveRequest request;
  EvaluatorOptions evaluator_options;
  AnalysisMode analysis_mode = AnalysisMode::Holistic;
  int exact_jobs = 1;
  bool exact_jobs_set = false;
  bool exact_reuse = true;
  bool exact_reuse_set = false;
  bool show_progress = false;
  bool run_sim = false;
  bool dump = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--algorithm" && i + 1 < argc) {
      algorithm = argv[++i];
    } else if (arg == "--analysis-mode" && i + 1 < argc) {
      auto mode = parse_analysis_mode(argv[++i]);
      if (!mode.ok()) {
        std::cerr << mode.error().message << "\n";
        return usage();
      }
      analysis_mode = mode.value();
    } else if (arg == "--members" && i + 1 < argc) {
      members_arg = argv[++i];
      members_set = true;
    } else if (arg == "--jobs" && i + 1 < argc) {
      if (!parse_int_arg(argv[++i], jobs)) return numeric_arg_error(arg);
      jobs_set = true;
    } else if (arg == "--exact-jobs" && i + 1 < argc) {
      if (!parse_int_arg(argv[++i], exact_jobs)) return numeric_arg_error(arg);
      exact_jobs_set = true;
    } else if (arg == "--no-exact-reuse") {
      exact_reuse = false;
      exact_reuse_set = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      std::uint64_t seed = 0;
      if (!parse_u64_arg(argv[++i], seed)) return numeric_arg_error(arg);
      request.seed = seed;
    } else if (arg == "--budget" && i + 1 < argc) {
      if (!parse_long_arg(argv[++i], request.max_evaluations)) return numeric_arg_error(arg);
    } else if (arg == "--time-limit" && i + 1 < argc) {
      if (!parse_double_arg(argv[++i], request.max_wall_seconds)) return numeric_arg_error(arg);
    } else if (arg == "--threads" && i + 1 < argc) {
      if (!parse_int_arg(argv[++i], evaluator_options.threads)) return numeric_arg_error(arg);
    } else if (arg == "--progress") {
      show_progress = true;
    } else if (arg == "--no-cache") {
      evaluator_options.cache_enabled = false;
    } else if (arg == "--simulate") {
      run_sim = true;
    } else if (arg == "--dump") {
      dump = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      path = arg;
    }
  }
  if (request.max_evaluations < 0 || request.max_wall_seconds < 0.0 ||
      evaluator_options.threads < 0 || jobs < 0 || exact_jobs < 0) {
    std::cerr << "--budget, --time-limit, --threads and --jobs must be positive\n";
    return usage();
  }
  // The exact knobs only steer the schedule-space backend; outside exact
  // mode they would be silently ignored, which must be an error instead.
  if ((exact_jobs_set || exact_reuse_set) && analysis_mode != AnalysisMode::Exact) {
    std::cerr << "--exact-jobs and --no-exact-reuse require --analysis-mode exact\n";
    return usage();
  }
  if (algorithm == "list") return list_algorithms();
  if (path.empty()) return usage();

  // --members/--jobs compose the portfolio payload; they are meaningless
  // for the single algorithms, so passing them there must error, not be
  // silently dropped.
  OptimizerParams optimizer_params;
  if (members_set || jobs_set) {
    if (!is_portfolio_algorithm(algorithm)) {
      std::cerr << "--members and --jobs require --algorithm portfolio\n";
      return usage();
    }
    PortfolioSpec portfolio;
    if (members_set) {
      // An explicitly empty list errors in parse_portfolio_members —
      // silently racing the default members instead would be the worst
      // failure mode for a reproducible experiment.
      auto members = parse_portfolio_members(members_arg);
      if (!members.ok()) {
        std::cerr << members.error().message << "\n";
        return 2;
      }
      portfolio.members = std::move(members).value();
    }
    portfolio.jobs = jobs;
    optimizer_params = std::move(portfolio);
  }

  auto optimizer = OptimizerRegistry::create(algorithm, optimizer_params);
  if (!optimizer.ok()) {
    std::cerr << optimizer.error().message << "\n";
    return 2;
  }

  PendingOutput json_out;
  if (!json_path.empty() && !json_out.open_for(json_path)) {
    std::cerr << "cannot write '" << json_path << "'\n";
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open '" << path << "'\n";
    return 2;
  }
  auto parsed = parse_system(in);
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed.error().message << "\n";
    return 2;
  }
  const Application& app = parsed.value().app;
  const BusParams& params = parsed.value().params;
  std::cout << "system: " << app.task_count() << " tasks, " << app.message_count()
            << " messages, " << app.graph_count() << " graphs, " << app.node_count()
            << " nodes";
  if (app.cluster_count() > 1) std::cout << ", " << app.cluster_count() << " clusters";
  std::cout << "\n";
  if (dump) {
    std::cout << write_system(app, params);
    return 0;
  }
  auto model = SystemModel::build(std::make_shared<const Application>(app));
  if (!model.ok()) {
    std::cerr << "system projection: " << model.error().message << "\n";
    return 2;
  }

  if (show_progress) {
    request.progress = [](const SolveProgress& p) {
      std::cerr << "[" << p.algorithm << "] " << p.evaluations;
      if (p.max_evaluations > 0) std::cerr << "/" << p.max_evaluations;
      std::cerr << " analyses, best cost ";
      if (p.best_cost >= kInvalidConfigCost) {
        std::cerr << "-";
      } else {
        std::cerr << fmt_double(p.best_cost, 1) << " us";
      }
      std::cerr << ", " << fmt_double(p.elapsed_seconds, 1) << " s\r";
      return true;  // never cancels; Ctrl-C remains the way out
    };
  }

  // `simulate` analyses holistically and implies the --simulate replay;
  // `exact` routes every evaluator bound through the schedule-space backend.
  if (analysis_mode == AnalysisMode::Simulate) run_sim = true;
  AnalysisOptions analysis_options;
  if (analysis_mode == AnalysisMode::Exact) {
    analysis_options.mode = AnalysisMode::Exact;
    analysis_options.exact.jobs = exact_jobs;
    analysis_options.exact.reuse_base_frontier = exact_reuse;
  }
  CostEvaluator evaluator(model.value(), params, analysis_options, evaluator_options);
  const SolveReport report = optimizer.value()->solve(evaluator, request);
  const OptimizationOutcome& outcome = report.outcome;
  if (show_progress) std::cerr << "\n";

  // Exact-mode lane: re-analyse the winner with the schedule-space backend
  // so both the JSON report and the human output carry its pessimism.
  std::unique_ptr<PessimismReport> pessimism;
  if (analysis_mode == AnalysisMode::Exact && outcome.cost.value < kInvalidConfigCost) {
    auto layouts = build_system_layouts(model.value(), params, outcome.system);
    auto exact = layouts.ok()
                     ? analyze_multicluster(model.value(), layouts.value(), analysis_options)
                     : Expected<MulticlusterResult>(layouts.error());
    if (exact.ok()) {
      std::vector<const Application*> apps;
      for (std::size_t c = 0; c < model.value().cluster_count(); ++c) {
        apps.push_back(model.value().cluster_app(c).get());
      }
      pessimism = std::make_unique<PessimismReport>(
          make_pessimism_report(apps, exact.value().clusters));
    } else {
      std::cerr << "exact analysis: " << exact.error().message << "\n";
    }
  }

  if (json_out.pending() &&
      !json_out.commit(write_solve_json(app, algorithm, report, false, pessimism.get()) +
                       "\n")) {
    std::cerr << "cannot write '" << json_path << "'\n";
    return 2;
  }

  std::cout << "\n" << outcome.algorithm << ": "
            << (outcome.feasible ? "SCHEDULABLE" : "not schedulable") << ", cost "
            << fmt_double(outcome.cost.value, 1) << " us, " << outcome.evaluations
            << " analyses in " << fmt_double(outcome.wall_seconds, 3) << " s ("
            << to_string(report.status) << ", " << report.cache_hits << " cache hits)\n";
  if (report.delta_evaluations > 0) {
    std::cout << "incremental: " << report.delta_evaluations << " delta analyses, "
              << report.components_recomputed << " components recomputed, "
              << report.components_reused << " reused\n";
  }
  {
    const EvaluatorWorkStats& profile = report.profile;
    std::cout << "profile: " << profile.analysis.holistic_iterations
              << " holistic iterations, " << profile.analysis.fixed_point_iterations
              << " fixed-point iterations, " << profile.arena_reuses << "/"
              << (profile.arena_binds + profile.arena_reuses) << " arena reuses";
    if (profile.components_per_delta.count() > 0) {
      std::cout << ", " << fmt_double(profile.components_per_delta.mean(), 1)
                << " components/delta";
    }
    std::cout << "\n";
    if (profile.analysis.exact_states_explored > 0 ||
        profile.analysis.exact_frontier_reused > 0) {
      std::cout << "exact: " << profile.analysis.exact_states_explored
                << " states explored, " << profile.analysis.exact_states_deduped
                << " deduped, " << profile.analysis.exact_frontier_reused
                << " frontiers reused\n";
    }
  }
  if (pessimism != nullptr) {
    std::cout << "pessimism: " << pessimism->refined << "/" << pessimism->activities
              << " ET activities refined, gap mean " << fmt_percent(pessimism->mean_gap)
              << ", max " << fmt_percent(pessimism->max_gap) << ", "
              << pessimism->explored_states << " states explored";
    if (pessimism->any_fallback) std::cout << " (holistic fallback on some clusters)";
    std::cout << "\n";
  }
  if (!report.members.empty()) {
    std::cout << "portfolio winner: " << report.winner << "\n";
    Table members({"member", "status", "cost [us]", "feasible", "analyses", "cache hits",
                   "improvements"});
    for (const MemberSolveReport& member : report.members) {
      members.add_row({member.member + (member.winner ? " *" : ""), to_string(member.status),
                       member.cost >= kInvalidConfigCost ? "-" : fmt_double(member.cost, 1),
                       member.feasible ? "yes" : "no", std::to_string(member.evaluations),
                       std::to_string(member.cache_hits),
                       std::to_string(member.improvements.size())});
    }
    members.print(std::cout);
  }
  if (outcome.cost.value >= kInvalidConfigCost) {
    std::cerr << "no analysable configuration found\n";
    return 1;
  }

  if (evaluator.cluster_count() > 1) {
    // Per-cluster reporting: each cluster has its own bus configuration and
    // its projection's WCRTs already include cross-cluster relay jitter.
    // Usually a cache hit (descent passes evaluate on this evaluator);
    // portfolio descents race members on sibling evaluators, so the winning
    // product may be analysed once more here.
    const SystemModel& sys = evaluator.system_model();
    const auto evaluation = evaluator.evaluate_system(outcome.system);
    if (!evaluation.valid) {
      std::cerr << "analysis: " << evaluation.error << "\n";
      return 1;
    }
    for (std::size_t c = 0; c < sys.cluster_count(); ++c) {
      const Application& capp = *sys.cluster_app(c);
      const ClusterConfig& cluster_cfg = outcome.system.clusters[c];
      if (cluster_cfg.kind == ClusterBackendKind::Tsn) {
        const TsnConfig& tsn = cluster_cfg.tsn;
        int windows = 0;
        for (const TsnGateWindow& gate : tsn.gates) {
          if (gate.length > 0) ++windows;
        }
        std::cout << "\ncluster " << c << " (tsn): " << windows << " gate windows / "
                  << format_time(tsn.cycle) << " cycle @ " << tsn.link_rate_mbps << " Mbit/s\n";
      } else {
        const BusConfig& cfg = cluster_cfg.flexray;
        std::cout << "\ncluster " << c << " (flexray): " << cfg.static_slot_count
                  << " ST slots x " << format_time(cfg.static_slot_len) << ", DYN "
                  << cfg.minislot_count << " minislots\n";
      }
      Table wcrt({"activity", "kind", "WCRT", "deadline", "status"});
      const AnalysisResult& cluster = evaluation.cluster_analysis[c];
      auto add_row = [&](const std::string& name, const char* kind, Time r, Time d) {
        wcrt.add_row({name, kind, format_time(r), format_time(d), r <= d ? "ok" : "MISS"});
      };
      for (std::uint32_t t = 0; t < capp.task_count(); ++t) {
        add_row(capp.tasks()[t].name,
                capp.tasks()[t].policy == TaskPolicy::Scs ? "SCS" : "FPS",
                cluster.task_completion[t],
                capp.effective_deadline(ActivityRef::task(static_cast<TaskId>(t))));
      }
      for (std::uint32_t m = 0; m < capp.message_count(); ++m) {
        add_row(capp.messages()[m].name,
                capp.messages()[m].cls == MessageClass::Static ? "ST" : "DYN",
                cluster.message_completion[m],
                capp.effective_deadline(ActivityRef::message(static_cast<MessageId>(m))));
      }
      wcrt.print(std::cout);
    }
    if (run_sim) {
      auto layouts = build_system_layouts(sys, params, outcome.system);
      auto mc = layouts.ok()
                    ? analyze_multicluster(sys, layouts.value(), AnalysisOptions{})
                    : Expected<MulticlusterResult>(layouts.error());
      auto sim = mc.ok() ? simulate_network(sys, layouts.value(), mc.value())
                         : Expected<NetSimResult>(mc.error());
      if (!sim.ok()) {
        std::cerr << "simulation: " << sim.error().message << "\n";
      } else {
        const SoundnessReport verdict = check_soundness(sys, mc.value(), sim.value());
        std::cout << "\nsimulated one hyper-period across " << sys.cluster_count()
                  << " clusters: " << sim.value().unfinished_jobs << " unfinished jobs, "
                  << sim.value().precedence_violations << " precedence violations, "
                  << (verdict.sound ? "observed <= bound for all "
                                    : "BOUND VIOLATIONS among ")
                  << verdict.checked << " checked activities\n";
      }
    }
    return outcome.feasible ? 0 : 1;
  }

  std::cout << "configuration: " << outcome.config.static_slot_count << " ST slots x "
            << format_time(outcome.config.static_slot_len) << ", DYN "
            << outcome.config.minislot_count << " minislots\n";
  Table fids({"message", "FrameID"});
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    if (outcome.config.frame_id[m] > 0) {
      fids.add_row({app.messages()[m].name, std::to_string(outcome.config.frame_id[m])});
    }
  }
  if (fids.rows() > 0) fids.print(std::cout);

  auto layout = BusLayout::build(app, params, outcome.config);
  auto analysis = analyze_system(layout.value());
  std::cout << "\nworst-case response times:\n";
  Table wcrt({"activity", "kind", "WCRT", "deadline", "status"});
  auto add = [&](const std::string& name, const char* kind, Time r, Time d) {
    wcrt.add_row({name, kind, format_time(r), format_time(d), r <= d ? "ok" : "MISS"});
  };
  for (std::uint32_t t = 0; t < app.task_count(); ++t) {
    add(app.tasks()[t].name, app.tasks()[t].policy == TaskPolicy::Scs ? "SCS" : "FPS",
        analysis.value().task_completion[t],
        app.effective_deadline(ActivityRef::task(static_cast<TaskId>(t))));
  }
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    add(app.messages()[m].name,
        app.messages()[m].cls == MessageClass::Static ? "ST" : "DYN",
        analysis.value().message_completion[m],
        app.effective_deadline(ActivityRef::message(static_cast<MessageId>(m))));
  }
  wcrt.print(std::cout);

  if (run_sim) {
    auto sim = simulate(layout.value(), analysis.value().schedule());
    if (!sim.ok()) {
      std::cerr << "simulation: " << sim.error().message << "\n";
    } else {
      std::cout << "\nsimulated one hyper-period: " << sim.value().unfinished_jobs
                << " unfinished jobs, " << sim.value().precedence_violations
                << " precedence violations\n";
    }
  }
  return outcome.feasible ? 0 : 1;
}

// ---- simulate -------------------------------------------------------------

std::string fmt_observed(Time t) { return t == kTimeNone ? "-" : format_time(t); }

std::string fmt_gap(Time observed, Time bound) {
  if (observed == kTimeNone || bound <= 0 || bound == kTimeInfinity) return "-";
  return fmt_percent(static_cast<double>(bound - observed) / static_cast<double>(bound));
}

int simulate_main(int argc, char** argv) {
  std::string path;
  std::string algorithm = "obc-cf";
  std::string trace_path;
  SolveRequest request;
  EvaluatorOptions evaluator_options;
  NetSimOptions sim_options;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--algorithm" && i + 1 < argc) {
      algorithm = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      std::uint64_t seed = 0;
      if (!parse_u64_arg(argv[++i], seed)) return numeric_arg_error(arg);
      request.seed = seed;
    } else if (arg == "--budget" && i + 1 < argc) {
      if (!parse_long_arg(argv[++i], request.max_evaluations)) return numeric_arg_error(arg);
    } else if (arg == "--time-limit" && i + 1 < argc) {
      if (!parse_double_arg(argv[++i], request.max_wall_seconds)) return numeric_arg_error(arg);
    } else if (arg == "--threads" && i + 1 < argc) {
      if (!parse_int_arg(argv[++i], evaluator_options.threads)) return numeric_arg_error(arg);
    } else if (arg == "--hyperperiods" && i + 1 < argc) {
      if (!parse_int_arg(argv[++i], sim_options.hyperperiods)) return numeric_arg_error(arg);
    } else if (arg == "--no-cache") {
      evaluator_options.cache_enabled = false;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      path = arg;
    }
  }
  if (request.max_evaluations < 0 || request.max_wall_seconds < 0.0 ||
      evaluator_options.threads < 0) {
    std::cerr << "--budget, --time-limit and --threads must be positive\n";
    return usage();
  }
  if (sim_options.hyperperiods < 1) {
    std::cerr << "--hyperperiods must be >= 1\n";
    return usage();
  }
  if (algorithm == "list") return list_algorithms();
  if (path.empty()) return usage();

  auto optimizer = OptimizerRegistry::create(algorithm, OptimizerParams{});
  if (!optimizer.ok()) {
    std::cerr << optimizer.error().message << "\n";
    return 2;
  }

  PendingOutput trace_out;
  if (!trace_path.empty() && !trace_out.open_for(trace_path)) {
    std::cerr << "cannot write '" << trace_path << "'\n";
    return 2;
  }
  sim_options.record_trace = trace_out.pending();

  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open '" << path << "'\n";
    return 2;
  }
  auto parsed = parse_system(in);
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed.error().message << "\n";
    return 2;
  }
  const Application& app = parsed.value().app;
  const BusParams& params = parsed.value().params;
  auto model = SystemModel::build(std::make_shared<const Application>(app));
  if (!model.ok()) {
    std::cerr << "system projection: " << model.error().message << "\n";
    return 2;
  }
  const SystemModel& sys = model.value();
  std::cout << "system: " << app.task_count() << " tasks, " << app.message_count()
            << " messages, " << sys.cluster_count() << " cluster"
            << (sys.cluster_count() > 1 ? "s" : "") << "\n";

  CostEvaluator evaluator(sys, params, AnalysisOptions{}, evaluator_options);
  const SolveReport report = optimizer.value()->solve(evaluator, request);
  const OptimizationOutcome& outcome = report.outcome;
  std::cout << outcome.algorithm << ": "
            << (outcome.feasible ? "SCHEDULABLE" : "not schedulable") << ", cost "
            << fmt_double(outcome.cost.value, 1) << " us, " << outcome.evaluations
            << " analyses\n";
  if (outcome.cost.value >= kInvalidConfigCost) {
    std::cerr << "no analysable configuration found; nothing to simulate\n";
    return 1;
  }

  auto layouts = build_system_layouts(sys, params, outcome.system);
  if (!layouts.ok()) {
    std::cerr << "layout: " << layouts.error().message << "\n";
    return 2;
  }
  auto analysis = analyze_multicluster(sys, layouts.value(), AnalysisOptions{});
  if (!analysis.ok()) {
    std::cerr << "analysis: " << analysis.error().message << "\n";
    return 2;
  }
  auto result = simulate_network(sys, layouts.value(), analysis.value(), sim_options);
  if (!result.ok()) {
    std::cerr << "simulation: " << result.error().message << "\n";
    return 2;
  }
  const NetSimResult& net = result.value();
  const SoundnessReport verdict = check_soundness(sys, analysis.value(), net);

  std::cout << "\nsimulated " << sim_options.hyperperiods << " hyper-period"
            << (sim_options.hyperperiods > 1 ? "s" : "") << " (horizon "
            << format_time(net.horizon) << ", " << net.events << " events): "
            << net.unfinished_jobs << " unfinished jobs, " << net.precedence_violations
            << " precedence violations\n";

  for (std::size_t c = 0; c < sys.cluster_count(); ++c) {
    const Application& capp = *sys.cluster_app(c);
    const AnalysisResult& bounds = analysis.value().clusters[c];
    const SimResult& observed = net.clusters[c];
    std::cout << "\ncluster " << c << " (observed worst vs analysed bound):\n";
    Table table({"activity", "kind", "observed", "bound", "gap", "status"});
    auto add = [&](const std::string& name, const char* kind, Time seen, Time bound) {
      table.add_row({name, kind, fmt_observed(seen), format_time(bound), fmt_gap(seen, bound),
                     seen != kTimeNone && seen > bound ? "VIOLATION" : "ok"});
    };
    for (std::uint32_t t = 0; t < capp.task_count(); ++t) {
      add(capp.tasks()[t].name, capp.tasks()[t].policy == TaskPolicy::Scs ? "SCS" : "FPS",
          observed.task_worst_completion[t], bounds.task_completion[t]);
    }
    for (std::uint32_t m = 0; m < capp.message_count(); ++m) {
      add(capp.messages()[m].name,
          capp.messages()[m].cls == MessageClass::Static ? "ST" : "DYN",
          observed.message_worst_completion[m], bounds.message_completion[m]);
    }
    table.print(std::cout);
  }

  if (!net.gateways.empty()) {
    std::cout << "\ngateway queues:\n";
    Table gw({"gateway", "route", "forwarded", "max depth", "overflows"});
    for (const GatewayStats& g : net.gateways) {
      gw.add_row({app.node(g.gateway).name,
                  std::to_string(g.from_cluster) + " -> " + std::to_string(g.to_cluster),
                  std::to_string(g.forwarded), std::to_string(g.max_queue_depth),
                  std::to_string(g.overflows)});
    }
    gw.print(std::cout);
  }

  std::cout << "\nsoundness: "
            << (verdict.sound ? "observed <= bound for all " : "BOUND VIOLATIONS among ")
            << verdict.checked << " checked activities";
  if (verdict.gap_samples > 0) {
    std::cout << " (pessimism gap mean " << fmt_percent(verdict.mean_gap) << ", min "
              << fmt_percent(verdict.min_gap) << ")";
  }
  std::cout << "\n";
  for (const SoundnessViolation& v : verdict.violations) {
    std::cerr << "violation: cluster " << v.cluster << (v.task ? " task " : " message ")
              << v.name << " observed " << format_time(v.observed) << " > bound "
              << format_time(v.bound) << "\n";
  }

  if (trace_out.pending() &&
      !trace_out.commit(write_netsim_trace_json(sys, analysis.value(), net, verdict,
                                                sim_options.hyperperiods))) {
    std::cerr << "cannot write '" << trace_path << "'\n";
    return 2;
  }
  return verdict.sound ? 0 : 1;
}

// ---- campaign -------------------------------------------------------------

int campaign_main(int argc, char** argv) {
  std::string spec_path;
  std::string json_path;
  std::string csv_path;
  CampaignOptions options;
  long budget_override = -1;
  double time_limit_override = -1.0;
  bool timing = false;
  bool quiet = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      if (!parse_int_arg(argv[++i], options.threads)) return numeric_arg_error(arg);
      if (options.threads < 0) {
        std::cerr << "--threads must be >= 0\n";
        return usage();
      }
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--csv" && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (arg == "--budget" && i + 1 < argc) {
      if (!parse_long_arg(argv[++i], budget_override)) return numeric_arg_error(arg);
      if (budget_override < 0) {
        std::cerr << "--budget must be >= 0\n";
        return usage();
      }
    } else if (arg == "--time-limit" && i + 1 < argc) {
      if (!parse_double_arg(argv[++i], time_limit_override)) return numeric_arg_error(arg);
      if (time_limit_override < 0.0) {
        std::cerr << "--time-limit must be >= 0\n";
        return usage();
      }
    } else if (arg == "--timing") {
      timing = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      spec_path = arg;
    }
  }
  if (spec_path.empty()) return usage();
  if (!json_path.empty() && json_path == csv_path) {
    std::cerr << "--json and --csv must name different files\n";
    return usage();
  }

  // Probe the output paths up front — an unwritable path must fail in
  // seconds, not after a multi-minute campaign — but stage through sibling
  // temp files so a failed run never clobbers previous results.
  PendingOutput json_out;
  if (!json_path.empty() && !json_out.open_for(json_path)) {
    std::cerr << "cannot write '" << json_path << "'\n";
    return 2;
  }
  PendingOutput csv_out;
  if (!csv_path.empty() && !csv_out.open_for(csv_path)) {
    std::cerr << "cannot write '" << csv_path << "'\n";
    return 2;
  }

  std::ifstream in(spec_path);
  if (!in) {
    std::cerr << "cannot open '" << spec_path << "'\n";
    return 2;
  }
  auto spec = parse_campaign(in);
  if (!spec.ok()) {
    std::cerr << spec.error().message << "\n";
    return 2;
  }
  if (budget_override >= 0) spec.value().max_evaluations = budget_override;
  if (time_limit_override >= 0.0) spec.value().max_wall_seconds = time_limit_override;

  if (!quiet) {
    options.progress = [](std::size_t done, std::size_t total) {
      std::cerr << "\rscenario " << done << "/" << total;
      if (done == total) std::cerr << "\n";
    };
  }

  // The Section 7 bus parameters (10 Mbit/s, 5 us minislots) — the campaign
  // spec sweeps the application side; the bus is fixed like in the paper.
  BusParams params;
  CampaignRunner runner(spec.value(), params);
  auto result = runner.run(options);
  if (!result.ok()) {
    std::cerr << result.error().message << "\n";
    return 2;
  }

  std::size_t skipped = 0;
  for (const ScenarioRecord& record : result.value().scenarios) {
    if (!record.generated) ++skipped;
  }
  const bool all_skipped = skipped == result.value().scenarios.size();
  if (all_skipped) {
    std::cerr << "campaign '" << result.value().spec.name
              << "': every scenario failed generation\n";
    for (const ScenarioRecord& record : result.value().scenarios) {
      std::cerr << "skipped scenario " << record.plan.index << ": " << record.error << "\n";
      break;  // they are all degenerate; one reason is enough
    }
  }
  if (!quiet && !all_skipped) {
    std::cout << "campaign '" << result.value().spec.name << "': "
              << result.value().scenarios.size() << " scenarios (" << skipped
              << " skipped) in " << fmt_double(result.value().wall_seconds, 1) << " s\n\n";
    Table table({"algorithm", "scenarios", "schedulable", "cost p50 [us]", "cost p90 [us]",
                 "analyses/scenario"});
    for (const std::string& name : result.value().spec.algorithms) {
      const AlgorithmAggregate agg = aggregate_runs(result.value(), name);
      table.add_row({name, std::to_string(agg.scenarios),
                     std::to_string(agg.schedulable) + " (" +
                         fmt_percent(agg.schedulable_fraction) + ")",
                     agg.analysable > 0 ? fmt_double(agg.cost_p50, 1) : "-",
                     agg.analysable > 0 ? fmt_double(agg.cost_p90, 1) : "-",
                     fmt_double(agg.evaluations_mean, 1)});
    }
    table.print(std::cout);
    for (const ScenarioRecord& record : result.value().scenarios) {
      if (!record.generated) {
        std::cerr << "skipped scenario " << record.plan.index << ": " << record.error << "\n";
      }
    }
  }

  if (json_out.pending() && !json_out.commit(write_campaign_json(result.value(), timing))) {
    std::cerr << "cannot write '" << json_path << "'\n";
    return 2;
  }
  if (csv_out.pending() && !csv_out.commit(write_campaign_csv(result.value(), timing))) {
    std::cerr << "cannot write '" << csv_path << "'\n";
    return 2;
  }
  return all_skipped ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2) {
    const std::string first = argv[1];
    if (first == "campaign") return campaign_main(argc - 2, argv + 2);
    if (first == "simulate") return simulate_main(argc - 2, argv + 2);
    if (first == "solve") return solve_main(argc - 2, argv + 2);
    if (first == "--help" || first == "-h") return usage();
  }
  // Legacy spelling: no subcommand = solve.
  return solve_main(argc - 1, argv + 1);
}
