#include "flexopt/util/suggest.hpp"

#include <algorithm>
#include <vector>

namespace flexopt {

std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t next_diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         diagonal + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diagonal = next_diagonal;
    }
  }
  return row[b.size()];
}

std::string suggest_hint(std::string_view given,
                         std::span<const std::string_view> candidates) {
  std::size_t best = given.size();
  std::string_view suggestion;
  for (const std::string_view candidate : candidates) {
    const std::size_t d = edit_distance(given, candidate);
    if (d < best) {
      best = d;
      suggestion = candidate;
    }
  }
  if (suggestion.empty() || best > 2) return "";
  return " (did you mean '" + std::string(suggestion) + "'?)";
}

}  // namespace flexopt
