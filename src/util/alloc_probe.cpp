/// \file alloc_probe.cpp
/// Global operator new/delete replacement backing util/alloc_probe.hpp.
/// Compiled ONLY into binaries that assert allocation behaviour (see the
/// header); never part of the util library.  Disabled under sanitizers,
/// whose runtimes intercept the allocator themselves.

#include "flexopt/util/alloc_probe.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define FLEXOPT_ALLOC_PROBE_ACTIVE 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define FLEXOPT_ALLOC_PROBE_ACTIVE 0
#else
#define FLEXOPT_ALLOC_PROBE_ACTIVE 1
#endif
#else
#define FLEXOPT_ALLOC_PROBE_ACTIVE 1
#endif

#if FLEXOPT_ALLOC_PROBE_ACTIVE

#include <cstdlib>
#include <new>

namespace {
thread_local std::uint64_t t_allocations = 0;

void* counted_alloc(std::size_t size) {
  ++t_allocations;
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  ++t_allocations;
  if (size == 0) size = align;
  void* p = std::aligned_alloc(align, (size + align - 1) / align * align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++t_allocations;
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++t_allocations;
  return std::malloc(size == 0 ? 1 : size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace flexopt::alloc_probe {
bool installed() { return true; }
std::uint64_t thread_allocations() { return t_allocations; }
}  // namespace flexopt::alloc_probe

#else  // sanitizer build: keep the stock allocator

namespace flexopt::alloc_probe {
bool installed() { return false; }
std::uint64_t thread_allocations() { return 0; }
}  // namespace flexopt::alloc_probe

#endif
