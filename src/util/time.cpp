#include "flexopt/util/time.hpp"

#include <cmath>
#include <cstdio>

namespace flexopt {

std::string format_time(Time t) {
  if (t == kTimeNone) return "unset";
  if (t == kTimeInfinity) return "inf";

  const bool negative = t < 0;
  const double abs_ns = std::abs(static_cast<double>(t));
  const char* unit = "ns";
  double scaled = abs_ns;
  if (abs_ns >= 1e9) {
    unit = "s";
    scaled = abs_ns / 1e9;
  } else if (abs_ns >= 1e6) {
    unit = "ms";
    scaled = abs_ns / 1e6;
  } else if (abs_ns >= 1e3) {
    unit = "us";
    scaled = abs_ns / 1e3;
  }
  char buf[64];
  if (scaled == std::floor(scaled)) {
    std::snprintf(buf, sizeof(buf), "%s%.0f %s", negative ? "-" : "", scaled, unit);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%.3f %s", negative ? "-" : "", scaled, unit);
  }
  return buf;
}

}  // namespace flexopt
