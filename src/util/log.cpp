#include "flexopt/util/log.hpp"

#include <cstdio>

namespace flexopt {

namespace {
LogLevel g_level = LogLevel::Warn;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_line(LogLevel level, const std::string& message) {
  if (level < g_level) return;
  std::fprintf(stderr, "[flexopt %s] %s\n", level_tag(level), message.c_str());
}

}  // namespace flexopt
