#pragma once

/// \file bitset.hpp
/// Resizable fixed-width bitset over a dense index space.  The incremental
/// analysis uses these for its invalidation closure and dirty tracking:
/// membership tests and inserts become single-word bit operations, and
/// clearing between evaluations is a memset over n/64 words instead of a
/// byte-per-element pass — with the backing storage reused across
/// evaluations (reset() only reallocates when the universe grows).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace flexopt {

class IndexBitset {
 public:
  /// Resize to a universe of `bits` indices and clear every bit.  Reuses
  /// the existing words when the capacity suffices (the steady-state,
  /// allocation-free path).
  void reset(std::size_t bits) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, 0);
  }
  /// Clear all bits, keeping the current size.
  void clear() {
    for (std::uint64_t& w : words_) w = 0;
  }
  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void reset_bit(std::size_t i) { words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63)); }
  [[nodiscard]] bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  /// Set bit i; returns its previous value (the closure's "already
  /// marked?" test and the insert in one word access).
  bool test_set(std::size_t i) {
    std::uint64_t& w = words_[i >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    const bool old = (w & mask) != 0;
    w |= mask;
    return old;
  }
  /// Set every bit in the universe.
  void fill() {
    for (std::uint64_t& w : words_) w = ~std::uint64_t{0};
    if (const std::size_t tail = bits_ & 63; tail != 0 && !words_.empty()) {
      words_.back() = (std::uint64_t{1} << tail) - 1;
    }
  }
  [[nodiscard]] std::size_t size() const { return bits_; }
  [[nodiscard]] bool any() const {
    for (const std::uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t bits_ = 0;
};

}  // namespace flexopt
