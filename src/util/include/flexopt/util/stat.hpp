#pragma once

/// \file stat.hpp
/// Near-zero-cost counter/histogram facility for always-on hot-path
/// profiling (the StatCollect idea): recording is a handful of integer
/// adds into fixed-size arrays — no locks, no allocation, no branches on
/// the fast path beyond a bucket clamp — so the evaluator can keep
/// moves/sec, components-recomputed distributions, and fixed-point
/// iteration counts collected unconditionally, in Release builds, on every
/// run.  Histograms are plain monotone counters, so they merge (+=) across
/// threads and diff (since()) across solve boundaries exactly like the
/// scalar work counters do.

#include <array>
#include <bit>
#include <cstdint>

namespace flexopt {

/// Power-of-two-bucket histogram of non-negative integer samples.
/// Bucket b holds samples v with bit_width(v) == b, i.e. bucket 0 is
/// exactly v == 0, bucket 1 is v == 1, bucket 2 is v in [2, 3], bucket 3
/// is v in [4, 7], ... (the last bucket absorbs everything larger).  All
/// state is monotone counts, so merging and diffing are element-wise.
class Histogram {
 public:
  static constexpr int kBuckets = 32;

  void record(std::uint64_t v) {
    ++count_;
    sum_ += v;
    ++buckets_[static_cast<std::size_t>(bucket_of(v))];
  }

  [[nodiscard]] static int bucket_of(std::uint64_t v) {
    const int b = std::bit_width(v);
    return b < kBuckets ? b : kBuckets - 1;
  }
  /// Inclusive upper bound of bucket `b`'s value range (the legend the
  /// reports print).
  [[nodiscard]] static std::uint64_t bucket_bound(int b) {
    if (b <= 0) return 0;
    if (b >= kBuckets - 1) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const { return buckets_; }
  /// Index of the highest non-empty bucket; -1 when empty.
  [[nodiscard]] int max_bucket() const {
    for (int b = kBuckets - 1; b >= 0; --b) {
      if (buckets_[static_cast<std::size_t>(b)] > 0) return b;
    }
    return -1;
  }

  Histogram& operator+=(const Histogram& o) {
    count_ += o.count_;
    sum_ += o.sum_;
    for (int b = 0; b < kBuckets; ++b) {
      buckets_[static_cast<std::size_t>(b)] += o.buckets_[static_cast<std::size_t>(b)];
    }
    return *this;
  }

  /// Samples recorded after the `before` snapshot (all counts are
  /// monotone, so the element-wise difference is itself a histogram) —
  /// how per-solve reports are carved out of a long-lived evaluator.
  [[nodiscard]] Histogram since(const Histogram& before) const {
    Histogram out;
    out.count_ = count_ - before.count_;
    out.sum_ = sum_ - before.sum_;
    for (int b = 0; b < kBuckets; ++b) {
      out.buckets_[static_cast<std::size_t>(b)] =
          buckets_[static_cast<std::size_t>(b)] - before.buckets_[static_cast<std::size_t>(b)];
    }
    return out;
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

}  // namespace flexopt
