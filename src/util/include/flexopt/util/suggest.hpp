#pragma once

/// \file suggest.hpp
/// "Did you mean" hints shared by every keyword/enum parser that rejects
/// free-form user text: campaign spec keywords, cluster backend names, and
/// the CLI's --analysis-mode values.  Typos in a checked-in spec or a CI
/// command line must fail loudly AND helpfully.

#include <cstddef>
#include <span>
#include <string>
#include <string_view>

namespace flexopt {

/// Levenshtein distance (unit insert/delete/substitute costs).
[[nodiscard]] std::size_t edit_distance(std::string_view a, std::string_view b);

/// Returns " (did you mean 'X'?)" for the closest candidate within edit
/// distance 2 (and closer than replacing the whole input), or "" when no
/// candidate is plausibly what the user meant.  Ties keep the earliest
/// candidate, so order the span by preference.
[[nodiscard]] std::string suggest_hint(std::string_view given,
                                       std::span<const std::string_view> candidates);

}  // namespace flexopt
