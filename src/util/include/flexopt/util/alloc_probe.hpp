#pragma once

/// \file alloc_probe.hpp
/// Heap-allocation counting for the zero-allocation contract of the
/// analysis hot path.  The counters are fed by a global operator
/// new/delete replacement that lives in src/util/alloc_probe.cpp — a TU
/// that is deliberately NOT part of the util library.  Binaries that want
/// counting (the arena allocation test, bench_delta_eval's alloc gate)
/// compile that file in explicitly; everything else keeps the stock
/// allocator.  Under AddressSanitizer the interposer compiles to nothing
/// (ASan owns operator new), so probing code must check installed() and
/// skip its assertions when the probe is absent.

#include <cstdint>

namespace flexopt::alloc_probe {

/// True when the replacing operator new from alloc_probe.cpp is linked
/// into this binary and active.
[[nodiscard]] bool installed();

/// Allocations performed by the calling thread since it started (monotone;
/// snapshot before/after a region and subtract).
[[nodiscard]] std::uint64_t thread_allocations();

}  // namespace flexopt::alloc_probe
