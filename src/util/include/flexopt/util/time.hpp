#pragma once

/// \file time.hpp
/// Time representation used throughout flexopt.
///
/// All durations and instants are integral nanoseconds.  The paper works in
/// microseconds with minislot granularity; nanoseconds keep Eq. (1)
/// (C_m = frame_size / bus_speed) exact for all realistic bus speeds while
/// staying in a plain 64-bit integer (about 292 years of range).

#include <cstdint>
#include <limits>
#include <string>

namespace flexopt {

/// Duration or instant in nanoseconds.
using Time = std::int64_t;

/// Sentinel for "no time" / unset instants.
inline constexpr Time kTimeNone = std::numeric_limits<Time>::min();

/// Largest representable time; used as +infinity in fixed-point iterations.
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::max();

namespace timeunits {

/// Nanoseconds (identity; exists for symmetry and call-site clarity).
constexpr Time ns(std::int64_t v) { return v; }
/// Microseconds to nanoseconds.
constexpr Time us(std::int64_t v) { return v * 1'000; }
/// Milliseconds to nanoseconds.
constexpr Time ms(std::int64_t v) { return v * 1'000'000; }
/// Seconds to nanoseconds.
constexpr Time sec(std::int64_t v) { return v * 1'000'000'000; }

}  // namespace timeunits

/// Ceiling division for non-negative integers: ceil(a / b), b > 0.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Render a time value as a human-readable string with unit scaling,
/// e.g. "1.286 ms", "250 us", "unset".
std::string format_time(Time t);

/// Convert to floating microseconds (for plots / CSV output only;
/// all computation stays integral).
constexpr double to_us(Time t) { return static_cast<double>(t) / 1'000.0; }

}  // namespace flexopt
