#pragma once

/// \file expected.hpp
/// Minimal result type for recoverable configuration / validation errors.
///
/// flexopt is a design-space-exploration library: most "errors" (a bus
/// configuration violating the FlexRay spec, an unschedulable system) are
/// ordinary negative answers that optimisation loops must observe cheaply,
/// so exceptions are reserved for programming errors (precondition
/// violations) and `Expected` carries everything else.

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace flexopt {

/// A recoverable error with a human-readable message.
struct Error {
  std::string message;
};

/// Result-or-error.  `value()` throws std::logic_error if the caller did not
/// check `ok()` first and the Expected holds an error — that is a programming
/// bug, not a runtime condition.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : data_(std::move(value)) {}       // NOLINT(google-explicit-constructor)
  Expected(Error error) : data_(std::move(error)) {}   // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    require_ok();
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    require_ok();
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    require_ok();
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] const Error& error() const {
    if (ok()) throw std::logic_error("Expected::error() called on a success value");
    return std::get<Error>(data_);
  }

 private:
  void require_ok() const {
    if (!ok()) {
      throw std::logic_error("Expected::value() on error: " + std::get<Error>(data_).message);
    }
  }

  std::variant<T, Error> data_;
};

/// Convenience factory mirroring std::unexpected.
inline Error make_error(std::string message) { return Error{std::move(message)}; }

}  // namespace flexopt
