#pragma once

/// \file seed_mix.hpp
/// Seed derivation shared by every subsystem that fans one base seed out
/// into independent deterministic streams (campaign scenario seeds,
/// portfolio member seeds).  The derivation depends only on (base, index),
/// never on thread count or completion order, which is what makes the
/// campaign and portfolio determinism contracts possible.

#include <cstdint>

namespace flexopt {

/// splitmix64 finalizer — decorrelates consecutive indices into
/// independent-looking generator seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic child seed for stream `index` under `base`.  Distinct
/// indices give decorrelated seeds even for consecutive/small bases.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) {
  return splitmix64(base ^ splitmix64(index));
}

}  // namespace flexopt
