#pragma once

/// \file table.hpp
/// Plain-text and CSV table rendering for the benchmark harnesses, so every
/// bench binary prints paper-style rows that EXPERIMENTS.md can quote.

#include <iosfwd>
#include <string>
#include <vector>

namespace flexopt {

/// Accumulates rows of string cells and renders them aligned (stdout) or as
/// CSV (files consumed by plotting scripts).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; pads/truncates to the header width.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Render with column alignment and a header underline.
  void print(std::ostream& os) const;

  /// Render as RFC-4180-ish CSV (no quoting of embedded commas needed for
  /// our numeric content; asserts if a cell contains one).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers used by the benches.
std::string fmt_double(double v, int precision = 2);
std::string fmt_percent(double fraction, int precision = 1);

}  // namespace flexopt
