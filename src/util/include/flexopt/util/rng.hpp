#pragma once

/// \file rng.hpp
/// Deterministic random number generation for workload synthesis and
/// simulated annealing.  A thin wrapper over std::mt19937_64 so that every
/// experiment is reproducible from a single seed printed by the benches.

#include <cstdint>
#include <random>
#include <vector>

namespace flexopt {

/// Seedable RNG with the handful of draw shapes flexopt needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// The seed this generator was constructed with (for logging).
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool chance(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Uniformly pick an index in [0, n).  Requires n > 0.
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// Derive an independent child generator (for per-system streams inside a
  /// benchmark sweep) without correlating the parent sequence.
  Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace flexopt
