#pragma once

/// \file log.hpp
/// Minimal leveled logging.  Optimisation loops are chatty at debug level;
/// the default level is Warn so library users see nothing unless they opt in.

#include <sstream>
#include <string>

namespace flexopt {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Off = 3 };

/// Process-wide log level (not thread-safe to mutate concurrently with
/// logging; set it once at startup).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line to stderr if `level` is enabled.
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::Debug) {
    log_line(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
  }
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::Info) {
    log_line(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
  }
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::Warn) {
    log_line(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
  }
}

}  // namespace flexopt
