#include "flexopt/util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>

namespace flexopt {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) {
        os << std::string(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      assert(cells[c].find(',') == std::string::npos && "CSV cells must not contain commas");
      os << cells[c];
      if (c + 1 < cells.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace flexopt
