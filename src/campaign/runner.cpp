#include "flexopt/campaign/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "flexopt/analysis/exact/exact_analysis.hpp"
#include "flexopt/core/portfolio.hpp"
#include "flexopt/netsim/netsim.hpp"

namespace flexopt {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

Expected<CampaignResult> CampaignRunner::run(const CampaignOptions& options) {
  auto plans = expand_grid(spec_);
  if (!plans.ok()) return plans.error();
  for (const std::string& name : spec_.algorithms) {
    if (!OptimizerRegistry::contains(name)) {
      return make_error("campaign: unknown algorithm '" + name + "' (see --algorithm list)");
    }
  }
  if (options.threads < 0) return make_error("campaign: threads must be >= 0");

  // Shared thread budget: scenario-level workers get first claim on the
  // budget; whatever is left over per worker goes to member-level
  // parallelism inside "portfolio" solves.  On wide grids that means
  // portfolios run their members serially (scenario parallelism already
  // saturates the machine); on narrow grids with many threads the members
  // race.  Neither split changes any record (see the determinism
  // contracts of CampaignRunner and PortfolioOptimizer).
  const std::size_t hardware = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t budget =
      options.threads > 0 ? static_cast<std::size_t>(options.threads) : hardware;
  const std::size_t scenario_threads =
      std::min(budget, std::max<std::size_t>(1, plans.value().size()));
  const int portfolio_jobs =
      static_cast<int>(std::max<std::size_t>(1, budget / scenario_threads));

  PortfolioSpec portfolio_params;
  if (!spec_.portfolio_members.empty()) portfolio_params.members = spec_.portfolio_members;
  portfolio_params.jobs = portfolio_jobs;
  const bool uses_portfolio =
      std::find_if(spec_.algorithms.begin(), spec_.algorithms.end(), is_portfolio_algorithm) !=
      spec_.algorithms.end();
  if (uses_portfolio) {  // validate the member list up front — spec-level, like algorithms
    auto probe = OptimizerRegistry::create("portfolio", portfolio_params);
    if (!probe.ok()) return probe.error();
  }

  const auto started = std::chrono::steady_clock::now();
  CampaignResult result;
  result.spec = spec_;
  result.params = params_;
  result.scenarios.resize(plans.value().size());

  std::atomic<std::size_t> next{0};
  // Guarded by progress_mutex: counting inside the lock keeps delivered
  // (done, total) pairs monotonic across workers.
  std::size_t done = 0;
  std::mutex progress_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= plans.value().size()) return;
      const ScenarioPlan& plan = plans.value()[i];
      ScenarioRecord& record = result.scenarios[i];
      record.plan = plan;

      // Generate, then project: multi-cluster cells also need a valid
      // system projection, and a failure in either step is a generation
      // failure like any other (skip-and-record: a degenerate grid cell
      // must not sink the campaign, or crash it).
      SystemModel model;
      {
        auto app = generate_scenario(plan.scenario, params_);
        if (!app.ok()) {
          record.generated = false;
          record.error = app.error().message;
        } else {
          auto built =
              SystemModel::build(std::make_shared<const Application>(std::move(app).value()));
          if (!built.ok()) {
            record.generated = false;
            record.error = built.error().message;
          } else {
            model = std::move(built).value();
          }
        }
      }
      if (model.global() != nullptr) {
        const Application& generated = *model.global();
        record.generated = true;
        record.task_count = generated.task_count();
        record.message_count = generated.message_count();
        record.graph_count = generated.graph_count();
        record.cluster_count = generated.cluster_count();
        // Multi-cluster systems report the most-loaded bus — the figure
        // comparable to the per-bus utilisation band of the grid cell.
        if (record.cluster_count > 1) {
          double worst = 0.0;
          for (std::size_t c = 0; c < record.cluster_count; ++c) {
            worst = std::max(worst, bus_utilization(generated, params_,
                                                    static_cast<ClusterId>(
                                                        static_cast<std::uint32_t>(c))));
          }
          record.bus_util_realized = worst;
        } else {
          record.bus_util_realized = bus_utilization(generated, params_);
        }
        record.runs.reserve(spec_.algorithms.size());
        for (const std::string& name : spec_.algorithms) {
          auto optimizer = is_portfolio_algorithm(name)
                               ? OptimizerRegistry::create(name, portfolio_params)
                               : OptimizerRegistry::create(name);
          if (!optimizer.ok()) {  // registered names were checked above
            record.error = optimizer.error().message;
            continue;
          }
          // One single-threaded evaluator per (scenario, algorithm):
          // campaign parallelism lives at the scenario level only, so the
          // per-solve evaluation sequence — and with it every recorded
          // count and cost — is independent of CampaignOptions::threads.
          EvaluatorOptions evaluator_options;
          evaluator_options.threads = 1;
          // The plan's analysis mode drives every evaluator bound of the
          // solve (`simulate` analyses holistically — its extra lane is the
          // forced sim_check below).
          AnalysisOptions analysis_options;
          if (plan.analysis_mode == AnalysisMode::Exact) {
            analysis_options.mode = AnalysisMode::Exact;
            analysis_options.exact.jobs = spec_.exact_jobs;
          }
          CostEvaluator evaluator(model, params_, analysis_options, evaluator_options);
          SolveRequest request;
          request.seed = plan.scenario.base.seed;
          request.max_evaluations = spec_.max_evaluations;
          request.max_wall_seconds = spec_.max_wall_seconds;
          const SolveReport report = optimizer.value()->solve(evaluator, request);

          AlgorithmRun run;
          run.algorithm = name;
          run.feasible = report.outcome.feasible;
          run.cost = report.outcome.cost.value;
          run.evaluations = report.outcome.evaluations;
          run.cache_hits = report.cache_hits;
          run.cache_misses = report.cache_misses;
          run.status = report.status;
          run.portfolio_winner = report.winner;
          run.wall_seconds = report.outcome.wall_seconds;
          run.analysis_mode = plan.analysis_mode;
          // Post-solve winner lanes.  sim_check (or a `simulate` cell):
          // replay the winner on the network simulator for one
          // hyper-period.  The simulation is single-threaded and seeded by
          // nothing but the winning configuration, so it preserves the
          // thread-count determinism contract.  An `exact` cell re-analyses
          // the winner with the schedule-space backend and records its
          // holistic-vs-exact pessimism.  A layout/analysis failure on the
          // winner leaves the lanes unrun rather than failing the scenario
          // (the solve itself already succeeded).
          const bool want_sim =
              spec_.sim_check || plan.analysis_mode == AnalysisMode::Simulate;
          const bool want_exact = plan.analysis_mode == AnalysisMode::Exact;
          if ((want_sim || want_exact) && report.outcome.cost.value < kInvalidConfigCost) {
            AnalysisOptions winner_options;
            if (want_exact) {
              winner_options.mode = AnalysisMode::Exact;
              winner_options.exact.jobs = spec_.exact_jobs;
            }
            auto layouts = build_system_layouts(model, params_, report.outcome.system);
            auto analysis = layouts.ok()
                                ? analyze_multicluster(model, layouts.value(), winner_options)
                                : Expected<MulticlusterResult>(layouts.error());
            if (want_exact && analysis.ok()) {
              std::vector<const Application*> apps;
              apps.reserve(model.cluster_count());
              for (std::size_t c = 0; c < model.cluster_count(); ++c) {
                apps.push_back(model.cluster_app(c).get());
              }
              const PessimismReport pessimism =
                  make_pessimism_report(apps, analysis.value().clusters);
              run.exact_ran = true;
              run.exact_fallback = pessimism.any_fallback;
              run.exact_states = pessimism.explored_states;
              run.exact_refined = pessimism.refined;
              run.exact_gap_mean = pessimism.mean_gap;
              run.exact_gap_max = pessimism.max_gap;
            }
            if (want_sim) {
              // Exact cells simulate against the refined bounds: the
              // stronger observed <= exact check subsumes the holistic one.
              auto sim = analysis.ok()
                             ? simulate_network(model, layouts.value(), analysis.value())
                             : Expected<NetSimResult>(analysis.error());
              if (sim.ok()) {
                const SoundnessReport verdict =
                    check_soundness(model, analysis.value(), sim.value());
                run.simulated = true;
                run.sim_sound = verdict.sound;
                run.sim_gap = verdict.mean_gap;
              }
            }
          }
          record.runs.push_back(std::move(run));
        }
      }

      if (options.progress) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        options.progress(++done, plans.value().size());
      }
    }
  };

  std::size_t threads = std::min(scenario_threads, plans.value().size());
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  result.wall_seconds = seconds_since(started);
  return result;
}

}  // namespace flexopt
