#include "flexopt/campaign/spec_format.hpp"

#include <algorithm>
#include <istream>
#include <limits>
#include <sstream>
#include <vector>

#include "flexopt/core/portfolio.hpp"
#include "flexopt/io/system_format.hpp"
#include "flexopt/util/suggest.hpp"

namespace flexopt {
namespace {

Error line_error(int line, const std::string& message) {
  return make_error("campaign spec line " + std::to_string(line) + ": " + message);
}

Expected<double> parse_double(const std::string& text) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size()) return make_error("trailing characters in '" + text + "'");
    return v;
  } catch (const std::exception&) {
    return make_error("expected a number, got '" + text + "'");
  }
}

Expected<std::int64_t> parse_int(const std::string& text) {
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(text, &pos);
    if (pos != text.size()) return make_error("trailing characters in '" + text + "'");
    return v;
  } catch (const std::exception&) {
    return make_error("expected an integer, got '" + text + "'");
  }
}

/// Range-checked int parse: out-of-range values must error, not wrap — a
/// truncated count silently runs a different experiment.
Expected<int> parse_int32(const std::string& text) {
  auto v = parse_int(text);
  if (!v.ok()) return v.error();
  if (v.value() < std::numeric_limits<int>::min() ||
      v.value() > std::numeric_limits<int>::max()) {
    return make_error("value out of range: '" + text + "'");
  }
  return static_cast<int>(v.value());
}

Expected<std::uint64_t> parse_uint(const std::string& text) {
  if (!text.empty() && text[0] == '-') {
    return make_error("expected an unsigned integer, got '" + text + "'");
  }
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(text, &pos);
    if (pos != text.size()) return make_error("trailing characters in '" + text + "'");
    return v;
  } catch (const std::exception&) {
    return make_error("expected an unsigned integer, got '" + text + "'");
  }
}

/// Every keyword the parser understands, for the unknown-keyword
/// diagnostic below.  Keep in sync with the dispatch chain in
/// parse_campaign (a keyword added there but not here degrades the "did
/// you mean" hint for its near-typos; spec_format_test's keyword tests
/// cover the common spellings).
constexpr std::string_view kKeywords[] = {
    "name",
    "nodes",
    "topology",
    "clusters",
    "backend",
    "analysis_mode",
    "exact_jobs",
    "traffic",
    "node_util",
    "bus_util",
    "periods",
    "message_bytes",
    "replicates",
    "tasks_per_node",
    "tasks_per_graph",
    "tt_share",
    "inter_share",
    "deadline_factor",
    "seed",
    "algorithms",
    "portfolio_members",
    "budget",
    "time_limit",
    "sim_check",
};

std::string unknown_keyword_message(const std::string& keyword) {
  return "unknown keyword '" + keyword + "'" + suggest_hint(keyword, kKeywords);
}

Expected<UtilBand> parse_band(const std::string& text) {
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos) {
    return make_error("expected lo:hi utilisation band, got '" + text + "'");
  }
  auto lo = parse_double(text.substr(0, colon));
  if (!lo.ok()) return lo.error();
  auto hi = parse_double(text.substr(colon + 1));
  if (!hi.ok()) return hi.error();
  return UtilBand{lo.value(), hi.value()};
}

}  // namespace

Expected<CampaignSpec> parse_campaign(std::istream& in) {
  CampaignSpec spec;
  std::string line;
  int line_no = 0;
  // Axis keywords replace the built-in default on their first occurrence
  // and extend the axis afterwards (periods always extends: each line is
  // one period-set axis value).
  bool nodes_set = false, topo_set = false, clusters_set = false, backend_set = false,
       mode_set = false, traffic_set = false, node_util_set = false, bus_util_set = false,
       periods_set = false, bytes_set = false, algorithms_set = false;

  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream tokens(line);
    std::string keyword;
    if (!(tokens >> keyword)) continue;  // blank / comment-only line

    std::vector<std::string> values;
    for (std::string v; tokens >> v;) values.push_back(std::move(v));
    if (values.empty()) return line_error(line_no, "'" + keyword + "' needs a value");
    const std::string& first = values.front();
    // Scalar keywords take exactly one value; surplus tokens on a line that
    // is not an axis would otherwise vanish silently — the worst failure
    // mode for a reproducible-experiment spec.
    const bool is_axis = keyword == "nodes" || keyword == "topology" ||
                         keyword == "clusters" || keyword == "backend" ||
                         keyword == "analysis_mode" || keyword == "traffic" ||
                         keyword == "node_util" || keyword == "bus_util" ||
                         keyword == "periods" || keyword == "message_bytes" ||
                         keyword == "algorithms" || keyword == "portfolio_members";
    if (!is_axis && values.size() > 1) {
      return line_error(line_no, "'" + keyword + "' takes a single value");
    }

    if (keyword == "name") {
      spec.name = first;
    } else if (keyword == "nodes") {
      if (!nodes_set) spec.node_counts.clear();
      nodes_set = true;
      for (const std::string& v : values) {
        auto n = parse_int32(v);
        if (!n.ok()) return line_error(line_no, n.error().message);
        spec.node_counts.push_back(n.value());
      }
    } else if (keyword == "topology") {
      if (!topo_set) spec.topologies.clear();
      topo_set = true;
      for (const std::string& v : values) {
        auto t = parse_topology(v);
        if (!t.ok()) return line_error(line_no, t.error().message);
        spec.topologies.push_back(t.value());
      }
    } else if (keyword == "clusters") {
      if (!clusters_set) spec.cluster_counts.clear();
      clusters_set = true;
      for (const std::string& v : values) {
        auto c = parse_int32(v);
        if (!c.ok()) return line_error(line_no, c.error().message);
        spec.cluster_counts.push_back(c.value());
      }
    } else if (keyword == "backend") {
      if (!backend_set) spec.backends.clear();
      backend_set = true;
      for (const std::string& v : values) {
        auto b = parse_backend_mix(v);
        if (!b.ok()) return line_error(line_no, b.error().message);
        spec.backends.push_back(b.value());
      }
    } else if (keyword == "analysis_mode") {
      if (!mode_set) spec.analysis_modes.clear();
      mode_set = true;
      for (const std::string& v : values) {
        auto m = parse_analysis_mode(v);
        if (!m.ok()) return line_error(line_no, m.error().message);
        spec.analysis_modes.push_back(m.value());
      }
    } else if (keyword == "traffic") {
      if (!traffic_set) spec.traffic_mixes.clear();
      traffic_set = true;
      for (const std::string& v : values) {
        auto t = parse_traffic_mix(v);
        if (!t.ok()) return line_error(line_no, t.error().message);
        spec.traffic_mixes.push_back(t.value());
      }
    } else if (keyword == "node_util") {
      if (!node_util_set) spec.node_util_bands.clear();
      node_util_set = true;
      for (const std::string& v : values) {
        auto band = parse_band(v);
        if (!band.ok()) return line_error(line_no, band.error().message);
        spec.node_util_bands.push_back(band.value());
      }
    } else if (keyword == "bus_util") {
      if (!bus_util_set) spec.bus_util_bands.clear();
      bus_util_set = true;
      for (const std::string& v : values) {
        auto band = parse_band(v);
        if (!band.ok()) return line_error(line_no, band.error().message);
        spec.bus_util_bands.push_back(band.value());
      }
    } else if (keyword == "periods") {
      if (!periods_set) spec.period_sets.clear();
      periods_set = true;
      std::vector<Time> periods;
      for (const std::string& v : values) {
        auto p = parse_duration(v);
        if (!p.ok()) return line_error(line_no, p.error().message);
        periods.push_back(p.value());
      }
      spec.period_sets.push_back(std::move(periods));
    } else if (keyword == "message_bytes") {
      if (!bytes_set) spec.message_size_caps.clear();
      bytes_set = true;
      for (const std::string& v : values) {
        auto b = parse_int32(v);
        if (!b.ok()) return line_error(line_no, b.error().message);
        spec.message_size_caps.push_back(b.value());
      }
    } else if (keyword == "replicates") {
      auto v = parse_int32(first);
      if (!v.ok()) return line_error(line_no, v.error().message);
      spec.replicates = v.value();
    } else if (keyword == "tasks_per_node") {
      auto v = parse_int32(first);
      if (!v.ok()) return line_error(line_no, v.error().message);
      spec.tasks_per_node = v.value();
    } else if (keyword == "tasks_per_graph") {
      auto v = parse_int32(first);
      if (!v.ok()) return line_error(line_no, v.error().message);
      spec.tasks_per_graph = v.value();
    } else if (keyword == "tt_share") {
      auto v = parse_double(first);
      if (!v.ok()) return line_error(line_no, v.error().message);
      spec.tt_share = v.value();
    } else if (keyword == "inter_share") {
      auto v = parse_double(first);
      if (!v.ok()) return line_error(line_no, v.error().message);
      spec.inter_cluster_share = v.value();
    } else if (keyword == "deadline_factor") {
      auto v = parse_double(first);
      if (!v.ok()) return line_error(line_no, v.error().message);
      spec.deadline_factor = v.value();
    } else if (keyword == "seed") {
      auto v = parse_uint(first);
      if (!v.ok()) return line_error(line_no, v.error().message);
      spec.base_seed = v.value();
    } else if (keyword == "algorithms") {
      if (!algorithms_set) spec.algorithms.clear();
      algorithms_set = true;
      for (const std::string& v : values) spec.algorithms.push_back(v);
    } else if (keyword == "portfolio_members") {
      // Member tokens accept the CLI repetition syntax ("4xsa"); expansion
      // and validation happen in parse_portfolio_members so the spec file
      // and --members agree on spelling.
      std::string joined;
      for (const std::string& v : values) {
        if (!joined.empty()) joined += ",";
        joined += v;
      }
      auto members = parse_portfolio_members(joined);
      if (!members.ok()) return line_error(line_no, members.error().message);
      spec.portfolio_members = std::move(members).value();
    } else if (keyword == "budget") {
      auto v = parse_int(first);
      if (!v.ok()) return line_error(line_no, v.error().message);
      if (v.value() < 0) return line_error(line_no, "budget must be >= 0");
      spec.max_evaluations = v.value();
    } else if (keyword == "time_limit") {
      auto v = parse_double(first);
      if (!v.ok()) return line_error(line_no, v.error().message);
      if (v.value() < 0.0) return line_error(line_no, "time_limit must be >= 0");
      spec.max_wall_seconds = v.value();
    } else if (keyword == "exact_jobs") {
      auto v = parse_int32(first);
      if (!v.ok()) return line_error(line_no, v.error().message);
      if (v.value() < 0) return line_error(line_no, "exact_jobs must be >= 0 (0 = auto)");
      spec.exact_jobs = v.value();
    } else if (keyword == "sim_check") {
      if (first == "on" || first == "true" || first == "1") {
        spec.sim_check = true;
      } else if (first == "off" || first == "false" || first == "0") {
        spec.sim_check = false;
      } else {
        return line_error(line_no, "sim_check expects on/off, got '" + first + "'");
      }
    } else {
      return line_error(line_no, unknown_keyword_message(keyword));
    }
  }
  return spec;
}

Expected<CampaignSpec> parse_campaign_text(const std::string& text) {
  std::istringstream in(text);
  return parse_campaign(in);
}

}  // namespace flexopt
