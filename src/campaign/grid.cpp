#include "flexopt/campaign/campaign.hpp"

#include <cmath>

#include "flexopt/util/seed_mix.hpp"

namespace flexopt {

std::uint64_t scenario_seed(std::uint64_t base_seed, std::size_t index) {
  return derive_seed(base_seed, static_cast<std::uint64_t>(index));
}

Expected<std::vector<ScenarioPlan>> expand_grid(const CampaignSpec& spec) {
  if (spec.node_counts.empty()) return make_error("campaign: no node counts");
  if (spec.topologies.empty()) return make_error("campaign: no topologies");
  if (spec.cluster_counts.empty()) return make_error("campaign: no cluster counts");
  for (const int clusters : spec.cluster_counts) {
    if (clusters < 1 || clusters > 4) {
      return make_error("campaign: cluster counts must be in [1, 4]");
    }
  }
  if (spec.inter_cluster_share < 0.0 || spec.inter_cluster_share > 1.0 ||
      !std::isfinite(spec.inter_cluster_share)) {
    return make_error("campaign: inter_cluster_share must be in [0, 1]");
  }
  if (spec.backends.empty()) return make_error("campaign: no backends");
  for (const BackendMix backend : spec.backends) {
    if (backend == BackendMix::Flexray) continue;
    for (const Topology topology : spec.topologies) {
      if (topology != Topology::MultiCluster) {
        return make_error(std::string("campaign: backend '") + to_string(backend) +
                          "' requires every topology to be multicluster, but the grid sweeps '" +
                          to_string(topology) + "' (the single-bus families are FlexRay only)");
      }
    }
  }
  if (spec.analysis_modes.empty()) return make_error("campaign: no analysis modes");
  for (std::size_t i = 0; i < spec.analysis_modes.size(); ++i) {
    for (std::size_t j = i + 1; j < spec.analysis_modes.size(); ++j) {
      if (spec.analysis_modes[i] == spec.analysis_modes[j]) {
        return make_error(std::string("campaign: duplicate analysis mode '") +
                          to_string(spec.analysis_modes[i]) + "'");
      }
    }
  }
  if (spec.traffic_mixes.empty()) return make_error("campaign: no traffic mixes");
  if (spec.node_util_bands.empty()) return make_error("campaign: no node utilisation bands");
  if (spec.bus_util_bands.empty()) return make_error("campaign: no bus utilisation bands");
  if (spec.period_sets.empty()) return make_error("campaign: no period sets");
  if (spec.message_size_caps.empty()) return make_error("campaign: no message size caps");
  if (spec.replicates < 1) return make_error("campaign: replicates must be >= 1");
  if (spec.algorithms.empty()) return make_error("campaign: no algorithms");
  // Duplicate algorithm names would be solved redundantly while reports
  // match only the first run per record.
  for (std::size_t i = 0; i < spec.algorithms.size(); ++i) {
    for (std::size_t j = i + 1; j < spec.algorithms.size(); ++j) {
      if (spec.algorithms[i] == spec.algorithms[j]) {
        return make_error("campaign: duplicate algorithm '" + spec.algorithms[i] + "'");
      }
    }
  }
  for (const UtilBand& band : spec.node_util_bands) {
    if (!(band.lo > 0.0) || band.lo > band.hi) {
      return make_error("campaign: need 0 < node_util lo <= hi");
    }
  }
  for (const UtilBand& band : spec.bus_util_bands) {
    if (band.lo < 0.0 || band.lo > band.hi) {
      return make_error("campaign: need 0 <= bus_util lo <= hi");
    }
  }
  // Grid-uniform scalar knobs degenerate every cell at once, so they are
  // spec-level errors here, not N identical skip-and-record entries.
  // (Divisibility stays per cell: it depends on the node-count axis.)
  if (spec.tasks_per_node < 1) return make_error("campaign: tasks_per_node must be >= 1");
  if (spec.tasks_per_graph < 2) return make_error("campaign: tasks_per_graph must be >= 2");
  if (spec.tt_share < 0.0 || spec.tt_share > 1.0 || !std::isfinite(spec.tt_share)) {
    return make_error("campaign: tt_share must be in [0, 1]");
  }
  if (!(spec.deadline_factor > 0.0)) {
    return make_error("campaign: deadline_factor must be > 0");
  }

  std::vector<ScenarioPlan> plans;
  plans.reserve(spec.node_counts.size() * spec.topologies.size() *
                spec.cluster_counts.size() * spec.backends.size() *
                spec.analysis_modes.size() * spec.traffic_mixes.size() *
                spec.node_util_bands.size() * spec.bus_util_bands.size() *
                spec.period_sets.size() * spec.message_size_caps.size() *
                static_cast<std::size_t>(spec.replicates));

  // Fixed axis nesting (replicates innermost) keeps scenario indices — and
  // therefore seeds, records and summaries — stable for a given spec.  The
  // cluster, backend and analysis-mode axes default to one value, so
  // pre-cluster, pre-backend and pre-exact specs keep their exact index
  // sequence (and seeds).
  for (const int nodes : spec.node_counts) {
    for (const Topology topology : spec.topologies) {
      for (const int clusters : spec.cluster_counts) {
        for (const BackendMix backend : spec.backends) {
          for (const AnalysisMode analysis_mode : spec.analysis_modes) {
            for (const TrafficMix traffic : spec.traffic_mixes) {
              for (const UtilBand& node_util : spec.node_util_bands) {
                for (const UtilBand& bus_util : spec.bus_util_bands) {
                  for (const std::vector<Time>& periods : spec.period_sets) {
                    for (const int size_cap : spec.message_size_caps) {
                      for (int r = 0; r < spec.replicates; ++r) {
                        ScenarioPlan plan;
                        plan.index = plans.size();
                        plan.node_util = node_util;
                        plan.bus_util = bus_util;
                        plan.scenario.topology = topology;
                        plan.scenario.traffic = traffic;
                        plan.scenario.clusters = clusters;
                        plan.scenario.backend = backend;
                        plan.scenario.inter_cluster_share = spec.inter_cluster_share;
                        plan.analysis_mode = analysis_mode;
                        SyntheticSpec& base = plan.scenario.base;
                        base.nodes = nodes;
                        base.tasks_per_node = spec.tasks_per_node;
                        base.tasks_per_graph = spec.tasks_per_graph;
                        base.tt_share = spec.tt_share;
                        base.node_util_min = node_util.lo;
                        base.node_util_max = node_util.hi;
                        base.bus_util_min = bus_util.lo;
                        base.bus_util_max = bus_util.hi;
                        base.period_choices = periods;
                        base.deadline_factor = spec.deadline_factor;
                        base.max_message_bytes = size_cap;
                        base.seed = scenario_seed(spec.base_seed, plan.index);
                        plans.push_back(std::move(plan));
                      }
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return plans;
}

}  // namespace flexopt
