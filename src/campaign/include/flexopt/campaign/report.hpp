#pragma once

/// \file report.hpp
/// Deterministic serialization of campaign results: an aggregate JSON
/// summary (schedulable fractions, cost quantiles, evaluation counts,
/// per-node-count breakdowns, skipped scenarios) and a per-(scenario,
/// algorithm) CSV detail table.
///
/// Both writers emit identical bytes for identical records; wall-clock
/// fields — the only non-deterministic data a campaign records — are
/// included only when `include_timing` is set, so the default output can
/// be diffed across thread counts and machines.

#include <string>

#include "flexopt/campaign/campaign.hpp"

namespace flexopt {

/// Aggregates of one algorithm over a group of scenarios (overall or one
/// node-count bucket).  Computed by aggregate_runs; exposed so benches can
/// print their own tables from the same numbers the JSON reports.
struct AlgorithmAggregate {
  std::string algorithm;
  /// Scenarios this algorithm ran on (generated scenarios of the group).
  std::size_t scenarios = 0;
  std::size_t schedulable = 0;
  /// Scenarios with at least one analysable configuration (cost below
  /// kInvalidConfigCost); quantiles are over exactly these costs.
  std::size_t analysable = 0;
  double schedulable_fraction = 0.0;
  double cost_p10 = 0.0;
  double cost_p50 = 0.0;
  double cost_p90 = 0.0;
  double cost_mean = 0.0;
  long evaluations_total = 0;
  double evaluations_mean = 0.0;
  std::uint64_t cache_hits_total = 0;
  /// sim_check lane: winners replayed on the network simulator, how many
  /// broke the observed <= bound invariant, and the mean pessimism gap
  /// over the simulated winners.
  std::size_t simulated = 0;
  std::size_t sim_unsound = 0;
  double sim_gap_mean = 0.0;
  /// Exact lane: winners re-analysed on the schedule-space backend, how
  /// many had a cluster fall back to holistic bounds, the states explored,
  /// the activities strictly refined, and the mean/max holistic-vs-exact
  /// pessimism gap over the exact-analysed winners.
  std::size_t exact_ran = 0;
  std::size_t exact_fallbacks = 0;
  std::uint64_t exact_states_total = 0;
  std::size_t exact_refined_total = 0;
  double exact_gap_mean = 0.0;
  double exact_gap_max = 0.0;
  double wall_seconds_total = 0.0;  ///< timing output only
};

/// Aggregates `algorithm` over the generated scenarios of `result` whose
/// node count equals `nodes` (or all of them when `nodes` < 0).
[[nodiscard]] AlgorithmAggregate aggregate_runs(const CampaignResult& result,
                                                const std::string& algorithm, int nodes = -1);

/// Aggregates `algorithm` over the generated scenarios with backend `mix`
/// (the per-backend bucket of the `by_backend` JSON breakdown).
[[nodiscard]] AlgorithmAggregate aggregate_runs_backend(const CampaignResult& result,
                                                        const std::string& algorithm,
                                                        BackendMix mix);

/// Aggregates `algorithm` over the generated scenarios with analysis mode
/// `mode` (the per-mode bucket of the `by_mode` JSON breakdown).
[[nodiscard]] AlgorithmAggregate aggregate_runs_mode(const CampaignResult& result,
                                                     const std::string& algorithm,
                                                     AnalysisMode mode);

/// Aggregate JSON summary; stable key order, stable scenario order.
[[nodiscard]] std::string write_campaign_json(const CampaignResult& result,
                                              bool include_timing = false);

/// One CSV row per (scenario, algorithm) plus rows for skipped scenarios.
[[nodiscard]] std::string write_campaign_csv(const CampaignResult& result,
                                             bool include_timing = false);

}  // namespace flexopt
