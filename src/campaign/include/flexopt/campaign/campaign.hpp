#pragma once

/// \file campaign.hpp
/// The scenario campaign subsystem: a CampaignSpec describes a sweep grid
/// over the generator family of flexopt/gen/scenario.hpp (node counts x
/// topologies x traffic mixes x utilisation bands x period sets x payload
/// caps x replicates), expand_grid() unrolls it into per-scenario plans
/// with derived seeds, and CampaignRunner fans the scenarios across a
/// worker pool, solving each with every requested registry algorithm.
///
/// Determinism contract: with no wall-clock budget, the records (and the
/// JSON/CSV summaries in flexopt/campaign/report.hpp) are byte-identical
/// for any worker-thread count — each scenario is generated from a seed
/// derived only from (base_seed, scenario index) and solved on its own
/// single-threaded evaluator, so campaign-level parallelism never leaks
/// into per-scenario results.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "flexopt/analysis/analysis_mode.hpp"
#include "flexopt/core/solver.hpp"
#include "flexopt/gen/scenario.hpp"

namespace flexopt {

/// Closed utilisation interval the generator draws targets from.
struct UtilBand {
  double lo = 0.0;
  double hi = 0.0;
  friend bool operator==(const UtilBand& a, const UtilBand& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

/// A full sweep description.  Vectors are grid axes (the cartesian product
/// is swept, innermost axis last = replicates); scalars are shared by every
/// scenario.
struct CampaignSpec {
  std::string name = "campaign";

  // --- grid axes ---------------------------------------------------------
  std::vector<int> node_counts{3};
  std::vector<Topology> topologies{Topology::RandomDag};
  /// Cluster counts for Topology::MultiCluster cells (the other families
  /// are single-bus and ignore the value).  Values are validated to [1, 4];
  /// the multicluster generator itself requires 2..4.
  std::vector<int> cluster_counts{2};
  /// Backend-mix axis for Topology::MultiCluster cells (see
  /// backend_for_cluster).  Any non-flexray value requires every topology
  /// in the grid to be multicluster; the default single value keeps
  /// pre-backend specs' scenario indices (and seeds) unchanged.
  std::vector<BackendMix> backends{BackendMix::Flexray};
  /// Analysis-backend axis: which backend produces every evaluator bound of
  /// the cell (holistic | exact | simulate; see flexopt/analysis/
  /// analysis_mode.hpp).  `simulate` solves holistically and forces the
  /// sim_check lane for its scenarios; `exact` additionally records the
  /// holistic-vs-exact pessimism of every winner.  The default single value
  /// keeps pre-axis specs' scenario indices (and seeds) unchanged.
  std::vector<AnalysisMode> analysis_modes{AnalysisMode::Holistic};
  std::vector<TrafficMix> traffic_mixes{TrafficMix::Mixed};
  std::vector<UtilBand> node_util_bands{{0.25, 0.45}};
  std::vector<UtilBand> bus_util_bands{{0.10, 0.40}};
  /// Each entry is one axis value: the period_choices set handed to the
  /// generator.
  std::vector<std::vector<Time>> period_sets{
      {timeunits::ms(20), timeunits::ms(40), timeunits::ms(80)}};
  std::vector<int> message_size_caps{32};
  /// Scenarios per grid cell (distinct derived seeds).
  int replicates = 1;

  // --- shared scenario shape --------------------------------------------
  int tasks_per_node = 10;
  int tasks_per_graph = 5;
  /// TT share for TrafficMix::Mixed cells (St/DynOnly override it).
  double tt_share = 0.5;
  /// Share of graphs that cross clusters in MultiCluster cells.
  double inter_cluster_share = 0.25;
  double deadline_factor = 1.0;
  std::uint64_t base_seed = 1;

  // --- solving -----------------------------------------------------------
  /// OptimizerRegistry names, each run on every scenario (default params).
  /// "portfolio" composes the members below.
  std::vector<std::string> algorithms{"obc-cf"};
  /// Member list for "portfolio" runs (empty = PortfolioSpec's default).
  /// The member-level worker budget comes from CampaignOptions::threads:
  /// the runner splits it between scenario-level and member-level
  /// parallelism so a campaign never oversubscribes the machine.
  std::vector<std::string> portfolio_members;
  /// Per-solve budgets (0 = unlimited).  A wall-clock budget trades the
  /// determinism contract for bounded runtime.
  long max_evaluations = 0;
  double max_wall_seconds = 0.0;
  /// Re-simulate every analysable winner on the discrete-event network
  /// simulator (flexopt/netsim) for one hyper-period and record the
  /// observed-vs-bound verdict and pessimism gap per run.
  bool sim_check = false;
  /// Worker threads per exact schedule-space exploration when an `exact`
  /// analysis-mode cell runs (ExactOptions::jobs; 0 = hardware).  Results
  /// are bit-identical for any value, so this never perturbs the campaign
  /// determinism contract.
  int exact_jobs = 1;
};

/// One expanded grid cell instance: the fully resolved generator spec plus
/// the axis values echoed for grouping/reporting.
struct ScenarioPlan {
  std::size_t index = 0;
  ScenarioSpec scenario;
  UtilBand node_util;
  UtilBand bus_util;
  AnalysisMode analysis_mode = AnalysisMode::Holistic;
};

/// Deterministic scenario seed for `index` under `base_seed` (splitmix64;
/// exposed so tests and external tooling can reproduce single scenarios).
[[nodiscard]] std::uint64_t scenario_seed(std::uint64_t base_seed, std::size_t index);

/// Validates the spec (non-empty axes, replicates >= 1, band ordering) and
/// unrolls the grid in a fixed axis order.  Generator-level validation
/// (divisibility, period positivity) happens per scenario at run time so a
/// partially degenerate grid is skipped-and-recorded, not rejected.
[[nodiscard]] Expected<std::vector<ScenarioPlan>> expand_grid(const CampaignSpec& spec);

/// Result of one algorithm on one scenario.
struct AlgorithmRun {
  std::string algorithm;
  bool feasible = false;
  /// Eq. 5 cost (kInvalidConfigCost when no analysable configuration).
  double cost = kInvalidConfigCost;
  long evaluations = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  SolveStatus status = SolveStatus::Complete;
  /// Winning member id of a "portfolio" run ("sa#2"); empty otherwise.
  std::string portfolio_winner;
  /// CampaignSpec::sim_check results: true when the winning configuration
  /// was re-simulated on the network simulator (analysable winners only).
  bool simulated = false;
  /// Observed <= bound for every simulated activity (vacuously true when
  /// not simulated).
  bool sim_sound = true;
  /// Mean pessimism gap (bound - observed) / bound over the simulated
  /// activities with finite bounds; 0 when not simulated.
  double sim_gap = 0.0;
  /// Analysis backend this run solved with (the plan's analysis_mode).
  AnalysisMode analysis_mode = AnalysisMode::Holistic;
  /// AnalysisMode::Exact lane: true when the winner's holistic-vs-exact
  /// pessimism was computed (analysable winners of exact cells only).
  bool exact_ran = false;
  /// True when any cluster of the exact run fell back to holistic bounds
  /// (budget exceeded, unsupported backend, ... — recorded, never silent).
  bool exact_fallback = false;
  /// Schedule-space states explored across clusters.
  std::uint64_t exact_states = 0;
  /// ET activities whose exact bound is strictly below the holistic one.
  std::size_t exact_refined = 0;
  /// Mean / max relative gap (holistic - exact) / holistic over the
  /// winner's ET activities with finite holistic bounds; 0 when !exact_ran.
  double exact_gap_mean = 0.0;
  double exact_gap_max = 0.0;
  /// Wall-clock of this solve; non-deterministic, excluded from summaries
  /// unless timing output is requested.
  double wall_seconds = 0.0;
};

/// Everything recorded about one scenario of the campaign.
struct ScenarioRecord {
  ScenarioPlan plan;
  /// False when generation failed; `error` says why and `runs` is empty
  /// (the campaign skips-and-records degenerate scenarios, it never
  /// aborts on them).
  bool generated = false;
  std::string error;
  std::size_t task_count = 0;
  std::size_t message_count = 0;
  std::size_t graph_count = 0;
  /// FlexRay clusters of the generated system (1 for single-bus families).
  std::size_t cluster_count = 1;
  /// Realised (post-scaling) bus utilisation of the generated system.
  double bus_util_realized = 0.0;
  std::vector<AlgorithmRun> runs;
};

struct CampaignResult {
  CampaignSpec spec;
  BusParams params;
  /// One record per plan, in plan (grid) order.
  std::vector<ScenarioRecord> scenarios;
  /// Whole-campaign wall-clock (non-deterministic; timing output only).
  double wall_seconds = 0.0;
};

struct CampaignOptions {
  /// Scenario-level worker threads; 0 = hardware concurrency.  Does not
  /// affect results (see the determinism contract above).
  int threads = 0;
  /// Called after each finished scenario (from worker threads, serialized
  /// internally).
  std::function<void(std::size_t done, std::size_t total)> progress;
};

/// Expands the grid and runs every (scenario, algorithm) pair.  Errors only
/// on spec-level problems (empty axes, unknown algorithm names); per
/// scenario failures are recorded in the result.
class CampaignRunner {
 public:
  CampaignRunner(CampaignSpec spec, BusParams params)
      : spec_(std::move(spec)), params_(params) {}

  [[nodiscard]] Expected<CampaignResult> run(const CampaignOptions& options = {});

 private:
  CampaignSpec spec_;
  BusParams params_;
};

}  // namespace flexopt
