#pragma once

/// \file spec_format.hpp
/// Line-based campaign spec files, so sweeps can be described without
/// writing C++.  `#` starts a comment; each line is a keyword followed by
/// whitespace-separated values.  List keywords define a grid axis and may
/// name several values; repeating `periods` adds another period-set axis
/// value.
///
///   name <identifier>
///   nodes <int>...                      # axis
///   topology <random-dag|pipeline|fan-in-out|gateway>...   # axis
///   traffic <mixed|st-only|dyn-only>...                    # axis
///   node_util <lo:hi>...                # axis, e.g. 0.25:0.45
///   bus_util <lo:hi>...                 # axis
///   periods <dur>...                    # axis value (repeatable), e.g. 20ms 40ms
///   message_bytes <int>...              # axis
///   replicates <int>
///   tasks_per_node <int>
///   tasks_per_graph <int>
///   tt_share <float>
///   deadline_factor <float>
///   seed <uint64>
///   algorithms <registry-name>...
///   portfolio_members <member>...      # e.g. 4xsa obc-ee (for "portfolio")
///   budget <max-evaluations-per-solve>
///   time_limit <seconds-per-solve>
///
/// Durations accept the ns/us/ms/s suffixes of the system format.  Axis
/// keywords replace the default axis on first use.

#include <iosfwd>
#include <string>

#include "flexopt/campaign/campaign.hpp"

namespace flexopt {

/// Parses a campaign spec; errors carry the line number.
[[nodiscard]] Expected<CampaignSpec> parse_campaign(std::istream& in);

/// Convenience overload over a string.
[[nodiscard]] Expected<CampaignSpec> parse_campaign_text(const std::string& text);

}  // namespace flexopt
