#include "flexopt/campaign/report.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

#include "flexopt/io/json_writer.hpp"
#include "flexopt/math/stats.hpp"

namespace flexopt {
namespace {

const AlgorithmRun* find_run(const ScenarioRecord& record, const std::string& algorithm) {
  for (const AlgorithmRun& run : record.runs) {
    if (run.algorithm == algorithm) return &run;
  }
  return nullptr;
}

/// Node counts present in the grid, ascending (the by-nodes breakdown axis).
std::vector<int> node_axis(const CampaignResult& result) {
  std::set<int> counts;
  for (const ScenarioRecord& record : result.scenarios) {
    counts.insert(record.plan.scenario.base.nodes);
  }
  return {counts.begin(), counts.end()};
}

/// True when the analysis-mode axis departs from the pure-default single
/// holistic value; gates the exact aggregate fields and the by_mode
/// breakdown so pre-exact campaigns keep their output bytes.
bool mode_axis_swept(const CampaignResult& result) {
  return result.spec.analysis_modes.size() > 1 ||
         (result.spec.analysis_modes.size() == 1 &&
          result.spec.analysis_modes[0] != AnalysisMode::Holistic);
}

void write_aggregate_fields(JsonWriter& json, const AlgorithmAggregate& agg,
                            bool include_timing, bool include_exact) {
  json.field("scenarios", agg.scenarios);
  json.field("schedulable", agg.schedulable);
  json.field("schedulable_fraction", agg.schedulable_fraction);
  json.field("analysable", agg.analysable);
  json.field("cost_p10", agg.cost_p10);
  json.field("cost_p50", agg.cost_p50);
  json.field("cost_p90", agg.cost_p90);
  json.field("cost_mean", agg.cost_mean);
  json.field("evaluations_total", agg.evaluations_total);
  json.field("evaluations_mean", agg.evaluations_mean);
  json.field("cache_hits_total", agg.cache_hits_total);
  json.field("simulated", agg.simulated);
  json.field("sim_unsound", agg.sim_unsound);
  json.field("sim_gap_mean", agg.sim_gap_mean);
  if (include_exact) {
    json.field("exact_ran", agg.exact_ran);
    json.field("exact_fallbacks", agg.exact_fallbacks);
    json.field("exact_states_total", agg.exact_states_total);
    json.field("exact_refined_total", agg.exact_refined_total);
    json.field("exact_gap_mean", agg.exact_gap_mean);
    json.field("exact_gap_max", agg.exact_gap_max);
  }
  if (include_timing) json.field("wall_seconds_total", agg.wall_seconds_total);
}

}  // namespace

namespace {

/// Shared aggregation core: `keep` selects the scenario bucket.
template <typename Filter>
AlgorithmAggregate aggregate_filtered(const CampaignResult& result,
                                      const std::string& algorithm, Filter keep) {
  AlgorithmAggregate agg;
  agg.algorithm = algorithm;
  std::vector<double> costs;
  for (const ScenarioRecord& record : result.scenarios) {
    if (!record.generated) continue;
    if (!keep(record)) continue;
    const AlgorithmRun* run = find_run(record, algorithm);
    if (run == nullptr) continue;
    ++agg.scenarios;
    if (run->feasible) ++agg.schedulable;
    if (run->cost < kInvalidConfigCost) {
      ++agg.analysable;
      costs.push_back(run->cost);
    }
    agg.evaluations_total += run->evaluations;
    agg.cache_hits_total += run->cache_hits;
    if (run->simulated) {
      ++agg.simulated;
      if (!run->sim_sound) ++agg.sim_unsound;
      agg.sim_gap_mean += run->sim_gap;
    }
    if (run->exact_ran) {
      ++agg.exact_ran;
      if (run->exact_fallback) ++agg.exact_fallbacks;
      agg.exact_states_total += run->exact_states;
      agg.exact_refined_total += run->exact_refined;
      agg.exact_gap_mean += run->exact_gap_mean;
      agg.exact_gap_max = std::max(agg.exact_gap_max, run->exact_gap_max);
    }
    agg.wall_seconds_total += run->wall_seconds;
  }
  if (agg.simulated > 0) agg.sim_gap_mean /= static_cast<double>(agg.simulated);
  if (agg.exact_ran > 0) agg.exact_gap_mean /= static_cast<double>(agg.exact_ran);
  if (agg.scenarios > 0) {
    agg.schedulable_fraction =
        static_cast<double>(agg.schedulable) / static_cast<double>(agg.scenarios);
    agg.evaluations_mean =
        static_cast<double>(agg.evaluations_total) / static_cast<double>(agg.scenarios);
  }
  if (!costs.empty()) {
    std::sort(costs.begin(), costs.end());
    agg.cost_p10 = percentile_sorted(costs, 10.0);
    agg.cost_p50 = percentile_sorted(costs, 50.0);
    agg.cost_p90 = percentile_sorted(costs, 90.0);
    agg.cost_mean = summarize(costs).mean;
  }
  return agg;
}

}  // namespace

AlgorithmAggregate aggregate_runs(const CampaignResult& result, const std::string& algorithm,
                                  int nodes) {
  return aggregate_filtered(result, algorithm, [nodes](const ScenarioRecord& record) {
    return nodes < 0 || record.plan.scenario.base.nodes == nodes;
  });
}

AlgorithmAggregate aggregate_runs_backend(const CampaignResult& result,
                                          const std::string& algorithm, BackendMix mix) {
  return aggregate_filtered(result, algorithm, [mix](const ScenarioRecord& record) {
    return record.plan.scenario.backend == mix;
  });
}

AlgorithmAggregate aggregate_runs_mode(const CampaignResult& result,
                                       const std::string& algorithm, AnalysisMode mode) {
  return aggregate_filtered(result, algorithm, [mode](const ScenarioRecord& record) {
    return record.plan.analysis_mode == mode;
  });
}

std::string write_campaign_json(const CampaignResult& result, bool include_timing) {
  std::size_t generated = 0;
  for (const ScenarioRecord& record : result.scenarios) {
    if (record.generated) ++generated;
  }
  const std::vector<int> nodes_axis = node_axis(result);

  JsonWriter json;
  json.begin_object();
  json.field("campaign", result.spec.name);
  json.field("scenario_count", result.scenarios.size());
  json.field("generated", generated);
  json.field("skipped", result.scenarios.size() - generated);
  json.field("replicates", result.spec.replicates);
  json.field("base_seed", result.spec.base_seed);
  json.field("max_evaluations", result.spec.max_evaluations);
  if (include_timing) json.field("wall_seconds", result.wall_seconds);

  const bool include_exact = mode_axis_swept(result);
  json.key("algorithms").begin_array();
  for (const std::string& name : result.spec.algorithms) {
    json.begin_object();
    json.field("name", name);
    write_aggregate_fields(json, aggregate_runs(result, name), include_timing, include_exact);
    json.key("by_nodes").begin_array();
    for (const int nodes : nodes_axis) {
      const AlgorithmAggregate agg = aggregate_runs(result, name, nodes);
      if (agg.scenarios == 0) continue;
      json.begin_object();
      json.field("nodes", nodes);
      write_aggregate_fields(json, agg, include_timing, include_exact);
      json.end_object();
    }
    json.end_array();
    // Backend breakdown only when the axis was actually swept — pure-default
    // (single FlexRay value) campaigns keep their pre-backend output bytes.
    if (result.spec.backends.size() > 1 ||
        (result.spec.backends.size() == 1 && result.spec.backends[0] != BackendMix::Flexray)) {
      json.key("by_backend").begin_array();
      for (const BackendMix mix : result.spec.backends) {
        const AlgorithmAggregate agg = aggregate_runs_backend(result, name, mix);
        if (agg.scenarios == 0) continue;
        json.begin_object();
        json.field("backend", to_string(mix));
        write_aggregate_fields(json, agg, include_timing, include_exact);
        json.end_object();
      }
      json.end_array();
    }
    // Analysis-mode breakdown, gated exactly like by_backend.
    if (include_exact) {
      json.key("by_mode").begin_array();
      for (const AnalysisMode mode : result.spec.analysis_modes) {
        const AlgorithmAggregate agg = aggregate_runs_mode(result, name, mode);
        if (agg.scenarios == 0) continue;
        json.begin_object();
        json.field("mode", to_string(mode));
        write_aggregate_fields(json, agg, include_timing, include_exact);
        json.end_object();
      }
      json.end_array();
    }
    json.end_object();
  }
  json.end_array();

  json.key("skipped_scenarios").begin_array();
  for (const ScenarioRecord& record : result.scenarios) {
    if (record.generated) continue;
    json.begin_object();
    json.field("index", record.plan.index);
    json.field("nodes", record.plan.scenario.base.nodes);
    json.field("topology", to_string(record.plan.scenario.topology));
    json.field("clusters", record.plan.scenario.topology == Topology::MultiCluster
                               ? record.plan.scenario.clusters
                               : 1);
    json.field("backend", to_string(record.plan.scenario.backend));
    json.field("traffic", to_string(record.plan.scenario.traffic));
    json.field("seed", record.plan.scenario.base.seed);
    json.field("error", record.error);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

namespace {

/// Emits one CSV detail row field by field.  Every row — real runs and
/// generation-error fallbacks alike — goes through here, so a column added
/// to the format is added exactly once (the old fallback path was a
/// hard-coded literal that silently drifted out of sync with the header
/// whenever a column was added).  `generated` selects the failure shape:
/// empty cost and the "generation-error" status.
void write_csv_row(std::ostream& out, const std::string& prefix, const ScenarioRecord& record,
                   const AlgorithmRun& run, bool generated, bool include_timing) {
  out << prefix << ',' << record.task_count << ',' << record.message_count << ','
      << record.graph_count << ',' << json_double(record.bus_util_realized) << ','
      << run.algorithm << ',' << (run.feasible ? 1 : 0) << ',';
  if (generated) out << json_double(run.cost);
  out << ',' << run.evaluations << ','
      << (generated ? to_string(run.status) : "generation-error") << ',' << run.cache_hits
      << ',' << run.cache_misses << ',' << run.portfolio_winner << ','
      << (run.simulated ? 1 : 0) << ',';
  // A never-simulated run has no soundness verdict: the column stays
  // empty, not the vacuous 1 the old fallback literal emitted.
  if (run.simulated) out << (run.sim_sound ? 1 : 0);
  out << ',' << json_double(run.sim_gap) << ',' << to_string(run.analysis_mode) << ','
      << (run.exact_ran ? 1 : 0) << ',' << (run.exact_fallback ? 1 : 0) << ','
      << run.exact_states << ',' << run.exact_refined << ','
      << json_double(run.exact_gap_mean) << ',' << json_double(run.exact_gap_max);
  if (include_timing) out << ',' << json_double(run.wall_seconds);
  out << "\n";
}

}  // namespace

std::string write_campaign_csv(const CampaignResult& result, bool include_timing) {
  std::ostringstream out;
  out << "scenario,seed,nodes,topology,clusters,backend,traffic,node_util_lo,node_util_hi,"
         "bus_util_lo,"
         "bus_util_hi,tasks,messages,graphs,bus_util_realized,algorithm,feasible,cost,"
         "evaluations,status,cache_hits,cache_misses,winner,simulated,sim_sound,sim_gap,"
         "analysis_mode,exact_ran,exact_fallback,exact_states,exact_refined,exact_gap_mean,"
         "exact_gap_max";
  if (include_timing) out << ",wall_seconds";
  out << "\n";
  for (const ScenarioRecord& record : result.scenarios) {
    const ScenarioPlan& plan = record.plan;
    std::ostringstream prefix;
    prefix << plan.index << ',' << plan.scenario.base.seed << ',' << plan.scenario.base.nodes
           << ',' << to_string(plan.scenario.topology) << ','
           << (plan.scenario.topology == Topology::MultiCluster ? plan.scenario.clusters : 1)
           << ',' << to_string(plan.scenario.backend) << ','
           << to_string(plan.scenario.traffic) << ',' << json_double(plan.node_util.lo)
           << ','
           << json_double(plan.node_util.hi) << ',' << json_double(plan.bus_util.lo) << ','
           << json_double(plan.bus_util.hi);
    if (!record.generated) {
      AlgorithmRun none;
      none.algorithm = "-";
      none.evaluations = 0;
      none.analysis_mode = plan.analysis_mode;
      write_csv_row(out, prefix.str(), record, none, /*generated=*/false, include_timing);
      continue;
    }
    for (const AlgorithmRun& run : record.runs) {
      write_csv_row(out, prefix.str(), record, run, /*generated=*/true, include_timing);
    }
  }
  return out.str();
}

}  // namespace flexopt
