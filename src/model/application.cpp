#include "flexopt/model/application.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "flexopt/math/hyperperiod.hpp"

namespace flexopt {

NodeId Application::add_node(std::string name) {
  nodes_.push_back(ProcessingNode{std::move(name)});
  return static_cast<NodeId>(nodes_.size() - 1);
}

GraphId Application::add_graph(std::string name, Time period, Time deadline) {
  graphs_.push_back(TaskGraph{std::move(name), period, deadline});
  return static_cast<GraphId>(graphs_.size() - 1);
}

TaskId Application::add_task(GraphId graph, std::string name, NodeId node, Time wcet,
                             TaskPolicy policy, int priority) {
  Task t;
  t.name = std::move(name);
  t.graph = graph;
  t.node = node;
  t.wcet = wcet;
  t.policy = policy;
  t.priority = priority;
  tasks_.push_back(std::move(t));
  finalized_ = false;
  return static_cast<TaskId>(tasks_.size() - 1);
}

MessageId Application::add_message(GraphId graph, std::string name, TaskId sender,
                                   TaskId receiver, int size_bytes, MessageClass cls,
                                   int priority) {
  Message m;
  m.name = std::move(name);
  m.graph = graph;
  m.sender = sender;
  m.receiver = receiver;
  m.size_bytes = size_bytes;
  m.cls = cls;
  m.priority = priority;
  messages_.push_back(std::move(m));
  finalized_ = false;
  return static_cast<MessageId>(messages_.size() - 1);
}

void Application::add_dependency(TaskId from, TaskId to) {
  task_deps_.emplace_back(from, to);
  finalized_ = false;
}

void Application::set_task_deadline(TaskId task, Time deadline) {
  tasks_[index_of(task)].deadline = deadline;
}

void Application::set_message_deadline(MessageId message, Time deadline) {
  messages_[index_of(message)].deadline = deadline;
}

void Application::set_task_release_offset(TaskId task, Time offset) {
  tasks_[index_of(task)].release_offset = offset;
}

void Application::set_task_wcet(TaskId task, Time wcet) { tasks_[index_of(task)].wcet = wcet; }

void Application::set_message_size(MessageId message, int size_bytes) {
  messages_[index_of(message)].size_bytes = size_bytes;
}

void Application::set_graph_deadline(GraphId graph, Time deadline) {
  graphs_[index_of(graph)].deadline = deadline;
}

Expected<bool> Application::finalize() {
  if (nodes_.empty()) return make_error("application has no processing nodes");
  if (tasks_.empty()) return make_error("application has no tasks");

  // Basic element validation.
  for (const auto& g : graphs_) {
    if (g.period <= 0) return make_error("graph '" + g.name + "' has non-positive period");
    if (g.deadline <= 0) return make_error("graph '" + g.name + "' has non-positive deadline");
  }
  for (const auto& t : tasks_) {
    if (t.wcet <= 0) return make_error("task '" + t.name + "' has non-positive WCET");
    if (t.release_offset < 0) {
      return make_error("task '" + t.name + "' has negative release offset");
    }
    if (index_of(t.node) >= nodes_.size()) {
      return make_error("task '" + t.name + "' mapped to unknown node");
    }
    if (index_of(t.graph) >= graphs_.size()) {
      return make_error("task '" + t.name + "' in unknown graph");
    }
  }
  for (const auto& m : messages_) {
    if (m.size_bytes <= 0) return make_error("message '" + m.name + "' has non-positive size");
    if (index_of(m.sender) >= tasks_.size() || index_of(m.receiver) >= tasks_.size()) {
      return make_error("message '" + m.name + "' references unknown task");
    }
    const Task& snd = tasks_[index_of(m.sender)];
    const Task& rcv = tasks_[index_of(m.receiver)];
    if (snd.node == rcv.node) {
      return make_error("message '" + m.name + "' connects tasks on the same node " +
                        "(intra-node comms are part of the WCET)");
    }
    if (snd.graph != m.graph || rcv.graph != m.graph) {
      return make_error("message '" + m.name + "' crosses task graphs");
    }
    if (m.cls == MessageClass::Static && snd.policy != TaskPolicy::Scs) {
      return make_error("ST message '" + m.name + "' must be produced by an SCS task " +
                        "(its slot is fixed in the schedule table)");
    }
  }
  for (const auto& [from, to] : task_deps_) {
    if (index_of(from) >= tasks_.size() || index_of(to) >= tasks_.size()) {
      return make_error("dependency references unknown task");
    }
    if (tasks_[index_of(from)].graph != tasks_[index_of(to)].graph) {
      return make_error("dependency crosses task graphs");
    }
  }

  // Build adjacency over activities.
  const std::size_t n = activity_count();
  preds_.assign(n, {});
  succs_.assign(n, {});
  auto link = [&](ActivityRef from, ActivityRef to) {
    succs_[activity_slot(from)].push_back(to);
    preds_[activity_slot(to)].push_back(from);
  };
  for (std::uint32_t i = 0; i < messages_.size(); ++i) {
    const auto mref = ActivityRef::message(static_cast<MessageId>(i));
    link(ActivityRef::task(messages_[i].sender), mref);
    link(mref, ActivityRef::task(messages_[i].receiver));
  }
  for (const auto& [from, to] : task_deps_) {
    link(ActivityRef::task(from), ActivityRef::task(to));
  }

  // SCS tasks may only depend on time-triggered activities: a table-driven
  // start time cannot honour an event-triggered arrival.
  for (std::uint32_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].policy != TaskPolicy::Scs) continue;
    for (const ActivityRef p : preds_[activity_slot(ActivityRef::task(static_cast<TaskId>(i)))]) {
      const bool tt = p.is_task() ? tasks_[p.index].policy == TaskPolicy::Scs
                                  : messages_[p.index].cls == MessageClass::Static;
      if (!tt) {
        return make_error("SCS task '" + tasks_[i].name +
                          "' depends on an event-triggered activity");
      }
    }
  }

  // Kahn topological sort; also detects cycles.
  std::vector<std::size_t> indegree(n);
  for (std::size_t a = 0; a < n; ++a) indegree[a] = preds_[a].size();
  auto ref_of_slot = [&](std::size_t slot) {
    return slot < tasks_.size()
               ? ActivityRef::task(static_cast<TaskId>(slot))
               : ActivityRef::message(static_cast<MessageId>(slot - tasks_.size()));
  };
  std::queue<std::size_t> ready;
  for (std::size_t a = 0; a < n; ++a) {
    if (indegree[a] == 0) ready.push(a);
  }
  topo_order_.clear();
  topo_order_.reserve(n);
  while (!ready.empty()) {
    const std::size_t slot = ready.front();
    ready.pop();
    topo_order_.push_back(ref_of_slot(slot));
    for (const ActivityRef s : succs_[slot]) {
      if (--indegree[activity_slot(s)] == 0) ready.push(activity_slot(s));
    }
  }
  if (topo_order_.size() != n) return make_error("precedence constraints contain a cycle");

  finalized_ = true;
  return true;
}

void Application::require_finalized() const {
  if (!finalized_) throw std::logic_error("Application must be finalized before analysis queries");
}

const std::vector<ActivityRef>& Application::predecessors(ActivityRef a) const {
  require_finalized();
  return preds_[activity_slot(a)];
}

const std::vector<ActivityRef>& Application::successors(ActivityRef a) const {
  require_finalized();
  return succs_[activity_slot(a)];
}

const std::vector<ActivityRef>& Application::topological_order() const {
  require_finalized();
  return topo_order_;
}

GraphId Application::graph_of(ActivityRef a) const {
  return a.is_task() ? tasks_[a.index].graph : messages_[a.index].graph;
}

Time Application::model_cost(ActivityRef a) const {
  return a.is_task() ? tasks_[a.index].wcet : 0;
}

Time Application::effective_deadline(ActivityRef a) const {
  const Time individual = a.is_task() ? tasks_[a.index].deadline : messages_[a.index].deadline;
  if (individual != kTimeNone) return individual;
  return graphs_[index_of(graph_of(a))].deadline;
}

const std::string& Application::activity_name(ActivityRef a) const {
  return a.is_task() ? tasks_[a.index].name : messages_[a.index].name;
}

Time Application::period_of(ActivityRef a) const {
  return graphs_[index_of(graph_of(a))].period;
}

Expected<Time> Application::hyperperiod() const {
  std::vector<std::int64_t> periods;
  periods.reserve(graphs_.size());
  for (const auto& g : graphs_) periods.push_back(g.period);
  return flexopt::hyperperiod(periods);
}

Time Application::longest_path_to(ActivityRef a, std::span<const Time> message_costs) const {
  require_finalized();
  std::vector<Time> lp(activity_count(), 0);
  auto cost_of = [&](ActivityRef r) {
    if (r.is_task()) return tasks_[r.index].wcet;
    return r.index < message_costs.size() ? message_costs[r.index] : Time{0};
  };
  for (const ActivityRef r : topo_order_) {
    Time best_pred = 0;
    for (const ActivityRef p : preds_[activity_slot(r)]) {
      best_pred = std::max(best_pred, lp[activity_slot(p)]);
    }
    lp[activity_slot(r)] = best_pred + cost_of(r);
  }
  return lp[activity_slot(a)];
}

Time Application::criticality(MessageId m, std::span<const Time> message_costs) const {
  const auto mref = ActivityRef::message(m);
  return effective_deadline(mref) - longest_path_to(mref, message_costs);
}

double Application::node_utilization(NodeId node) const {
  double u = 0.0;
  for (const auto& t : tasks_) {
    if (t.node != node) continue;
    u += static_cast<double>(t.wcet) / static_cast<double>(graphs_[index_of(t.graph)].period);
  }
  return u;
}

}  // namespace flexopt
