#include "flexopt/model/application.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "flexopt/math/hyperperiod.hpp"

namespace flexopt {

bool ProcessingNode::in_cluster(ClusterId c) const {
  if (cluster == c) return true;
  return std::find(bridges.begin(), bridges.end(), c) != bridges.end();
}

NodeId Application::add_node(std::string name) {
  ProcessingNode node;
  node.name = std::move(name);
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Application::set_node_cluster(NodeId node, ClusterId cluster) {
  nodes_[index_of(node)].cluster = cluster;
  finalized_ = false;
}

void Application::add_gateway(NodeId node, std::vector<ClusterId> bridges) {
  nodes_[index_of(node)].bridges = std::move(bridges);
  finalized_ = false;
}

void Application::set_cluster_backend(ClusterId cluster, ClusterBackendKind kind) {
  const std::size_t c = index_of(cluster);
  if (cluster_backends_.size() <= c) {
    cluster_backends_.resize(c + 1, ClusterBackendKind::FlexRay);
  }
  cluster_backends_[c] = kind;
  finalized_ = false;
}

GraphId Application::add_graph(std::string name, Time period, Time deadline) {
  graphs_.push_back(TaskGraph{std::move(name), period, deadline});
  return static_cast<GraphId>(graphs_.size() - 1);
}

TaskId Application::add_task(GraphId graph, std::string name, NodeId node, Time wcet,
                             TaskPolicy policy, int priority) {
  Task t;
  t.name = std::move(name);
  t.graph = graph;
  t.node = node;
  t.wcet = wcet;
  t.policy = policy;
  t.priority = priority;
  tasks_.push_back(std::move(t));
  finalized_ = false;
  return static_cast<TaskId>(tasks_.size() - 1);
}

MessageId Application::add_message(GraphId graph, std::string name, TaskId sender,
                                   TaskId receiver, int size_bytes, MessageClass cls,
                                   int priority) {
  Message m;
  m.name = std::move(name);
  m.graph = graph;
  m.sender = sender;
  m.receiver = receiver;
  m.size_bytes = size_bytes;
  m.cls = cls;
  m.priority = priority;
  messages_.push_back(std::move(m));
  finalized_ = false;
  return static_cast<MessageId>(messages_.size() - 1);
}

void Application::add_dependency(TaskId from, TaskId to) {
  task_deps_.emplace_back(from, to);
  finalized_ = false;
}

void Application::set_task_deadline(TaskId task, Time deadline) {
  tasks_[index_of(task)].deadline = deadline;
}

void Application::set_message_deadline(MessageId message, Time deadline) {
  messages_[index_of(message)].deadline = deadline;
}

void Application::set_task_release_offset(TaskId task, Time offset) {
  tasks_[index_of(task)].release_offset = offset;
}

void Application::set_task_wcet(TaskId task, Time wcet) { tasks_[index_of(task)].wcet = wcet; }

void Application::set_message_size(MessageId message, int size_bytes) {
  messages_[index_of(message)].size_bytes = size_bytes;
}

void Application::set_graph_deadline(GraphId graph, Time deadline) {
  graphs_[index_of(graph)].deadline = deadline;
}

Expected<bool> Application::finalize() {
  if (nodes_.empty()) return make_error("application has no processing nodes");
  if (tasks_.empty()) return make_error("application has no tasks");

  // Basic element validation.
  for (const auto& g : graphs_) {
    if (g.period <= 0) return make_error("graph '" + g.name + "' has non-positive period");
    if (g.deadline <= 0) return make_error("graph '" + g.name + "' has non-positive deadline");
  }
  for (const auto& t : tasks_) {
    if (t.wcet <= 0) return make_error("task '" + t.name + "' has non-positive WCET");
    if (t.release_offset < 0) {
      return make_error("task '" + t.name + "' has negative release offset");
    }
    if (index_of(t.node) >= nodes_.size()) {
      return make_error("task '" + t.name + "' mapped to unknown node");
    }
    if (index_of(t.graph) >= graphs_.size()) {
      return make_error("task '" + t.name + "' in unknown graph");
    }
  }
  for (const auto& m : messages_) {
    if (m.size_bytes <= 0) return make_error("message '" + m.name + "' has non-positive size");
    if (index_of(m.sender) >= tasks_.size() || index_of(m.receiver) >= tasks_.size()) {
      return make_error("message '" + m.name + "' references unknown task");
    }
    const Task& snd = tasks_[index_of(m.sender)];
    const Task& rcv = tasks_[index_of(m.receiver)];
    if (snd.node == rcv.node) {
      return make_error("message '" + m.name + "' connects tasks on the same node " +
                        "(intra-node comms are part of the WCET)");
    }
    if (snd.graph != m.graph || rcv.graph != m.graph) {
      return make_error("message '" + m.name + "' crosses task graphs");
    }
    if (m.cls == MessageClass::Static && snd.policy != TaskPolicy::Scs) {
      return make_error("ST message '" + m.name + "' must be produced by an SCS task " +
                        "(its slot is fixed in the schedule table)");
    }
  }
  for (const auto& [from, to] : task_deps_) {
    if (index_of(from) >= tasks_.size() || index_of(to) >= tasks_.size()) {
      return make_error("dependency references unknown task");
    }
    if (tasks_[index_of(from)].graph != tasks_[index_of(to)].graph) {
      return make_error("dependency crosses task graphs");
    }
  }

  if (auto routes = derive_routes(); !routes.ok()) return routes.error();

  if (cluster_backends_.size() > cluster_count_) {
    return make_error("cluster backend declared for cluster " +
                      std::to_string(cluster_backends_.size() - 1) + " but only " +
                      std::to_string(cluster_count_) + " cluster(s) exist");
  }

  // Build adjacency over activities.
  const std::size_t n = activity_count();
  preds_.assign(n, {});
  succs_.assign(n, {});
  auto link = [&](ActivityRef from, ActivityRef to) {
    succs_[activity_slot(from)].push_back(to);
    preds_[activity_slot(to)].push_back(from);
  };
  for (std::uint32_t i = 0; i < messages_.size(); ++i) {
    const auto mref = ActivityRef::message(static_cast<MessageId>(i));
    link(ActivityRef::task(messages_[i].sender), mref);
    link(mref, ActivityRef::task(messages_[i].receiver));
  }
  for (const auto& [from, to] : task_deps_) {
    link(ActivityRef::task(from), ActivityRef::task(to));
  }

  // SCS tasks may only depend on time-triggered activities: a table-driven
  // start time cannot honour an event-triggered arrival.
  for (std::uint32_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].policy != TaskPolicy::Scs) continue;
    for (const ActivityRef p : preds_[activity_slot(ActivityRef::task(static_cast<TaskId>(i)))]) {
      const bool tt = p.is_task() ? tasks_[p.index].policy == TaskPolicy::Scs
                                  : messages_[p.index].cls == MessageClass::Static;
      if (!tt) {
        return make_error("SCS task '" + tasks_[i].name +
                          "' depends on an event-triggered activity");
      }
    }
  }

  // Kahn topological sort; also detects cycles.
  std::vector<std::size_t> indegree(n);
  for (std::size_t a = 0; a < n; ++a) indegree[a] = preds_[a].size();
  auto ref_of_slot = [&](std::size_t slot) {
    return slot < tasks_.size()
               ? ActivityRef::task(static_cast<TaskId>(slot))
               : ActivityRef::message(static_cast<MessageId>(slot - tasks_.size()));
  };
  std::queue<std::size_t> ready;
  for (std::size_t a = 0; a < n; ++a) {
    if (indegree[a] == 0) ready.push(a);
  }
  topo_order_.clear();
  topo_order_.reserve(n);
  while (!ready.empty()) {
    const std::size_t slot = ready.front();
    ready.pop();
    topo_order_.push_back(ref_of_slot(slot));
    for (const ActivityRef s : succs_[slot]) {
      if (--indegree[activity_slot(s)] == 0) ready.push(activity_slot(s));
    }
  }
  if (topo_order_.size() != n) return make_error("precedence constraints contain a cycle");

  finalized_ = true;
  return true;
}

Expected<bool> Application::derive_routes() {
  // Cluster universe from node homes and gateway bridges; indices must be
  // contiguous from 0 so per-cluster containers can be plain vectors.
  std::uint32_t max_cluster = 0;
  for (const auto& node : nodes_) {
    max_cluster = std::max(max_cluster, index_of(node.cluster));
    for (const ClusterId b : node.bridges) max_cluster = std::max(max_cluster, index_of(b));
  }
  cluster_count_ = static_cast<std::size_t>(max_cluster) + 1;
  std::vector<char> used(cluster_count_, 0);
  for (const auto& node : nodes_) {
    used[index_of(node.cluster)] = 1;
    for (const ClusterId b : node.bridges) used[index_of(b)] = 1;
  }
  for (std::size_t c = 0; c < cluster_count_; ++c) {
    if (!used[c]) {
      return make_error("cluster indices must be contiguous: cluster " + std::to_string(c) +
                        " is unused while cluster " + std::to_string(cluster_count_ - 1) +
                        " exists");
    }
  }

  for (const auto& node : nodes_) {
    for (std::size_t i = 0; i < node.bridges.size(); ++i) {
      if (node.bridges[i] == node.cluster) {
        return make_error("gateway '" + node.name + "' bridges its own home cluster");
      }
      for (std::size_t j = i + 1; j < node.bridges.size(); ++j) {
        if (node.bridges[i] == node.bridges[j]) {
          return make_error("gateway '" + node.name + "' lists a bridged cluster twice");
        }
      }
    }
  }
  // Gateways host only the relay activities the system projection derives;
  // application tasks on a bridging CPU would be analysed once per member
  // cluster and double-count its load.
  for (const auto& t : tasks_) {
    if (nodes_[index_of(t.node)].is_gateway()) {
      return make_error("task '" + t.name + "' is mapped onto gateway node '" +
                        nodes_[index_of(t.node)].name + "' (gateways only forward messages)");
    }
  }

  // Cluster adjacency: a gateway connects every pair of its member clusters;
  // per pair the lowest-indexed gateway node forwards (deterministic).
  const std::size_t C = cluster_count_;
  std::vector<int> pair_gateway(C * C, -1);
  for (std::uint32_t n = 0; n < nodes_.size(); ++n) {
    const auto& node = nodes_[n];
    if (!node.is_gateway()) continue;
    std::vector<std::uint32_t> members{index_of(node.cluster)};
    for (const ClusterId b : node.bridges) members.push_back(index_of(b));
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = 0; j < members.size(); ++j) {
        if (i == j) continue;
        int& slot = pair_gateway[members[i] * C + members[j]];
        if (slot < 0) slot = static_cast<int>(n);
      }
    }
  }

  routes_.assign(messages_.size(), MessageRoute{});
  cross_cluster_messages_ = false;
  // Per-source BFS parents are deterministic (clusters visited in ascending
  // index order), so routes never depend on container ordering.
  std::vector<int> parent(C);
  for (std::uint32_t m = 0; m < messages_.size(); ++m) {
    const std::uint32_t from = index_of(cluster_of(messages_[m].sender));
    const std::uint32_t to = index_of(cluster_of(messages_[m].receiver));
    MessageRoute& route = routes_[m];
    if (from == to) {
      route.clusters = {static_cast<ClusterId>(from)};
      continue;
    }
    std::fill(parent.begin(), parent.end(), -1);
    parent[from] = static_cast<int>(from);
    std::queue<std::uint32_t> frontier;
    frontier.push(from);
    while (!frontier.empty() && parent[to] < 0) {
      const std::uint32_t c = frontier.front();
      frontier.pop();
      for (std::uint32_t next = 0; next < C; ++next) {
        if (parent[next] >= 0 || pair_gateway[c * C + next] < 0) continue;
        parent[next] = static_cast<int>(c);
        frontier.push(next);
      }
    }
    if (parent[to] < 0) {
      return make_error("message '" + messages_[m].name + "' crosses from cluster " +
                        std::to_string(from) + " to cluster " + std::to_string(to) +
                        " but no gateway route connects them");
    }
    // Gateway forwarding is event-triggered (store-and-forward relays are
    // FPS), so neither the message class nor the receiver may be
    // time-triggered: a schedule table cannot honour a cross-bus arrival.
    if (messages_[m].cls != MessageClass::Dynamic) {
      return make_error("cross-cluster message '" + messages_[m].name +
                        "' must use the dynamic segment (TT gateway forwarding is not "
                        "modelled)");
    }
    if (tasks_[index_of(messages_[m].receiver)].policy == TaskPolicy::Scs) {
      return make_error("cross-cluster message '" + messages_[m].name +
                        "' is received by an SCS task (cross-cluster receivers must be FPS)");
    }
    std::vector<std::uint32_t> path;
    for (std::uint32_t c = to; c != from; c = static_cast<std::uint32_t>(parent[c])) {
      path.push_back(c);
    }
    path.push_back(from);
    std::reverse(path.begin(), path.end());
    route.clusters.reserve(path.size());
    for (const std::uint32_t c : path) route.clusters.push_back(static_cast<ClusterId>(c));
    route.gateways.reserve(path.size() - 1);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      route.gateways.push_back(
          static_cast<NodeId>(static_cast<std::uint32_t>(pair_gateway[path[i] * C + path[i + 1]])));
    }
    cross_cluster_messages_ = true;
  }
  return true;
}

void Application::require_finalized() const {
  if (!finalized_) throw std::logic_error("Application must be finalized before analysis queries");
}

const std::vector<ActivityRef>& Application::predecessors(ActivityRef a) const {
  require_finalized();
  return preds_[activity_slot(a)];
}

const std::vector<ActivityRef>& Application::successors(ActivityRef a) const {
  require_finalized();
  return succs_[activity_slot(a)];
}

const std::vector<ActivityRef>& Application::topological_order() const {
  require_finalized();
  return topo_order_;
}

GraphId Application::graph_of(ActivityRef a) const {
  return a.is_task() ? tasks_[a.index].graph : messages_[a.index].graph;
}

Time Application::model_cost(ActivityRef a) const {
  return a.is_task() ? tasks_[a.index].wcet : 0;
}

Time Application::effective_deadline(ActivityRef a) const {
  const Time individual = a.is_task() ? tasks_[a.index].deadline : messages_[a.index].deadline;
  if (individual != kTimeNone) return individual;
  return graphs_[index_of(graph_of(a))].deadline;
}

const std::string& Application::activity_name(ActivityRef a) const {
  return a.is_task() ? tasks_[a.index].name : messages_[a.index].name;
}

Time Application::period_of(ActivityRef a) const {
  return graphs_[index_of(graph_of(a))].period;
}

Expected<Time> Application::hyperperiod() const {
  std::vector<std::int64_t> periods;
  periods.reserve(graphs_.size());
  for (const auto& g : graphs_) periods.push_back(g.period);
  return flexopt::hyperperiod(periods);
}

Time Application::longest_path_to(ActivityRef a, std::span<const Time> message_costs) const {
  require_finalized();
  std::vector<Time> lp(activity_count(), 0);
  auto cost_of = [&](ActivityRef r) {
    if (r.is_task()) return tasks_[r.index].wcet;
    return r.index < message_costs.size() ? message_costs[r.index] : Time{0};
  };
  for (const ActivityRef r : topo_order_) {
    Time best_pred = 0;
    for (const ActivityRef p : preds_[activity_slot(r)]) {
      best_pred = std::max(best_pred, lp[activity_slot(p)]);
    }
    lp[activity_slot(r)] = best_pred + cost_of(r);
  }
  return lp[activity_slot(a)];
}

Time Application::criticality(MessageId m, std::span<const Time> message_costs) const {
  const auto mref = ActivityRef::message(m);
  return effective_deadline(mref) - longest_path_to(mref, message_costs);
}

double Application::node_utilization(NodeId node) const {
  double u = 0.0;
  for (const auto& t : tasks_) {
    if (t.node != node) continue;
    u += static_cast<double>(t.wcet) / static_cast<double>(graphs_[index_of(t.graph)].period);
  }
  return u;
}

}  // namespace flexopt
