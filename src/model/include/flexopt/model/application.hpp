#pragma once

/// \file application.hpp
/// The application model of Section 4 of the paper: a set of directed,
/// acyclic, polar task graphs whose nodes are tasks (SCS or FPS) and
/// messages (ST or DYN), mapped onto processing nodes connected by one
/// FlexRay bus.
///
/// Conventions:
///  * Priorities: smaller numeric value = higher priority (classic RTA
///    convention), for both FPS tasks and DYN messages.
///  * Time: integral nanoseconds (flexopt::Time).
///  * Every task graph has a period and an end-to-end deadline; tasks and
///    messages may carry individual deadlines that override the graph's.

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "flexopt/model/cluster_backend.hpp"
#include "flexopt/model/ids.hpp"
#include "flexopt/util/expected.hpp"
#include "flexopt/util/time.hpp"

namespace flexopt {

/// Scheduling policy of a task (Section 2): static cyclic (table-driven,
/// non-preemptable) or fixed-priority (preemptive, runs in SCS slack).
enum class TaskPolicy { Scs, Fps };

/// Transmission class of a message: static segment (schedule-table driven)
/// or dynamic segment (FTDMA, FrameID + priority driven).
enum class MessageClass { Static, Dynamic };

struct ProcessingNode {
  std::string name;
  /// Home cluster (the FlexRay bus the node's controller is attached to).
  /// Every node of a plain single-bus application lives in cluster 0.
  ClusterId cluster{0};
  /// Additional clusters this node bridges as a gateway (empty for regular
  /// nodes).  A gateway has one controller per member cluster and forwards
  /// cross-cluster messages between them (store-and-forward).
  std::vector<ClusterId> bridges;

  [[nodiscard]] bool is_gateway() const { return !bridges.empty(); }
  /// Membership test over home cluster + bridged clusters.
  [[nodiscard]] bool in_cluster(ClusterId c) const;
};

/// Cluster path of a message from its sender's cluster to its receiver's,
/// derived by finalize(): `clusters` lists the visited clusters in order and
/// `gateways[i]` is the gateway node forwarding between clusters[i] and
/// clusters[i+1].  Intra-cluster messages have a single-element path.
struct MessageRoute {
  std::vector<ClusterId> clusters;
  std::vector<NodeId> gateways;

  [[nodiscard]] bool cross_cluster() const { return clusters.size() > 1; }
  /// Number of bus hops the payload takes (1 for intra-cluster).
  [[nodiscard]] std::size_t hop_count() const { return clusters.size(); }
};

struct Task {
  std::string name;
  GraphId graph{};
  NodeId node{};
  Time wcet = 0;
  TaskPolicy policy = TaskPolicy::Scs;
  /// FPS priority (ignored for SCS tasks); smaller = higher priority.
  int priority = 0;
  /// Optional individual deadline relative to the graph release;
  /// kTimeNone means "inherit the graph deadline".
  Time deadline = kTimeNone;
  /// Individual release time relative to the graph release (Section 4:
  /// "tasks can have associated individual release times"); the task is not
  /// ready before graph_release + release_offset.
  Time release_offset = 0;
};

struct Message {
  std::string name;
  GraphId graph{};
  TaskId sender{};
  TaskId receiver{};
  /// Payload size in bytes (Eq. 1 turns this into a communication time for
  /// a concrete bus; the model itself is bus-agnostic).
  int size_bytes = 0;
  MessageClass cls = MessageClass::Static;
  /// DYN arbitration priority among same-FrameID messages; smaller = higher.
  int priority = 0;
  Time deadline = kTimeNone;
};

struct TaskGraph {
  std::string name;
  Time period = 0;
  /// End-to-end deadline, relative to the graph release.
  Time deadline = 0;
};

/// A whole distributed application.  Build with the add_* methods, then
/// call `finalize()` once; analysis and optimisation operate on finalized
/// applications only.
class Application {
 public:
  // ---- construction ------------------------------------------------------
  NodeId add_node(std::string name);
  GraphId add_graph(std::string name, Time period, Time deadline);
  TaskId add_task(GraphId graph, std::string name, NodeId node, Time wcet,
                  TaskPolicy policy, int priority = 0);
  /// Adds a message and the implicit precedence sender -> message -> receiver.
  /// Sender and receiver must be mapped to different nodes (intra-node
  /// communication is folded into task WCETs per Section 4).
  MessageId add_message(GraphId graph, std::string name, TaskId sender, TaskId receiver,
                        int size_bytes, MessageClass cls, int priority = 0);
  /// Direct task->task precedence (tasks on the same node, or logical
  /// ordering without data transfer).
  void add_dependency(TaskId from, TaskId to);
  /// Moves a node to another cluster (default: cluster 0).  Cluster indices
  /// must be used contiguously from 0; finalize() validates that.
  void set_node_cluster(NodeId node, ClusterId cluster);
  /// Declares `node` a gateway bridging its home cluster and `bridges`.
  /// Gateways host only the relay activities the system projection derives
  /// (finalize() rejects application tasks mapped onto them).
  void add_gateway(NodeId node, std::vector<ClusterId> bridges);
  /// Declares which communication backend cluster `cluster` uses (default:
  /// FlexRay).  finalize() rejects declarations for clusters that do not
  /// exist.
  void set_cluster_backend(ClusterId cluster, ClusterBackendKind kind);
  void set_task_deadline(TaskId task, Time deadline);
  void set_task_release_offset(TaskId task, Time offset);
  /// Mutators used by generators for utilisation scaling.  Call before
  /// finalize() (they do not invalidate a finalized application's topology
  /// but analysis caches derived values, so re-finalize after mutating).
  void set_task_wcet(TaskId task, Time wcet);
  void set_message_size(MessageId message, int size_bytes);
  void set_graph_deadline(GraphId graph, Time deadline);
  void set_message_deadline(MessageId message, Time deadline);

  /// Validates the model and freezes derived structures (topological order,
  /// adjacency, per-graph membership, message routes).  Checks: non-empty,
  /// acyclic graphs, positive periods/WCETs, cross-node messaging, SCS tasks
  /// depend only on time-triggered activities, ST messages have SCS senders.
  /// Multi-cluster checks: contiguous cluster indices, no application tasks
  /// on gateway nodes, every cross-cluster message has a gateway route, is
  /// DYN-class, and is received by an FPS task (TT forwarding across
  /// gateways is not modelled).
  Expected<bool> finalize();
  [[nodiscard]] bool finalized() const { return finalized_; }

  // ---- element access ----------------------------------------------------
  [[nodiscard]] const std::vector<ProcessingNode>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<Task>& tasks() const { return tasks_; }
  [[nodiscard]] const std::vector<Message>& messages() const { return messages_; }
  [[nodiscard]] const std::vector<TaskGraph>& graphs() const { return graphs_; }
  /// Explicit task->task dependencies (message-induced edges are implicit).
  [[nodiscard]] const std::vector<std::pair<TaskId, TaskId>>& dependencies() const {
    return task_deps_;
  }

  [[nodiscard]] const Task& task(TaskId id) const { return tasks_[index_of(id)]; }
  [[nodiscard]] const Message& message(MessageId id) const { return messages_[index_of(id)]; }
  [[nodiscard]] const TaskGraph& graph(GraphId id) const { return graphs_[index_of(id)]; }
  [[nodiscard]] const ProcessingNode& node(NodeId id) const { return nodes_[index_of(id)]; }

  // ---- cluster topology (finalized only for routes) -----------------------
  /// Number of clusters (1 + highest cluster index in use); 1 until nodes
  /// are assigned elsewhere.  Valid after finalize().
  [[nodiscard]] std::size_t cluster_count() const { return cluster_count_; }
  [[nodiscard]] ClusterId cluster_of(NodeId node) const {
    return nodes_[index_of(node)].cluster;
  }
  /// Home cluster of a task's node.
  [[nodiscard]] ClusterId cluster_of(TaskId task) const {
    return cluster_of(tasks_[index_of(task)].node);
  }
  /// Derived cluster path of a message (single element when intra-cluster).
  /// Valid after finalize().
  [[nodiscard]] const MessageRoute& route_of(MessageId m) const {
    return routes_[index_of(m)];
  }
  [[nodiscard]] bool has_cross_cluster_messages() const {
    return cross_cluster_messages_;
  }
  /// Communication backend of one cluster (FlexRay unless declared
  /// otherwise via set_cluster_backend()).
  [[nodiscard]] ClusterBackendKind cluster_backend(ClusterId cluster) const {
    const std::size_t c = index_of(cluster);
    return c < cluster_backends_.size() ? cluster_backends_[c] : ClusterBackendKind::FlexRay;
  }

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t task_count() const { return tasks_.size(); }
  [[nodiscard]] std::size_t message_count() const { return messages_.size(); }
  [[nodiscard]] std::size_t graph_count() const { return graphs_.size(); }
  /// Tasks plus messages.
  [[nodiscard]] std::size_t activity_count() const { return tasks_.size() + messages_.size(); }

  // ---- activity helpers (finalized only) ----------------------------------
  [[nodiscard]] const std::vector<ActivityRef>& predecessors(ActivityRef a) const;
  [[nodiscard]] const std::vector<ActivityRef>& successors(ActivityRef a) const;
  /// All activities in one global topological order (graph by graph).
  [[nodiscard]] const std::vector<ActivityRef>& topological_order() const;

  [[nodiscard]] GraphId graph_of(ActivityRef a) const;
  /// WCET for a task; for messages this is size-dependent and bus-specific,
  /// so the model returns 0 (the analysis substitutes Eq. 1).
  [[nodiscard]] Time model_cost(ActivityRef a) const;
  /// Effective deadline: the individual one if set, otherwise the graph's.
  [[nodiscard]] Time effective_deadline(ActivityRef a) const;
  [[nodiscard]] const std::string& activity_name(ActivityRef a) const;

  /// Period of the graph the activity belongs to.
  [[nodiscard]] Time period_of(ActivityRef a) const;

  /// Hyper-period: LCM of all graph periods.
  [[nodiscard]] Expected<Time> hyperperiod() const;

  /// Longest path (sum of task WCETs along the precedence chain; message
  /// cost taken from `message_costs`, indexed by message) from any graph
  /// source up to and including activity `a`.  This is LP_m in Eq. 4.
  [[nodiscard]] Time longest_path_to(ActivityRef a, std::span<const Time> message_costs) const;

  /// Criticality CP_m = D_m - LP_m (Eq. 4); smaller = more critical.
  [[nodiscard]] Time criticality(MessageId m, std::span<const Time> message_costs) const;

  /// Processor utilisation of one node: sum of task WCET/period.
  [[nodiscard]] double node_utilization(NodeId node) const;

 private:
  [[nodiscard]] std::size_t activity_slot(ActivityRef a) const {
    return a.is_task() ? a.index : tasks_.size() + a.index;
  }
  void require_finalized() const;

  std::vector<ProcessingNode> nodes_;
  std::vector<Task> tasks_;
  std::vector<Message> messages_;
  std::vector<TaskGraph> graphs_;

  /// Explicit task->task dependencies (message-induced edges are implicit).
  std::vector<std::pair<TaskId, TaskId>> task_deps_;

  Expected<bool> derive_routes();

  // Derived, filled by finalize():
  bool finalized_ = false;
  std::vector<std::vector<ActivityRef>> preds_;
  std::vector<std::vector<ActivityRef>> succs_;
  std::vector<ActivityRef> topo_order_;
  std::size_t cluster_count_ = 1;
  bool cross_cluster_messages_ = false;
  std::vector<MessageRoute> routes_;  ///< indexed by MessageId
  /// Declared backends, indexed by cluster; clusters beyond the vector are
  /// FlexRay.  finalize() validates indices against cluster_count_.
  std::vector<ClusterBackendKind> cluster_backends_;
};

}  // namespace flexopt
