#pragma once

/// \file system_model.hpp
/// The multi-cluster system representation: projects one clustered
/// Application (nodes with cluster membership + gateway declarations, see
/// application.hpp) into one self-contained single-bus Application per
/// cluster.  A cross-cluster message becomes a chain of relay hops — per
/// gateway transition a receive relay task in the upstream cluster and a
/// forwarding relay task in the downstream cluster, per visited cluster one
/// hop message with its own class and (through that cluster's BusConfig) its
/// own FrameID.  The cross-cluster analysis
/// (flexopt/analysis/multicluster.hpp) iterates the per-cluster analyses and
/// feeds each forwarding relay's release jitter from the upstream receive
/// relay's completion bound.
///
/// Degenerate case: a single-cluster application projects to *itself* (the
/// same shared_ptr), which is what keeps the whole pre-cluster pipeline
/// bit-identical.

#include <memory>
#include <vector>

#include "flexopt/model/application.hpp"
#include "flexopt/util/expected.hpp"

namespace flexopt {

struct SystemModelOptions {
  /// WCET of a forwarding relay task (the downstream store-and-forward
  /// processing on the gateway CPU) — the per-hop gateway latency.
  Time relay_forward_wcet = timeunits::us(50);
  /// WCET of a receive relay task (frame reception bookkeeping upstream).
  Time relay_receive_wcet = timeunits::us(1);
};

/// One gateway transition of a cross-cluster message: the upstream receive
/// relay whose completion bound gates the downstream forwarding relay.
struct RelayLink {
  MessageId global_message{};
  /// 0-based transition index along the message's route.
  std::size_t transition = 0;
  std::uint32_t upstream_cluster = 0;
  std::uint32_t downstream_cluster = 0;
  NodeId gateway{};
  /// Local TaskId of the receive relay in the upstream cluster app.
  TaskId upstream_recv{};
  /// Local TaskId of the forwarding relay in the downstream cluster app.
  TaskId downstream_send{};
};

/// Location of a global activity inside one cluster projection.
struct LocalActivity {
  std::uint32_t cluster = 0;
  std::uint32_t index = 0;
};

class SystemModel {
 public:
  SystemModel() = default;

  /// Wraps a finalized application as its own single-cluster projection
  /// (no copies, no relays).  Never fails.
  [[nodiscard]] static SystemModel single(std::shared_ptr<const Application> app);

  /// Projects a finalized (possibly multi-cluster) application.  For
  /// cluster_count() == 1 this is exactly single().  Fails when a cluster
  /// ends up with no activities (its projection cannot be finalized).
  [[nodiscard]] static Expected<SystemModel> build(std::shared_ptr<const Application> app,
                                                   SystemModelOptions options = {});

  [[nodiscard]] std::size_t cluster_count() const { return cluster_apps_.size(); }
  [[nodiscard]] bool single_cluster() const { return cluster_apps_.size() == 1; }
  [[nodiscard]] const std::shared_ptr<const Application>& global() const { return global_; }
  [[nodiscard]] const std::shared_ptr<const Application>& cluster_app(std::size_t c) const {
    return cluster_apps_[c];
  }
  [[nodiscard]] const SystemModelOptions& options() const { return options_; }

  /// All gateway transitions, in (global message, transition) order — the
  /// edge list of the cross-cluster fixed point.
  [[nodiscard]] const std::vector<RelayLink>& relay_links() const { return relay_links_; }

  /// Cluster-local location of a global task.
  [[nodiscard]] const LocalActivity& local_task(TaskId global) const {
    return task_map_[index_of(global)];
  }
  /// Cluster-local hop messages of a global message, in route order
  /// (exactly one entry for intra-cluster messages).
  [[nodiscard]] const std::vector<LocalActivity>& message_hops(MessageId global) const {
    return hop_map_[index_of(global)];
  }

 private:
  std::shared_ptr<const Application> global_;
  std::vector<std::shared_ptr<const Application>> cluster_apps_;
  SystemModelOptions options_;
  std::vector<RelayLink> relay_links_;
  std::vector<LocalActivity> task_map_;               ///< indexed by global TaskId
  std::vector<std::vector<LocalActivity>> hop_map_;   ///< indexed by global MessageId
};

}  // namespace flexopt
