#pragma once

/// \file cluster_backend.hpp
/// The per-cluster communication-backend vocabulary: which protocol a
/// cluster's interconnect speaks and the decision variables of each
/// backend's bus-access configuration.
///
/// Two backends exist:
///  * FlexRay — the paper's bus (ST slot table + FTDMA minislot
///    arbitration).  Its decision variables live in flexray/bus_config.hpp;
///    this header only names the backend so the model layer stays free of
///    FlexRay protocol types.
///  * TSN — a switched-Ethernet cluster with time-aware shapers
///    (IEEE 802.1Qbv-style).  Time-triggered (ST-equivalent) traffic gets a
///    dedicated per-egress gate window repeating every gating cycle;
///    event-triggered (DYN-equivalent) traffic is arbitrated per egress
///    port by non-preemptive strict priority in the gaps between gate
///    windows.  The decision variables (TsnConfig) are the gating cycle,
///    the gate window placement, and the ET priority assignment.
///
/// The model layer must not depend on the flexray module, so the shared
/// backend vocabulary (kinds, TSN configuration, move kinds) lives here;
/// the per-cluster configuration variant that also carries a BusConfig is
/// flexray/system_config.hpp's ClusterConfig.

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "flexopt/model/ids.hpp"
#include "flexopt/util/expected.hpp"
#include "flexopt/util/time.hpp"

namespace flexopt {

/// Which protocol a cluster's interconnect speaks.
enum class ClusterBackendKind { FlexRay, Tsn };

[[nodiscard]] const char* to_string(ClusterBackendKind kind);
[[nodiscard]] Expected<ClusterBackendKind> parse_backend_kind(std::string_view text);

/// Generator/campaign-level backend assignment policy for the multicluster
/// scenario family: every cluster FlexRay (the pre-backend behaviour),
/// every cluster TSN, or alternating FlexRay/TSN ("mixed").
enum class BackendMix { Flexray, Tsn, Mixed };

[[nodiscard]] const char* to_string(BackendMix mix);
[[nodiscard]] Expected<BackendMix> parse_backend_mix(std::string_view text);

/// The per-cluster kind a mix policy assigns: Mixed alternates starting
/// with FlexRay (cluster 0 FlexRay, cluster 1 TSN, ...), so every 2+
/// cluster mixed system contains at least one of each backend.
[[nodiscard]] ClusterBackendKind backend_for_cluster(BackendMix mix, std::size_t cluster);

/// One egress gate window within the gating cycle: the port is reserved
/// for its ST message during [offset, offset + length) every cycle.
struct TsnGateWindow {
  Time offset = 0;
  Time length = 0;

  friend bool operator==(const TsnGateWindow&, const TsnGateWindow&) = default;
};

/// The decision variables of a TSN cluster (the BusConfig analogue).  A
/// plain value type: optimisers copy and mutate it freely; TsnLayout::build
/// validates it against an application.
struct TsnConfig {
  /// Gating cycle of the time-aware shapers.  Gate windows repeat with
  /// this period on every egress port.
  Time cycle = 0;
  /// Egress link rate in Mbit/s (full-duplex switched Ethernet).  Fixed
  /// per cluster; optimisers never move it.
  int link_rate_mbps = 100;
  /// Per-message gate window, indexed by MessageId: a positive-length
  /// window for every ST message, the zero window {0, 0} for ET messages.
  std::vector<TsnGateWindow> gates;
  /// Per-message ET arbitration priority, indexed by MessageId; smaller =
  /// higher.  Entries of ST messages are ignored (keep them 0).
  std::vector<int> et_priority;

  friend bool operator==(const TsnConfig&, const TsnConfig&) = default;
};

/// Fixed per-frame Ethernet overhead: preamble + SFD (8), MAC header (14),
/// VLAN tag (4), FCS (4), interframe gap (12) bytes.
inline constexpr int kTsnFrameOverheadBytes = 42;

/// Wire time of a payload of `size_bytes` on a `link_rate_mbps` link (the
/// Eq. 1 analogue), rounded up to whole nanoseconds.
[[nodiscard]] Time tsn_frame_duration(int size_bytes, int link_rate_mbps);

/// The neighbourhood move kinds a backend's configuration supports — the
/// dispatch vocabulary of the optimizer's block-coordinate descent and the
/// delta-evaluation invalidation logic.
enum class BackendMoveKind {
  // FlexRay (BusConfig knobs):
  StSlotCount,
  StSlotLen,
  StSlotOwner,
  MinislotCount,
  FrameId,
  // TSN (TsnConfig knobs):
  TsnGateOffset,
  TsnGateLength,
  TsnPriority,
};

[[nodiscard]] const char* to_string(BackendMoveKind kind);

/// The move kinds declared by one backend, in canonical enumeration order.
[[nodiscard]] std::span<const BackendMoveKind> backend_move_kinds(ClusterBackendKind kind);

}  // namespace flexopt
