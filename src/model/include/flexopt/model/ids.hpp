#pragma once

/// \file ids.hpp
/// Strongly-typed indices for the application model.  Plain enums-over-u32
/// rather than full strong types: the model is index-based (contiguous
/// vectors) and these exist to make signatures self-documenting and to stop
/// accidental cross-assignment between id spaces.

#include <cstdint>
#include <limits>

namespace flexopt {

enum class NodeId : std::uint32_t {};
enum class TaskId : std::uint32_t {};
enum class MessageId : std::uint32_t {};
enum class GraphId : std::uint32_t {};
/// Index of a FlexRay cluster (one bus) in a multi-cluster system; plain
/// single-bus applications live entirely in cluster 0.
enum class ClusterId : std::uint32_t {};

constexpr std::uint32_t index_of(NodeId id) { return static_cast<std::uint32_t>(id); }
constexpr std::uint32_t index_of(TaskId id) { return static_cast<std::uint32_t>(id); }
constexpr std::uint32_t index_of(MessageId id) { return static_cast<std::uint32_t>(id); }
constexpr std::uint32_t index_of(GraphId id) { return static_cast<std::uint32_t>(id); }
constexpr std::uint32_t index_of(ClusterId id) { return static_cast<std::uint32_t>(id); }

/// An activity is a task or a message; the precedence graphs, the list
/// scheduler and the cost function all range over activities uniformly.
struct ActivityRef {
  enum class Kind : std::uint8_t { Task, Message } kind;
  std::uint32_t index;

  static constexpr ActivityRef task(TaskId id) { return {Kind::Task, index_of(id)}; }
  static constexpr ActivityRef message(MessageId id) { return {Kind::Message, index_of(id)}; }

  [[nodiscard]] constexpr bool is_task() const { return kind == Kind::Task; }
  [[nodiscard]] constexpr bool is_message() const { return kind == Kind::Message; }
  [[nodiscard]] constexpr TaskId as_task() const { return static_cast<TaskId>(index); }
  [[nodiscard]] constexpr MessageId as_message() const { return static_cast<MessageId>(index); }

  friend constexpr bool operator==(ActivityRef a, ActivityRef b) {
    return a.kind == b.kind && a.index == b.index;
  }
  friend constexpr bool operator<(ActivityRef a, ActivityRef b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.index < b.index;
  }
};

}  // namespace flexopt
