#include "flexopt/model/system_model.hpp"

#include <string>
#include <utility>

namespace flexopt {
namespace {

constexpr std::uint32_t kAbsent = 0xffffffffu;

}  // namespace

SystemModel SystemModel::single(std::shared_ptr<const Application> app) {
  SystemModel model;
  model.global_ = std::move(app);
  model.cluster_apps_.push_back(model.global_);
  const Application& a = *model.global_;
  model.task_map_.resize(a.task_count());
  for (std::uint32_t t = 0; t < a.task_count(); ++t) model.task_map_[t] = {0, t};
  model.hop_map_.resize(a.message_count());
  for (std::uint32_t m = 0; m < a.message_count(); ++m) model.hop_map_[m] = {{0, m}};
  return model;
}

Expected<SystemModel> SystemModel::build(std::shared_ptr<const Application> app,
                                         SystemModelOptions options) {
  if (!app || !app->finalized()) {
    return make_error("SystemModel::build requires a finalized application");
  }
  if (app->cluster_count() == 1) return single(std::move(app));

  SystemModel model;
  model.global_ = std::move(app);
  model.options_ = options;
  const Application& global = *model.global_;
  const std::size_t C = global.cluster_count();

  std::vector<Application> projections(C);
  // local_node[c][global node index] = local NodeId index (kAbsent outside c).
  std::vector<std::vector<std::uint32_t>> local_node(
      C, std::vector<std::uint32_t>(global.node_count(), kAbsent));

  for (std::size_t c = 0; c < C; ++c) {
    for (std::uint32_t n = 0; n < global.node_count(); ++n) {
      if (!global.nodes()[n].in_cluster(static_cast<ClusterId>(c))) continue;
      local_node[c][n] = index_of(projections[c].add_node(global.nodes()[n].name));
    }
    // Every projection carries every graph (same GraphIds everywhere), so
    // hyper-period and response horizon agree across clusters.
    for (const TaskGraph& g : global.graphs()) {
      projections[c].add_graph(g.name, g.period, g.deadline);
    }
  }

  model.task_map_.resize(global.task_count());
  for (std::uint32_t t = 0; t < global.task_count(); ++t) {
    const Task& task = global.tasks()[t];
    const std::uint32_t c = index_of(global.cluster_of(task.node));
    const TaskId local = projections[c].add_task(
        task.graph, task.name, static_cast<NodeId>(local_node[c][index_of(task.node)]),
        task.wcet, task.policy, task.priority);
    if (task.deadline != kTimeNone) projections[c].set_task_deadline(local, task.deadline);
    if (task.release_offset != 0) {
      projections[c].set_task_release_offset(local, task.release_offset);
    }
    model.task_map_[t] = {c, index_of(local)};
  }

  model.hop_map_.resize(global.message_count());
  for (std::uint32_t m = 0; m < global.message_count(); ++m) {
    const Message& msg = global.messages()[m];
    const MessageRoute& route = global.route_of(static_cast<MessageId>(m));
    const std::size_t hops = route.hop_count();

    // Relay tasks, one receive/forward pair per gateway transition.
    std::vector<TaskId> recv_tasks(route.gateways.size());
    std::vector<TaskId> send_tasks(route.gateways.size());
    for (std::size_t i = 0; i < route.gateways.size(); ++i) {
      const std::uint32_t up = index_of(route.clusters[i]);
      const std::uint32_t down = index_of(route.clusters[i + 1]);
      const std::uint32_t gw = index_of(route.gateways[i]);
      const std::string stem = msg.name + "~gw" + std::to_string(i);
      recv_tasks[i] = projections[up].add_task(
          msg.graph, stem + ".rx", static_cast<NodeId>(local_node[up][gw]),
          options.relay_receive_wcet, TaskPolicy::Fps, msg.priority);
      send_tasks[i] = projections[down].add_task(
          msg.graph, stem + ".tx", static_cast<NodeId>(local_node[down][gw]),
          options.relay_forward_wcet, TaskPolicy::Fps, msg.priority);
      RelayLink link;
      link.global_message = static_cast<MessageId>(m);
      link.transition = i;
      link.upstream_cluster = up;
      link.downstream_cluster = down;
      link.gateway = route.gateways[i];
      link.upstream_recv = recv_tasks[i];
      link.downstream_send = send_tasks[i];
      model.relay_links_.push_back(link);
    }

    std::vector<LocalActivity>& hop_refs = model.hop_map_[m];
    hop_refs.reserve(hops);
    for (std::size_t j = 0; j < hops; ++j) {
      const std::uint32_t c = index_of(route.clusters[j]);
      const TaskId sender =
          j == 0 ? static_cast<TaskId>(model.task_map_[index_of(msg.sender)].index)
                 : send_tasks[j - 1];
      const TaskId receiver =
          j + 1 == hops ? static_cast<TaskId>(model.task_map_[index_of(msg.receiver)].index)
                        : recv_tasks[j];
      const std::string name = hops == 1 ? msg.name : msg.name + "~h" + std::to_string(j);
      // A single-hop projection keeps the declared class; relay hops are
      // event-triggered by construction (cross-cluster messages are
      // validated MessageClass::Dynamic at finalize()).
      const MessageId local = projections[c].add_message(msg.graph, name, sender, receiver,
                                                         msg.size_bytes, msg.cls, msg.priority);
      if (msg.deadline != kTimeNone && j + 1 == hops) {
        // The end-to-end individual deadline binds the final delivery hop;
        // intermediate hops inherit the graph deadline.
        projections[c].set_message_deadline(local, msg.deadline);
      }
      hop_refs.push_back({c, index_of(local)});
    }
  }

  model.cluster_apps_.reserve(C);
  for (std::size_t c = 0; c < C; ++c) {
    // Each projection is a single-cluster application whose cluster 0 keeps
    // the backend declared for the global cluster c.
    projections[c].set_cluster_backend(ClusterId{0},
                                       global.cluster_backend(static_cast<ClusterId>(c)));
    auto finalized = projections[c].finalize();
    if (!finalized.ok()) {
      return make_error("cluster " + std::to_string(c) +
                        " projection is invalid: " + finalized.error().message);
    }
    model.cluster_apps_.push_back(
        std::make_shared<const Application>(std::move(projections[c])));
  }
  return model;
}

}  // namespace flexopt
