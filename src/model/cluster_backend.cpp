#include "flexopt/model/cluster_backend.hpp"

#include <array>
#include <stdexcept>

namespace flexopt {

const char* to_string(ClusterBackendKind kind) {
  switch (kind) {
    case ClusterBackendKind::FlexRay:
      return "flexray";
    case ClusterBackendKind::Tsn:
      return "tsn";
  }
  return "?";
}

Expected<ClusterBackendKind> parse_backend_kind(std::string_view text) {
  if (text == "flexray") return ClusterBackendKind::FlexRay;
  if (text == "tsn") return ClusterBackendKind::Tsn;
  return make_error("unknown cluster backend '" + std::string(text) +
                    "' (expected flexray or tsn)");
}

const char* to_string(BackendMix mix) {
  switch (mix) {
    case BackendMix::Flexray:
      return "flexray";
    case BackendMix::Tsn:
      return "tsn";
    case BackendMix::Mixed:
      return "mixed";
  }
  return "?";
}

Expected<BackendMix> parse_backend_mix(std::string_view text) {
  if (text == "flexray") return BackendMix::Flexray;
  if (text == "tsn") return BackendMix::Tsn;
  if (text == "mixed") return BackendMix::Mixed;
  return make_error("unknown backend mix '" + std::string(text) +
                    "' (expected flexray, tsn or mixed)");
}

ClusterBackendKind backend_for_cluster(BackendMix mix, std::size_t cluster) {
  switch (mix) {
    case BackendMix::Flexray:
      return ClusterBackendKind::FlexRay;
    case BackendMix::Tsn:
      return ClusterBackendKind::Tsn;
    case BackendMix::Mixed:
      return cluster % 2 == 1 ? ClusterBackendKind::Tsn : ClusterBackendKind::FlexRay;
  }
  return ClusterBackendKind::FlexRay;
}

Time tsn_frame_duration(int size_bytes, int link_rate_mbps) {
  if (size_bytes < 0 || link_rate_mbps <= 0) {
    throw std::invalid_argument("tsn_frame_duration: negative size or non-positive link rate");
  }
  // bits / (mbps) = microseconds; * 1000 / mbps in ns.  Sizes are bounded by
  // the generator/spec caps (well under 64 KiB) so the intermediate product
  // fits comfortably in 64 bits.
  const std::int64_t bits =
      (static_cast<std::int64_t>(size_bytes) + kTsnFrameOverheadBytes) * 8;
  const std::int64_t rate = link_rate_mbps;
  return (bits * 1000 + rate - 1) / rate;
}

const char* to_string(BackendMoveKind kind) {
  switch (kind) {
    case BackendMoveKind::StSlotCount:
      return "st_slot_count";
    case BackendMoveKind::StSlotLen:
      return "st_slot_len";
    case BackendMoveKind::StSlotOwner:
      return "st_slot_owner";
    case BackendMoveKind::MinislotCount:
      return "minislot_count";
    case BackendMoveKind::FrameId:
      return "frame_id";
    case BackendMoveKind::TsnGateOffset:
      return "tsn_gate_offset";
    case BackendMoveKind::TsnGateLength:
      return "tsn_gate_length";
    case BackendMoveKind::TsnPriority:
      return "tsn_priority";
  }
  return "?";
}

std::span<const BackendMoveKind> backend_move_kinds(ClusterBackendKind kind) {
  static constexpr std::array<BackendMoveKind, 5> kFlexRay = {
      BackendMoveKind::StSlotCount, BackendMoveKind::StSlotLen,
      BackendMoveKind::StSlotOwner, BackendMoveKind::MinislotCount,
      BackendMoveKind::FrameId,
  };
  static constexpr std::array<BackendMoveKind, 3> kTsn = {
      BackendMoveKind::TsnGateOffset,
      BackendMoveKind::TsnGateLength,
      BackendMoveKind::TsnPriority,
  };
  switch (kind) {
    case ClusterBackendKind::FlexRay:
      return kFlexRay;
    case ClusterBackendKind::Tsn:
      return kTsn;
  }
  return {};
}

}  // namespace flexopt
