#include "flexopt/core/solver.hpp"

#include <algorithm>
#include <cctype>
#include <climits>
#include <map>
#include <mutex>

namespace flexopt {

// ---- SolveControl ----------------------------------------------------------

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::Complete:
      return "complete";
    case SolveStatus::BudgetExhausted:
      return "budget-exhausted";
    case SolveStatus::TimeLimit:
      return "time-limit";
    case SolveStatus::Cancelled:
      return "cancelled";
  }
  return "unknown";
}

SolveControl::SolveControl(const SolveRequest& request, const CostEvaluator& evaluator,
                           std::string_view algorithm)
    : request_(&request),
      algorithm_(algorithm),
      start_(std::chrono::steady_clock::now()),
      evals_at_start_(evaluator.evaluations()) {}

double SolveControl::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
}

long SolveControl::evaluations_used(const CostEvaluator& evaluator) const {
  return evaluator.evaluations() - evals_at_start_;
}

long SolveControl::remaining_evaluations(const CostEvaluator& evaluator) const {
  if (request_->max_evaluations <= 0) return LONG_MAX;
  return std::max(0L, request_->max_evaluations - evaluations_used(evaluator));
}

void SolveControl::mark_budget_exhausted_if_spent(const CostEvaluator& evaluator) {
  if (status_ == SolveStatus::Complete && request_->max_evaluations > 0 &&
      evaluations_used(evaluator) >= request_->max_evaluations) {
    status_ = SolveStatus::BudgetExhausted;
  }
}

void SolveControl::note_best(const Cost& cost) {
  if (cost.value < best_cost_) {
    best_cost_ = cost.value;
    best_feasible_ = cost.schedulable;
  }
}

bool SolveControl::should_stop(const CostEvaluator& evaluator) {
  if (status_ != SolveStatus::Complete) return true;  // sticky

  if (request_->cancel && request_->cancel->load(std::memory_order_relaxed)) {
    status_ = SolveStatus::Cancelled;
    return true;
  }
  if (request_->max_wall_seconds > 0.0 && elapsed_seconds() >= request_->max_wall_seconds) {
    status_ = SolveStatus::TimeLimit;
    return true;
  }
  const long used = evaluations_used(evaluator);
  if (request_->max_evaluations > 0 && used >= request_->max_evaluations) {
    status_ = SolveStatus::BudgetExhausted;
    return true;
  }
  if (request_->progress && used != last_reported_evals_) {
    last_reported_evals_ = used;
    SolveProgress progress;
    progress.algorithm = algorithm_;
    progress.evaluations = used;
    progress.max_evaluations = request_->max_evaluations;
    progress.elapsed_seconds = elapsed_seconds();
    progress.best_cost = best_cost_;
    progress.feasible = best_feasible_;
    if (!request_->progress(progress)) {
      status_ = SolveStatus::Cancelled;
      return true;
    }
  }
  return false;
}

// ---- OptimizerRegistry -----------------------------------------------------

namespace {

struct RegistryEntry {
  std::string description;
  OptimizerRegistry::Factory factory;
};

struct RegistryState {
  std::mutex mutex;
  std::map<std::string, RegistryEntry> entries;
};

RegistryState& registry_state() {
  static RegistryState state;
  return state;
}

std::string normalize_name(std::string_view name) {
  std::string out(name);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  // Legacy CLI spellings.
  if (out == "obccf" || out == "obc_cf") return "obc-cf";
  if (out == "obcee" || out == "obc_ee") return "obc-ee";
  return out;
}

}  // namespace

void OptimizerRegistry::register_optimizer(std::string name, std::string description,
                                           Factory factory) {
  RegistryState& state = registry_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.entries[normalize_name(name)] =
      RegistryEntry{std::move(description), std::move(factory)};
}

Expected<std::unique_ptr<Optimizer>> OptimizerRegistry::create(std::string_view name,
                                                               const OptimizerParams& params) {
  detail::ensure_builtin_optimizers_registered();
  RegistryState& state = registry_state();
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    const auto it = state.entries.find(normalize_name(name));
    if (it == state.entries.end()) {
      std::string known;
      for (const auto& [key, entry] : state.entries) {
        if (!known.empty()) known += ", ";
        known += key;
      }
      return make_error("unknown optimizer '" + std::string(name) +
                        "'; available: " + known);
    }
    factory = it->second.factory;  // invoke outside the lock
  }
  return factory(params);
}

std::vector<OptimizerInfo> OptimizerRegistry::list() {
  detail::ensure_builtin_optimizers_registered();
  RegistryState& state = registry_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  std::vector<OptimizerInfo> out;
  out.reserve(state.entries.size());
  for (const auto& [name, entry] : state.entries) {
    out.push_back(OptimizerInfo{name, entry.description});
  }
  return out;  // std::map iteration is already name-sorted
}

bool OptimizerRegistry::contains(std::string_view name) {
  detail::ensure_builtin_optimizers_registered();
  RegistryState& state = registry_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.entries.contains(normalize_name(name));
}

}  // namespace flexopt
