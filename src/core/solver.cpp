#include "flexopt/core/solver.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <climits>
#include <map>
#include <mutex>

#include "flexopt/core/config_builder.hpp"
#include "flexopt/core/tsn_search.hpp"
#include "flexopt/util/seed_mix.hpp"

namespace flexopt {

// ---- SolveControl ----------------------------------------------------------

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::Complete:
      return "complete";
    case SolveStatus::BudgetExhausted:
      return "budget-exhausted";
    case SolveStatus::TimeLimit:
      return "time-limit";
    case SolveStatus::Cancelled:
      return "cancelled";
  }
  return "unknown";
}

SolveControl::SolveControl(const SolveRequest& request, const CostEvaluator& evaluator,
                           std::string_view algorithm)
    : request_(&request),
      algorithm_(algorithm),
      start_(std::chrono::steady_clock::now()),
      evals_at_start_(evaluator.evaluations()) {}

double SolveControl::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
}

long SolveControl::evaluations_used(const CostEvaluator& evaluator) const {
  return evaluator.evaluations() - evals_at_start_;
}

long SolveControl::remaining_evaluations(const CostEvaluator& evaluator) const {
  if (request_->max_evaluations <= 0) return LONG_MAX;
  return std::max(0L, request_->max_evaluations - evaluations_used(evaluator));
}

void SolveControl::mark_budget_exhausted_if_spent(const CostEvaluator& evaluator) {
  if (status_ == SolveStatus::Complete && request_->max_evaluations > 0 &&
      evaluations_used(evaluator) >= request_->max_evaluations) {
    status_ = SolveStatus::BudgetExhausted;
  }
}

void SolveControl::note_best(const Cost& cost) {
  if (cost.value < best_cost_) {
    best_cost_ = cost.value;
    best_feasible_ = cost.schedulable;
  }
}

bool SolveControl::should_stop(const CostEvaluator& evaluator) {
  if (status_ != SolveStatus::Complete) return true;  // sticky

  if (request_->cancel && request_->cancel->load(std::memory_order_relaxed)) {
    status_ = SolveStatus::Cancelled;
    return true;
  }
  if (request_->max_wall_seconds > 0.0 && elapsed_seconds() >= request_->max_wall_seconds) {
    status_ = SolveStatus::TimeLimit;
    return true;
  }
  const long used = evaluations_used(evaluator);
  if (request_->max_evaluations > 0 && used >= request_->max_evaluations) {
    status_ = SolveStatus::BudgetExhausted;
    return true;
  }
  if (request_->progress && used != last_reported_evals_) {
    last_reported_evals_ = used;
    SolveProgress progress;
    progress.algorithm = algorithm_;
    progress.evaluations = used;
    progress.max_evaluations = request_->max_evaluations;
    progress.elapsed_seconds = elapsed_seconds();
    progress.best_cost = best_cost_;
    progress.feasible = best_feasible_;
    if (!request_->progress(progress)) {
      status_ = SolveStatus::Cancelled;
      return true;
    }
  }
  return false;
}

// ---- Optimizer::solve: multi-cluster coordinate descent --------------------

namespace {

/// Deterministic block-coordinate descent over the per-cluster
/// configuration product: each pass focuses the evaluator on one cluster
/// and lets the single-bus algorithm optimise that coordinate against the
/// full cross-cluster cost; a cluster's best config is accepted only when
/// it strictly improves the system cost.  Rounds repeat until a full round
/// brings no improvement, the round cap is hit, or a budget/limit fires.
/// Everything that feeds the result is a deterministic function of
/// (system, algorithm, base seed) — worker threads inside a pass (portfolio
/// members, evaluate_many) never change which configuration wins.
SolveReport solve_multicluster(Optimizer& algorithm, CostEvaluator& evaluator,
                               const SolveRequest& request) {
  constexpr int kMaxRounds = 3;
  const auto started = std::chrono::steady_clock::now();
  auto elapsed = [&started] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
  };
  const SystemModel& model = evaluator.system_model();
  const std::size_t C = model.cluster_count();
  // Work accounting aggregates the per-pass reports, not the parent
  // evaluator's counters: a portfolio pass races its members on sibling
  // evaluators whose analyses the parent never sees.
  long spent_evaluations = 0;
  auto spent = [&] { return spent_evaluations; };

  // Seed the incumbent with every cluster's minimal start configuration —
  // the same per-sender (FlexRay) / exact-fit-gate (TSN) minimal point
  // every per-cluster walk seeds from.
  SystemConfig incumbent;
  incumbent.clusters.resize(C);
  for (std::size_t c = 0; c < C; ++c) {
    incumbent.clusters[c] =
        minimal_start_cluster_config(*model.cluster_app(c), evaluator.params(),
                                     model.cluster_app(c)->cluster_backend(ClusterId{0}));
  }

  SolveReport report;
  Cost best{kInvalidConfigCost, false, 0};
  {
    // Charged by what actually ran: a repeat solve on the same evaluator
    // serves this from the system cache and spends nothing.
    const long evals_before = evaluator.evaluations();
    const EvaluatorCacheStats cache_before = evaluator.cache_stats();
    const auto initial = evaluator.evaluate_system(incumbent);
    const EvaluatorCacheStats cache_after = evaluator.cache_stats();
    spent_evaluations += evaluator.evaluations() - evals_before;
    report.cache_hits += cache_after.hits - cache_before.hits;
    report.cache_misses += cache_after.misses - cache_before.misses;
    if (initial.valid) best = initial.cost;
  }
  const long total_budget = request.max_evaluations;
  const long pass_share =
      total_budget > 0
          ? std::max(1L, total_budget / (static_cast<long>(kMaxRounds) * static_cast<long>(C)))
          : 0;

  SolveStatus status = SolveStatus::Complete;
  int pass_index = 0;
  for (int round = 0; round < kMaxRounds && status == SolveStatus::Complete; ++round) {
    bool improved = false;
    for (std::size_t c = 0; c < C && status == SolveStatus::Complete; ++c, ++pass_index) {
      if (request.cancel && request.cancel->load(std::memory_order_relaxed)) {
        status = SolveStatus::Cancelled;
        break;
      }
      if (total_budget > 0 && spent() >= total_budget) {
        status = SolveStatus::BudgetExhausted;
        break;
      }
      if (request.max_wall_seconds > 0.0 && elapsed() >= request.max_wall_seconds) {
        status = SolveStatus::TimeLimit;
        break;
      }

      SolveRequest pass_request;
      // SolveRequest::seed semantics carry over: a set seed is fanned out
      // per pass (repeat passes explore different trajectories); unset
      // keeps the per-algorithm payload's own seed, exactly like a
      // single-cluster solve.
      if (request.seed) {
        pass_request.seed = derive_seed(*request.seed, static_cast<std::uint64_t>(pass_index));
      }
      if (total_budget > 0) {
        pass_request.max_evaluations = std::min(pass_share, std::max(1L, total_budget - spent()));
      }
      if (request.max_wall_seconds > 0.0) {
        pass_request.max_wall_seconds = std::max(1e-3, request.max_wall_seconds - elapsed());
      }
      if (request.progress) {
        // Report descent-wide progress: pass-local counters are offset by
        // the work already spent and shown against the caller's budget,
        // so the CLI line advances monotonically instead of resetting per
        // pass.
        const long spent_before_pass = spent_evaluations;
        pass_request.progress = [&request, spent_before_pass,
                                 total_budget](const SolveProgress& p) {
          SolveProgress overall = p;
          overall.evaluations = spent_before_pass + p.evaluations;
          overall.max_evaluations = total_budget;
          return request.progress(overall);
        };
      }
      pass_request.cancel = request.cancel;

      if (model.cluster_app(c)->cluster_backend(ClusterId{0}) == ClusterBackendKind::Tsn) {
        // TSN coordinate: the single-bus algorithms cannot focus a TSN
        // cluster, so the pass is the deterministic TSN descent, scored
        // through the SystemConfig delta path against the same full
        // cross-cluster cost.
        const EvaluatorCacheStats cache_before = evaluator.cache_stats();
        TsnSearchResult tsn =
            tsn_coordinate_descent(evaluator, incumbent, static_cast<int>(c), pass_request);
        const EvaluatorCacheStats cache_after = evaluator.cache_stats();
        spent_evaluations += tsn.evaluations;
        report.cache_hits += cache_after.hits - cache_before.hits;
        report.cache_misses += cache_after.misses - cache_before.misses;
        if (tsn.status == SolveStatus::Cancelled) {
          status = SolveStatus::Cancelled;
        } else if (tsn.status == SolveStatus::TimeLimit && request.max_wall_seconds > 0.0) {
          status = SolveStatus::TimeLimit;
        }
        if (tsn.improved && tsn.cost.value < best.value) {
          best = tsn.cost;
          incumbent.clusters[c] = ClusterConfig::tsn_switch(std::move(tsn.config));
          improved = true;
        }
        continue;
      }

      evaluator.set_focus(incumbent, static_cast<int>(c));
      SolveReport pass = algorithm.solve_cluster(evaluator, pass_request);
      spent_evaluations += pass.outcome.evaluations;
      report.cache_hits += pass.cache_hits;
      report.cache_misses += pass.cache_misses;
      report.delta_evaluations += pass.delta_evaluations;
      report.components_recomputed += pass.components_recomputed;
      report.components_reused += pass.components_reused;

      // Built by append rather than operator+ chaining: GCC 12's inliner
      // raises a spurious -Wrestrict on the temporary chain.
      std::string prefix = "c";
      prefix += std::to_string(c);
      prefix += 'r';
      prefix += std::to_string(round);
      prefix += '/';
      for (MemberSolveReport member : pass.members) {
        member.member = prefix + member.member;
        report.members.push_back(std::move(member));
      }
      if (pass.status == SolveStatus::Cancelled) {
        status = SolveStatus::Cancelled;
      } else if (pass.status == SolveStatus::TimeLimit && request.max_wall_seconds > 0.0) {
        // The pass ran out of the caller's wall-clock budget mid-solve; a
        // truncated descent must not report "complete".
        status = SolveStatus::TimeLimit;
      }
      if (pass.outcome.cost.value < best.value) {
        best = pass.outcome.cost;
        incumbent.clusters[c] = ClusterConfig::flexray_bus(pass.outcome.config);
        improved = true;
        if (!pass.winner.empty()) report.winner = prefix + pass.winner;
      }
    }
    evaluator.clear_focus();
    if (!improved && status == SolveStatus::Complete) break;  // coordinate-wise optimum
  }
  evaluator.clear_focus();
  if (status == SolveStatus::Complete && total_budget > 0 && spent() >= total_budget) {
    status = SolveStatus::BudgetExhausted;
  }

  report.status = status;
  report.outcome.system = incumbent;
  if (incumbent.clusters[0].kind == ClusterBackendKind::FlexRay) {
    report.outcome.config = incumbent.clusters[0].flexray;
  }
  report.outcome.cost = best;
  report.outcome.feasible = best.schedulable;
  report.outcome.evaluations = spent();
  report.outcome.wall_seconds = elapsed();
  report.outcome.algorithm =
      std::string(algorithm.name()) + " (" + std::to_string(C) + "-cluster descent)";
  return report;
}

/// Degenerate single-cluster TSN solve: no FlexRay coordinate exists for
/// solve_cluster to search, so the whole solve is one TSN descent from the
/// minimal start configuration.  Every registry algorithm maps to the same
/// deterministic descent here — the per-algorithm tuning payloads have no
/// TSN knobs (yet).
SolveReport solve_single_tsn(CostEvaluator& evaluator, const SolveRequest& request) {
  const auto started = std::chrono::steady_clock::now();
  SystemConfig incumbent;
  incumbent.clusters.push_back(minimal_start_cluster_config(
      *evaluator.system_model().cluster_app(0), evaluator.params(), ClusterBackendKind::Tsn));
  const EvaluatorCacheStats cache_before = evaluator.cache_stats();
  TsnSearchResult tsn = tsn_coordinate_descent(evaluator, incumbent, 0, request);
  const EvaluatorCacheStats cache_after = evaluator.cache_stats();

  SolveReport report;
  report.status = tsn.status;
  incumbent.clusters[0] = ClusterConfig::tsn_switch(std::move(tsn.config));
  report.outcome.system = std::move(incumbent);
  report.outcome.cost = tsn.cost;
  report.outcome.feasible = tsn.cost.schedulable;
  report.outcome.evaluations = tsn.evaluations;
  report.outcome.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
  report.outcome.algorithm = "tsn-descent";
  report.cache_hits = cache_after.hits - cache_before.hits;
  report.cache_misses = cache_after.misses - cache_before.misses;
  return report;
}

}  // namespace

SolveReport Optimizer::solve(CostEvaluator& evaluator, const SolveRequest& request) {
  const SystemModel& model = evaluator.system_model();
  if (!evaluator.focused() && evaluator.cluster_count() == 1 && model.cluster_app(0) &&
      model.cluster_app(0)->cluster_backend(ClusterId{0}) == ClusterBackendKind::Tsn) {
    return solve_single_tsn(evaluator, request);
  }
  if (evaluator.cluster_count() == 1 || evaluator.focused()) {
    SolveReport report = solve_cluster(evaluator, request);
    if (report.outcome.system.clusters.empty()) {
      if (evaluator.focused()) {
        report.outcome.system = evaluator.focus_context();
        report.outcome.system.clusters[static_cast<std::size_t>(evaluator.focus_cluster())] =
            ClusterConfig::flexray_bus(report.outcome.config);
      } else {
        report.outcome.system = SystemConfig::single(report.outcome.config);
      }
    }
    return report;
  }
  return solve_multicluster(*this, evaluator, request);
}

// ---- OptimizerRegistry -----------------------------------------------------

namespace {

struct RegistryEntry {
  std::string description;
  OptimizerRegistry::Factory factory;
};

struct RegistryState {
  std::mutex mutex;
  std::map<std::string, RegistryEntry> entries;
};

RegistryState& registry_state() {
  static RegistryState state;
  return state;
}

std::string normalize_name(std::string_view name) {
  std::string out(name);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  // Legacy CLI spellings.
  if (out == "obccf" || out == "obc_cf") return "obc-cf";
  if (out == "obcee" || out == "obc_ee") return "obc-ee";
  return out;
}

}  // namespace

void OptimizerRegistry::register_optimizer(std::string name, std::string description,
                                           Factory factory) {
  RegistryState& state = registry_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.entries[normalize_name(name)] =
      RegistryEntry{std::move(description), std::move(factory)};
}

Expected<std::unique_ptr<Optimizer>> OptimizerRegistry::create(std::string_view name,
                                                               const OptimizerParams& params) {
  detail::ensure_builtin_optimizers_registered();
  RegistryState& state = registry_state();
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    const auto it = state.entries.find(normalize_name(name));
    if (it == state.entries.end()) {
      std::string known;
      for (const auto& [key, entry] : state.entries) {
        if (!known.empty()) known += ", ";
        known += key;
      }
      return make_error("unknown optimizer '" + std::string(name) +
                        "'; available: " + known);
    }
    factory = it->second.factory;  // invoke outside the lock
  }
  return factory(params);
}

std::vector<OptimizerInfo> OptimizerRegistry::list() {
  detail::ensure_builtin_optimizers_registered();
  RegistryState& state = registry_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  std::vector<OptimizerInfo> out;
  out.reserve(state.entries.size());
  for (const auto& [name, entry] : state.entries) {
    out.push_back(OptimizerInfo{name, entry.description});
  }
  return out;  // std::map iteration is already name-sorted
}

bool OptimizerRegistry::contains(std::string_view name) {
  detail::ensure_builtin_optimizers_registered();
  RegistryState& state = registry_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.entries.contains(normalize_name(name));
}

}  // namespace flexopt
