#include "flexopt/core/mapping.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <numeric>
#include <utility>

#include "flexopt/core/obc.hpp"
#include "flexopt/util/rng.hpp"

namespace flexopt {

Expected<bool> LogicalApplication::validate() const {
  if (node_count < 2) return make_error("logical application needs at least 2 nodes");
  if (graphs.empty() || tasks.empty()) return make_error("logical application is empty");
  for (const LogicalGraph& g : graphs) {
    if (g.period <= 0 || g.deadline <= 0) {
      return make_error("graph '" + g.name + "' has non-positive period/deadline");
    }
  }
  for (const LogicalTask& t : tasks) {
    if (t.graph >= graphs.size()) return make_error("task '" + t.name + "' in unknown graph");
    if (t.wcet <= 0) return make_error("task '" + t.name + "' has non-positive WCET");
  }
  for (const LogicalFlow& f : flows) {
    if (f.from >= tasks.size() || f.to >= tasks.size()) {
      return make_error("flow references unknown task");
    }
    if (tasks[f.from].graph != tasks[f.to].graph) {
      return make_error("flow crosses task graphs");
    }
    if (f.size_bytes <= 0) return make_error("flow has non-positive size");
  }
  return true;
}

Expected<Application> LogicalApplication::materialize(std::span<const int> mapping) const {
  if (auto ok = validate(); !ok.ok()) return ok.error();
  if (mapping.size() != tasks.size()) return make_error("mapping size mismatch");
  for (const int node : mapping) {
    if (node < 0 || node >= node_count) return make_error("mapping assigns unknown node");
  }

  Application app;
  for (int n = 0; n < node_count; ++n) app.add_node("N" + std::to_string(n));
  std::vector<GraphId> graph_ids;
  graph_ids.reserve(graphs.size());
  for (const LogicalGraph& g : graphs) {
    graph_ids.push_back(app.add_graph(g.name, g.period, g.deadline));
  }
  std::vector<TaskId> task_ids;
  task_ids.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const LogicalTask& t = tasks[i];
    const bool tt = graphs[t.graph].time_triggered;
    task_ids.push_back(app.add_task(graph_ids[t.graph], t.name,
                                    static_cast<NodeId>(mapping[i]), t.wcet,
                                    tt ? TaskPolicy::Scs : TaskPolicy::Fps, t.priority));
  }
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const LogicalFlow& f = flows[i];
    if (mapping[f.from] == mapping[f.to]) {
      app.add_dependency(task_ids[f.from], task_ids[f.to]);
    } else {
      const bool tt = graphs[tasks[f.from].graph].time_triggered;
      app.add_message(graph_ids[tasks[f.from].graph],
                      "flow" + std::to_string(i), task_ids[f.from], task_ids[f.to],
                      f.size_bytes, tt ? MessageClass::Static : MessageClass::Dynamic,
                      f.priority);
    }
  }
  if (auto fin = app.finalize(); !fin.ok()) return fin.error();
  return app;
}

std::vector<int> LogicalApplication::balanced_mapping() const {
  std::vector<double> load(static_cast<std::size_t>(node_count), 0.0);
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);
  auto density = [&](std::size_t i) {
    return static_cast<double>(tasks[i].wcet) /
           static_cast<double>(graphs[tasks[i].graph].period);
  };
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return density(a) > density(b); });
  std::vector<int> mapping(tasks.size(), 0);
  for (const std::size_t i : order) {
    const auto lightest =
        std::min_element(load.begin(), load.end()) - load.begin();
    mapping[i] = static_cast<int>(lightest);
    load[static_cast<std::size_t>(lightest)] += density(i);
  }
  return mapping;
}

Expected<MappingOutcome> optimize_mapping(const LogicalApplication& logical,
                                          const BusParams& params,
                                          const AnalysisOptions& analysis,
                                          DynSegmentStrategy& dyn_strategy,
                                          const MappingOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  if (auto ok = logical.validate(); !ok.ok()) return ok.error();
  Rng rng(options.seed);

  MappingOutcome outcome;

  /// Scores one mapping with a full bus access optimisation; returns the
  /// bus outcome (invalid-cost outcome if materialisation fails).
  auto score = [&](const std::vector<int>& mapping) -> OptimizationOutcome {
    ++outcome.mappings_tried;
    auto app = logical.materialize(mapping);
    if (!app.ok()) {
      OptimizationOutcome bad;
      bad.algorithm = "mapping/unmaterialisable";
      return bad;
    }
    // Move the materialised application straight into shared ownership —
    // one mapping candidate = one evaluator, no extra copy.
    CostEvaluator evaluator(std::make_shared<const Application>(std::move(app).value()),
                            params, analysis);
    OptimizationOutcome bus = optimize_obc(evaluator, dyn_strategy);
    outcome.evaluations += bus.evaluations;
    return bus;
  };

  std::vector<int> best_mapping = logical.balanced_mapping();
  outcome.bus = score(best_mapping);
  outcome.mapping = best_mapping;

  for (int restart = 0; restart < std::max(1, options.restarts); ++restart) {
    std::vector<int> current = restart == 0 ? best_mapping : logical.balanced_mapping();
    if (restart > 0) {
      // Perturb the balanced start so restarts explore different basins.
      for (int k = 0; k < 3; ++k) {
        current[rng.index(current.size())] =
            static_cast<int>(rng.index(static_cast<std::size_t>(logical.node_count)));
      }
    }
    OptimizationOutcome current_bus = restart == 0 ? outcome.bus : score(current);
    if (current_bus.cost.value < outcome.bus.cost.value) {
      outcome.bus = current_bus;
      outcome.mapping = current;
    }

    for (int move = 0; move < options.moves_per_restart; ++move) {
      if (options.stop_at_first_feasible && outcome.bus.feasible) break;
      std::vector<int> neighbour = current;
      const std::size_t task = rng.index(neighbour.size());
      int node = neighbour[task];
      while (node == neighbour[task]) {
        node = static_cast<int>(rng.index(static_cast<std::size_t>(logical.node_count)));
      }
      neighbour[task] = node;

      const OptimizationOutcome bus = score(neighbour);
      if (bus.cost.value < current_bus.cost.value) {  // first-improvement hill climb
        current = std::move(neighbour);
        current_bus = bus;
        if (bus.cost.value < outcome.bus.cost.value) {
          outcome.bus = bus;
          outcome.mapping = current;
        }
      }
    }
    if (options.stop_at_first_feasible && outcome.bus.feasible) break;
  }

  outcome.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return outcome;
}

}  // namespace flexopt
