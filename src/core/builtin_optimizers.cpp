#include <memory>
#include <utility>

#include "flexopt/core/portfolio.hpp"
#include "flexopt/core/solver.hpp"

/// \file builtin_optimizers.cpp
/// The four algorithms of the paper behind the unified Optimizer interface,
/// registered under the names the Fig. 9 evaluation uses: bbc, obc-ee,
/// obc-cf, sa.  Each wrapper builds a SolveControl from the SolveRequest,
/// runs the algorithm core, and reports how the run ended plus the
/// evaluator-cache deltas.

namespace flexopt {
namespace {

template <typename Fn>
SolveReport run_with_control(CostEvaluator& evaluator, const SolveRequest& request,
                             std::string_view algorithm, Fn&& run) {
  const EvaluatorCacheStats before = evaluator.cache_stats();
  const EvaluatorWorkStats work_before = evaluator.work_stats();
  SolveControl control(request, evaluator, algorithm);
  SolveReport report;
  report.outcome = run(control);
  report.status = control.status();
  const EvaluatorCacheStats after = evaluator.cache_stats();
  report.cache_hits = after.hits - before.hits;
  report.cache_misses = after.misses - before.misses;
  const EvaluatorWorkStats work_after = evaluator.work_stats();
  report.delta_evaluations = work_after.delta_evaluations - work_before.delta_evaluations;
  report.components_recomputed =
      work_after.analysis.components() - work_before.analysis.components();
  report.components_reused = work_after.components_reused() - work_before.components_reused();
  report.profile = work_after.since(work_before);
  return report;
}

class BbcOptimizer final : public Optimizer {
 public:
  explicit BbcOptimizer(BbcOptions options) : options_(options) {}
  [[nodiscard]] std::string_view name() const override { return "bbc"; }
  SolveReport solve_cluster(CostEvaluator& evaluator, const SolveRequest& request) override {
    return run_with_control(evaluator, request, "BBC", [&](SolveControl& control) {
      return optimize_bbc(evaluator, options_, &control);
    });
  }

 private:
  BbcOptions options_;
};

class ObcEeOptimizer final : public Optimizer {
 public:
  explicit ObcEeOptimizer(ObcEeParams params) : params_(std::move(params)) {}
  [[nodiscard]] std::string_view name() const override { return "obc-ee"; }
  SolveReport solve_cluster(CostEvaluator& evaluator, const SolveRequest& request) override {
    return run_with_control(evaluator, request, "OBC-EE", [&](SolveControl& control) {
      ExhaustiveDynSearch strategy(params_.dyn);
      return optimize_obc(evaluator, strategy, params_.obc, &control);
    });
  }

 private:
  ObcEeParams params_;
};

class ObcCfOptimizer final : public Optimizer {
 public:
  explicit ObcCfOptimizer(ObcCfParams params) : params_(std::move(params)) {}
  [[nodiscard]] std::string_view name() const override { return "obc-cf"; }
  SolveReport solve_cluster(CostEvaluator& evaluator, const SolveRequest& request) override {
    return run_with_control(evaluator, request, "OBC-CF", [&](SolveControl& control) {
      CurveFitDynSearch strategy(params_.dyn);
      return optimize_obc(evaluator, strategy, params_.obc, &control);
    });
  }

 private:
  ObcCfParams params_;
};

class SaOptimizer final : public Optimizer {
 public:
  explicit SaOptimizer(SaOptions options) : options_(options) {}
  [[nodiscard]] std::string_view name() const override { return "sa"; }
  SolveReport solve_cluster(CostEvaluator& evaluator, const SolveRequest& request) override {
    SaOptions options = options_;
    if (request.seed) options.seed = *request.seed;
    if (request.max_evaluations > 0) options.max_evaluations = request.max_evaluations;
    return run_with_control(evaluator, request, "SA", [&](SolveControl& control) {
      OptimizationOutcome outcome = optimize_sa(evaluator, options, &control);
      // SA's own loop enforces the same budget and usually exits before the
      // control notices; fix up the status so the report says *why* it
      // ended (BudgetExhausted, not Complete) when the budget was the reason.
      control.mark_budget_exhausted_if_spent(evaluator);
      return outcome;
    });
  }

 private:
  SaOptions options_;
};

/// Extracts the expected payload type, accepting monostate as "defaults".
template <typename Params, typename Impl>
Expected<std::unique_ptr<Optimizer>> make_from(const OptimizerParams& params,
                                               const char* name) {
  if (std::holds_alternative<std::monostate>(params)) {
    return std::unique_ptr<Optimizer>(std::make_unique<Impl>(Params{}));
  }
  if (const Params* p = std::get_if<Params>(&params)) {
    return std::unique_ptr<Optimizer>(std::make_unique<Impl>(*p));
  }
  return make_error(std::string("optimizer '") + name +
                    "' was given a parameter payload of the wrong type");
}

}  // namespace

namespace detail {

void ensure_builtin_optimizers_registered() {
  static const bool registered = [] {
    OptimizerRegistry::register_optimizer(
        "bbc", "Basic Bus Configuration: minimal ST segment + DYN length sweep (Fig. 5)",
        [](const OptimizerParams& p) { return make_from<BbcOptions, BbcOptimizer>(p, "bbc"); });
    OptimizerRegistry::register_optimizer(
        "obc-ee", "Optimised Bus Configuration, exhaustive DYN length search (Fig. 6)",
        [](const OptimizerParams& p) {
          return make_from<ObcEeParams, ObcEeOptimizer>(p, "obc-ee");
        });
    OptimizerRegistry::register_optimizer(
        "obc-cf", "Optimised Bus Configuration, curve-fitting DYN length search (Fig. 6+8)",
        [](const OptimizerParams& p) {
          return make_from<ObcCfParams, ObcCfOptimizer>(p, "obc-cf");
        });
    OptimizerRegistry::register_optimizer(
        "sa", "Simulated annealing over the full configuration space (Section 7 baseline)",
        [](const OptimizerParams& p) { return make_from<SaOptions, SaOptimizer>(p, "sa"); });
    OptimizerRegistry::register_optimizer(
        "portfolio",
        "Racing portfolio of registry members (seeds derived per member; deterministic winner)",
        [](const OptimizerParams& p) -> Expected<std::unique_ptr<Optimizer>> {
          if (std::holds_alternative<std::monostate>(p)) {
            return make_portfolio_optimizer(PortfolioSpec{});
          }
          if (const PortfolioSpec* spec = std::get_if<PortfolioSpec>(&p)) {
            return make_portfolio_optimizer(*spec);
          }
          return make_error(
              "optimizer 'portfolio' was given a parameter payload of the wrong type");
        });
    return true;
  }();
  (void)registered;
}

}  // namespace detail
}  // namespace flexopt
