#include "flexopt/core/config_builder.hpp"

#include <algorithm>
#include <numeric>

namespace flexopt {

std::vector<int> assign_frame_ids_by_criticality(const Application& app,
                                                 const BusParams& params) {
  // Message communication times for the longest-path metric (Eq. 4).
  std::vector<Time> costs(app.message_count());
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    costs[m] = params.frame_duration(app.messages()[m].size_bytes);
  }

  std::vector<std::uint32_t> dyn;
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    if (app.messages()[m].cls == MessageClass::Dynamic) dyn.push_back(m);
  }
  std::vector<Time> crit(app.message_count(), 0);
  for (const std::uint32_t m : dyn) {
    crit[m] = app.criticality(static_cast<MessageId>(m), costs);
  }
  std::sort(dyn.begin(), dyn.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (crit[a] != crit[b]) return crit[a] < crit[b];  // most critical first
    return a < b;
  });

  std::vector<int> fids(app.message_count(), 0);
  int next = 1;
  for (const std::uint32_t m : dyn) fids[m] = next++;
  return fids;
}

std::vector<int> assign_frame_ids_arbitrary(const Application& app) {
  std::vector<int> fids(app.message_count(), 0);
  int next = 1;
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    if (app.messages()[m].cls == MessageClass::Dynamic) fids[m] = next++;
  }
  return fids;
}

std::vector<int> assign_frame_ids_shared_per_node(const Application& app) {
  std::vector<int> fid_of_node(app.node_count(), 0);
  std::vector<int> fids(app.message_count(), 0);
  int next = 1;
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    if (app.messages()[m].cls != MessageClass::Dynamic) continue;
    const std::size_t node = index_of(app.task(app.messages()[m].sender).node);
    if (fid_of_node[node] == 0) fid_of_node[node] = next++;
    fids[m] = fid_of_node[node];
  }
  return fids;
}

std::vector<NodeId> st_sender_nodes(const Application& app) {
  std::vector<bool> sends(app.node_count(), false);
  for (const auto& m : app.messages()) {
    if (m.cls == MessageClass::Static) sends[index_of(app.task(m.sender).node)] = true;
  }
  std::vector<NodeId> out;
  for (std::size_t n = 0; n < sends.size(); ++n) {
    if (sends[n]) out.push_back(static_cast<NodeId>(n));
  }
  return out;
}

std::vector<int> st_message_count_per_node(const Application& app) {
  std::vector<int> counts(app.node_count(), 0);
  for (const auto& m : app.messages()) {
    if (m.cls == MessageClass::Static) ++counts[index_of(app.task(m.sender).node)];
  }
  return counts;
}

std::vector<NodeId> assign_static_slots(const Application& app, int slot_count) {
  const std::vector<NodeId> senders = st_sender_nodes(app);
  if (senders.empty() || slot_count < static_cast<int>(senders.size())) return {};
  const std::vector<int> msg_counts = st_message_count_per_node(app);

  // Quota proportional to ST message share, at least one slot per sender.
  const int total_msgs =
      std::accumulate(senders.begin(), senders.end(), 0,
                      [&](int acc, NodeId n) { return acc + msg_counts[index_of(n)]; });
  std::vector<int> quota(senders.size(), 1);
  int assigned = static_cast<int>(senders.size());
  // Distribute the remaining slots by largest fractional share (method of
  // largest remainders over the message counts).
  while (assigned < slot_count) {
    std::size_t best = 0;
    double best_deficit = -1.0;
    for (std::size_t i = 0; i < senders.size(); ++i) {
      const double share = total_msgs == 0
                               ? 1.0 / static_cast<double>(senders.size())
                               : static_cast<double>(msg_counts[index_of(senders[i])]) /
                                     static_cast<double>(total_msgs);
      const double deficit = share * static_cast<double>(slot_count) - quota[i];
      if (deficit > best_deficit) {
        best_deficit = deficit;
        best = i;
      }
    }
    ++quota[best];
    ++assigned;
  }

  // Interleave round-robin: one slot per sender per round while quota lasts,
  // spreading each node's slots across the cycle.
  std::vector<NodeId> owners;
  owners.reserve(static_cast<std::size_t>(slot_count));
  for (int round = 0; static_cast<int>(owners.size()) < slot_count; ++round) {
    for (std::size_t i = 0; i < senders.size(); ++i) {
      if (quota[i] > round) owners.push_back(senders[i]);
    }
  }
  return owners;
}

Time min_static_slot_len(const Application& app, const BusParams& params) {
  Time max_frame = 0;
  for (const auto& m : app.messages()) {
    if (m.cls == MessageClass::Static) {
      max_frame = std::max(max_frame, params.frame_duration(m.size_bytes));
    }
  }
  if (max_frame == 0) return 0;
  return ceil_div(max_frame, params.gd_macrotick) * params.gd_macrotick;
}

DynBounds dyn_segment_bounds(const Application& app, const BusParams& params, Time st_len) {
  DynBounds bounds;
  int dyn_msgs = 0;
  int largest = 0;
  for (const auto& m : app.messages()) {
    if (m.cls != MessageClass::Dynamic) continue;
    ++dyn_msgs;
    largest = std::max(largest, params.frame_minislots(m.size_bytes));
  }
  if (dyn_msgs == 0) {
    bounds.min_minislots = 0;
    bounds.max_minislots = 0;
    return bounds;
  }
  // With unique FrameIDs the highest slot number is dyn_msgs; it must still
  // satisfy the pLatestTx gate of its sender, i.e.
  //   dyn_msgs <= count - largest + 1  =>  count >= dyn_msgs + largest - 1.
  bounds.min_minislots = dyn_msgs + largest - 1;
  const Time budget = SpecLimits::kMaxCycle - st_len;
  const auto budget_slots = budget >= 0 ? budget / params.gd_minislot : 0;
  bounds.max_minislots =
      static_cast<int>(std::min<std::int64_t>(SpecLimits::kMaxMinislots, budget_slots));
  return bounds;
}

StartConfig minimal_start_config(const Application& app, const BusParams& params) {
  StartConfig start;
  start.st_senders = st_sender_nodes(app);
  start.config.frame_id = assign_frame_ids_by_criticality(app, params);
  start.config.static_slot_count = static_cast<int>(start.st_senders.size());
  start.config.static_slot_len = min_static_slot_len(app, params);
  start.config.static_slot_owner = start.st_senders;
  start.bounds = dyn_segment_bounds(
      app, params,
      static_cast<Time>(start.config.static_slot_count) * start.config.static_slot_len);
  if (start.bounds.feasible()) start.config.minislot_count = start.bounds.min_minislots;
  return start;
}

TsnConfig minimal_start_tsn_config(const Application& app) {
  TsnConfig config;
  const std::size_t M = app.message_count();
  config.gates.assign(M, TsnGateWindow{});
  config.et_priority.assign(M, 0);

  Time cycle = 0;
  for (std::uint32_t m = 0; m < M; ++m) {
    if (app.messages()[m].cls != MessageClass::Static) continue;
    cycle = std::gcd(cycle, app.period_of(ActivityRef::message(static_cast<MessageId>(m))));
  }
  if (cycle == 0) {
    // No ST traffic: the gates never close, so any divisor of the
    // hyper-period works — the smallest graph period is one.
    cycle = app.graphs()[0].period;
    for (const TaskGraph& g : app.graphs()) cycle = std::min(cycle, g.period);
  }
  config.cycle = cycle;

  std::vector<Time> durations(M);
  for (std::uint32_t m = 0; m < M; ++m) {
    durations[m] = tsn_frame_duration(app.messages()[m].size_bytes, config.link_rate_mbps);
  }

  Time cursor = 0;
  for (std::uint32_t m = 0; m < M; ++m) {
    if (app.messages()[m].cls != MessageClass::Static) continue;
    config.gates[m] = TsnGateWindow{cursor, durations[m]};
    cursor += durations[m];
  }

  std::vector<std::uint32_t> et;
  for (std::uint32_t m = 0; m < M; ++m) {
    if (app.messages()[m].cls == MessageClass::Dynamic) et.push_back(m);
  }
  std::sort(et.begin(), et.end(), [&](std::uint32_t a, std::uint32_t b) {
    const Time ca = app.criticality(static_cast<MessageId>(a), durations);
    const Time cb = app.criticality(static_cast<MessageId>(b), durations);
    if (ca != cb) return ca < cb;  // most critical first (smallest laxity)
    return a < b;
  });
  for (std::size_t rank = 0; rank < et.size(); ++rank) {
    config.et_priority[et[rank]] = static_cast<int>(rank);
  }
  return config;
}

ClusterConfig minimal_start_cluster_config(const Application& app, const BusParams& params,
                                           ClusterBackendKind kind) {
  if (kind == ClusterBackendKind::Tsn) {
    return ClusterConfig::tsn_switch(minimal_start_tsn_config(app));
  }
  return ClusterConfig::flexray_bus(minimal_start_config(app, params).config);
}

}  // namespace flexopt
