#include "flexopt/core/delta_move.hpp"

#include <algorithm>
#include <utility>

namespace flexopt {

DeltaMove DeltaMove::between(const BusConfig& base, BusConfig next) {
  DeltaMove move;
  move.st_slot_count_changed = base.static_slot_count != next.static_slot_count;
  move.st_slot_len_changed = base.static_slot_len != next.static_slot_len;
  move.st_owner_changed = base.static_slot_owner != next.static_slot_owner;
  move.minislot_count_changed = base.minislot_count != next.minislot_count;
  if (base.frame_id.size() == next.frame_id.size()) {
    for (std::size_t m = 0; m < next.frame_id.size(); ++m) {
      if (base.frame_id[m] == next.frame_id[m]) continue;
      move.frame_id_changed.push_back(static_cast<std::uint32_t>(m));
      move.frame_id_window_min = std::min(
          move.frame_id_window_min, std::min(base.frame_id[m], next.frame_id[m]));
      move.frame_id_window_max = std::max(
          move.frame_id_window_max, std::max(base.frame_id[m], next.frame_id[m]));
    }
  } else {
    // A resized FrameID vector is not a neighbour move; treat every
    // message as changed so the delta path degrades to a full recompute.
    for (std::size_t m = 0; m < next.frame_id.size(); ++m) {
      move.frame_id_changed.push_back(static_cast<std::uint32_t>(m));
    }
    move.frame_id_window_min = 1;
    move.frame_id_window_max = std::numeric_limits<int>::max() - 1;
  }
  move.config = std::move(next);
  return move;
}

DeltaMove DeltaMove::tsn_between(const TsnConfig& base, TsnConfig next, int cluster) {
  DeltaMove move;
  move.backend = ClusterBackendKind::Tsn;
  move.cluster = cluster;
  move.tsn_changed = !(base == next);
  move.tsn = std::move(next);
  return move;
}

AnalysisInvalidation DeltaMove::invalidation() const {
  AnalysisInvalidation inv;
  inv.st_slot_count_changed = st_slot_count_changed;
  inv.st_slot_len_changed = st_slot_len_changed;
  inv.st_owner_changed = st_owner_changed;
  inv.minislot_count_changed = minislot_count_changed;
  inv.changed_message_count = static_cast<std::uint32_t>(frame_id_changed.size());
  inv.frame_id_window_min = frame_id_window_min;
  inv.frame_id_window_max = frame_id_window_max;
  return inv;
}

}  // namespace flexopt
