#include "flexopt/core/bbc.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

#include "flexopt/core/config_builder.hpp"
#include "flexopt/core/detail/batch_sweep.hpp"
#include "flexopt/core/solve_types.hpp"

namespace flexopt {

OptimizationOutcome optimize_bbc(CostEvaluator& evaluator, const BbcOptions& options,
                                 SolveControl* control) {
  const auto t0 = std::chrono::steady_clock::now();
  const Application& app = evaluator.application();
  const BusParams& params = evaluator.params();
  const long evals_before = evaluator.evaluations();

  OptimizationOutcome outcome;
  outcome.algorithm = "BBC";

  // Fig. 5 lines 1-4: FrameIDs by criticality, minimal static segment.
  BusConfig base;
  base.frame_id = assign_frame_ids_by_criticality(app, params);
  const std::vector<NodeId> senders = st_sender_nodes(app);
  base.static_slot_count = static_cast<int>(senders.size());
  base.static_slot_len = min_static_slot_len(app, params);
  base.static_slot_owner = senders;  // one slot per sender, round robin

  const Time st_len = static_cast<Time>(base.static_slot_count) * base.static_slot_len;
  const DynBounds bounds = dyn_segment_bounds(app, params, st_len);
  if (!bounds.feasible()) {
    outcome.evaluations = evaluator.evaluations() - evals_before;
    return outcome;  // no admissible DYN length: report invalid-cost outcome
  }

  int stride = options.dyn_stride_minislots;
  if (stride <= 0) {
    const int span = bounds.max_minislots - bounds.min_minislots;
    stride = std::max(1, span / std::max(1, options.max_sweep_points - 1));
  }

  // Fig. 5 lines 5-12: sweep the DYN segment length in parallel batches,
  // keep the best cost (in-order strictly-better selection == serial sweep).
  detail::batched_minislot_sweep(
      evaluator, base, bounds.min_minislots, bounds.max_minislots, stride, control,
      [&](int minislots, const CostEvaluator::Evaluation& eval) {
        if (eval.cost.value < outcome.cost.value) {
          outcome.cost = eval.cost;
          outcome.config = base;
          outcome.config.minislot_count = minislots;
          outcome.feasible = eval.cost.schedulable;
          if (control != nullptr) control->note_best(outcome.cost);
        }
      });

  outcome.evaluations = evaluator.evaluations() - evals_before;
  outcome.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return outcome;
}

}  // namespace flexopt
