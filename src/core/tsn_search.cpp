#include "flexopt/core/tsn_search.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace flexopt {

namespace {

/// Enumerates the neighbourhood of `config` in a fixed order, handing each
/// candidate to `visit` until one is accepted (visit returns true) or the
/// neighbourhood is exhausted.  Returns whether a candidate was accepted —
/// the first-improvement restart signal.
template <typename Visit>
bool sweep_neighbourhood(const Application& app, const TsnConfig& config, Visit&& visit) {
  const std::size_t M = app.message_count();
  std::vector<Time> durations(M, 0);
  for (std::uint32_t m = 0; m < M; ++m) {
    durations[m] = tsn_frame_duration(app.messages()[m].size_bytes, config.link_rate_mbps);
  }

  // 1. Gate offset slides: one window length earlier / later, clamped to
  //    the cycle.  Moves a window off a congested port phase.
  for (std::uint32_t m = 0; m < M; ++m) {
    const TsnGateWindow gate = config.gates[m];
    if (gate.length <= 0) continue;  // ET message: no window to slide
    const Time max_offset = std::max<Time>(0, config.cycle - gate.length);
    for (const Time step : {-gate.length, gate.length}) {
      const Time offset = std::clamp<Time>(gate.offset + step, 0, max_offset);
      if (offset == gate.offset) continue;
      TsnConfig next = config;
      next.gates[m].offset = offset;
      if (visit(std::move(next))) return true;
    }
  }

  // 2. Gate lengths: shrink to the exact frame duration (returns closed
  //    time to the ET traffic), or grow by one duration (headroom for a
  //    jittered release), clamped to the cycle end.
  for (std::uint32_t m = 0; m < M; ++m) {
    const TsnGateWindow gate = config.gates[m];
    if (gate.length <= 0) continue;
    if (gate.length > durations[m]) {
      TsnConfig next = config;
      next.gates[m].length = durations[m];
      if (visit(std::move(next))) return true;
    }
    const Time grown =
        std::min<Time>(gate.length + durations[m], std::max<Time>(0, config.cycle - gate.offset));
    if (grown > gate.length) {
      TsnConfig next = config;
      next.gates[m].length = grown;
      if (visit(std::move(next))) return true;
    }
  }

  // 3. Adjacent ET priority swaps, in rank order — bubble steps through the
  //    strict-priority order, the TSN analogue of FrameID reassignment.
  std::vector<std::uint32_t> et;
  for (std::uint32_t m = 0; m < M; ++m) {
    if (app.messages()[m].cls == MessageClass::Dynamic) et.push_back(m);
  }
  std::sort(et.begin(), et.end(), [&config](std::uint32_t a, std::uint32_t b) {
    if (config.et_priority[a] != config.et_priority[b]) {
      return config.et_priority[a] < config.et_priority[b];
    }
    return a < b;
  });
  for (std::size_t i = 0; i + 1 < et.size(); ++i) {
    TsnConfig next = config;
    std::swap(next.et_priority[et[i]], next.et_priority[et[i + 1]]);
    if (visit(std::move(next))) return true;
  }
  return false;
}

}  // namespace

TsnSearchResult tsn_coordinate_descent(CostEvaluator& evaluator, const SystemConfig& base,
                                       int cluster, const SolveRequest& request) {
  TsnSearchResult result;
  if (cluster < 0 || static_cast<std::size_t>(cluster) >= base.cluster_count() ||
      base.clusters[static_cast<std::size_t>(cluster)].kind != ClusterBackendKind::Tsn) {
    return result;  // misuse: not a TSN cluster — nothing to search
  }
  const long evals_at_start = evaluator.evaluations();
  const Application& app =
      *evaluator.system_model().cluster_app(static_cast<std::size_t>(cluster));
  SystemConfig current = base;
  result.config = current.clusters[static_cast<std::size_t>(cluster)].tsn;

  SolveControl control(request, evaluator, "tsn-descent");
  const auto base_eval = evaluator.evaluate_system(current);
  if (base_eval.valid) {
    result.cost = base_eval.cost;
    control.note_best(base_eval.cost);
  }

  // Accept cap: a backstop against degenerate cost plateaus (each accept is
  // a strict improvement, so real descents terminate on their own).
  constexpr int kMaxAccepts = 256;
  int accepts = 0;
  bool accepted = true;
  while (accepted && accepts < kMaxAccepts && !control.should_stop(evaluator)) {
    accepted = sweep_neighbourhood(app, result.config, [&](TsnConfig next) {
      if (control.should_stop(evaluator)) return true;  // abort the sweep
      DeltaMove move = DeltaMove::tsn_between(result.config, std::move(next), cluster);
      if (!move.any_change()) return false;
      const auto eval = evaluator.evaluate_delta(current, move);
      if (!eval.valid || eval.cost.value >= result.cost.value) return false;
      result.cost = eval.cost;
      result.config = std::move(move.tsn);
      current.clusters[static_cast<std::size_t>(cluster)] =
          ClusterConfig::tsn_switch(result.config);
      result.improved = true;
      ++accepts;
      control.note_best(eval.cost);
      return true;
    });
  }
  control.mark_budget_exhausted_if_spent(evaluator);
  result.status = control.status();
  result.evaluations = evaluator.evaluations() - evals_at_start;
  return result;
}

}  // namespace flexopt
