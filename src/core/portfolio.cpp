#include "flexopt/core/portfolio.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cctype>
#include <mutex>
#include <thread>
#include <utility>

#include "flexopt/util/seed_mix.hpp"

/// \file portfolio.cpp
/// See portfolio.hpp for the contract.  The implementation keeps the two
/// halves strictly apart: everything that feeds the *result* (member
/// trajectories, budgets, seeds, winner selection) is a deterministic
/// function of (application, spec, base seed), while everything that is
/// inherently racy (the shared incumbent, aggregated progress, racing
/// cuts) only ever removes work or feeds observational output.

namespace flexopt {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// The racy half: members publish their own improvements here.  Reads on
/// the hot path (every progress tick of every member) are single relaxed
/// atomic loads; the mutex is taken only to improve the incumbent or to
/// serialize the user's progress callback.
struct SharedIncumbent {
  std::atomic<double> cost{kInvalidConfigCost};
  std::atomic<bool> feasible{false};
  std::atomic<int> member{-1};
  std::atomic<bool> user_stop{false};  ///< user progress returned false / parent cancel
  std::mutex mutex;
  /// Serializes the user's progress callback only (callbacks need not be
  /// thread-safe); separate from `mutex` so a slow callback never blocks
  /// concurrent offer() publications.
  std::mutex progress_mutex;

  /// Improves the incumbent to (cost, feasible, member) if strictly better.
  void offer(double new_cost, bool new_feasible, int new_member) {
    if (new_cost >= cost.load(std::memory_order_relaxed)) return;
    const std::lock_guard<std::mutex> lock(mutex);
    if (new_cost >= cost.load(std::memory_order_relaxed)) return;
    feasible.store(new_feasible, std::memory_order_relaxed);
    member.store(new_member, std::memory_order_relaxed);
    cost.store(new_cost, std::memory_order_relaxed);
  }
};

class PortfolioOptimizer final : public Optimizer {
 public:
  explicit PortfolioOptimizer(PortfolioSpec spec) : spec_(std::move(spec)) {}
  [[nodiscard]] std::string_view name() const override { return "portfolio"; }
  SolveReport solve_cluster(CostEvaluator& evaluator, const SolveRequest& request) override;

 private:
  PortfolioSpec spec_;
};

SolveReport PortfolioOptimizer::solve_cluster(CostEvaluator& evaluator,
                                              const SolveRequest& request) {
  const auto started = std::chrono::steady_clock::now();
  const std::size_t n = spec_.members.size();
  const std::uint64_t base_seed = request.seed.value_or(spec_.seed);

  // Deterministic budget split: member i gets budget/n, the first budget%n
  // members one more, and every member at least 1 so a budget below the
  // member count still races everyone (total may then exceed the budget by
  // at most n-1 analyses).
  std::vector<long> shares(n, 0);
  if (request.max_evaluations > 0) {
    const long per = request.max_evaluations / static_cast<long>(n);
    const long rem = request.max_evaluations % static_cast<long>(n);
    for (std::size_t i = 0; i < n; ++i) {
      shares[i] = std::max(1L, per + (static_cast<long>(i) < rem ? 1L : 0L));
    }
  }

  SharedIncumbent incumbent;
  std::vector<SolveReport> solves(n);
  std::vector<MemberSolveReport> members(n);
  // Last evaluation count each member reported, for the aggregated
  // progress snapshot (unique_ptr because atomics are not movable).
  std::unique_ptr<std::atomic<long>[]> evals_seen(new std::atomic<long>[n]);
  for (std::size_t i = 0; i < n; ++i) evals_seen[i].store(0, std::memory_order_relaxed);

  auto run_member = [&](int i) {
    const auto member_started = std::chrono::steady_clock::now();
    MemberSolveReport& member = members[static_cast<std::size_t>(i)];
    member.algorithm = spec_.members[static_cast<std::size_t>(i)];
    member.member = member.algorithm + "#" + std::to_string(i);
    member.seed = derive_seed(base_seed, static_cast<std::uint64_t>(i));
    member.budget = shares[static_cast<std::size_t>(i)];

    auto optimizer = OptimizerRegistry::create(member.algorithm);
    if (!optimizer.ok()) {  // member names were validated at creation time
      member.status = SolveStatus::Cancelled;
      return;
    }

    // Own single-threaded sibling evaluator: the member's evaluation
    // sequence (and its budget accounting) must not observe the other
    // members' work, or the trajectory would depend on scheduling.  The
    // sibling shares the system model and any multi-cluster focus, so a
    // focused portfolio races its members on the same coordinate.
    EvaluatorOptions member_options = evaluator.evaluator_options();
    member_options.threads = 1;
    CostEvaluator member_eval(evaluator, member_options);

    SolveRequest member_request;
    member_request.seed = member.seed;
    member_request.max_evaluations = member.budget;
    if (request.max_wall_seconds > 0.0) {
      member_request.max_wall_seconds =
          std::max(1e-3, request.max_wall_seconds - seconds_since(started));
    }
    member_request.cancel = request.cancel;  // parent cancellation, polled directly
    double last_best = kInvalidConfigCost;
    member_request.progress = [&, i](const SolveProgress& p) -> bool {
      evals_seen[i].store(p.evaluations, std::memory_order_relaxed);
      if (p.best_cost < last_best) {
        last_best = p.best_cost;
        member.improvements.push_back(IncumbentEvent{p.evaluations, p.best_cost, p.feasible});
        incumbent.offer(p.best_cost, p.feasible, i);
      }
      if (request.progress) {
        const std::lock_guard<std::mutex> lock(incumbent.progress_mutex);
        long total = 0;
        for (std::size_t m = 0; m < n; ++m) {
          total += evals_seen[m].load(std::memory_order_relaxed);
        }
        SolveProgress aggregated;
        aggregated.algorithm = "PORTFOLIO";
        aggregated.evaluations = total;
        aggregated.max_evaluations = request.max_evaluations;
        aggregated.elapsed_seconds = seconds_since(started);
        aggregated.best_cost = incumbent.cost.load(std::memory_order_relaxed);
        aggregated.feasible = incumbent.feasible.load(std::memory_order_relaxed);
        if (!request.progress(aggregated)) incumbent.user_stop.store(true);
      }
      if (incumbent.user_stop.load(std::memory_order_relaxed)) return false;
      if (spec_.racing_cut &&
          incumbent.cost.load(std::memory_order_relaxed) < p.best_cost) {
        // Cold path: re-read the (cost, feasible, member) triple under the
        // mutex — the relaxed loads above could tear across a concurrent
        // offer() and cut against an infeasible incumbent.
        const std::lock_guard<std::mutex> lock(incumbent.mutex);
        if (incumbent.feasible.load(std::memory_order_relaxed) &&
            incumbent.member.load(std::memory_order_relaxed) != i &&
            incumbent.cost.load(std::memory_order_relaxed) < p.best_cost) {
          return false;  // strictly dominated: stop spending on this member
        }
      }
      return true;
    };

    SolveReport& solved = solves[static_cast<std::size_t>(i)];
    solved = optimizer.value()->solve(member_eval, member_request);
    evals_seen[i].store(solved.outcome.evaluations, std::memory_order_relaxed);
    if (solved.outcome.cost.value < last_best) {
      // An improvement on the very last evaluation lands after the final
      // progress tick; close the timeline so its tail is the member's best.
      member.improvements.push_back(IncumbentEvent{
          solved.outcome.evaluations, solved.outcome.cost.value, solved.outcome.feasible});
    }
    incumbent.offer(solved.outcome.cost.value, solved.outcome.feasible, i);

    member.cost = solved.outcome.cost.value;
    member.feasible = solved.outcome.feasible;
    member.evaluations = solved.outcome.evaluations;
    member.status = solved.status;
    member.cache_hits = solved.cache_hits;
    member.cache_misses = solved.cache_misses;
    member.delta_evaluations = solved.delta_evaluations;
    member.components_recomputed = solved.components_recomputed;
    member.components_reused = solved.components_reused;
    member.profile = solved.profile;
    member.wall_seconds = seconds_since(member_started);
  };

  // Worker pool: workers claim member indices through claim_order (a
  // shuffle hook for the determinism property test; identity by default).
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
      if (slot >= n) return;
      const int i = spec_.claim_order.empty() ? static_cast<int>(slot)
                                              : spec_.claim_order[slot];
      run_member(i);
    }
  };
  const std::size_t hardware = std::max(1u, std::thread::hardware_concurrency());
  std::size_t jobs = spec_.jobs > 0 ? static_cast<std::size_t>(spec_.jobs) : hardware;
  jobs = std::max<std::size_t>(1, std::min(jobs, n));
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  // Winner: cost-argmin, ties to the lowest member index.  Computed from
  // the finished member reports — never from the racy incumbent — so the
  // selection is independent of completion order.
  std::size_t winner = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (solves[i].outcome.cost.value < solves[winner].outcome.cost.value) winner = i;
  }
  members[winner].winner = true;

  SolveReport report;
  report.outcome = solves[winner].outcome;
  report.outcome.algorithm = "PORTFOLIO";
  report.outcome.wall_seconds = seconds_since(started);
  report.winner = members[winner].member;
  long total_evaluations = 0;
  bool any_time_limit = false;
  bool any_budget_exhausted = false;
  for (std::size_t i = 0; i < n; ++i) {
    total_evaluations += members[i].evaluations;
    any_time_limit = any_time_limit || members[i].status == SolveStatus::TimeLimit;
    any_budget_exhausted =
        any_budget_exhausted || members[i].status == SolveStatus::BudgetExhausted;
    report.cache_hits += members[i].cache_hits;
    report.cache_misses += members[i].cache_misses;
    report.delta_evaluations += members[i].delta_evaluations;
    report.components_recomputed += members[i].components_recomputed;
    report.components_reused += members[i].components_reused;
    report.profile += members[i].profile;
  }
  report.outcome.evaluations = total_evaluations;
  // Racing-cut cancellations stay member-local; the portfolio itself is
  // Cancelled only when the caller asked for it.
  const bool parent_cancelled =
      (request.cancel && request.cancel->load(std::memory_order_relaxed)) ||
      incumbent.user_stop.load(std::memory_order_relaxed);
  if (parent_cancelled) {
    report.status = SolveStatus::Cancelled;
  } else if (any_time_limit) {
    report.status = SolveStatus::TimeLimit;
  } else if (request.max_evaluations > 0 && any_budget_exhausted) {
    report.status = SolveStatus::BudgetExhausted;
  }
  report.members = std::move(members);
  return report;
}

}  // namespace

bool is_portfolio_algorithm(std::string_view key) {
  // Registry names are case-insensitive; the no-nesting and front-end
  // special-case checks must be too.
  constexpr std::string_view kName = "portfolio";
  if (key.size() != kName.size()) return false;
  for (std::size_t i = 0; i < kName.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(key[i])) != kName[i]) return false;
  }
  return true;
}

Expected<std::vector<std::string>> parse_portfolio_members(std::string_view text) {
  std::vector<std::string> members;
  std::string token;
  auto flush = [&]() -> Expected<bool> {
    if (token.empty()) return true;
    std::string key = token;
    long count = 1;
    // NxKEY repetition, e.g. "4xsa".  A lone leading digit run followed by
    // 'x' is the multiplier; anything else is taken as a registry key.
    const std::size_t x = token.find('x');
    if (x != std::string::npos && x > 0 &&
        token.find_first_not_of("0123456789") == x) {
      try {
        count = std::stol(token.substr(0, x));
      } catch (const std::exception&) {
        return make_error("portfolio member '" + token + "': count out of range");
      }
      key = token.substr(x + 1);
      if (count < 1) return make_error("portfolio member '" + token + "': count must be >= 1");
      if (count > 4096) return make_error("portfolio member '" + token + "': count too large");
      if (key.empty()) return make_error("portfolio member '" + token + "': missing key");
    }
    if (!OptimizerRegistry::contains(key)) {
      return make_error("portfolio member '" + key + "' is not a registered optimizer");
    }
    if (is_portfolio_algorithm(key)) {
      return make_error("portfolio members cannot nest another portfolio");
    }
    for (long i = 0; i < count; ++i) members.push_back(key);
    token.clear();
    return true;
  };
  for (const char c : text) {
    if (c == ',' || c == ' ' || c == '\t' || c == '+') {
      auto flushed = flush();
      if (!flushed.ok()) return flushed.error();
    } else {
      token.push_back(c);
    }
  }
  auto flushed = flush();
  if (!flushed.ok()) return flushed.error();
  if (members.empty()) return make_error("portfolio: empty member list");
  return members;
}

std::string format_portfolio_members(const std::vector<std::string>& members) {
  std::string out;
  std::size_t i = 0;
  while (i < members.size()) {
    std::size_t run = i;
    while (run < members.size() && members[run] == members[i]) ++run;
    if (!out.empty()) out += "+";
    if (run - i > 1) out += std::to_string(run - i) + "x";
    out += members[i];
    i = run;
  }
  return out;
}

Expected<std::unique_ptr<Optimizer>> make_portfolio_optimizer(PortfolioSpec spec) {
  if (spec.members.empty()) return make_error("portfolio: empty member list");
  if (spec.jobs < 0) return make_error("portfolio: jobs must be >= 0");
  for (const std::string& key : spec.members) {
    if (!OptimizerRegistry::contains(key)) {
      return make_error("portfolio member '" + key + "' is not a registered optimizer");
    }
    if (is_portfolio_algorithm(key)) {
      return make_error("portfolio members cannot nest another portfolio");
    }
  }
  if (!spec.claim_order.empty()) {
    std::vector<bool> seen(spec.members.size(), false);
    if (spec.claim_order.size() != spec.members.size()) {
      return make_error("portfolio: claim_order must be a permutation of the member indices");
    }
    for (const int i : spec.claim_order) {
      if (i < 0 || static_cast<std::size_t>(i) >= spec.members.size() ||
          seen[static_cast<std::size_t>(i)]) {
        return make_error("portfolio: claim_order must be a permutation of the member indices");
      }
      seen[static_cast<std::size_t>(i)] = true;
    }
  }
  return std::unique_ptr<Optimizer>(std::make_unique<PortfolioOptimizer>(std::move(spec)));
}

}  // namespace flexopt
