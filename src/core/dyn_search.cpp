#include "flexopt/core/dyn_search.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "flexopt/analysis/sat_time.hpp"
#include "flexopt/core/delta_move.hpp"
#include "flexopt/core/detail/batch_sweep.hpp"
#include "flexopt/core/solve_types.hpp"
#include "flexopt/math/interpolation.hpp"

namespace flexopt {
namespace {

int auto_stride(int span, int max_points) {
  return std::max(1, span / std::max(1, max_points - 1));
}

/// Evaluates `candidate` as a DeltaMove off the previously analysed
/// configuration, advancing the chain on success.  The shared inner-sweep
/// primitive of both DYN strategies' delta paths.
CostEvaluator::Evaluation evaluate_chained(CostEvaluator& evaluator,
                                           std::optional<BusConfig>& chain_base,
                                           const BusConfig& candidate) {
  CostEvaluator::Evaluation eval;
  if (chain_base.has_value()) {
    eval = evaluator.evaluate_delta(*chain_base, DeltaMove::between(*chain_base, candidate));
  } else {
    eval = evaluator.evaluate(candidate);
  }
  if (eval.valid) chain_base = candidate;
  return eval;
}

}  // namespace

DynSearchResult ExhaustiveDynSearch::search(CostEvaluator& evaluator, const BusConfig& base,
                                            int dyn_min, int dyn_max, SolveControl* control,
                                            const BusConfig* warm_base) {
  DynSearchResult best;
  const int stride = options_.stride_minislots > 0
                         ? options_.stride_minislots
                         : auto_stride(dyn_max - dyn_min, options_.max_sweep_points);

  auto note = [&](int minislots, const CostEvaluator::Evaluation& eval) {
    if (eval.valid && eval.cost.value < best.cost.value) {
      best.cost = eval.cost;
      best.minislots = minislots;
      best.exact = true;
      if (control != nullptr) control->note_best(best.cost);
    }
  };

  if (options_.use_delta_evaluation && evaluator.worker_threads() <= 1) {
    // No pool to fan candidates across: sweep sequentially, each point a
    // DeltaMove off the previous one (only the DYN-dependent components
    // are recomputed; results match the batched sweep bit for bit).
    std::optional<BusConfig> chain_base;
    if (warm_base != nullptr) chain_base = *warm_base;
    for (int minislots = dyn_min; minislots <= dyn_max; minislots += stride) {
      if (control != nullptr && control->should_stop(evaluator)) break;
      BusConfig candidate = base;
      candidate.minislot_count = minislots;
      note(minislots, evaluate_chained(evaluator, chain_base, candidate));
    }
    return best;
  }

  detail::batched_minislot_sweep(evaluator, base, dyn_min, dyn_max, stride, control,
                                 [&](int minislots, const CostEvaluator::Evaluation& eval) {
                                   note(minislots, eval);
                                 });
  return best;
}

DynSearchResult CurveFitDynSearch::search(CostEvaluator& evaluator, const BusConfig& base,
                                          int dyn_min, int dyn_max, SolveControl* control,
                                          const BusConfig* warm_base) {
  const Application& app = evaluator.application();

  // Completion bounds are fitted in microseconds; unbounded completions are
  // mapped to the same 10x-deadline magnitude the cost function charges, so
  // interpolated costs rank configurations consistently with exact ones.
  const std::size_t n_tasks = app.task_count();
  const std::size_t n_msgs = app.message_count();
  auto completion_to_us = [&](ActivityRef a, Time completion) {
    if (!is_infinite(completion)) return to_us(completion);
    return to_us(app.effective_deadline(a)) * kUnboundedPenaltyFactor;
  };

  /// One fully analysed point (Fig. 8, set `Points`).
  struct PointData {
    Cost cost;
    std::vector<double> completions_us;  // tasks then messages
  };
  std::map<int, PointData> points;

  // Fig. 8's points are analysed one at a time: chain each off the
  // previous one so only the DYN-dependent components are recomputed.
  std::optional<BusConfig> chain_base;
  if (options_.use_delta_evaluation && warm_base != nullptr) chain_base = *warm_base;

  auto analyse_point = [&](int minislots) -> const PointData* {
    if (const auto it = points.find(minislots); it != points.end()) return &it->second;
    BusConfig candidate = base;
    candidate.minislot_count = minislots;
    const auto eval = options_.use_delta_evaluation
                          ? evaluate_chained(evaluator, chain_base, candidate)
                          : evaluator.evaluate(candidate);
    if (!eval.valid) return nullptr;
    PointData data;
    data.cost = eval.cost;
    data.completions_us.reserve(n_tasks + n_msgs);
    for (std::size_t t = 0; t < n_tasks; ++t) {
      data.completions_us.push_back(completion_to_us(
          ActivityRef::task(static_cast<TaskId>(t)), eval.analysis.task_completion[t]));
    }
    for (std::size_t m = 0; m < n_msgs; ++m) {
      data.completions_us.push_back(
          completion_to_us(ActivityRef::message(static_cast<MessageId>(m)),
                           eval.analysis.message_completion[m]));
    }
    return &points.emplace(minislots, std::move(data)).first->second;
  };

  // Interpolated cost at `minislots` from per-activity Newton fits.
  // Curves are rebuilt lazily whenever the point set grows.  Activities
  // whose completion bound does not vary across the analysed points (the
  // common case for most tasks) are short-circuited to a constant, which
  // keeps the per-candidate scan cheap.
  std::size_t curves_built_from = 0;
  std::vector<ResponseTimeCurve> curves;
  std::vector<bool> is_constant;
  std::vector<double> constant_us;
  auto rebuild_curves = [&]() {
    if (curves_built_from == points.size()) return;
    const std::size_t n = n_tasks + n_msgs;
    curves.assign(n, ResponseTimeCurve{});
    is_constant.assign(n, true);
    constant_us.assign(n, 0.0);
    bool first = true;
    for (const auto& [x, data] : points) {
      for (std::size_t i = 0; i < n; ++i) {
        if (first) {
          constant_us[i] = data.completions_us[i];
        } else if (data.completions_us[i] != constant_us[i]) {
          is_constant[i] = false;
        }
      }
      first = false;
    }
    for (const auto& [x, data] : points) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!is_constant[i]) {
          (void)curves[i].add_point(static_cast<double>(x), data.completions_us[i]);
        }
      }
    }
    curves_built_from = points.size();
  };

  std::vector<Time> task_c(n_tasks);
  std::vector<Time> msg_c(n_msgs);
  auto interpolated_cost = [&](int minislots) -> Cost {
    rebuild_curves();
    auto value_at = [&](std::size_t i) {
      const double us =
          is_constant[i] ? constant_us[i] : curves[i].evaluate(static_cast<double>(minislots));
      return static_cast<Time>(std::llround(us * 1e3));
    };
    for (std::size_t t = 0; t < n_tasks; ++t) task_c[t] = value_at(t);
    for (std::size_t m = 0; m < n_msgs; ++m) msg_c[m] = value_at(n_tasks + m);
    return evaluate_cost(app, task_c, msg_c);
  };

  // Fig. 8 line 1: initial point set including both endpoints.  Spacing is
  // geometric: response times react strongest at short segment lengths
  // (BusCycles filling) and only linearly at long ones (gdCycle growth), so
  // a log grid resolves the interesting left side — the paper's own Fig. 7
  // samples the x axis with geometrically growing steps.
  const int span = dyn_max - dyn_min;
  const int k = std::max(2, options_.initial_points);
  const auto stop_requested = [&]() {
    return control != nullptr && control->should_stop(evaluator);
  };
  if (dyn_min > 0 && dyn_max > dyn_min) {
    const double ratio = static_cast<double>(dyn_max) / static_cast<double>(dyn_min);
    for (int i = 0; i < k && !stop_requested(); ++i) {
      const double x = dyn_min * std::pow(ratio, static_cast<double>(i) / (k - 1));
      analyse_point(std::clamp(static_cast<int>(std::lround(x)), dyn_min, dyn_max));
    }
  } else {
    for (int i = 0; i < k && !stop_requested(); ++i) {
      const int x = dyn_min + static_cast<int>(
                                  static_cast<std::int64_t>(span) * i / std::max(1, k - 1));
      analyse_point(x);
    }
  }
  if (points.empty()) return {};  // every initial candidate invalid

  const int stride = options_.stride_minislots > 0
                         ? options_.stride_minislots
                         : auto_stride(span, options_.max_candidates);

  DynSearchResult best_exact;
  auto note_exact = [&](int x, const Cost& cost) {
    if (cost.value < best_exact.cost.value) {
      best_exact.cost = cost;
      best_exact.minislots = x;
      best_exact.exact = true;
      if (control != nullptr) control->note_best(cost);
    }
  };
  for (const auto& [x, data] : points) note_exact(x, data.cost);

  int stale_iterations = 0;
  while (stale_iterations < options_.n_max && !stop_requested()) {
    const double previous_best = best_exact.cost.value;

    // Fig. 8 lines 6-11: scan all candidates, interpolating where needed,
    // and select the minimum-cost one.
    int best_x = dyn_min;
    double best_cost_value = kInvalidConfigCost;
    bool best_is_exact = false;
    for (int x = dyn_min; x <= dyn_max; x += stride) {
      const auto it = points.find(x);
      const double value = it != points.end() ? it->second.cost.value
                                              : interpolated_cost(x).value;
      if (value < best_cost_value) {
        best_cost_value = value;
        best_x = x;
        best_is_exact = it != points.end();
      }
    }

    if (best_is_exact && points.at(best_x).cost.schedulable) {
      // Line 12: schedulable and exact — done.
      return DynSearchResult{best_x, points.at(best_x).cost, true};
    }
    if (!best_is_exact && best_cost_value <= 0.0) {
      // Lines 13-15: schedulable according to the interpolation — verify.
      const PointData* data = analyse_point(best_x);
      if (data != nullptr) {
        note_exact(best_x, data->cost);
        if (data->cost.schedulable) return DynSearchResult{best_x, data->cost, true};
      }
      // Not actually schedulable: the new exact point sharpens the fit.
    } else if (!best_is_exact) {
      // Line 17: unschedulable everywhere; refine at the most promising
      // un-analysed candidate.
      const PointData* data = analyse_point(best_x);
      if (data != nullptr) note_exact(best_x, data->cost);
    } else {
      // Lines 18-19: best candidate already analysed and unschedulable;
      // add the best *interpolated* point instead to gain information.
      int next_x = -1;
      double next_cost = kInvalidConfigCost;
      for (int x = dyn_min; x <= dyn_max; x += stride) {
        if (points.contains(x)) continue;
        const double value = interpolated_cost(x).value;
        if (value < next_cost) {
          next_cost = value;
          next_x = x;
        }
      }
      if (next_x < 0) break;  // grid exhausted
      const PointData* data = analyse_point(next_x);
      if (data != nullptr) note_exact(next_x, data->cost);
    }

    if (best_exact.cost.schedulable) {
      return best_exact;  // a refinement step found a schedulable point
    }
    stale_iterations = best_exact.cost.value < previous_best ? 0 : stale_iterations + 1;
  }

  return best_exact;  // Nmax exceeded: report the best (infeasible) point
}

}  // namespace flexopt
