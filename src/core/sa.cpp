#include "flexopt/core/sa.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

#include "flexopt/core/bbc.hpp"
#include "flexopt/core/config_builder.hpp"
#include "flexopt/core/obc.hpp"
#include "flexopt/core/solve_types.hpp"
#include "flexopt/util/rng.hpp"

namespace flexopt {

bool random_neighbour_move(BusConfig& config, const Application& app, const BusParams& params,
                           Rng& rng, const std::vector<NodeId>& st_senders, int dyn_min,
                           int dyn_max) {
  const Time payload_step = SpecLimits::kPayloadStepBits * params.gd_bit;
  const Time len_min = min_static_slot_len(app, params);
  const Time len_max = SpecLimits::kMaxStaticSlotMacroticks * params.gd_macrotick;

  switch (rng.uniform_int(0, 5)) {
    case 0: {  // +- one ST slot
      if (st_senders.empty()) return false;
      const int delta = rng.chance(0.5) ? 1 : -1;
      const int next = config.static_slot_count + delta;
      if (next < static_cast<int>(st_senders.size()) || next > SpecLimits::kMaxStaticSlots) {
        return false;
      }
      config.static_slot_count = next;
      config.static_slot_owner = assign_static_slots(app, next);
      return true;
    }
    case 1: {  // +- ST slot length (payload-increment steps)
      if (config.static_slot_count == 0) return false;
      const Time delta = payload_step * rng.uniform_int(1, 4) * (rng.chance(0.5) ? 1 : -1);
      const Time next = config.static_slot_len + delta;
      if (next < len_min || next > len_max) return false;
      config.static_slot_len = next;
      return true;
    }
    case 2: {  // +- DYN segment length
      if (dyn_max == 0) return false;
      const int delta =
          static_cast<int>(rng.uniform_int(1, 64)) * (rng.chance(0.5) ? 1 : -1);
      const int next = config.minislot_count + delta;
      if (next < dyn_min || next > dyn_max) return false;
      config.minislot_count = next;
      return true;
    }
    case 3: {  // reassign one ST slot to another sender
      if (config.static_slot_owner.size() < 2 || st_senders.size() < 2) return false;
      const std::size_t slot = rng.index(config.static_slot_owner.size());
      config.static_slot_owner[slot] = st_senders[rng.index(st_senders.size())];
      return true;
    }
    case 4: {  // swap the FrameIDs of two DYN messages
      std::vector<std::size_t> dyn;
      for (std::size_t m = 0; m < config.frame_id.size(); ++m) {
        if (config.frame_id[m] != 0) dyn.push_back(m);
      }
      if (dyn.size() < 2) return false;
      const std::size_t a = dyn[rng.index(dyn.size())];
      const std::size_t b = dyn[rng.index(dyn.size())];
      if (a == b) return false;
      std::swap(config.frame_id[a], config.frame_id[b]);
      return true;
    }
    case 5: {  // move one DYN message to a random FrameID
      std::vector<std::size_t> dyn;
      for (std::size_t m = 0; m < config.frame_id.size(); ++m) {
        if (config.frame_id[m] != 0) dyn.push_back(m);
      }
      if (dyn.empty() || config.minislot_count < 1) return false;
      const std::size_t m = dyn[rng.index(dyn.size())];
      config.frame_id[m] =
          static_cast<int>(rng.uniform_int(1, std::min(config.minislot_count,
                                                       static_cast<int>(dyn.size()) * 2)));
      return true;
    }
    default:
      return false;
  }
}

OptimizationOutcome optimize_sa(CostEvaluator& evaluator, const SaOptions& options,
                                SolveControl* control) {
  const auto t0 = std::chrono::steady_clock::now();
  const Application& app = evaluator.application();
  const BusParams& params = evaluator.params();
  const long evals_before = evaluator.evaluations();
  Rng rng(options.seed);

  OptimizationOutcome outcome;
  outcome.algorithm = "SA";

  // Initial state: a coarse BBC sweep (Fig. 5) seeds the annealer with a
  // constructive solution; SA then explores slot counts/lengths/ownership
  // and FrameIDs around it.  The seeding evaluations count against the
  // budget, and SA keeps the best-ever solution, so it never reports worse
  // than the basic configuration.
  const StartConfig start = minimal_start_config(app, params);
  const std::vector<NodeId>& senders = start.st_senders;
  const DynBounds& bounds = start.bounds;
  if (!bounds.feasible()) return outcome;
  BusConfig current = start.config;

  BbcOptions seed_options;
  seed_options.max_sweep_points =
      static_cast<int>(std::min<long>(16, std::max<long>(2, options.max_evaluations / 8)));
  OptimizationOutcome seed = optimize_bbc(evaluator, seed_options, control);
  {
    // A quick OBC-CF pass often lands in feasibility pockets the coarse BBC
    // sweep misses; starting the annealer there makes the budgeted SA a
    // meaningful near-optimal reference (the paper's SA simply ran for
    // hours instead).  Both seeding passes are charged to the budget.
    CurveFitDynOptions cf_options;
    cf_options.n_max = 5;
    CurveFitDynSearch cf(cf_options);
    const OptimizationOutcome alt = optimize_obc(evaluator, cf, {}, control);
    if (alt.cost.value < seed.cost.value) seed = alt;
  }
  double current_cost = kInvalidConfigCost;
  if (seed.cost.value < kInvalidConfigCost) {
    current = seed.config;
    current_cost = seed.cost.value;
    outcome.config = current;
    outcome.cost = seed.cost;
    outcome.feasible = seed.feasible;
  } else {
    current.minislot_count = bounds.min_minislots;
    const auto eval = evaluator.evaluate(current);
    if (eval.valid) {
      current_cost = eval.cost.value;
      outcome.config = current;
      outcome.cost = eval.cost;
      outcome.feasible = eval.cost.schedulable;
    }
  }

  double temperature =
      std::max(1.0, std::abs(current_cost) * options.initial_temperature_factor);
  const double t_min = 1e-3;

  while (evaluator.evaluations() - evals_before < options.max_evaluations &&
         temperature > t_min) {
    if (control != nullptr && control->should_stop(evaluator)) break;
    for (int i = 0; i < options.iterations_per_temperature; ++i) {
      if (evaluator.evaluations() - evals_before >= options.max_evaluations) break;
      if (control != nullptr && control->should_stop(evaluator)) break;
      BusConfig neighbour = current;
      bool moved = false;
      for (int attempt = 0; attempt < 8 && !moved; ++attempt) {
        moved = random_neighbour_move(neighbour, app, params, rng, senders,
                                      bounds.min_minislots, SpecLimits::kMaxMinislots);
      }
      if (!moved) continue;

      // The move touched one or two decision variables: the delta path
      // reuses every analysis component of `current` it did not invalidate
      // (bit-identical to the full evaluation either way).  The fast form
      // returns a reference into the evaluator's thread slot — valid here
      // because nothing else evaluates on this thread before the next
      // iteration overwrites it.
      DeltaMove move = DeltaMove::between(current, std::move(neighbour));
      CostEvaluator::Evaluation full_eval;
      const CostEvaluator::Evaluation* eval_ptr;
      if (options.use_delta_evaluation) {
        eval_ptr = &evaluator.evaluate_delta_fast(current, move);
      } else {
        full_eval = evaluator.evaluate(move.config);
        eval_ptr = &full_eval;
      }
      const CostEvaluator::Evaluation& eval = *eval_ptr;
      const double cost = eval.valid ? eval.cost.value : kInvalidConfigCost;
      const double delta = cost - current_cost;
      if (delta <= 0.0 || rng.uniform_real(0.0, 1.0) < std::exp(-delta / temperature)) {
        current = std::move(move.config);
        current_cost = cost;
      }
      if (eval.valid && eval.cost.value < outcome.cost.value) {
        outcome.config = current;
        outcome.cost = eval.cost;
        outcome.feasible = eval.cost.schedulable;
        if (control != nullptr) control->note_best(outcome.cost);
        if (outcome.feasible && options.stop_at_first_feasible) {
          outcome.evaluations = evaluator.evaluations() - evals_before;
          outcome.wall_seconds =
              std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
          return outcome;
        }
      }
    }
    temperature *= options.cooling;
  }

  outcome.evaluations = evaluator.evaluations() - evals_before;
  outcome.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return outcome;
}

}  // namespace flexopt
