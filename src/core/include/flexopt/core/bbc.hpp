#pragma once

/// \file bbc.hpp
/// The Basic Bus Configuration algorithm of Fig. 5: minimal ST segment
/// (one slot per ST-sending node, slot length = largest ST frame), unique
/// criticality-ordered FrameIDs, and a sweep over the DYN segment length
/// keeping the best cost.

#include "flexopt/core/evaluator.hpp"

namespace flexopt {

class SolveControl;

struct BbcOptions {
  /// Sweep stride in minislots; 0 = auto (cover the range with at most
  /// `max_sweep_points` full analyses).  The paper steps by one minislot;
  /// the auto stride trades negligible cost resolution for tractable
  /// runtime and is reported by the benches.
  int dyn_stride_minislots = 0;
  int max_sweep_points = 128;
};

/// Runs BBC.  The outcome carries the best configuration found over the
/// sweep (feasible == cost.schedulable; BBC frequently ends infeasible on
/// larger systems, which is exactly the Fig. 9 result).  Candidate DYN
/// lengths are evaluated in parallel batches on the evaluator's worker
/// pool; `control` (optional) enforces the SolveRequest budgets between
/// batches.  Front-ends drive this through the OptimizerRegistry ("bbc").
OptimizationOutcome optimize_bbc(CostEvaluator& evaluator, const BbcOptions& options = {},
                                 SolveControl* control = nullptr);

}  // namespace flexopt
