#pragma once

/// \file batch_sweep.hpp
/// Shared core of the two parallel DYN-length sweeps (BBC's Fig. 5 sweep
/// and OBC-EE's exhaustive search): evaluate `base` at every candidate
/// minislot count in parallel batches on the evaluator's worker pool,
/// honouring the SolveControl budgets between batches.  Internal to
/// src/core — front-ends drive sweeps through the Optimizer interface.

#include <algorithm>
#include <functional>
#include <vector>

#include "flexopt/core/evaluator.hpp"
#include "flexopt/core/solve_types.hpp"

namespace flexopt::detail {

/// Calls `on_result(minislots, evaluation)` for every *valid* evaluation,
/// in input order — so a strictly-better selection in the callback yields
/// results identical to the serial sweep.  Stops early when `control`
/// requests it; batches never claim more than the remaining evaluation
/// budget (cache hits make this conservative, never over).
inline void batched_minislot_sweep(
    CostEvaluator& evaluator, const BusConfig& base, const std::vector<int>& lengths,
    SolveControl* control,
    const std::function<void(int, const CostEvaluator::Evaluation&)>& on_result) {
  const std::size_t batch_size =
      std::max<std::size_t>(8, 2 * static_cast<std::size_t>(evaluator.worker_threads()));
  std::vector<BusConfig> batch;
  for (std::size_t pos = 0; pos < lengths.size();) {
    if (control != nullptr && control->should_stop(evaluator)) break;
    std::size_t n = std::min(batch_size, lengths.size() - pos);
    if (control != nullptr) {
      n = std::min<std::size_t>(
          n, static_cast<std::size_t>(std::max(1L, control->remaining_evaluations(evaluator))));
    }
    batch.clear();
    for (std::size_t i = pos; i < pos + n; ++i) {
      batch.push_back(base);
      batch.back().minislot_count = lengths[i];
    }
    const auto evals = evaluator.evaluate_many(batch);
    for (std::size_t i = 0; i < evals.size(); ++i) {
      if (evals[i].valid) on_result(lengths[pos + i], evals[i]);
    }
    pos += n;
  }
}

/// Range overload: sweeps [dyn_min, dyn_max] with the given stride.
inline void batched_minislot_sweep(
    CostEvaluator& evaluator, const BusConfig& base, int dyn_min, int dyn_max, int stride,
    SolveControl* control,
    const std::function<void(int, const CostEvaluator::Evaluation&)>& on_result) {
  std::vector<int> lengths;
  for (int minislots = dyn_min; minislots <= dyn_max; minislots += stride) {
    lengths.push_back(minislots);
  }
  batched_minislot_sweep(evaluator, base, lengths, control, on_result);
}

}  // namespace flexopt::detail
