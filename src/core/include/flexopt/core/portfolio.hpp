#pragma once

/// \file portfolio.hpp
/// The "portfolio" meta-optimizer: races N registry members (any key x
/// derived seed, e.g. 4x multi-start SA + OBC-EE) on a worker pool over one
/// shared application, publishing improvements to a lock-cheap shared
/// incumbent and selecting the global best as the winner.
///
/// Determinism contract (default mode): every member solves on its own
/// single-threaded evaluator with seed derive_seed(base, index) and its own
/// fixed share of the evaluation budget, so each member's trajectory is a
/// function of (application, member index, base seed) only; the winner is
/// the cost-argmin with ties broken by member index.  The winning BusConfig,
/// its cost, and every member sub-report (minus wall_seconds) are therefore
/// bit-identical for any PortfolioSpec::jobs value and any worker claim
/// order.  Two requests trade that contract for speed, exactly like the
/// campaign runner's wall-clock caveat: SolveRequest::max_wall_seconds and
/// PortfolioSpec::racing_cut.
///
/// The shared incumbent serves three roles: aggregated progress reporting
/// (SolveProgress::best_cost is the global best while the race runs),
/// cooperative cancellation fan-out (the parent cancel flag or a false
/// progress return stops every member at its next cancellation point), and
/// — in racing_cut mode — early-cutting members that are strictly
/// dominated by another member's published best.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "flexopt/core/solver.hpp"

namespace flexopt {

/// True iff `key` names the portfolio meta-optimizer in any spelling the
/// registry accepts (names are case-insensitive there).  Front-ends that
/// special-case portfolio handling (CLI payloads, campaign thread budgets)
/// must use this instead of comparing against "portfolio" directly.
[[nodiscard]] bool is_portfolio_algorithm(std::string_view key);

/// Parses the CLI/spec member-list syntax: comma- or whitespace-separated
/// registry keys, each optionally repeated with an NxKEY prefix —
/// "4xsa,obc-ee" = {sa, sa, sa, sa, obc-ee}.  Errors on empty lists, bad
/// counts, unknown keys, and "portfolio" itself (no nesting).
[[nodiscard]] Expected<std::vector<std::string>> parse_portfolio_members(std::string_view text);

/// Renders a member list back to the canonical NxKEY spelling
/// ("4xsa+obc-ee") used in reports and bench labels.
[[nodiscard]] std::string format_portfolio_members(const std::vector<std::string>& members);

/// Validates `spec` (non-empty known members, no nesting, jobs >= 0,
/// claim_order a permutation when present) and builds the optimizer the
/// registry serves under "portfolio".
[[nodiscard]] Expected<std::unique_ptr<Optimizer>> make_portfolio_optimizer(PortfolioSpec spec);

}  // namespace flexopt
