#pragma once

/// \file solver.hpp
/// The unified optimisation surface: a polymorphic Optimizer interface and
/// a string-keyed OptimizerRegistry with self-registering factories for the
/// four algorithms of the paper (bbc, obc-ee, obc-cf, sa).  Front-ends
/// (CLI, benches, examples, services) drive optimisation exclusively
/// through this header:
///
///   auto optimizer = OptimizerRegistry::create("obc-cf");
///   if (!optimizer.ok()) ...;                 // unknown name, bad payload
///   SolveRequest request;
///   request.max_evaluations = 5000;
///   SolveReport report = optimizer.value()->solve(evaluator, request);
///
/// The old per-algorithm option structs remain the tuning payloads, passed
/// through OptimizerParams at creation time.

#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "flexopt/core/bbc.hpp"
#include "flexopt/core/obc.hpp"
#include "flexopt/core/sa.hpp"
#include "flexopt/core/solve_types.hpp"
#include "flexopt/util/expected.hpp"

namespace flexopt {

/// OBC with the exhaustive DYN-length strategy (OBC-EE).
struct ObcEeParams {
  ObcOptions obc;
  ExhaustiveDynOptions dyn;
};

/// OBC with the curve-fitting DYN-length strategy (OBC-CF, the paper's
/// contribution).
struct ObcCfParams {
  ObcOptions obc;
  CurveFitDynOptions dyn;
};

/// Per-algorithm tuning payload handed to OptimizerRegistry::create;
/// monostate selects the algorithm's defaults.  PortfolioSpec (defined in
/// solve_types.hpp) is the payload of the "portfolio" meta-optimizer.
using OptimizerParams = std::variant<std::monostate, BbcOptions, ObcEeParams, ObcCfParams,
                                     SaOptions, PortfolioSpec>;

/// A bus-access optimisation algorithm behind the unified API.  Stateless
/// across solves: one instance may serve any number of sequential solve()
/// calls (on the same or different evaluators).
///
/// Implementations override solve_cluster(), which optimises ONE bus: the
/// single cluster of a plain system, or — under CostEvaluator::set_focus —
/// one coordinate of a multi-cluster configuration product (the evaluator
/// then scores every candidate against the full cross-cluster system).
/// Front-ends call solve(), which dispatches single-cluster systems
/// straight to solve_cluster (bit-identical to the pre-cluster behaviour)
/// and drives multi-cluster systems through a deterministic block-
/// coordinate descent over the clusters.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Registry name ("bbc", "obc-ee", "obc-cf", "sa", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Algorithm hook: optimise the evaluator's (single or focused) cluster.
  virtual SolveReport solve_cluster(CostEvaluator& evaluator, const SolveRequest& request) = 0;
  /// Unified entry point (see class comment).  Also guarantees
  /// outcome.system is filled for every solve.
  SolveReport solve(CostEvaluator& evaluator, const SolveRequest& request);
  SolveReport solve(CostEvaluator& evaluator) { return solve(evaluator, SolveRequest{}); }
};

struct OptimizerInfo {
  std::string name;
  std::string description;
};

/// Process-wide, thread-safe registry of optimizer factories.  The four
/// built-in algorithms self-register; additional algorithms can be added
/// with register_optimizer or a static Registrar.
class OptimizerRegistry {
 public:
  using Factory =
      std::function<Expected<std::unique_ptr<Optimizer>>(const OptimizerParams&)>;

  /// Instantiates the named optimizer.  Names are case-insensitive and the
  /// legacy CLI spellings ("obccf", "obcee") are accepted as aliases.
  /// Errors on unknown names (the message lists the valid set) and on
  /// payloads of the wrong type.
  [[nodiscard]] static Expected<std::unique_ptr<Optimizer>> create(
      std::string_view name, const OptimizerParams& params = {});

  /// All registered algorithms, sorted by name.
  [[nodiscard]] static std::vector<OptimizerInfo> list();

  [[nodiscard]] static bool contains(std::string_view name);

  /// Registers (or replaces) a factory under `name`.
  static void register_optimizer(std::string name, std::string description, Factory factory);

  /// Registers a factory at static-initialisation time:
  ///   static OptimizerRegistry::Registrar r{"my-alg", "...", factory};
  struct Registrar {
    Registrar(std::string name, std::string description, Factory factory) {
      register_optimizer(std::move(name), std::move(description), std::move(factory));
    }
  };
};

namespace detail {
/// Defined in builtin_optimizers.cpp; referenced by every registry lookup
/// so the linker keeps the built-in factories even in static-library
/// builds.
void ensure_builtin_optimizers_registered();
}  // namespace detail

}  // namespace flexopt
