#pragma once

/// \file delta_move.hpp
/// Description of one neighbour mutation in terms of the decision
/// variables it changed.  Optimisers that walk the configuration space one
/// move at a time (SA's neighbour loop, the OBC DYN-length sweeps) build a
/// DeltaMove instead of handing the evaluator an opaque BusConfig, so
/// CostEvaluator::evaluate_delta can reuse every analysis component the
/// move did not invalidate.

#include <cstdint>
#include <limits>
#include <vector>

#include "flexopt/analysis/incremental.hpp"
#include "flexopt/flexray/bus_config.hpp"

namespace flexopt {

/// The neighbour configuration plus which decision variables differ from
/// the base it was derived from.  Build one with DeltaMove::between — the
/// flags are a diff, not a declaration, so they can never understate what
/// changed.
struct DeltaMove {
  /// The post-move configuration (of one cluster's bus).
  BusConfig config;

  /// Cluster whose BusConfig the move mutates.  0 for single-bus systems;
  /// ignored (superseded by the focus cluster) when the evaluator is
  /// focused via CostEvaluator::set_focus.  between() leaves it 0 — cluster
  /// moves stamp it explicitly or are stamped by the evaluator.
  int cluster = 0;

  bool st_slot_count_changed = false;
  bool st_slot_len_changed = false;
  bool st_owner_changed = false;
  bool minislot_count_changed = false;
  /// MessageId indices whose FrameID differs between base and `config`.
  std::vector<std::uint32_t> frame_id_changed;
  /// FrameID window [min, max] spanned by the changed messages' base and
  /// new FrameIDs ([INT_MAX, INT_MIN] when no FrameID changed); the
  /// interference sets of messages outside it are untouched by the move.
  int frame_id_window_min = std::numeric_limits<int>::max();
  int frame_id_window_max = std::numeric_limits<int>::min();

  /// Diffs `next` against `base` (the configuration the move mutated).
  [[nodiscard]] static DeltaMove between(const BusConfig& base, BusConfig next);

  [[nodiscard]] bool any_change() const {
    return st_slot_count_changed || st_slot_len_changed || st_owner_changed ||
           minislot_count_changed || !frame_id_changed.empty();
  }
  /// The analysis-layer view of this move.
  [[nodiscard]] AnalysisInvalidation invalidation() const;
};

}  // namespace flexopt
