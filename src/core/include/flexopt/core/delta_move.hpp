#pragma once

/// \file delta_move.hpp
/// Description of one neighbour mutation in terms of the decision
/// variables it changed.  Optimisers that walk the configuration space one
/// move at a time (SA's neighbour loop, the OBC DYN-length sweeps) build a
/// DeltaMove instead of handing the evaluator an opaque BusConfig, so
/// CostEvaluator::evaluate_delta can reuse every analysis component the
/// move did not invalidate.

#include <cstdint>
#include <limits>
#include <vector>

#include "flexopt/analysis/incremental.hpp"
#include "flexopt/flexray/bus_config.hpp"
#include "flexopt/model/cluster_backend.hpp"

namespace flexopt {

/// The neighbour configuration plus which decision variables differ from
/// the base it was derived from.  Build one with DeltaMove::between
/// (FlexRay) or DeltaMove::tsn_between (TSN) — the flags are a diff, not a
/// declaration, so they can never understate what changed.
struct DeltaMove {
  /// Which backend's configuration the move mutates.  FlexRay moves carry
  /// `config` and feed the incremental analysis pipeline; TSN moves carry
  /// `tsn` and are evaluated by full per-cluster re-analysis (substituted
  /// through CostEvaluator::evaluate_delta's system path, which Debug-
  /// asserts bit-exactness against the cache-free reference).
  ClusterBackendKind backend = ClusterBackendKind::FlexRay;

  /// The post-move configuration (of one cluster's bus).
  BusConfig config;

  /// The post-move TSN configuration (meaningful iff backend == Tsn).
  TsnConfig tsn;
  /// True when the TSN payload differs from its base (tsn_between's diff).
  bool tsn_changed = false;

  /// Cluster whose config the move mutates.  0 for single-bus systems;
  /// ignored (superseded by the focus cluster) when the evaluator is
  /// focused via CostEvaluator::set_focus.  between() leaves it 0 — cluster
  /// moves stamp it explicitly or are stamped by the evaluator.
  int cluster = 0;

  bool st_slot_count_changed = false;
  bool st_slot_len_changed = false;
  bool st_owner_changed = false;
  bool minislot_count_changed = false;
  /// MessageId indices whose FrameID differs between base and `config`.
  std::vector<std::uint32_t> frame_id_changed;
  /// FrameID window [min, max] spanned by the changed messages' base and
  /// new FrameIDs ([INT_MAX, INT_MIN] when no FrameID changed); the
  /// interference sets of messages outside it are untouched by the move.
  int frame_id_window_min = std::numeric_limits<int>::max();
  int frame_id_window_max = std::numeric_limits<int>::min();

  /// Diffs `next` against `base` (the configuration the move mutated).
  [[nodiscard]] static DeltaMove between(const BusConfig& base, BusConfig next);

  /// Diffs a TSN neighbour against its base for cluster `cluster`.
  [[nodiscard]] static DeltaMove tsn_between(const TsnConfig& base, TsnConfig next, int cluster);

  [[nodiscard]] bool any_change() const {
    if (backend == ClusterBackendKind::Tsn) return tsn_changed;
    return st_slot_count_changed || st_slot_len_changed || st_owner_changed ||
           minislot_count_changed || !frame_id_changed.empty();
  }
  /// The analysis-layer view of this move (FlexRay moves only; TSN moves
  /// never reach the incremental invalidation machinery).
  [[nodiscard]] AnalysisInvalidation invalidation() const;
};

}  // namespace flexopt
