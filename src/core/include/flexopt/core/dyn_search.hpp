#pragma once

/// \file dyn_search.hpp
/// Strategies for `Determine_DYN_segment_length()` (Fig. 6 line 6): given a
/// fixed ST segment, find the DYN segment length minimising the Eq. 5 cost.
///
/// * ExhaustiveDynSearch — full analysis at every candidate length (OBC-EE).
/// * CurveFitDynSearch — the paper's contribution (Fig. 8): full analysis
///   at a handful of lengths, Newton-polynomial interpolation of every
///   activity's completion bound elsewhere, iterative refinement until a
///   schedulable length is confirmed or Nmax stale iterations pass.

#include <memory>

#include "flexopt/core/evaluator.hpp"

namespace flexopt {

class SolveControl;

struct DynSearchResult {
  int minislots = 0;
  Cost cost{kInvalidConfigCost, false, 0};
  /// True when `cost` comes from a full analysis (never from interpolation).
  bool exact = false;
};

/// Interface: search [dyn_min, dyn_max] (minislots) for the best DYN length
/// for `base` (a BusConfig with the ST segment and FrameIDs already fixed;
/// minislot_count is overwritten by the search).  `control` (nullable)
/// enforces SolveRequest budgets at the strategy's cancellation points.
/// `warm_base` (nullable) is a configuration the evaluator has already
/// analysed — typically the previous ST point of the OBC outer loop — that
/// delta-capable strategies use as the base of their first DeltaMove.
class DynSegmentStrategy {
 public:
  virtual ~DynSegmentStrategy() = default;
  virtual DynSearchResult search(CostEvaluator& evaluator, const BusConfig& base, int dyn_min,
                                 int dyn_max, SolveControl* control = nullptr,
                                 const BusConfig* warm_base = nullptr) = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

struct ExhaustiveDynOptions {
  /// Candidate stride in minislots; 0 = auto from max_sweep_points.
  int stride_minislots = 0;
  int max_sweep_points = 96;
  /// Sweep sequentially with CostEvaluator::evaluate_delta when the
  /// evaluator has no worker pool to fan candidates across (results are
  /// bit-identical either way; the parallel batch wins wall-clock when
  /// threads are available, the delta path recomputes fewer components).
  bool use_delta_evaluation = true;
};

/// Full analysis at every candidate length (OBC-EE).  Candidates are fanned
/// across the evaluator's worker pool in batches; results are identical to
/// the serial sweep (in-order, strictly-better comparisons).
class ExhaustiveDynSearch final : public DynSegmentStrategy {
 public:
  explicit ExhaustiveDynSearch(ExhaustiveDynOptions options = {}) : options_(options) {}
  DynSearchResult search(CostEvaluator& evaluator, const BusConfig& base, int dyn_min,
                         int dyn_max, SolveControl* control = nullptr,
                         const BusConfig* warm_base = nullptr) override;
  [[nodiscard]] const char* name() const override { return "exhaustive"; }

 private:
  ExhaustiveDynOptions options_;
};

struct CurveFitDynOptions {
  /// Initial fully-analysed points (the paper uses 5).
  int initial_points = 5;
  /// Terminate after this many iterations without a schedulable solution or
  /// cost improvement (the paper uses 10).
  int n_max = 10;
  /// Candidate grid stride; 0 = auto from max_candidates.
  int stride_minislots = 0;
  int max_candidates = 128;
  /// Analyse points through CostEvaluator::evaluate_delta, chaining each
  /// point off the previously analysed one (bit-identical results).
  bool use_delta_evaluation = true;
};

class CurveFitDynSearch final : public DynSegmentStrategy {
 public:
  explicit CurveFitDynSearch(CurveFitDynOptions options = {}) : options_(options) {}
  DynSearchResult search(CostEvaluator& evaluator, const BusConfig& base, int dyn_min,
                         int dyn_max, SolveControl* control = nullptr,
                         const BusConfig* warm_base = nullptr) override;
  [[nodiscard]] const char* name() const override { return "curve-fit"; }

 private:
  CurveFitDynOptions options_;
};

}  // namespace flexopt
