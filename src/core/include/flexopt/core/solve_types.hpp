#pragma once

/// \file solve_types.hpp
/// The request/report pair of the unified solver interface, plus the
/// SolveControl coordinator that algorithm implementations poll to honour
/// evaluation budgets, wall-clock limits, progress reporting, and
/// cooperative cancellation.  Front-ends consume these through
/// flexopt/core/solver.hpp; the per-algorithm implementations include this
/// header only.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "flexopt/core/evaluator.hpp"

namespace flexopt {

/// Snapshot handed to the progress callback while a solve runs.
struct SolveProgress {
  std::string_view algorithm;
  /// Full analyses spent by this solve so far / allowed in total (0 = no
  /// evaluation budget).
  long evaluations = 0;
  long max_evaluations = 0;
  double elapsed_seconds = 0.0;
  /// Best Eq. 5 cost seen so far (kInvalidConfigCost until a candidate
  /// analyses successfully).
  double best_cost = kInvalidConfigCost;
  bool feasible = false;
};

/// Return false to cancel the solve cooperatively.
using SolveProgressCallback = std::function<bool(const SolveProgress&)>;

/// Budgets and hooks shared by every optimiser.  Per-algorithm tuning stays
/// in the per-algorithm option structs (the registry payloads); this is the
/// part a front-end can set without knowing which algorithm it drives.
struct SolveRequest {
  /// Seed for stochastic algorithms (SA); deterministic ones ignore it.
  /// Unset keeps the seed of the per-algorithm option payload.
  std::optional<std::uint64_t> seed;
  /// Full-analysis budget; 0 = the algorithm's own default/unlimited.
  long max_evaluations = 0;
  /// Wall-clock budget in seconds; 0 = unlimited.
  double max_wall_seconds = 0.0;
  /// Called whenever the spent-evaluation count advances.
  SolveProgressCallback progress;
  /// Set to true (from any thread) to stop the solve at the next
  /// cancellation point; the best solution found so far is still reported.
  std::shared_ptr<std::atomic<bool>> cancel;
};

/// Composition of the "portfolio" optimizer (flexopt/core/portfolio.hpp):
/// a racing pool of registry members sharing one incumbent.  Lives here —
/// not in portfolio.hpp — so the OptimizerParams variant in solver.hpp can
/// carry it without a header cycle.
struct PortfolioSpec {
  /// Registry keys, one solve per entry.  Repeating a stochastic key
  /// ("sa") multi-starts it: member i solves with seed
  /// derive_seed(base, i), so repeats explore different trajectories.
  /// "portfolio" itself is rejected (no nesting).
  std::vector<std::string> members{"sa", "sa", "sa", "sa", "obc-ee", "obc-cf"};
  /// Worker threads racing the members; 0 = hardware concurrency.  Never
  /// affects the winning configuration (see the determinism contract in
  /// portfolio.hpp).
  int jobs = 0;
  /// Base seed for per-member seed derivation; SolveRequest::seed
  /// overrides it, exactly like for "sa".
  std::uint64_t seed = 1;
  /// Cancel a member as soon as the shared incumbent is feasible and
  /// strictly better than that member's own best (racing mode).  Spends
  /// less work on losing members but — like a wall-clock budget — trades
  /// the bit-identical determinism contract away, because which member
  /// publishes the incumbent first depends on scheduling.  Off by default.
  bool racing_cut = false;
  /// Testing hook: the order in which workers claim members (a permutation
  /// of 0..members.size()-1; empty = identity).  Results are independent
  /// of it — the portfolio determinism property test proves exactly that
  /// by shuffling it.
  std::vector<int> claim_order;
};

/// One improvement of a member's own best, stamped with the member-local
/// evaluation count (deterministic, unlike wall-clock).  The concatenated
/// per-member lists are the portfolio's incumbent timeline.
struct IncumbentEvent {
  long evaluations = 0;
  double cost = kInvalidConfigCost;
  bool feasible = false;
};

/// Why a solve returned.
enum class SolveStatus {
  Complete,         ///< the algorithm ran to its natural termination
  BudgetExhausted,  ///< stopped by SolveRequest::max_evaluations
  TimeLimit,        ///< stopped by SolveRequest::max_wall_seconds
  Cancelled,        ///< cancel flag set or progress callback returned false
};

[[nodiscard]] const char* to_string(SolveStatus status);

/// Sub-report of one portfolio member: everything a standalone SolveReport
/// records, minus the winning configuration (the portfolio keeps only the
/// winner's), plus the member identity and its improvement timeline.  Every
/// field except wall_seconds is deterministic for a fixed base seed.
struct MemberSolveReport {
  /// "algorithm#index", e.g. "sa#2" — unique within the portfolio.
  std::string member;
  std::string algorithm;  ///< registry key this member ran
  std::uint64_t seed = 0;
  /// This member's share of SolveRequest::max_evaluations (0 = the
  /// algorithm's own default).
  long budget = 0;
  bool winner = false;
  double cost = kInvalidConfigCost;
  bool feasible = false;
  long evaluations = 0;
  SolveStatus status = SolveStatus::Complete;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t delta_evaluations = 0;
  std::uint64_t components_recomputed = 0;
  std::uint64_t components_reused = 0;
  /// Observational only — excluded from deterministic reports.
  double wall_seconds = 0.0;
  /// Member-local incumbent improvements, in evaluation order.
  std::vector<IncumbentEvent> improvements;
  /// This member's profiling-counter deltas (summed into the portfolio's
  /// SolveReport::profile; not serialized per member).
  EvaluatorWorkStats profile;
};

/// Unified result of Optimizer::solve — the algorithm outcome plus how the
/// run ended and what the evaluator's cache contributed.
struct SolveReport {
  OptimizationOutcome outcome;
  SolveStatus status = SolveStatus::Complete;
  /// Cache hits/misses incurred by this solve (deltas, not totals).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Incremental-evaluation accounting for this solve (deltas, not
  /// totals): analyses served by evaluate_delta, and how many analysis
  /// components (schedule builds + FPS/DYN recurrences) were recomputed
  /// vs reused from the component caches / skipped as unchanged.
  std::uint64_t delta_evaluations = 0;
  std::uint64_t components_recomputed = 0;
  std::uint64_t components_reused = 0;
  /// Always-on profiling deltas for this solve: the full work-counter
  /// snapshot difference (holistic/fixed-point iteration totals, arena
  /// reuse, the work-per-move histogram).  Deterministic for a fixed seed;
  /// serialized as the report's `profile` block.
  EvaluatorWorkStats profile;
  /// Portfolio solves only: the winning member id ("sa#2") and one
  /// sub-report per member, in member order.  Empty otherwise.
  std::string winner;
  std::vector<MemberSolveReport> members;
};

/// Polled by algorithm implementations at their cancellation points.  A
/// default-constructed control never stops anything (the legacy free
/// functions pass nullptr instead).  Not thread-safe: one control per solve,
/// polled from the solve's driving thread.
class SolveControl {
 public:
  /// `request` must outlive the solve call.
  SolveControl(const SolveRequest& request, const CostEvaluator& evaluator,
               std::string_view algorithm);

  /// True when the solve must stop (sticky).  Also emits progress whenever
  /// the spent-evaluation count advanced since the last poll.
  [[nodiscard]] bool should_stop(const CostEvaluator& evaluator);

  /// Full analyses this solve may still spend; LONG_MAX when unbudgeted.
  [[nodiscard]] long remaining_evaluations(const CostEvaluator& evaluator) const;
  [[nodiscard]] long evaluations_used(const CostEvaluator& evaluator) const;

  /// Feeds progress reporting; call when the incumbent improves.
  void note_best(const Cost& cost);

  /// Marks the run BudgetExhausted iff it is still Complete and the
  /// request's evaluation budget is spent.  For algorithms whose own loop
  /// enforces the same budget and exits before should_stop() notices (SA);
  /// deliberately checks nothing else, so a naturally finished run is never
  /// re-labelled TimeLimit/Cancelled after the fact.
  void mark_budget_exhausted_if_spent(const CostEvaluator& evaluator);

  [[nodiscard]] SolveStatus status() const { return status_; }
  [[nodiscard]] double elapsed_seconds() const;

 private:
  const SolveRequest* request_;
  std::string_view algorithm_;
  std::chrono::steady_clock::time_point start_;
  long evals_at_start_ = 0;
  long last_reported_evals_ = -1;
  double best_cost_ = kInvalidConfigCost;
  bool best_feasible_ = false;
  SolveStatus status_ = SolveStatus::Complete;
};

}  // namespace flexopt
