#pragma once

/// \file solve_types.hpp
/// The request/report pair of the unified solver interface, plus the
/// SolveControl coordinator that algorithm implementations poll to honour
/// evaluation budgets, wall-clock limits, progress reporting, and
/// cooperative cancellation.  Front-ends consume these through
/// flexopt/core/solver.hpp; the per-algorithm implementations include this
/// header only.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>

#include "flexopt/core/evaluator.hpp"

namespace flexopt {

/// Snapshot handed to the progress callback while a solve runs.
struct SolveProgress {
  std::string_view algorithm;
  /// Full analyses spent by this solve so far / allowed in total (0 = no
  /// evaluation budget).
  long evaluations = 0;
  long max_evaluations = 0;
  double elapsed_seconds = 0.0;
  /// Best Eq. 5 cost seen so far (kInvalidConfigCost until a candidate
  /// analyses successfully).
  double best_cost = kInvalidConfigCost;
  bool feasible = false;
};

/// Return false to cancel the solve cooperatively.
using SolveProgressCallback = std::function<bool(const SolveProgress&)>;

/// Budgets and hooks shared by every optimiser.  Per-algorithm tuning stays
/// in the per-algorithm option structs (the registry payloads); this is the
/// part a front-end can set without knowing which algorithm it drives.
struct SolveRequest {
  /// Seed for stochastic algorithms (SA); deterministic ones ignore it.
  /// Unset keeps the seed of the per-algorithm option payload.
  std::optional<std::uint64_t> seed;
  /// Full-analysis budget; 0 = the algorithm's own default/unlimited.
  long max_evaluations = 0;
  /// Wall-clock budget in seconds; 0 = unlimited.
  double max_wall_seconds = 0.0;
  /// Called whenever the spent-evaluation count advances.
  SolveProgressCallback progress;
  /// Set to true (from any thread) to stop the solve at the next
  /// cancellation point; the best solution found so far is still reported.
  std::shared_ptr<std::atomic<bool>> cancel;
};

/// Why a solve returned.
enum class SolveStatus {
  Complete,         ///< the algorithm ran to its natural termination
  BudgetExhausted,  ///< stopped by SolveRequest::max_evaluations
  TimeLimit,        ///< stopped by SolveRequest::max_wall_seconds
  Cancelled,        ///< cancel flag set or progress callback returned false
};

[[nodiscard]] const char* to_string(SolveStatus status);

/// Unified result of Optimizer::solve — the algorithm outcome plus how the
/// run ended and what the evaluator's cache contributed.
struct SolveReport {
  OptimizationOutcome outcome;
  SolveStatus status = SolveStatus::Complete;
  /// Cache hits/misses incurred by this solve (deltas, not totals).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Incremental-evaluation accounting for this solve (deltas, not
  /// totals): analyses served by evaluate_delta, and how many analysis
  /// components (schedule builds + FPS/DYN recurrences) were recomputed
  /// vs reused from the component caches / skipped as unchanged.
  std::uint64_t delta_evaluations = 0;
  std::uint64_t components_recomputed = 0;
  std::uint64_t components_reused = 0;
};

/// Polled by algorithm implementations at their cancellation points.  A
/// default-constructed control never stops anything (the legacy free
/// functions pass nullptr instead).  Not thread-safe: one control per solve,
/// polled from the solve's driving thread.
class SolveControl {
 public:
  /// `request` must outlive the solve call.
  SolveControl(const SolveRequest& request, const CostEvaluator& evaluator,
               std::string_view algorithm);

  /// True when the solve must stop (sticky).  Also emits progress whenever
  /// the spent-evaluation count advanced since the last poll.
  [[nodiscard]] bool should_stop(const CostEvaluator& evaluator);

  /// Full analyses this solve may still spend; LONG_MAX when unbudgeted.
  [[nodiscard]] long remaining_evaluations(const CostEvaluator& evaluator) const;
  [[nodiscard]] long evaluations_used(const CostEvaluator& evaluator) const;

  /// Feeds progress reporting; call when the incumbent improves.
  void note_best(const Cost& cost);

  /// Marks the run BudgetExhausted iff it is still Complete and the
  /// request's evaluation budget is spent.  For algorithms whose own loop
  /// enforces the same budget and exits before should_stop() notices (SA);
  /// deliberately checks nothing else, so a naturally finished run is never
  /// re-labelled TimeLimit/Cancelled after the fact.
  void mark_budget_exhausted_if_spent(const CostEvaluator& evaluator);

  [[nodiscard]] SolveStatus status() const { return status_; }
  [[nodiscard]] double elapsed_seconds() const;

 private:
  const SolveRequest* request_;
  std::string_view algorithm_;
  std::chrono::steady_clock::time_point start_;
  long evals_at_start_ = 0;
  long last_reported_evals_ = -1;
  double best_cost_ = kInvalidConfigCost;
  bool best_feasible_ = false;
  SolveStatus status_ = SolveStatus::Complete;
};

}  // namespace flexopt
