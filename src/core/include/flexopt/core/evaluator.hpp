#pragma once

/// \file evaluator.hpp
/// Cost evaluation service shared by all optimisers: wraps BusLayout
/// construction + holistic analysis + Eq. 5, and counts evaluations so the
/// Fig. 9 runtime comparison can report work done.

#include <string>

#include "flexopt/analysis/system_analysis.hpp"
#include "flexopt/flexray/bus_config.hpp"
#include "flexopt/flexray/params.hpp"

namespace flexopt {

/// Cost assigned to configurations that violate the protocol or for which
/// no static schedule exists; large enough to lose against any analysable
/// configuration.
inline constexpr double kInvalidConfigCost = 1e15;

class CostEvaluator {
 public:
  CostEvaluator(const Application& app, const BusParams& params, AnalysisOptions options);

  struct Evaluation {
    bool valid = false;
    Cost cost{kInvalidConfigCost, false, 0};
    AnalysisResult analysis;
    std::string error;
  };

  /// Full scheduling + schedulability analysis of one candidate.
  Evaluation evaluate(const BusConfig& config);

  [[nodiscard]] const Application& application() const { return *app_; }
  [[nodiscard]] const BusParams& params() const { return params_; }
  [[nodiscard]] const AnalysisOptions& analysis_options() const { return options_; }
  /// Number of full analyses performed so far.
  [[nodiscard]] long evaluations() const { return evaluations_; }

 private:
  const Application* app_;
  BusParams params_;
  AnalysisOptions options_;
  long evaluations_ = 0;
};

/// Outcome shared by all optimisation algorithms.
struct OptimizationOutcome {
  BusConfig config;
  Cost cost{kInvalidConfigCost, false, 0};
  bool feasible = false;
  /// Full analyses performed by this run.
  long evaluations = 0;
  double wall_seconds = 0.0;
  std::string algorithm;
};

}  // namespace flexopt
