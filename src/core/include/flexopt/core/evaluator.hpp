#pragma once

/// \file evaluator.hpp
/// Cost evaluation service shared by all optimisers: wraps BusLayout
/// construction + holistic analysis + Eq. 5, memoizes results per
/// configuration, and counts full analyses so the Fig. 9 runtime comparison
/// can report work done.
///
/// The evaluator is a thread-safe service: it owns the Application by
/// shared_ptr (evaluations stay valid after the caller's copy goes away),
/// `evaluate()` may be called concurrently from any number of threads, and
/// `evaluate_many()` fans a batch of candidates across a worker pool.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "flexopt/analysis/incremental.hpp"
#include "flexopt/analysis/system_analysis.hpp"
#include "flexopt/core/delta_move.hpp"
#include "flexopt/flexray/bus_config.hpp"
#include "flexopt/flexray/params.hpp"

namespace flexopt {

/// Cost assigned to configurations that violate the protocol or for which
/// no static schedule exists; large enough to lose against any analysable
/// configuration.
inline constexpr double kInvalidConfigCost = 1e15;

/// Stable hash of the decision variables; keys the evaluator's memoization
/// cache (collisions are resolved by full BusConfig equality).
[[nodiscard]] std::size_t hash_config(const BusConfig& config);

/// Behaviour knobs of the evaluation service (cache + worker pool).
struct EvaluatorOptions {
  /// Memoize BusConfig -> Evaluation.  Optimisers that revisit
  /// configurations (SA, nested OBC loops) pay one analysis per distinct
  /// candidate instead of one per visit.
  bool cache_enabled = true;
  /// Insertion stops once the cache holds this many entries (the hot
  /// configurations of a run are cached early; this bounds memory on
  /// multi-hour SA runs).
  std::size_t max_cache_entries = 1u << 16;
  /// Worker threads for evaluate_many(); 0 = hardware concurrency.
  int threads = 0;
};

/// Cache effectiveness counters (monotonic over the evaluator's lifetime).
struct EvaluatorCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::size_t entries = 0;
};

/// Work accounting across full and delta evaluations (monotonic over the
/// evaluator's lifetime).  `analysis.components()` is the recomputed-work
/// metric the perf-smoke CI gate compares between the two paths.
struct EvaluatorWorkStats {
  AnalysisWorkCounters analysis;
  std::uint64_t full_evaluations = 0;   ///< evaluate() analyses (cache misses)
  std::uint64_t delta_evaluations = 0;  ///< evaluate_delta() analyses
  std::uint64_t delta_seeded = 0;       ///< delta analyses seeded from a converged base
  std::uint64_t components_reused() const {
    return analysis.schedule_reuses + analysis.fps_skipped + analysis.dyn_skipped;
  }
};

class CostEvaluator {
 public:
  /// Shares ownership of `app`: the evaluator (and every Evaluation it
  /// hands out) remains valid after the caller drops its reference.
  CostEvaluator(std::shared_ptr<const Application> app, const BusParams& params,
                AnalysisOptions options, EvaluatorOptions evaluator_options = {});
  /// Convenience overload: copies `app` into shared ownership.
  CostEvaluator(const Application& app, const BusParams& params, AnalysisOptions options,
                EvaluatorOptions evaluator_options = {});
  ~CostEvaluator();
  CostEvaluator(const CostEvaluator&) = delete;
  CostEvaluator& operator=(const CostEvaluator&) = delete;

  struct Evaluation {
    bool valid = false;
    Cost cost{kInvalidConfigCost, false, 0};
    AnalysisResult analysis;
    std::string error;
  };

  /// Full scheduling + schedulability analysis of one candidate (served
  /// from the cache when the configuration was seen before).  Thread-safe.
  Evaluation evaluate(const BusConfig& config);

  /// Incremental analysis of a neighbour: evaluates `move.config`
  /// recomputing only the analysis components the move invalidated,
  /// reusing the rest from the component caches and (when `base` is a
  /// cached, converged evaluation) from the base's fixed point.  The
  /// result is bit-identical to evaluate(move.config) — asserted against
  /// the full path in Debug builds — and is entered into the same
  /// configuration cache.  Thread-safe.
  Evaluation evaluate_delta(const BusConfig& base, const DeltaMove& move);

  /// Evaluates a batch of candidates on the worker pool; results are in
  /// input order and identical to calling evaluate() serially.  The pool
  /// is persistent: threads are spawned lazily on the first batch and
  /// reused across calls, so small per-batch sweeps stay cheap.
  std::vector<Evaluation> evaluate_many(std::span<const BusConfig> configs);

  [[nodiscard]] const Application& application() const { return *app_; }
  [[nodiscard]] const std::shared_ptr<const Application>& application_ptr() const {
    return app_;
  }
  [[nodiscard]] const BusParams& params() const { return params_; }
  [[nodiscard]] const AnalysisOptions& analysis_options() const { return options_; }
  [[nodiscard]] const EvaluatorOptions& evaluator_options() const {
    return evaluator_options_;
  }

  /// Number of full analyses performed so far (cache hits excluded) —
  /// the work metric every optimisation budget is charged against.
  [[nodiscard]] long evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }

  /// Worker threads evaluate_many() will use (EvaluatorOptions::threads
  /// resolved against hardware concurrency); >= 1.
  [[nodiscard]] int worker_threads() const;

  [[nodiscard]] EvaluatorCacheStats cache_stats() const;
  [[nodiscard]] EvaluatorWorkStats work_stats() const;
  void clear_cache();

 private:
  /// The uncached path: BusLayout::build + analyze_system + Eq. 5.
  Evaluation analyze(const BusConfig& config);
  /// The uncached delta path: BusLayout::build + analyze_system_incremental.
  Evaluation analyze_delta(const std::shared_ptr<const Evaluation>& base_eval,
                           const DeltaMove& move);
  /// Cache lookup only (no analysis on miss); nullptr when absent.
  std::shared_ptr<const Evaluation> cached(const BusConfig& config);
  void insert_cache(const BusConfig& config, std::shared_ptr<const Evaluation> entry);
  void add_work(const AnalysisWorkCounters& counters);

  struct ConfigHash {
    std::size_t operator()(const BusConfig& config) const { return hash_config(config); }
  };

  /// One evaluate_many call in flight: workers claim indices via `next`;
  /// `active` counts workers currently inside the batch so the caller can
  /// destroy it only after everyone has checked out.
  struct Batch {
    std::span<const BusConfig> configs;
    std::vector<Evaluation>* out = nullptr;
    std::atomic<std::size_t> next{0};
    int active = 0;  // guarded by pool_mutex_
  };

  void ensure_pool();
  void pool_worker();
  void drain(Batch& batch);

  std::shared_ptr<const Application> app_;
  BusParams params_;
  AnalysisOptions options_;
  EvaluatorOptions evaluator_options_;
  std::atomic<long> evaluations_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  mutable std::mutex cache_mutex_;
  std::unordered_map<BusConfig, std::shared_ptr<const Evaluation>, ConfigHash> cache_;

  AnalysisComponentCache components_;
  mutable std::mutex work_mutex_;
  EvaluatorWorkStats work_;  // guarded by work_mutex_

  std::mutex pool_mutex_;
  std::condition_variable pool_wake_;  ///< workers: a new batch was posted
  std::condition_variable pool_done_;  ///< caller: all workers left the batch
  std::vector<std::thread> pool_;      // spawned lazily, guarded by pool_mutex_
  Batch* batch_ = nullptr;             // guarded by pool_mutex_
  std::uint64_t batch_generation_ = 0;  // guarded by pool_mutex_
  bool shutting_down_ = false;          // guarded by pool_mutex_
};

/// Outcome shared by all optimisation algorithms.
struct OptimizationOutcome {
  BusConfig config;
  Cost cost{kInvalidConfigCost, false, 0};
  bool feasible = false;
  /// Full analyses performed by this run.
  long evaluations = 0;
  double wall_seconds = 0.0;
  std::string algorithm;
};

}  // namespace flexopt
