#pragma once

/// \file evaluator.hpp
/// Cost evaluation service shared by all optimisers: wraps BusLayout
/// construction + holistic analysis + Eq. 5, memoizes results per
/// configuration, and counts full analyses so the Fig. 9 runtime comparison
/// can report work done.
///
/// The evaluator is a thread-safe service: it owns the Application by
/// shared_ptr (evaluations stay valid after the caller's copy goes away),
/// `evaluate()` may be called concurrently from any number of threads, and
/// `evaluate_many()` fans a batch of candidates across a worker pool.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "flexopt/analysis/incremental.hpp"
#include "flexopt/analysis/system_analysis.hpp"
#include "flexopt/core/delta_move.hpp"
#include "flexopt/flexray/bus_config.hpp"
#include "flexopt/flexray/params.hpp"
#include "flexopt/flexray/system_config.hpp"
#include "flexopt/model/system_model.hpp"
#include "flexopt/util/stat.hpp"

namespace flexopt {

/// Cost assigned to configurations that violate the protocol or for which
/// no static schedule exists; large enough to lose against any analysable
/// configuration.
inline constexpr double kInvalidConfigCost = 1e15;

/// Stable hash of the decision variables; keys the evaluator's memoization
/// cache (collisions are resolved by full BusConfig equality).
[[nodiscard]] std::size_t hash_config(const BusConfig& config);

/// Stable hash over the per-cluster configs; keys the evaluator's
/// SystemConfig memoization cache.
[[nodiscard]] std::size_t hash_system_config(const SystemConfig& config);

/// Behaviour knobs of the evaluation service (cache + worker pool).
struct EvaluatorOptions {
  /// Memoize BusConfig -> Evaluation.  Optimisers that revisit
  /// configurations (SA, nested OBC loops) pay one analysis per distinct
  /// candidate instead of one per visit.
  bool cache_enabled = true;
  /// Insertion stops once the cache holds this many entries (the hot
  /// configurations of a run are cached early; this bounds memory on
  /// multi-hour SA runs).
  std::size_t max_cache_entries = 1u << 16;
  /// Worker threads for evaluate_many(); 0 = hardware concurrency.
  int threads = 0;
};

/// Cache effectiveness counters (monotonic over the evaluator's lifetime).
struct EvaluatorCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::size_t entries = 0;
};

/// Work accounting across full and delta evaluations (monotonic over the
/// evaluator's lifetime).  `analysis.components()` is the recomputed-work
/// metric the perf-smoke CI gate compares between the two paths.
struct EvaluatorWorkStats {
  AnalysisWorkCounters analysis;
  std::uint64_t full_evaluations = 0;   ///< evaluate() analyses (cache misses)
  std::uint64_t delta_evaluations = 0;  ///< evaluate_delta() analyses
  std::uint64_t delta_seeded = 0;       ///< delta analyses seeded from a converged base
  std::uint64_t arena_binds = 0;        ///< analysis arenas (re)allocated
  std::uint64_t arena_reuses = 0;       ///< steady-state arena rebinds (no allocation)
  /// Response-time recurrences actually recomputed per delta evaluation
  /// (fps_analyses + dyn_analyses + schedule_builds of that evaluation) —
  /// the work-per-move distribution the profile report surfaces.
  Histogram components_per_delta;
  std::uint64_t components_reused() const {
    return analysis.schedule_reuses + analysis.fps_skipped + analysis.dyn_skipped;
  }
  EvaluatorWorkStats& operator+=(const EvaluatorWorkStats& other) {
    analysis += other.analysis;
    full_evaluations += other.full_evaluations;
    delta_evaluations += other.delta_evaluations;
    delta_seeded += other.delta_seeded;
    arena_binds += other.arena_binds;
    arena_reuses += other.arena_reuses;
    components_per_delta += other.components_per_delta;
    return *this;
  }
  /// Field-wise delta against an earlier snapshot — the per-solve profile
  /// SolveReport carries (the counters are monotonic, so this is exact).
  [[nodiscard]] EvaluatorWorkStats since(const EvaluatorWorkStats& before) const {
    EvaluatorWorkStats d;
    d.analysis = analysis.since(before.analysis);
    d.full_evaluations = full_evaluations - before.full_evaluations;
    d.delta_evaluations = delta_evaluations - before.delta_evaluations;
    d.delta_seeded = delta_seeded - before.delta_seeded;
    d.arena_binds = arena_binds - before.arena_binds;
    d.arena_reuses = arena_reuses - before.arena_reuses;
    d.components_per_delta = components_per_delta.since(before.components_per_delta);
    return d;
  }
};

class CostEvaluator {
 public:
  /// Shares ownership of `app`: the evaluator (and every Evaluation it
  /// hands out) remains valid after the caller drops its reference.  The
  /// application is wrapped as its own single-cluster SystemModel.
  CostEvaluator(std::shared_ptr<const Application> app, const BusParams& params,
                AnalysisOptions options, EvaluatorOptions evaluator_options = {});
  /// Convenience overload: copies `app` into shared ownership.
  CostEvaluator(const Application& app, const BusParams& params, AnalysisOptions options,
                EvaluatorOptions evaluator_options = {});
  /// Multi-cluster evaluator over a projected system model (one bus per
  /// cluster; all clusters share `params`).
  CostEvaluator(SystemModel model, const BusParams& params, AnalysisOptions options,
                EvaluatorOptions evaluator_options = {});
  /// Sibling evaluator: shares `parent`'s system model, bus parameters,
  /// analysis options, and focus context, with fresh caches/counters and
  /// its own EvaluatorOptions.  The portfolio optimizer gives every racing
  /// member one of these so member trajectories stay schedule-independent.
  CostEvaluator(const CostEvaluator& parent, EvaluatorOptions evaluator_options);
  ~CostEvaluator();
  CostEvaluator(const CostEvaluator&) = delete;
  CostEvaluator& operator=(const CostEvaluator&) = delete;

  struct Evaluation {
    bool valid = false;
    Cost cost{kInvalidConfigCost, false, 0};
    /// Single-cluster analyses, or — under set_focus — the focused
    /// cluster's holistic result; default-constructed for unfocused
    /// multi-cluster evaluations (use `cluster_analysis` there).
    AnalysisResult analysis;
    /// Unfocused multi-cluster evaluations only: one holistic result per
    /// cluster.  Focused returns carry only `cost` plus the focused
    /// cluster's result in `analysis` (this vector stays empty).
    std::vector<AnalysisResult> cluster_analysis;
    /// Multi-cluster evaluations only: cross-cluster fixed point converged.
    bool multicluster_converged = true;
    std::string error;
  };

  /// Full scheduling + schedulability analysis of one candidate (served
  /// from the cache when the configuration was seen before).  Thread-safe.
  /// Single-cluster systems evaluate `config` directly; under set_focus the
  /// candidate is substituted into the focus context's focused cluster and
  /// the full system is evaluated.  A multi-cluster evaluator without a
  /// focus reports an invalid Evaluation (use evaluate_system).
  Evaluation evaluate(const BusConfig& config);

  /// Full system evaluation of one per-cluster configuration product
  /// candidate (cross-cluster fixed point; cached on the SystemConfig
  /// hash).  Thread-safe.  For single-cluster FlexRay systems this is
  /// exactly evaluate(config.clusters[0].flexray).
  Evaluation evaluate_system(const SystemConfig& config);

  /// Incremental analysis of a neighbour: evaluates `move.config`
  /// recomputing only the analysis components the move invalidated,
  /// reusing the rest from the component caches and (when `base` is a
  /// cached, converged evaluation) from the base's fixed point.  The
  /// result is bit-identical to evaluate(move.config) — asserted against
  /// the full path in Debug builds — and is entered into the same
  /// configuration cache.  Thread-safe.
  Evaluation evaluate_delta(const BusConfig& base, const DeltaMove& move);

  /// Allocation-free evaluate_delta: the single-cluster delta-analysis hot
  /// path run entirely in this thread's preallocated slot (arena, layout,
  /// result).  Semantics and results are identical to evaluate_delta; the
  /// returned reference points into thread-local storage and is valid until
  /// the next evaluator call on the same thread — copy it to keep it.  At
  /// steady state (same application, memo cache disabled) a call performs
  /// zero heap allocations; with the memo cache enabled, cache insertion
  /// still allocates on a miss.  Focused / multi-cluster evaluators fall
  /// back to the allocating evaluate_delta path internally.
  const Evaluation& evaluate_delta_fast(const BusConfig& base, const DeltaMove& move);

  /// Same, with the base supplied directly instead of being looked up in
  /// the memo cache — the form callers with a disabled cache use (SA, the
  /// delta benchmark).  `base_eval` must stay alive for the duration of the
  /// call; passing the reference returned by a previous evaluate_delta_fast
  /// on this thread is allowed (the base is staged out of the slot first).
  const Evaluation& evaluate_delta_fast(const Evaluation& base_eval, const DeltaMove& move);

  /// Multi-cluster delta: `move.cluster` names the cluster whose BusConfig
  /// the move replaces within `base`.  Cross-cluster coupling invalidates
  /// the seeded fast path, so the result is recomputed through the
  /// per-cluster component caches (geometry components of untouched
  /// clusters are reused) and is bit-identical to
  /// evaluate_system(substituted) — asserted in Debug builds.
  Evaluation evaluate_delta(const SystemConfig& base, const DeltaMove& move);

  /// Evaluates a batch of candidates on the worker pool; results are in
  /// input order and identical to calling evaluate() serially.  The pool
  /// is persistent: threads are spawned lazily on the first batch and
  /// reused across calls, so small per-batch sweeps stay cheap.
  std::vector<Evaluation> evaluate_many(std::span<const BusConfig> configs);

  /// The application the current search runs over: the focused cluster's
  /// projection when a focus is set, the (global) application otherwise.
  /// Single-cluster systems always see the one application.
  [[nodiscard]] const Application& application() const { return *search_app(); }
  [[nodiscard]] const std::shared_ptr<const Application>& application_ptr() const {
    return search_app();
  }

  // ---- multi-cluster search context ---------------------------------------
  [[nodiscard]] const SystemModel& system_model() const { return model_; }
  [[nodiscard]] std::size_t cluster_count() const { return model_.cluster_count(); }
  /// Focuses the evaluator on one cluster of a multi-cluster system:
  /// subsequent evaluate(BusConfig)/evaluate_delta calls substitute the
  /// candidate into `context` at `cluster` and evaluate the full system,
  /// and application() returns that cluster's projection — which is what
  /// lets every single-bus search algorithm optimise one coordinate of the
  /// per-cluster configuration product unchanged.  Focus is a FlexRay
  /// concept — the focused cluster's ClusterConfig must be a FlexRay bus
  /// (TSN clusters are searched through the SystemConfig overloads; see
  /// flexopt/core/tsn_search.hpp).  Invalid requests (single-cluster
  /// system, cluster out of range, wrong context width, non-FlexRay
  /// cluster) degrade to clear_focus().  Not thread-safe: set it between
  /// solves, never while evaluations are in flight.
  void set_focus(SystemConfig context, int cluster);
  void clear_focus();
  [[nodiscard]] bool focused() const { return focus_cluster_ >= 0; }
  [[nodiscard]] int focus_cluster() const { return focus_cluster_; }
  [[nodiscard]] const SystemConfig& focus_context() const { return focus_context_; }

  [[nodiscard]] const BusParams& params() const { return params_; }
  [[nodiscard]] const AnalysisOptions& analysis_options() const { return options_; }
  [[nodiscard]] const EvaluatorOptions& evaluator_options() const {
    return evaluator_options_;
  }

  /// Number of full analyses performed so far (cache hits excluded) —
  /// the work metric every optimisation budget is charged against.
  [[nodiscard]] long evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }

  /// Worker threads evaluate_many() will use (EvaluatorOptions::threads
  /// resolved against hardware concurrency); >= 1.
  [[nodiscard]] int worker_threads() const;

  [[nodiscard]] EvaluatorCacheStats cache_stats() const;
  [[nodiscard]] EvaluatorWorkStats work_stats() const;
  void clear_cache();

 private:
  /// Per-thread evaluation state: the analysis arena, a reusable BusLayout,
  /// the Evaluation evaluate_delta_fast returns by reference, and this
  /// thread's share of the work statistics.  One slot per (evaluator,
  /// thread) pair, owned by the evaluator, found through a thread-local
  /// cache keyed by the evaluator's id — replacing the old mutex-guarded
  /// global work counter, whose lock the worker pool contended on.
  struct ThreadSlot;
  ThreadSlot& slot();

  /// The uncached path: in-place layout assign + analyze_system + Eq. 5.
  Evaluation analyze(const BusConfig& config);
  /// The delta hot path shared by evaluate_delta and evaluate_delta_fast:
  /// memo-cache check, in-place layout assign, arena-based incremental
  /// analysis into the slot's Evaluation.
  const Evaluation& delta_fast_impl(const AnalysisResult* base_analysis, const DeltaMove& move);
  /// The uncached multi-cluster paths (full + delta-accounted).
  Evaluation analyze_system_config(const SystemConfig& config, bool count_as_delta);
  Evaluation evaluate_system_impl(const SystemConfig& config, bool count_as_delta,
                                  bool focused_result = false);
  /// Cost + the focused cluster's result only (the focused-search return
  /// shape; avoids copying every cluster's analysis out of the cache).
  [[nodiscard]] Evaluation focused_view(const Evaluation& full) const;
  /// Cache lookup only (no analysis on miss); nullptr when absent.
  std::shared_ptr<const Evaluation> cached(const BusConfig& config);
  void insert_cache(const BusConfig& config, std::shared_ptr<const Evaluation> entry);
  std::shared_ptr<const Evaluation> cached_system(const SystemConfig& config);
  void insert_system_cache(const SystemConfig& config, std::shared_ptr<const Evaluation> entry);
  void add_work(const AnalysisWorkCounters& counters);
  void count_evaluation(bool delta, bool seeded);
  [[nodiscard]] const std::shared_ptr<const Application>& search_app() const {
    return focused() ? model_.cluster_app(static_cast<std::size_t>(focus_cluster_)) : app_;
  }

  struct ConfigHash {
    std::size_t operator()(const BusConfig& config) const { return hash_config(config); }
  };
  struct SystemConfigHash {
    std::size_t operator()(const SystemConfig& config) const {
      return hash_system_config(config);
    }
  };

  /// One evaluate_many call in flight: workers claim indices via `next`;
  /// `active` counts workers currently inside the batch so the caller can
  /// destroy it only after everyone has checked out.
  struct Batch {
    std::span<const BusConfig> configs;
    std::vector<Evaluation>* out = nullptr;
    std::atomic<std::size_t> next{0};
    int active = 0;  // guarded by pool_mutex_
  };

  void ensure_pool();
  void pool_worker();
  void drain(Batch& batch);

  SystemModel model_;
  std::shared_ptr<const Application> app_;  ///< the global application
  BusParams params_;
  AnalysisOptions options_;
  EvaluatorOptions evaluator_options_;
  /// Multi-cluster search context (see set_focus); -1 = unfocused.
  SystemConfig focus_context_;
  int focus_cluster_ = -1;
  std::atomic<long> evaluations_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  mutable std::mutex cache_mutex_;
  /// Single-cluster configurations (the pre-cluster hot path, untouched).
  std::unordered_map<BusConfig, std::shared_ptr<const Evaluation>, ConfigHash> cache_;
  /// Full per-cluster configuration products (multi-cluster systems).
  std::unordered_map<SystemConfig, std::shared_ptr<const Evaluation>, SystemConfigHash>
      system_cache_;

  AnalysisComponentCache components_;  ///< cluster 0 / single-cluster
  /// Clusters 1..C-1 of a multi-cluster system (index 0 unused; the shared
  /// components_ serves cluster 0 so the single-cluster path stays as-is).
  std::vector<std::unique_ptr<AnalysisComponentCache>> extra_components_;
  /// Per-cluster cache pointer table ({&components_, extra...}), built once
  /// at construction (the evaluator is immovable, so the addresses hold).
  std::vector<AnalysisComponentCache*> cluster_caches_;
  /// Monotonic id keying the thread-local slot cache: ids are never reused,
  /// so a stale cache entry for a destroyed evaluator can never match.
  const std::uint64_t id_;
  mutable std::mutex slots_mutex_;
  /// All slots ever handed out (one per thread that evaluated through this
  /// evaluator); work_stats() sums them.  Guarded by slots_mutex_.
  std::vector<std::unique_ptr<ThreadSlot>> slots_;

  std::mutex pool_mutex_;
  std::condition_variable pool_wake_;  ///< workers: a new batch was posted
  std::condition_variable pool_done_;  ///< caller: all workers left the batch
  std::vector<std::thread> pool_;      // spawned lazily, guarded by pool_mutex_
  Batch* batch_ = nullptr;             // guarded by pool_mutex_
  std::uint64_t batch_generation_ = 0;  // guarded by pool_mutex_
  bool shutting_down_ = false;          // guarded by pool_mutex_
};

/// Outcome shared by all optimisation algorithms.
struct OptimizationOutcome {
  /// Single-cluster FlexRay solves: the winning bus configuration.
  /// Multi-cluster solves: cluster 0's FlexRay slice of `system` (kept
  /// filled so single-bus consumers never see an empty config; left
  /// default when cluster 0 is a TSN switch — read `system` instead).
  BusConfig config;
  /// The winning per-cluster configuration product; exactly one entry
  /// (== config) for single-cluster solves.  Filled by Optimizer::solve.
  SystemConfig system;
  Cost cost{kInvalidConfigCost, false, 0};
  bool feasible = false;
  /// Full analyses performed by this run.
  long evaluations = 0;
  double wall_seconds = 0.0;
  std::string algorithm;
};

}  // namespace flexopt
