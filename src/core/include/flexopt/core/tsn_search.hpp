#pragma once

/// \file tsn_search.hpp
/// Local search over one TSN cluster's decision variables (gate offsets,
/// gate lengths, ET priorities) — the TSN counterpart of the single-bus
/// algorithms that Optimizer's block-coordinate descent runs on FlexRay
/// clusters.  TSN clusters cannot go through CostEvaluator::set_focus (the
/// single-bus algorithms mutate BusConfigs), so the descent scores every
/// neighbour through the SystemConfig evaluate_delta overload instead: each
/// candidate is the incumbent with one cluster's TsnConfig substituted, and
/// the full cross-cluster fixed point prices it.
///
/// The search is a deterministic first-improvement coordinate descent: the
/// neighbourhood is enumerated in a fixed order (gate offset slides, gate
/// length shrink/grow, adjacent ET priority swaps), the first strictly
/// improving neighbour is accepted and the sweep restarts, and the descent
/// ends when a full sweep brings no improvement or a budget fires.  Like
/// every optimiser here, the winning configuration is a deterministic
/// function of (system, base config) — worker threads never change it.

#include "flexopt/core/evaluator.hpp"
#include "flexopt/core/solve_types.hpp"

namespace flexopt {

struct TsnSearchResult {
  /// Best TsnConfig found; the base cluster's own config when !improved.
  TsnConfig config;
  /// System cost of the best candidate (the base system's cost when no
  /// neighbour improved; kInvalidConfigCost when even the base fails).
  Cost cost{kInvalidConfigCost, false, 0};
  /// True iff at least one neighbour strictly improved the system cost.
  bool improved = false;
  /// Full analyses spent by this descent (evaluator counter delta).
  long evaluations = 0;
  /// Why the descent returned.
  SolveStatus status = SolveStatus::Complete;
};

/// Runs the descent on cluster `cluster` of `base`.  The cluster must be a
/// TSN cluster (base.clusters[cluster].kind == Tsn); anything else returns
/// an unimproved result with the base's cost.  Honours
/// request.max_evaluations / max_wall_seconds / cancel; seed is ignored
/// (the descent is deterministic).
TsnSearchResult tsn_coordinate_descent(CostEvaluator& evaluator, const SystemConfig& base,
                                       int cluster, const SolveRequest& request = {});

}  // namespace flexopt
