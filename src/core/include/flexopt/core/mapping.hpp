#pragma once

/// \file mapping.hpp
/// Task-mapping design-space exploration around the bus access optimiser —
/// the outer loop the paper motivates OBC-CF's speed with (Section 6.2:
/// "the bus access optimisation heuristic can be placed inside other
/// optimisation loops, e.g. for task mapping").
///
/// A LogicalApplication describes tasks and data flows *without* a node
/// assignment; materialising it under a candidate mapping turns every
/// node-crossing flow into a bus message (ST or DYN per the graph's
/// trigger) and every intra-node flow into a plain precedence edge.  The
/// mapping optimiser hill-climbs over task-to-node assignments, scoring
/// each candidate with a full bus access optimisation.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "flexopt/core/dyn_search.hpp"
#include "flexopt/core/evaluator.hpp"

namespace flexopt {

struct LogicalGraph {
  std::string name;
  Time period = 0;
  Time deadline = 0;
  /// Time-triggered graphs materialise as SCS tasks + ST messages,
  /// event-triggered ones as FPS tasks + DYN messages.
  bool time_triggered = false;
};

struct LogicalTask {
  std::string name;
  std::uint32_t graph = 0;
  Time wcet = 0;
  int priority = 0;
};

/// Producer-consumer data flow; becomes a bus message only when the two
/// tasks land on different nodes.
struct LogicalFlow {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  int size_bytes = 0;
  int priority = 0;
};

class LogicalApplication {
 public:
  int node_count = 0;
  std::vector<LogicalGraph> graphs;
  std::vector<LogicalTask> tasks;
  std::vector<LogicalFlow> flows;

  /// Structural validation independent of any mapping: ids in range, flows
  /// within one graph, positive sizes/wcets/periods.
  [[nodiscard]] Expected<bool> validate() const;

  /// Builds the concrete Application for `mapping` (node index per task).
  /// Fails if the mapping is out of range or materialisation violates the
  /// model rules (it cannot: intra-node flows become dependencies).
  [[nodiscard]] Expected<Application> materialize(std::span<const int> mapping) const;

  /// Load-balancing initial mapping: tasks in WCET-density order, each to
  /// the currently least-utilised node.
  [[nodiscard]] std::vector<int> balanced_mapping() const;
};

struct MappingOptions {
  std::uint64_t seed = 1;
  /// Neighbourhood moves per restart (each move = one full bus access
  /// optimisation of the remapped system).
  int moves_per_restart = 40;
  int restarts = 2;
  /// Stop as soon as a schedulable mapping is found.
  bool stop_at_first_feasible = true;
};

struct MappingOutcome {
  std::vector<int> mapping;
  /// Bus optimisation outcome for the best mapping.
  OptimizationOutcome bus;
  /// Full analyses spent across all inner optimisations.
  long evaluations = 0;
  double wall_seconds = 0.0;
  /// Mappings scored (inner optimiser runs).
  int mappings_tried = 0;
};

/// Hill-climbing mapping exploration with `dyn_strategy` (OBC-CF or OBC-EE)
/// as the inner bus access optimiser.
Expected<MappingOutcome> optimize_mapping(const LogicalApplication& logical,
                                          const BusParams& params,
                                          const AnalysisOptions& analysis,
                                          DynSegmentStrategy& dyn_strategy,
                                          const MappingOptions& options = {});

}  // namespace flexopt
