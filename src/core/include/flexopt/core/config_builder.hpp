#pragma once

/// \file config_builder.hpp
/// Shared configuration-construction building blocks of Section 6:
/// criticality-ordered FrameID assignment (Eq. 4), quota-based round-robin
/// ST slot allocation, and the DYN segment length bounds.

#include <vector>

#include "flexopt/flexray/bus_config.hpp"
#include "flexopt/flexray/params.hpp"
#include "flexopt/flexray/system_config.hpp"
#include "flexopt/model/application.hpp"
#include "flexopt/model/cluster_backend.hpp"

namespace flexopt {

/// Assigns each DYN message a unique FrameID, ordered by criticality
/// CP_m = D_m - LP_m (Eq. 4): the most critical message gets FrameID 1.
/// ST messages get FrameID 0.  Returns the frame_id vector for BusConfig.
std::vector<int> assign_frame_ids_by_criticality(const Application& app,
                                                 const BusParams& params);

/// FrameID assignment ablation baselines.
/// Arbitrary: unique FrameIDs in message-declaration order.
std::vector<int> assign_frame_ids_arbitrary(const Application& app);
/// Shared: all DYN messages of one node share that node's single FrameID
/// (mimics a slot-per-node design; exercises the hp(m) delay term).
std::vector<int> assign_frame_ids_shared_per_node(const Application& app);

/// Nodes that send at least one ST message, ascending by node index.
std::vector<NodeId> st_sender_nodes(const Application& app);

/// Number of ST messages each node sends (indexed by node).
std::vector<int> st_message_count_per_node(const Application& app);

/// Distributes `slot_count` ST slots over the ST-sending nodes
/// proportionally to their ST message counts (each sender gets at least
/// one), interleaving owners round-robin across the cycle (Fig. 6, line 5).
/// Requires slot_count >= number of ST-sending nodes.
std::vector<NodeId> assign_static_slots(const Application& app, int slot_count);

/// Smallest admissible ST slot length: the largest ST frame, rounded up to
/// the macrotick grid.  0 when there are no ST messages.
Time min_static_slot_len(const Application& app, const BusParams& params);

/// Bounds for the DYN segment length in minislots (Fig. 5, line 5):
/// min = max(largest DYN frame footprint, number of DYN messages) so that
/// every frame fits (pLatestTx >= 1) and unique FrameIDs are possible;
/// max = protocol limit, further capped so the bus cycle stays within
/// 16 ms given the ST segment length `st_len`.
struct DynBounds {
  int min_minislots = 0;
  int max_minislots = 0;
  [[nodiscard]] bool feasible() const { return min_minislots <= max_minislots; }
};
DynBounds dyn_segment_bounds(const Application& app, const BusParams& params, Time st_len);

/// The per-sender minimal starting point every neighbourhood walk seeds
/// from (SA's annealer, bench_delta_eval, the delta property tests):
/// criticality FrameIDs, one minimal-length ST slot per ST sender, and
/// `bounds.min_minislots` as the DYN length when the bounds are feasible
/// (minislot_count is left 0 otherwise; check `bounds.feasible()`).
struct StartConfig {
  BusConfig config;
  std::vector<NodeId> st_senders;
  DynBounds bounds;
};
StartConfig minimal_start_config(const Application& app, const BusParams& params);

/// The TSN analogue of minimal_start_config: gating cycle = gcd of the ST
/// message periods (every period divides the hyper-period, so their gcd
/// does too; falls back to the smallest graph period when there is no ST
/// traffic), exact-fit gate windows packed back to back in MessageId order,
/// and ET priorities ranked by criticality (Eq. 4) at the default link
/// rate.  The packing can exceed the cycle on hopelessly ST-heavy clusters;
/// TsnLayout::build then rejects the config and the candidate is costed
/// infeasible, mirroring an infeasible minimal_start_config.
TsnConfig minimal_start_tsn_config(const Application& app);

/// Backend-dispatching start configuration for one cluster.
ClusterConfig minimal_start_cluster_config(const Application& app, const BusParams& params,
                                           ClusterBackendKind kind);

}  // namespace flexopt
