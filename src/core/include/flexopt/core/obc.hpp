#pragma once

/// \file obc.hpp
/// The Optimised Bus Configuration heuristic of Fig. 6: nested exploration
/// of ST slot count and length (with quota round-robin slot ownership),
/// delegating the DYN segment length to a pluggable strategy
/// (exhaustive = OBC-EE, curve fitting = OBC-CF).  Terminates as soon as a
/// schedulable configuration is confirmed.

#include "flexopt/core/dyn_search.hpp"
#include "flexopt/core/evaluator.hpp"

namespace flexopt {

class SolveControl;

struct ObcOptions {
  /// Extra ST slots explored beyond the per-sender minimum.  The paper
  /// loops to the protocol limit (1023) but stops at the first feasible
  /// configuration; the cap bounds worst-case runtime on hopeless systems.
  int max_extra_slots = 4;
  /// ST slot lengths explored per slot count.  The paper steps by
  /// 20 * gdBit up to 661 macroticks; the cap bounds the loop, the step is
  /// widened to cover [min, 661 MT] with this many samples when needed.
  int max_slot_len_steps = 8;
  /// Assign FrameIDs by criticality (Eq. 4); false = declaration order
  /// (ablation A3).
  bool criticality_frame_ids = true;
};

/// Runs the OBC heuristic with the given DYN-length strategy.  `control`
/// (optional) enforces SolveRequest budgets at the ST-exploration loop and
/// inside the DYN search.  Front-ends drive this through the
/// OptimizerRegistry ("obc-ee" / "obc-cf").
OptimizationOutcome optimize_obc(CostEvaluator& evaluator, DynSegmentStrategy& dyn_strategy,
                                 const ObcOptions& options = {},
                                 SolveControl* control = nullptr);

}  // namespace flexopt
