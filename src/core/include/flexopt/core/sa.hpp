#pragma once

/// \file sa.hpp
/// Simulated-annealing design-space exploration (Section 7's evaluation
/// baseline): Metropolis acceptance with geometric cooling over moves on
/// the full configuration space — ST slot count, slot length, DYN segment
/// length, ST slot ownership, and DYN FrameID assignment.  With a large
/// evaluation budget this approximates the optimum the heuristics are
/// measured against in Fig. 9.

#include <cstdint>
#include <vector>

#include "flexopt/core/evaluator.hpp"
#include "flexopt/util/rng.hpp"

namespace flexopt {

class SolveControl;

struct SaOptions {
  std::uint64_t seed = 1;
  /// Full analyses the run may spend.  The paper ran "several hours"; the
  /// default is sized for the scaled-down Fig. 9 bench, and
  /// FLEXOPT_BENCH_FULL raises it.
  long max_evaluations = 1500;
  double initial_temperature_factor = 0.25;  ///< T0 = factor * |initial cost|
  double cooling = 0.97;
  int iterations_per_temperature = 20;
  /// Keep annealing after the first schedulable solution to minimise f2
  /// (the paper optimises the cost function, not mere feasibility).
  bool stop_at_first_feasible = false;
  /// Evaluate neighbours through CostEvaluator::evaluate_delta (recompute
  /// only the analysis components the move invalidated).  Results are
  /// bit-identical to the full path; false forces full evaluations (the
  /// bench_delta_eval baseline).
  bool use_delta_evaluation = true;
};

/// Mutates `config` in place with one random SA neighbourhood move (+-ST
/// slot, +-slot length, +-DYN length, slot reassignment, FrameID swap/move);
/// returns false when the drawn move is inapplicable (caller re-rolls).
/// Exposed for bench_delta_eval and the delta property tests, which replay
/// SA's exact move distribution.
bool random_neighbour_move(BusConfig& config, const Application& app, const BusParams& params,
                           Rng& rng, const std::vector<NodeId>& st_senders, int dyn_min,
                           int dyn_max);

/// Runs simulated annealing.  `control` (optional) adds SolveRequest
/// budgets / cancellation on top of the SaOptions evaluation budget.
/// Front-ends drive this through the OptimizerRegistry ("sa").
OptimizationOutcome optimize_sa(CostEvaluator& evaluator, const SaOptions& options = {},
                                SolveControl* control = nullptr);

}  // namespace flexopt
