#include "flexopt/core/evaluator.hpp"

#include "flexopt/analysis/exact/exact_analysis.hpp"
#include "flexopt/analysis/multicluster.hpp"
#include "flexopt/flexray/bus_layout.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <thread>
#include <utility>

namespace flexopt {

/// Per-thread evaluation state (see the declaration in evaluator.hpp).
/// `mutex` only guards `stats`: the owner thread takes it briefly when
/// flushing counters (uncontended), work_stats() takes it when summing.
/// Everything else is touched by the owning thread exclusively.
struct CostEvaluator::ThreadSlot {
  std::mutex mutex;
  EvaluatorWorkStats stats;       // guarded by mutex
  AnalysisArena arena;            ///< fixed-point state, reused per evaluation
  BusLayout layout;               ///< rebuilt in place per candidate
  Evaluation eval;                ///< evaluate_delta_fast's return storage
  AnalysisResult base_scratch;    ///< staging for an aliased base
};

namespace {

/// Thread-local (evaluator id -> slot) cache.  The raw pointer is only ever
/// dereferenced when the id matches a live evaluator — ids are monotonic
/// and never reused, so an entry left behind by a destroyed evaluator can
/// never be hit.  Bounded: with more than kSlotCacheMax live evaluators on
/// one thread the oldest entry is evicted (that evaluator then re-creates
/// a slot on its next use here; only its arena warm-up is lost).
struct SlotCacheEntry {
  std::uint64_t evaluator = 0;
  void* slot = nullptr;
};
constexpr std::size_t kSlotCacheMax = 16;
thread_local std::vector<SlotCacheEntry> t_slot_cache;

std::atomic<std::uint64_t> g_next_evaluator_id{1};

}  // namespace

CostEvaluator::ThreadSlot& CostEvaluator::slot() {
  for (const SlotCacheEntry& entry : t_slot_cache) {
    if (entry.evaluator == id_) return *static_cast<ThreadSlot*>(entry.slot);
  }
  auto owned = std::make_unique<ThreadSlot>();
  ThreadSlot* raw = owned.get();
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    slots_.push_back(std::move(owned));
  }
  if (t_slot_cache.size() >= kSlotCacheMax) t_slot_cache.erase(t_slot_cache.begin());
  t_slot_cache.push_back({id_, raw});
  return *raw;
}

std::size_t hash_config(const BusConfig& config) {
  // FNV-1a over the six decision variables.
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(config.static_slot_count));
  mix(static_cast<std::uint64_t>(config.static_slot_len));
  mix(static_cast<std::uint64_t>(config.minislot_count));
  for (const NodeId owner : config.static_slot_owner) mix(index_of(owner));
  for (const int fid : config.frame_id) mix(static_cast<std::uint64_t>(fid));
  return static_cast<std::size_t>(h);
}

std::size_t hash_system_config(const SystemConfig& config) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(config.clusters.size()));
  for (const ClusterConfig& cluster : config.clusters) {
    mix(static_cast<std::uint64_t>(cluster.kind));
    if (cluster.kind == ClusterBackendKind::Tsn) {
      // Only the active payload is hashed — ClusterConfig's contract is
      // that the inactive payload stays default-constructed.
      const TsnConfig& tsn = cluster.tsn;
      mix(static_cast<std::uint64_t>(tsn.cycle));
      mix(static_cast<std::uint64_t>(tsn.link_rate_mbps));
      for (const TsnGateWindow& gate : tsn.gates) {
        mix(static_cast<std::uint64_t>(gate.offset));
        mix(static_cast<std::uint64_t>(gate.length));
      }
      for (const int prio : tsn.et_priority) mix(static_cast<std::uint64_t>(prio));
    } else {
      mix(static_cast<std::uint64_t>(hash_config(cluster.flexray)));
    }
  }
  return static_cast<std::size_t>(h);
}

CostEvaluator::CostEvaluator(SystemModel model, const BusParams& params,
                             AnalysisOptions options, EvaluatorOptions evaluator_options)
    : model_(std::move(model)),
      app_(model_.global()),
      params_(params),
      options_(options),
      evaluator_options_(evaluator_options),
      id_(g_next_evaluator_id.fetch_add(1, std::memory_order_relaxed)) {
  // Cluster 0 shares the long-standing components_ member (the whole
  // single-cluster pipeline keys off it); the other clusters get their own
  // cache so geometry components never alias across buses.  The pointer
  // table is built once — the evaluator is immovable, so the addresses
  // hold — keeping the per-candidate hot path allocation-free.
  extra_components_.resize(model_.cluster_count());
  cluster_caches_.resize(model_.cluster_count());
  cluster_caches_[0] = &components_;
  for (std::size_t c = 1; c < model_.cluster_count(); ++c) {
    extra_components_[c] = std::make_unique<AnalysisComponentCache>();
    cluster_caches_[c] = extra_components_[c].get();
  }
}

namespace {

/// Application-based construction must not silently flatten a clustered
/// application onto one bus: project it properly, or (for the degenerate
/// single-cluster case, and unfinalized apps whose topology is not yet
/// known) wrap it as its own projection.  Projection failures are
/// construction misuse, reported like other evaluator preconditions.
SystemModel model_for_application(std::shared_ptr<const Application> app) {
  if (app != nullptr && app->finalized() && app->cluster_count() > 1) {
    auto model = SystemModel::build(std::move(app));
    if (!model.ok()) {
      throw std::invalid_argument("CostEvaluator: " + model.error().message);
    }
    return std::move(model).value();
  }
  return SystemModel::single(std::move(app));
}

}  // namespace

CostEvaluator::CostEvaluator(std::shared_ptr<const Application> app, const BusParams& params,
                             AnalysisOptions options, EvaluatorOptions evaluator_options)
    : CostEvaluator(model_for_application(std::move(app)), params, options,
                    evaluator_options) {}

CostEvaluator::CostEvaluator(const Application& app, const BusParams& params,
                             AnalysisOptions options, EvaluatorOptions evaluator_options)
    : CostEvaluator(std::make_shared<const Application>(app), params, options,
                    evaluator_options) {}

CostEvaluator::CostEvaluator(const CostEvaluator& parent, EvaluatorOptions evaluator_options)
    : CostEvaluator(parent.model_, parent.params_, parent.options_, evaluator_options) {
  focus_context_ = parent.focus_context_;
  focus_cluster_ = parent.focus_cluster_;
}

void CostEvaluator::set_focus(SystemConfig context, int cluster) {
  // Focus is a multi-cluster FlexRay concept; any invalid request
  // (single-cluster system, cluster out of range, context of the wrong
  // width, focused cluster not a FlexRay bus) degrades to "no focus" in
  // every build type rather than risking an out-of-range or cross-backend
  // substitution on the next evaluate() call.
  if (model_.single_cluster() || cluster < 0 ||
      static_cast<std::size_t>(cluster) >= model_.cluster_count() ||
      context.cluster_count() != model_.cluster_count() ||
      context.clusters[static_cast<std::size_t>(cluster)].kind !=
          ClusterBackendKind::FlexRay) {
    clear_focus();
    return;
  }
  focus_context_ = std::move(context);
  focus_cluster_ = cluster;
}

void CostEvaluator::clear_focus() {
  focus_cluster_ = -1;
  focus_context_ = SystemConfig{};
}

CostEvaluator::Evaluation CostEvaluator::focused_view(const Evaluation& full) const {
  // Single-bus algorithms searching a focused cluster read per-activity
  // completions off Evaluation::analysis (the OBC curve fit); hand them the
  // focused cluster's holistic result and nothing else — copying all C
  // cluster results out of the cache per candidate would dominate the
  // descent's hottest path.
  Evaluation out;
  out.valid = full.valid;
  out.cost = full.cost;
  out.multicluster_converged = full.multicluster_converged;
  out.error = full.error;
  const auto focus = static_cast<std::size_t>(focus_cluster_);
  if (full.valid && focused() && focus < full.cluster_analysis.size()) {
    out.analysis = full.cluster_analysis[focus];
  }
  return out;
}

CostEvaluator::Evaluation CostEvaluator::analyze(const BusConfig& config) {
  Evaluation out;
  ThreadSlot& s = slot();
  auto layout = s.layout.assign(*app_, params_, config);
  if (!layout.ok()) {
    out.error = layout.error().message;
    return out;
  }
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  AnalysisWorkCounters counters;
  // Exact mode routes through the component cache's exact-space store, so
  // repeat analyses of configurations whose DYN inputs are unchanged replay
  // the explored frontier instead of re-exploring (bit-identical either
  // way; asserted below).
  auto analysis = options_.mode == AnalysisMode::Exact
                      ? analyze_system_exact(s.layout, options_, &counters, {}, &components_)
                      : analyze_system(s.layout, options_, &counters);
  add_work(counters);
  count_evaluation(/*delta=*/false, /*seeded=*/false);
  if (!analysis.ok()) {
    out.error = analysis.error().message;
    return out;
  }
  out.valid = true;
  out.analysis = std::move(analysis).value();
  out.cost = out.analysis.cost;

#ifndef NDEBUG
  // Debug builds cross-check every cache-served exact analysis against a
  // cold exploration, bit for bit — bounds AND engine counters, so a stale
  // or mis-keyed exact-space entry can never hide behind equal costs.
  if (options_.mode == AnalysisMode::Exact && options_.exact.reuse_base_frontier) {
    auto cold = analyze_system_exact(s.layout, options_);
    assert(cold.ok());
    if (cold.ok()) {
      const AnalysisResult& ref = cold.value();
      assert(out.analysis.task_completion == ref.task_completion);
      assert(out.analysis.message_completion == ref.message_completion);
      assert(out.analysis.cost.value == ref.cost.value);
      assert(out.analysis.exact != nullptr && ref.exact != nullptr);
      assert(out.analysis.exact->fallback == ref.exact->fallback);
      assert(out.analysis.exact->explored_states == ref.exact->explored_states);
      assert(out.analysis.exact->merged_states == ref.exact->merged_states);
      assert(out.analysis.exact->transitions == ref.exact->transitions);
      assert(out.analysis.exact->refined_messages == ref.exact->refined_messages);
    }
  }
#endif
  return out;
}

std::shared_ptr<const CostEvaluator::Evaluation> CostEvaluator::cached(
    const BusConfig& config) {
  if (!evaluator_options_.cache_enabled) return nullptr;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  const auto it = cache_.find(config);
  return it != cache_.end() ? it->second : nullptr;
}

void CostEvaluator::insert_cache(const BusConfig& config,
                                 std::shared_ptr<const Evaluation> entry) {
  if (!evaluator_options_.cache_enabled) return;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  if (cache_.size() < evaluator_options_.max_cache_entries) {
    cache_.emplace(config, std::move(entry));
  }
}

std::shared_ptr<const CostEvaluator::Evaluation> CostEvaluator::cached_system(
    const SystemConfig& config) {
  if (!evaluator_options_.cache_enabled) return nullptr;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  const auto it = system_cache_.find(config);
  return it != system_cache_.end() ? it->second : nullptr;
}

void CostEvaluator::insert_system_cache(const SystemConfig& config,
                                        std::shared_ptr<const Evaluation> entry) {
  if (!evaluator_options_.cache_enabled) return;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  if (system_cache_.size() < evaluator_options_.max_cache_entries) {
    system_cache_.emplace(config, std::move(entry));
  }
}

void CostEvaluator::add_work(const AnalysisWorkCounters& counters) {
  ThreadSlot& s = slot();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.stats.analysis += counters;
}

void CostEvaluator::count_evaluation(bool delta, bool seeded) {
  ThreadSlot& s = slot();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (delta) {
    ++s.stats.delta_evaluations;
    if (seeded) ++s.stats.delta_seeded;
  } else {
    ++s.stats.full_evaluations;
  }
}

CostEvaluator::Evaluation CostEvaluator::evaluate(const BusConfig& config) {
  if (focused()) {
    SystemConfig candidate = focus_context_;
    candidate.clusters[static_cast<std::size_t>(focus_cluster_)] =
        ClusterConfig::flexray_bus(config);
    return evaluate_system_impl(candidate, /*count_as_delta=*/false, /*focused_view=*/true);
  }
  if (model_.cluster_count() > 1) {
    Evaluation out;
    out.error = "multi-cluster evaluator: use evaluate_system() or set_focus()";
    return out;
  }
  if (!evaluator_options_.cache_enabled) return analyze(config);

  if (const auto hit = cached(config)) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return *hit;
  }
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  // Concurrent misses of the same configuration analyse redundantly but
  // converge on identical values (the analysis is deterministic), so no
  // per-key coordination is needed.
  auto entry = std::make_shared<const Evaluation>(analyze(config));
  insert_cache(config, entry);
  return *entry;
}

const CostEvaluator::Evaluation& CostEvaluator::delta_fast_impl(
    const AnalysisResult* base_analysis, const DeltaMove& move) {
  ThreadSlot& s = slot();
  if (options_.mode == AnalysisMode::Exact) {
    // The incremental engine is holistic-only: exact-mode deltas pay the
    // full holistic pipeline, but the schedule-space exploration inside it
    // is incremental — analyze() serves it from the component cache's
    // exact-space store, so a move that leaves the DYN geometry and message
    // set untouched replays the base frontier instead of re-exploring.
    s.eval = evaluate(move.config);
    return s.eval;
  }
  Evaluation& out = s.eval;
  if (const auto hit = cached(move.config)) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    out = *hit;  // vector assignments reuse the slot's capacity
    return out;
  }
  if (evaluator_options_.cache_enabled) {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  out.valid = false;
  out.error.clear();
  out.cost = Cost{kInvalidConfigCost, false, 0};
  out.cluster_analysis.clear();
  out.multicluster_converged = true;

  auto layout = s.layout.assign(*app_, params_, move.config);
  if (!layout.ok()) {
    out.error = layout.error().message;
    if (evaluator_options_.cache_enabled) {
      insert_cache(move.config, std::make_shared<const Evaluation>(out));
    }
    return out;
  }
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  const AnalysisInvalidation invalidation = move.invalidation();
  AnalysisWorkCounters counters;
  auto analysis =
      analyze_system_incremental_into(s.layout, options_, components_, s.arena, out.analysis,
                                      &counters, base_analysis, &invalidation);
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.stats.analysis += counters;
    ++s.stats.delta_evaluations;
    if (base_analysis != nullptr) ++s.stats.delta_seeded;
    // The arena tracks its own lifetime totals; mirroring them (assignment,
    // not accumulation) keeps the sum over slots exact.
    s.stats.arena_binds = s.arena.binds;
    s.stats.arena_reuses = s.arena.reuses;
    s.stats.components_per_delta.record(counters.fps_analyses + counters.dyn_analyses +
                                        counters.schedule_builds);
  }
  if (!analysis.ok()) {
    out.error = analysis.error().message;
    if (evaluator_options_.cache_enabled) {
      insert_cache(move.config, std::make_shared<const Evaluation>(out));
    }
    return out;
  }
  out.valid = true;
  out.cost = out.analysis.cost;

#ifndef NDEBUG
  // Debug builds cross-check the delta result against the always-correct
  // full path, bit for bit.  (analyze_system is called directly so the
  // verification does not perturb the evaluator's counters.)  The one
  // tolerated asymmetry: when the full path's holistic iteration cap
  // truncates a convergent system (never observed in the test
  // populations), the delta schedule may reach the exact fixed point the
  // cap pinned away — a strictly tighter sound bound (see incremental.hpp).
  auto full = analyze_system(s.layout, options_);
  assert(full.ok() == out.valid);
  if (full.ok() && !(out.analysis.converged && !full.value().converged)) {
    const AnalysisResult& reference = full.value();
    assert(out.analysis.converged == reference.converged);
    assert(out.analysis.task_completion == reference.task_completion);
    assert(out.analysis.message_completion == reference.message_completion);
    assert(out.analysis.task_jitter == reference.task_jitter);
    assert(out.analysis.message_jitter == reference.message_jitter);
    assert(out.cost.value == reference.cost.value);
    assert(out.cost.schedulable == reference.cost.schedulable);
    assert(out.cost.unbounded_activities == reference.cost.unbounded_activities);
  }
#endif
  if (evaluator_options_.cache_enabled) {
    insert_cache(move.config, std::make_shared<const Evaluation>(out));
  }
  return out;
}

const CostEvaluator::Evaluation& CostEvaluator::evaluate_delta_fast(const BusConfig& base,
                                                                    const DeltaMove& move) {
  if (focused() || model_.cluster_count() > 1) {
    // Cross-cluster paths allocate; route through the by-value overload and
    // park the result in the slot so the reference contract still holds.
    ThreadSlot& s = slot();
    s.eval = evaluate_delta(base, move);
    return s.eval;
  }
  if (move.backend != ClusterBackendKind::FlexRay) {
    ThreadSlot& s = slot();
    s.eval = Evaluation{};
    s.eval.error = "evaluate_delta: TSN moves go through the SystemConfig overload";
    return s.eval;
  }
  // Seed from the base's fixed point only when it is a converged analysis
  // of the configuration the move diffs against.
  const auto base_eval = cached(base);
  const AnalysisResult* base_analysis = nullptr;
  if (base_eval && base_eval->valid && base_eval->analysis.converged) {
    base_analysis = &base_eval->analysis;
  }
  return delta_fast_impl(base_analysis, move);
}

const CostEvaluator::Evaluation& CostEvaluator::evaluate_delta_fast(const Evaluation& base_eval,
                                                                    const DeltaMove& move) {
  if (focused() || model_.cluster_count() > 1) {
    // The base is implicit on these paths (focus context / system config);
    // the BusConfig argument of the sibling overload is unused there.
    ThreadSlot& s = slot();
    s.eval = evaluate_delta(BusConfig{}, move);
    return s.eval;
  }
  ThreadSlot& s = slot();
  if (move.backend != ClusterBackendKind::FlexRay) {
    s.eval = Evaluation{};
    s.eval.error = "evaluate_delta: TSN moves go through the SystemConfig overload";
    return s.eval;
  }
  const AnalysisResult* base_analysis = nullptr;
  if (base_eval.valid && base_eval.analysis.converged) {
    if (&base_eval == &s.eval) {
      // The caller handed back the slot's own evaluation: stage the base
      // out before the analysis overwrites it (capacity-reusing copy).
      s.base_scratch = base_eval.analysis;
      base_analysis = &s.base_scratch;
    } else {
      base_analysis = &base_eval.analysis;
    }
  }
  return delta_fast_impl(base_analysis, move);
}

CostEvaluator::Evaluation CostEvaluator::evaluate_delta(const BusConfig& base,
                                                        const DeltaMove& move) {
  if (focused()) {
    // The base is implicit (the focus context); deltas are not seeded
    // across clusters, so only the substituted candidate matters.  Focused
    // clusters are FlexRay by the set_focus guard, so the move's FlexRay
    // payload is the one that applies.
    SystemConfig next = focus_context_;
    next.clusters[static_cast<std::size_t>(focus_cluster_)] =
        ClusterConfig::flexray_bus(move.config);
    return evaluate_system_impl(next, /*count_as_delta=*/true, /*focused_view=*/true);
  }
  if (model_.cluster_count() > 1) {
    Evaluation out;
    out.error = "multi-cluster evaluator: use the SystemConfig evaluate_delta overload";
    return out;
  }
  if (move.backend != ClusterBackendKind::FlexRay) {
    Evaluation out;
    out.error = "evaluate_delta: TSN moves go through the SystemConfig overload";
    return out;
  }
  return evaluate_delta_fast(base, move);  // copies out of the thread slot
}

CostEvaluator::Evaluation CostEvaluator::evaluate_system(const SystemConfig& config) {
  if (model_.single_cluster() && config.cluster_count() == 1 && !focused() &&
      config.clusters[0].kind == ClusterBackendKind::FlexRay) {
    // Degenerate case: exactly the pre-cluster pipeline (and its cache).
    // Single-cluster TSN systems go through the system path — the TSN
    // analysis has no BusLayout to speak of.
    return evaluate(config.clusters[0].flexray);
  }
  return evaluate_system_impl(config, /*count_as_delta=*/false);
}

CostEvaluator::Evaluation CostEvaluator::evaluate_delta(const SystemConfig& base,
                                                        const DeltaMove& move) {
  if (model_.single_cluster() && base.cluster_count() == 1 && !focused() &&
      base.clusters[0].kind == ClusterBackendKind::FlexRay &&
      move.backend == ClusterBackendKind::FlexRay) {
    return evaluate_delta(base.clusters[0].flexray, move);
  }
  if (move.cluster < 0 || static_cast<std::size_t>(move.cluster) >= base.cluster_count() ||
      base.cluster_count() != model_.cluster_count()) {
    Evaluation out;
    out.error = "evaluate_delta: move cluster index or base config out of range";
    return out;
  }
  if (base.clusters[static_cast<std::size_t>(move.cluster)].kind != move.backend) {
    Evaluation out;
    out.error = "evaluate_delta: move backend does not match the cluster's backend";
    return out;
  }
  SystemConfig next = base;
  next.clusters[static_cast<std::size_t>(move.cluster)] =
      move.backend == ClusterBackendKind::Tsn ? ClusterConfig::tsn_switch(move.tsn)
                                              : ClusterConfig::flexray_bus(move.config);
  return evaluate_system_impl(next, /*count_as_delta=*/true);
}

CostEvaluator::Evaluation CostEvaluator::evaluate_system_impl(const SystemConfig& config,
                                                              bool count_as_delta,
                                                              bool focused_result) {
  if (!evaluator_options_.cache_enabled) {
    Evaluation out = analyze_system_config(config, count_as_delta);
    return focused_result ? focused_view(out) : out;
  }
  if (const auto hit = cached_system(config)) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return focused_result ? focused_view(*hit) : *hit;
  }
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  auto entry =
      std::make_shared<const Evaluation>(analyze_system_config(config, count_as_delta));
  insert_system_cache(config, entry);
  return focused_result ? focused_view(*entry) : *entry;
}

CostEvaluator::Evaluation CostEvaluator::analyze_system_config(const SystemConfig& config,
                                                               bool count_as_delta) {
  Evaluation out;
  auto layouts = build_system_layouts(model_, params_, config);
  if (!layouts.ok()) {
    out.error = layouts.error().message;
    return out;
  }
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  AnalysisWorkCounters counters;
  auto analysis = analyze_multicluster(model_, layouts.value(), options_, MulticlusterOptions{},
                                       cluster_caches_, &counters);
  add_work(counters);
  count_evaluation(count_as_delta, /*seeded=*/false);
  if (!analysis.ok()) {
    out.error = analysis.error().message;
    return out;
  }
  MulticlusterResult result = std::move(analysis).value();
  out.valid = true;
  out.cost = result.cost;
  out.multicluster_converged = result.converged;
  out.cluster_analysis = std::move(result.clusters);

#ifndef NDEBUG
  // Debug builds cross-check delta evaluations against a cache-free run of
  // the same fixed point, bit for bit — the multi-cluster analogue of the
  // single-cluster delta assertion.  Like there, the full path is not
  // re-verified per call (it IS the reference construction), which keeps
  // the sanitize lane's multicluster cost at ~2x instead of ~4x.
  if (!count_as_delta) return out;
  auto reference = analyze_multicluster(model_, layouts.value(), options_);
  assert(reference.ok());
  if (reference.ok()) {
    const MulticlusterResult& ref = reference.value();
    assert(ref.converged == out.multicluster_converged);
    assert(ref.cost.value == out.cost.value);
    assert(ref.cost.schedulable == out.cost.schedulable);
    assert(ref.cost.unbounded_activities == out.cost.unbounded_activities);
    for (std::size_t c = 0; c < ref.clusters.size(); ++c) {
      assert(ref.clusters[c].task_completion == out.cluster_analysis[c].task_completion);
      assert(ref.clusters[c].message_completion == out.cluster_analysis[c].message_completion);
    }
  }
#endif
  return out;
}

CostEvaluator::~CostEvaluator() {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    shutting_down_ = true;
  }
  pool_wake_.notify_all();
  for (std::thread& t : pool_) t.join();
}

int CostEvaluator::worker_threads() const {
  const int threads = evaluator_options_.threads > 0
                          ? evaluator_options_.threads
                          : static_cast<int>(std::thread::hardware_concurrency());
  return std::max(1, threads);
}

void CostEvaluator::ensure_pool() {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  const std::size_t wanted = static_cast<std::size_t>(worker_threads()) - 1;
  while (pool_.size() < wanted) pool_.emplace_back([this] { pool_worker(); });
}

void CostEvaluator::drain(Batch& batch) {
  for (std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
       i < batch.configs.size(); i = batch.next.fetch_add(1, std::memory_order_relaxed)) {
    (*batch.out)[i] = evaluate(batch.configs[i]);
  }
}

void CostEvaluator::pool_worker() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(pool_mutex_);
      pool_wake_.wait(lock, [&] {
        return shutting_down_ || (batch_ != nullptr && batch_generation_ != seen_generation);
      });
      if (shutting_down_) return;
      seen_generation = batch_generation_;
      batch = batch_;
      ++batch->active;
    }
    drain(*batch);
    {
      std::lock_guard<std::mutex> lock(pool_mutex_);
      --batch->active;
    }
    pool_done_.notify_all();
  }
}

std::vector<CostEvaluator::Evaluation> CostEvaluator::evaluate_many(
    std::span<const BusConfig> configs) {
  std::vector<Evaluation> out(configs.size());
  if (configs.empty()) return out;

  if (worker_threads() <= 1 || configs.size() <= 1) {
    for (std::size_t i = 0; i < configs.size(); ++i) out[i] = evaluate(configs[i]);
    return out;
  }

  ensure_pool();
  Batch batch;
  batch.configs = configs;
  batch.out = &out;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    batch_ = &batch;
    ++batch_generation_;
  }
  pool_wake_.notify_all();
  drain(batch);  // the caller participates
  {
    // `batch` lives on this stack frame: wait for every worker to check
    // out (they only touch it between the active ++/--) before returning.
    std::unique_lock<std::mutex> lock(pool_mutex_);
    pool_done_.wait(lock, [&] { return batch.active == 0; });
    if (batch_ == &batch) batch_ = nullptr;
  }
  return out;
}

EvaluatorWorkStats CostEvaluator::work_stats() const {
  EvaluatorWorkStats out;
  std::lock_guard<std::mutex> lock(slots_mutex_);
  for (const auto& s : slots_) {
    std::lock_guard<std::mutex> slot_lock(s->mutex);
    out += s->stats;
  }
  return out;
}

EvaluatorCacheStats CostEvaluator::cache_stats() const {
  EvaluatorCacheStats stats;
  stats.hits = cache_hits_.load(std::memory_order_relaxed);
  stats.misses = cache_misses_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(cache_mutex_);
  stats.entries = cache_.size() + system_cache_.size();
  return stats;
}

void CostEvaluator::clear_cache() {
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    cache_.clear();
    system_cache_.clear();
  }
  components_.clear();
  for (const auto& cache : extra_components_) {
    if (cache) cache->clear();
  }
}

}  // namespace flexopt
