#include "flexopt/core/evaluator.hpp"

#include <algorithm>
#include <cassert>
#include <thread>
#include <utility>

namespace flexopt {

std::size_t hash_config(const BusConfig& config) {
  // FNV-1a over the six decision variables.
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(config.static_slot_count));
  mix(static_cast<std::uint64_t>(config.static_slot_len));
  mix(static_cast<std::uint64_t>(config.minislot_count));
  for (const NodeId owner : config.static_slot_owner) mix(index_of(owner));
  for (const int fid : config.frame_id) mix(static_cast<std::uint64_t>(fid));
  return static_cast<std::size_t>(h);
}

CostEvaluator::CostEvaluator(std::shared_ptr<const Application> app, const BusParams& params,
                             AnalysisOptions options, EvaluatorOptions evaluator_options)
    : app_(std::move(app)),
      params_(params),
      options_(options),
      evaluator_options_(evaluator_options) {}

CostEvaluator::CostEvaluator(const Application& app, const BusParams& params,
                             AnalysisOptions options, EvaluatorOptions evaluator_options)
    : CostEvaluator(std::make_shared<const Application>(app), params, options,
                    evaluator_options) {}

CostEvaluator::Evaluation CostEvaluator::analyze(const BusConfig& config) {
  Evaluation out;
  auto layout = BusLayout::build(*app_, params_, config);
  if (!layout.ok()) {
    out.error = layout.error().message;
    return out;
  }
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  AnalysisWorkCounters counters;
  auto analysis = analyze_system(layout.value(), options_, &counters);
  add_work(counters);
  {
    std::lock_guard<std::mutex> lock(work_mutex_);
    ++work_.full_evaluations;
  }
  if (!analysis.ok()) {
    out.error = analysis.error().message;
    return out;
  }
  out.valid = true;
  out.analysis = std::move(analysis).value();
  out.cost = out.analysis.cost;
  return out;
}

std::shared_ptr<const CostEvaluator::Evaluation> CostEvaluator::cached(
    const BusConfig& config) {
  if (!evaluator_options_.cache_enabled) return nullptr;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  const auto it = cache_.find(config);
  return it != cache_.end() ? it->second : nullptr;
}

void CostEvaluator::insert_cache(const BusConfig& config,
                                 std::shared_ptr<const Evaluation> entry) {
  if (!evaluator_options_.cache_enabled) return;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  if (cache_.size() < evaluator_options_.max_cache_entries) {
    cache_.emplace(config, std::move(entry));
  }
}

void CostEvaluator::add_work(const AnalysisWorkCounters& counters) {
  std::lock_guard<std::mutex> lock(work_mutex_);
  work_.analysis += counters;
}

CostEvaluator::Evaluation CostEvaluator::evaluate(const BusConfig& config) {
  if (!evaluator_options_.cache_enabled) return analyze(config);

  if (const auto hit = cached(config)) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return *hit;
  }
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  // Concurrent misses of the same configuration analyse redundantly but
  // converge on identical values (the analysis is deterministic), so no
  // per-key coordination is needed.
  auto entry = std::make_shared<const Evaluation>(analyze(config));
  insert_cache(config, entry);
  return *entry;
}

CostEvaluator::Evaluation CostEvaluator::analyze_delta(
    const std::shared_ptr<const Evaluation>& base_eval, const DeltaMove& move) {
  Evaluation out;
  auto layout = BusLayout::build(*app_, params_, move.config);
  if (!layout.ok()) {
    out.error = layout.error().message;
    return out;
  }
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  // Seed from the base's fixed point only when it is a converged analysis
  // of the configuration the move diffs against.
  const AnalysisResult* base_analysis = nullptr;
  if (base_eval && base_eval->valid && base_eval->analysis.converged) {
    base_analysis = &base_eval->analysis;
  }
  const AnalysisInvalidation invalidation = move.invalidation();
  AnalysisWorkCounters counters;
  auto analysis = analyze_system_incremental(layout.value(), options_, components_, &counters,
                                             base_analysis, &invalidation);
  add_work(counters);
  {
    std::lock_guard<std::mutex> lock(work_mutex_);
    ++work_.delta_evaluations;
    if (base_analysis != nullptr) ++work_.delta_seeded;
  }
  if (!analysis.ok()) {
    out.error = analysis.error().message;
    return out;
  }
  out.valid = true;
  out.analysis = std::move(analysis).value();
  out.cost = out.analysis.cost;

#ifndef NDEBUG
  // Debug builds cross-check the delta result against the always-correct
  // full path, bit for bit.  (analyze_system is called directly so the
  // verification does not perturb the evaluator's counters.)  The one
  // tolerated asymmetry: when the full path's holistic iteration cap
  // truncates a convergent system (never observed in the test
  // populations), the delta schedule may reach the exact fixed point the
  // cap pinned away — a strictly tighter sound bound (see incremental.hpp).
  auto full = analyze_system(layout.value(), options_);
  assert(full.ok() == out.valid);
  if (full.ok() && !(out.analysis.converged && !full.value().converged)) {
    const AnalysisResult& reference = full.value();
    assert(out.analysis.converged == reference.converged);
    assert(out.analysis.task_completion == reference.task_completion);
    assert(out.analysis.message_completion == reference.message_completion);
    assert(out.analysis.task_jitter == reference.task_jitter);
    assert(out.analysis.message_jitter == reference.message_jitter);
    assert(out.cost.value == reference.cost.value);
    assert(out.cost.schedulable == reference.cost.schedulable);
    assert(out.cost.unbounded_activities == reference.cost.unbounded_activities);
  }
#endif
  return out;
}

CostEvaluator::Evaluation CostEvaluator::evaluate_delta(const BusConfig& base,
                                                        const DeltaMove& move) {
  if (const auto hit = cached(move.config)) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return *hit;
  }
  if (evaluator_options_.cache_enabled) {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  auto entry = std::make_shared<const Evaluation>(analyze_delta(cached(base), move));
  insert_cache(move.config, entry);
  return *entry;
}

CostEvaluator::~CostEvaluator() {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    shutting_down_ = true;
  }
  pool_wake_.notify_all();
  for (std::thread& t : pool_) t.join();
}

int CostEvaluator::worker_threads() const {
  const int threads = evaluator_options_.threads > 0
                          ? evaluator_options_.threads
                          : static_cast<int>(std::thread::hardware_concurrency());
  return std::max(1, threads);
}

void CostEvaluator::ensure_pool() {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  const std::size_t wanted = static_cast<std::size_t>(worker_threads()) - 1;
  while (pool_.size() < wanted) pool_.emplace_back([this] { pool_worker(); });
}

void CostEvaluator::drain(Batch& batch) {
  for (std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
       i < batch.configs.size(); i = batch.next.fetch_add(1, std::memory_order_relaxed)) {
    (*batch.out)[i] = evaluate(batch.configs[i]);
  }
}

void CostEvaluator::pool_worker() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(pool_mutex_);
      pool_wake_.wait(lock, [&] {
        return shutting_down_ || (batch_ != nullptr && batch_generation_ != seen_generation);
      });
      if (shutting_down_) return;
      seen_generation = batch_generation_;
      batch = batch_;
      ++batch->active;
    }
    drain(*batch);
    {
      std::lock_guard<std::mutex> lock(pool_mutex_);
      --batch->active;
    }
    pool_done_.notify_all();
  }
}

std::vector<CostEvaluator::Evaluation> CostEvaluator::evaluate_many(
    std::span<const BusConfig> configs) {
  std::vector<Evaluation> out(configs.size());
  if (configs.empty()) return out;

  if (worker_threads() <= 1 || configs.size() <= 1) {
    for (std::size_t i = 0; i < configs.size(); ++i) out[i] = evaluate(configs[i]);
    return out;
  }

  ensure_pool();
  Batch batch;
  batch.configs = configs;
  batch.out = &out;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    batch_ = &batch;
    ++batch_generation_;
  }
  pool_wake_.notify_all();
  drain(batch);  // the caller participates
  {
    // `batch` lives on this stack frame: wait for every worker to check
    // out (they only touch it between the active ++/--) before returning.
    std::unique_lock<std::mutex> lock(pool_mutex_);
    pool_done_.wait(lock, [&] { return batch.active == 0; });
    if (batch_ == &batch) batch_ = nullptr;
  }
  return out;
}

EvaluatorWorkStats CostEvaluator::work_stats() const {
  std::lock_guard<std::mutex> lock(work_mutex_);
  return work_;
}

EvaluatorCacheStats CostEvaluator::cache_stats() const {
  EvaluatorCacheStats stats;
  stats.hits = cache_hits_.load(std::memory_order_relaxed);
  stats.misses = cache_misses_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(cache_mutex_);
  stats.entries = cache_.size();
  return stats;
}

void CostEvaluator::clear_cache() {
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    cache_.clear();
  }
  components_.clear();
}

}  // namespace flexopt
