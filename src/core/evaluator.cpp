#include "flexopt/core/evaluator.hpp"

namespace flexopt {

CostEvaluator::CostEvaluator(const Application& app, const BusParams& params,
                             AnalysisOptions options)
    : app_(&app), params_(params), options_(options) {}

CostEvaluator::Evaluation CostEvaluator::evaluate(const BusConfig& config) {
  Evaluation out;
  auto layout = BusLayout::build(*app_, params_, config);
  if (!layout.ok()) {
    out.error = layout.error().message;
    return out;
  }
  ++evaluations_;
  auto analysis = analyze_system(layout.value(), options_);
  if (!analysis.ok()) {
    out.error = analysis.error().message;
    return out;
  }
  out.valid = true;
  out.analysis = std::move(analysis).value();
  out.cost = out.analysis.cost;
  return out;
}

}  // namespace flexopt
