#include "flexopt/core/obc.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <string>

#include "flexopt/core/config_builder.hpp"
#include "flexopt/core/solve_types.hpp"

namespace flexopt {

OptimizationOutcome optimize_obc(CostEvaluator& evaluator, DynSegmentStrategy& dyn_strategy,
                                 const ObcOptions& options, SolveControl* control) {
  const auto t0 = std::chrono::steady_clock::now();
  const Application& app = evaluator.application();
  const BusParams& params = evaluator.params();
  const long evals_before = evaluator.evaluations();

  OptimizationOutcome outcome;
  outcome.algorithm = std::string("OBC-") + dyn_strategy.name();

  // Fig. 6 line 1: FrameID assignment, as in BBC.
  const std::vector<int> frame_ids = options.criticality_frame_ids
                                         ? assign_frame_ids_by_criticality(app, params)
                                         : assign_frame_ids_arbitrary(app);

  const std::vector<NodeId> senders = st_sender_nodes(app);
  const int slots_min = static_cast<int>(senders.size());
  const int slots_max =
      std::min(SpecLimits::kMaxStaticSlots, slots_min + options.max_extra_slots);

  const Time len_min = min_static_slot_len(app, params);
  const Time len_max = SpecLimits::kMaxStaticSlotMacroticks * params.gd_macrotick;
  const Time payload_step = SpecLimits::kPayloadStepBits * params.gd_bit;
  // Widen the step so at most max_slot_len_steps lengths are tried, keeping
  // it a multiple of the 2-byte payload increment.
  Time len_step = payload_step;
  if (len_min < len_max && options.max_slot_len_steps > 1) {
    const Time span = len_max - len_min;
    const Time needed = span / (options.max_slot_len_steps - 1);
    len_step = std::max(payload_step, ceil_div(needed, payload_step) * payload_step);
  }

  auto finish = [&](OptimizationOutcome out) {
    out.evaluations = evaluator.evaluations() - evals_before;
    out.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return out;
  };

  // The last configuration a DYN search fully analysed: each inner sweep
  // starts its DeltaMove chain here, so consecutive ST points reuse every
  // analysis component the slot-count/length step left intact.
  std::optional<BusConfig> warm_base;

  // Fig. 6 lines 2-9: nested ST exploration.
  for (int slot_count = std::max(slots_min, senders.empty() ? 0 : slots_min);
       slot_count <= std::max(slots_max, slots_min); ++slot_count) {
    int len_steps = 0;
    const int len_steps_cap = slot_count == 0 ? 1 : std::max(1, options.max_slot_len_steps);
    for (Time slot_len = len_min; slot_len <= len_max && len_steps < len_steps_cap;
         slot_len += len_step, ++len_steps) {
      if (control != nullptr && control->should_stop(evaluator)) return finish(outcome);
      BusConfig base;
      base.frame_id = frame_ids;
      base.static_slot_count = slot_count;
      base.static_slot_len = slot_count > 0 ? slot_len : 0;
      base.static_slot_owner = assign_static_slots(app, slot_count);

      const Time st_len = static_cast<Time>(slot_count) * base.static_slot_len;
      const DynBounds bounds = dyn_segment_bounds(app, params, st_len);
      if (!bounds.feasible()) continue;

      const DynSearchResult dyn =
          dyn_strategy.search(evaluator, base, bounds.min_minislots, bounds.max_minislots,
                              control, warm_base.has_value() ? &*warm_base : nullptr);
      if (!dyn.exact) continue;
      warm_base = base;
      warm_base->minislot_count = dyn.minislots;

      if (dyn.cost.value < outcome.cost.value) {
        outcome.cost = dyn.cost;
        outcome.config = base;
        outcome.config.minislot_count = dyn.minislots;
        outcome.feasible = dyn.cost.schedulable;
        if (control != nullptr) control->note_best(outcome.cost);
      }
      // Fig. 6 line 7: stop as soon as a feasible configuration is found.
      if (outcome.feasible) return finish(outcome);
    }
    if (slot_count == 0) break;  // no ST senders: nothing more to explore
  }

  return finish(outcome);
}

}  // namespace flexopt
