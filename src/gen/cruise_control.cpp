#include "flexopt/gen/cruise_control.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace flexopt {

BusParams cruise_controller_params() {
  BusParams p;
  p.gd_bit = 100;  // 10 Mbit/s
  p.gd_macrotick = timeunits::us(1);
  p.gd_minislot = timeunits::us(5);
  p.frame = FrameFormat{};  // full FlexRay frame overhead
  return p;
}

Application build_cruise_controller() {
  Application app;
  const NodeId ecu[5] = {
      app.add_node("EngineCtrl"), app.add_node("TransmissionCtrl"), app.add_node("ABS"),
      app.add_node("BodyGateway"), app.add_node("Dashboard"),
  };

  /// One fan-out graph: task i's parent is `parents[i]` (-1 for the root).
  /// Event-triggered functionality branches (button press fans out to
  /// display, controller and logger), which also keeps message chains
  /// shallow — deep ET pipelines make holistic jitter propagation diverge,
  /// which no sensible CC design would exhibit.
  auto add_tree = [&](const std::string& name, bool tt, Time period,
                      const std::vector<int>& parents, const std::vector<int>& mapping,
                      int msg_bytes, int& priority) {
    const GraphId g = app.add_graph(name, period, period);
    std::vector<TaskId> tasks;
    static constexpr Time kWcetPattern[] = {
        timeunits::us(340), timeunits::us(470), timeunits::us(250),
        timeunits::us(510), timeunits::us(400),
    };
    for (std::size_t i = 0; i < mapping.size(); ++i) {
      tasks.push_back(app.add_task(g, name + "_t" + std::to_string(i),
                                   ecu[static_cast<std::size_t>(mapping[i])],
                                   kWcetPattern[i % 5],
                                   tt ? TaskPolicy::Scs : TaskPolicy::Fps,
                                   static_cast<int>(i) % 8));
    }
    for (std::size_t i = 0; i < mapping.size(); ++i) {
      if (parents[i] < 0) continue;
      const auto p = static_cast<std::size_t>(parents[i]);
      if (mapping[i] == mapping[p]) {
        app.add_dependency(tasks[p], tasks[i]);
      } else {
        app.add_message(g, name + "_m" + std::to_string(i), tasks[p], tasks[i],
                        msg_bytes + static_cast<int>(i % 3) * 2,
                        tt ? MessageClass::Static : MessageClass::Dynamic, priority++);
      }
    }
  };

  int st_priority = 0;
  int dyn_priority = 0;

  // Graph 1 (TT, 14 tasks, 7 ST messages): the engine controller acquires
  // and preprocesses the speed set-point (t0-t2 on EngineCtrl), then
  // *broadcasts* it to four consumer ECUs in one release (t2 -> t3..t6),
  // which respond with their torque shares (3 return messages).  The 4-way
  // simultaneous broadcast from one node is the ST-capacity bottleneck of
  // the study: a single static slot per cycle (BBC) serialises it over four
  // bus cycles, while OBC's quota-based slot allocation drains it in one.
  add_tree("cc_speed", true, timeunits::ms(10),
           {-1, 0, 1, 2, 2, 2, 2, 3, 4, 5, 6, 7, 8, 9},
           {0, 0, 0, 1, 2, 3, 4, 1, 2, 3, 4, 0, 0, 0}, 4, st_priority);
  // Graph 2 (TT, 13 tasks, 6 ST messages): wheel-speed fusion for the ABS —
  // a 3-way broadcast from the ABS ECU plus the fused returns.
  add_tree("cc_wheels", true, timeunits::ms(20),
           {-1, 0, 1, 1, 1, 2, 3, 4, 5, 6, 7, 8, 11},
           {2, 2, 0, 1, 3, 0, 1, 3, 2, 2, 2, 2, 2}, 6, st_priority);
  // Graph 3 (ET, 14 tasks, 7 DYN messages): driver interaction (buttons,
  // resume/cancel) fanning out to dashboard, engine and body ECUs.
  add_tree("cc_driver", false, timeunits::ms(20),
           {-1, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6},
           {3, 3, 4, 3, 0, 4, 1, 3, 4, 0, 1, 4, 0, 4}, 3, dyn_priority);
  // Graph 4 (ET, 13 tasks, 6 DYN messages): diagnostics and adaptive events
  // spreading from the body gateway.
  add_tree("cc_diag", false, timeunits::ms(40),
           {-1, 0, 0, 1, 1, 2, 2, 3, 3, 5, 5, 7, 7},
           {0, 0, 1, 0, 2, 1, 3, 0, 4, 1, 2, 0, 3}, 5, dyn_priority);

  // End-to-end deadlines at 70% of the period: calibrated (see DESIGN.md)
  // so that the minimal BBC bus configuration misses deadlines while the
  // OBC heuristics find schedulable configurations by enlarging the ST
  // segment — reproducing the feasibility split the paper reports for its
  // cruise controller.
  for (std::uint32_t g = 0; g < app.graph_count(); ++g) {
    app.set_graph_deadline(static_cast<GraphId>(g), app.graphs()[g].period * 7 / 10);
  }

  const auto fin = app.finalize();
  if (!fin.ok()) {
    throw std::logic_error("cruise controller builder: " + fin.error().message);
  }
  if (app.task_count() != 54 || app.message_count() != 26 || app.graph_count() != 4 ||
      app.node_count() != 5) {
    throw std::logic_error("cruise controller builder: topology mismatch (tasks=" +
                           std::to_string(app.task_count()) +
                           " messages=" + std::to_string(app.message_count()) + ")");
  }
  return app;
}

}  // namespace flexopt
